# Build, test, and experiment targets for the adaptive-objects reproduction.

GO ?= go

.PHONY: all build vet lint lint-allows fmt-check test race cover bench bench-compare experiments clean

all: build vet lint fmt-check test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Simlint: the repo's own static-analysis suite (internal/analysis),
# run through the standard vet driver so package loading, caching, and
# diagnostics all come from the toolchain. See DESIGN.md "Statically
# enforced invariants". The timing line makes analyzer-cost regressions
# visible in CI logs (the flow-sensitive analyzers build a CFG per
# function; a blowup shows up here long before it hurts locally).
lint:
	$(GO) build -o bin/simlint ./cmd/simlint
	@start=$$(date +%s); \
	  $(GO) vet -vettool=bin/simlint ./...; rc=$$?; \
	  end=$$(date +%s); echo "simlint: whole-tree lint took $$((end - start))s"; \
	  exit $$rc

# Audit //simlint:allow directives: fails on malformed ones and on stale
# ones (suppressions whose analyzer no longer fires at that position).
lint-allows:
	$(GO) build -o bin/simlint ./cmd/simlint
	./bin/simlint -allows ./...

# Formatting gate: fails (listing the offenders) if any file needs gofmt.
fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then echo "gofmt needed on:"; echo "$$out"; exit 1; fi

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Coverage gates: internal/profile is the observability tentpole,
# internal/locks carries the predictive/cohort lock kinds,
# internal/active holds the asynchronous monitor protocol, and
# internal/analysis (with its framework) is the static-analysis suite
# whose correctness the lint gate leans on; each package's statement
# coverage must stay at or above 80% (measured across the whole test
# suite — their exercisers live in sim, cthreads, workload, and
# experiments tests too).
cover:
	$(GO) test -coverprofile=cover.out -coverpkg=./internal/profile ./internal/... > /dev/null
	@$(GO) tool cover -func=cover.out | tail -1
	@pct="$$($(GO) tool cover -func=cover.out | awk '/^total:/ {gsub(/%/, "", $$3); print $$3}')"; \
	  awk -v p="$$pct" 'BEGIN { if (p+0 < 80) { printf "coverage gate: internal/profile at %s%%, need >= 80%%\n", p; exit 1 } }'
	$(GO) test -coverprofile=cover_locks.out -coverpkg=./internal/locks ./internal/... > /dev/null
	@$(GO) tool cover -func=cover_locks.out | tail -1
	@pct="$$($(GO) tool cover -func=cover_locks.out | awk '/^total:/ {gsub(/%/, "", $$3); print $$3}')"; \
	  awk -v p="$$pct" 'BEGIN { if (p+0 < 80) { printf "coverage gate: internal/locks at %s%%, need >= 80%%\n", p; exit 1 } }'
	$(GO) test -coverprofile=cover_active.out -coverpkg=./internal/active ./internal/... > /dev/null
	@$(GO) tool cover -func=cover_active.out | tail -1
	@pct="$$($(GO) tool cover -func=cover_active.out | awk '/^total:/ {gsub(/%/, "", $$3); print $$3}')"; \
	  awk -v p="$$pct" 'BEGIN { if (p+0 < 80) { printf "coverage gate: internal/active at %s%%, need >= 80%%\n", p; exit 1 } }'
	$(GO) test -coverprofile=cover_analysis.out -coverpkg=./internal/analysis/... ./internal/analysis/... > /dev/null
	@$(GO) tool cover -func=cover_analysis.out | tail -1
	@pct="$$($(GO) tool cover -func=cover_analysis.out | awk '/^total:/ {gsub(/%/, "", $$3); print $$3}')"; \
	  awk -v p="$$pct" 'BEGIN { if (p+0 < 80) { printf "coverage gate: internal/analysis at %s%%, need >= 80%%\n", p; exit 1 } }'
	@rm -f cover.out cover_locks.out cover_active.out cover_analysis.out

# Benchmark baseline: engine micro-benchmarks at full benchtime plus the
# paper-table macro benchmarks at one iteration each (their sim-* metrics
# are deterministic, so one iteration is exact), folded into BENCH_sim.json
# for cross-PR perf trajectory.
bench:
	$(GO) test -run '^$$' -bench . -benchmem ./internal/sim > bench_micro.out
	$(GO) test -run '^$$' -bench . -benchmem -benchtime=1x . > bench_macro.out
	cat bench_micro.out bench_macro.out
	$(GO) run ./cmd/benchjson -out BENCH_sim.json bench_micro.out bench_macro.out
	rm -f bench_micro.out bench_macro.out

# Regression gate: rerun every benchmark once and diff the deterministic
# sim-* metrics against the committed baseline. Wall-clock numbers are
# report-only; any simulated-metric drift fails the target.
bench-compare:
	$(GO) test -run '^$$' -bench . -benchmem -benchtime=1x ./internal/sim > bench_check.out
	$(GO) test -run '^$$' -bench . -benchmem -benchtime=1x . >> bench_check.out
	$(GO) run ./cmd/benchjson -compare BENCH_sim.json bench_check.out
	rm -f bench_check.out

# Regenerate every table and figure of the paper.
experiments: build
	$(GO) run ./cmd/lockbench
	$(GO) run ./cmd/tspbench -patterns -scaling
	$(GO) run ./cmd/figures

clean:
	$(GO) clean ./...
