# Build, test, and experiment targets for the adaptive-objects reproduction.

GO ?= go

.PHONY: all build vet test race bench experiments clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# Regenerate every table and figure of the paper.
experiments: build
	$(GO) run ./cmd/lockbench
	$(GO) run ./cmd/tspbench -patterns -scaling
	$(GO) run ./cmd/figures

clean:
	$(GO) clean ./...
