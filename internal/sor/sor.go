// Package sor implements the paper's §7 follow-on study target — a
// massively parallel application — as a red-black successive
// over-relaxation (SOR) solver for the steady-state heat equation on a
// square plate. Many worker threads sweep strips of the grid in lockstep
// (a barrier per half-sweep) and fold their local residuals into a
// lock-protected global maximum each sweep: a bursty, many-thread locking
// pattern quite unlike TSP's, on which adaptive locks can again be
// compared against static ones.
//
// Red-black ordering makes the parallel solver's arithmetic identical to
// the serial solver's (red cells read only black neighbours and vice
// versa), so the tests require bit-exact agreement.
package sor

import (
	"fmt"
	"math"
)

// Problem specifies the grid and convergence criteria: an N×N interior
// with the top boundary held at 100 and the rest at 0, relaxed with
// factor Omega until the sweep's maximum residual falls below Tol (or
// MaxSweeps passes).
type Problem struct {
	N         int
	Omega     float64
	Tol       float64
	MaxSweeps int
}

// withDefaults fills zero fields.
func (p Problem) withDefaults() (Problem, error) {
	if p.N == 0 {
		p.N = 32
	}
	if p.N < 2 {
		return p, fmt.Errorf("sor: N must be ≥ 2, got %d", p.N)
	}
	if p.Omega == 0 {
		p.Omega = 1.5
	}
	if p.Omega <= 0 || p.Omega >= 2 {
		return p, fmt.Errorf("sor: Omega must be in (0,2), got %g", p.Omega)
	}
	if p.Tol == 0 {
		p.Tol = 1e-3
	}
	if p.MaxSweeps == 0 {
		p.MaxSweeps = 10_000
	}
	return p, nil
}

// NewGrid allocates the (N+2)×(N+2) grid with boundary conditions set.
func (p Problem) NewGrid() [][]float64 {
	g := make([][]float64, p.N+2)
	for i := range g {
		g[i] = make([]float64, p.N+2)
	}
	for j := 0; j < p.N+2; j++ {
		g[0][j] = 100 // hot top edge
	}
	return g
}

// relaxCell applies one SOR update to cell (i,j) and returns the
// magnitude of the change (the cell's residual).
func relaxCell(g [][]float64, i, j int, omega float64) float64 {
	old := g[i][j]
	gs := (g[i-1][j] + g[i+1][j] + g[i][j-1] + g[i][j+1]) / 4
	g[i][j] = old + omega*(gs-old)
	return math.Abs(g[i][j] - old)
}

// sweepRows relaxes the cells of the given colour (0 = red, 1 = black) in
// rows [lo, hi), returning the maximum residual and the number of cells
// touched.
func sweepRows(g [][]float64, lo, hi, colour int, omega float64) (float64, int) {
	maxRes := 0.0
	cells := 0
	for i := lo; i < hi; i++ {
		for j := 1; j < len(g)-1; j++ {
			if (i+j)%2 != colour {
				continue
			}
			if r := relaxCell(g, i, j, omega); r > maxRes {
				maxRes = r
			}
			cells++
		}
	}
	return maxRes, cells
}

// SerialResult is the outcome of a serial solve.
type SerialResult struct {
	Grid     [][]float64
	Sweeps   int
	Residual float64
	// Cells is the total number of cell updates, the work measure the
	// simulated solver charges time for.
	Cells int
}

// SolveSerial runs red-black SOR natively until convergence.
func SolveSerial(p Problem) (SerialResult, error) {
	p, err := p.withDefaults()
	if err != nil {
		return SerialResult{}, err
	}
	g := p.NewGrid()
	res := SerialResult{Grid: g}
	for res.Sweeps = 0; res.Sweeps < p.MaxSweeps; res.Sweeps++ {
		redRes, redCells := sweepRows(g, 1, p.N+1, 0, p.Omega)
		blackRes, blackCells := sweepRows(g, 1, p.N+1, 1, p.Omega)
		res.Cells += redCells + blackCells
		res.Residual = math.Max(redRes, blackRes)
		if res.Residual < p.Tol {
			res.Sweeps++
			return res, nil
		}
	}
	return res, fmt.Errorf("sor: no convergence after %d sweeps (residual %g)", p.MaxSweeps, res.Residual)
}
