package sor

import (
	"math"
	"testing"

	"repro/internal/locks"
	"repro/internal/sim"
)

func sorMachine(nodes int) sim.Config {
	return sim.Config{
		Nodes:         nodes,
		LocalAccess:   10,
		RemoteAccess:  40,
		AtomicExtra:   5,
		Instr:         2,
		ContextSwitch: 200,
		Wakeup:        400,
		Seed:          1,
	}
}

func TestSerialConverges(t *testing.T) {
	res, err := SolveSerial(Problem{N: 24, Tol: 1e-3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Residual >= 1e-3 {
		t.Fatalf("residual = %g, want < 1e-3", res.Residual)
	}
	if res.Sweeps < 10 {
		t.Fatalf("converged suspiciously fast: %d sweeps", res.Sweeps)
	}
	// Physical sanity: interior temperatures fall between the boundary
	// extremes and decrease away from the hot edge along the centre line.
	n := 24
	mid := (n + 2) / 2
	for i := 1; i <= n; i++ {
		v := res.Grid[i][mid]
		if v <= 0 || v >= 100 {
			t.Fatalf("interior value %g out of (0,100) at row %d", v, i)
		}
	}
	if !(res.Grid[1][mid] > res.Grid[n][mid]) {
		t.Fatal("temperature does not decrease away from the hot edge")
	}
}

func TestSerialRejectsBadProblem(t *testing.T) {
	if _, err := SolveSerial(Problem{N: 1}); err == nil {
		t.Fatal("accepted N=1")
	}
	if _, err := SolveSerial(Problem{N: 8, Omega: 2.5}); err == nil {
		t.Fatal("accepted Omega=2.5")
	}
	if _, err := SolveSerial(Problem{N: 8, MaxSweeps: 1}); err == nil {
		t.Fatal("reported convergence after 1 sweep")
	}
}

func TestParallelMatchesSerialExactly(t *testing.T) {
	p := Problem{N: 20, Tol: 1e-3}
	serial, err := SolveSerial(p)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 5} {
		par, err := Solve(Config{
			Problem:  p,
			Workers:  workers,
			LockKind: locks.KindBlocking,
			Machine:  sorMachine(workers),
		})
		if err != nil {
			t.Fatalf("%d workers: %v", workers, err)
		}
		if par.Sweeps != serial.Sweeps {
			t.Fatalf("%d workers: %d sweeps, serial %d", workers, par.Sweeps, serial.Sweeps)
		}
		for i := range serial.Grid {
			for j := range serial.Grid[i] {
				if par.Grid[i][j] != serial.Grid[i][j] {
					t.Fatalf("%d workers: grid[%d][%d] = %v, serial %v (red-black must be bit-exact)",
						workers, i, j, par.Grid[i][j], serial.Grid[i][j])
				}
			}
		}
	}
}

func TestParallelAllLockKinds(t *testing.T) {
	p := Problem{N: 16, Tol: 1e-2}
	want, err := SolveSerial(p)
	if err != nil {
		t.Fatal(err)
	}
	for _, kind := range []locks.Kind{locks.KindSpin, locks.KindBlocking, locks.KindAdaptive} {
		res, err := Solve(Config{Problem: p, Workers: 4, LockKind: kind, Machine: sorMachine(4)})
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if res.Sweeps != want.Sweeps {
			t.Fatalf("%s: %d sweeps, want %d", kind, res.Sweeps, want.Sweeps)
		}
		if math.Abs(res.Residual-want.Residual) > 1e-12 {
			t.Fatalf("%s: residual %g, want %g", kind, res.Residual, want.Residual)
		}
	}
}

func TestParallelResidualLockContended(t *testing.T) {
	res, err := Solve(Config{
		Problem:  Problem{N: 24, Tol: 1e-2},
		Workers:  8,
		LockKind: locks.KindBlocking,
		Machine:  sorMachine(8),
	})
	if err != nil {
		t.Fatal(err)
	}
	st := res.ResidualLock
	if st.Acquisitions == 0 {
		t.Fatal("residual lock never used")
	}
	// All workers fold at the same point of each sweep: bursty contention.
	if st.Contended == 0 {
		t.Fatal("residual lock never contended despite synchronized folds")
	}
	if res.Utilization <= 0 || res.Utilization > 1 {
		t.Fatalf("utilization = %v", res.Utilization)
	}
}

func TestParallelRejectsTooManyWorkers(t *testing.T) {
	if _, err := Solve(Config{Problem: Problem{N: 4}, Workers: 8, Machine: sorMachine(8), LockKind: locks.KindSpin}); err == nil {
		t.Fatal("accepted more workers than rows")
	}
}

func TestParallelDeterministic(t *testing.T) {
	run := func() sim.Time {
		res, err := Solve(Config{
			Problem:  Problem{N: 16, Tol: 1e-2},
			Workers:  4,
			LockKind: locks.KindAdaptive,
			Machine:  sorMachine(4),
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.Elapsed
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("runs diverge: %v vs %v", a, b)
	}
}
