package sor

import (
	"fmt"
	"math"

	"repro/internal/cthreads"
	"repro/internal/locks"
	"repro/internal/sim"
)

// Config parameterizes a parallel solve on the simulated machine.
type Config struct {
	Problem
	// Workers is the number of worker threads.
	Workers int
	// Procs is the number of processors (default Workers; fewer means
	// multiprogramming, where sleeping at the barrier frees a processor
	// for a co-located worker). With Procs < Workers set Machine.Quantum
	// for timeslicing.
	Procs int
	// LockKind selects the residual lock's implementation.
	LockKind locks.Kind
	Machine  sim.Config
	Costs    *locks.Costs
	// StepsPerCell is the computation charge per cell update (default 4).
	StepsPerCell int
	// BarrierKind selects the sweep barrier: "sleep" (default), "spin"
	// (arrivals poll), or "adaptive" (locks.AdaptiveBarrier, which moves
	// between the two from the sensed arrival spread).
	BarrierKind string
	// Skew imbalances the strip sizes: worker w's share is weighted by
	// 1 + Skew·w/(Workers-1), so late strips hold earlier arrivals at the
	// barrier longer. 0 = balanced.
	Skew float64
}

// Result is the outcome of a parallel solve.
type Result struct {
	Sweeps   int
	Elapsed  sim.Time
	Residual float64
	Grid     [][]float64
	// ResidualLock is the contended lock's statistics.
	ResidualLock locks.Stats
	Sched        cthreads.Stats
	Utilization  float64
}

// Solve runs red-black SOR with Workers threads on the simulated machine:
// each worker owns a strip of rows; barriers separate the red and black
// half-sweeps; a lock-protected fold produces the global residual each
// sweep. The arithmetic is identical to SolveSerial's, so the returned
// grid matches the serial one bit for bit at equal sweep counts.
func Solve(cfg Config) (Result, error) {
	p, err := cfg.Problem.withDefaults()
	if err != nil {
		return Result{}, err
	}
	if cfg.Workers < 1 {
		cfg.Workers = 8
	}
	if cfg.Workers > p.N {
		return Result{}, fmt.Errorf("sor: %d workers for %d rows", cfg.Workers, p.N)
	}
	if cfg.Procs == 0 {
		cfg.Procs = cfg.Workers
	}
	if cfg.Machine.Nodes < cfg.Procs {
		cfg.Machine.Nodes = cfg.Procs
	}
	costs := locks.DefaultCosts()
	if cfg.Costs != nil {
		costs = *cfg.Costs
	}
	if cfg.StepsPerCell == 0 {
		cfg.StepsPerCell = 4
	}

	sys := cthreads.New(cfg.Machine)
	resLock := locks.MustNew(sys, cfg.LockKind, 0, "residual-lock", costs)
	// Three rendezvous per sweep, each its own barrier object so an
	// adaptive barrier tunes to its phase's arrival pattern.
	mkBarrier := func(name string) (locks.Barrier, error) {
		switch cfg.BarrierKind {
		case "", "sleep":
			return sys.NewBarrier(name, cfg.Workers), nil
		case "spin":
			bar := sys.NewBarrier(name, cfg.Workers)
			bar.SpinWait = 2 * sim.Microsecond
			return bar, nil
		case "adaptive":
			return locks.NewAdaptiveBarrier(sys, name, cfg.Workers, nil), nil
		default:
			return nil, fmt.Errorf("sor: unknown barrier kind %q", cfg.BarrierKind)
		}
	}
	barRed, err := mkBarrier("sweep-red")
	if err != nil {
		return Result{}, err
	}
	barBlack, err := mkBarrier("sweep-black")
	if err != nil {
		return Result{}, err
	}
	barPublish, err := mkBarrier("sweep-publish")
	if err != nil {
		return Result{}, err
	}

	g := p.NewGrid()
	// Double-buffered global residual, indexed by sweep parity; the slot
	// for the next sweep is zeroed by the thread that trips the barrier.
	var globalRes [2]float64
	sweeps := 0
	done := false

	// Strip boundaries: rows 1..N split by (possibly skewed) weights.
	bounds := make([]int, cfg.Workers+1)
	bounds[0] = 1
	weights := make([]float64, cfg.Workers)
	var totalW float64
	for w := 0; w < cfg.Workers; w++ {
		weights[w] = 1
		if cfg.Skew > 0 && cfg.Workers > 1 {
			weights[w] = 1 + cfg.Skew*float64(w)/float64(cfg.Workers-1)
		}
		totalW += weights[w]
	}
	acc := 0.0
	for w := 0; w < cfg.Workers; w++ {
		acc += weights[w]
		bounds[w+1] = 1 + int(acc/totalW*float64(p.N)+0.5)
	}
	bounds[cfg.Workers] = p.N + 1
	for w := 0; w < cfg.Workers; w++ {
		if bounds[w+1] <= bounds[w] {
			return Result{}, fmt.Errorf("sor: skew %g leaves worker %d without rows", cfg.Skew, w)
		}
	}

	for w := 0; w < cfg.Workers; w++ {
		lo, hi := bounds[w], bounds[w+1]
		sys.Fork(w%cfg.Procs, fmt.Sprintf("sor%d", w), func(t *cthreads.Thread) {
			for s := 0; !done && s < p.MaxSweeps; s++ {
				slot := s % 2
				redRes, redCells := sweepRows(g, lo, hi, 0, p.Omega)
				t.Compute(redCells * cfg.StepsPerCell)
				barRed.Arrive(t)

				blackRes, blackCells := sweepRows(g, lo, hi, 1, p.Omega)
				t.Compute(blackCells * cfg.StepsPerCell)
				local := math.Max(redRes, blackRes)

				resLock.Lock(t)
				t.Compute(6)
				if local > globalRes[slot] {
					globalRes[slot] = local
				}
				resLock.Unlock(t)

				if barBlack.Arrive(t) {
					// Last arrival: publish the sweep outcome and prepare
					// the next slot. The third barrier below guarantees
					// every worker sees the publication before re-reading
					// done.
					sweeps = s + 1
					if globalRes[slot] < p.Tol {
						done = true
					}
					globalRes[(slot+1)%2] = 0
				}
				barPublish.Arrive(t)
			}
		})
	}
	if err := sys.Run(); err != nil {
		return Result{}, err
	}
	if !done {
		return Result{}, fmt.Errorf("sor: no convergence after %d sweeps", sweeps)
	}
	return Result{
		Sweeps:       sweeps,
		Elapsed:      sys.Now(),
		Residual:     globalRes[(sweeps-1)%2],
		Grid:         g,
		ResidualLock: resLock.Stats(),
		Sched:        sys.Stats(),
		Utilization:  sys.Utilization(),
	}, nil
}
