package cthreads

import (
	"fmt"
	"testing"

	"repro/internal/sim"
)

// TestQuantumPreemptionExactTiming pins the fast path × preemption
// interplay to absolute numbers: an Advance that crosses a slice boundary
// is preempted at exactly the same virtual time whether or not its
// intra-slice sleeps ran inline, and the preemption count is unchanged.
func TestQuantumPreemptionExactTiming(t *testing.T) {
	const (
		quantum = 100 * sim.Microsecond
		cs      = 35 * sim.Microsecond // DefaultConfig().ContextSwitch
	)
	for _, inline := range []bool{true, false} {
		sys := New(sim.Config{Nodes: 1, Quantum: quantum})
		sys.Engine().SetInlineWakeups(inline)
		var bFirstRan sim.Time
		sys.Fork(0, "a", func(th *Thread) {
			// 2.5 quanta: preempted at the first slice boundary; by the
			// second, b has finished and the ready queue is empty.
			th.Advance(250 * sim.Microsecond)
		})
		sys.Fork(0, "b", func(th *Thread) {
			bFirstRan = th.Now()
			th.Advance(10 * sim.Microsecond)
		})
		if err := sys.Run(); err != nil {
			t.Fatal(err)
		}
		// a is dispatched at t=cs, runs one full quantum, is preempted, and
		// b is dispatched one context switch later.
		if want := cs + quantum + cs; bFirstRan != want {
			t.Fatalf("inline=%v: b first ran at %v, want %v", inline, bFirstRan, want)
		}
		if got := sys.Stats().Preemptions; got != 1 {
			t.Fatalf("inline=%v: Preemptions = %d, want 1", inline, got)
		}
	}
}

// threadObs collects everything observable about one thread-system run.
type threadObs struct {
	log      []string
	stats    Stats
	finalNow sim.Time
	busy     []sim.Time
	blocked  []sim.Time
	queueDel []sim.Time
}

// runThreadWorkload executes a deterministic multiprogrammed workload —
// threads outnumber processors, a quantum forces preemption mid-Advance,
// cells live on every node with module contention enabled, and threads
// block, time out, wake each other, yield, and join — with the engine's
// inline-wakeup fast path on or off.
func runThreadWorkload(t *testing.T, seed uint64, inline bool) threadObs {
	t.Helper()
	cfg := sim.Config{
		Nodes:         3,
		Quantum:       80 * sim.Microsecond,
		ModuleService: 300 * sim.Nanosecond,
		Seed:          seed,
	}
	sys := New(cfg)
	sys.Engine().SetInlineWakeups(inline)
	m := sys.Machine()
	cells := make([]*sim.Cell, cfg.Nodes)
	for i := range cells {
		cells[i] = m.NewCell(i, fmt.Sprintf("c%d", i), 0)
	}
	var obs threadObs
	record := func(who string) {
		obs.log = append(obs.log, fmt.Sprintf("%s@%d", who, sys.Now()))
	}

	var sleeper *Thread
	sleeper = sys.Fork(0, "sleeper", func(th *Thread) {
		for i := 0; i < 3; i++ {
			th.Block()
			record("sleeper-woke")
			th.Compute(40)
		}
	})
	var workers []*Thread
	for i := 0; i < 6; i++ {
		i := i
		w := sys.Fork(i%cfg.Nodes, fmt.Sprintf("w%d", i), func(th *Thread) {
			r := th.Rand()
			for step := 0; step < 8; step++ {
				th.Compute(1 + r.Intn(400)) // often crosses a slice boundary
				c := cells[r.Intn(len(cells))]
				old := c.AtomicOr(th, 1<<uint(i))
				if old&1 != 0 {
					record(th.Name() + "-sawbit")
				}
				switch r.Intn(5) {
				case 0:
					th.Yield()
				case 1:
					if th.BlockTimeout(sim.Time(r.Intn(50)) * sim.Microsecond) {
						record(th.Name() + "-timeout")
					}
				case 2:
					if i == 1 && sleeper.State() == StateBlocked {
						th.Wake(sleeper)
					}
				}
			}
			record(th.Name() + "-done")
		})
		workers = append(workers, w)
	}
	// A reaper joins every worker, then drains the sleeper's remaining
	// Block iterations so the run terminates cleanly.
	sys.Fork(2, "reaper", func(th *Thread) {
		for _, w := range workers {
			th.Join(w)
		}
		for sleeper.State() != StateDone {
			if sleeper.State() == StateBlocked {
				th.Wake(sleeper)
			} else {
				th.Yield()
			}
		}
		record("reaper-done")
	})
	if err := sys.Run(); err != nil {
		t.Fatalf("seed %d inline=%v: %v", seed, inline, err)
	}
	obs.stats = sys.Stats()
	obs.finalNow = sys.Now()
	for _, th := range sys.Threads() {
		obs.busy = append(obs.busy, th.Busy())
		obs.blocked = append(obs.blocked, th.BlockedTime())
	}
	for n := 0; n < cfg.Nodes; n++ {
		obs.queueDel = append(obs.queueDel, m.ModuleQueueDelay(n))
	}
	return obs
}

// TestInlineWakeupThreadDifferential runs the full thread-package workload
// — preemption, blocking, timeouts, wakeups, module contention — with the
// fast path off and on, and asserts identical logs, scheduler statistics,
// per-thread accounting, and module-contention delays.
func TestInlineWakeupThreadDifferential(t *testing.T) {
	for seed := uint64(1); seed <= 10; seed++ {
		fast := runThreadWorkload(t, seed, true)
		slow := runThreadWorkload(t, seed, false)
		if fast.stats != slow.stats {
			t.Fatalf("seed %d: stats diverge: fast %+v, slow %+v", seed, fast.stats, slow.stats)
		}
		if fast.finalNow != slow.finalNow {
			t.Fatalf("seed %d: final time diverges: fast %v, slow %v", seed, fast.finalNow, slow.finalNow)
		}
		if fast.stats.Preemptions == 0 {
			t.Fatalf("seed %d: workload never preempted; quantum interplay untested", seed)
		}
		for i := range fast.busy {
			if fast.busy[i] != slow.busy[i] || fast.blocked[i] != slow.blocked[i] {
				t.Fatalf("seed %d: thread %d accounting diverges: fast (%v,%v), slow (%v,%v)",
					seed, i, fast.busy[i], fast.blocked[i], slow.busy[i], slow.blocked[i])
			}
		}
		for n := range fast.queueDel {
			if fast.queueDel[n] != slow.queueDel[n] {
				t.Fatalf("seed %d: module %d queue delay diverges: fast %v, slow %v",
					seed, n, fast.queueDel[n], slow.queueDel[n])
			}
		}
		if len(fast.log) != len(slow.log) {
			t.Fatalf("seed %d: log lengths diverge: fast %d, slow %d", seed, len(fast.log), len(slow.log))
		}
		for i := range fast.log {
			if fast.log[i] != slow.log[i] {
				t.Fatalf("seed %d: logs diverge at %d: fast %q, slow %q", seed, i, fast.log[i], slow.log[i])
			}
		}
	}
}
