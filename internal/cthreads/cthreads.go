// Package cthreads is a user-level thread package in the style of the
// multiprocessor Cthreads library [Muk91] the paper builds on, running on
// the simulated NUMA machine of internal/sim.
//
// Threads are forked onto a specific processor and stay there (the paper
// pins its TSP searchers one per processor; its Figure 1 workloads run
// several threads per processor, still pinned). Each processor runs one
// thread at a time from a FIFO ready queue; switching threads costs
// Config.ContextSwitch, and waking a blocked thread costs the waker
// Config.Wakeup — the two parameters that make spinning versus blocking a
// real trade-off, exactly as on the Butterfly.
//
// A Thread implements sim.Accessor, so simulated shared memory
// (sim.Cell) charges it local or remote latency automatically. All Thread
// methods except Wake must be called from inside the thread's own function.
package cthreads

import (
	"errors"
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/profile"
	"repro/internal/sim"
	"repro/internal/trace"
)

// State is a thread's scheduling state.
type State int

// Thread states.
const (
	StateNew     State = iota // forked, never run
	StateReady                // on a processor's ready queue
	StateRunning              // current on its processor
	StateBlocked              // waiting for Wake (or a timeout)
	StateDone                 // function returned
)

// String returns the state name.
func (s State) String() string {
	switch s {
	case StateNew:
		return "new"
	case StateReady:
		return "ready"
	case StateRunning:
		return "running"
	case StateBlocked:
		return "blocked"
	case StateDone:
		return "done"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

// Stats counts scheduling activity across a run.
type Stats struct {
	Forks           int
	ContextSwitches int
	Wakeups         int
	Timeouts        int
	Preemptions     int
}

// System is a thread package instance bound to one simulated machine.
type System struct {
	mach      *sim.Machine
	eng       *sim.Engine
	procs     []*Processor
	all       []*Thread
	stats     Stats
	tracer    *trace.Tracer
	prof      *profile.Profiler
	ledger    *core.Ledger
	exitHooks []func(*Thread)

	// cluster links the system to its Cluster when the machine is one
	// shard of a sharded run; nil on a standalone system. Set only by
	// NewCluster.
	cluster *Cluster
}

// New creates a machine from cfg and a thread system on top of it, with one
// processor per machine node.
func New(cfg sim.Config) *System {
	return OnMachine(sim.NewMachine(cfg))
}

// OnMachine builds a thread system on an existing machine.
func OnMachine(m *sim.Machine) *System {
	s := &System{mach: m, eng: m.Engine()}
	s.procs = make([]*Processor, m.Nodes())
	for i := range s.procs {
		p := &Processor{sys: s, id: i}
		p.dispatchFn = p.dispatch // cached so maybeSchedule allocates no closure
		s.procs[i] = p
	}
	return s
}

// Machine returns the underlying simulated machine.
func (s *System) Machine() *sim.Machine { return s.mach }

// Engine returns the underlying event engine.
func (s *System) Engine() *sim.Engine { return s.eng }

// Procs reports the number of processors.
func (s *System) Procs() int { return len(s.procs) }

// Proc returns processor p.
func (s *System) Proc(p int) *Processor { return s.procs[p] }

// Stats returns scheduling counters accumulated so far.
func (s *System) Stats() Stats { return s.stats }

// SetTracer attaches (or, with nil, detaches) a structured event tracer.
// Thread lifecycle and state transitions are recorded from this point on;
// locks and monitors built on this system pick the tracer up through
// Tracer. When the tracer's mask includes engine events, the engine's
// trace hook is installed too.
func (s *System) SetTracer(tr *trace.Tracer) {
	s.tracer = tr
	if tr != nil && tr.Enabled(trace.CatEngine) {
		s.eng.SetTracer(tr.EngineHook())
	} else if tr == nil {
		s.eng.SetTracer(nil)
	}
}

// Tracer returns the attached tracer (nil when tracing is disabled). The
// nil tracer is safe to emit to, so callers need not check.
func (s *System) Tracer() *trace.Tracer { return s.tracer }

// SetProfiler attaches (or, with nil, detaches) the virtual-time
// attribution profiler. Threads forked from this point on are registered;
// the engine's attribution hook is installed for the mechanism
// diagnostics. Unlike SetTracer this does not force any engine slow path.
func (s *System) SetProfiler(p *profile.Profiler) {
	s.prof = p
	if p != nil {
		s.eng.SetAttribution(p)
	} else {
		s.eng.SetAttribution(nil)
	}
}

// Profiler returns the attached profiler (nil when profiling is disabled).
// The nil profiler is safe to record to, so callers need not check.
func (s *System) Profiler() *profile.Profiler { return s.prof }

// SetLedger attaches (or, with nil, detaches) the adaptation decision
// ledger. Adaptive objects built on this system pick it up lazily through
// Ledger, so attach order relative to lock construction does not matter.
func (s *System) SetLedger(l *core.Ledger) { s.ledger = l }

// Ledger returns the attached decision ledger (nil when disabled). The
// nil ledger is safe to append to, so callers need not check.
func (s *System) Ledger() *core.Ledger { return s.ledger }

// WireObject routes an adaptive object's feedback loop into the system
// tracer (samples entering the loop and reconfigurations applied, Ψ) and
// into the adaptation decision ledger. The hooks resolve the tracer and
// ledger at fire time, so attaching either after object creation works;
// with neither attached they cost a few nil checks per sample/apply.
// Every lock and monitor kind that embeds a core.Object wires it through
// here.
func (s *System) WireObject(obj *core.Object, name string) {
	obj.OnSample(func(sm core.Sample) {
		tr := s.tracer
		if tr == nil {
			return
		}
		now := s.eng.Now()
		tr.Emit(trace.Event{At: now, Kind: trace.KindSample, Proc: -1, Thread: -1,
			Name: name, A: int64(now), B: sm.Value})
	})
	obj.OnApply(func(d core.Decision, by core.OwnerID, err error) {
		tr := s.tracer
		if tr == nil || err != nil {
			return
		}
		tr.Emit(trace.Event{At: s.eng.Now(), Kind: trace.KindReconfig, Proc: -1, Thread: -1,
			Name: name, Extra: d.String(), A: d.Value})
	})
	obj.SetLedgerSource(
		func() *core.Ledger { return s.ledger },
		func() int64 { return int64(s.eng.Now()) })
}

// traceThread records one thread-lifecycle event.
func (s *System) traceThread(kind trace.Kind, t *Thread, name string, a int64) {
	if s.tracer == nil {
		return
	}
	s.tracer.Emit(trace.Event{
		At: s.eng.Now(), Kind: kind,
		Proc: int32(t.proc.id), Thread: int32(t.id),
		Name: name, A: a,
	})
}

// OnThreadExit registers fn to run (in registration order) as each
// thread finishes, after its joiners are woken. Hooks run in the exiting
// thread's context and must not charge simulated time; they exist so
// per-thread bookkeeping keyed on *Thread (e.g. a queue lock's qnode
// records) can be released instead of retained for the run's lifetime.
func (s *System) OnThreadExit(fn func(*Thread)) {
	s.exitHooks = append(s.exitHooks, fn)
}

// Threads returns all threads ever forked, in fork order.
func (s *System) Threads() []*Thread { return s.all }

// Fork creates a thread named name pinned to processor proc; it becomes
// runnable immediately (after the usual context-switch cost when the
// processor picks it up). fn runs inside the simulation.
func (s *System) Fork(proc int, name string, fn func(t *Thread)) *Thread {
	if proc < 0 || proc >= len(s.procs) {
		panic(fmt.Sprintf("cthreads: fork %q on nonexistent processor %d", name, proc))
	}
	if sh := s.mach.Sharded(); sh != nil && sh.RankOf(proc) != s.mach.ShardRank() {
		panic(fmt.Sprintf("cthreads: fork %q on processor %d, owned by shard %d not this system's shard %d (use Cluster.Fork or Thread.ForkPost)",
			name, proc, sh.RankOf(proc), s.mach.ShardRank()))
	}
	p := s.procs[proc]
	t := &Thread{sys: s, id: len(s.all), name: name, proc: p, fn: fn, blockedAt: -1}
	t.coro = s.eng.Spawn(name, func(c *sim.Coro) {
		t.fn(t)
		t.exit()
	})
	s.all = append(s.all, t)
	s.stats.Forks++
	t.prof = s.prof.Register(name, s.eng.Now())
	s.traceThread(trace.KindThreadFork, t, name, 0)
	p.enqueue(t)
	p.maybeSchedule()
	return t
}

// Run executes the simulation until all activity completes. It returns an
// error if the machine deadlocks (threads blocked forever) or a thread
// panics; the error names the stuck threads.
func (s *System) Run() error {
	err := s.eng.Run()
	if s.prof != nil {
		// Close this system's attribution records at the run's end time,
		// so per-thread totals equal exactly the virtual time each thread
		// existed (the conservation invariant). Only our own threads: one
		// profiler may span several systems run back to back.
		end := s.eng.Now()
		for _, t := range s.all {
			t.prof.Flush(end)
		}
	}
	if err == nil {
		return nil
	}
	if errors.Is(err, sim.ErrDeadlock) {
		var stuck []string
		for _, t := range s.all {
			if t.state != StateDone {
				stuck = append(stuck, fmt.Sprintf("%s(%s)", t.name, t.state))
			}
		}
		return fmt.Errorf("cthreads: %w; stuck threads: %s", err, strings.Join(stuck, ", "))
	}
	return err
}

// Now reports the current virtual time.
func (s *System) Now() sim.Time { return s.eng.Now() }

// Utilization reports the fraction of processor-time spent computing
// (thread Advance) over the run so far, across all processors. Idle
// processors and blocked-thread time lower it.
func (s *System) Utilization() float64 {
	total := sim.Time(len(s.procs)) * s.eng.Now()
	if total <= 0 {
		return 0
	}
	var busy sim.Time
	for _, p := range s.procs {
		busy += p.busy
	}
	return float64(busy) / float64(total)
}
