package cthreads

import (
	"fmt"

	"repro/internal/profile"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Thread is a user-level thread pinned to one processor of the simulated
// machine. It implements sim.Accessor, so sim.Cell operations charge it the
// correct local/remote latency.
//
// All methods except Wake and the read-only accessors must be called from
// inside the thread's own function while it is running.
type Thread struct {
	sys  *System
	id   int
	name string
	proc *Processor
	coro *sim.Coro
	fn   func(*Thread)
	rng  *sim.RNG

	state    State
	started  bool
	prio     int
	joiners  []*Thread
	blockGen uint64
	timedOut bool

	busy         sim.Time
	blockedAt    sim.Time
	blockedTotal sim.Time
	sliceLeft    sim.Time

	// prof is the thread's virtual-time attribution record, nil when the
	// system has no profiler (every ThreadProf method is nil-safe).
	prof *profile.ThreadProf
}

// ID returns the thread's fork-order index.
func (t *Thread) ID() int { return t.id }

// Name returns the thread's diagnostic name.
func (t *Thread) Name() string { return t.name }

// State returns the thread's scheduling state.
func (t *Thread) State() State { return t.state }

// Proc returns the processor the thread is pinned to.
func (t *Thread) Proc() *Processor { return t.proc }

// Node implements sim.Accessor: the memory node the thread executes on.
func (t *Thread) Node() int { return t.proc.id }

// System returns the owning thread system.
func (t *Thread) System() *System { return t.sys }

// Now reports the current virtual time.
func (t *Thread) Now() sim.Time { return t.sys.eng.Now() }

// Priority returns the thread's priority (higher is more urgent; used by
// priority lock schedulers, not by processor scheduling).
func (t *Thread) Priority() int { return t.prio }

// SetPriority sets the thread's priority.
func (t *Thread) SetPriority(p int) { t.prio = p }

// Rand returns the thread's private deterministic random stream, forked
// from the machine stream at first use in fork order.
func (t *Thread) Rand() *sim.RNG {
	if t.rng == nil {
		t.rng = t.sys.mach.RNG().Fork()
	}
	return t.rng
}

// Prof returns the thread's attribution record (nil when the system has
// no profiler; the nil record is safe to charge to).
func (t *Thread) Prof() *profile.ThreadProf { return t.prof }

// Busy reports total computation time this thread has charged.
func (t *Thread) Busy() sim.Time { return t.busy }

// BlockedTime reports total time this thread has spent blocked.
func (t *Thread) BlockedTime() sim.Time { return t.blockedTotal }

// mustBeRunning panics unless t is the current thread of its processor;
// catching misuse here keeps simulated interleavings honest.
func (t *Thread) mustBeRunning(op string) {
	if t.proc.current != t || t.state != StateRunning {
		panic(fmt.Sprintf("cthreads: %s called on %s thread %q that is not running", op, t.state, t.name))
	}
}

// Advance implements sim.Accessor: consume d of virtual time on the
// thread's processor. The processor remains occupied for the duration,
// except that with a machine quantum configured the thread is preempted
// (round-robin) whenever its slice expires while other threads are ready.
//
// The coro.Sleep calls below are the simulator's hottest self-wakeup
// sites and usually run inline (see sim.Coro.Sleep). Preemption is
// unaffected: the quantum loop re-checks sliceLeft after every Sleep
// regardless of which path it took, so a thread crossing a slice boundary
// is parked at exactly the same virtual time either way.
func (t *Thread) Advance(d sim.Time) {
	t.mustBeRunning("Advance")
	if d < 0 {
		d = 0
	}
	for {
		step, boundary := t.SpinAccrue(d)
		d -= step
		t.coro.Sleep(step)
		if boundary && t.SpinBoundary() {
			t.coro.Park()
			// sliceLeft was reset by dispatch.
		}
		if d <= 0 {
			return
		}
	}
}

// SpinAccrue implements sim.SpinContext: book up to d of computation
// (thread and processor busy time, timeslice consumption) and report the
// booked step plus whether the timeslice expired at its end. Advance is
// built on it, so the spin emulator and the ordinary accrual path can
// never disagree. It is an engine callback, not for simulated code.
func (t *Thread) SpinAccrue(d sim.Time) (step sim.Time, boundary bool) {
	q := t.sys.mach.Config().Quantum
	if q <= 0 {
		t.busy += d
		t.proc.busy += d
		return d, false
	}
	step = d
	if t.sliceLeft < step {
		step = t.sliceLeft
	}
	t.busy += step
	t.proc.busy += step
	t.sliceLeft -= step
	return step, t.sliceLeft <= 0
}

// SpinBoundary implements sim.SpinContext: handle an expired timeslice.
// With other threads ready the thread is preempted to the back of the
// ready queue (true — the caller must suspend until redispatch); alone
// on its processor it just starts a fresh slice (false). It is an engine
// callback, not for simulated code.
func (t *Thread) SpinBoundary() (descheduled bool) {
	if t.proc.QueueLen() > 0 {
		t.sys.stats.Preemptions++
		t.proc.enqueue(t)
		t.proc.release()
		return true
	}
	t.sliceLeft = t.sys.mach.Config().Quantum
	return false
}

// SpinBudget implements sim.SpinContext: the computation left in the
// current timeslice, or sim.MaxTime when preemption is off.
func (t *Thread) SpinBudget() sim.Time {
	if t.sys.mach.Config().Quantum <= 0 {
		return sim.MaxTime
	}
	return t.sliceLeft
}

// SpinUntil runs the busy-wait loop described by spec on this thread —
// see sim.SpinSpec for the loop shape and the contract its closures must
// satisfy. It charges exactly what the open-coded loop would (probe
// references, pauses, preemption at slice boundaries) while letting the
// engine batch futile iterations; see Coro.SpinUntil.
func (t *Thread) SpinUntil(spec *sim.SpinSpec) (iters int64, ok bool) {
	t.mustBeRunning("SpinUntil")
	if t.prof != nil && spec.Label != "" {
		t.prof.Push(t.Now(), spec.Label)
		iters, ok = t.coro.SpinUntil(t, spec)
		t.prof.Pop(t.Now(), spec.Label)
		return iters, ok
	}
	return t.coro.SpinUntil(t, spec)
}

// Compute consumes the cost of n abstract instruction steps.
func (t *Thread) Compute(steps int) {
	t.Advance(t.sys.mach.InstrCost(steps))
}

// Yield moves the thread to the back of its processor's ready queue and
// lets another thread run (after a context switch).
func (t *Thread) Yield() {
	t.mustBeRunning("Yield")
	t.proc.enqueue(t)
	t.proc.release()
	t.coro.Park()
}

// Block suspends the thread until another thread calls Wake on it.
func (t *Thread) Block() {
	t.mustBeRunning("Block")
	t.blockGen++
	t.state = StateBlocked
	t.blockedAt = t.sys.eng.Now()
	t.timedOut = false
	t.prof.SetBase(t.sys.eng.Now(), profile.BaseBlocked)
	t.sys.traceThread(trace.KindThreadBlock, t, "", 0)
	t.proc.release()
	t.coro.Park()
}

// BlockTimeout suspends the thread until Wake or until d elapses, and
// reports whether it timed out. This is the "conditional sleep" primitive
// adaptive locks use for their timeout attribute.
func (t *Thread) BlockTimeout(d sim.Time) (timedOut bool) {
	t.mustBeRunning("BlockTimeout")
	t.blockGen++
	gen := t.blockGen
	t.state = StateBlocked
	t.blockedAt = t.sys.eng.Now()
	t.timedOut = false
	t.prof.SetBase(t.sys.eng.Now(), profile.BaseBlocked)
	t.sys.traceThread(trace.KindThreadBlock, t, "", int64(d))
	t.sys.eng.After(d, func() {
		if t.state == StateBlocked && t.blockGen == gen {
			t.timedOut = true
			t.sys.stats.Timeouts++
			t.sys.ready(t)
		}
	})
	t.proc.release()
	t.coro.Park()
	return t.timedOut
}

// Wake makes the blocked thread target runnable, charging the caller the
// machine's wakeup cost (moving a thread to a — usually remote — ready
// queue is what makes blocking locks expensive to release). It reports
// whether target was actually blocked; a false return means target had
// already been woken (e.g. its timeout fired while the caller was paying
// the wakeup cost), and the caller's charge stands, as it would on real
// hardware.
func (t *Thread) Wake(target *Thread) bool {
	t.mustBeRunning("Wake")
	t.Advance(t.sys.mach.Config().Wakeup)
	if target.state != StateBlocked {
		return false
	}
	t.sys.ready(target)
	return true
}

// Join blocks until target's function has returned.
func (t *Thread) Join(target *Thread) {
	t.mustBeRunning("Join")
	if target.state == StateDone {
		return
	}
	target.joiners = append(target.joiners, t)
	t.Block()
}

// ready moves a blocked thread onto its processor's ready queue. It is the
// internal cost-free half of Wake, also used by timeouts and exit.
func (s *System) ready(target *Thread) {
	if target.state != StateBlocked {
		panic(fmt.Sprintf("cthreads: ready of %s thread %q", target.state, target.name))
	}
	s.stats.Wakeups++
	target.proc.enqueue(target)
	target.proc.maybeSchedule()
}

// exit finishes the thread: wakes joiners (paying wakeup cost for each) and
// releases the processor. Called by the fork wrapper when fn returns.
func (t *Thread) exit() {
	for _, j := range t.joiners {
		t.Advance(t.sys.mach.Config().Wakeup)
		if j.state == StateBlocked {
			t.sys.ready(j)
		}
	}
	t.joiners = nil
	t.state = StateDone
	t.prof.SetBase(t.sys.eng.Now(), profile.BaseDone)
	t.sys.traceThread(trace.KindThreadDone, t, "", 0)
	for _, fn := range t.sys.exitHooks {
		fn(t)
	}
	t.proc.release()
}
