package cthreads

import (
	"fmt"

	"repro/internal/sim"
)

// This file provides the higher-level synchronization primitives the
// Cthreads library offers alongside mutexes: condition variables,
// counting semaphores, and barriers. They are substrate primitives (used
// by applications and tests), built directly on Block/Wake rather than on
// the lock family, which lives in internal/locks.

// Cond is a condition variable in the Cthreads style. The associated
// mutual exclusion is whatever lock the caller pairs it with; Wait must be
// called with that lock held, and relocking after wakeup is the caller's
// job (the signature takes unlock/lock callbacks so Cond works with any
// lock implementation).
type Cond struct {
	sys     *System
	name    string
	waiters []*condWaiter
	signals uint64
}

// condWaiter records one Wait in progress. woken handles the race where a
// signal lands while the waiter is still paying for its unlock: the
// waiter then skips sleeping instead of missing the wakeup.
type condWaiter struct {
	t     *Thread
	woken bool
}

// NewCond creates a condition variable.
func (s *System) NewCond(name string) *Cond {
	return &Cond{sys: s, name: name}
}

// Wait atomically releases the caller's lock (via unlock), sleeps until
// Signal or Broadcast, and re-acquires (via lock) before returning.
func (c *Cond) Wait(t *Thread, unlock, lock func(*Thread)) {
	t.mustBeRunning("Cond.Wait")
	w := &condWaiter{t: t}
	c.waiters = append(c.waiters, w)
	unlock(t)
	if !w.woken {
		t.Block()
	}
	lock(t)
}

// Signal wakes one waiter, if any, charging the caller the wakeup cost.
func (c *Cond) Signal(t *Thread) {
	t.mustBeRunning("Cond.Signal")
	c.signals++
	if len(c.waiters) == 0 {
		return
	}
	w := c.waiters[0]
	c.waiters = c.waiters[1:]
	w.woken = true
	t.Wake(w.t)
}

// Broadcast wakes every waiter, charging the caller one wakeup cost each.
func (c *Cond) Broadcast(t *Thread) {
	t.mustBeRunning("Cond.Broadcast")
	c.signals++
	ws := c.waiters
	c.waiters = nil
	for _, w := range ws {
		w.woken = true
		t.Wake(w.t)
	}
}

// Waiters reports how many threads are waiting.
func (c *Cond) Waiters() int { return len(c.waiters) }

// Semaphore is a counting semaphore with sleeping waiters.
type Semaphore struct {
	sys     *System
	name    string
	count   int64
	waiters []*Thread
}

// NewSemaphore creates a semaphore with the given initial count.
func (s *System) NewSemaphore(name string, initial int64) *Semaphore {
	if initial < 0 {
		panic(fmt.Sprintf("cthreads: semaphore %q with negative count %d", name, initial))
	}
	return &Semaphore{sys: s, name: name, count: initial}
}

// P (wait) decrements the count, sleeping while it is zero.
func (sem *Semaphore) P(t *Thread) {
	t.mustBeRunning("Semaphore.P")
	for sem.count == 0 {
		sem.waiters = append(sem.waiters, t)
		t.Block()
	}
	sem.count--
}

// V (signal) increments the count and wakes one sleeping waiter.
func (sem *Semaphore) V(t *Thread) {
	t.mustBeRunning("Semaphore.V")
	sem.count++
	if len(sem.waiters) > 0 {
		w := sem.waiters[0]
		sem.waiters = sem.waiters[1:]
		t.Wake(w)
	}
}

// Count reports the current count (diagnostics).
func (sem *Semaphore) Count() int64 { return sem.count }

// Barrier blocks parties threads until all have arrived, then releases
// them together; it is reusable across generations.
type Barrier struct {
	sys     *System
	name    string
	parties int
	arrived int
	gen     uint64
	waiters []*Thread

	// SpinWait optionally makes arrivals spin (poll) instead of sleeping;
	// threads then poll every SpinWait of virtual time.
	SpinWait sim.Time
}

// NewBarrier creates a barrier for the given number of parties.
func (s *System) NewBarrier(name string, parties int) *Barrier {
	if parties < 1 {
		panic(fmt.Sprintf("cthreads: barrier %q needs at least 1 party", name))
	}
	return &Barrier{sys: s, name: name, parties: parties}
}

// Arrive blocks until all parties have arrived. The last arrival wakes
// the others (paying the wakeup cost for each) and returns true.
func (b *Barrier) Arrive(t *Thread) (last bool) {
	t.mustBeRunning("Barrier.Arrive")
	gen := b.gen
	b.arrived++
	if b.arrived == b.parties {
		b.arrived = 0
		b.gen++
		ws := b.waiters
		b.waiters = nil
		for _, w := range ws {
			t.Wake(w)
		}
		return true
	}
	if b.SpinWait > 0 {
		// The poll loop as a spin spec: an uncharged generation check,
		// one SpinWait of computation per futile poll. Batched, the
		// engine fast-forwards the polls between genuine trips.
		spec := sim.SpinSpec{
			Probe:     func() bool { return b.gen != gen },
			PauseCost: func() sim.Time { return b.SpinWait },
			MaxIters:  sim.SpinUnbounded,
		}
		t.SpinUntil(&spec)
		return false
	}
	b.waiters = append(b.waiters, t)
	for b.gen == gen {
		t.Block()
	}
	return false
}

// Generation reports how many times the barrier has tripped.
func (b *Barrier) Generation() uint64 { return b.gen }
