package cthreads

import (
	"errors"
	"fmt"
	"strings"

	"repro/internal/sim"
)

// Cluster is a thread package spanning a sharded machine: one System
// per shard, each scheduling the processors its shard owns, coordinated
// by the sim.Sharded window loop. Threads stay pinned, as always; what
// crosses shards is communication — posted cell operations, WakePost
// wake messages, and ForkPost remote thread creation — all of which
// behave identically on a serial machine, so the same workload runs
// bit-for-bit the same at every shard count.
//
// Synchronous cross-shard interactions (Wake on a remote shard's
// thread, blocking locks shared across shards) are illegal under a
// Cluster with more than one shard: they read and write peer-shard
// state with zero lookahead. Workloads meant for sharded execution use
// the posted forms; the crossshard simlint analyzer enforces the
// package-side discipline.
type Cluster struct {
	sh      *sim.Sharded
	systems []*System
}

// NewCluster partitions a machine described by cfg into shards (see
// sim.NewSharded) and builds one thread System per shard.
func NewCluster(cfg sim.Config, opts sim.ShardOptions) *Cluster {
	sh := sim.NewSharded(cfg, opts)
	cl := &Cluster{sh: sh, systems: make([]*System, sh.Shards())}
	for i := range cl.systems {
		sys := OnMachine(sh.Machine(i))
		sys.cluster = cl
		cl.systems[i] = sys
	}
	return cl
}

// Sharded returns the underlying coordinator.
func (cl *Cluster) Sharded() *sim.Sharded { return cl.sh }

// Shards reports the number of partitions.
func (cl *Cluster) Shards() int { return len(cl.systems) }

// System returns shard i's thread system.
func (cl *Cluster) System(i int) *System { return cl.systems[i] }

// SystemFor returns the thread system owning processor node n.
func (cl *Cluster) SystemFor(n int) *System { return cl.systems[cl.sh.RankOf(n)] }

// Procs reports the total number of processors across all shards.
func (cl *Cluster) Procs() int { return cl.sh.Config().Nodes }

// Fork creates a thread pinned to processor proc on whichever shard
// owns it. Setup-time convenience; from inside the simulation, remote
// creation must pay wire latency — use Thread.ForkPost.
func (cl *Cluster) Fork(proc int, name string, fn func(t *Thread)) *Thread {
	return cl.SystemFor(proc).Fork(proc, name, fn)
}

// Stats sums the scheduling counters of every shard's system.
func (cl *Cluster) Stats() Stats {
	var total Stats
	for _, sys := range cl.systems {
		st := sys.Stats()
		total.Forks += st.Forks
		total.ContextSwitches += st.ContextSwitches
		total.Wakeups += st.Wakeups
		total.Timeouts += st.Timeouts
		total.Preemptions += st.Preemptions
	}
	return total
}

// Run executes the sharded simulation to completion (sim.Sharded.Run).
// On deadlock the error names each shard's stuck threads on top of the
// coordinator's parked-coro and mailbox-edge report.
func (cl *Cluster) Run() error {
	err := cl.sh.Run()
	for _, sys := range cl.systems {
		if sys.prof != nil {
			end := sys.eng.Now()
			for _, t := range sys.all {
				t.prof.Flush(end)
			}
		}
	}
	if err == nil {
		return nil
	}
	if errors.Is(err, sim.ErrDeadlock) {
		var stuck []string
		for i, sys := range cl.systems {
			for _, t := range sys.all {
				if t.state != StateDone {
					stuck = append(stuck, fmt.Sprintf("%s(%s, shard %d)", t.name, t.state, i))
				}
			}
		}
		return fmt.Errorf("cthreads: %w; stuck threads: %s", err, strings.Join(stuck, ", "))
	}
	return err
}

// WakePost sends a wakeup message to target without waiting to observe
// its state: the message leaves now, travels for the machine's wakeup
// latency, and on arrival — on target's own shard — makes target ready
// if it is still blocked (a late message against a thread that already
// woke is dropped, exactly like Wake's false return). The caller is
// charged the wakeup cost, as with Wake.
//
// WakePost is the cross-shard form of Wake and the only legal one when
// target lives on another shard of a Cluster: Wake reads target's state
// synchronously at charge-completion time, which is only possible
// within one shard. Unlike Wake the outcome check happens at message
// *arrival*, so WakePost is a distinct primitive with shard-count-
// invariant semantics rather than a transparent replacement — on a
// serial machine it behaves identically to itself under any sharding,
// which is the property the differential suites pin.
func (t *Thread) WakePost(target *Thread) {
	t.mustBeRunning("WakePost")
	m := t.sys.mach
	d := m.Config().Wakeup
	m.Route(t.Node(), target.Node(), d, func() {
		if target.state == StateBlocked {
			target.sys.ready(target)
		}
	})
	t.Advance(d)
}

// ForkPost creates a thread pinned to processor proc — on any shard —
// after one reference latency from the caller's node: the simulated
// cost of shipping a work descriptor to a (possibly remote) processor.
// This is how work migrates across a Cluster; the thread itself, once
// created, stays pinned like every other. On a standalone machine the
// fork simply lands after the same latency. fn runs once the new
// thread is scheduled; ForkPost returns immediately (the caller cannot
// hold a reference to a thread that does not exist yet — rendezvous
// through cells or wakeups instead).
func (t *Thread) ForkPost(proc int, name string, fn func(*Thread)) {
	t.mustBeRunning("ForkPost")
	m := t.sys.mach
	sys := t.sys
	if cl := sys.cluster; cl != nil {
		sys = cl.SystemFor(proc)
	}
	d := m.AccessCost(t.Node(), proc)
	m.Route(t.Node(), proc, d, func() {
		sys.Fork(proc, name, fn)
	})
	t.Advance(d)
}
