package cthreads

import (
	"fmt"
	"reflect"
	"strings"
	"testing"

	"repro/internal/sim"
)

// clusterTopo abstracts "one thread package over one big machine" over
// its two implementations: a standalone System or a Cluster partition.
type clusterTopo struct {
	systemFor func(node int) *System
	systems   []*System
	run       func() error
}

func serialClusterTopo(cfg sim.Config) *clusterTopo {
	sys := New(cfg)
	return &clusterTopo{
		systemFor: func(int) *System { return sys },
		systems:   []*System{sys},
		run:       sys.Run,
	}
}

func shardedClusterTopo(cfg sim.Config, shards, workers int) *clusterTopo {
	cl := NewCluster(cfg, sim.ShardOptions{Shards: shards, Workers: workers})
	return &clusterTopo{
		systemFor: cl.SystemFor,
		systems:   cl.systems,
		run:       cl.Run,
	}
}

func (tp *clusterTopo) setModes(batched, inline bool) {
	for _, sys := range tp.systems {
		sys.Engine().SetBatchedSpins(batched)
		sys.Engine().SetInlineWakeups(inline)
	}
}

func (tp *clusterTopo) stats() Stats {
	var total Stats
	for _, sys := range tp.systems {
		st := sys.Stats()
		total.Forks += st.Forks
		total.ContextSwitches += st.ContextSwitches
		total.Wakeups += st.Wakeups
		total.Timeouts += st.Timeouts
		total.Preemptions += st.Preemptions
	}
	return total
}

// clusterParams shapes one differential client/server workload.
type clusterParams struct {
	seed    uint64
	nodes   int
	rounds  int
	quantum sim.Time
	svc     sim.Time
}

// clusterObs is everything observable the workload produced. Identical
// params must yield deeply equal clusterObs at every (shards, workers,
// batched, inline) combination.
type clusterObs struct {
	driverLog    [][]string
	driverFinish []sim.Time
	driverBusy   []sim.Time
	serverBusy   []sim.Time
	serverBlock  []sim.Time
	mail         []uint64
	flags        []uint64
	hub          uint64
	stats        Stats
	accesses     []uint64
	qdelay       []sim.Time
	err          string
}

// runClusterWorkload drives a ring of client/server pairs through every
// cross-shard primitive: driver n computes, posts work into the mailbox
// cell of the server on node (n+1)%N, sends it a WakePost, and spins on
// a local flag the server posts acknowledgements to; the server sleeps
// on BlockTimeout (immune to dropped wake messages), drains its
// mailbox, and acknowledges each unit. After its last round each driver
// ForkPosts a child onto the node halfway across the machine, which
// computes and posts into a hub counter on node 0. With a quantum
// configured, drivers, servers, and migrated children share processors
// preemptively. The same code runs on a standalone System and on any
// Cluster partition; randomness is seeded per (seed, node) only.
func runClusterWorkload(tb testing.TB, p clusterParams, tp *clusterTopo, batched, inline bool) clusterObs {
	tb.Helper()
	tp.setModes(batched, inline)
	n := p.nodes
	obs := clusterObs{
		driverLog:    make([][]string, n),
		driverFinish: make([]sim.Time, n),
		driverBusy:   make([]sim.Time, n),
		serverBusy:   make([]sim.Time, n),
		serverBlock:  make([]sim.Time, n),
		mail:         make([]uint64, n),
		flags:        make([]uint64, n),
	}
	mail := make([]*sim.Cell, n)  // work queue depth, on the server's node
	flags := make([]*sim.Cell, n) // acks for driver i, on driver i's node
	for i := 0; i < n; i++ {
		mach := tp.systemFor(i).Machine()
		mail[i] = mach.NewCell(i, fmt.Sprintf("mail%d", i), 0)
		flags[i] = mach.NewCell(i, fmt.Sprintf("flag%d", i), 0)
	}
	hub := tp.systemFor(0).Machine().NewCell(0, "hub", 0)

	servers := make([]*Thread, n)
	for i := 0; i < n; i++ {
		i := i
		r := sim.NewRNG(p.seed*2_000_003 + uint64(i)*104_729 + 5)
		servers[i] = tp.systemFor(i).Fork(i, fmt.Sprintf("srv%d", i), func(t *Thread) {
			box := mail[i]
			ack := flags[(i-1+n)%n] // serves the driver one node back
			consumed := uint64(0)
			for consumed < uint64(p.rounds) {
				if box.Load(t) == consumed {
					t.BlockTimeout(sim.Time(400+r.Intn(300)) * sim.Microsecond)
					continue
				}
				for box.Load(t) > consumed {
					t.Compute(50 + r.Intn(400))
					consumed++
					ack.PostAdd(t, 1)
				}
			}
			obs.serverBusy[i] = t.Busy()
			obs.serverBlock[i] = t.BlockedTime()
		})
	}
	for i := 0; i < n; i++ {
		i := i
		r := sim.NewRNG(p.seed*3_000_017 + uint64(i)*15_485_863 + 9)
		logf := func(t *Thread, format string, args ...any) {
			obs.driverLog[i] = append(obs.driverLog[i],
				fmt.Sprintf("%d ", t.Now())+fmt.Sprintf(format, args...))
		}
		tp.systemFor(i).Fork(i, fmt.Sprintf("drv%d", i), func(t *Thread) {
			srv := servers[(i+1)%n]
			box := mail[(i+1)%n]
			flag := flags[i]
			for round := 0; round < p.rounds; round++ {
				t.Compute(100 + r.Intn(1500))
				box.PostAdd(t, 1)
				t.WakePost(srv)
				// Spin-then-yield: the server shares this processor, so an
				// unbounded spin would starve it forever under cooperative
				// scheduling — the paper's spin-vs-block pathology.
				want := uint64(round + 1)
				pause := sim.Time(300 + r.Intn(700))
				probes := int64(0)
				for {
					iters, ok := t.SpinUntil(&sim.SpinSpec{
						ProbeCell: flag,
						Probe:     func() bool { return flag.Peek() >= want },
						PauseCost: func() sim.Time { return pause },
						MaxIters:  64 + int64(r.Intn(64)),
					})
					probes += iters
					if ok {
						break
					}
					t.Yield()
				}
				logf(t, "r%d acked after %d probes", round, probes)
			}
			child := (i + n/2) % n
			work := 200 + r.Intn(800)
			t.ForkPost(child, fmt.Sprintf("mig%d", i), func(t *Thread) {
				t.Compute(work)
				hub.PostAdd(t, 1)
			})
			logf(t, "migrated child to %d", child)
			obs.driverFinish[i] = t.Now()
			obs.driverBusy[i] = t.Busy()
		})
	}
	if err := tp.run(); err != nil {
		obs.err = err.Error()
	}
	for i := 0; i < n; i++ {
		obs.mail[i] = mail[i].Peek()
		obs.flags[i] = flags[i].Peek()
		mach := tp.systemFor(i).Machine()
		obs.accesses = append(obs.accesses, mach.ModuleAccesses(i))
		obs.qdelay = append(obs.qdelay, mach.ModuleQueueDelay(i))
	}
	obs.hub = hub.Peek()
	obs.stats = tp.stats()
	return obs
}

// diffClusterObs compares a variant run against the serial reference.
func diffClusterObs(t *testing.T, name string, ref, got clusterObs) {
	t.Helper()
	if ref.err != got.err {
		t.Errorf("%s: err %q, want %q", name, got.err, ref.err)
	}
	if got.hub != ref.hub {
		t.Errorf("%s: hub %d, want %d", name, got.hub, ref.hub)
	}
	if got.stats != ref.stats {
		t.Errorf("%s: stats %+v, want %+v", name, got.stats, ref.stats)
	}
	pairs := []struct {
		what     string
		ref, got any
	}{
		{"mail", ref.mail, got.mail},
		{"flags", ref.flags, got.flags},
		{"driver finish", ref.driverFinish, got.driverFinish},
		{"driver busy", ref.driverBusy, got.driverBusy},
		{"server busy", ref.serverBusy, got.serverBusy},
		{"server blocked", ref.serverBlock, got.serverBlock},
		{"module accesses", ref.accesses, got.accesses},
		{"module queue delay", ref.qdelay, got.qdelay},
	}
	for _, pr := range pairs {
		if !reflect.DeepEqual(pr.ref, pr.got) {
			t.Errorf("%s: %s %v, want %v", name, pr.what, pr.got, pr.ref)
		}
	}
	for w := range ref.driverLog {
		if !reflect.DeepEqual(ref.driverLog[w], got.driverLog[w]) {
			t.Fatalf("%s: driver %d log %q, want %q", name, w, got.driverLog[w], ref.driverLog[w])
		}
	}
}

// diffClusterModes runs one workload across the full (shards × workers
// × batched × inline) cross-product against the serial slow-path
// reference.
func diffClusterModes(t *testing.T, p clusterParams) {
	t.Helper()
	cfg := sim.Config{Nodes: p.nodes, Quantum: p.quantum, ModuleService: p.svc, Seed: p.seed%89 + 1}
	ref := runClusterWorkload(t, p, serialClusterTopo(cfg), false, false)
	modes := []struct {
		name            string
		batched, inline bool
	}{
		{"slow+inline", false, true},
		{"batched+noinline", true, false},
		{"batched+inline", true, true},
	}
	for _, mode := range modes {
		diffClusterObs(t, "serial/"+mode.name, ref,
			runClusterWorkload(t, p, serialClusterTopo(cfg), mode.batched, mode.inline))
	}
	shardGrid := []int{1}
	for _, s := range []int{2, 4, 8} {
		if s <= p.nodes {
			shardGrid = append(shardGrid, s)
		}
	}
	for _, shards := range shardGrid {
		for _, workers := range []int{1, 4} {
			tag := fmt.Sprintf("shards=%d/j=%d", shards, workers)
			diffClusterObs(t, tag+"/slow+noinline", ref,
				runClusterWorkload(t, p, shardedClusterTopo(cfg, shards, workers), false, false))
			for _, mode := range modes {
				diffClusterObs(t, tag+"/"+mode.name, ref,
					runClusterWorkload(t, p, shardedClusterTopo(cfg, shards, workers), mode.batched, mode.inline))
			}
		}
	}
}

func TestClusterDifferential(t *testing.T) {
	for _, tc := range []struct {
		name    string
		quantum sim.Time
		svc     sim.Time
	}{
		{"coop", 0, 0},
		{"preempt", 150 * sim.Microsecond, 0},
		{"preempt+contention", 150 * sim.Microsecond, 300 * sim.Nanosecond},
	} {
		t.Run(tc.name, func(t *testing.T) {
			diffClusterModes(t, clusterParams{seed: 13, nodes: 8, rounds: 2, quantum: tc.quantum, svc: tc.svc})
		})
	}
}

// FuzzClusterDifferential drives randomized topologies and schedules —
// node count, rounds, preemption quantum, module contention — through
// the whole grid.
func FuzzClusterDifferential(f *testing.F) {
	f.Add(uint64(1), uint8(4), uint8(1), uint8(0), uint8(0))
	f.Add(uint64(7), uint8(6), uint8(2), uint8(2), uint8(1))
	f.Add(uint64(23), uint8(8), uint8(2), uint8(5), uint8(3))
	f.Fuzz(func(t *testing.T, seed uint64, nodes, rounds, quantumUnits, svcUnits uint8) {
		p := clusterParams{
			seed:    seed%1000 + 1,
			nodes:   int(nodes%7) + 2,
			rounds:  int(rounds%2) + 1,
			quantum: sim.Time(quantumUnits%4) * 80 * sim.Microsecond,
			svc:     sim.Time(svcUnits%4) * 250 * sim.Nanosecond,
		}
		diffClusterModes(t, p)
	})
}

// TestClusterCrossShardEngages proves the differential suite is not
// passing vacuously: the standard workload on 4 shards must exchange
// wake, ack, work, and migration messages across partitions.
func TestClusterCrossShardEngages(t *testing.T) {
	p := clusterParams{seed: 13, nodes: 8, rounds: 2}
	cfg := sim.Config{Nodes: p.nodes, Seed: 2}
	cl := NewCluster(cfg, sim.ShardOptions{Shards: 4})
	tp := &clusterTopo{systemFor: cl.SystemFor, systems: cl.systems, run: cl.Run}
	obs := runClusterWorkload(t, p, tp, true, true)
	if obs.err != "" {
		t.Fatalf("workload failed: %s", obs.err)
	}
	var delivered uint64
	for src := 0; src < cl.Shards(); src++ {
		for dst := 0; dst < cl.Shards(); dst++ {
			c, _ := cl.Sharded().EdgeStats(src, dst)
			delivered += c
		}
	}
	// Each boundary driver alone sends rounds×(work+wake) messages, plus
	// acks back and n migrations: far more than nodes×rounds.
	if delivered < uint64(p.nodes*p.rounds) {
		t.Fatalf("only %d cross-shard messages delivered; the partition never engaged", delivered)
	}
	if obs.hub != uint64(p.nodes) {
		t.Fatalf("hub %d, want %d (one migrated child per driver)", obs.hub, p.nodes)
	}
}

// TestClusterForkOwnership pins the guard against forking a thread onto
// a processor another shard owns.
func TestClusterForkOwnership(t *testing.T) {
	cl := NewCluster(sim.Config{Nodes: 4, Seed: 1}, sim.ShardOptions{Shards: 2})
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("cross-shard Fork did not panic")
		}
		if !strings.Contains(fmt.Sprint(r), "owned by shard 1") {
			t.Fatalf("unexpected panic: %v", r)
		}
	}()
	cl.System(0).Fork(3, "trespasser", func(*Thread) {})
}

// TestClusterDeadlockNamesShards checks Cluster.Run's deadlock report
// names each stuck thread's shard.
func TestClusterDeadlockNamesShards(t *testing.T) {
	cl := NewCluster(sim.Config{Nodes: 4, Seed: 1}, sim.ShardOptions{Shards: 2})
	cl.Fork(3, "sleeper", func(t *Thread) { t.Block() })
	err := cl.Run()
	if err == nil {
		t.Fatal("want deadlock")
	}
	for _, want := range []string{"stuck threads", "sleeper(blocked, shard 1)"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("deadlock report %q does not contain %q", err, want)
		}
	}
}
