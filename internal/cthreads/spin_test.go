package cthreads

import (
	"fmt"
	"testing"

	"repro/internal/sim"
)

// runSpinThreadWorkload executes a workload built around Thread.SpinUntil
// under scheduling pressure: a solo spinner whose quantum keeps renewing,
// spinners sharing a processor with compute threads (so slice exhaustion
// preempts mid-spin), bounded warm-up spins, module contention on the
// probed cells, and a spin-wait barrier phase.
func runSpinThreadWorkload(t *testing.T, seed uint64, batched, inline bool) threadObs {
	t.Helper()
	cfg := sim.Config{
		Nodes:         2,
		Quantum:       60 * sim.Microsecond,
		ModuleService: 300 * sim.Nanosecond,
		Seed:          seed,
	}
	sys := New(cfg)
	sys.Engine().SetBatchedSpins(batched)
	sys.Engine().SetInlineWakeups(inline)
	m := sys.Machine()
	flags := []*sim.Cell{m.NewCell(0, "f0", 0), m.NewCell(1, "f1", 0)}
	var obs threadObs
	record := func(who string) {
		obs.log = append(obs.log, fmt.Sprintf("%s@%d", who, sys.Now()))
	}

	// Phase 1+2 — spinners wait for producer stores. Spinner s0 runs alone
	// on processor 1 (its slice renews at every boundary); spinner s1
	// shares processor 0 with the producer and a compute thread, so its
	// spin is cut by genuine preemptions.
	spinOn := func(th *Thread, cell *sim.Cell, pause sim.Time) {
		r := th.Rand()
		pre := sim.SpinSpec{
			ProbeCell: cell, ProbeAtomic: true,
			Probe:     func() bool { return cell.Peek() != 0 },
			PauseCost: func() sim.Time { return pause },
			MaxIters:  int64(r.Intn(6)),
		}
		iters, ok := th.SpinUntil(&pre)
		record(fmt.Sprintf("%s-pre-%d-%v", th.Name(), iters, ok))
		if !ok {
			spec := sim.SpinSpec{
				ProbeCell: cell, ProbeAtomic: true,
				Probe:     func() bool { return cell.Peek() != 0 },
				PauseCost: func() sim.Time { return pause },
				MaxIters:  sim.SpinUnbounded,
			}
			iters, _ = th.SpinUntil(&spec)
			record(fmt.Sprintf("%s-spun-%d", th.Name(), iters))
		}
	}
	sys.Fork(1, "s0", func(th *Thread) {
		spinOn(th, flags[0], 700*sim.Nanosecond)
		record("s0-done")
	})
	sys.Fork(0, "s1", func(th *Thread) {
		spinOn(th, flags[1], 900*sim.Nanosecond)
		record("s1-done")
	})
	sys.Fork(0, "crunch", func(th *Thread) {
		// Pure computation sharing s1's processor: forces slice-boundary
		// preemptions of the spin loop.
		th.Advance(400 * sim.Microsecond)
		record("crunch-done")
	})
	sys.Fork(0, "producer", func(th *Thread) {
		th.Advance(300 * sim.Microsecond)
		flags[0].Store(th, 1)
		record("flag0-set")
		th.Advance(200 * sim.Microsecond)
		flags[1].Store(th, 1)
		record("flag1-set")
	})

	// Phase 3 — a spin-wait barrier: parties arrive staggered and poll
	// through the skew.
	bar := sys.NewBarrier("bar", 3)
	bar.SpinWait = 2 * sim.Microsecond
	for i := 0; i < 3; i++ {
		i := i
		sys.Fork(i%cfg.Nodes, fmt.Sprintf("b%d", i), func(th *Thread) {
			for round := 0; round < 3; round++ {
				th.Advance(sim.Time(i+1) * sim.Time(round+1) * 40 * sim.Microsecond)
				if bar.Arrive(th) {
					record(fmt.Sprintf("b%d-tripped-r%d", i, round))
				}
			}
			record(fmt.Sprintf("b%d-done", i))
		})
	}

	if err := sys.Run(); err != nil {
		t.Fatalf("seed %d batched=%v inline=%v: %v", seed, batched, inline, err)
	}
	obs.stats = sys.Stats()
	obs.finalNow = sys.Now()
	for _, th := range sys.Threads() {
		obs.busy = append(obs.busy, th.Busy())
		obs.blocked = append(obs.blocked, th.BlockedTime())
	}
	for n := 0; n < cfg.Nodes; n++ {
		obs.queueDel = append(obs.queueDel, m.ModuleQueueDelay(n))
	}
	return obs
}

// TestSpinBatchingThreadDifferential holds the scheduler to the spin
// batching contract: with batching on or off, inline wakeups on or off,
// the workload's event log, scheduler statistics, per-thread accounting,
// and module-contention delays are identical.
func TestSpinBatchingThreadDifferential(t *testing.T) {
	for seed := uint64(1); seed <= 6; seed++ {
		ref := runSpinThreadWorkload(t, seed, false, true)
		if ref.stats.Preemptions == 0 {
			t.Fatalf("seed %d: workload never preempted; spin × quantum interplay untested", seed)
		}
		for _, mode := range []struct {
			name            string
			batched, inline bool
		}{
			{"batched+inline", true, true},
			{"batched+noinline", true, false},
			{"slow+noinline", false, false},
		} {
			got := runSpinThreadWorkload(t, seed, mode.batched, mode.inline)
			if got.stats != ref.stats {
				t.Fatalf("seed %d %s: stats diverge: got %+v, want %+v", seed, mode.name, got.stats, ref.stats)
			}
			if got.finalNow != ref.finalNow {
				t.Fatalf("seed %d %s: final time %v, want %v", seed, mode.name, got.finalNow, ref.finalNow)
			}
			for i := range ref.busy {
				if got.busy[i] != ref.busy[i] || got.blocked[i] != ref.blocked[i] {
					t.Fatalf("seed %d %s: thread %d accounting (%v,%v), want (%v,%v)",
						seed, mode.name, i, got.busy[i], got.blocked[i], ref.busy[i], ref.blocked[i])
				}
			}
			for n := range ref.queueDel {
				if got.queueDel[n] != ref.queueDel[n] {
					t.Fatalf("seed %d %s: module %d queue delay %v, want %v",
						seed, mode.name, n, got.queueDel[n], ref.queueDel[n])
				}
			}
			if len(got.log) != len(ref.log) {
				t.Fatalf("seed %d %s: log lengths %d, want %d", seed, mode.name, len(got.log), len(ref.log))
			}
			for i := range ref.log {
				if got.log[i] != ref.log[i] {
					t.Fatalf("seed %d %s: log[%d] = %q, want %q", seed, mode.name, i, got.log[i], ref.log[i])
				}
			}
		}
	}
}

// TestSpinQuantumRenewalSolo pins the solo-spinner slice rule: a spinner
// with an empty ready queue renews its slice at each boundary instead of
// being preempted, so a long spin on an idle processor costs zero
// preemptions and zero context switches beyond dispatch — batched or not.
func TestSpinQuantumRenewalSolo(t *testing.T) {
	for _, batched := range []bool{false, true} {
		sys := New(sim.Config{Nodes: 2, Quantum: 50 * sim.Microsecond})
		sys.Engine().SetBatchedSpins(batched)
		flag := sys.Machine().NewCell(0, "flag", 0)
		var iters int64
		sys.Fork(1, "spinner", func(th *Thread) {
			spec := sim.SpinSpec{
				ProbeCell: flag,
				Probe:     func() bool { return flag.Peek() != 0 },
				PauseCost: func() sim.Time { return sim.Microsecond },
				MaxIters:  sim.SpinUnbounded,
			}
			iters, _ = th.SpinUntil(&spec)
		})
		sys.Fork(0, "producer", func(th *Thread) {
			th.Advance(2 * sim.Millisecond)
			flag.Store(th, 1)
		})
		if err := sys.Run(); err != nil {
			t.Fatalf("batched=%v: %v", batched, err)
		}
		if got := sys.Stats().Preemptions; got != 0 {
			t.Errorf("batched=%v: solo spinner preempted %d times, want 0", batched, got)
		}
		if iters == 0 {
			t.Errorf("batched=%v: spinner never spun", batched)
		}
	}
}
