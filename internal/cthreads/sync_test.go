package cthreads

import (
	"testing"

	"repro/internal/sim"
)

// spinMutex is a trivial test-local lock for pairing with Cond.
type spinMutex struct {
	held bool
}

func (m *spinMutex) lock(t *Thread) {
	for m.held {
		t.Advance(100)
	}
	m.held = true
}

func (m *spinMutex) unlock(t *Thread) {
	m.held = false
}

func TestCondSignalWakesOneInOrder(t *testing.T) {
	s := New(testConfig(4))
	var mu spinMutex
	cond := s.NewCond("cv")
	ready := 0
	var order []string
	for i := 1; i <= 3; i++ {
		name := string(rune('a' + i - 1))
		delay := sim.Time(i * 1000)
		s.Fork(i, name, func(th *Thread) {
			th.Advance(delay)
			mu.lock(th)
			for ready == 0 {
				cond.Wait(th, mu.unlock, mu.lock)
			}
			ready--
			order = append(order, th.Name())
			mu.unlock(th)
		})
	}
	s.Fork(0, "signaler", func(th *Thread) {
		th.Advance(10_000) // everyone is waiting now
		if cond.Waiters() != 3 {
			t.Errorf("Waiters = %d, want 3", cond.Waiters())
		}
		for i := 0; i < 3; i++ {
			mu.lock(th)
			ready++
			mu.unlock(th)
			cond.Signal(th)
			th.Advance(5000)
		}
	})
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	want := []string{"a", "b", "c"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("wake order = %v, want %v (FIFO)", order, want)
		}
	}
}

func TestCondBroadcastWakesAll(t *testing.T) {
	s := New(testConfig(4))
	var mu spinMutex
	cond := s.NewCond("cv")
	go_ := false
	woke := 0
	for i := 1; i <= 3; i++ {
		s.Fork(i, "w", func(th *Thread) {
			mu.lock(th)
			for !go_ {
				cond.Wait(th, mu.unlock, mu.lock)
			}
			woke++
			mu.unlock(th)
		})
	}
	s.Fork(0, "caster", func(th *Thread) {
		th.Advance(10_000)
		mu.lock(th)
		go_ = true
		mu.unlock(th)
		cond.Broadcast(th)
	})
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if woke != 3 {
		t.Fatalf("woke = %d, want 3", woke)
	}
}

func TestSemaphoreBoundsConcurrency(t *testing.T) {
	s := New(testConfig(6))
	sem := s.NewSemaphore("sem", 2)
	inside, maxInside := 0, 0
	for i := 0; i < 6; i++ {
		s.Fork(i, "w", func(th *Thread) {
			for j := 0; j < 5; j++ {
				sem.P(th)
				inside++
				if inside > maxInside {
					maxInside = inside
				}
				th.Advance(5000)
				inside--
				sem.V(th)
				th.Advance(sim.Time(th.Rand().Intn(3000)))
			}
		})
	}
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if maxInside != 2 {
		t.Fatalf("max concurrent holders = %d, want exactly 2", maxInside)
	}
	if sem.Count() != 2 {
		t.Fatalf("final count = %d, want 2", sem.Count())
	}
}

func TestSemaphoreZeroStartBlocksUntilV(t *testing.T) {
	s := New(testConfig(2))
	sem := s.NewSemaphore("sem", 0)
	var acquiredAt sim.Time
	s.Fork(0, "waiter", func(th *Thread) {
		sem.P(th)
		acquiredAt = th.Now()
	})
	s.Fork(1, "poster", func(th *Thread) {
		th.Advance(50_000)
		sem.V(th)
	})
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if acquiredAt < 50_000 {
		t.Fatalf("P returned at %v, before V", acquiredAt)
	}
}

func TestNegativeSemaphorePanics(t *testing.T) {
	s := New(testConfig(1))
	defer func() {
		if recover() == nil {
			t.Fatal("negative initial count did not panic")
		}
	}()
	s.NewSemaphore("bad", -1)
}

func TestBarrierReleasesTogether(t *testing.T) {
	s := New(testConfig(4))
	bar := s.NewBarrier("bar", 4)
	var releases []sim.Time
	lastCount := 0
	for i := 0; i < 4; i++ {
		delay := sim.Time((i + 1) * 20_000)
		s.Fork(i, "w", func(th *Thread) {
			th.Advance(delay)
			if bar.Arrive(th) {
				lastCount++
			}
			releases = append(releases, th.Now())
		})
	}
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if lastCount != 1 {
		t.Fatalf("%d threads thought they were last, want 1", lastCount)
	}
	// Nobody is released before the last arrival (80ms).
	for _, r := range releases {
		if r < 80_000 {
			t.Fatalf("a thread left the barrier at %v, before the last arrival", r)
		}
	}
	if bar.Generation() != 1 {
		t.Fatalf("generation = %d, want 1", bar.Generation())
	}
}

func TestBarrierReusableAcrossGenerations(t *testing.T) {
	s := New(testConfig(3))
	bar := s.NewBarrier("bar", 3)
	phases := make([]int, 3)
	for i := 0; i < 3; i++ {
		i := i
		s.Fork(i, "w", func(th *Thread) {
			for p := 0; p < 4; p++ {
				th.Advance(sim.Time(th.Rand().Intn(10_000)))
				bar.Arrive(th)
				phases[i]++
				// Everyone must be in the same phase right after release.
				for j := range phases {
					if phases[j] < phases[i]-1 || phases[j] > phases[i]+1 {
						t.Errorf("phase skew: %v", phases)
					}
				}
			}
		})
	}
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if bar.Generation() != 4 {
		t.Fatalf("generation = %d, want 4", bar.Generation())
	}
}

func TestBarrierSpinWaitMode(t *testing.T) {
	s := New(testConfig(2))
	bar := s.NewBarrier("bar", 2)
	bar.SpinWait = 500
	var busy sim.Time
	s.Fork(0, "early", func(th *Thread) {
		bar.Arrive(th)
		busy = th.Busy()
	})
	s.Fork(1, "late", func(th *Thread) {
		th.Advance(100_000)
		bar.Arrive(th)
	})
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	// The early arrival burned its wait spinning, not sleeping.
	if busy < 90_000 {
		t.Fatalf("spin-waiting arrival busy only %v", busy)
	}
}
