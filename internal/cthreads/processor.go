package cthreads

import (
	"repro/internal/profile"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Processor is one node of the simulated machine running threads from a
// FIFO ready queue. Processor i executes on (and is local to) memory node i.
type Processor struct {
	sys *System
	id  int

	ready     []*Thread
	current   *Thread
	switching bool // a dispatch event is already scheduled
	// dispatchFn is the method value p.dispatch, bound once at creation so
	// every scheduled context switch reuses it.
	dispatchFn func()

	busy     sim.Time // accumulated Advance time of threads on this processor
	switches int
}

// ID returns the processor (= memory node) number.
func (p *Processor) ID() int { return p.id }

// Current returns the running thread, or nil when idle/switching.
func (p *Processor) Current() *Thread { return p.current }

// QueueLen reports how many threads are on the ready queue.
func (p *Processor) QueueLen() int { return len(p.ready) }

// Busy reports total computation time charged on this processor.
func (p *Processor) Busy() sim.Time { return p.busy }

// Switches reports how many thread dispatches this processor performed.
func (p *Processor) Switches() int { return p.switches }

// enqueue appends t to the ready queue.
func (p *Processor) enqueue(t *Thread) {
	t.state = StateReady
	p.ready = append(p.ready, t)
	t.prof.SetBase(p.sys.eng.Now(), profile.BaseQueued)
	p.sys.traceThread(trace.KindThreadReady, t, "", 0)
}

// maybeSchedule arranges a dispatch after the context-switch cost if the
// processor is idle, has runnable threads, and no dispatch is pending.
func (p *Processor) maybeSchedule() {
	if p.current != nil || p.switching || len(p.ready) == 0 {
		return
	}
	p.switching = true
	p.sys.eng.After(p.sys.mach.Config().ContextSwitch, p.dispatchFn)
}

// dispatch installs the next ready thread as current and transfers control
// to it. Runs in engine-event context.
func (p *Processor) dispatch() {
	p.switching = false
	if p.current != nil || len(p.ready) == 0 {
		return
	}
	t := p.ready[0]
	copy(p.ready, p.ready[1:])
	p.ready = p.ready[:len(p.ready)-1]
	p.current = t
	p.switches++
	p.sys.stats.ContextSwitches++
	if t.state == StateBlocked || t.state == StateDone {
		panic("cthreads: dispatching thread in state " + t.state.String())
	}
	wasBlocked := t.blockedAt >= 0
	if wasBlocked {
		t.blockedTotal += p.sys.eng.Now() - t.blockedAt
		t.blockedAt = -1
	}
	t.state = StateRunning
	t.sliceLeft = p.sys.mach.Config().Quantum
	t.prof.SetBase(p.sys.eng.Now(), profile.BaseRunning)
	p.sys.traceThread(trace.KindThreadRun, t, "", 0)
	if !t.started {
		t.started = true
		t.coro.Start(0)
		return
	}
	t.coro.Unpark(0)
}

// release gives up the processor (current must be the caller's thread) and
// schedules the next dispatch.
func (p *Processor) release() {
	p.current = nil
	p.maybeSchedule()
}
