package cthreads

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

// testConfig keeps latencies small and round for readable assertions.
func testConfig(procs int) sim.Config {
	return sim.Config{
		Nodes:         procs,
		LocalAccess:   10,
		RemoteAccess:  40,
		AtomicExtra:   5,
		Instr:         1,
		ContextSwitch: 100,
		Wakeup:        200,
		Seed:          1,
	}
}

func TestForkRunsThread(t *testing.T) {
	s := New(testConfig(1))
	ran := false
	s.Fork(0, "worker", func(th *Thread) {
		ran = true
		th.Advance(50)
	})
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !ran {
		t.Fatal("thread body never ran")
	}
	// One context switch (100) + 50 advance.
	if got := s.Now(); got != 150 {
		t.Fatalf("final time = %v, want 150", got)
	}
}

func TestAdvanceOccupiesProcessor(t *testing.T) {
	s := New(testConfig(1))
	var order []string
	s.Fork(0, "a", func(th *Thread) {
		th.Advance(1000)
		order = append(order, "a-done")
	})
	s.Fork(0, "b", func(th *Thread) {
		order = append(order, "b-start")
	})
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(order) != 2 || order[0] != "a-done" || order[1] != "b-start" {
		t.Fatalf("order = %v: thread b ran while a occupied the processor", order)
	}
}

func TestThreadsOnDifferentProcessorsOverlap(t *testing.T) {
	s := New(testConfig(2))
	var aEnd, bEnd sim.Time
	s.Fork(0, "a", func(th *Thread) { th.Advance(1000); aEnd = th.Now() })
	s.Fork(1, "b", func(th *Thread) { th.Advance(1000); bEnd = th.Now() })
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if aEnd != bEnd {
		t.Fatalf("parallel threads finished at %v and %v, want same time", aEnd, bEnd)
	}
	if s.Now() != 1100 {
		t.Fatalf("makespan = %v, want 1100 (switch + work, in parallel)", s.Now())
	}
}

func TestYieldAlternates(t *testing.T) {
	s := New(testConfig(1))
	var order []string
	mk := func(name string) func(*Thread) {
		return func(th *Thread) {
			for i := 0; i < 3; i++ {
				order = append(order, name)
				th.Yield()
			}
		}
	}
	s.Fork(0, "a", mk("a"))
	s.Fork(0, "b", mk("b"))
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	want := "ababab"
	if got := strings.Join(order, ""); got != want {
		t.Fatalf("yield order = %q, want %q", got, want)
	}
}

func TestBlockWake(t *testing.T) {
	s := New(testConfig(2))
	var wokeAt sim.Time
	sleeper := s.Fork(0, "sleeper", func(th *Thread) {
		th.Block()
		wokeAt = th.Now()
	})
	s.Fork(1, "waker", func(th *Thread) {
		th.Advance(1000)
		if !th.Wake(sleeper) {
			t.Error("Wake returned false for blocked thread")
		}
	})
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	// waker: switch(100) + 1000 + wakeup charge(200) = 1300; then sleeper
	// needs a context switch (100) to get back on processor 0.
	if wokeAt != 1400 {
		t.Fatalf("sleeper woke at %v, want 1400", wokeAt)
	}
	if sleeper.BlockedTime() <= 0 {
		t.Fatal("BlockedTime not accounted")
	}
}

func TestWakeNonBlockedReturnsFalse(t *testing.T) {
	s := New(testConfig(2))
	busy := s.Fork(0, "busy", func(th *Thread) { th.Advance(10000) })
	s.Fork(1, "waker", func(th *Thread) {
		if th.Wake(busy) {
			t.Error("Wake returned true for running thread")
		}
	})
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestBlockTimeoutFires(t *testing.T) {
	s := New(testConfig(1))
	var timedOut bool
	s.Fork(0, "t", func(th *Thread) {
		timedOut = th.BlockTimeout(500)
	})
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !timedOut {
		t.Fatal("BlockTimeout did not report timeout")
	}
	if s.Stats().Timeouts != 1 {
		t.Fatalf("Timeouts = %d, want 1", s.Stats().Timeouts)
	}
}

func TestBlockTimeoutWokenEarly(t *testing.T) {
	s := New(testConfig(2))
	var timedOut bool
	sleeper := s.Fork(0, "sleeper", func(th *Thread) {
		timedOut = th.BlockTimeout(1_000_000)
		// Block again: the stale timer from the first block must not
		// wake this one.
		th.BlockTimeout(100)
	})
	s.Fork(1, "waker", func(th *Thread) {
		th.Advance(300)
		th.Wake(sleeper)
	})
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if timedOut {
		t.Fatal("woken thread reported timeout")
	}
}

func TestJoin(t *testing.T) {
	s := New(testConfig(2))
	var joinedAt, childEnd sim.Time
	child := s.Fork(1, "child", func(th *Thread) {
		th.Advance(5000)
		childEnd = th.Now()
	})
	s.Fork(0, "parent", func(th *Thread) {
		th.Join(child)
		joinedAt = th.Now()
	})
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if joinedAt <= childEnd {
		t.Fatalf("parent joined at %v, child ended %v", joinedAt, childEnd)
	}
}

func TestJoinFinishedThreadReturnsImmediately(t *testing.T) {
	s := New(testConfig(1))
	child := s.Fork(0, "child", func(th *Thread) {})
	s.Fork(0, "parent", func(th *Thread) {
		th.Advance(10000) // child certainly done
		before := th.Now()
		th.Join(child)
		if th.Now() != before {
			t.Error("Join of finished thread consumed time")
		}
	})
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestManyJoinersAllWake(t *testing.T) {
	s := New(testConfig(4))
	target := s.Fork(0, "target", func(th *Thread) { th.Advance(1000) })
	woke := 0
	for i := 1; i < 4; i++ {
		s.Fork(i, "joiner", func(th *Thread) {
			th.Join(target)
			woke++
		})
	}
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if woke != 3 {
		t.Fatalf("%d joiners woke, want 3", woke)
	}
}

func TestDeadlockReportsStuckThreads(t *testing.T) {
	s := New(testConfig(1))
	s.Fork(0, "stuck", func(th *Thread) { th.Block() })
	err := s.Run()
	if err == nil {
		t.Fatal("Run returned nil for deadlocked system")
	}
	if !strings.Contains(err.Error(), "stuck") {
		t.Fatalf("error %q does not name the stuck thread", err)
	}
}

func TestCellAccessFromThreadChargesLatency(t *testing.T) {
	s := New(testConfig(2))
	cell := s.Machine().NewCell(0, "x", 0)
	var localT, remoteT sim.Time
	s.Fork(0, "local", func(th *Thread) {
		start := th.Now()
		cell.Load(th)
		localT = th.Now() - start
	})
	s.Fork(1, "remote", func(th *Thread) {
		start := th.Now()
		cell.Load(th)
		remoteT = th.Now() - start
	})
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if localT != 10 || remoteT != 40 {
		t.Fatalf("local=%v remote=%v, want 10 and 40", localT, remoteT)
	}
}

func TestDeterministicRuns(t *testing.T) {
	run := func() sim.Time {
		s := New(testConfig(4))
		cell := s.Machine().NewCell(0, "ctr", 0)
		done := make([]*Thread, 0, 8)
		for i := 0; i < 8; i++ {
			proc := i % 4
			done = append(done, s.Fork(proc, "w", func(th *Thread) {
				for j := 0; j < 20; j++ {
					cell.AtomicAdd(th, 1)
					th.Advance(sim.Time(th.Rand().Intn(100)))
					th.Yield()
				}
			}))
		}
		if err := s.Run(); err != nil {
			t.Fatalf("Run: %v", err)
		}
		if cell.Peek() != 160 {
			t.Fatalf("counter = %d, want 160", cell.Peek())
		}
		_ = done
		return s.Now()
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("runs diverge: %v vs %v", a, b)
	}
}

func TestThreadPanicSurfaces(t *testing.T) {
	s := New(testConfig(1))
	s.Fork(0, "boom", func(th *Thread) { panic("oops") })
	if err := s.Run(); err == nil {
		t.Fatal("Run returned nil despite thread panic")
	}
}

func TestAdvanceFromWrongContextPanics(t *testing.T) {
	s := New(testConfig(2))
	var victim *Thread
	victim = s.Fork(0, "victim", func(th *Thread) { th.Block() })
	s.Fork(1, "offender", func(th *Thread) {
		defer func() {
			if recover() == nil {
				t.Error("Advance on another thread did not panic")
			}
			th.Wake(victim)
		}()
		victim.Advance(10)
	})
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestStatsCounts(t *testing.T) {
	s := New(testConfig(2))
	sleeper := s.Fork(0, "sleeper", func(th *Thread) { th.Block() })
	s.Fork(1, "waker", func(th *Thread) { th.Wake(sleeper) })
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	st := s.Stats()
	if st.Forks != 2 {
		t.Errorf("Forks = %d, want 2", st.Forks)
	}
	if st.Wakeups != 1 {
		t.Errorf("Wakeups = %d, want 1", st.Wakeups)
	}
	if st.ContextSwitches < 2 {
		t.Errorf("ContextSwitches = %d, want ≥ 2", st.ContextSwitches)
	}
}

func TestQuantumPreemptionRoundRobin(t *testing.T) {
	cfg := testConfig(1)
	cfg.Quantum = 1000
	s := New(cfg)
	var order []string
	for _, name := range []string{"a", "b"} {
		name := name
		s.Fork(0, name, func(th *Thread) {
			for i := 0; i < 3; i++ {
				th.Advance(1000) // exactly one quantum
				order = append(order, name)
			}
		})
	}
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	// With round-robin at quantum expiry the threads interleave; without
	// preemption thread a would log all three entries first.
	if order[0] == order[1] && order[1] == order[2] {
		t.Fatalf("order = %v: no preemption happened", order)
	}
	if s.Stats().Preemptions == 0 {
		t.Fatal("Preemptions counter is zero")
	}
}

func TestQuantumZeroMeansNoPreemption(t *testing.T) {
	s := New(testConfig(1))
	var order []string
	for _, name := range []string{"a", "b"} {
		name := name
		s.Fork(0, name, func(th *Thread) {
			for i := 0; i < 3; i++ {
				th.Advance(1000)
				order = append(order, name)
			}
		})
	}
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	want := []string{"a", "a", "a", "b", "b", "b"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want run-to-completion %v", order, want)
		}
	}
}

func TestQuantumSoloThreadNeverPreempted(t *testing.T) {
	cfg := testConfig(1)
	cfg.Quantum = 100
	s := New(cfg)
	s.Fork(0, "solo", func(th *Thread) { th.Advance(10_000) })
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if s.Stats().Preemptions != 0 {
		t.Fatalf("solo thread preempted %d times", s.Stats().Preemptions)
	}
}

func TestUtilization(t *testing.T) {
	s := New(testConfig(2))
	s.Fork(0, "busy", func(th *Thread) { th.Advance(10_000) })
	// Processor 1 idles the whole run.
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	u := s.Utilization()
	if u <= 0.3 || u >= 0.6 {
		t.Fatalf("Utilization = %.2f, want ≈ 0.5 (one of two processors busy)", u)
	}
}

// Property: random programs of advances, yields, timed blocks, and forks
// always run to completion (no lost wakeups or scheduler stalls), and two
// identical runs produce identical final clocks.
func TestRandomProgramsCompleteProperty(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	run := func(seed uint64) sim.Time {
		cfg := testConfig(4)
		cfg.Seed = seed
		cfg.Quantum = 5000
		s := New(cfg)
		for i := 0; i < 6; i++ {
			s.Fork(i%4, "w", func(th *Thread) {
				for j := 0; j < 15; j++ {
					switch th.Rand().Intn(4) {
					case 0:
						th.Advance(sim.Time(th.Rand().Intn(3000)))
					case 1:
						th.Yield()
					case 2:
						th.BlockTimeout(sim.Time(th.Rand().Intn(2000) + 1))
					case 3:
						th.Compute(th.Rand().Intn(500))
					}
				}
			})
		}
		if err := s.Run(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		return s.Now()
	}
	f := func(seedRaw uint16) bool {
		seed := uint64(seedRaw) + 1
		return run(seed) == run(seed)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
