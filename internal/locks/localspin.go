package locks

import (
	"repro/internal/cthreads"
	"repro/internal/sim"
)

// LocalSpinLock is a queue lock in the MCS style (Mellor-Crummey & Scott,
// 1991): each waiter spins on a flag in its *own* memory module, and the
// releaser writes that flag directly. It is the "distributed"
// representation of a lock the paper's §2 alludes to when discussing
// re-targeting lock implementations to different architectural platforms —
// on a machine whose memory modules serialize accesses
// (sim.Config.ModuleService), a centralized test-and-set lock's spinners
// flood the lock word's module and slow down the very release they are
// waiting for, while this lock's spins stay local.
type LocalSpinLock struct {
	base
	// tail mirrors the tail word's contents (which qnode, if any, is at
	// the queue's end); the cost of updating it is charged via tailCell.
	tail     *qnode
	tailCell *sim.Cell
	nodes    map[*cthreads.Thread]*qnode
}

// qnode is a per-thread queue record; wait lives on the thread's own node
// so spinning on it is local.
type qnode struct {
	t    *cthreads.Thread
	wait *sim.Cell
	next *qnode
	// spin (the waiter's local poll of wait) and link (the releaser's
	// wait for a mid-enqueue successor's next pointer) are the record's
	// two busy-wait loops as specs, built once per qnode.
	spin sim.SpinSpec
	link sim.SpinSpec
}

// NewLocalSpinLock allocates an MCS-style queue lock whose tail word lives
// on the given node. Queue records are released as their threads exit, so
// a run that churns through short-lived threads does not accumulate one
// qnode (and one simulated cell) per thread that ever touched the lock.
func NewLocalSpinLock(sys *cthreads.System, node int, name string, costs Costs) *LocalSpinLock {
	l := &LocalSpinLock{
		base:  newBase(sys, node, name, costs),
		nodes: make(map[*cthreads.Thread]*qnode),
	}
	l.tailCell = sys.Machine().NewCell(node, name+".tail", 0)
	sys.OnThreadExit(func(t *cthreads.Thread) { delete(l.nodes, t) })
	return l
}

// qnodeFor returns (allocating on first use) the caller's queue record.
func (l *LocalSpinLock) qnodeFor(t *cthreads.Thread) *qnode {
	qn, ok := l.nodes[t]
	if !ok {
		qn = &qnode{t: t, wait: l.sys.Machine().NewCell(t.Node(), l.name+".wait."+t.Name(), 0)}
		qn.spin = sim.SpinSpec{
			ProbeCell: qn.wait,
			Probe:     func() bool { return qn.wait.Peek() == 0 },
			PauseCost: l.spinPause,
			MaxIters:  sim.SpinUnbounded,
			Label:     l.frameSpin,
		}
		qn.link = sim.SpinSpec{
			Probe:     func() bool { return qn.next != nil },
			PauseCost: l.spinPause,
			MaxIters:  sim.SpinUnbounded,
			Label:     l.frameSpin + ".link",
		}
		l.nodes[t] = qn
	}
	return qn
}

// retained reports how many queue records the lock currently holds (for
// the churn regression test).
func (l *LocalSpinLock) retained() int { return len(l.nodes) }

// Lock enqueues the caller's qnode with an atomic fetch-and-store on the
// tail word, links behind the predecessor, and spins on its own local
// flag until the predecessor hands over.
func (l *LocalSpinLock) Lock(t *cthreads.Thread) {
	start := t.Now()
	t.Compute(l.costs.SpinLockSteps)
	l.observe(t, l.spinners)
	qn := l.qnodeFor(t)
	qn.next = nil
	qn.wait.Store(t, 1) // local write

	// fetch-and-store tail ← qn (one RMW on the lock's home node).
	l.tailCell.AtomicOr(t, 1) // charge the RMW; the value mirror is below
	pred := l.tail
	l.tail = qn
	if pred == nil {
		l.acquired(t, start, false)
		return
	}
	l.spinners++
	// Link behind the predecessor: one reference to its node.
	t.Advance(l.sys.Machine().AccessCost(t.Node(), pred.t.Node()))
	pred.next = qn
	// LOCAL spin: cheap probes of the waiter's own module; the engine
	// batches the futile probes between genuine handoffs.
	iters, _ := t.SpinUntil(&qn.spin)
	l.stats.SpinIters += uint64(iters)
	l.spinners--
	l.acquired(t, start, true)
}

// Unlock hands the lock to the successor by clearing its local flag, or
// resets the tail when no one waits.
func (l *LocalSpinLock) Unlock(t *cthreads.Thread) {
	l.checkOwner(t, "Unlock")
	l.unlockStart(t)
	defer l.unlockEnd(t) // the no-successor path has an early exit
	t.Compute(l.costs.SpinUnlockSteps)
	qn := l.qnodeFor(t)
	l.owner = nil
	l.traceRelease(t)
	if qn.next == nil {
		// No known successor: try to swing tail back to nil (one RMW).
		l.tailCell.AtomicOr(t, 1)
		if l.tail == qn {
			l.tail = nil
			return
		}
		// A successor is mid-enqueue: wait for its link to appear (an
		// uncharged probe of plain state, one pause per futile check).
		t.SpinUntil(&qn.link)
	}
	// Hand over: one write into the successor's local module.
	next := qn.next
	qn.next = nil
	next.wait.Store(t, 0)
}
