package locks

import "repro/internal/sim"

// Costs calibrates the instruction-step charges of each lock operation.
// Steps are multiplied by the machine's per-instruction cost
// (sim.Config.Instr, default 250ns); memory references are charged
// separately through sim.Cell at the machine's local/remote latencies.
//
// The defaults are chosen so that, on the default machine, the §5.2
// microbenchmarks land near the paper's measurements: an atomior-only lock
// operation near 31µs local, a spin-lock operation near 41µs, a blocking
// lock operation near 89µs, spin unlock near 5µs, blocking unlock near
// 62µs, and so on. The large fixed charges reflect that on the GP1000 a
// lock operation was a C library call on a 16MHz processor.
type Costs struct {
	// TASLockSteps is the call overhead of the raw atomior lock operation.
	TASLockSteps int
	// TASUnlockSteps is the raw unlock overhead.
	TASUnlockSteps int
	// SpinLockSteps is the call + registration overhead of spin-family
	// lock operations (spin, backoff, reconfigurable, adaptive).
	SpinLockSteps int
	// SpinUnlockSteps is the spin-family unlock overhead.
	SpinUnlockSteps int
	// BlockLockSteps is the call + registration overhead of the blocking
	// lock's lock operation (it must prepare a queue record).
	BlockLockSteps int
	// BlockUnlockSteps is the blocking unlock overhead (queue inspection,
	// scheduler release component).
	BlockUnlockSteps int
	// AdaptUnlockSteps is the adaptive/reconfigurable unlock overhead:
	// cheaper than the blocking lock's (the fast path only peeks at the
	// queue) but dearer than a spin lock's.
	AdaptUnlockSteps int
	// SpinPauseSteps is the pause between spin-loop iterations.
	SpinPauseSteps int
	// QueueOpAccesses is the number of memory references to the lock's
	// node for one wait-queue insert or remove.
	QueueOpAccesses int
	// PostWakeSteps is the cost a woken waiter pays to finish acquiring.
	PostWakeSteps int
	// GrantExtraSteps is the extra release-component work the
	// reconfigurable/adaptive lock performs when handing the lock to a
	// sleeping waiter (scheduler variant dispatch, ownership transfer).
	GrantExtraSteps int
	// BackoffUnit is the per-waiting-thread backoff delay of the
	// spin-with-backoff lock (Anderson et al.: proportional to the number
	// of threads waiting).
	BackoffUnit sim.Time
	// MonitorSampleSteps is the closely-coupled customized lock monitor's
	// cost to collect one sample and run the adaptation policy.
	MonitorSampleSteps int
	// GeneralMonitorSteps is the cost of routing one state variable
	// through the general-purpose thread monitor (Table 8's "monitor (one
	// state variable)" row; the paper measured 66µs and found it too
	// loosely coupled for adaptive locks).
	GeneralMonitorSteps int
}

// DefaultCosts returns the calibrated defaults described above.
func DefaultCosts() Costs {
	return Costs{
		TASLockSteps:        118,
		TASUnlockSteps:      6,
		SpinLockSteps:       146,
		SpinUnlockSteps:     16,
		BlockLockSteps:      342,
		BlockUnlockSteps:    240,
		AdaptUnlockSteps:    186,
		SpinPauseSteps:      2,
		QueueOpAccesses:     2,
		PostWakeSteps:       8,
		GrantExtraSteps:     110,
		BackoffUnit:         60 * sim.Microsecond,
		MonitorSampleSteps:  14,
		GeneralMonitorSteps: 260,
	}
}
