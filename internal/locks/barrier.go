package locks

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/cthreads"
	"repro/internal/sim"
)

// Barrier abstracts over barrier implementations (cthreads.Barrier and
// AdaptiveBarrier): Arrive blocks until all parties have arrived and
// reports whether the caller tripped the barrier.
type Barrier interface {
	Arrive(t *cthreads.Thread) bool
}

// Barrier sensor and attribute names.
const (
	// BarrierAttrSpin is the number of polls an early arrival performs
	// before sleeping.
	BarrierAttrSpin = "spin-time"
	// BarrierSensorSpread senses the arrival spread of each trip: the
	// time from the first arrival to the trip, in microseconds.
	BarrierSensorSpread = "arrival-spread-us"
	// BarrierSensorCoRunnable senses, per trip, the percentage of
	// arrivals that found other runnable threads on their processor —
	// the paper's own criterion for when busy-waiting is wrong
	// ("spinning prevents the progress of other threads", §2).
	BarrierSensorCoRunnable = "co-runnable-pct"
)

// AdaptiveBarrier applies the paper's §7 programme — closely-coupled
// adaptation in other operating system components — to a barrier. Early
// arrivals poll for spin-time rounds before sleeping; the built-in
// monitor senses each trip's arrival spread and the policy moves
// spin-time: balanced phases (small spread) make waiting cheap enough to
// poll through, imbalanced phases (large spread) make sleeping pay.
type AdaptiveBarrier struct {
	sys     *cthreads.System
	name    string
	parties int
	obj     *core.Object

	// PollPause is the virtual time of one poll round.
	PollPause sim.Time

	// Attribution frame labels (precomputed; see internal/profile).
	framePoll string
	frameWait string

	gen          uint64
	arrived      int
	firstArrival sim.Time
	readyHits    int
	sleepers     []*waiter

	trips  uint64
	blocks uint64
	polls  uint64
}

// BarrierReadyPolicy is the default adaptation policy for
// AdaptiveBarrier, keyed on the co-runnable sensor: when arrivals mostly
// own their processors (co-runnable ≤ ThresholdPct), the spin budget
// grows multiplicatively toward MaxSpin — polling wastes nothing; when
// co-located threads could run instead, the budget is cut to GraceSpin —
// a short poll to catch imminent trips, then sleep and free the
// processor.
type BarrierReadyPolicy struct {
	ThresholdPct int64
	GraceSpin    int64
	Step         int64
	MaxSpin      int64
}

// React implements core.Policy (samples from other sensors are ignored).
func (p BarrierReadyPolicy) React(s core.Sample, o *core.Object) []core.Decision {
	if s.Sensor != BarrierSensorCoRunnable {
		return nil
	}
	cur, err := o.Attrs.Get(BarrierAttrSpin)
	if err != nil {
		return nil
	}
	var next int64
	if s.Value <= p.ThresholdPct {
		next = cur*2 + p.Step
		if next > p.MaxSpin {
			next = p.MaxSpin
		}
	} else {
		next = p.GraceSpin
	}
	if next == cur {
		return nil
	}
	return []core.Decision{{Attr: BarrierAttrSpin, Value: next}}
}

// NewAdaptiveBarrier creates an adaptive barrier for the given parties.
// A nil policy installs BarrierSpreadPolicy{Threshold: 50, Step: 4,
// MaxSpin: 400}.
func NewAdaptiveBarrier(sys *cthreads.System, name string, parties int, policy core.Policy) *AdaptiveBarrier {
	if parties < 1 {
		panic(fmt.Sprintf("locks: adaptive barrier %q needs at least 1 party", name))
	}
	b := &AdaptiveBarrier{
		sys:       sys,
		name:      name,
		parties:   parties,
		PollPause: 2 * sim.Microsecond,
		framePoll: "poll:" + name,
		frameWait: "wait:" + name,
	}
	b.obj = core.NewObject(name)
	b.obj.Attrs.Define(BarrierAttrSpin, 32, true)
	b.obj.Monitor.AddSensor(BarrierSensorSpread, 1, func() int64 {
		return int64((b.sys.Now() - b.firstArrival) / sim.Microsecond)
	})
	b.obj.Monitor.AddSensor(BarrierSensorCoRunnable, 1, func() int64 {
		return int64(100 * b.readyHits / b.parties)
	})
	if policy == nil {
		policy = BarrierReadyPolicy{ThresholdPct: 25, GraceSpin: 12, Step: 8, MaxSpin: 600}
	}
	b.obj.SetPolicy(policy)
	b.obj.SetLedgerSource(
		func() *core.Ledger { return sys.Ledger() },
		func() int64 { return int64(sys.Now()) })
	return b
}

// Object exposes the barrier's adaptive object.
func (b *AdaptiveBarrier) Object() *core.Object { return b.obj }

// pollPause is the spin-spec pause of the barrier's poll loop.
func (b *AdaptiveBarrier) pollPause() sim.Time { return b.PollPause }

// Stats reports trips, sleeps, and poll rounds.
func (b *AdaptiveBarrier) Stats() (trips, blocks, polls uint64) {
	return b.trips, b.blocks, b.polls
}

// Arrive blocks (by polling, then sleeping, per the current spin-time)
// until all parties arrive; the last arrival trips the barrier, feeds the
// monitor, and wakes the sleepers.
func (b *AdaptiveBarrier) Arrive(t *cthreads.Thread) bool {
	gen := b.gen
	if b.arrived == 0 {
		b.firstArrival = t.Now()
	}
	b.arrived++
	if t.Proc().QueueLen() > 0 {
		b.readyHits++
	}
	if b.arrived == b.parties {
		// Trip: sense this round (feeding the policy inline), then
		// release everyone.
		b.trips++
		b.obj.Monitor.Probe(BarrierSensorSpread)
		b.obj.Monitor.Probe(BarrierSensorCoRunnable)
		t.Compute(8) // monitor collection + policy
		b.arrived = 0
		b.readyHits = 0
		b.gen++
		ws := b.sleepers
		b.sleepers = nil
		for _, w := range ws {
			w.granted = true
			t.Wake(w.t)
		}
		return true
	}

	// Early arrival: poll per the current spin budget. As a spin spec
	// the loop is an uncharged generation probe with one PollPause per
	// futile poll, bounded by the budget; the engine batches the polls
	// between trips.
	budget := b.obj.Attrs.MustGet(BarrierAttrSpin)
	if budget < 0 {
		budget = 0
	}
	spec := sim.SpinSpec{
		Probe:     func() bool { return b.gen != gen },
		PauseCost: b.pollPause,
		MaxIters:  budget,
		Label:     b.framePoll,
	}
	polls, tripped := t.SpinUntil(&spec)
	b.polls += uint64(polls)
	if tripped {
		return false
	}
	// Budget exhausted: sleep until the trip.
	w := &waiter{t: t, enqueued: t.Now()}
	b.sleepers = append(b.sleepers, w)
	b.blocks++
	if p := t.Prof(); p != nil {
		p.Push(t.Now(), b.frameWait)
	}
	for b.gen == gen {
		if !w.granted {
			t.Block()
		} else {
			break
		}
	}
	if p := t.Prof(); p != nil {
		p.Pop(t.Now(), b.frameWait)
	}
	return false
}
