package locks

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/cthreads"
	"repro/internal/sim"
)

// within reports whether got is within tol (a fraction) of want.
func within(got, want sim.Time, tol float64) bool {
	d := got - want
	if d < 0 {
		d = -d
	}
	return float64(d) <= tol*float64(want)
}

// TestMutableEstimateConvergence drives constant holds through the lock
// and checks the EWMA estimate converges to them — including after a step
// change in the hold time.
func TestMutableEstimateConvergence(t *testing.T) {
	sys := testSys(1)
	l := NewMutableLock(sys, 0, "m", DefaultCosts())
	const short, long = 50 * sim.Microsecond, 200 * sim.Microsecond
	var afterShort, afterLong sim.Time
	sys.Fork(0, "w", func(th *cthreads.Thread) {
		for i := 0; i < 40; i++ {
			l.Lock(th)
			th.Advance(short)
			l.Unlock(th)
		}
		afterShort, _ = l.Estimate()
		for i := 0; i < 40; i++ {
			l.Lock(th)
			th.Advance(long)
			l.Unlock(th)
		}
		afterLong, _ = l.Estimate()
	})
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	if _, ok := l.Estimate(); !ok {
		t.Fatal("estimate still invalid after 80 holds")
	}
	if !within(afterShort, short, 0.1) {
		t.Errorf("estimate after short holds = %v, want within 10%% of %v", afterShort, short)
	}
	if !within(afterLong, long, 0.1) {
		t.Errorf("estimate after step change = %v, want within 10%% of %v", afterLong, long)
	}
}

// TestMutableColdStart checks that a contended arrival before any hold has
// been observed takes the cold-start spin-then-block path rather than
// trusting a zero estimate.
func TestMutableColdStart(t *testing.T) {
	sys := testSys(2)
	l := NewMutableLock(sys, 0, "cold", DefaultCosts())
	sys.Fork(0, "holder", func(th *cthreads.Thread) {
		l.Lock(th)
		th.Advance(200 * sim.Microsecond) // far beyond the cold spin budget
		l.Unlock(th)
	})
	sys.Fork(1, "waiter", func(th *cthreads.Thread) {
		th.Advance(sim.Microsecond) // arrive while the holder is inside
		l.Lock(th)
		l.Unlock(th)
	})
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	p := l.Prediction()
	if p.Cold == 0 {
		t.Errorf("cold-start arrivals = 0, want >= 1 (prediction stats: %+v)", p)
	}
	if p.Spin+p.SpinBlock+p.Block != 0 {
		t.Errorf("predictor classified arrivals before any estimate existed: %+v", p)
	}
	if l.Stats().Blocks == 0 {
		t.Errorf("cold-start waiter never blocked despite a %v hold", 200*sim.Microsecond)
	}
}

// TestMutableDecisionClasses checks the three-way predictive decision:
// short predicted waits spin, long ones block immediately, and the
// calibration record accumulates predicted-vs-actual pairs.
func TestMutableDecisionClasses(t *testing.T) {
	run := func(hold sim.Time) (PredictionStats, Stats) {
		sys := testSys(2)
		l := NewMutableLock(sys, 0, "d", DefaultCosts())
		for i := 0; i < 2; i++ {
			sys.Fork(i, fmt.Sprintf("w%d", i), func(th *cthreads.Thread) {
				for j := 0; j < 30; j++ {
					l.Lock(th)
					th.Advance(hold)
					l.Unlock(th)
					th.Advance(hold / 2)
				}
			})
		}
		if err := sys.Run(); err != nil {
			t.Fatal(err)
		}
		return l.Prediction(), l.Stats()
	}

	// testSys block cost ≈ 100 (switch) + 200 (wakeup) + 8 (post-wake) +
	// 40 (queue refs) ≈ 350ns. A 50ns hold predicts well under it; a
	// 100µs hold predicts far over 2× it.
	shortPred, shortStats := run(50)
	if shortPred.Spin == 0 {
		t.Errorf("short holds: no arrivals classified spin: %+v", shortPred)
	}
	if shortPred.Block != 0 {
		t.Errorf("short holds: %d arrivals blocked immediately, want 0: %+v", shortPred.Block, shortPred)
	}
	if shortStats.Blocks > shortPred.Cold {
		t.Errorf("short holds: %d sleeps for %d cold arrivals — predicted spins slept", shortStats.Blocks, shortPred.Cold)
	}

	longPred, longStats := run(100 * sim.Microsecond)
	if longPred.Block == 0 {
		t.Errorf("long holds: no arrivals classified block: %+v", longPred)
	}
	if longStats.Blocks == 0 {
		t.Error("long holds: predictor classified block but nobody slept")
	}
	if longPred.Samples == 0 || longPred.PredictedSum == 0 || longPred.ActualSum == 0 {
		t.Errorf("calibration record empty after contended run: %+v", longPred)
	}
}

// mutableFuzzFingerprint is everything a fuzz run produces that must be a
// pure function of the seed.
type mutableFuzzFingerprint struct {
	Estimate sim.Time
	Valid    bool
	Pred     PredictionStats
	Lock     Stats
	FinalNow sim.Time
}

// runMutableFuzz drives a randomized contended workload and returns the
// estimator-relevant fingerprint plus the largest hold the workload asked
// for.
func runMutableFuzz(t *testing.T, seed uint64, threads, iters int, holdSpread sim.Time) (mutableFuzzFingerprint, sim.Time) {
	t.Helper()
	cfg := sim.Config{
		Nodes: 4, LocalAccess: 10, RemoteAccess: 40, AtomicExtra: 5,
		Instr: 1, ContextSwitch: 100, Wakeup: 200, Seed: seed,
	}
	sys := cthreads.New(cfg)
	l := NewMutableLock(sys, 0, "fuzz", DefaultCosts())
	var maxHold sim.Time
	for i := 0; i < threads; i++ {
		sys.Fork(i%sys.Procs(), fmt.Sprintf("w%d", i), func(th *cthreads.Thread) {
			r := th.Rand()
			for j := 0; j < iters; j++ {
				hold := sim.Time(r.Int63n(int64(holdSpread) + 1))
				if hold > maxHold {
					maxHold = hold
				}
				l.Lock(th)
				th.Advance(hold)
				l.Unlock(th)
				th.Advance(sim.Time(r.Intn(500)))
			}
		})
	}
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	est, ok := l.Estimate()
	return mutableFuzzFingerprint{
		Estimate: est, Valid: ok, Pred: l.Prediction(), Lock: l.Stats(), FinalNow: sys.Now(),
	}, maxHold
}

// FuzzMutableEstimator feeds the estimator randomized hold patterns and
// asserts its invariants: the estimate is never negative, never exceeds
// the largest observed hold plus the lock's fixed release overhead, and
// two identical runs produce byte-identical estimates and prediction
// statistics — the estimator is a pure function of virtual time, so any
// wall-clock input would break this immediately.
func FuzzMutableEstimator(f *testing.F) {
	f.Add(uint64(1), uint8(2), uint8(10), uint32(300))
	f.Add(uint64(7), uint8(4), uint8(8), uint32(100_000))
	f.Add(uint64(42), uint8(6), uint8(5), uint32(0))
	f.Fuzz(func(t *testing.T, seed uint64, threads, iters uint8, spread uint32) {
		nThreads := int(threads%6) + 1
		nIters := int(iters%12) + 2
		holdSpread := sim.Time(spread % 200_000)
		fp, maxHold := runMutableFuzz(t, seed%1000+1, nThreads, nIters, holdSpread)
		again, _ := runMutableFuzz(t, seed%1000+1, nThreads, nIters, holdSpread)
		if !reflect.DeepEqual(fp, again) {
			t.Errorf("estimator not deterministic:\nfirst:  %+v\nsecond: %+v", fp, again)
		}
		if fp.Estimate < 0 {
			t.Errorf("estimate is negative: %v", fp.Estimate)
		}
		// A measured hold is the caller's Advance plus the release path's
		// fixed entry work (AdaptUnlockSteps instructions + one access);
		// the EWMA stays inside the convex hull of its inputs.
		overhead := sim.Time(DefaultCosts().AdaptUnlockSteps) + 40
		if fp.Estimate > maxHold+overhead {
			t.Errorf("estimate %v exceeds max observed hold %v + overhead %v", fp.Estimate, maxHold, overhead)
		}
		if !fp.Valid && fp.Lock.Acquisitions > 0 {
			t.Errorf("estimate invalid after %d acquisitions", fp.Lock.Acquisitions)
		}
	})
}
