package locks

import (
	"fmt"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/cthreads"
	"repro/internal/metrics"
	"repro/internal/sim"
)

// testSys builds a small fast machine for lock tests.
func testSys(procs int) *cthreads.System {
	return cthreads.New(sim.Config{
		Nodes:         procs,
		LocalAccess:   10,
		RemoteAccess:  40,
		AtomicExtra:   5,
		Instr:         1,
		ContextSwitch: 100,
		Wakeup:        200,
		Seed:          1,
	})
}

// makeLock builds each lock kind uniformly for table-driven tests.
func makeLock(t *testing.T, sys *cthreads.System, kind Kind) Lock {
	t.Helper()
	l, err := New(sys, kind, 0, string(kind), DefaultCosts())
	if err != nil {
		t.Fatal(err)
	}
	return l
}

// exerciseMutex runs nThreads × nIters critical sections incrementing an
// unprotected Go counter; any mutual-exclusion violation shows up as a
// mid-section overlap (checked with an "inside" flag), and usually as a
// lost update.
func exerciseMutex(t *testing.T, sys *cthreads.System, l Lock, nThreads, nIters int, multiPerProc bool) {
	t.Helper()
	inside := false
	counter := 0
	var maxProcs = sys.Procs()
	for i := 0; i < nThreads; i++ {
		proc := i % maxProcs
		if !multiPerProc && i >= maxProcs {
			t.Fatalf("test bug: %d threads on %d procs without multiPerProc", nThreads, maxProcs)
		}
		sys.Fork(proc, fmt.Sprintf("w%d", i), func(th *cthreads.Thread) {
			for j := 0; j < nIters; j++ {
				l.Lock(th)
				if inside {
					t.Errorf("mutual exclusion violated in %s", l.Name())
				}
				inside = true
				th.Advance(sim.Time(50 + th.Rand().Intn(200)))
				inside = false
				counter++
				l.Unlock(th)
				th.Advance(sim.Time(th.Rand().Intn(300)))
			}
		})
	}
	if err := sys.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if counter != nThreads*nIters {
		t.Fatalf("%s: counter = %d, want %d", l.Name(), counter, nThreads*nIters)
	}
}

func TestMutualExclusionAllKindsOneThreadPerProc(t *testing.T) {
	for _, kind := range Kinds() {
		kind := kind
		t.Run(string(kind), func(t *testing.T) {
			sys := testSys(4)
			l := makeLock(t, sys, kind)
			exerciseMutex(t, sys, l, 4, 25, false)
			if l.Stats().Acquisitions != 100 {
				t.Fatalf("acquisitions = %d, want 100", l.Stats().Acquisitions)
			}
		})
	}
}

// Spinning locks cannot be used with more threads than processors if a
// spinner can starve the lock holder on its own processor — but here each
// holder finishes its critical section without yielding, so even spin
// locks are safe with multiprogramming. Blocking-capable kinds must also
// make progress.
func TestMutualExclusionMultiprogrammed(t *testing.T) {
	for _, kind := range []Kind{KindBlocking, KindAdaptive} {
		kind := kind
		t.Run(string(kind), func(t *testing.T) {
			sys := testSys(2)
			l := makeLock(t, sys, kind)
			exerciseMutex(t, sys, l, 6, 10, true)
		})
	}
}

func TestCombinedLockSpinThenBlock(t *testing.T) {
	sys := testSys(2)
	l := NewCombinedLock(sys, 0, "combined", DefaultCosts(), 3)
	exerciseMutex(t, sys, l, 2, 20, false)
	st := l.Stats()
	if st.SpinIters == 0 {
		t.Error("combined lock never spun")
	}
	if st.Blocks == 0 {
		t.Error("combined lock never blocked (critical sections exceed 3 spins)")
	}
}

func TestPureSpinNeverBlocks(t *testing.T) {
	sys := testSys(4)
	l := NewPureSpinConfigured(sys, 0, "purespin", DefaultCosts())
	exerciseMutex(t, sys, l, 4, 15, false)
	if st := l.Stats(); st.Blocks != 0 {
		t.Fatalf("pure-spin lock blocked %d times", st.Blocks)
	}
}

func TestPureBlockingNeverSpins(t *testing.T) {
	sys := testSys(4)
	l := NewPureBlockingConfigured(sys, 0, "pureblock", DefaultCosts())
	exerciseMutex(t, sys, l, 4, 15, false)
	st := l.Stats()
	if st.SpinIters != 0 {
		t.Fatalf("pure-blocking lock spun %d iterations", st.SpinIters)
	}
	if st.Blocks == 0 {
		t.Fatal("pure-blocking lock never blocked under contention")
	}
}

func TestUnlockByNonOwnerPanics(t *testing.T) {
	sys := testSys(2)
	l := makeLock(t, sys, KindSpin)
	holder := make(chan struct{}) // not used for sync; just documents intent
	_ = holder
	s1 := sys.Fork(0, "owner", func(th *cthreads.Thread) {
		l.Lock(th)
		th.Advance(10_000)
		l.Unlock(th)
	})
	_ = s1
	sys.Fork(1, "intruder", func(th *cthreads.Thread) {
		th.Advance(1000) // owner holds the lock now
		defer func() {
			if recover() == nil {
				t.Error("Unlock by non-owner did not panic")
			}
		}()
		l.Unlock(th)
	})
	// The intruder's panic is recovered inside the thread, so Run succeeds.
	if err := sys.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestBlockingLockWaitersSleepNotSpin(t *testing.T) {
	sys := testSys(2)
	l := NewBlockingLock(sys, 0, "blk", DefaultCosts())
	sys.Fork(0, "holder", func(th *cthreads.Thread) {
		l.Lock(th)
		th.Advance(100_000)
		l.Unlock(th)
	})
	var waiterBusy sim.Time
	var waiter *cthreads.Thread
	waiter = sys.Fork(1, "waiter", func(th *cthreads.Thread) {
		th.Advance(1000)
		l.Lock(th)
		waiterBusy = th.Busy()
		l.Unlock(th)
	})
	if err := sys.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if l.Stats().Blocks != 1 {
		t.Fatalf("Blocks = %d, want 1", l.Stats().Blocks)
	}
	// The waiter slept instead of burning cycles: its busy time is far
	// below the 100ms critical section it waited out.
	if waiterBusy > 20_000 {
		t.Fatalf("waiter busy %v while waiting; it should have slept", waiterBusy)
	}
	if waiter.BlockedTime() == 0 {
		t.Fatal("waiter has no blocked time")
	}
}

func TestSpinLockWaitersBurnCycles(t *testing.T) {
	sys := testSys(2)
	l := NewSpinLock(sys, 0, "spn", DefaultCosts())
	sys.Fork(0, "holder", func(th *cthreads.Thread) {
		l.Lock(th)
		th.Advance(100_000)
		l.Unlock(th)
	})
	var waiterBusy sim.Time
	sys.Fork(1, "waiter", func(th *cthreads.Thread) {
		th.Advance(1000)
		l.Lock(th)
		waiterBusy = th.Busy()
		l.Unlock(th)
	})
	if err := sys.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if waiterBusy < 90_000 {
		t.Fatalf("spin waiter busy only %v; a spinner burns the whole wait", waiterBusy)
	}
}

func TestFCFSGrantOrder(t *testing.T) {
	sys := testSys(4)
	l := NewPureBlockingConfigured(sys, 0, "fcfs", DefaultCosts())
	var order []string
	sys.Fork(0, "holder", func(th *cthreads.Thread) {
		l.Lock(th)
		th.Advance(500_000) // everybody queues meanwhile
		l.Unlock(th)
	})
	for i := 1; i < 4; i++ {
		name := fmt.Sprintf("w%d", i)
		delay := sim.Time(i * 10_000) // staggered arrivals: w1, w2, w3
		sys.Fork(i, name, func(th *cthreads.Thread) {
			th.Advance(delay)
			l.Lock(th)
			order = append(order, th.Name())
			l.Unlock(th)
		})
	}
	if err := sys.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	want := []string{"w1", "w2", "w3"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("grant order = %v, want %v", order, want)
		}
	}
}

func TestPrioritySchedulerGrantsHighestFirst(t *testing.T) {
	sys := testSys(4)
	l := NewPureBlockingConfigured(sys, 0, "prio", DefaultCosts())
	if _, err := l.Object().Methods.Install(MethodScheduler, SchedPriority); err != nil {
		t.Fatal(err)
	}
	var order []string
	sys.Fork(0, "holder", func(th *cthreads.Thread) {
		l.Lock(th)
		th.Advance(500_000)
		l.Unlock(th)
	})
	prios := map[string]int{"w1": 1, "w2": 9, "w3": 5}
	for i := 1; i < 4; i++ {
		name := fmt.Sprintf("w%d", i)
		delay := sim.Time(i * 10_000)
		sys.Fork(i, name, func(th *cthreads.Thread) {
			th.SetPriority(prios[th.Name()])
			th.Advance(delay)
			l.Lock(th)
			order = append(order, th.Name())
			l.Unlock(th)
		})
	}
	if err := sys.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	want := []string{"w2", "w3", "w1"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("grant order = %v, want %v (highest priority first)", order, want)
		}
	}
}

func TestHandoffSchedulerGrantsSuccessor(t *testing.T) {
	sys := testSys(4)
	l := NewPureBlockingConfigured(sys, 0, "handoff", DefaultCosts())
	if _, err := l.Object().Methods.Install(MethodScheduler, SchedHandoff); err != nil {
		t.Fatal(err)
	}
	var order []string
	var workers [4]*cthreads.Thread
	sys.Fork(0, "holder", func(th *cthreads.Thread) {
		l.Lock(th)
		th.Advance(500_000)
		l.SetSuccessor(workers[3]) // hand to the last arrival
		l.Unlock(th)
	})
	for i := 1; i < 4; i++ {
		i := i
		name := fmt.Sprintf("w%d", i)
		workers[i] = sys.Fork(i, name, func(th *cthreads.Thread) {
			th.Advance(sim.Time(i * 10_000))
			l.Lock(th)
			order = append(order, th.Name())
			l.Unlock(th)
		})
	}
	if err := sys.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if order[0] != "w3" {
		t.Fatalf("grant order = %v, want w3 first (handoff)", order)
	}
}

func TestTimeoutConditionalSleepRetries(t *testing.T) {
	sys := testSys(2)
	l := NewReconfigurableLock(sys, 0, "timeout", DefaultCosts(), 0)
	l.SetupPolicy(0, 0, 1, 50_000) // pure blocking with a 50µs timeout
	acquired := false
	sys.Fork(0, "holder", func(th *cthreads.Thread) {
		l.Lock(th)
		th.Advance(400_000)
		l.Unlock(th)
	})
	sys.Fork(1, "waiter", func(th *cthreads.Thread) {
		th.Advance(1000)
		l.Lock(th)
		acquired = true
		l.Unlock(th)
	})
	if err := sys.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !acquired {
		t.Fatal("waiter never acquired")
	}
	if sys.Stats().Timeouts == 0 {
		t.Fatal("conditional sleep never timed out during a 400µs hold")
	}
}

func TestAdaptiveConfiguresNoContentionLockToSpin(t *testing.T) {
	sys := testSys(1)
	l := NewAdaptiveLock(sys, 0, "adapt", DefaultCosts(), nil)
	sys.Fork(0, "solo", func(th *cthreads.Thread) {
		for i := 0; i < 40; i++ {
			l.Lock(th)
			th.Advance(100)
			l.Unlock(th)
		}
	})
	if err := sys.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	// No contention → the policy drives spin-time to MaxSpin (pure spin).
	spin := l.Object().Attrs.MustGet(AttrSpinTime)
	def := core.DefaultSimpleAdapt(AttrSpinTime)
	if spin != def.MaxSpin {
		t.Fatalf("spin-time = %d after uncontended run, want MaxSpin %d", spin, def.MaxSpin)
	}
	if l.Stats().Blocks != 0 {
		t.Fatalf("uncontended adaptive lock blocked %d times", l.Stats().Blocks)
	}
}

func TestAdaptiveConfiguresOverloadedLockToBlocking(t *testing.T) {
	sys := testSys(8)
	l := NewAdaptiveLock(sys, 0, "adapt", DefaultCosts(),
		core.SimpleAdapt{SpinAttr: AttrSpinTime, WaitingThreshold: 1, Step: 4, MaxSpin: 1000})
	var minSpinSeen int64 = 1 << 60
	for i := 0; i < 8; i++ {
		sys.Fork(i, fmt.Sprintf("w%d", i), func(th *cthreads.Thread) {
			for j := 0; j < 15; j++ {
				l.Lock(th)
				th.Advance(20_000) // long critical sections pile up waiters
				if v := l.Object().Attrs.MustGet(AttrSpinTime); v < minSpinSeen {
					minSpinSeen = v
				}
				l.Unlock(th)
			}
		})
	}
	if err := sys.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if minSpinSeen > 0 {
		t.Fatalf("overloaded adaptive lock never reached pure blocking (min spin-time %d)", minSpinSeen)
	}
	if l.Stats().Blocks == 0 {
		t.Fatal("overloaded adaptive lock never blocked")
	}
}

func TestAdaptiveMonitorSamplesEveryOtherUnlock(t *testing.T) {
	sys := testSys(1)
	l := NewAdaptiveLock(sys, 0, "adapt", DefaultCosts(), nil)
	sys.Fork(0, "solo", func(th *cthreads.Thread) {
		for i := 0; i < 10; i++ {
			l.Lock(th)
			l.Unlock(th)
		}
	})
	if err := sys.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	sensor := l.Object().Monitor.Sensor(SensorWaiting)
	if sensor.Probes() != 10 || sensor.Samples() != 5 {
		t.Fatalf("probes/samples = %d/%d, want 10/5", sensor.Probes(), sensor.Samples())
	}
}

func TestConfigureByChargesAndApplies(t *testing.T) {
	sys := testSys(1)
	l := NewReconfigurableLock(sys, 0, "cfg", DefaultCosts(), 5)
	var attrCost, schedCost sim.Time
	sys.Fork(0, "cfg", func(th *cthreads.Thread) {
		start := th.Now()
		if err := l.ConfigureBy(th, core.Decision{Attr: AttrSpinTime, Value: 50}, core.OwnerSelf); err != nil {
			t.Errorf("ConfigureBy attr: %v", err)
		}
		attrCost = th.Now() - start
		start = th.Now()
		if err := l.ConfigureBy(th, core.Decision{Method: MethodScheduler, Variant: SchedPriority}, core.OwnerSelf); err != nil {
			t.Errorf("ConfigureBy method: %v", err)
		}
		schedCost = th.Now() - start
	})
	if err := sys.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if l.Object().Attrs.MustGet(AttrSpinTime) != 50 {
		t.Fatal("attribute not applied")
	}
	if v, _ := l.Object().Methods.Installed(MethodScheduler); v != SchedPriority {
		t.Fatal("scheduler not installed")
	}
	if attrCost <= 0 || schedCost <= attrCost {
		t.Fatalf("costs: attr=%v sched=%v; scheduler reconfig must cost more", attrCost, schedCost)
	}
}

func TestExternalAgentOwnershipOverLock(t *testing.T) {
	sys := testSys(2)
	l := NewAdaptiveLock(sys, 0, "adapt", DefaultCosts(), nil)
	agent := core.OwnerID(77)
	sys.Fork(0, "agent", func(th *cthreads.Thread) {
		if err := l.AcquireAttrBy(th, AttrSpinTime, agent); err != nil {
			t.Errorf("AcquireAttrBy: %v", err)
		}
		th.Advance(500_000)
		if err := l.ReleaseAttrBy(th, AttrSpinTime, agent); err != nil {
			t.Errorf("ReleaseAttrBy: %v", err)
		}
	})
	sys.Fork(1, "user", func(th *cthreads.Thread) {
		for i := 0; i < 20; i++ {
			l.Lock(th)
			th.Advance(1000)
			l.Unlock(th)
		}
	})
	if err := sys.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	// While the agent held the attribute, internal adaptation decisions
	// were rejected, not applied.
	if l.Object().Stats().Rejected == 0 {
		t.Fatal("no adaptation decisions were rejected during external ownership")
	}
}

func TestObserverSeesWaiterCounts(t *testing.T) {
	sys := testSys(4)
	l := NewBlockingLock(sys, 0, "obs", DefaultCosts())
	maxSeen := -1
	l.SetObserver(func(now sim.Time, waiting int) {
		if waiting > maxSeen {
			maxSeen = waiting
		}
	})
	for i := 0; i < 4; i++ {
		sys.Fork(i, fmt.Sprintf("w%d", i), func(th *cthreads.Thread) {
			for j := 0; j < 5; j++ {
				l.Lock(th)
				th.Advance(50_000)
				l.Unlock(th)
			}
		})
	}
	if err := sys.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if maxSeen < 1 {
		t.Fatalf("observer saw max %d waiters; contention expected", maxSeen)
	}
	if l.Stats().MaxWaiting < 1 {
		t.Fatal("MaxWaiting not tracked")
	}
}

func TestFactoryUnknownKind(t *testing.T) {
	sys := testSys(1)
	if _, err := New(sys, Kind("bogus"), 0, "x", DefaultCosts()); err == nil {
		t.Fatal("New accepted bogus kind")
	}
}

// Property: for any mix of small thread counts, iteration counts and
// critical-section lengths, every lock kind preserves mutual exclusion and
// loses no increments.
func TestLockKindsQuickProperty(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	f := func(seed uint32, threadsRaw, itersRaw uint8, kindIdx uint8) bool {
		kinds := Kinds()
		kind := kinds[int(kindIdx)%len(kinds)]
		nThreads := int(threadsRaw%4) + 2
		nIters := int(itersRaw%6) + 2
		sys := cthreads.New(sim.Config{
			Nodes: nThreads, LocalAccess: 10, RemoteAccess: 40, AtomicExtra: 5,
			Instr: 1, ContextSwitch: 100, Wakeup: 200, Seed: uint64(seed) + 1,
		})
		l, err := New(sys, kind, 0, "prop", DefaultCosts())
		if err != nil {
			return false
		}
		counter := 0
		inside := false
		ok := true
		for i := 0; i < nThreads; i++ {
			sys.Fork(i, fmt.Sprintf("w%d", i), func(th *cthreads.Thread) {
				for j := 0; j < nIters; j++ {
					l.Lock(th)
					if inside {
						ok = false
					}
					inside = true
					th.Advance(sim.Time(th.Rand().Intn(5000)))
					inside = false
					counter++
					l.Unlock(th)
					th.Advance(sim.Time(th.Rand().Intn(5000)))
				}
			})
		}
		if err := sys.Run(); err != nil {
			return false
		}
		return ok && counter == nThreads*nIters
	}
	cfg := &quick.Config{MaxCount: 40}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestChaosReconfiguration hammers an adaptive lock with workers while a
// chaos agent randomly rewrites its waiting policy and scheduler at run
// time. Whatever the configuration sequence, mutual exclusion and
// progress must hold.
func TestChaosReconfiguration(t *testing.T) {
	sys := testSys(6)
	l := NewAdaptiveLock(sys, 0, "chaos", DefaultCosts(), nil)
	inside := false
	counter := 0
	for i := 0; i < 5; i++ {
		sys.Fork(i, fmt.Sprintf("w%d", i), func(th *cthreads.Thread) {
			for j := 0; j < 30; j++ {
				l.Lock(th)
				if inside {
					t.Error("mutual exclusion violated under reconfiguration chaos")
				}
				inside = true
				th.Advance(sim.Time(th.Rand().Intn(3000)))
				inside = false
				counter++
				l.Unlock(th)
				th.Advance(sim.Time(th.Rand().Intn(3000)))
			}
		})
	}
	sys.Fork(5, "chaos-agent", func(th *cthreads.Thread) {
		scheds := []string{SchedFCFS, SchedPriority, SchedHandoff}
		attrs := []string{AttrSpinTime, AttrDelayTime, AttrSleepTime, AttrTimeout}
		for k := 0; k < 60; k++ {
			th.Advance(sim.Time(th.Rand().Intn(10_000)))
			if th.Rand().Intn(3) == 0 {
				d := core.Decision{Method: MethodScheduler, Variant: scheds[th.Rand().Intn(len(scheds))]}
				if err := l.ConfigureBy(th, d, core.OwnerSelf); err != nil {
					t.Errorf("scheduler chaos: %v", err)
				}
				continue
			}
			attr := attrs[th.Rand().Intn(len(attrs))]
			var v int64
			switch attr {
			case AttrSpinTime:
				v = int64(th.Rand().Intn(100))
			case AttrDelayTime:
				v = int64(th.Rand().Intn(2000))
			case AttrSleepTime:
				v = int64(th.Rand().Intn(2))
			case AttrTimeout:
				v = int64(th.Rand().Intn(2)) * int64(20_000)
			}
			if err := l.ConfigureBy(th, core.Decision{Attr: attr, Value: v}, core.OwnerSelf); err != nil {
				t.Errorf("attr chaos (%s=%d): %v", attr, v, err)
			}
		}
		// Leave the lock in a live configuration so stragglers finish.
		_ = l.ConfigureBy(th, core.Decision{Attr: AttrSleepTime, Value: 1}, core.OwnerSelf)
		_ = l.ConfigureBy(th, core.Decision{Attr: AttrTimeout, Value: 0}, core.OwnerSelf)
	})
	if err := sys.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if counter != 150 {
		t.Fatalf("counter = %d, want 150", counter)
	}
}

func TestWaitHistogramRecords(t *testing.T) {
	sys := testSys(4)
	l := NewBlockingLock(sys, 0, "hist", DefaultCosts())
	h := metrics.NewHistogram("waits")
	l.SetWaitHistogram(h)
	exerciseMutex(t, sys, l, 4, 10, false)
	if h.Count() != 40 {
		t.Fatalf("histogram samples = %d, want 40", h.Count())
	}
	if h.Max() <= 0 {
		t.Fatal("no waits recorded despite contention")
	}
}

// Property: the extension locks (advisory, MCS local-spin) also preserve
// mutual exclusion under random small workloads.
func TestExtensionLocksQuickProperty(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	f := func(seed uint32, threadsRaw, itersRaw, which uint8) bool {
		nThreads := int(threadsRaw%4) + 2
		nIters := int(itersRaw%5) + 2
		sys := cthreads.New(sim.Config{
			Nodes: nThreads, LocalAccess: 10, RemoteAccess: 40, AtomicExtra: 5,
			Instr: 1, ContextSwitch: 100, Wakeup: 200, Seed: uint64(seed) + 1,
		})
		var l Lock
		if which%2 == 0 {
			l = NewAdvisoryLock(sys, 0, "adv", DefaultCosts())
		} else {
			l = NewLocalSpinLock(sys, 0, "mcs", DefaultCosts())
		}
		counter := 0
		inside := false
		ok := true
		for i := 0; i < nThreads; i++ {
			sys.Fork(i, fmt.Sprintf("w%d", i), func(th *cthreads.Thread) {
				for j := 0; j < nIters; j++ {
					l.Lock(th)
					if inside {
						ok = false
					}
					inside = true
					th.Advance(sim.Time(th.Rand().Intn(4000)))
					inside = false
					counter++
					l.Unlock(th)
					th.Advance(sim.Time(th.Rand().Intn(4000)))
				}
			})
		}
		if err := sys.Run(); err != nil {
			return false
		}
		return ok && counter == nThreads*nIters
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
