package locks

import (
	"repro/internal/core"
	"repro/internal/cthreads"
	"repro/internal/sim"
)

// AttrAdvice is the advisory lock's published advice word: 0 advises
// requesters to spin, 1 to sleep.
const AttrAdvice = "advice"

// Advice values.
const (
	AdviseSpin  int64 = 0
	AdviseSleep int64 = 1
)

// AdvisoryLock is the speculative/advisory lock of the paper's footnote 2:
// "The owner of such a lock advises other requesting threads whether to
// spin or sleep while waiting, dynamically changing some attributes of its
// internal state during different phases of computation." The owner knows
// how long it is about to hold the lock (it is about to execute that
// critical section); requesters read the advice word instead of guessing
// with a fixed spin count — which is why the advisory lock does well under
// variable-length critical sections ([MS93] via §2).
type AdvisoryLock struct {
	base
	q   waitQueue
	obj *core.Object

	// Threshold is the expected-hold duration at or below which the owner
	// advises spinning.
	Threshold sim.Time
	// adviceCheckEvery is how many spin iterations a requester performs
	// between re-reads of the advice word.
	adviceCheckEvery int
}

// DefaultAdviceThreshold separates "short" from "long" holds: roughly the
// cost of a blocking handover, below which sleeping cannot pay off.
const DefaultAdviceThreshold = 150 * sim.Microsecond

// NewAdvisoryLock allocates an advisory lock on the given node.
func NewAdvisoryLock(sys *cthreads.System, node int, name string, costs Costs) *AdvisoryLock {
	l := &AdvisoryLock{
		base:             newBase(sys, node, name, costs),
		Threshold:        DefaultAdviceThreshold,
		adviceCheckEvery: 8,
	}
	l.obj = core.NewObject(name)
	l.obj.Attrs.Define(AttrAdvice, AdviseSpin, true)
	l.obj.SetLedgerSource(
		func() *core.Ledger { return sys.Ledger() },
		func() int64 { return int64(sys.Now()) })
	return l
}

// Object exposes the lock's adaptive object.
func (l *AdvisoryLock) Object() *core.Object { return l.obj }

// waiting reports current waiters (spinners plus sleepers).
func (l *AdvisoryLock) waiting() int { return l.spinners + l.q.Len() }

// advice reads the advice word without charging (callers charge).
func (l *AdvisoryLock) advice() int64 { return l.obj.Attrs.MustGet(AttrAdvice) }

// setAdvice publishes advice derived from an expected hold duration.
func (l *AdvisoryLock) setAdvice(expectedHold sim.Time) {
	v := AdviseSpin
	if expectedHold > l.Threshold {
		v = AdviseSleep
	}
	if err := l.obj.Attrs.Set(AttrAdvice, v, core.OwnerSelf); err != nil {
		panic(err)
	}
}

// Lock acquires with no hold hint: the previous advice stands until the
// new owner advises. Satisfies the Lock interface.
func (l *AdvisoryLock) Lock(t *cthreads.Thread) {
	l.lockInternal(t, -1)
}

// LockHint acquires and then advises requesters based on how long the
// caller expects to hold the lock.
func (l *AdvisoryLock) LockHint(t *cthreads.Thread, expectedHold sim.Time) {
	l.lockInternal(t, expectedHold)
}

// Advise lets the owner re-publish advice mid-critical-section (phase
// changes), charging one write to the lock's node.
func (l *AdvisoryLock) Advise(t *cthreads.Thread, expectedRemaining sim.Time) {
	l.checkOwner(t, "Advise")
	l.setAdvice(expectedRemaining)
	l.chargeAccesses(t, 1)
}

func (l *AdvisoryLock) lockInternal(t *cthreads.Thread, expectedHold sim.Time) {
	start := t.Now()
	t.Compute(l.costs.SpinLockSteps)
	l.observe(t, l.waiting())
	contended := false
	sinceCheck := 0
	adv := l.advice()
	l.chargeAccesses(t, 1)
	l.spinners++
	//simlint:allow rawspin -- hybrid advised spin re-reads advice every adviceCheckEvery probes; SpinSpec chunking would reorder that charge and drift the deterministic metrics
	for {
		if l.flag.AtomicOr(t, 1) == 0 {
			l.spinners--
			l.acquired(t, start, contended)
			if expectedHold >= 0 {
				l.setAdvice(expectedHold)
				l.chargeAccesses(t, 1)
			}
			return
		}
		contended = true
		if adv == AdviseSpin {
			l.stats.SpinIters++
			sinceCheck++
			t.Compute(l.costs.SpinPauseSteps)
			if sinceCheck >= l.adviceCheckEvery {
				sinceCheck = 0
				adv = l.advice()
				l.chargeAccesses(t, 1)
			}
			continue
		}

		// Advised to sleep: register, re-test, block; re-contend on wake
		// (barging, as in the reconfigurable lock).
		l.spinners--
		w := l.q.enqueue(t)
		l.chargeAccesses(t, l.costs.QueueOpAccesses)
		if l.flag.AtomicOr(t, 1) == 0 {
			l.q.remove(w)
			l.chargeAccesses(t, l.costs.QueueOpAccesses)
			l.acquired(t, start, true)
			if expectedHold >= 0 {
				l.setAdvice(expectedHold)
				l.chargeAccesses(t, 1)
			}
			return
		}
		l.stats.Blocks++
		if !w.granted {
			l.traceBlocked(t)
			l.waitStart(t)
			t.Block()
			l.waitEnd(t)
		}
		t.Compute(l.costs.PostWakeSteps)
		adv = l.advice()
		l.chargeAccesses(t, 1)
		sinceCheck = 0
		l.spinners++
	}
}

// Unlock releases: free the word, then wake the first sleeper if any
// (same stranding-free order as the reconfigurable lock).
func (l *AdvisoryLock) Unlock(t *cthreads.Thread) {
	l.checkOwner(t, "Unlock")
	l.unlockStart(t)
	t.Compute(l.costs.SpinUnlockSteps)
	l.chargeAccesses(t, 1)
	l.owner = nil
	l.traceRelease(t)
	l.flag.Store(t, 0)
	if w := l.q.pick(SchedFCFS, nil); w != nil {
		w.granted = true
		t.Wake(w.t)
	}
	l.unlockEnd(t)
}
