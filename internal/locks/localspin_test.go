package locks

import (
	"fmt"
	"testing"

	"repro/internal/cthreads"
	"repro/internal/sim"
)

func TestLocalSpinMutualExclusion(t *testing.T) {
	sys := testSys(4)
	l := NewLocalSpinLock(sys, 0, "mcs", DefaultCosts())
	exerciseMutex(t, sys, l, 4, 25, false)
	if l.Stats().Acquisitions != 100 {
		t.Fatalf("acquisitions = %d, want 100", l.Stats().Acquisitions)
	}
}

func TestLocalSpinFIFOOrder(t *testing.T) {
	sys := testSys(4)
	l := NewLocalSpinLock(sys, 0, "mcs", DefaultCosts())
	var order []string
	sys.Fork(0, "holder", func(th *cthreads.Thread) {
		l.Lock(th)
		th.Advance(500_000)
		l.Unlock(th)
	})
	for i := 1; i < 4; i++ {
		name := fmt.Sprintf("w%d", i)
		delay := sim.Time(i * 10_000)
		sys.Fork(i, name, func(th *cthreads.Thread) {
			th.Advance(delay)
			l.Lock(th)
			order = append(order, th.Name())
			l.Unlock(th)
		})
	}
	if err := sys.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	want := []string{"w1", "w2", "w3"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("grant order = %v, want %v (MCS is FIFO)", order, want)
		}
	}
}

func TestLocalSpinWaitersSpinLocally(t *testing.T) {
	// With module contention enabled, a waiter of the MCS lock must not
	// touch the lock's home module while spinning; all its spin traffic
	// lands on its own node.
	cfg := sim.Config{
		Nodes: 2, LocalAccess: 10, RemoteAccess: 40, AtomicExtra: 5,
		Instr: 1, ContextSwitch: 100, Wakeup: 200, Seed: 1,
		ModuleService: 5,
	}
	sys := cthreads.New(cfg)
	l := NewLocalSpinLock(sys, 0, "mcs", DefaultCosts())
	sys.Fork(0, "holder", func(th *cthreads.Thread) {
		l.Lock(th)
		th.Advance(200_000)
		l.Unlock(th)
	})
	sys.Fork(1, "waiter", func(th *cthreads.Thread) {
		th.Advance(1000)
		l.Lock(th)
		l.Unlock(th)
	})
	if err := sys.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	home := sys.Machine().ModuleAccesses(0)
	local := sys.Machine().ModuleAccesses(1)
	// The waiter spun ~200µs at ~12ns/iteration on node 1: thousands of
	// local accesses; node 0 sees only the handful of queue operations.
	if local < 100*home {
		t.Fatalf("module accesses: home=%d local=%d; MCS spin traffic must stay local", home, local)
	}
}

func TestLocalSpinManyContenders(t *testing.T) {
	sys := testSys(8)
	l := NewLocalSpinLock(sys, 0, "mcs", DefaultCosts())
	exerciseMutex(t, sys, l, 8, 10, false)
}

func TestLocalSpinUnlockByNonOwnerPanics(t *testing.T) {
	sys := testSys(2)
	l := NewLocalSpinLock(sys, 0, "mcs", DefaultCosts())
	sys.Fork(0, "holder", func(th *cthreads.Thread) {
		l.Lock(th)
		th.Advance(50_000)
		l.Unlock(th)
	})
	sys.Fork(1, "intruder", func(th *cthreads.Thread) {
		th.Advance(1000)
		defer func() {
			if recover() == nil {
				t.Error("Unlock by non-owner did not panic")
			}
		}()
		l.Unlock(th)
	})
	if err := sys.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
}
