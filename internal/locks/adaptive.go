package locks

import (
	"repro/internal/core"
	"repro/internal/cthreads"
)

// AdaptiveLock is the paper's contribution: a ReconfigurableLock with a
// built-in customized lock monitor (the number of waiting threads, sampled
// once during every other unlock) and a user-provided adaptation policy
// that retunes the waiting policy from that feedback. With the default
// SimpleAdapt policy it configures uncontended locks down to low-latency
// spin locks and overloaded locks up to pure blocking, tracking the
// application's locking pattern as it shifts (§4).
type AdaptiveLock struct {
	ReconfigurableLock
}

// DefaultInitialSpins is the spin-time an adaptive lock starts from before
// any feedback arrives.
const DefaultInitialSpins = 10

// NewAdaptiveLock allocates an adaptive lock on the given node. A nil
// policy installs core.DefaultSimpleAdapt.
func NewAdaptiveLock(sys *cthreads.System, node int, name string, costs Costs, policy core.Policy) *AdaptiveLock {
	l := &AdaptiveLock{
		ReconfigurableLock: *NewReconfigurableLock(sys, node, name, costs, DefaultInitialSpins),
	}
	// The customized lock monitor: sense no-of-waiting-threads on every
	// other unlock (§4), collected inline by the unlocking thread so the
	// feedback loop is closely coupled.
	l.obj.Monitor.AddSensor(SensorWaiting, 2, func() int64 { return int64(l.waiting()) })
	if policy == nil {
		policy = core.DefaultSimpleAdapt(AttrSpinTime)
	}
	l.obj.SetPolicy(policy)
	return l
}
