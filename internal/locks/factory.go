package locks

import "fmt"

import "repro/internal/cthreads"

// Kind names a lock implementation, for factories and command-line flags.
type Kind string

// The lock kinds of the paper's evaluation.
const (
	KindTAS      Kind = "tas"
	KindSpin     Kind = "spin"
	KindBackoff  Kind = "backoff"
	KindBlocking Kind = "blocking"
	KindAdaptive Kind = "adaptive"
)

// Kinds lists all factory-constructible kinds in table order.
func Kinds() []Kind {
	return []Kind{KindTAS, KindSpin, KindBackoff, KindBlocking, KindAdaptive}
}

// New constructs a lock of the given kind on the given node. Adaptive
// locks get the default SimpleAdapt policy.
func New(sys *cthreads.System, kind Kind, node int, name string, costs Costs) (Lock, error) {
	switch kind {
	case KindTAS:
		return NewTASLock(sys, node, name, costs), nil
	case KindSpin:
		return NewSpinLock(sys, node, name, costs), nil
	case KindBackoff:
		return NewBackoffSpinLock(sys, node, name, costs), nil
	case KindBlocking:
		return NewBlockingLock(sys, node, name, costs), nil
	case KindAdaptive:
		return NewAdaptiveLock(sys, node, name, costs, nil), nil
	default:
		return nil, fmt.Errorf("locks: unknown kind %q", kind)
	}
}

// MustNew is New, panicking on error (for table-driven experiment code
// where the kind is a compile-time constant).
func MustNew(sys *cthreads.System, kind Kind, node int, name string, costs Costs) Lock {
	l, err := New(sys, kind, node, name, costs)
	if err != nil {
		panic(err)
	}
	return l
}
