package locks

import (
	"fmt"
	"sort"
	"strings"
)

import "repro/internal/cthreads"

// Kind names a lock implementation, for factories and command-line flags.
type Kind string

// The lock kinds of the paper's evaluation, plus the predictive mutable
// lock and the NUMA cohort lock.
const (
	KindTAS      Kind = "tas"
	KindSpin     Kind = "spin"
	KindBackoff  Kind = "backoff"
	KindBlocking Kind = "blocking"
	KindAdaptive Kind = "adaptive"
	KindMutable  Kind = "mutable"
	KindCohort   Kind = "cohort"
)

// Kinds lists all factory-constructible kinds in table order.
func Kinds() []Kind {
	return []Kind{KindTAS, KindSpin, KindBackoff, KindBlocking, KindAdaptive, KindMutable, KindCohort}
}

// KindNames lists all factory-constructible kinds sorted alphabetically —
// the deterministic order for error messages and flag help text.
func KindNames() []string {
	ks := Kinds()
	names := make([]string, len(ks))
	for i, k := range ks {
		names[i] = string(k)
	}
	sort.Strings(names)
	return names
}

// New constructs a lock of the given kind on the given node. Adaptive
// locks get the default SimpleAdapt policy.
func New(sys *cthreads.System, kind Kind, node int, name string, costs Costs) (Lock, error) {
	switch kind {
	case KindTAS:
		return NewTASLock(sys, node, name, costs), nil
	case KindSpin:
		return NewSpinLock(sys, node, name, costs), nil
	case KindBackoff:
		return NewBackoffSpinLock(sys, node, name, costs), nil
	case KindBlocking:
		return NewBlockingLock(sys, node, name, costs), nil
	case KindAdaptive:
		return NewAdaptiveLock(sys, node, name, costs, nil), nil
	case KindMutable:
		return NewMutableLock(sys, node, name, costs), nil
	case KindCohort:
		return NewCohortLock(sys, node, name, costs), nil
	default:
		return nil, fmt.Errorf("locks: unknown kind %q (valid kinds: %s)",
			kind, strings.Join(KindNames(), ", "))
	}
}

// MustNew is New, panicking on error (for table-driven experiment code
// where the kind is a compile-time constant).
func MustNew(sys *cthreads.System, kind Kind, node int, name string, costs Costs) Lock {
	l, err := New(sys, kind, node, name, costs)
	if err != nil {
		panic(err)
	}
	return l
}
