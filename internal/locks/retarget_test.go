package locks

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/cthreads"
	"repro/internal/sim"
)

// TestRetargetableRetargetsUnderLoad runs a calm phase then a contended
// phase on a retargetable lock whose policy retargets from the mutable
// lock onto the cohort lock when waiters pile up. The switch must happen,
// be ledger-visible, and preserve mutual exclusion and the acquisition
// count across implementations.
func TestRetargetableRetargetsUnderLoad(t *testing.T) {
	sys := cohortSys(2)
	led := core.NewLedger(0)
	sys.SetLedger(led)
	l, err := NewRetargetableLock(sys, 0, "rt", DefaultCosts(), KindMutable, ImplAdapt(KindMutable, KindCohort, 0))
	if err != nil {
		t.Fatal(err)
	}
	if l.Current() != KindMutable {
		t.Fatalf("initial kind = %s, want mutable", l.Current())
	}

	inside := false
	counter := 0
	const threads, iters = 4, 25
	for i := 0; i < threads; i++ {
		sys.Fork(i%sys.Procs(), fmt.Sprintf("w%d", i), func(th *cthreads.Thread) {
			for j := 0; j < iters; j++ {
				l.Lock(th)
				if inside {
					t.Error("mutual exclusion violated")
				}
				inside = true
				th.Advance(2 * sim.Microsecond)
				inside = false
				counter++
				l.Unlock(th)
			}
		})
	}
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}

	if counter != threads*iters {
		t.Errorf("counter = %d, want %d", counter, threads*iters)
	}
	if got := l.Stats().Acquisitions; got != threads*iters {
		t.Errorf("aggregated Acquisitions = %d, want %d", got, threads*iters)
	}
	if l.Switches() == 0 {
		t.Fatal("policy never retargeted despite contention above the threshold")
	}
	// The drain at the end of the run (waiting back to 0) legitimately
	// retargets back to the calm kind, so the final kind may be either;
	// the ledger proves the busy-phase retarget happened.
	found := false
	for _, e := range led.Entries() {
		if e.Object == "rt" && e.Kind == core.EntryApply && strings.Contains(e.Decision, string(KindCohort)) {
			found = true
			break
		}
	}
	if !found {
		t.Error("no impl⇐cohort apply entry in the adaptation ledger")
	}
}

// TestRetargetableExternalApply retargets without a policy, through an
// explicit Object().Apply, and checks the swap lands at the next quiescent
// point.
func TestRetargetableExternalApply(t *testing.T) {
	sys := testSys(2)
	l, err := NewRetargetableLock(sys, 0, "ext", DefaultCosts(), KindSpin, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Object().Apply(core.Decision{Method: MethodImpl, Variant: string(KindBlocking)}, core.OwnerSelf); err != nil {
		t.Fatal(err)
	}
	if l.Current() != KindSpin {
		t.Errorf("kind changed before any thread touched the lock: %s", l.Current())
	}
	sys.Fork(0, "w", func(th *cthreads.Thread) {
		l.Lock(th)
		th.Advance(100)
		l.Unlock(th)
	})
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	if l.Current() != KindBlocking {
		t.Errorf("kind after quiescent swap = %s, want blocking", l.Current())
	}
	if l.Switches() != 1 {
		t.Errorf("switches = %d, want 1", l.Switches())
	}
	if got := l.Stats().Acquisitions; got != 1 {
		t.Errorf("Acquisitions = %d, want 1", got)
	}

	// Unknown variants are rejected by the method table.
	if err := l.Object().Apply(core.Decision{Method: MethodImpl, Variant: "nonsense"}, core.OwnerSelf); err == nil {
		t.Error("installing an unknown impl variant succeeded")
	}
}
