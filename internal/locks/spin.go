package locks

import (
	"repro/internal/cthreads"
	"repro/internal/sim"
)

// SpinLock is the paper's primitive spin lock: a registered busy-wait lock
// (the registration work is what separates its latency from the raw
// atomior's). Waiters occupy their processor until they win the word.
type SpinLock struct {
	base
	// spin is the lock's busy-wait loop as a spec, built once so Lock
	// allocates nothing: an atomior probe of the lock word, a fixed pause
	// per futile iteration.
	spin sim.SpinSpec
}

// NewSpinLock allocates a spin lock on the given node.
func NewSpinLock(sys *cthreads.System, node int, name string, costs Costs) *SpinLock {
	l := &SpinLock{base: newBase(sys, node, name, costs)}
	l.spin = sim.SpinSpec{
		ProbeCell:   l.flag,
		ProbeAtomic: true,
		Probe:       l.tasProbe,
		PauseCost:   l.spinPause,
		MaxIters:    sim.SpinUnbounded,
		Label:       l.frameSpin,
	}
	return l
}

// Lock busy-waits until acquisition via SpinUntil. Each iteration charges
// a pause plus an atomic probe, exactly as the open-coded loop would;
// batched, futile probe bursts between genuine handoffs are
// fast-forwarded by the engine in one step.
func (l *SpinLock) Lock(t *cthreads.Thread) {
	start := t.Now()
	t.Compute(l.costs.SpinLockSteps)
	l.observe(t, l.spinners)
	l.spinners++
	iters, _ := t.SpinUntil(&l.spin)
	l.stats.SpinIters += uint64(iters)
	l.spinners--
	l.acquired(t, start, iters > 0)
}

// Unlock clears the word; any spinner's next test-and-set wins.
func (l *SpinLock) Unlock(t *cthreads.Thread) {
	l.checkOwner(t, "Unlock")
	l.unlockStart(t)
	t.Compute(l.costs.SpinUnlockSteps)
	l.owner = nil
	l.traceRelease(t)
	l.flag.Store(t, 0)
	l.unlockEnd(t)
}

// BackoffSpinLock is the spin-with-backoff variation of Anderson et al.
// [ALL89] as the paper describes it: a requester spins once and, if the
// lock is busy, backs off for a time proportional to the number of threads
// already waiting before testing again.
type BackoffSpinLock struct {
	base
	// spin covers the retest loop after the first backoff: an atomior
	// probe, then a backoff pause proportional to the current spinners.
	spin sim.SpinSpec
}

// NewBackoffSpinLock allocates a backoff spin lock on the given node.
func NewBackoffSpinLock(sys *cthreads.System, node int, name string, costs Costs) *BackoffSpinLock {
	l := &BackoffSpinLock{base: newBase(sys, node, name, costs)}
	l.spin = sim.SpinSpec{
		ProbeCell:   l.flag,
		ProbeAtomic: true,
		Probe:       l.tasProbe,
		PauseCost:   l.backoffPause,
		MaxIters:    sim.SpinUnbounded,
		Label:       l.frameSpin,
	}
	return l
}

// backoffPause is the proportional backoff charged after a futile retest.
func (l *BackoffSpinLock) backoffPause() sim.Time {
	return l.costs.BackoffUnit * sim.Time(l.spinners)
}

// Lock tests once, then alternates proportional backoff with retests. The
// backoff loop pauses first, so the initial backoff is charged open-coded
// and SpinUntil carries the retest-then-backoff tail.
func (l *BackoffSpinLock) Lock(t *cthreads.Thread) {
	start := t.Now()
	t.Compute(l.costs.SpinLockSteps)
	l.observe(t, l.spinners)
	if l.flag.AtomicOr(t, 1) == 0 {
		l.acquired(t, start, false)
		return
	}
	l.spinners++
	l.stats.SpinIters++
	t.Advance(l.backoffPause())
	iters, _ := t.SpinUntil(&l.spin)
	l.stats.SpinIters += uint64(iters)
	l.spinners--
	l.acquired(t, start, true)
}

// Unlock clears the word.
func (l *BackoffSpinLock) Unlock(t *cthreads.Thread) {
	l.checkOwner(t, "Unlock")
	l.unlockStart(t)
	t.Compute(l.costs.SpinUnlockSteps)
	l.owner = nil
	l.traceRelease(t)
	l.flag.Store(t, 0)
	l.unlockEnd(t)
}
