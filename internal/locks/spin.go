package locks

import (
	"repro/internal/cthreads"
	"repro/internal/sim"
)

// SpinLock is the paper's primitive spin lock: a registered busy-wait lock
// (the registration work is what separates its latency from the raw
// atomior's). Waiters occupy their processor until they win the word.
type SpinLock struct {
	base
}

// NewSpinLock allocates a spin lock on the given node.
func NewSpinLock(sys *cthreads.System, node int, name string, costs Costs) *SpinLock {
	return &SpinLock{base: newBase(sys, node, name, costs)}
}

// Lock busy-waits until acquisition. Each iteration charges a pause plus
// an atomic probe; uncontended iterations accrue on the engine's inline
// self-wakeup fast path, so a spin cycle costs no goroutine round-trips
// unless another context's event is actually due first.
func (l *SpinLock) Lock(t *cthreads.Thread) {
	start := t.Now()
	t.Compute(l.costs.SpinLockSteps)
	l.observe(t, l.spinners)
	contended := false
	l.spinners++
	for l.flag.AtomicOr(t, 1) != 0 {
		contended = true
		l.stats.SpinIters++
		t.Compute(l.costs.SpinPauseSteps)
	}
	l.spinners--
	l.acquired(t, start, contended)
}

// Unlock clears the word; any spinner's next test-and-set wins.
func (l *SpinLock) Unlock(t *cthreads.Thread) {
	l.checkOwner(t, "Unlock")
	t.Compute(l.costs.SpinUnlockSteps)
	l.owner = nil
	l.traceRelease(t)
	l.flag.Store(t, 0)
}

// BackoffSpinLock is the spin-with-backoff variation of Anderson et al.
// [ALL89] as the paper describes it: a requester spins once and, if the
// lock is busy, backs off for a time proportional to the number of threads
// already waiting before testing again.
type BackoffSpinLock struct {
	base
}

// NewBackoffSpinLock allocates a backoff spin lock on the given node.
func NewBackoffSpinLock(sys *cthreads.System, node int, name string, costs Costs) *BackoffSpinLock {
	return &BackoffSpinLock{base: newBase(sys, node, name, costs)}
}

// Lock tests once, then alternates proportional backoff with retests.
func (l *BackoffSpinLock) Lock(t *cthreads.Thread) {
	start := t.Now()
	t.Compute(l.costs.SpinLockSteps)
	l.observe(t, l.spinners)
	if l.flag.AtomicOr(t, 1) == 0 {
		l.acquired(t, start, false)
		return
	}
	l.spinners++
	for {
		l.stats.SpinIters++
		backoff := l.costs.BackoffUnit * sim.Time(l.spinners)
		t.Advance(backoff)
		if l.flag.AtomicOr(t, 1) == 0 {
			break
		}
	}
	l.spinners--
	l.acquired(t, start, true)
}

// Unlock clears the word.
func (l *BackoffSpinLock) Unlock(t *cthreads.Thread) {
	l.checkOwner(t, "Unlock")
	t.Compute(l.costs.SpinUnlockSteps)
	l.owner = nil
	l.traceRelease(t)
	l.flag.Store(t, 0)
}
