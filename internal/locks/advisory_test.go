package locks

import (
	"testing"

	"repro/internal/cthreads"
	"repro/internal/sim"
)

func TestAdvisoryMutualExclusion(t *testing.T) {
	sys := testSys(4)
	l := NewAdvisoryLock(sys, 0, "adv", DefaultCosts())
	exerciseMutex(t, sys, l, 4, 20, false)
}

func TestAdvisoryShortHoldAdvisesSpin(t *testing.T) {
	sys := testSys(2)
	l := NewAdvisoryLock(sys, 0, "adv", DefaultCosts())
	l.Threshold = 100 * sim.Microsecond
	sys.Fork(0, "holder", func(th *cthreads.Thread) {
		l.LockHint(th, 50*sim.Microsecond) // short: advise spin
		th.Advance(50 * sim.Microsecond)
		l.Unlock(th)
	})
	sys.Fork(1, "waiter", func(th *cthreads.Thread) {
		th.Advance(10 * sim.Microsecond)
		l.Lock(th)
		l.Unlock(th)
	})
	if err := sys.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	st := l.Stats()
	if st.Blocks != 0 {
		t.Fatalf("waiter slept (%d blocks) despite spin advice", st.Blocks)
	}
	if st.SpinIters == 0 {
		t.Fatal("waiter never spun")
	}
}

func TestAdvisoryLongHoldAdvisesSleep(t *testing.T) {
	sys := testSys(2)
	l := NewAdvisoryLock(sys, 0, "adv", DefaultCosts())
	l.Threshold = 100 * sim.Microsecond
	sys.Fork(0, "holder", func(th *cthreads.Thread) {
		l.LockHint(th, 5*sim.Millisecond) // long: advise sleep
		th.Advance(5 * sim.Millisecond)
		l.Unlock(th)
	})
	var waiterBusy sim.Time
	sys.Fork(1, "waiter", func(th *cthreads.Thread) {
		th.Advance(10 * sim.Microsecond)
		l.Lock(th)
		waiterBusy = th.Busy()
		l.Unlock(th)
	})
	if err := sys.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if l.Stats().Blocks == 0 {
		t.Fatal("waiter never slept despite sleep advice")
	}
	if waiterBusy > sim.Millisecond {
		t.Fatalf("waiter burned %v spinning during a 5ms advised-sleep hold", waiterBusy)
	}
}

func TestAdvisoryMidSectionAdviceChange(t *testing.T) {
	sys := testSys(2)
	l := NewAdvisoryLock(sys, 0, "adv", DefaultCosts())
	l.Threshold = 100 * sim.Microsecond
	sys.Fork(0, "holder", func(th *cthreads.Thread) {
		l.LockHint(th, 5*sim.Millisecond) // phase 1: long
		th.Advance(2 * sim.Millisecond)
		l.Advise(th, 20*sim.Microsecond) // phase 2: nearly done — spin now
		th.Advance(20 * sim.Microsecond)
		l.Unlock(th)
	})
	sys.Fork(1, "waiter", func(th *cthreads.Thread) {
		// Arrive during phase 2: the advice says spin.
		th.Advance(2*sim.Millisecond + 5*sim.Microsecond)
		l.Lock(th)
		l.Unlock(th)
	})
	if err := sys.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if l.Stats().Blocks != 0 {
		t.Fatalf("late waiter slept (%d blocks) despite updated spin advice", l.Stats().Blocks)
	}
}

func TestAdviseByNonOwnerPanics(t *testing.T) {
	sys := testSys(2)
	l := NewAdvisoryLock(sys, 0, "adv", DefaultCosts())
	sys.Fork(0, "holder", func(th *cthreads.Thread) {
		l.Lock(th)
		th.Advance(100_000)
		l.Unlock(th)
	})
	sys.Fork(1, "intruder", func(th *cthreads.Thread) {
		th.Advance(1000)
		defer func() {
			if recover() == nil {
				t.Error("Advise by non-owner did not panic")
			}
		}()
		l.Advise(th, 0)
	})
	if err := sys.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestAdvisorySleepersWakeOnRelease(t *testing.T) {
	sys := testSys(4)
	l := NewAdvisoryLock(sys, 0, "adv", DefaultCosts())
	l.Threshold = 10 * sim.Microsecond
	acquired := 0
	sys.Fork(0, "holder", func(th *cthreads.Thread) {
		l.LockHint(th, 3*sim.Millisecond)
		th.Advance(3 * sim.Millisecond)
		l.Unlock(th)
	})
	for i := 1; i < 4; i++ {
		sys.Fork(i, "w", func(th *cthreads.Thread) {
			th.Advance(sim.Time(i) * 10 * sim.Microsecond)
			l.LockHint(th, 5*sim.Microsecond)
			acquired++
			th.Advance(5 * sim.Microsecond)
			l.Unlock(th)
		})
	}
	if err := sys.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if acquired != 3 {
		t.Fatalf("acquired = %d, want 3", acquired)
	}
}
