package locks

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/cthreads"
	"repro/internal/sim"
)

// AttrCohortBudget is the cohort lock's fairness budget: the number of
// consecutive intra-node handoffs a cohort may perform before the global
// lock must be released to the other nodes. Mutable, so adaptation
// policies can trade locality against fairness at run time.
const AttrCohortBudget = "cohort-budget"

// DefaultCohortBudget is the fairness budget a cohort lock starts from.
const DefaultCohortBudget = 8

// CohortStats reports a cohort lock's handoff behaviour.
type CohortStats struct {
	// LocalHandoffs counts releases that handed the lock to a same-node
	// waiter with the global lock retained (no remote reference).
	LocalHandoffs uint64
	// GlobalReleases counts releases that freed the global lock (budget
	// exhausted or no local waiter).
	GlobalReleases uint64
	// GlobalAcquires counts acquisitions that took the global lock
	// directly rather than receiving it by intra-node handoff.
	GlobalAcquires uint64
}

// cohortNode is one node's slice of a cohort lock. Both cells live on that
// node, so a waiter's spinning and an intra-node handoff are all local
// references; only the global lock word crosses the remote latency.
type cohortNode struct {
	// flag is the node-local lock word.
	flag *sim.Cell
	// pass is the handoff flag: set by a releasing owner to tell the next
	// local-flag holder that the cohort still owns the global lock.
	pass *sim.Cell
	// spinners counts threads currently spinning on flag.
	spinners int
	// passes counts consecutive intra-node handoffs in the cohort's
	// current global tenure, bounded by the fairness budget.
	passes int64
	// localSpin is the spin spec for flag, built once.
	localSpin sim.SpinSpec
}

// CohortLock is a NUMA-hierarchical lock (Dice/Marathe/Shavit-style
// lock cohorting): one global lock word plus a local lock word and a pass
// flag per node. A thread first acquires its node's local lock (spinning
// on node-local memory), then either inherits the global lock from a
// same-node predecessor via the pass flag or competes for the global word.
// Release hands off within the releasing node while local waiters exist
// and the fairness budget allows, so the lock's state crosses the
// machine's 1:4 remote latency only when the cohort changes nodes.
//
// Waiters always spin (local spinning is the point of the design); the
// lock targets NUMA throughput, not multiprogrammed processors. All
// spinning goes through SpinUntil, so batched-spin emulation applies.
type CohortLock struct {
	base // base.flag is the global lock word on the home node
	obj  *core.Object
	// nodes holds every machine node's slice, preallocated at
	// construction in node order so cell creation is deterministic.
	nodes      []*cohortNode
	globalSpin sim.SpinSpec
	cstats     CohortStats
	// frameAdapt attributes the inline monitor-sample work in Unlock.
	frameAdapt string
}

// NewCohortLock allocates a cohort lock whose global word lives on the
// given node, with local words on every machine node.
func NewCohortLock(sys *cthreads.System, node int, name string, costs Costs) *CohortLock {
	l := &CohortLock{base: newBase(sys, node, name, costs)}
	l.frameAdapt = "adapt:" + name
	l.obj = core.NewObject(name)
	l.obj.Attrs.Define(AttrCohortBudget, DefaultCohortBudget, true)
	// The customized lock monitor senses the waiter count on every other
	// release, so a policy (none installed by default) can retune the
	// fairness budget from observed contention.
	l.obj.Monitor.AddSensor(SensorWaiting, 2, func() int64 { return int64(l.spinners) })
	wireObservability(sys, l.obj, name)
	m := sys.Machine()
	l.nodes = make([]*cohortNode, m.Nodes())
	for i := range l.nodes {
		n := &cohortNode{
			flag: m.NewCell(i, fmt.Sprintf("%s.local%d", name, i), 0),
			pass: m.NewCell(i, fmt.Sprintf("%s.pass%d", name, i), 0),
		}
		n.localSpin = sim.SpinSpec{
			ProbeCell:   n.flag,
			ProbeAtomic: true,
			Probe: func() bool {
				old := n.flag.Peek()
				n.flag.Poke(old | 1)
				return old == 0
			},
			PauseCost: l.spinPause,
			MaxIters:  sim.SpinUnbounded,
			Label:     l.frameSpin,
		}
		l.nodes[i] = n
	}
	l.globalSpin = sim.SpinSpec{
		ProbeCell:   l.flag,
		ProbeAtomic: true,
		Probe:       l.tasProbe,
		PauseCost:   l.spinPause,
		MaxIters:    sim.SpinUnbounded,
		Label:       l.frameSpin,
	}
	return l
}

// Object exposes the underlying adaptive object (the fairness-budget
// attribute, the waiting sensor) for inspection and reconfiguration.
func (l *CohortLock) Object() *core.Object { return l.obj }

// Cohort returns the accumulated handoff statistics.
func (l *CohortLock) Cohort() CohortStats { return l.cstats }

// Lock acquires the node-local lock, then the global lock — by handoff
// when a same-node predecessor left the pass flag set, by test-and-set
// otherwise. A thread must unlock on the node it locked from (threads are
// pinned to their processor's node, so this holds by construction).
func (l *CohortLock) Lock(t *cthreads.Thread) {
	start := t.Now()
	t.Compute(l.costs.SpinLockSteps)
	n := l.nodes[t.Node()]
	l.observe(t, l.spinners)
	contended := false
	l.spinners++
	n.spinners++
	iters, _ := t.SpinUntil(&n.localSpin)
	n.spinners--
	l.spinners--
	l.stats.SpinIters += uint64(iters)
	if iters > 0 {
		contended = true
	}
	if n.pass.Load(t) != 0 {
		// Intra-node handoff: the cohort already owns the global lock.
		n.pass.Store(t, 0)
		contended = true
	} else {
		l.spinners++
		giters, _ := t.SpinUntil(&l.globalSpin)
		l.spinners--
		l.stats.SpinIters += uint64(giters)
		if giters > 0 {
			contended = true
		}
		l.cstats.GlobalAcquires++
		n.passes = 0
	}
	l.acquired(t, start, contended)
}

// Unlock releases the lock: hand off within the node while a local waiter
// exists and the fairness budget allows; otherwise free the global word
// (the release path's only possibly-remote reference) and reset the
// budget.
func (l *CohortLock) Unlock(t *cthreads.Thread) {
	l.checkOwner(t, "Unlock")
	l.unlockStart(t)
	t.Compute(l.costs.SpinUnlockSteps)
	n := l.nodes[t.Node()]
	// The budget is cached in the node-local slice of the lock's state:
	// one local reference reads it.
	budget := l.obj.Attrs.MustGet(AttrCohortBudget)
	t.Advance(l.sys.Machine().AccessCost(t.Node(), t.Node()))

	if p := t.Prof(); p != nil {
		p.Push(t.Now(), l.frameAdapt)
	}
	if _, ok := l.obj.Monitor.Probe(SensorWaiting); ok {
		t.Compute(l.costs.MonitorSampleSteps)
		l.chargeAccesses(t, 2)
	}
	if p := t.Prof(); p != nil {
		p.Pop(t.Now(), l.frameAdapt)
	}

	l.owner = nil
	l.traceRelease(t)
	if n.spinners > 0 && n.passes < budget {
		n.passes++
		l.cstats.LocalHandoffs++
		n.pass.Store(t, 1)
		n.flag.Store(t, 0)
	} else {
		n.passes = 0
		l.cstats.GlobalReleases++
		l.flag.Store(t, 0)
		n.flag.Store(t, 0)
	}
	l.unlockEnd(t)
}
