// Package locks implements the paper's family of multiprocessor locks on
// the simulated NUMA machine: the raw atomior (test-and-set) lock, spin
// and backoff-spin locks, a blocking lock, a combined spin-then-block lock,
// a reconfigurable lock whose waiting policy and scheduler can be changed
// at run time, and the adaptive lock — a reconfigurable lock with a
// built-in monitor and the paper's simple adaptation policy (§4, §5).
//
// Every lock charges its caller virtual time for the instructions and
// memory references its implementation would perform, calibrated (see
// Costs) so that the microbenchmark tables of §5.2 reproduce in shape and
// rough magnitude.
package locks

import (
	"fmt"

	"repro/internal/cthreads"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Lock is a mutual-exclusion lock usable from simulated threads.
// Lock blocks (by spinning, sleeping, or both, per the implementation)
// until the calling thread owns the lock; Unlock releases it and panics if
// the caller is not the owner — unlocking someone else's mutex is a bug in
// the simulated program, not a condition to handle.
type Lock interface {
	Name() string
	Lock(t *cthreads.Thread)
	Unlock(t *cthreads.Thread)
	Stats() Stats
}

// Stats aggregates a lock's activity over a run.
type Stats struct {
	// Acquisitions counts successful Lock calls.
	Acquisitions uint64
	// Contended counts acquisitions that found the lock busy.
	Contended uint64
	// Blocks counts times a thread slept while waiting.
	Blocks uint64
	// SpinIters counts spin-loop iterations across all threads.
	SpinIters uint64
	// MaxWaiting is the largest number of simultaneous waiters observed.
	MaxWaiting int
	// TotalWait is the summed time threads spent between requesting and
	// acquiring the lock.
	TotalWait sim.Time
	// RemoteTransfers counts acquisitions by a thread on a different node
	// than the previous owner — each one drags the lock's cache state
	// across the machine's remote-access latency. NUMA-aware locks
	// (CohortLock) exist to keep this number low.
	RemoteTransfers uint64
}

// Observer receives one event per Lock call at registration time: the
// current virtual time and the number of threads already waiting (the
// quantity plotted in the paper's Figures 4–9).
type Observer func(now sim.Time, waiting int)

// base carries the state shared by every lock implementation: the lock
// word (a cell on the lock's home node), ownership, wait accounting, and
// the observer hook.
type base struct {
	name  string
	sys   *cthreads.System
	node  int
	costs Costs

	flag  *sim.Cell
	owner *cthreads.Thread

	spinners int // threads currently in a spin loop
	stats    Stats
	observer Observer
	waitHist *metrics.Histogram

	// Attribution frame labels, precomputed at construction so the
	// profiler emit sites allocate nothing. frameSpin doubles as the
	// SpinSpec.Label of the lock's busy-wait loops.
	frameLock   string
	frameUnlock string
	frameCS     string
	frameWait   string
	frameSpin   string
	// holdFrom is the acquisition instant of the current hold, feeding
	// the hold-time histogram at release (profiler-only state).
	holdFrom sim.Time
	// lastNode is the node of the previous owner (-1 before the first
	// acquisition), feeding Stats.RemoteTransfers.
	lastNode int
}

func newBase(sys *cthreads.System, node int, name string, costs Costs) base {
	return base{
		name:        name,
		sys:         sys,
		node:        node,
		costs:       costs,
		flag:        sys.Machine().NewCell(node, name+".flag", 0),
		frameLock:   "Lock:" + name,
		frameUnlock: "Unlock:" + name,
		frameCS:     "cs:" + name,
		frameWait:   "wait:" + name,
		frameSpin:   "spin:" + name,
		lastNode:    -1,
	}
}

// Name returns the lock's name.
func (b *base) Name() string { return b.name }

// Node returns the memory node the lock's state lives on.
func (b *base) Node() int { return b.node }

// Stats returns accumulated counters.
func (b *base) Stats() Stats { return b.stats }

// SetObserver installs the per-request observer (nil to remove).
func (b *base) SetObserver(o Observer) { b.observer = o }

// SetWaitHistogram attaches a histogram that records each acquisition's
// request-to-grant wait (nil to detach).
func (b *base) SetWaitHistogram(h *metrics.Histogram) { b.waitHist = h }

// Owner returns the current owner thread, or nil.
func (b *base) Owner() *cthreads.Thread { return b.owner }

// observe reports a lock request with the current waiter count. It also
// opens the request's attribution frame ("Lock:name"), which acquired
// closes — every Lock implementation calls the pair.
func (b *base) observe(t *cthreads.Thread, waiting int) {
	if waiting > b.stats.MaxWaiting {
		b.stats.MaxWaiting = waiting
	}
	if b.observer != nil {
		b.observer(t.Now(), waiting)
	}
	if p := t.Prof(); p != nil {
		p.Push(t.Now(), b.frameLock)
	}
	b.traceLock(t, trace.KindLockRequest, int64(waiting), 0)
}

// acquired finishes bookkeeping for a successful acquisition: it closes
// the "Lock:name" frame, opens the critical-section frame, and records the
// request-to-grant wait in the profiler's wait histogram.
func (b *base) acquired(t *cthreads.Thread, start sim.Time, wasContended bool) {
	b.owner = t
	b.stats.Acquisitions++
	if wasContended {
		b.stats.Contended++
	}
	if b.lastNode >= 0 && b.lastNode != t.Node() {
		b.stats.RemoteTransfers++
	}
	b.lastNode = t.Node()
	wait := t.Now() - start
	b.stats.TotalWait += wait
	if b.waitHist != nil {
		b.waitHist.Record(wait)
	}
	if p := t.Prof(); p != nil {
		now := t.Now()
		p.Pop(now, b.frameLock)
		p.Push(now, b.frameCS)
		b.sys.Profiler().RecordWait(b.name, wait)
		b.holdFrom = now
	}
	var contended int64
	if wasContended {
		contended = 1
	}
	b.traceLock(t, trace.KindLockAcquire, int64(wait), contended)
}

// unlockStart opens the release's attribution frame: the critical section
// ends here (feeding the hold-time histogram) and the "Unlock:name" frame
// absorbs the release path's charges. Every Unlock implementation calls
// it on entry and unlockEnd on every exit.
func (b *base) unlockStart(t *cthreads.Thread) {
	if p := t.Prof(); p != nil {
		now := t.Now()
		p.Pop(now, b.frameCS)
		p.Push(now, b.frameUnlock)
		b.sys.Profiler().RecordHold(b.name, now-b.holdFrom)
	}
}

// unlockEnd closes the release's attribution frame.
func (b *base) unlockEnd(t *cthreads.Thread) {
	if p := t.Prof(); p != nil {
		p.Pop(t.Now(), b.frameUnlock)
	}
}

// waitStart/waitEnd bracket a requester's sleep on the lock with the
// "wait:name" attribution frame (inside the request frame).
func (b *base) waitStart(t *cthreads.Thread) {
	if p := t.Prof(); p != nil {
		p.Push(t.Now(), b.frameWait)
	}
}

func (b *base) waitEnd(t *cthreads.Thread) {
	if p := t.Prof(); p != nil {
		p.Pop(t.Now(), b.frameWait)
	}
}

// traceLock records one lock event against the calling thread. Free when
// no tracer is attached.
func (b *base) traceLock(t *cthreads.Thread, kind trace.Kind, a, v int64) {
	tr := b.sys.Tracer()
	if tr == nil {
		return
	}
	tr.Emit(trace.Event{
		At: t.Now(), Kind: kind,
		Proc: int32(t.Node()), Thread: int32(t.ID()),
		Name: b.name, A: a, B: v,
	})
}

// traceRelease records the lock's release. Implementations call it the
// moment ownership is surrendered — before any successor can observe the
// freed lock — so hold spans in the trace never overlap.
func (b *base) traceRelease(t *cthreads.Thread) {
	b.traceLock(t, trace.KindLockRelease, 0, 0)
}

// traceBlocked records a requester going to sleep on the lock.
func (b *base) traceBlocked(t *cthreads.Thread) {
	b.traceLock(t, trace.KindLockBlocked, 0, 0)
}

// checkOwner panics unless t owns the lock.
func (b *base) checkOwner(t *cthreads.Thread, op string) {
	if b.owner != t {
		ownerName := "<none>"
		if b.owner != nil {
			ownerName = b.owner.Name()
		}
		panic(fmt.Sprintf("locks: %s of %q by %q, owner is %s", op, b.name, t.Name(), ownerName))
	}
}

// tasProbe is the spin-spec probe shared by the test-and-set lock
// family: the atomior's effect on the already-charged lock word. A
// futile probe (word held) sets no new bits, satisfying the busy-wait
// contract sim.SpinSpec requires.
func (b *base) tasProbe() bool {
	old := b.flag.Peek()
	b.flag.Poke(old | 1)
	return old == 0
}

// spinPause is the spin-spec pause shared by the fixed-pause spin loops.
func (b *base) spinPause() sim.Time {
	return b.sys.Machine().InstrCost(b.costs.SpinPauseSteps)
}

// chargeAccesses charges t the cost of n plain references to the lock's
// home node.
func (b *base) chargeAccesses(t *cthreads.Thread, n int) {
	if n <= 0 {
		return
	}
	t.Advance(sim.Time(n) * b.sys.Machine().AccessCost(t.Node(), b.node))
}
