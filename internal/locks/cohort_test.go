package locks

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/cthreads"
	"repro/internal/sim"
)

// cohortSys builds a multiprogrammed test machine: one processor per
// node with quantum preemption, so threads sharing a node actually spin
// on the node-local word while a same-node owner runs — the scenario
// intra-node handoff exists for.
func cohortSys(nodes int) *cthreads.System {
	return cthreads.New(sim.Config{
		Nodes:         nodes,
		LocalAccess:   10,
		RemoteAccess:  40,
		AtomicExtra:   5,
		Instr:         1,
		ContextSwitch: 100,
		Wakeup:        200,
		Quantum:       10 * sim.Microsecond,
		Seed:          1,
	})
}

// runCohortWorkload drives nodes × perNode threads through nIters
// contended critical sections on a cohort lock and returns it.
func runCohortWorkload(t *testing.T, l *CohortLock, sys *cthreads.System, nodes, perNode, nIters int, hold sim.Time) {
	t.Helper()
	for node := 0; node < nodes; node++ {
		for k := 0; k < perNode; k++ {
			sys.Fork(node, fmt.Sprintf("n%dw%d", node, k), func(th *cthreads.Thread) {
				for j := 0; j < nIters; j++ {
					l.Lock(th)
					th.Advance(hold)
					l.Unlock(th)
				}
			})
		}
	}
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
}

// TestCohortHandoffAccounting checks the cohort invariants over a
// contended multi-node run: every acquisition either took the global lock
// or received it by intra-node handoff; the fairness budget bounds the
// handoffs per global tenure; and keeping handoffs local keeps remote
// transfers well below what node-oblivious granting would produce.
func TestCohortHandoffAccounting(t *testing.T) {
	sys := cohortSys(2)
	l := NewCohortLock(sys, 0, "cohort", DefaultCosts())
	runCohortWorkload(t, l, sys, 2, 2, 25, 2*sim.Microsecond)

	st, cs := l.Stats(), l.Cohort()
	if st.Acquisitions != 100 {
		t.Fatalf("Acquisitions = %d, want 100", st.Acquisitions)
	}
	if cs.LocalHandoffs == 0 {
		t.Error("no intra-node handoffs on a workload with same-node waiters")
	}
	if got := cs.GlobalAcquires + cs.LocalHandoffs; got != st.Acquisitions {
		t.Errorf("GlobalAcquires(%d) + LocalHandoffs(%d) = %d, want Acquisitions = %d",
			cs.GlobalAcquires, cs.LocalHandoffs, got, st.Acquisitions)
	}
	if cs.LocalHandoffs > uint64(DefaultCohortBudget)*cs.GlobalAcquires {
		t.Errorf("LocalHandoffs = %d exceeds budget %d × GlobalAcquires %d",
			cs.LocalHandoffs, DefaultCohortBudget, cs.GlobalAcquires)
	}
	// Remote transfers happen only when the cohort changes nodes, i.e. at
	// most once per global tenure.
	if st.RemoteTransfers > cs.GlobalAcquires {
		t.Errorf("RemoteTransfers = %d > GlobalAcquires = %d", st.RemoteTransfers, cs.GlobalAcquires)
	}
	if st.RemoteTransfers >= st.Acquisitions/2 {
		t.Errorf("RemoteTransfers = %d of %d acquisitions — cohorting is not keeping the lock local",
			st.RemoteTransfers, st.Acquisitions)
	}
}

// TestCohortBudgetOne checks the budget knob bites: with a budget of 1 the
// lock must release the global word at least every other acquisition.
func TestCohortBudgetOne(t *testing.T) {
	sys := cohortSys(2)
	l := NewCohortLock(sys, 0, "b1", DefaultCosts())
	if err := l.Object().Apply(core.Decision{Attr: AttrCohortBudget, Value: 1}, core.OwnerSelf); err != nil {
		t.Fatal(err)
	}
	runCohortWorkload(t, l, sys, 2, 2, 25, 2*sim.Microsecond)
	cs := l.Cohort()
	if cs.LocalHandoffs > cs.GlobalAcquires {
		t.Errorf("budget 1: LocalHandoffs = %d > GlobalAcquires = %d", cs.LocalHandoffs, cs.GlobalAcquires)
	}
}

// TestCohortPolicyRetunesBudget installs an adaptation policy on the
// cohort lock's object and checks a contended run drives a ledger-visible
// budget reconfiguration through the ordinary feedback loop.
func TestCohortPolicyRetunesBudget(t *testing.T) {
	sys := cohortSys(2)
	led := core.NewLedger(0)
	sys.SetLedger(led)
	l := NewCohortLock(sys, 0, "tuned", DefaultCosts())
	// Contention observed → widen the budget to favor locality.
	l.Object().SetPolicy(core.PolicyFunc(func(s core.Sample, o *core.Object) []core.Decision {
		if s.Value > 0 && o.Attrs.MustGet(AttrCohortBudget) != 32 {
			return []core.Decision{{Attr: AttrCohortBudget, Value: 32}}
		}
		return nil
	}))
	runCohortWorkload(t, l, sys, 2, 2, 25, 2*sim.Microsecond)

	if got := l.Object().Attrs.MustGet(AttrCohortBudget); got != 32 {
		t.Errorf("budget after contended run = %d, want 32", got)
	}
	found := false
	for _, e := range led.Entries() {
		if e.Object == "tuned" && e.Kind == core.EntryApply && strings.Contains(e.Decision, AttrCohortBudget) {
			found = true
			break
		}
	}
	if !found {
		t.Error("no cohort-budget apply entry in the adaptation ledger")
	}
}
