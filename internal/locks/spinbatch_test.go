package locks

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/cthreads"
	"repro/internal/sim"
)

// lockFingerprint is every simulated quantity a lock workload produces;
// spin batching must leave all of it byte-identical.
type lockFingerprint struct {
	FinalNow sim.Time
	Lock     Stats
	Sched    cthreads.Stats
	Busy     []sim.Time
	Accesses []uint64
	QueueDel []sim.Time
	Counter  int
}

// lockBuilder constructs the lock under test in a fresh system.
type lockBuilder struct {
	name  string
	build func(sys *cthreads.System) Lock
}

// spinBatchBuilders covers every busy-wait structure in the package: the
// raw TAS loop, the registered spin lock, exponential backoff (whose
// pause depends on the waiter count), the MCS-style local-spin queue, the
// reconfigurable lock in pure-spin and spin-then-block trims plus the
// adaptive lock that reconfigures mid-run, the predictive mutable lock,
// the NUMA cohort lock, and a retargetable lock that swaps mutable↔cohort
// from the waiting sensor mid-run.
func spinBatchBuilders() []lockBuilder {
	return []lockBuilder{
		{"tas", func(sys *cthreads.System) Lock { return NewTASLock(sys, 0, "tas", DefaultCosts()) }},
		{"spin", func(sys *cthreads.System) Lock { return NewSpinLock(sys, 0, "spin", DefaultCosts()) }},
		{"backoff", func(sys *cthreads.System) Lock { return NewBackoffSpinLock(sys, 0, "backoff", DefaultCosts()) }},
		{"mcs", func(sys *cthreads.System) Lock { return NewLocalSpinLock(sys, 0, "mcs", DefaultCosts()) }},
		{"pure-spin", func(sys *cthreads.System) Lock { return NewPureSpinConfigured(sys, 0, "pure-spin", DefaultCosts()) }},
		{"combined-10", func(sys *cthreads.System) Lock { return NewCombinedLock(sys, 0, "combined", DefaultCosts(), 10) }},
		{"adaptive", func(sys *cthreads.System) Lock { return NewAdaptiveLock(sys, 0, "adaptive", DefaultCosts(), nil) }},
		{"mutable", func(sys *cthreads.System) Lock { return NewMutableLock(sys, 0, "mutable", DefaultCosts()) }},
		{"cohort", func(sys *cthreads.System) Lock { return NewCohortLock(sys, 0, "cohort", DefaultCosts()) }},
		{"retarget", func(sys *cthreads.System) Lock {
			l, err := NewRetargetableLock(sys, 0, "retarget", DefaultCosts(), KindMutable, ImplAdapt(KindMutable, KindCohort, 2))
			if err != nil {
				panic(err)
			}
			return l
		}},
	}
}

// runLockWorkload drives nThreads × nIters contended critical sections
// over the built lock and fingerprints the run.
func runLockWorkload(t testing.TB, cfg sim.Config, b lockBuilder, nThreads, nIters int, batched bool) lockFingerprint {
	t.Helper()
	sys := cthreads.New(cfg)
	sys.Engine().SetBatchedSpins(batched)
	return driveLockWorkload(t, sys, cfg, b, nThreads, nIters)
}

// driveLockWorkload runs the workload on an already-configured system
// (engine modes set by the caller) and fingerprints the run.
func driveLockWorkload(t testing.TB, sys *cthreads.System, cfg sim.Config, b lockBuilder, nThreads, nIters int) lockFingerprint {
	t.Helper()
	l := b.build(sys)
	var fp lockFingerprint
	for i := 0; i < nThreads; i++ {
		sys.Fork(i%sys.Procs(), fmt.Sprintf("w%d", i), func(th *cthreads.Thread) {
			r := th.Rand()
			for j := 0; j < nIters; j++ {
				l.Lock(th)
				th.Advance(sim.Time(50 + r.Intn(300)))
				fp.Counter++
				l.Unlock(th)
				th.Advance(sim.Time(r.Intn(500)))
			}
		})
	}
	if err := sys.Run(); err != nil {
		t.Fatalf("%s: %v", b.name, err)
	}
	fp.FinalNow = sys.Now()
	fp.Lock = l.Stats()
	fp.Sched = sys.Stats()
	for _, th := range sys.Threads() {
		fp.Busy = append(fp.Busy, th.Busy())
	}
	m := sys.Machine()
	for n := 0; n < cfg.Nodes; n++ {
		fp.Accesses = append(fp.Accesses, m.ModuleAccesses(n))
		fp.QueueDel = append(fp.QueueDel, m.ModuleQueueDelay(n))
	}
	return fp
}

// spinBatchConfigs are the machine shapes the differential runs under:
// the fast test machine, the hot-spot machine (module contention feeds
// back into probe costs), and a quantum-limited multiprogrammed machine.
func spinBatchConfigs() []struct {
	name    string
	cfg     sim.Config
	threads int
} {
	fast := sim.Config{
		Nodes: 4, LocalAccess: 10, RemoteAccess: 40, AtomicExtra: 5,
		Instr: 1, ContextSwitch: 100, Wakeup: 200, Seed: 1,
	}
	hot := sim.HotSpotConfig()
	hot.Nodes = 4
	hot.Seed = 1
	quantum := fast
	quantum.Quantum = 30 * sim.Microsecond
	return []struct {
		name    string
		cfg     sim.Config
		threads int
	}{
		{"fast", fast, 4},
		{"hotspot", hot, 4},
		{"quantum", quantum, 8}, // 2 threads per processor
	}
}

// TestSpinBatchingLockDifferential fingerprints every lock kind × machine
// shape with batching on and off: simulated time, lock statistics,
// scheduler statistics, per-thread busy time, and per-module contention
// accounting must not drift by a single unit.
func TestSpinBatchingLockDifferential(t *testing.T) {
	for _, tc := range spinBatchConfigs() {
		for _, b := range spinBatchBuilders() {
			t.Run(tc.name+"/"+b.name, func(t *testing.T) {
				slow := runLockWorkload(t, tc.cfg, b, tc.threads, 6, false)
				fast := runLockWorkload(t, tc.cfg, b, tc.threads, 6, true)
				if !reflect.DeepEqual(slow, fast) {
					t.Errorf("fingerprints diverge:\nbatched: %+v\nslow:    %+v", fast, slow)
				}
				if slow.Counter != tc.threads*6 {
					t.Errorf("counter = %d, want %d", slow.Counter, tc.threads*6)
				}
			})
		}
	}
}

// FuzzModuleSpinAccounting attacks the fast path's hardest bookkeeping:
// with ModuleService > 0, every batched probe must still contribute its
// access, queue delay, and module reservation exactly as if issued one by
// one. The fuzzer varies the seed, service time, contention level, and
// lock kind.
func FuzzModuleSpinAccounting(f *testing.F) {
	f.Add(uint64(1), uint8(2), uint8(4), uint8(0))
	f.Add(uint64(7), uint8(1), uint8(8), uint8(3))
	f.Add(uint64(42), uint8(5), uint8(2), uint8(6))
	builders := spinBatchBuilders()
	f.Fuzz(func(t *testing.T, seed uint64, svcUnits, threads, kind uint8) {
		cfg := sim.Config{
			Nodes: 4, LocalAccess: 10, RemoteAccess: 40, AtomicExtra: 5,
			Instr: 1, ContextSwitch: 100, Wakeup: 200,
			ModuleService: sim.Time(svcUnits%6+1) * 100 * sim.Nanosecond,
			Seed:          seed%1000 + 1,
		}
		b := builders[int(kind)%len(builders)]
		n := int(threads%8) + 2
		slow := runLockWorkload(t, cfg, b, n, 4, false)
		fast := runLockWorkload(t, cfg, b, n, 4, true)
		if !reflect.DeepEqual(slow, fast) {
			t.Errorf("%s: fingerprints diverge:\nbatched: %+v\nslow:    %+v", b.name, fast, slow)
		}
	})
}

// TestLocalSpinLockReleasesQnodes is the churn regression: a run that
// cycles through many short-lived threads must not leave one queue record
// (and one simulated cell) per dead thread in the lock's map.
func TestLocalSpinLockReleasesQnodes(t *testing.T) {
	sys := testSys(2)
	l := NewLocalSpinLock(sys, 0, "churn", DefaultCosts())
	const generations = 40
	sys.Fork(0, "driver", func(th *cthreads.Thread) {
		for g := 0; g < generations; g++ {
			w := sys.Fork(1, fmt.Sprintf("g%d", g), func(th *cthreads.Thread) {
				l.Lock(th)
				th.Advance(100)
				l.Unlock(th)
			})
			th.Join(w)
		}
	})
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	if got := l.retained(); got != 0 {
		t.Errorf("lock retains %d qnodes after all threads exited, want 0", got)
	}
	if got := l.Stats().Acquisitions; got != generations {
		t.Errorf("Acquisitions = %d, want %d", got, generations)
	}
}
