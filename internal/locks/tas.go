package locks

import "repro/internal/cthreads"

// TASLock is the rawest lock: a bare atomior (test-and-set) loop with no
// registration, no queue, and no policy — Table 4's "atomior" row. It is
// the latency floor every other lock is measured against.
type TASLock struct {
	base
}

// NewTASLock allocates a raw test-and-set lock on the given node.
func NewTASLock(sys *cthreads.System, node int, name string, costs Costs) *TASLock {
	return &TASLock{base: newBase(sys, node, name, costs)}
}

// Lock spins on atomior until the word is clear. The probe loop is a
// Sleep-per-iteration hot site: its charges ride the engine's inline
// self-wakeup fast path whenever no other event is due first.
func (l *TASLock) Lock(t *cthreads.Thread) {
	start := t.Now()
	t.Compute(l.costs.TASLockSteps)
	l.observe(t, l.spinners)
	contended := false
	l.spinners++
	for l.flag.AtomicOr(t, 1) != 0 {
		contended = true
		l.stats.SpinIters++
		t.Compute(l.costs.SpinPauseSteps)
	}
	l.spinners--
	l.acquired(t, start, contended)
}

// Unlock clears the word.
func (l *TASLock) Unlock(t *cthreads.Thread) {
	l.checkOwner(t, "Unlock")
	t.Compute(l.costs.TASUnlockSteps)
	l.owner = nil
	l.traceRelease(t)
	l.flag.Store(t, 0)
}
