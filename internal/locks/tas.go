package locks

import (
	"repro/internal/cthreads"
	"repro/internal/sim"
)

// TASLock is the rawest lock: a bare atomior (test-and-set) loop with no
// registration, no queue, and no policy — Table 4's "atomior" row. It is
// the latency floor every other lock is measured against.
type TASLock struct {
	base
	spin sim.SpinSpec
}

// NewTASLock allocates a raw test-and-set lock on the given node.
func NewTASLock(sys *cthreads.System, node int, name string, costs Costs) *TASLock {
	l := &TASLock{base: newBase(sys, node, name, costs)}
	l.spin = sim.SpinSpec{
		ProbeCell:   l.flag,
		ProbeAtomic: true,
		Probe:       l.tasProbe,
		PauseCost:   l.spinPause,
		MaxIters:    sim.SpinUnbounded,
		Label:       l.frameSpin,
	}
	return l
}

// Lock spins on atomior until the word is clear. Contended probe bursts
// are batched by the engine; uncontended acquisitions cost a single
// inline-accrued probe, as before.
func (l *TASLock) Lock(t *cthreads.Thread) {
	start := t.Now()
	t.Compute(l.costs.TASLockSteps)
	l.observe(t, l.spinners)
	l.spinners++
	iters, _ := t.SpinUntil(&l.spin)
	l.stats.SpinIters += uint64(iters)
	l.spinners--
	l.acquired(t, start, iters > 0)
}

// Unlock clears the word.
func (l *TASLock) Unlock(t *cthreads.Thread) {
	l.checkOwner(t, "Unlock")
	l.unlockStart(t)
	t.Compute(l.costs.TASUnlockSteps)
	l.owner = nil
	l.traceRelease(t)
	l.flag.Store(t, 0)
	l.unlockEnd(t)
}
