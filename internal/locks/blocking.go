package locks

import "repro/internal/cthreads"

// BlockingLock is the pure sleeping lock: a busy requester registers in the
// wait queue and blocks; release hands the lock directly to the FCFS head
// and pays the wakeup cost. Its lock and unlock latencies are the highest
// of the family (Tables 4–6), but waiters consume no processor cycles —
// which is exactly what multiprogrammed workloads need (§2, Figure 1).
type BlockingLock struct {
	base
	q waitQueue
}

// NewBlockingLock allocates a blocking lock on the given node.
func NewBlockingLock(sys *cthreads.System, node int, name string, costs Costs) *BlockingLock {
	return &BlockingLock{base: newBase(sys, node, name, costs)}
}

// waiting reports queue length plus spinners (always 0 spinners here).
func (l *BlockingLock) waiting() int { return l.q.Len() + l.spinners }

// Lock acquires the lock, sleeping if it is busy.
func (l *BlockingLock) Lock(t *cthreads.Thread) {
	start := t.Now()
	t.Compute(l.costs.BlockLockSteps)
	l.observe(t, l.waiting())
	if l.flag.AtomicOr(t, 1) == 0 {
		l.acquired(t, start, false)
		return
	}
	// Busy: register, then re-test in case the lock was released
	// while we were registering; otherwise sleep until woken.
	w := l.q.enqueue(t)
	l.chargeAccesses(t, l.costs.QueueOpAccesses)
	if l.flag.AtomicOr(t, 1) == 0 {
		l.q.remove(w)
		l.chargeAccesses(t, l.costs.QueueOpAccesses)
		l.acquired(t, start, true)
		return
	}
	if !w.granted {
		l.stats.Blocks++
		l.traceBlocked(t)
		l.waitStart(t)
		t.Block()
		l.waitEnd(t)
	}
	// Woken: the releaser handed the lock over directly (the word
	// stayed set and this thread is the owner), in FCFS order.
	t.Compute(l.costs.PostWakeSteps)
	l.acquired(t, start, true)
}

// Unlock releases with direct handoff (the release component "grants new
// threads access to the lock upon its release", §5.1): the first waiter
// becomes the owner and the word stays set, so the lock's idle time is the
// full wakeup-and-dispatch path — the cost Table 6 measures. When nobody
// waits, the word is cleared; because a requester may have registered and
// failed its re-test while the clearing store was in flight, the queue is
// re-checked afterwards and the word reclaimed to hand off if so — no
// sleeper is ever stranded.
func (l *BlockingLock) Unlock(t *cthreads.Thread) {
	l.checkOwner(t, "Unlock")
	l.unlockStart(t)
	defer l.unlockEnd(t) // the handoff loop has several exits
	t.Compute(l.costs.BlockUnlockSteps)
	l.chargeAccesses(t, 1) // inspect the queue head
	l.owner = nil
	l.traceRelease(t)
	for {
		if w := l.q.pick(SchedFCFS, nil); w != nil {
			w.granted = true
			l.owner = w.t // handoff: the word stays set
			t.Wake(w.t)
			return
		}
		l.flag.Store(t, 0)
		l.chargeAccesses(t, 1)
		if l.q.Len() == 0 {
			return
		}
		// A requester slipped into the queue while the store was in
		// flight; reclaim the word and serve it. A failed reclaim means a
		// new owner acquired the freed word, and its release will serve
		// the queue.
		if l.flag.AtomicOr(t, 1) != 0 {
			return
		}
	}
}
