package locks

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/cthreads"
)

// MethodImpl is the retargetable lock's reconfigurable method: which lock
// implementation serves the callers. Its variants are the factory kinds,
// so an adaptation policy can retarget a lock onto any registered
// implementation — including the predictive mutable lock and the NUMA
// cohort lock — at run time, with each retargeting decision flowing
// through Object.Apply and into the adaptation ledger.
const MethodImpl = "impl"

// RetargetableLock wraps a factory-built lock behind a reconfigurable
// "impl" method. Callers Lock/Unlock as usual; a policy (fed by the
// waiting sensor, probed on every other release) may decide to install a
// different implementation variant. The swap itself is applied at
// quiescence — the first moment no thread is between Lock entry and
// Unlock exit — so waiters registered with the old implementation are
// always drained by it, never stranded.
type RetargetableLock struct {
	name  string
	sys   *cthreads.System
	node  int
	costs Costs
	obj   *core.Object

	cur     Lock
	curKind Kind
	gen     int
	// inFlight counts threads between Lock entry and Unlock exit (a plain
	// int is race-free: simulated threads interleave cooperatively).
	inFlight int
	// waiters counts threads inside the inner Lock call (the sensor).
	waiters  int
	switches uint64
	agg      Stats
	// frameAdapt attributes the inline monitor-sample work in Unlock.
	frameAdapt string
}

// NewRetargetableLock builds a retargetable lock starting from the given
// initial kind. A nil policy leaves it externally reconfigurable only
// (via Object().Apply with a MethodImpl decision).
func NewRetargetableLock(sys *cthreads.System, node int, name string, costs Costs, initial Kind, policy core.Policy) (*RetargetableLock, error) {
	l := &RetargetableLock{
		name:       name,
		sys:        sys,
		node:       node,
		costs:      costs,
		curKind:    initial,
		frameAdapt: "adapt:" + name,
	}
	l.obj = core.NewObject(name)
	l.obj.Methods.Define(MethodImpl, 1, KindNames()...)
	if _, err := l.obj.Methods.Install(MethodImpl, string(initial)); err != nil {
		return nil, err
	}
	l.obj.Monitor.AddSensor(SensorWaiting, 2, func() int64 { return int64(l.waiters) })
	l.obj.SetPolicy(policy)
	wireObservability(sys, l.obj, name)
	inner, err := New(sys, initial, node, l.innerName(initial), costs)
	if err != nil {
		return nil, err
	}
	l.cur = inner
	return l, nil
}

// innerName names one generation's inner lock (cells want unique names).
func (l *RetargetableLock) innerName(kind Kind) string {
	return fmt.Sprintf("%s#%d.%s", l.name, l.gen, kind)
}

// Object exposes the adaptive object (the impl method, the waiting
// sensor, the policy) for inspection and external reconfiguration.
func (l *RetargetableLock) Object() *core.Object { return l.obj }

// Current reports the kind currently serving callers (a decided but
// not-yet-quiescent retarget does not change it).
func (l *RetargetableLock) Current() Kind { return l.curKind }

// Switches reports how many retargets have been applied.
func (l *RetargetableLock) Switches() uint64 { return l.switches }

// Name returns the lock's name.
func (l *RetargetableLock) Name() string { return l.name }

// Stats sums the retired generations' counters with the current inner
// lock's.
func (l *RetargetableLock) Stats() Stats {
	s := l.cur.Stats()
	s.Acquisitions += l.agg.Acquisitions
	s.Contended += l.agg.Contended
	s.Blocks += l.agg.Blocks
	s.SpinIters += l.agg.SpinIters
	s.TotalWait += l.agg.TotalWait
	s.RemoteTransfers += l.agg.RemoteTransfers
	if l.agg.MaxWaiting > s.MaxWaiting {
		s.MaxWaiting = l.agg.MaxWaiting
	}
	return s
}

// trySwap applies a pending retarget if the lock is quiescent: it retires
// the current implementation's stats and builds the installed variant,
// charging the acting thread the scheduler-reconfiguration cost.
func (l *RetargetableLock) trySwap(t *cthreads.Thread) {
	installed, err := l.obj.Methods.Installed(MethodImpl)
	if err != nil || Kind(installed) == l.curKind || l.inFlight != 0 {
		return
	}
	old := l.cur.Stats()
	l.agg.Acquisitions += old.Acquisitions
	l.agg.Contended += old.Contended
	l.agg.Blocks += old.Blocks
	l.agg.SpinIters += old.SpinIters
	l.agg.TotalWait += old.TotalWait
	l.agg.RemoteTransfers += old.RemoteTransfers
	if old.MaxWaiting > l.agg.MaxWaiting {
		l.agg.MaxWaiting = old.MaxWaiting
	}
	l.gen++
	l.curKind = Kind(installed)
	l.cur = MustNew(l.sys, l.curKind, l.node, l.innerName(l.curKind), l.costs)
	l.switches++
	// The swap is the §5.2 scheduler reconfiguration: fixed steps plus
	// the five references that write the subcomponents and toggle the
	// draining flag (Table 8).
	t.Compute(configureSchedSteps)
	t.Advance(5 * l.sys.Machine().AccessCost(t.Node(), l.node))
}

// Lock acquires the current implementation, applying a pending retarget
// first if the lock is idle.
func (l *RetargetableLock) Lock(t *cthreads.Thread) {
	l.trySwap(t)
	l.inFlight++
	l.waiters++
	l.cur.Lock(t)
	l.waiters--
}

// Unlock releases the current implementation, probes the waiting sensor
// (feeding the retargeting policy), and applies a pending retarget if this
// release left the lock idle.
func (l *RetargetableLock) Unlock(t *cthreads.Thread) {
	l.cur.Unlock(t)
	l.inFlight--
	if p := t.Prof(); p != nil {
		p.Push(t.Now(), l.frameAdapt)
	}
	if _, ok := l.obj.Monitor.Probe(SensorWaiting); ok {
		t.Compute(l.costs.MonitorSampleSteps)
		t.Advance(2 * l.sys.Machine().AccessCost(t.Node(), l.node))
	}
	if p := t.Prof(); p != nil {
		p.Pop(t.Now(), l.frameAdapt)
	}
	l.trySwap(t)
}

// ImplAdapt returns the retargeting policy used by the experiments: serve
// light contention with the calm kind and heavy contention (waiting count
// above the threshold) with the busy kind.
func ImplAdapt(calm, busy Kind, threshold int64) core.Policy {
	return core.SchedulerAdapt{
		Method:         MethodImpl,
		Calm:           string(calm),
		Busy:           string(busy),
		QueueThreshold: threshold,
	}
}
