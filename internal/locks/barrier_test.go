package locks

import (
	"fmt"
	"testing"

	"repro/internal/cthreads"
	"repro/internal/sim"
)

func TestAdaptiveBarrierReleasesTogether(t *testing.T) {
	sys := testSys(4)
	b := NewAdaptiveBarrier(sys, "bar", 4, nil)
	var releases []sim.Time
	for i := 0; i < 4; i++ {
		delay := sim.Time((i + 1) * 20_000)
		sys.Fork(i, fmt.Sprintf("w%d", i), func(th *cthreads.Thread) {
			th.Advance(delay)
			b.Arrive(th)
			releases = append(releases, th.Now())
		})
	}
	if err := sys.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	for _, r := range releases {
		if r < 80_000 {
			t.Fatalf("release at %v before the last arrival (80µs)", r)
		}
	}
	trips, _, _ := b.Stats()
	if trips != 1 {
		t.Fatalf("trips = %d, want 1", trips)
	}
}

func TestAdaptiveBarrierReusable(t *testing.T) {
	sys := testSys(3)
	b := NewAdaptiveBarrier(sys, "bar", 3, nil)
	phases := make([]int, 3)
	for i := 0; i < 3; i++ {
		i := i
		sys.Fork(i, "w", func(th *cthreads.Thread) {
			for p := 0; p < 5; p++ {
				th.Advance(sim.Time(th.Rand().Intn(20_000)))
				b.Arrive(th)
				phases[i]++
				for j := range phases {
					if phases[j] < phases[i]-1 || phases[j] > phases[i]+1 {
						t.Errorf("phase skew: %v", phases)
					}
				}
			}
		})
	}
	if err := sys.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	trips, _, _ := b.Stats()
	if trips != 5 {
		t.Fatalf("trips = %d, want 5", trips)
	}
}

func TestAdaptiveBarrierConvergesToSpinWhenProcessorsIdle(t *testing.T) {
	sys := testSys(4)
	b := NewAdaptiveBarrier(sys, "bar", 4, nil)
	for i := 0; i < 4; i++ {
		sys.Fork(i, "w", func(th *cthreads.Thread) {
			for p := 0; p < 20; p++ {
				th.Advance(sim.Time(th.Rand().Intn(5000)))
				b.Arrive(th)
			}
		})
	}
	if err := sys.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	pol := b.Object().Policy().(BarrierReadyPolicy)
	if got := b.Object().Attrs.MustGet(BarrierAttrSpin); got != pol.MaxSpin {
		t.Fatalf("spin budget = %d after idle-processor run, want MaxSpin %d", got, pol.MaxSpin)
	}
}

func TestAdaptiveBarrierCollapsesWhenCoRunnable(t *testing.T) {
	cfg := sim.Config{
		Nodes: 2, LocalAccess: 10, RemoteAccess: 40, AtomicExtra: 5,
		Instr: 1, ContextSwitch: 100, Wakeup: 200, Seed: 1,
		Quantum: 50_000,
	}
	sys := cthreads.New(cfg)
	b := NewAdaptiveBarrier(sys, "bar", 4, nil)
	// Four workers on two processors: arrivals almost always leave a
	// co-runnable sibling in the ready queue.
	for i := 0; i < 4; i++ {
		sys.Fork(i%2, fmt.Sprintf("w%d", i), func(th *cthreads.Thread) {
			for p := 0; p < 20; p++ {
				th.Advance(sim.Time(20_000 + th.Rand().Intn(20_000)))
				b.Arrive(th)
			}
		})
	}
	if err := sys.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	pol := b.Object().Policy().(BarrierReadyPolicy)
	if got := b.Object().Attrs.MustGet(BarrierAttrSpin); got != pol.GraceSpin {
		t.Fatalf("spin budget = %d under multiprogramming, want GraceSpin %d", got, pol.GraceSpin)
	}
	if _, blocks, _ := b.Stats(); blocks == 0 {
		t.Fatal("no arrival ever slept under multiprogramming")
	}
}

func TestAdaptiveBarrierZeroPartiesPanics(t *testing.T) {
	sys := testSys(1)
	defer func() {
		if recover() == nil {
			t.Fatal("0-party barrier did not panic")
		}
	}()
	NewAdaptiveBarrier(sys, "bad", 0, nil)
}
