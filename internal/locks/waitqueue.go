package locks

import (
	"repro/internal/cthreads"
	"repro/internal/sim"
)

// waiter is one registered sleeping requester. granted marks handoff: the
// releasing thread may grant the lock to a waiter that has registered but
// not yet gone to sleep; the waiter notices and skips sleeping.
type waiter struct {
	t        *cthreads.Thread
	granted  bool
	enqueued sim.Time
}

// waitQueue is the registration component of a lock's scheduler: an
// ordered set of sleeping waiters from which the release component picks a
// successor according to the installed scheduling variant.
type waitQueue struct {
	ws []*waiter
}

// Len reports the number of registered waiters.
func (q *waitQueue) Len() int { return len(q.ws) }

// enqueue registers t and returns its record.
func (q *waitQueue) enqueue(t *cthreads.Thread) *waiter {
	w := &waiter{t: t, enqueued: t.Now()}
	q.ws = append(q.ws, w)
	return w
}

// remove deletes the specific record (a waiter that acquired the lock by
// retry, or abandoned the queue on timeout). It reports whether the record
// was present.
func (q *waitQueue) remove(w *waiter) bool {
	for i, x := range q.ws {
		if x == w {
			q.ws = append(q.ws[:i], q.ws[i+1:]...)
			return true
		}
	}
	return false
}

// Scheduler variant names for the reconfigurable lock's release component.
const (
	SchedFCFS     = "fcfs"
	SchedPriority = "priority"
	SchedHandoff  = "handoff"
)

// pick removes and returns the next waiter according to the scheduling
// variant. successor is the handoff designation (may be nil). Returns nil
// when the queue is empty.
func (q *waitQueue) pick(variant string, successor *cthreads.Thread) *waiter {
	if len(q.ws) == 0 {
		return nil
	}
	idx := 0
	switch variant {
	case SchedPriority:
		for i, w := range q.ws {
			if w.t.Priority() > q.ws[idx].t.Priority() {
				idx = i
			}
			_ = w
		}
	case SchedHandoff:
		if successor != nil {
			for i, w := range q.ws {
				if w.t == successor {
					idx = i
					break
				}
			}
		}
	}
	w := q.ws[idx]
	q.ws = append(q.ws[:idx], q.ws[idx+1:]...)
	return w
}
