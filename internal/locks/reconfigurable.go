package locks

import (
	"repro/internal/core"
	"repro/internal/cthreads"
	"repro/internal/sim"
)

// Attribute names of the reconfigurable/adaptive lock's waiting policy
// (Table "Lock Parameters", §5.1).
const (
	// AttrSpinTime is the number of initial spins before a requester
	// considers sleeping. 0 with sleeping enabled = pure blocking.
	AttrSpinTime = "spin-time"
	// AttrDelayTime is a per-iteration backoff delay in nanoseconds,
	// multiplied by the number of waiting threads (0 = no backoff).
	AttrDelayTime = "delay-time"
	// AttrSleepTime enables sleeping once spins are exhausted (0 = pure
	// spin: the requester never sleeps).
	AttrSleepTime = "sleep-time"
	// AttrTimeout bounds one sleep in nanoseconds (0 = sleep until
	// granted); a timed-out waiter re-reads the policy and retries —
	// the "conditional sleep/spin" row of the attribute table.
	AttrTimeout = "timeout"
)

// MethodScheduler is the reconfigurable scheduler method; its three
// subcomponents are registration, acquisition, and release (§5.1).
const MethodScheduler = "scheduler"

// SensorWaiting is the adaptive lock's sensor: the number of threads
// currently waiting (spinning or sleeping).
const SensorWaiting = "no-of-waiting-threads"

// Extra instruction-step charges for explicit reconfiguration operations
// (Table 8 calibration; see Costs for the philosophy).
const (
	configureWaitingSteps = 34
	configureSchedSteps   = 38
	acquireAttrSteps      = 118
)

// ReconfigurableLock is the lock of [MS93] §3: its waiting policy is a set
// of mutable attributes (spin-time, delay-time, sleep-time, timeout) and
// its scheduler is a reconfigurable method with FCFS, priority, and
// handoff variants. It has no monitor and no policy of its own; an
// external agent (or embedding AdaptiveLock) reconfigures it.
type ReconfigurableLock struct {
	base
	q         waitQueue
	obj       *core.Object
	successor *cthreads.Thread
	// frameAdapt attributes the inline monitor-sample/adaptation work
	// performed in Unlock ("adapt:name").
	frameAdapt string
}

// NewReconfigurableLock allocates a reconfigurable lock on the given node
// with an initial waiting policy of spin-then-block after initialSpins
// iterations (initialSpins 0 = pure blocking).
func NewReconfigurableLock(sys *cthreads.System, node int, name string, costs Costs, initialSpins int64) *ReconfigurableLock {
	l := &ReconfigurableLock{base: newBase(sys, node, name, costs)}
	l.frameAdapt = "adapt:" + name
	l.obj = core.NewObject(name)
	l.obj.Attrs.Define(AttrSpinTime, initialSpins, true)
	l.obj.Attrs.Define(AttrDelayTime, 0, true)
	l.obj.Attrs.Define(AttrSleepTime, 1, true)
	l.obj.Attrs.Define(AttrTimeout, 0, true)
	l.obj.Methods.Define(MethodScheduler, 3, SchedFCFS, SchedPriority, SchedHandoff)
	wireObservability(sys, l.obj, name)
	return l
}

// wireObservability routes an adaptive object's feedback loop into the
// system tracer and the adaptation decision ledger. Kept as a thin
// package-local alias for cthreads.System.WireObject, which monitors and
// other core.Object embedders share.
func wireObservability(sys *cthreads.System, obj *core.Object, name string) {
	sys.WireObject(obj, name)
}

// Object exposes the underlying adaptive object (attributes, methods,
// monitor, policy) for configuration and inspection.
func (l *ReconfigurableLock) Object() *core.Object { return l.obj }

// waiting reports the number of threads currently waiting for the lock.
func (l *ReconfigurableLock) waiting() int { return l.spinners + l.q.Len() }

// Waiting reports the current waiter count (for sensors and tests).
func (l *ReconfigurableLock) Waiting() int { return l.waiting() }

// SetSuccessor designates the thread the handoff scheduler should grant
// the lock to at the next release. Only meaningful while the caller owns
// the lock and the handoff variant is installed.
func (l *ReconfigurableLock) SetSuccessor(t *cthreads.Thread) { l.successor = t }

// policy reads the current waiting policy. The cost of reading the
// attributes from the lock's home node is charged separately at the call
// sites (one access per attribute).
func (l *ReconfigurableLock) policy() (spin, delay, sleep, timeout int64) {
	return l.obj.Attrs.MustGet(AttrSpinTime),
		l.obj.Attrs.MustGet(AttrDelayTime),
		l.obj.Attrs.MustGet(AttrSleepTime),
		l.obj.Attrs.MustGet(AttrTimeout)
}

// Lock acquires the lock according to the current waiting policy: spin up
// to spin-time iterations (with delay-time backoff), then — if sleeping is
// enabled — register and sleep, bounded by timeout if one is set. A
// requester under a pure-spin policy (sleep-time 0) never sleeps.
func (l *ReconfigurableLock) Lock(t *cthreads.Thread) {
	start := t.Now()
	t.Compute(l.costs.SpinLockSteps)
	l.observe(t, l.waiting())
	// The four waiting-policy attributes are packed into one word of the
	// lock's state, so reading the whole policy costs one reference.
	spin, delay, sleep, timeout := l.policy()
	l.chargeAccesses(t, 1)
	contended := false
	l.spinners++
	for {
		// The spin phase as a spec: an atomior probe of the lock word,
		// spin-time futile iterations (unbounded under a pure-spin
		// policy), each pausing for the fixed spin pause plus the
		// per-waiter backoff when delay-time is set. The pause closure
		// reads the policy variables of this Lock call, so a policy
		// re-read after a sleep takes effect on the next phase exactly as
		// the open-coded loop's would.
		maxIters := sim.SpinUnbounded
		if sleep != 0 {
			maxIters = spin
			if maxIters < 0 {
				maxIters = 0
			}
		}
		spec := sim.SpinSpec{
			ProbeCell:   l.flag,
			ProbeAtomic: true,
			Probe:       l.tasProbe,
			PauseCost: func() sim.Time {
				pause := l.sys.Machine().InstrCost(l.costs.SpinPauseSteps)
				if delay > 0 {
					waiting := l.waiting()
					if waiting < 1 {
						waiting = 1
					}
					pause += sim.Time(delay) * sim.Time(waiting)
				}
				return pause
			},
			MaxIters: maxIters,
			Label:    l.frameSpin,
		}
		iters, ok := t.SpinUntil(&spec)
		l.stats.SpinIters += uint64(iters)
		if iters > 0 {
			contended = true
		}
		if ok {
			l.spinners--
			l.acquired(t, start, contended)
			return
		}
		contended = true

		// Spins exhausted and sleeping is enabled: register and sleep.
		l.spinners--
		w := l.q.enqueue(t)
		l.chargeAccesses(t, l.costs.QueueOpAccesses)
		if l.flag.AtomicOr(t, 1) == 0 {
			// Released while we registered.
			l.q.remove(w)
			l.chargeAccesses(t, l.costs.QueueOpAccesses)
			l.acquired(t, start, true)
			return
		}
		l.stats.Blocks++
		l.traceBlocked(t)
		if timeout > 0 {
			l.waitStart(t)
			timedOut := t.BlockTimeout(sim.Time(timeout))
			l.waitEnd(t)
			if timedOut && !w.granted {
				// Conditional sleep expired without a grant: leave the
				// queue before re-contending.
				l.q.remove(w)
				l.chargeAccesses(t, l.costs.QueueOpAccesses)
			}
		} else if !w.granted {
			l.waitStart(t)
			t.Block()
			l.waitEnd(t)
		}
		// Woken — by a grant (the releaser freed the word with this
		// thread as the scheduler's choice) or by timeout. Either way the
		// lock is taken by test-and-set, so a running thread may have
		// barged in the wakeup window; re-read the (possibly
		// reconfigured) policy and re-contend from the spin phase.
		t.Compute(l.costs.PostWakeSteps)
		spin, delay, sleep, timeout = l.policy()
		l.chargeAccesses(t, 1)
		l.spinners++
	}
}

// Unlock releases the lock: probe the monitor (a no-op unless an adaptive
// embedding registered sensors), then let the installed scheduler's
// release component grant the lock to a sleeping waiter, or clear the word
// for spinners.
func (l *ReconfigurableLock) Unlock(t *cthreads.Thread) {
	l.checkOwner(t, "Unlock")
	l.unlockStart(t)
	t.Compute(l.costs.AdaptUnlockSteps)
	l.chargeAccesses(t, 1) // inspect the queue head

	if p := t.Prof(); p != nil {
		p.Push(t.Now(), l.frameAdapt)
	}
	if _, ok := l.obj.Monitor.Probe(SensorWaiting); ok {
		// The closely-coupled customized monitor: collect the sample and
		// run the adaptation policy inline, in the unlocking thread.
		t.Compute(l.costs.MonitorSampleSteps)
		l.chargeAccesses(t, 2) // read the sensed state, write the attribute
	}
	if p := t.Prof(); p != nil {
		p.Pop(t.Now(), l.frameAdapt)
	}

	sched, err := l.obj.Methods.Installed(MethodScheduler)
	if err != nil {
		panic(err)
	}
	l.owner = nil
	l.traceRelease(t)
	successor := l.successor
	l.successor = nil
	// Free the word FIRST, and only then consult the queue: a requester
	// that registered and re-tested while our store was in flight is
	// guaranteed to be visible to the pick below, so no sleeper is ever
	// stranded. Freeing before waking also means a spinning requester may
	// barge during the wakeup window — which is exactly what lets a
	// combined lock's spin phase catch the lock at all.
	l.flag.Store(t, 0)
	if w := l.q.pick(sched, successor); w != nil {
		// Granting a sleeper runs the full release component of the
		// configurable scheduler (dequeue per the installed variant,
		// wakeup) — the slow path that makes the blocking-configured
		// adaptive lock's cycle costlier than the static blocking lock's
		// (Table 7 vs Table 6).
		t.Compute(l.costs.GrantExtraSteps)
		w.granted = true
		t.Wake(w.t)
	}
	l.unlockEnd(t)
}

// ConfigureBy applies a reconfiguration decision on behalf of the calling
// thread, charging the operation's cost: a waiting-policy change is one
// read plus one write to the lock's node; a scheduler change writes the
// three subcomponents plus a set and a reset of the draining flag (§5.2,
// Table 8).
func (l *ReconfigurableLock) ConfigureBy(t *cthreads.Thread, d core.Decision, by core.OwnerID) error {
	if d.Attr != "" {
		t.Compute(configureWaitingSteps)
		l.chargeAccesses(t, 2)
	}
	if d.Method != "" {
		t.Compute(configureSchedSteps)
		l.chargeAccesses(t, 5)
	}
	return l.obj.Apply(d, by)
}

// AcquireAttrBy takes explicit ownership of an attribute for an external
// agent, charging the test-and-set-like acquisition cost (Table 8).
func (l *ReconfigurableLock) AcquireAttrBy(t *cthreads.Thread, attr string, by core.OwnerID) error {
	t.Compute(acquireAttrSteps)
	t.Advance(l.sys.Machine().AccessCost(t.Node(), l.node) + l.sys.Machine().Config().AtomicExtra)
	return l.obj.Attrs.Acquire(attr, by)
}

// ReleaseAttrBy releases explicit ownership of an attribute.
func (l *ReconfigurableLock) ReleaseAttrBy(t *cthreads.Thread, attr string, by core.OwnerID) error {
	l.chargeAccesses(t, 2)
	return l.obj.Attrs.Release(attr, by)
}

// GeneralMonitorSample routes one state variable through the
// general-purpose thread monitor path the paper rejected as too loosely
// coupled: the sample is handed to a monitor thread on another node. Used
// only to reproduce Table 8's monitor row.
func (l *ReconfigurableLock) GeneralMonitorSample(t *cthreads.Thread) int64 {
	t.Compute(l.costs.GeneralMonitorSteps)
	l.chargeAccesses(t, 1)
	return int64(l.waiting())
}

// NewCombinedLock builds a statically configured combined lock: spin
// initialSpins times, then block (Figure 1's "spins N times initially
// before blocking"). It is a ReconfigurableLock that nobody reconfigures.
func NewCombinedLock(sys *cthreads.System, node int, name string, costs Costs, initialSpins int64) *ReconfigurableLock {
	return NewReconfigurableLock(sys, node, name, costs, initialSpins)
}

// SetupPolicy sets the waiting-policy attributes without charging any
// simulated time. For experiment setup only; simulated code must use
// ConfigureBy.
func (l *ReconfigurableLock) SetupPolicy(spin, delay, sleep, timeout int64) {
	for _, kv := range []struct {
		name string
		v    int64
	}{
		{AttrSpinTime, spin},
		{AttrDelayTime, delay},
		{AttrSleepTime, sleep},
		{AttrTimeout, timeout},
	} {
		if err := l.obj.Attrs.Set(kv.name, kv.v, core.OwnerSelf); err != nil {
			panic(err)
		}
	}
}

// NewPureSpinConfigured builds a reconfigurable lock pinned to the
// pure-spin configuration (sleep disabled), for Table 7.
func NewPureSpinConfigured(sys *cthreads.System, node int, name string, costs Costs) *ReconfigurableLock {
	l := NewReconfigurableLock(sys, node, name, costs, 0)
	l.SetupPolicy(0, 0, 0, 0)
	return l
}

// NewPureBlockingConfigured builds a reconfigurable lock pinned to the
// pure-blocking configuration (zero spins), for Table 7.
func NewPureBlockingConfigured(sys *cthreads.System, node int, name string, costs Costs) *ReconfigurableLock {
	l := NewReconfigurableLock(sys, node, name, costs, 0)
	l.SetupPolicy(0, 0, 1, 0)
	return l
}
