package locks

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/cthreads"
	"repro/internal/sim"
)

// runLockWorkloadModes is runLockWorkload with both engine fast paths
// under explicit control.
func runLockWorkloadModes(t testing.TB, cfg sim.Config, b lockBuilder, nThreads, nIters int, inline, batched bool) lockFingerprint {
	t.Helper()
	sys := cthreads.New(cfg)
	sys.Engine().SetInlineWakeups(inline)
	sys.Engine().SetBatchedSpins(batched)
	return driveLockWorkload(t, sys, cfg, b, nThreads, nIters)
}

// TestLockEngineModeDifferential proves the predictive mutable lock, the
// NUMA cohort lock, and the retargeting wrapper produce byte-identical
// simulated metrics across every engine-mode combination: inline wakeups
// × batched spins, under the fast machine, the hot-spot machine, and the
// quantum-preemption machine (spinBatchConfigs). Prediction and handoff
// decisions read only virtual-time state, so no mode may shift a single
// unit of any metric.
func TestLockEngineModeDifferential(t *testing.T) {
	newKinds := map[string]bool{"mutable": true, "cohort": true, "retarget": true}
	for _, tc := range spinBatchConfigs() {
		for _, b := range spinBatchBuilders() {
			if !newKinds[b.name] {
				continue
			}
			t.Run(tc.name+"/"+b.name, func(t *testing.T) {
				ref := runLockWorkloadModes(t, tc.cfg, b, tc.threads, 6, false, false)
				for _, mode := range []struct{ inline, batched bool }{
					{false, true}, {true, false}, {true, true},
				} {
					got := runLockWorkloadModes(t, tc.cfg, b, tc.threads, 6, mode.inline, mode.batched)
					if !reflect.DeepEqual(ref, got) {
						t.Errorf("inline=%v batched=%v diverges from reference:\nref: %+v\ngot: %+v",
							mode.inline, mode.batched, got, ref)
					}
				}
				if want := tc.threads * 6; ref.Counter != want {
					t.Errorf("counter = %d, want %d", ref.Counter, want)
				}
			})
		}
	}
}

// TestFactoryKindsErrorListsKinds checks the unknown-kind error names the
// valid kinds in sorted order.
func TestFactoryKindsErrorListsKinds(t *testing.T) {
	sys := testSys(1)
	_, err := New(sys, Kind("bogus"), 0, "x", DefaultCosts())
	if err == nil {
		t.Fatal("unknown kind accepted")
	}
	want := "valid kinds: adaptive, backoff, blocking, cohort, mutable, spin, tas"
	if got := err.Error(); !strings.Contains(got, want) {
		t.Errorf("error %q does not list sorted kinds (%q)", got, want)
	}
}
