package locks

import (
	"repro/internal/core"
	"repro/internal/cthreads"
	"repro/internal/sim"
)

// Attribute and sensor names of the mutable lock's predictor.
const (
	// AttrHoldEstimate is the rolling estimate of the lock's hold time in
	// nanoseconds of virtual time, maintained by the feedback loop (EWMA
	// over observed holds) after every release. It is an ordinary mutable
	// attribute: external agents may read it, override it, or take
	// ownership of it like any other, and every update flows through
	// Object.Apply, so the estimate's history is ledger-visible.
	AttrHoldEstimate = "hold-estimate"
	// SensorHoldTime senses the duration of the hold that just ended, in
	// nanoseconds of virtual time, probed once per unlock.
	SensorHoldTime = "hold-time"
)

// EWMA weights of the hold-time estimator: avg ← (1·v + 3·avg) / 4. A
// quarter-weight on the newest hold converges on a step change in ~15
// holds while damping one-off outliers.
const (
	DefaultHoldEWMAAlpha = 1
	DefaultHoldEWMADen   = 4
)

// spinBlockFactor bounds the spin-then-block band: a predicted wait of up
// to spinBlockFactor× the block/unblock cost hedges with a bounded spin
// before sleeping (the classic 2-competitive window); beyond it the waiter
// blocks immediately.
const spinBlockFactor = 2

// maxSpinRounds bounds how many consecutive times a waiter may re-decide
// "spin" after a predicted deadline expired without an acquisition. Missed
// deadlines mean the estimate is stale (e.g. the owner was preempted
// mid-hold); after maxSpinRounds misses the waiter blocks regardless, so
// total futile spinning per acquisition stays bounded even under
// adversarial hold times.
const maxSpinRounds = 3

// Waiting-mode classes of one arrival, for PredictionStats.
const (
	decCold = iota
	decSpin
	decSpinBlock
	decBlock
)

// PredictionStats reports how a mutable lock's contended arrivals decided
// and how well the predicted waits matched the realized ones.
type PredictionStats struct {
	// Spin, SpinBlock, and Block count contended arrivals routed to each
	// waiting mode by the predictor; Cold counts contended arrivals that
	// found no estimate yet and fell back to a fixed spin-then-block.
	Spin, SpinBlock, Block, Cold uint64
	// Samples counts predicted contended arrivals; PredictedSum, ActualSum,
	// and AbsErrSum accumulate their predicted waits, realized waits, and
	// absolute prediction errors (all virtual time).
	Samples                            uint64
	PredictedSum, ActualSum, AbsErrSum sim.Time
}

// MutableLock picks spin vs sleep per waiter, per acquisition, from a
// prediction ("Mutable Locks", PAPERS.md) instead of reacting to observed
// contention after the fact like AdaptiveLock. The lock's monitor senses
// each hold's duration at release; the feedback loop smooths the holds
// into the hold-estimate attribute; each arriving waiter predicts its
// remaining wait from the estimate, the current hold's age, and the queue
// ahead of it, and compares the prediction against the block/unblock cost:
//
//	predicted ≤ cost          spin to the predicted deadline, re-decide
//	cost < predicted ≤ 2·cost spin one cost's worth, then block
//	predicted > 2·cost        block immediately
//
// All spinning goes through SpinUntil, so the engine's batched-spin
// emulation applies; every estimate update is an Object.Apply and lands in
// the adaptation ledger. Prediction reads only virtual-time quantities
// (cell state, t.Now(), the estimate attribute), so decisions — and
// therefore all simulated metrics — are deterministic and engine-mode
// independent.
type MutableLock struct {
	base
	q   waitQueue
	obj *core.Object
	// frameAdapt attributes the inline monitor-sample work in Unlock.
	frameAdapt string

	// heldSince is the acquisition instant of the current hold. Unlike
	// base.holdFrom it is maintained with or without a profiler: arriving
	// waiters read it to age the estimate.
	heldSince sim.Time
	// lastHold is the duration of the most recently completed hold (ns),
	// read by the hold-time sensor.
	lastHold int64
	// estValid flips true at the first feedback sample; until then
	// arrivals take the cold-start path.
	estValid bool
	pred     PredictionStats
}

// NewMutableLock allocates a mutable (predictive spin-vs-sleep) lock on
// the given node.
func NewMutableLock(sys *cthreads.System, node int, name string, costs Costs) *MutableLock {
	l := &MutableLock{base: newBase(sys, node, name, costs)}
	l.frameAdapt = "adapt:" + name
	l.obj = core.NewObject(name)
	l.obj.Attrs.Define(AttrHoldEstimate, 0, true)
	// The customized lock monitor senses every hold's duration at
	// release; the policy smooths it and writes the estimate attribute
	// through the ordinary reconfiguration path.
	l.obj.Monitor.AddSensor(SensorHoldTime, 1, func() int64 { return l.lastHold })
	l.obj.SetPolicy(&core.EWMA{
		Alpha: DefaultHoldEWMAAlpha,
		Den:   DefaultHoldEWMADen,
		Inner: holdEstimatePolicy{l},
	})
	wireObservability(sys, l.obj, name)
	return l
}

// holdEstimatePolicy is the inner policy behind the EWMA smoother: it
// publishes each smoothed hold time as the hold-estimate attribute
// (skipping no-op writes so the ledger records changes, not repetition).
type holdEstimatePolicy struct{ l *MutableLock }

// React implements core.Policy.
func (p holdEstimatePolicy) React(s core.Sample, o *core.Object) []core.Decision {
	p.l.estValid = true
	if o.Attrs.MustGet(AttrHoldEstimate) == s.Value {
		return nil
	}
	return []core.Decision{{Attr: AttrHoldEstimate, Value: s.Value}}
}

// Object exposes the underlying adaptive object (the estimate attribute,
// the hold-time sensor, the smoothing policy) for inspection and external
// reconfiguration.
func (l *MutableLock) Object() *core.Object { return l.obj }

// Prediction returns the accumulated prediction statistics.
func (l *MutableLock) Prediction() PredictionStats { return l.pred }

// Estimate returns the current hold-time estimate and whether any hold has
// been observed yet.
func (l *MutableLock) Estimate() (sim.Time, bool) {
	return sim.Time(l.obj.Attrs.MustGet(AttrHoldEstimate)), l.estValid
}

// waiting reports the number of threads currently waiting for the lock.
func (l *MutableLock) waiting() int { return l.spinners + l.q.Len() }

// Waiting reports the current waiter count (for sensors and tests).
func (l *MutableLock) Waiting() int { return l.waiting() }

// blockCost is the virtual-time price of sleeping instead of spinning:
// the context switch out, the wakeup, the post-wake completion steps, and
// the queue insert plus remove references. Everything is derived from the
// machine configuration and the cost table, never from wall time.
func (l *MutableLock) blockCost(t *cthreads.Thread) sim.Time {
	m := l.sys.Machine()
	cfg := m.Config()
	return cfg.ContextSwitch + cfg.Wakeup +
		m.InstrCost(l.costs.PostWakeSteps) +
		sim.Time(2*l.costs.QueueOpAccesses)*m.AccessCost(t.Node(), l.node)
}

// predictWait predicts this arrival's wait: the current hold's estimated
// remainder (zero once the hold is overdue — release is then imminent)
// plus one full estimated hold per waiter already ahead.
func (l *MutableLock) predictWait(t *cthreads.Thread, est sim.Time) sim.Time {
	var remaining sim.Time
	if l.owner != nil {
		if held := t.Now() - l.heldSince; held < est {
			remaining = est - held
		}
	}
	return remaining + sim.Time(l.waiting())*est
}

// spinIterCost is the virtual time one futile spin iteration costs: the
// atomic probe of the lock word plus the inter-probe pause.
func (l *MutableLock) spinIterCost(t *cthreads.Thread) sim.Time {
	m := l.sys.Machine()
	return m.AccessCost(t.Node(), l.node) + m.Config().AtomicExtra +
		m.InstrCost(l.costs.SpinPauseSteps)
}

// Lock acquires the lock, choosing this waiter's mode from the predicted
// wait (see the type comment).
func (l *MutableLock) Lock(t *cthreads.Thread) {
	start := t.Now()
	t.Compute(l.costs.SpinLockSteps)
	l.observe(t, l.waiting())
	// The estimate is one word of the lock's state: one reference reads it.
	l.chargeAccesses(t, 1)
	contended := l.owner != nil || l.waiting() > 0
	firstPred := sim.Time(-1)
	classed := false
	spinRounds := 0
	for {
		blockCost := l.blockCost(t)
		dec := decCold
		var pred sim.Time
		if l.estValid {
			pred = l.predictWait(t, sim.Time(l.obj.Attrs.MustGet(AttrHoldEstimate)))
			switch {
			case pred <= blockCost:
				dec = decSpin
			case pred <= spinBlockFactor*blockCost:
				dec = decSpinBlock
			default:
				dec = decBlock
			}
		}
		if !classed && contended {
			classed = true
			switch dec {
			case decCold:
				l.pred.Cold++
			case decSpin:
				l.pred.Spin++
			case decSpinBlock:
				l.pred.SpinBlock++
			case decBlock:
				l.pred.Block++
			}
			if dec != decCold {
				firstPred = pred
			}
		}
		if dec == decSpin && spinRounds >= maxSpinRounds {
			// The estimate keeps under-predicting (stale after a
			// preemption or a phase change): stop trusting it.
			dec = decBlock
		}
		var maxIters int64
		switch dec {
		case decCold:
			maxIters = DefaultInitialSpins
		case decSpin:
			// Spin to the predicted deadline plus one block cost of
			// slack: the estimate can't see the owner's release-path
			// overhead, and giving up in that window would pay the full
			// block cost to avoid a near-certain imminent grant. Total
			// spin stays within the 2-competitive envelope.
			maxIters = int64((pred + blockCost) / l.spinIterCost(t))
		case decSpinBlock:
			maxIters = int64(blockCost/l.spinIterCost(t)) + 1
		case decBlock:
			maxIters = 0
		}
		if maxIters > 0 {
			spec := sim.SpinSpec{
				ProbeCell:   l.flag,
				ProbeAtomic: true,
				Probe:       l.tasProbe,
				PauseCost:   l.spinPause,
				MaxIters:    maxIters,
				Label:       l.frameSpin,
			}
			l.spinners++
			iters, ok := t.SpinUntil(&spec)
			l.spinners--
			l.stats.SpinIters += uint64(iters)
			if iters > 0 {
				contended = true
			}
			if ok {
				l.finishAcquire(t, start, contended, firstPred)
				return
			}
			contended = true
			if dec == decSpin {
				// Deadline missed: re-predict from fresh state.
				spinRounds++
				continue
			}
		}
		// Sleep: register, re-test (the owner may have released while we
		// registered), block, and re-decide on wakeup.
		w := l.q.enqueue(t)
		l.chargeAccesses(t, l.costs.QueueOpAccesses)
		if l.flag.AtomicOr(t, 1) == 0 {
			l.q.remove(w)
			l.chargeAccesses(t, l.costs.QueueOpAccesses)
			l.finishAcquire(t, start, true, firstPred)
			return
		}
		contended = true
		l.stats.Blocks++
		l.traceBlocked(t)
		if !w.granted {
			l.waitStart(t)
			t.Block()
			l.waitEnd(t)
		}
		// Woken: the word was freed with us as the pick, but a running
		// thread may have barged in the wakeup window; re-predict and
		// re-contend.
		t.Compute(l.costs.PostWakeSteps)
		l.chargeAccesses(t, 1)
		spinRounds = 0
	}
}

// finishAcquire completes bookkeeping: the base accounting, the hold
// timestamp the predictor ages against, and the predicted-vs-actual
// calibration record when this arrival carried a prediction.
func (l *MutableLock) finishAcquire(t *cthreads.Thread, start sim.Time, contended bool, firstPred sim.Time) {
	l.acquired(t, start, contended)
	l.heldSince = t.Now()
	if firstPred >= 0 {
		actual := t.Now() - start
		l.pred.Samples++
		l.pred.PredictedSum += firstPred
		l.pred.ActualSum += actual
		err := actual - firstPred
		if err < 0 {
			err = -err
		}
		l.pred.AbsErrSum += err
	}
}

// Unlock releases the lock: it feeds the completed hold to the estimator
// (the monitor probe, collected inline by the unlocking thread), frees the
// word, and wakes the FCFS head of the sleep queue if any.
func (l *MutableLock) Unlock(t *cthreads.Thread) {
	l.checkOwner(t, "Unlock")
	l.unlockStart(t)
	t.Compute(l.costs.AdaptUnlockSteps)
	l.chargeAccesses(t, 1) // inspect the queue head
	l.lastHold = int64(t.Now() - l.heldSince)

	if p := t.Prof(); p != nil {
		p.Push(t.Now(), l.frameAdapt)
	}
	if _, ok := l.obj.Monitor.Probe(SensorHoldTime); ok {
		// Collect the hold sample and run the estimator inline.
		t.Compute(l.costs.MonitorSampleSteps)
		l.chargeAccesses(t, 2) // read the sensed hold, write the estimate
	}
	if p := t.Prof(); p != nil {
		p.Pop(t.Now(), l.frameAdapt)
	}

	l.owner = nil
	l.traceRelease(t)
	// Free the word FIRST, then consult the queue (see ReconfigurableLock:
	// no sleeper is ever stranded, and spinners may barge — which is what
	// makes a predicted spin pay off).
	l.flag.Store(t, 0)
	if w := l.q.pick(SchedFCFS, nil); w != nil {
		t.Compute(l.costs.GrantExtraSteps)
		w.granted = true
		t.Wake(w.t)
	}
	l.unlockEnd(t)
}
