// Package cli centralizes the flag plumbing shared by the cmd/ binaries:
// the -trace family (path, capacity, category selection, derived reports),
// the -profile-vt/-ledger observability pair, the deterministic -seed,
// the -procs processor count, the -j sweep parallelism, and the
// -cpuprofile/-memprofile pair. Each binary registers what it needs
// through these helpers so flag names, defaults, and usage strings stay
// consistent across lockbench, tspbench, adaptdemo, figures, and
// benchjson.
package cli

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"

	"repro/internal/core"
	"repro/internal/cthreads"
	"repro/internal/profile"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Trace holds the values of the shared -trace* flags.
type Trace struct {
	// Path is the -trace output file; empty means tracing is off.
	Path string
	// Capacity bounds the event buffer (-trace-capacity).
	Capacity int
	// Engine includes raw engine schedule/fire events (-trace-engine).
	Engine bool
	// Reports prints trace-derived reports after the run (-trace-reports).
	Reports bool
}

// TraceFlags registers the shared tracing flags on fs and returns the
// struct they fill in at Parse time.
func TraceFlags(fs *flag.FlagSet) *Trace {
	tf := &Trace{}
	fs.StringVar(&tf.Path, "trace", "",
		"write a virtual-time event trace to this file (.json = Chrome/Perfetto format, otherwise text)")
	fs.IntVar(&tf.Capacity, "trace-capacity", trace.DefaultCapacity,
		"maximum buffered trace events; events past the cap are dropped and counted")
	fs.BoolVar(&tf.Engine, "trace-engine", false,
		"include raw engine schedule/fire events in the trace (verbose)")
	fs.BoolVar(&tf.Reports, "trace-reports", false,
		"with -trace, also print trace-derived reports (utilization, contention, adaptation lag)")
	return tf
}

// Tracer builds a tracer according to the parsed flags, or returns nil
// when tracing is off — the nil tracer is free on every hot path.
func (tf *Trace) Tracer() *trace.Tracer {
	if tf.Path == "" {
		return nil
	}
	tr := trace.New(tf.Capacity)
	if tf.Engine {
		tr.SetMask(trace.CatAll)
	}
	return tr
}

// Flush writes the collected trace to the configured path — Chrome JSON
// when the path ends in .json, plain text otherwise — and, when
// -trace-reports is set, prints the derived reports to w. A nil tracer or
// empty path is a no-op.
func (tf *Trace) Flush(tr *trace.Tracer, w io.Writer) error {
	if tr == nil || tf.Path == "" {
		return nil
	}
	f, err := os.Create(tf.Path)
	if err != nil {
		return err
	}
	if strings.EqualFold(filepath.Ext(tf.Path), ".json") {
		err = tr.WriteChrome(f)
	} else {
		err = tr.WriteText(f)
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return err
	}
	if tf.Reports && w != nil {
		fmt.Fprintf(w, "\n%s\n%s\n%s",
			trace.RenderUtilization(tr.UtilizationTimeline(60), tr.End()),
			trace.RenderContention(tr.ContentionProfile()),
			trace.RenderLag(tr.AdaptationLag()))
	}
	return nil
}

// Observe holds the values of the shared virtual-time observability
// flags: -profile-vt (the exact attribution profiler of internal/profile)
// and -ledger (the adaptation decision ledger of internal/core). Both
// collectors are shared across every simulation of a run, so binaries
// force serial sweeps while either is enabled.
type Observe struct {
	// ProfilePath is the -profile-vt output file; empty means off.
	ProfilePath string
	// LedgerPath is the -ledger output file; empty means off.
	LedgerPath string

	prof   *profile.Profiler
	ledger *core.Ledger
}

// ObserveFlags registers the shared observability flags on fs and returns
// the struct they fill in at Parse time.
func ObserveFlags(fs *flag.FlagSet) *Observe {
	o := &Observe{}
	fs.StringVar(&o.ProfilePath, "profile-vt", "",
		"write an exact virtual-time attribution profile to this file (.folded = flamegraph collapsed stacks, otherwise a table plus wait/hold histograms); forces serial sweeps")
	fs.StringVar(&o.LedgerPath, "ledger", "",
		"write the adaptation decision ledger to this file (.json = machine-readable, otherwise a \"why did it switch?\" report); forces serial sweeps")
	return o
}

// Enabled reports whether any observability output was requested.
func (o *Observe) Enabled() bool { return o.ProfilePath != "" || o.LedgerPath != "" }

// Profiler lazily builds the shared profiler, or returns nil when
// -profile-vt is off — the nil profiler is free on every hot path.
func (o *Observe) Profiler() *profile.Profiler {
	if o.ProfilePath == "" {
		return nil
	}
	if o.prof == nil {
		o.prof = profile.New()
	}
	return o.prof
}

// Ledger lazily builds the shared decision ledger, or returns nil when
// -ledger is off.
func (o *Observe) Ledger() *core.Ledger {
	if o.LedgerPath == "" {
		return nil
	}
	if o.ledger == nil {
		o.ledger = core.NewLedger(core.DefaultLedgerCapacity)
	}
	return o.ledger
}

// Attach installs the configured observers directly on a system (for
// binaries that build their own simulation; the experiment options
// structs carry Profiler/Ledger fields otherwise).
func (o *Observe) Attach(sys *cthreads.System) {
	sys.SetProfiler(o.Profiler())
	sys.SetLedger(o.Ledger())
}

// Flush writes the collected profile and ledger to their configured
// paths: the profile as folded stacks when the path ends in .folded and
// as a table plus histograms otherwise; the ledger as JSON when the path
// ends in .json and as the decision report otherwise. Disabled outputs
// are no-ops.
func (o *Observe) Flush() error {
	if o.ProfilePath != "" && o.prof != nil {
		f, err := os.Create(o.ProfilePath)
		if err != nil {
			return err
		}
		if strings.EqualFold(filepath.Ext(o.ProfilePath), ".folded") {
			err = o.prof.WriteFolded(f)
		} else {
			err = o.prof.WriteTable(f)
			if err == nil {
				err = o.prof.WriteHistograms(f)
			}
		}
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return err
		}
	}
	if o.LedgerPath != "" && o.ledger != nil {
		f, err := os.Create(o.LedgerPath)
		if err != nil {
			return err
		}
		if strings.EqualFold(filepath.Ext(o.LedgerPath), ".json") {
			err = o.ledger.WriteJSON(f)
		} else {
			err = o.ledger.WriteReport(f)
		}
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// SeedFlag registers the shared deterministic-seed flag.
func SeedFlag(fs *flag.FlagSet, def uint64) *uint64 {
	return fs.Uint64("seed", def, "deterministic simulation seed")
}

// ProcsFlag registers the shared processor-count flag.
func ProcsFlag(fs *flag.FlagSet, def int) *int {
	return fs.Int("procs", def, "simulated processors")
}

// Profile holds the values of the shared -cpuprofile/-memprofile flags,
// so hot-path work on the simulator starts from a profile of the real
// binaries rather than a guess.
type Profile struct {
	// CPU is the -cpuprofile output file; empty disables CPU profiling.
	CPU string
	// Mem is the -memprofile output file; empty disables the heap profile.
	Mem string

	cpuFile *os.File
}

// ProfileFlags registers the shared profiling flags on fs and returns the
// struct they fill in at Parse time.
func ProfileFlags(fs *flag.FlagSet) *Profile {
	p := &Profile{}
	fs.StringVar(&p.CPU, "cpuprofile", "",
		"write a pprof CPU profile of the run to this file")
	fs.StringVar(&p.Mem, "memprofile", "",
		"write a pprof allocation profile to this file at exit")
	return p
}

// Start begins CPU profiling if -cpuprofile was given. Call Stop (usually
// deferred) before exiting; profiles are only written on a run that
// reaches it. With neither flag set, both calls are no-ops.
func (p *Profile) Start() error {
	if p.CPU == "" {
		return nil
	}
	f, err := os.Create(p.CPU)
	if err != nil {
		return err
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		return err
	}
	p.cpuFile = f
	return nil
}

// Stop finishes the CPU profile and writes the allocation profile. It is
// idempotent, so it is safe both deferred and called explicitly.
func (p *Profile) Stop() error {
	if p.cpuFile != nil {
		pprof.StopCPUProfile()
		err := p.cpuFile.Close()
		p.cpuFile = nil
		if err != nil {
			return err
		}
	}
	if p.Mem != "" {
		f, err := os.Create(p.Mem)
		if err != nil {
			return err
		}
		runtime.GC() // flush recently freed objects out of the heap profile
		err = pprof.WriteHeapProfile(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		p.Mem = ""
		return err
	}
	return nil
}

// NoSpinBatchFlag registers the shared escape hatch for the engine's
// contention-epoch spin batching. Pass the parsed value to
// ApplySpinBatch before building any simulation.
func NoSpinBatchFlag(fs *flag.FlagSet) *bool {
	return fs.Bool("no-spin-batch", false,
		"emulate every futile busy-wait probe per-iteration instead of batching them in the engine (slower wall clock; simulated results are identical)")
}

// ApplySpinBatch applies the parsed -no-spin-batch value to the process
// default, so every engine the binary builds honors the flag.
func ApplySpinBatch(noBatch bool) {
	if noBatch {
		sim.SetDefaultBatchedSpins(false)
	}
}

// JobsFlag registers the shared sweep-parallelism flag. Independent
// simulation configurations of one experiment sweep run on up to -j
// OS-level workers; results are collected in input order, so output is
// byte-identical for every -j value. The default uses every available
// core; -j 1 forces the serial path.
func JobsFlag(fs *flag.FlagSet) *int {
	return fs.Int("j", runtime.GOMAXPROCS(0),
		"parallel workers for independent sweep simulations (1 = serial; output is identical for any value)")
}

// ShardsFlag registers the shared shard-count flag for the
// conservative-parallel sharded engine. With -shards N > 1 a big
// simulated machine is partitioned into N contiguous node blocks that
// advance concurrently between lookahead barriers; results are
// byte-identical to -shards 1 for workloads built on the posted
// cross-shard primitives.
func ShardsFlag(fs *flag.FlagSet) *int {
	return fs.Int("shards", 1,
		"partition the simulated machine into this many conservative-parallel shards (1 = serial engine; output is identical for any value)")
}

// ValidateShards rejects flag combinations the sharded engine cannot
// honor. The tracer, virtual-time profiler, and decision ledger all
// record one serial timeline — the same rule that forces experiment
// sweeps serial when observed — so -shards > 1 combined with any of
// them is an error rather than a silently different recording. tf and
// obs may be nil for binaries that lack those flags.
func ValidateShards(shards int, tf *Trace, obs *Observe) error {
	if shards < 1 {
		return fmt.Errorf("-shards must be at least 1, got %d", shards)
	}
	if shards == 1 {
		return nil
	}
	if tf != nil && tf.Path != "" {
		return fmt.Errorf("-shards %d cannot be combined with -trace: the tracer records one serial timeline (run with -shards 1)", shards)
	}
	if obs != nil && obs.Enabled() {
		return fmt.Errorf("-shards %d cannot be combined with -profile-vt/-ledger: observers record one serial timeline (run with -shards 1)", shards)
	}
	return nil
}
