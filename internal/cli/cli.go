// Package cli centralizes the flag plumbing shared by the cmd/ binaries:
// the -trace family (path, capacity, category selection, derived reports),
// the deterministic -seed, the -procs processor count, the -j sweep
// parallelism, and the -cpuprofile/-memprofile pair. Each binary
// registers what it needs through these helpers so flag names, defaults,
// and usage strings stay consistent across lockbench, tspbench, adaptdemo,
// figures, and benchjson.
package cli

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"

	"repro/internal/sim"
	"repro/internal/trace"
)

// Trace holds the values of the shared -trace* flags.
type Trace struct {
	// Path is the -trace output file; empty means tracing is off.
	Path string
	// Capacity bounds the event buffer (-trace-capacity).
	Capacity int
	// Engine includes raw engine schedule/fire events (-trace-engine).
	Engine bool
	// Reports prints trace-derived reports after the run (-trace-reports).
	Reports bool
}

// TraceFlags registers the shared tracing flags on fs and returns the
// struct they fill in at Parse time.
func TraceFlags(fs *flag.FlagSet) *Trace {
	tf := &Trace{}
	fs.StringVar(&tf.Path, "trace", "",
		"write a virtual-time event trace to this file (.json = Chrome/Perfetto format, otherwise text)")
	fs.IntVar(&tf.Capacity, "trace-capacity", trace.DefaultCapacity,
		"maximum buffered trace events; events past the cap are dropped and counted")
	fs.BoolVar(&tf.Engine, "trace-engine", false,
		"include raw engine schedule/fire events in the trace (verbose)")
	fs.BoolVar(&tf.Reports, "trace-reports", false,
		"with -trace, also print trace-derived reports (utilization, contention, adaptation lag)")
	return tf
}

// Tracer builds a tracer according to the parsed flags, or returns nil
// when tracing is off — the nil tracer is free on every hot path.
func (tf *Trace) Tracer() *trace.Tracer {
	if tf.Path == "" {
		return nil
	}
	tr := trace.New(tf.Capacity)
	if tf.Engine {
		tr.SetMask(trace.CatAll)
	}
	return tr
}

// Flush writes the collected trace to the configured path — Chrome JSON
// when the path ends in .json, plain text otherwise — and, when
// -trace-reports is set, prints the derived reports to w. A nil tracer or
// empty path is a no-op.
func (tf *Trace) Flush(tr *trace.Tracer, w io.Writer) error {
	if tr == nil || tf.Path == "" {
		return nil
	}
	f, err := os.Create(tf.Path)
	if err != nil {
		return err
	}
	if strings.EqualFold(filepath.Ext(tf.Path), ".json") {
		err = tr.WriteChrome(f)
	} else {
		err = tr.WriteText(f)
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return err
	}
	if tf.Reports && w != nil {
		fmt.Fprintf(w, "\n%s\n%s\n%s",
			trace.RenderUtilization(tr.UtilizationTimeline(60), tr.End()),
			trace.RenderContention(tr.ContentionProfile()),
			trace.RenderLag(tr.AdaptationLag()))
	}
	return nil
}

// SeedFlag registers the shared deterministic-seed flag.
func SeedFlag(fs *flag.FlagSet, def uint64) *uint64 {
	return fs.Uint64("seed", def, "deterministic simulation seed")
}

// ProcsFlag registers the shared processor-count flag.
func ProcsFlag(fs *flag.FlagSet, def int) *int {
	return fs.Int("procs", def, "simulated processors")
}

// Profile holds the values of the shared -cpuprofile/-memprofile flags,
// so hot-path work on the simulator starts from a profile of the real
// binaries rather than a guess.
type Profile struct {
	// CPU is the -cpuprofile output file; empty disables CPU profiling.
	CPU string
	// Mem is the -memprofile output file; empty disables the heap profile.
	Mem string

	cpuFile *os.File
}

// ProfileFlags registers the shared profiling flags on fs and returns the
// struct they fill in at Parse time.
func ProfileFlags(fs *flag.FlagSet) *Profile {
	p := &Profile{}
	fs.StringVar(&p.CPU, "cpuprofile", "",
		"write a pprof CPU profile of the run to this file")
	fs.StringVar(&p.Mem, "memprofile", "",
		"write a pprof allocation profile to this file at exit")
	return p
}

// Start begins CPU profiling if -cpuprofile was given. Call Stop (usually
// deferred) before exiting; profiles are only written on a run that
// reaches it. With neither flag set, both calls are no-ops.
func (p *Profile) Start() error {
	if p.CPU == "" {
		return nil
	}
	f, err := os.Create(p.CPU)
	if err != nil {
		return err
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		return err
	}
	p.cpuFile = f
	return nil
}

// Stop finishes the CPU profile and writes the allocation profile. It is
// idempotent, so it is safe both deferred and called explicitly.
func (p *Profile) Stop() error {
	if p.cpuFile != nil {
		pprof.StopCPUProfile()
		err := p.cpuFile.Close()
		p.cpuFile = nil
		if err != nil {
			return err
		}
	}
	if p.Mem != "" {
		f, err := os.Create(p.Mem)
		if err != nil {
			return err
		}
		runtime.GC() // flush recently freed objects out of the heap profile
		err = pprof.WriteHeapProfile(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		p.Mem = ""
		return err
	}
	return nil
}

// NoSpinBatchFlag registers the shared escape hatch for the engine's
// contention-epoch spin batching. Pass the parsed value to
// ApplySpinBatch before building any simulation.
func NoSpinBatchFlag(fs *flag.FlagSet) *bool {
	return fs.Bool("no-spin-batch", false,
		"emulate every futile busy-wait probe per-iteration instead of batching them in the engine (slower wall clock; simulated results are identical)")
}

// ApplySpinBatch applies the parsed -no-spin-batch value to the process
// default, so every engine the binary builds honors the flag.
func ApplySpinBatch(noBatch bool) {
	if noBatch {
		sim.SetDefaultBatchedSpins(false)
	}
}

// JobsFlag registers the shared sweep-parallelism flag. Independent
// simulation configurations of one experiment sweep run on up to -j
// OS-level workers; results are collected in input order, so output is
// byte-identical for every -j value. The default uses every available
// core; -j 1 forces the serial path.
func JobsFlag(fs *flag.FlagSet) *int {
	return fs.Int("j", runtime.GOMAXPROCS(0),
		"parallel workers for independent sweep simulations (1 = serial; output is identical for any value)")
}
