package monitor

import (
	"testing"

	"repro/internal/cthreads"
	"repro/internal/sim"
)

func monSys(procs int) *cthreads.System {
	return cthreads.New(sim.Config{
		Nodes:         procs,
		LocalAccess:   10,
		RemoteAccess:  40,
		AtomicExtra:   5,
		Instr:         1,
		ContextSwitch: 100,
		Wakeup:        200,
		Seed:          1,
	})
}

func TestRecordsFlowToSubscriber(t *testing.T) {
	sys := monSys(2)
	m := NewLocal(sys, Config{Node: 1, Poll: 1000})
	var got []Record
	m.Subscribe(func(mt *cthreads.Thread, r Record) { got = append(got, r) })
	m.Start()
	sys.Fork(0, "app", func(th *cthreads.Thread) {
		for i := 0; i < 10; i++ {
			m.Probe(th, 7, int64(i))
			th.Advance(500)
		}
		m.RequestStop()
	})
	if err := sys.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(got) != 10 {
		t.Fatalf("delivered %d records, want 10", len(got))
	}
	for i, r := range got {
		if r.Sensor != 7 || r.Value != int64(i) {
			t.Fatalf("record %d = %+v", i, r)
		}
	}
	if !m.Stopped() {
		t.Fatal("monitor thread did not stop")
	}
}

func TestDeliveryLagIsPositive(t *testing.T) {
	sys := monSys(2)
	m := NewLocal(sys, Config{Node: 1, Poll: 5000})
	m.Subscribe(func(mt *cthreads.Thread, r Record) {})
	m.Start()
	sys.Fork(0, "app", func(th *cthreads.Thread) {
		for i := 0; i < 20; i++ {
			m.Probe(th, 1, int64(i))
			th.Advance(1000)
		}
		m.RequestStop()
	})
	if err := sys.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	st := m.Stats()
	if st.Delivered != 20 {
		t.Fatalf("delivered = %d, want 20", st.Delivered)
	}
	// Records wait for the poll; the mean lag reflects the loose coupling.
	if st.MeanLag <= 0 {
		t.Fatalf("MeanLag = %v, want > 0", st.MeanLag)
	}
}

func TestRingOverflowDrops(t *testing.T) {
	sys := monSys(2)
	m := NewLocal(sys, Config{Node: 1, BufferCap: 4, Poll: sim.Second})
	m.Subscribe(func(mt *cthreads.Thread, r Record) {})
	m.Start()
	sys.Fork(0, "app", func(th *cthreads.Thread) {
		for i := 0; i < 20; i++ {
			m.Probe(th, 1, int64(i)) // far faster than the 1s poll
		}
		m.RequestStop()
	})
	if err := sys.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	st := m.Stats()
	if st.Drops == 0 {
		t.Fatal("no drops despite a tiny ring and a slow poll")
	}
	if st.Records != 20 {
		t.Fatalf("records = %d, want 20", st.Records)
	}
	if st.Drops+st.Delivered != 20 {
		t.Fatalf("drops (%d) + delivered (%d) != 20", st.Drops, st.Delivered)
	}
}

func TestProbeChargesRemoteDelivery(t *testing.T) {
	sys := monSys(2)
	m := NewLocal(sys, Config{Node: 1, Poll: 1000})
	m.Start()
	var cost sim.Time
	sys.Fork(0, "app", func(th *cthreads.Thread) {
		start := th.Now()
		m.Probe(th, 1, 42)
		cost = th.Now() - start
		m.RequestStop()
	})
	if err := sys.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	// Two remote references at 40 each.
	if cost != 80 {
		t.Fatalf("probe cost = %v, want 80", cost)
	}
}

func TestDoubleStartPanics(t *testing.T) {
	sys := monSys(2)
	m := NewLocal(sys, Config{Node: 1})
	m.Start()
	defer func() {
		if recover() == nil {
			t.Fatal("second Start did not panic")
		}
		m.RequestStop()
		_ = sys.Run()
	}()
	m.Start()
}

func TestCentralForwardDelaysDeliveries(t *testing.T) {
	run := func(forward int) sim.Time {
		sys := monSys(2)
		m := NewLocal(sys, Config{Node: 1, Poll: 1000, CentralForwardSteps: forward})
		m.Subscribe(func(mt *cthreads.Thread, r Record) {})
		m.Start()
		sys.Fork(0, "app", func(th *cthreads.Thread) {
			for i := 0; i < 50; i++ {
				m.Probe(th, 1, int64(i))
				th.Advance(500)
			}
			m.RequestStop()
		})
		if err := sys.Run(); err != nil {
			t.Fatalf("Run: %v", err)
		}
		return m.Stats().MeanLag
	}
	without := run(0)
	with := run(5000)
	// Forwarding each batch to the central monitor keeps the monitor
	// thread busy, so records sit in the ring longer — the loosening of
	// the feedback loop §3 warns about.
	if with <= without {
		t.Fatalf("central forwarding did not increase delivery lag: %v vs %v", with, without)
	}
}
