// Package monitor implements the general-purpose thread monitor of
// [GS93] the paper builds its customized lock monitor from (§5.1):
// application threads insert data-collecting sensors and probes; trace
// records flow to a *local monitor* — a monitor thread on a dedicated
// processor — which performs low-level processing and forwards them to a
// central monitor and/or to subscribers such as an adaptation module.
//
// The paper found this pipeline "too loosely coupled to be used in
// adaptive lock objects" and moved sample collection inline into the
// unlocking thread instead. This package exists to make that judgement
// measurable: experiments.CouplingComparison drives the same adaptation
// policy once through the closely-coupled inline monitor and once through
// this pipeline, and reports the decision lag and the performance cost.
//
// The same judgement carries to the asynchronous monitors of
// internal/active: their no-of-concurrent-methods sensor is probed inline
// at Invoke entry, because an exec-mode switch is only worth making while
// the contention burst that justifies it is still in progress — routed
// through this pipeline, the decision would trail the burst by the
// collection period plus the monitor thread's scheduling delay.
package monitor

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/cthreads"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Record is one trace record produced by a probe.
type Record struct {
	// Sensor identifies the instrumentation point.
	Sensor int
	// Value is the sensed value.
	Value int64
	// At is the virtual time of collection.
	At sim.Time
	// ThreadID is the producing thread.
	ThreadID int
}

// Config parameterizes a local monitor.
type Config struct {
	// Node is the dedicated processor/memory node the monitor thread runs
	// on (application threads pay remote references to deliver records).
	Node int
	// BufferCap bounds the trace ring; records arriving at a full ring
	// are dropped and counted ("information overload", §3).
	BufferCap int
	// Poll is the monitor thread's polling period.
	Poll sim.Time
	// PerRecordSteps is the low-level processing charge per record.
	PerRecordSteps int
	// CentralForwardSteps, when > 0, models forwarding each processed
	// batch to a central monitor (possibly on a remote machine).
	CentralForwardSteps int
}

func (c Config) withDefaults() Config {
	if c.BufferCap == 0 {
		c.BufferCap = 256
	}
	if c.Poll == 0 {
		c.Poll = 200 * sim.Microsecond
	}
	if c.PerRecordSteps == 0 {
		c.PerRecordSteps = 40
	}
	return c
}

// Stats summarizes a local monitor's activity.
type Stats struct {
	Records   uint64
	Drops     uint64
	Batches   uint64
	Delivered uint64
	// MeanLag is the average collection-to-delivery delay — the coupling
	// looseness the paper's §3 discusses.
	MeanLag sim.Time
}

// Subscriber receives processed records in the monitor thread's context
// (t is the monitor thread, usable for charged reconfiguration calls).
type Subscriber func(t *cthreads.Thread, r Record)

// Local is a local monitor: a bounded trace ring plus a monitor thread.
type Local struct {
	sys  *cthreads.System
	cfg  Config
	ring []Record

	subs []Subscriber

	records   uint64
	drops     uint64
	batches   uint64
	delivered uint64
	lagSum    sim.Time

	stop    bool
	stopped bool
	thread  *cthreads.Thread

	// ledger, when set, receives one deliver entry per processed record
	// with the pipeline's collection-to-delivery lag.
	ledger *core.Ledger
}

// NewLocal creates a local monitor; Start forks its thread.
func NewLocal(sys *cthreads.System, cfg Config) *Local {
	cfg = cfg.withDefaults()
	if cfg.Node < 0 || cfg.Node >= sys.Procs() {
		panic(fmt.Sprintf("monitor: node %d out of range", cfg.Node))
	}
	return &Local{sys: sys, cfg: cfg}
}

// Subscribe registers a consumer of processed records. Must be called
// before Start.
//
//simlint:allow chargepath -- pre-Start wiring, runs before the simulation clock exists
func (m *Local) Subscribe(s Subscriber) { m.subs = append(m.subs, s) }

// SetLedger attaches (or, with nil, detaches) an adaptation decision
// ledger: each processed record appends one deliver entry carrying the
// pipeline lag, making the loose coupling the paper's §3 discusses
// directly auditable next to the closely-coupled decisions.
//
//simlint:allow chargepath -- pre-Start wiring, runs before the simulation clock exists
func (m *Local) SetLedger(l *core.Ledger) { m.ledger = l }

// Stats returns activity counters.
func (m *Local) Stats() Stats {
	st := Stats{
		Records:   m.records,
		Drops:     m.drops,
		Batches:   m.batches,
		Delivered: m.delivered,
	}
	if m.delivered > 0 {
		st.MeanLag = m.lagSum / sim.Time(m.delivered)
	}
	return st
}

// Probe is called by application threads at instrumentation points: it
// delivers one trace record to the local monitor's ring, paying two
// references to the monitor's node (the record write and the ring index
// update). A full ring drops the record.
func (m *Local) Probe(t *cthreads.Thread, sensor int, value int64) {
	rec := Record{Sensor: sensor, Value: value, At: t.Now(), ThreadID: t.ID()}
	t.Advance(2 * m.sys.Machine().AccessCost(t.Node(), m.cfg.Node))
	m.records++
	if tr := m.sys.Tracer(); tr != nil {
		tr.Emit(trace.Event{At: rec.At, Kind: trace.KindMonitorRecord,
			Proc: int32(t.Node()), Thread: int32(t.ID()),
			Name: "monitor", A: rec.Value, B: int64(rec.Sensor)})
	}
	if len(m.ring) >= m.cfg.BufferCap {
		m.drops++
		return
	}
	m.ring = append(m.ring, rec)
}

// RequestStop asks the monitor thread to exit once the ring drains. Safe
// to call from any context (it is bookkeeping, not simulated state).
//
//simlint:allow chargepath -- stop flag is harness bookkeeping, not simulated state
func (m *Local) RequestStop() { m.stop = true }

// Stopped reports whether the monitor thread has exited.
func (m *Local) Stopped() bool { return m.stopped }

// Start forks the monitor thread on its dedicated processor: it polls the
// ring, charges per-record processing, forwards to the central monitor if
// configured, and delivers each record to the subscribers.
//
//simlint:allow chargepath -- Fork bootstraps the thread that will do the charging
func (m *Local) Start() *cthreads.Thread {
	if m.thread != nil {
		panic("monitor: Start called twice")
	}
	m.thread = m.sys.Fork(m.cfg.Node, "monitor", func(t *cthreads.Thread) {
		for {
			if len(m.ring) == 0 {
				if m.stop {
					break
				}
				t.Advance(m.cfg.Poll)
				continue
			}
			batch := m.ring
			m.ring = nil
			m.batches++
			for _, rec := range batch {
				t.Compute(m.cfg.PerRecordSteps)
				m.delivered++
				m.lagSum += t.Now() - rec.At
				if m.ledger != nil { // guard: the Entry assembly below allocates
					m.ledger.Append(core.Entry{At: int64(t.Now()), Object: "monitor",
						Kind: core.EntryDeliver, Sensor: fmt.Sprintf("sensor-%d", rec.Sensor),
						Value: rec.Value, Lag: int64(t.Now() - rec.At)})
				}
				if tr := m.sys.Tracer(); tr != nil {
					tr.Emit(trace.Event{At: t.Now(), Kind: trace.KindMonitorDeliver,
						Proc: int32(t.Node()), Thread: int32(t.ID()),
						Name: "monitor", A: int64(rec.At), B: rec.Value})
				}
				for _, s := range m.subs {
					s(t, rec)
				}
			}
			if m.cfg.CentralForwardSteps > 0 {
				t.Compute(m.cfg.CentralForwardSteps)
			}
			t.Advance(m.cfg.Poll)
		}
		m.stopped = true
	})
	return m.thread
}
