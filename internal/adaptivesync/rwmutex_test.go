package adaptivesync

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestRWReadersShareWritersExclude(t *testing.T) {
	m := NewRW(nil)
	var readers, maxReaders, writers atomic.Int32
	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 400; i++ {
				m.RLock()
				r := readers.Add(1)
				for {
					old := maxReaders.Load()
					if r <= old || maxReaders.CompareAndSwap(old, r) {
						break
					}
				}
				if writers.Load() != 0 {
					t.Error("reader inside while writer holds")
				}
				runtime.Gosched() // dwell so readers demonstrably overlap
				readers.Add(-1)
				m.RUnlock()
			}
		}()
	}
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				m.Lock()
				if writers.Add(1) != 1 {
					t.Error("two writers inside")
				}
				if readers.Load() != 0 {
					t.Error("writer inside with readers present")
				}
				time.Sleep(10 * time.Microsecond)
				writers.Add(-1)
				m.Unlock()
			}
		}()
	}
	wg.Wait()
	if maxReaders.Load() < 2 {
		t.Errorf("max concurrent readers = %d; reader sharing never happened", maxReaders.Load())
	}
}

func TestRWWriterCounterExactness(t *testing.T) {
	m := NewRW(nil)
	counter := 0
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				m.Lock()
				counter++
				m.Unlock()
			}
		}()
	}
	wg.Wait()
	if counter != 4000 {
		t.Fatalf("counter = %d, want 4000", counter)
	}
}

func TestRWMisusePanics(t *testing.T) {
	m := NewRW(nil)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("RUnlock without RLock did not panic")
			}
		}()
		m.RUnlock()
	}()
	m2 := NewRW(nil)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Unlock without Lock did not panic")
			}
		}()
		m2.Unlock()
	}()
}

func TestRWAdaptsSpinUnderWriteQuiet(t *testing.T) {
	m := NewRW(nil)
	for i := 0; i < 64; i++ {
		m.Lock()
		m.Unlock()
	}
	if got := m.SpinTime(); got != DefaultMaxSpin {
		t.Fatalf("uncontended RW spin-time = %d, want MaxSpin %d", got, DefaultMaxSpin)
	}
}
