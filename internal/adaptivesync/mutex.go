// Package adaptivesync instantiates the paper's adaptive-object model on
// real Go concurrency: a mutual-exclusion lock whose waiting policy —
// how many times a contender spins before parking — is retuned at run time
// by the paper's simple adaptation policy from a built-in monitor of the
// waiter count, sampled on every other unlock (§4, §5).
//
// It is the "closely-coupled adaptation in other operating system
// components" direction of the paper's §7, demonstrated outside the
// simulator. Note the caveat from this reproduction's calibration: the Go
// runtime scheduler multiplexes goroutines over OS threads, so "spinning"
// here does not pin a processor the way it does on the simulated machine —
// the adaptation still tracks contention, but the quantitative trade-off
// belongs to the simulator experiments.
package adaptivesync

import (
	"sync"
	"sync/atomic"

	"repro/internal/core"
)

// Sensor and attribute names of the mutex's adaptive object.
const (
	AttrSpin      = "spin-time"
	SensorWaiting = "no-of-waiting-threads"
)

// DefaultMaxSpin caps the spin attribute (the pure-spin configuration).
const DefaultMaxSpin = 256

// Mutex is an adaptive mutual-exclusion lock: contenders spin up to the
// current spin-time attribute, then park. The zero value is NOT ready to
// use; call New.
type Mutex struct {
	state   atomic.Int32 // 0 free, 1 held
	waiters atomic.Int32
	unlocks atomic.Uint64

	// sema is a buffered token channel acting as the parking lot: Unlock
	// deposits one token per wakeup; parked waiters consume them.
	sema chan struct{}

	// obj is the adaptive object: spin attribute + monitor + policy. Its
	// structures are not thread-safe, so they are consulted through
	// atomic mirrors (spin) and mutated only under adaptMu.
	obj     *core.Object
	spin    atomic.Int64
	adaptMu sync.Mutex

	stats Stats
}

// Stats counts mutex activity (approximate under concurrency: counters
// are atomic but not mutually consistent).
type Stats struct {
	Acquisitions uint64
	Parks        uint64
	Samples      uint64
}

// New builds an adaptive mutex with the given policy; nil installs the
// paper's SimpleAdapt with defaults scaled for spinning goroutines.
func New(policy core.Policy) *Mutex {
	m := &Mutex{sema: make(chan struct{}, 1<<20)}
	m.obj = core.NewObject("adaptivesync.Mutex")
	m.obj.Attrs.Define(AttrSpin, 32, true)
	m.spin.Store(32)
	m.obj.Monitor.AddSensor(SensorWaiting, 2, func() int64 {
		return int64(m.waiters.Load())
	})
	if policy == nil {
		policy = core.SimpleAdapt{
			SpinAttr:         AttrSpin,
			WaitingThreshold: 2,
			Step:             16,
			MaxSpin:          DefaultMaxSpin,
		}
	}
	m.obj.SetPolicy(policy)
	return m
}

// Object exposes the underlying adaptive object for inspection (the
// returned structure must only be mutated while the program is otherwise
// quiescent).
func (m *Mutex) Object() *core.Object { return m.obj }

// SpinTime reports the current spin attribute.
func (m *Mutex) SpinTime() int64 { return m.spin.Load() }

// StatsSnapshot returns current counters.
func (m *Mutex) StatsSnapshot() Stats {
	return Stats{
		Acquisitions: atomic.LoadUint64(&m.stats.Acquisitions),
		Parks:        atomic.LoadUint64(&m.stats.Parks),
		Samples:      atomic.LoadUint64(&m.stats.Samples),
	}
}

// Lock acquires the mutex: spin up to the current spin-time, then park
// until Unlock deposits a wakeup token, re-contending after each wakeup
// (barging is allowed, as in the simulator's combined locks).
func (m *Mutex) Lock() {
	if m.state.CompareAndSwap(0, 1) {
		atomic.AddUint64(&m.stats.Acquisitions, 1)
		return
	}
	spin := m.spin.Load()
	for {
		for i := int64(0); i < spin; i++ {
			if m.state.CompareAndSwap(0, 1) {
				atomic.AddUint64(&m.stats.Acquisitions, 1)
				return
			}
		}
		// Out of spins: register and park. Re-test after registering so a
		// release that missed our registration cannot strand us.
		m.waiters.Add(1)
		if m.state.CompareAndSwap(0, 1) {
			m.waiters.Add(-1)
			atomic.AddUint64(&m.stats.Acquisitions, 1)
			return
		}
		atomic.AddUint64(&m.stats.Parks, 1)
		<-m.sema
		m.waiters.Add(-1)
		spin = m.spin.Load()
	}
}

// TryLock acquires the mutex without waiting; it reports success.
func (m *Mutex) TryLock() bool {
	if m.state.CompareAndSwap(0, 1) {
		atomic.AddUint64(&m.stats.Acquisitions, 1)
		return true
	}
	return false
}

// Unlock releases the mutex, wakes one parked waiter if any, and probes
// the built-in monitor (every other unlock), feeding the adaptation
// policy. Unlocking a free mutex panics.
func (m *Mutex) Unlock() {
	if !m.state.CompareAndSwap(1, 0) {
		panic("adaptivesync: Unlock of unlocked Mutex")
	}
	if m.waiters.Load() > 0 {
		select {
		case m.sema <- struct{}{}:
		default:
		}
	}
	// The customized monitor: collected inline by the unlocking
	// goroutine, closely coupled with the policy. The sensor's sampling
	// rate (every other probe) throttles the actual sampling.
	m.unlocks.Add(1)
	m.adaptMu.Lock()
	if _, ok := m.obj.Monitor.Probe(SensorWaiting); ok {
		atomic.AddUint64(&m.stats.Samples, 1)
		m.spin.Store(m.obj.Attrs.MustGet(AttrSpin))
	}
	m.adaptMu.Unlock()
}
