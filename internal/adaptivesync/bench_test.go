package adaptivesync

import (
	"sync"
	"testing"
)

// BenchmarkMutexUncontended measures the adaptive mutex fast path.
func BenchmarkMutexUncontended(b *testing.B) {
	m := New(nil)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m.Lock()
		m.Unlock()
	}
}

// BenchmarkSyncMutexUncontended is the sync.Mutex baseline for the above.
func BenchmarkSyncMutexUncontended(b *testing.B) {
	var m sync.Mutex
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m.Lock()
		m.Unlock()
	}
}

// BenchmarkMutexContended measures the adaptive mutex under GOMAXPROCS-way
// contention; the adaptation settles wherever the policy steers it.
func BenchmarkMutexContended(b *testing.B) {
	m := New(nil)
	counter := 0
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			m.Lock()
			counter++
			m.Unlock()
		}
	})
	_ = counter
}

// BenchmarkSyncMutexContended is the sync.Mutex baseline for the above.
func BenchmarkSyncMutexContended(b *testing.B) {
	var m sync.Mutex
	counter := 0
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			m.Lock()
			counter++
			m.Unlock()
		}
	})
	_ = counter
}
