package adaptivesync

import (
	"runtime"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/core"
)

func TestMutualExclusionStress(t *testing.T) {
	m := New(nil)
	const goroutines = 8
	const iters = 2000
	counter := 0
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				m.Lock()
				counter++
				m.Unlock()
			}
		}()
	}
	wg.Wait()
	if counter != goroutines*iters {
		t.Fatalf("counter = %d, want %d (lost updates)", counter, goroutines*iters)
	}
	st := m.StatsSnapshot()
	if st.Acquisitions != goroutines*iters {
		t.Fatalf("acquisitions = %d, want %d", st.Acquisitions, goroutines*iters)
	}
}

func TestMutexCriticalSectionOverlap(t *testing.T) {
	m := New(nil)
	inside := make(chan struct{}, 1)
	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				m.Lock()
				select {
				case inside <- struct{}{}:
				default:
					t.Error("two goroutines inside the critical section")
				}
				runtime.Gosched()
				<-inside
				m.Unlock()
			}
		}()
	}
	wg.Wait()
}

func TestTryLock(t *testing.T) {
	m := New(nil)
	if !m.TryLock() {
		t.Fatal("TryLock on free mutex failed")
	}
	if m.TryLock() {
		t.Fatal("TryLock on held mutex succeeded")
	}
	m.Unlock()
	if !m.TryLock() {
		t.Fatal("TryLock after Unlock failed")
	}
	m.Unlock()
}

func TestUnlockOfFreeMutexPanics(t *testing.T) {
	m := New(nil)
	defer func() {
		if recover() == nil {
			t.Fatal("Unlock of free mutex did not panic")
		}
	}()
	m.Unlock()
}

func TestUncontendedAdaptsToPureSpin(t *testing.T) {
	m := New(nil)
	for i := 0; i < 64; i++ {
		m.Lock()
		m.Unlock()
	}
	if got := m.SpinTime(); got != DefaultMaxSpin {
		t.Fatalf("uncontended spin-time = %d, want MaxSpin %d", got, DefaultMaxSpin)
	}
	if m.StatsSnapshot().Samples == 0 {
		t.Fatal("monitor never sampled")
	}
}

func TestOverloadAdaptsTowardBlocking(t *testing.T) {
	// A policy with threshold 0 is impossible (waiting==0 means pure
	// spin), so use threshold 1 and force ≥ 2 steady waiters.
	m := New(core.SimpleAdapt{SpinAttr: AttrSpin, WaitingThreshold: 1, Step: 8, MaxSpin: DefaultMaxSpin})

	// Observe the adaptation directly instead of polling SpinTime on the
	// wall clock: the monitor applies decisions through Object.Apply, so
	// the hook fires the moment spin-time first reaches 0. Registered
	// before any contention starts so the transition cannot be missed.
	reachedZero := make(chan struct{})
	var once sync.Once
	m.Object().OnApply(func(d core.Decision, _ core.OwnerID, err error) {
		if err == nil && d.Attr == AttrSpin && d.Value == 0 {
			once.Do(func() { close(reachedZero) })
		}
	})

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				m.Lock()
				time.Sleep(200 * time.Microsecond) // long critical section
				m.Unlock()
			}
		}()
	}
	sawZero := true
	select {
	case <-reachedZero:
	case <-time.After(30 * time.Second): // hard timeout: fail, don't hang
		sawZero = false
	}
	close(stop)
	wg.Wait()
	// Under sustained overload the policy reaches pure blocking; once the
	// load drains, later samples see no waiters and swing back toward
	// pure spin — that phase tracking is the point, so only the overload
	// phase is asserted.
	if !sawZero {
		t.Fatalf("overloaded spin-time never reached 0 (now %d)", m.SpinTime())
	}
	if m.StatsSnapshot().Parks == 0 {
		t.Fatal("no goroutine ever parked under overload")
	}
}

func TestParkedWaitersAlwaysWake(t *testing.T) {
	// Pure-blocking configuration: every contender parks; all must finish.
	m := New(core.SimpleAdapt{SpinAttr: AttrSpin, WaitingThreshold: 1, Step: 1, MaxSpin: 1})
	m.Object().Attrs.Set(AttrSpin, 0, core.OwnerSelf)
	var wg sync.WaitGroup
	done := make(chan struct{})
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 300; i++ {
				m.Lock()
				m.Unlock()
			}
		}()
	}
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("goroutines stuck: lost wakeup")
	}
}

// Property: for any small mix of goroutines and iterations the counter is
// exact and spin-time stays within [0, MaxSpin].
func TestMutexQuickProperty(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	f := func(gRaw, iRaw uint8) bool {
		goroutines := int(gRaw%6) + 2
		iters := int(iRaw%200) + 50
		m := New(nil)
		counter := 0
		var wg sync.WaitGroup
		for g := 0; g < goroutines; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < iters; i++ {
					m.Lock()
					counter++
					m.Unlock()
				}
			}()
		}
		wg.Wait()
		spin := m.SpinTime()
		return counter == goroutines*iters && spin >= 0 && spin <= DefaultMaxSpin
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
