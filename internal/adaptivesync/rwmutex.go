package adaptivesync

import (
	"sync"
	"sync/atomic"

	"repro/internal/core"
)

// RWMutex is a reader-writer lock whose *read-path* waiting policy adapts:
// readers blocked by a writer spin up to the spin-time attribute before
// parking, retuned by the same monitor/policy structure as Mutex. Writers
// always queue through an internal mutex (writes are assumed rare; the
// adaptive question is how readers should wait out a writer).
//
// It is a second real-concurrency instantiation of the paper's model,
// showing the adaptive-object parts compose onto a different lock
// protocol without modification.
type RWMutex struct {
	// state counts readers (≥ 0) or marks a writer (-1).
	state   atomic.Int32
	waiters atomic.Int32
	sema    chan struct{}
	wmu     sync.Mutex // serializes writers

	obj     *core.Object
	spin    atomic.Int64
	adaptMu sync.Mutex
}

// NewRW builds an adaptive reader-writer lock; nil installs the default
// SimpleAdapt policy on the reader spin attribute.
func NewRW(policy core.Policy) *RWMutex {
	m := &RWMutex{sema: make(chan struct{}, 1<<20)}
	m.obj = core.NewObject("adaptivesync.RWMutex")
	m.obj.Attrs.Define(AttrSpin, 32, true)
	m.spin.Store(32)
	m.obj.Monitor.AddSensor(SensorWaiting, 2, func() int64 {
		return int64(m.waiters.Load())
	})
	if policy == nil {
		policy = core.SimpleAdapt{
			SpinAttr:         AttrSpin,
			WaitingThreshold: 2,
			Step:             16,
			MaxSpin:          DefaultMaxSpin,
		}
	}
	m.obj.SetPolicy(policy)
	return m
}

// Object exposes the underlying adaptive object.
func (m *RWMutex) Object() *core.Object { return m.obj }

// SpinTime reports the current reader spin attribute.
func (m *RWMutex) SpinTime() int64 { return m.spin.Load() }

// RLock acquires the lock for reading: spin up to spin-time attempts
// while a writer holds it, then park.
func (m *RWMutex) RLock() {
	if m.tryRead() {
		return
	}
	spin := m.spin.Load()
	for {
		for i := int64(0); i < spin; i++ {
			if m.tryRead() {
				return
			}
		}
		m.waiters.Add(1)
		if m.tryRead() {
			m.waiters.Add(-1)
			return
		}
		<-m.sema
		m.waiters.Add(-1)
		spin = m.spin.Load()
	}
}

// tryRead increments the reader count unless a writer holds the lock.
func (m *RWMutex) tryRead() bool {
	for {
		s := m.state.Load()
		if s < 0 {
			return false
		}
		if m.state.CompareAndSwap(s, s+1) {
			return true
		}
	}
}

// RUnlock releases a read acquisition and wakes waiters (a writer may be
// parked behind the readers).
func (m *RWMutex) RUnlock() {
	if s := m.state.Add(-1); s < 0 {
		panic("adaptivesync: RUnlock without RLock")
	}
	m.wakeOne()
}

// Lock acquires the lock for writing: writers serialize on wmu, then spin
// briefly and park until the reader count drains.
func (m *RWMutex) Lock() {
	m.wmu.Lock()
	spin := m.spin.Load()
	for {
		for i := int64(0); i < spin+1; i++ {
			if m.state.CompareAndSwap(0, -1) {
				return
			}
		}
		m.waiters.Add(1)
		if m.state.CompareAndSwap(0, -1) {
			m.waiters.Add(-1)
			return
		}
		<-m.sema
		m.waiters.Add(-1)
		spin = m.spin.Load()
	}
}

// Unlock releases a write acquisition, wakes waiters, and probes the
// monitor (the write path is the low-frequency point where sampling the
// waiter count is cheap).
func (m *RWMutex) Unlock() {
	if !m.state.CompareAndSwap(-1, 0) {
		panic("adaptivesync: Unlock of RWMutex not held for writing")
	}
	// Wake every waiter: after a writer, all blocked readers may proceed.
	for i := m.waiters.Load(); i > 0; i-- {
		m.wakeOne()
	}
	m.wmu.Unlock()

	m.adaptMu.Lock()
	if _, ok := m.obj.Monitor.Probe(SensorWaiting); ok {
		m.spin.Store(m.obj.Attrs.MustGet(AttrSpin))
	}
	m.adaptMu.Unlock()
}

// wakeOne deposits one wakeup token if anyone is parked.
func (m *RWMutex) wakeOne() {
	if m.waiters.Load() > 0 {
		select {
		case m.sema <- struct{}{}:
		default:
		}
	}
}
