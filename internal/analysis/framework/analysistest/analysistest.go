// Package analysistest runs framework analyzers over fixture packages
// under a testdata/src tree and checks the resulting diagnostics
// against // want expectations, mirroring the x/tools analysistest
// surface at the scale simlint needs. Fixture imports resolve from the
// same tree, so fixtures carry their own stdlib stubs (testdata/src/time,
// sync, sort, math/rand) and the tests run fully offline.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"repro/internal/analysis/framework"
)

// Run loads testdata/src/<pkgpath>, applies the analyzers through
// framework.RunAnalyzers (so //simlint:allow directives behave exactly
// as in production), and compares the surviving diagnostics with the
// fixture's // want expectations.
//
// An expectation is one or more quoted or backquoted regular
// expressions following "// want" in any comment; it matches a
// diagnostic reported on the same line:
//
//	_ = time.Now() // want `time.Now in simulated package`
//
// Every diagnostic must be matched by an expectation and every
// expectation must match exactly one diagnostic.
func Run(t *testing.T, testdata, pkgpath string, analyzers ...*framework.Analyzer) {
	t.Helper()
	root := filepath.Join(testdata, "src")
	dir := filepath.Join(root, pkgpath)
	files, err := fixtureFiles(dir, true)
	if err != nil {
		t.Fatalf("%s: %v", pkgpath, err)
	}

	fset := token.NewFileSet()
	imp := &srcImporter{fset: fset, root: root, pkgs: make(map[string]*types.Package)}
	pkg, err := framework.Check(fset, pkgpath, dir, files, imp)
	if err != nil {
		t.Fatalf("%s: %v", pkgpath, err)
	}

	diags, err := framework.RunAnalyzers(pkg, analyzers)
	if err != nil {
		t.Fatalf("%s: %v", pkgpath, err)
	}

	wants := parseWants(t, fset, pkg.Files)
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		matched := false
		for i := range wants {
			w := &wants[i]
			if !w.used && w.file == pos.Filename && w.line == pos.Line && w.re.MatchString(d.Message) {
				w.used = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic: %s (%s)", pos, d.Message, d.Analyzer)
		}
	}
	for _, w := range wants {
		if !w.used {
			t.Errorf("%s:%d: no diagnostic matched %q", w.file, w.line, w.re)
		}
	}
}

// Load type-checks testdata/src/<pkgpath> exactly as Run does, without
// applying analyzers — for tests that drive framework entry points
// (framework.AuditAllows, framework.RunAnalyzers) directly.
func Load(t *testing.T, testdata, pkgpath string) *framework.Package {
	t.Helper()
	root := filepath.Join(testdata, "src")
	dir := filepath.Join(root, pkgpath)
	files, err := fixtureFiles(dir, true)
	if err != nil {
		t.Fatalf("%s: %v", pkgpath, err)
	}
	fset := token.NewFileSet()
	imp := &srcImporter{fset: fset, root: root, pkgs: make(map[string]*types.Package)}
	pkg, err := framework.Check(fset, pkgpath, dir, files, imp)
	if err != nil {
		t.Fatalf("%s: %v", pkgpath, err)
	}
	return pkg
}

// want is one expectation: a regexp that must match a diagnostic
// message reported at file:line.
type want struct {
	file string
	line int
	re   *regexp.Regexp
	used bool
}

// parseWants extracts every // want expectation from the files.
func parseWants(t *testing.T, fset *token.FileSet, files []*ast.File) []want {
	t.Helper()
	const marker = "// want "
	var wants []want
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				idx := strings.Index(c.Text, marker)
				if idx < 0 {
					continue
				}
				pos := fset.Position(c.Pos())
				spec := strings.TrimSpace(c.Text[idx+len(marker):])
				if spec == "" || (spec[0] != '"' && spec[0] != '`') {
					continue // prose that merely mentions "want"
				}
				for spec != "" {
					q, err := strconv.QuotedPrefix(spec)
					if err != nil {
						t.Fatalf("%s: malformed // want expectation %q: %v", pos, spec, err)
					}
					s, err := strconv.Unquote(q)
					if err != nil {
						t.Fatalf("%s: malformed // want string %q: %v", pos, q, err)
					}
					re, err := regexp.Compile(s)
					if err != nil {
						t.Fatalf("%s: bad // want regexp %q: %v", pos, s, err)
					}
					wants = append(wants, want{file: pos.Filename, line: pos.Line, re: re})
					spec = strings.TrimSpace(spec[len(q):])
				}
			}
		}
	}
	return wants
}

// fixtureFiles lists the .go files of a fixture directory, sorted for
// determinism. Test files are included only for the target package
// (the analyzers' test-file exemption is itself under test).
func fixtureFiles(dir string, includeTests bool) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") {
			continue
		}
		if !includeTests && strings.HasSuffix(name, "_test.go") {
			continue
		}
		files = append(files, name)
	}
	sort.Strings(files)
	if len(files) == 0 {
		return nil, fmt.Errorf("no fixture files in %s", dir)
	}
	return files, nil
}

// srcImporter resolves fixture imports from source under root, so a
// fixture import of "time" or "virtualtime/cthreads" loads the stub
// package at that path in the testdata tree.
type srcImporter struct {
	fset *token.FileSet
	root string
	pkgs map[string]*types.Package
}

func (si *srcImporter) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if p, ok := si.pkgs[path]; ok {
		return p, nil
	}
	dir := filepath.Join(si.root, path)
	files, err := fixtureFiles(dir, false)
	if err != nil {
		return nil, fmt.Errorf("import %q: %v", path, err)
	}
	pkg, err := framework.Check(si.fset, path, dir, files, si)
	if err != nil {
		return nil, err
	}
	si.pkgs[path] = pkg.Types
	return pkg.Types, nil
}
