package framework

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"strings"
)

// listPackage is the subset of `go list -json` output the loader reads.
type listPackage struct {
	ImportPath string
	Dir        string
	Name       string
	GoFiles    []string
	CgoFiles   []string
	Export     string
	Standard   bool
	DepOnly    bool
	ImportMap  map[string]string
	Incomplete bool
	Error      *struct{ Err string }
}

// Load runs `go list -deps -export -json patterns...` in dir and
// type-checks every matched (non-dependency) package from source,
// resolving imports through the compiler export data go list produces.
// It needs the go command but no network: export data is built from the
// local module and the local toolchain's standard library.
func Load(dir string, patterns ...string) ([]*Package, error) {
	args := append([]string{"list", "-deps", "-export", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var out, errb bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &errb
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list: %v\n%s", err, errb.String())
	}

	exports := make(map[string]string)
	var targets []*listPackage
	dec := json.NewDecoder(&out)
	for {
		var p listPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list output: %v", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("go list: %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly {
			q := p
			targets = append(targets, &q)
		}
	}

	fset := token.NewFileSet()
	base := newExportImporter(fset, exports)
	var pkgs []*Package
	for _, t := range targets {
		if len(t.CgoFiles) > 0 {
			// No cgo in this module; refuse rather than mis-typecheck.
			return nil, fmt.Errorf("%s: cgo packages are not supported by simlint", t.ImportPath)
		}
		pkg, err := Check(fset, t.ImportPath, t.Dir, t.GoFiles, &mappedImporter{base: base, m: t.ImportMap})
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// Check parses files (absolute paths, or relative to dir) and
// type-checks them as one package with the given importer, returning a
// Package ready for RunAnalyzers.
func Check(fset *token.FileSet, path, dir string, files []string, imp types.Importer) (*Package, error) {
	var asts []*ast.File
	for _, name := range files {
		fn := name
		if !strings.HasPrefix(fn, "/") && dir != "" {
			fn = dir + "/" + fn
		}
		f, err := parser.ParseFile(fset, fn, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		asts = append(asts, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(path, fset, asts, info)
	if err != nil {
		return nil, fmt.Errorf("typecheck %s: %v", path, err)
	}
	return &Package{Path: path, Fset: fset, Files: asts, Types: tpkg, Info: info}, nil
}

// NewImporter returns an importer that resolves packages from compiler
// export data files (canonical import path → file), applying the
// source-import → canonical-path map first. Either map may be nil.
func NewImporter(fset *token.FileSet, exports, importMap map[string]string) types.Importer {
	return &mappedImporter{base: newExportImporter(fset, exports), m: importMap}
}

// newExportImporter returns an importer that resolves packages from the
// compiler export data files in exports (import path → file).
func newExportImporter(fset *token.FileSet, exports map[string]string) types.ImporterFrom {
	lookup := func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	return importer.ForCompiler(fset, "gc", lookup).(types.ImporterFrom)
}

// mappedImporter applies a package's go list ImportMap (source import
// path → canonical path) before delegating; identity entries are
// omitted by go list, so a miss means the path is already canonical.
type mappedImporter struct {
	base types.ImporterFrom
	m    map[string]string
}

func (mi *mappedImporter) Import(path string) (*types.Package, error) {
	return mi.ImportFrom(path, "", 0)
}

func (mi *mappedImporter) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if mapped, ok := mi.m[path]; ok {
		path = mapped
	}
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	return mi.base.ImportFrom(path, dir, mode)
}
