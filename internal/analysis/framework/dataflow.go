package framework

// Forward-dataflow engine over a CFG: facts flow from Entry along edges,
// joined at merge points, iterated to a fixpoint over loops. The engine
// is generic over the fact representation; termination is the client's
// obligation (a finite lattice with a monotone transfer and join — the
// simlint analyzers use clamped per-key intervals, bounded pair sets,
// and key sets drawn from the function under analysis).

// Fact is one dataflow fact. nil means "unreachable / no information":
// the engine never calls Transfer with a nil in-fact, and blocks with no
// reachable predecessor (dead code after a return) keep a nil fact.
type Fact any

// FlowProblem describes one forward dataflow analysis.
type FlowProblem struct {
	// Entry is the fact at function entry. Must be non-nil.
	Entry Fact
	// Transfer computes a block's out-fact from its in-fact. It must not
	// mutate in; return a fresh fact (or in itself when nothing changed).
	Transfer func(b *Block, in Fact) Fact
	// Join merges two non-nil facts at a control-flow merge.
	Join func(a, b Fact) Fact
	// Equal reports whether two non-nil facts carry the same information
	// (the fixpoint test).
	Equal func(a, b Fact) bool
}

// FlowResult holds the fixpoint solution.
type FlowResult struct {
	// In and Out map each block index to its fact; nil for unreachable
	// blocks.
	In, Out []Fact
	cfg     *CFG
	p       *FlowProblem
}

// Solve runs p over c to fixpoint and returns per-block facts. Blocks
// are processed in index order each round, so the result is
// deterministic for a given graph.
func Solve(c *CFG, p *FlowProblem) *FlowResult {
	n := len(c.Blocks)
	res := &FlowResult{In: make([]Fact, n), Out: make([]Fact, n), cfg: c, p: p}

	preds := make([][]int, n)
	for _, b := range c.Blocks {
		for _, s := range b.Succs {
			preds[s.Index] = append(preds[s.Index], b.Index)
		}
	}

	for changed := true; changed; {
		changed = false
		for _, b := range c.Blocks {
			var in Fact
			if b == c.Entry {
				in = p.Entry
			}
			for _, pi := range preds[b.Index] {
				if o := res.Out[pi]; o != nil {
					if in == nil {
						in = o
					} else {
						in = p.Join(in, o)
					}
				}
			}
			if in == nil {
				continue // unreachable
			}
			res.In[b.Index] = in
			out := p.Transfer(b, in)
			if prev := res.Out[b.Index]; prev == nil || !p.Equal(prev, out) {
				res.Out[b.Index] = out
				changed = true
			}
		}
	}
	return res
}

// ExitFact returns the join over every normal exit path (the in-fact of
// the Exit block), or nil when no path reaches a normal exit (e.g. the
// function always panics or loops forever).
func (r *FlowResult) ExitFact() Fact {
	return r.In[r.cfg.Exit.Index]
}
