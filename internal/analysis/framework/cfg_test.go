package framework

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

// The CFG tests drive BuildCFG + Solve through a miniature balance
// analysis: calls named push()/pop() count ±1, and the exit fact is the
// joined interval of possible net counts over every normal exit path.
// That exercises exactly what the simlint analyzers need from the
// framework — merge joins, loop fixpoints, panic/return/goto edges —
// without depending on type information.

func parseBody(t *testing.T, body string) *ast.BlockStmt {
	t.Helper()
	src := "package p\nfunc f() {\n" + body + "\n}\n"
	f, err := parser.ParseFile(token.NewFileSet(), "f.go", src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return f.Decls[0].(*ast.FuncDecl).Body
}

type interval struct{ lo, hi int }

func clampTest(v int) int {
	if v > 8 {
		return 8
	}
	if v < -8 {
		return -8
	}
	return v
}

// exitInterval builds the CFG of body and returns the exit interval of
// the push/pop balance; ok is false when no path reaches a normal exit.
func exitInterval(t *testing.T, body string, opts CFGOptions) (interval, bool) {
	t.Helper()
	cfg := BuildCFG(parseBody(t, body), opts)
	res := Solve(cfg, &FlowProblem{
		Entry: interval{},
		Transfer: func(b *Block, in Fact) Fact {
			iv := in.(interval)
			for _, n := range b.Nodes {
				ast.Inspect(n, func(m ast.Node) bool {
					if _, ok := m.(*ast.FuncLit); ok {
						return false
					}
					call, ok := m.(*ast.CallExpr)
					if !ok {
						return true
					}
					if id, ok := call.Fun.(*ast.Ident); ok {
						switch id.Name {
						case "push":
							iv = interval{clampTest(iv.lo + 1), clampTest(iv.hi + 1)}
						case "pop":
							iv = interval{clampTest(iv.lo - 1), clampTest(iv.hi - 1)}
						}
					}
					return true
				})
			}
			return iv
		},
		Join: func(a, b Fact) Fact {
			x, y := a.(interval), b.(interval)
			return interval{min(x.lo, y.lo), max(x.hi, y.hi)}
		},
		Equal: func(a, b Fact) bool { return a == b },
	})
	out, ok := res.ExitFact().(interval)
	return out, ok
}

func wantExit(t *testing.T, body string, opts CFGOptions, want interval) {
	t.Helper()
	got, ok := exitInterval(t, body, opts)
	if !ok {
		t.Fatalf("no normal exit; want %v\nbody:\n%s", want, body)
	}
	if got != want {
		t.Errorf("exit interval %v, want %v\nbody:\n%s", got, want, body)
	}
}

func TestDeadCodeAfterReturn(t *testing.T) {
	// The pop after return is unreachable: it must not count toward any
	// exit path, and its block must stay fact-free.
	body := `
	push()
	pop()
	return
	pop()`
	wantExit(t, body, CFGOptions{}, interval{0, 0})

	cfg := BuildCFG(parseBody(t, body), CFGOptions{})
	res := Solve(cfg, &FlowProblem{
		Entry:    struct{}{},
		Transfer: func(b *Block, in Fact) Fact { return in },
		Join:     func(a, b Fact) Fact { return a },
		Equal:    func(a, b Fact) bool { return true },
	})
	dead := 0
	for _, b := range cfg.Blocks {
		if res.In[b.Index] == nil && b != cfg.Panic && len(b.Nodes) > 0 {
			dead++
		}
	}
	if dead == 0 {
		t.Error("expected an unreachable block holding the dead pop")
	}
}

func TestEarlyReturnImbalance(t *testing.T) {
	wantExit(t, `
	push()
	if cond {
		return
	}
	pop()`, CFGOptions{}, interval{0, 1})
}

func TestLabeledBreakContinue(t *testing.T) {
	// Balanced: every path around the labeled continue and out through
	// the labeled break pops what it pushed.
	wantExit(t, `
outer:
	for i := 0; i < n; i++ {
		push()
		for j := 0; j < i; j++ {
			if skip(j) {
				pop()
				continue outer
			}
			if done(j) {
				pop()
				break outer
			}
		}
		pop()
	}`, CFGOptions{}, interval{0, 0})

	// The labeled break path forgets to pop: interval widens.
	wantExit(t, `
outer:
	for i := 0; i < n; i++ {
		push()
		for j := 0; j < i; j++ {
			if done(j) {
				break outer
			}
		}
		pop()
	}`, CFGOptions{}, interval{0, 1})
}

func TestSwitchFallthrough(t *testing.T) {
	// case 0 pushes and falls through into case 1's pop. The three
	// paths: fallthrough (push,pop = 0), direct case 1 entry (-1), and
	// no match (0). Without the fallthrough edge the first path would
	// leak (+1), so the interval pins the edge's existence.
	wantExit(t, `
	switch mode {
	case 0:
		push()
		fallthrough
	case 1:
		pop()
	}`, CFGOptions{}, interval{-1, 0})

	// Without the fallthrough pop, case 0's push leaks.
	wantExit(t, `
	switch mode {
	case 0:
		push()
	case 1:
		push()
		pop()
	}`, CFGOptions{}, interval{0, 1})

	// A default arm means the head cannot skip every case.
	wantExit(t, `
	switch mode {
	case 0:
		push()
	default:
		push()
	}`, CFGOptions{}, interval{1, 1})
}

func TestDeferPop(t *testing.T) {
	// A deferred pop is modeled at the defer site and therefore covers
	// every subsequent path — including the early return.
	wantExit(t, `
	defer pop()
	push()
	if cond {
		return
	}
	work()`, CFGOptions{}, interval{0, 0})
}

func TestPanicEdges(t *testing.T) {
	// The panic path exits through the Panic block, not Exit, so its
	// un-popped push does not widen the exit interval.
	wantExit(t, `
	push()
	if bad {
		panic("dead")
	}
	pop()`, CFGOptions{}, interval{0, 0})

	// os.Exit is terminal the same way.
	wantExit(t, `
	push()
	if bad {
		os.Exit(1)
	}
	pop()`, CFGOptions{}, interval{0, 0})

	// A body that always panics has no normal exit at all.
	if _, ok := exitInterval(t, `
	push()
	panic("always")`, CFGOptions{}); ok {
		t.Error("always-panicking body should have no normal exit fact")
	}
}

func TestInfiniteLoop(t *testing.T) {
	if _, ok := exitInterval(t, `
	for {
		push()
		pop()
	}`, CFGOptions{}); ok {
		t.Error("for{} body should have no normal exit fact")
	}
	// A conditional break restores the exit.
	wantExit(t, `
	for {
		push()
		if done() {
			pop()
			break
		}
		pop()
	}`, CFGOptions{}, interval{0, 0})
}

func TestGoto(t *testing.T) {
	// The forward goto jumps over the pop.
	wantExit(t, `
	push()
	if cond {
		goto out
	}
	pop()
out:
	work()`, CFGOptions{}, interval{0, 1})

	// A backward goto forms a loop; the clamp keeps the fixpoint finite
	// while still showing accumulation.
	got, ok := exitInterval(t, `
again:
	push()
	if more() {
		goto again
	}`, CFGOptions{})
	if !ok || got.lo != 1 || got.hi <= got.lo {
		t.Errorf("backward-goto accumulation: got %v ok=%v, want lo=1 and hi>lo", got, ok)
	}
}

func TestSelect(t *testing.T) {
	wantExit(t, `
	push()
	select {
	case <-a:
		pop()
	case <-b:
		pop()
	}`, CFGOptions{}, interval{0, 0})

	wantExit(t, `
	push()
	select {
	case <-a:
		pop()
	default:
	}`, CFGOptions{}, interval{0, 1})
}

func TestRangeLoop(t *testing.T) {
	wantExit(t, `
	for _, v := range xs {
		push()
		use(v)
		pop()
	}`, CFGOptions{}, interval{0, 0})

	// A balanced early-return search loop must solve to exactly {0,0}:
	// the body's calls belong to the body block alone. Adding the whole
	// RangeStmt to the loop head would re-count them there — once per
	// head visit and on the zero-iteration path — skewing the interval
	// negative.
	wantExit(t, `
	for _, v := range xs {
		push()
		if found(v) {
			pop()
			return
		}
		pop()
	}`, CFGOptions{}, interval{0, 0})

	// An unbalanced body accumulates through the back edge, but the
	// zero-iteration path must pin the exit interval's low bound at 0.
	got, ok := exitInterval(t, `
	for _, v := range xs {
		push()
		use(v)
	}`, CFGOptions{})
	if !ok || got.lo != 0 || got.hi <= 0 {
		t.Errorf("unbalanced range body: got %v ok=%v, want lo=0 and hi>0", got, ok)
	}
}

func TestSwitchCaseExprInHead(t *testing.T) {
	// Case expressions evaluate in the dispatch head until one matches,
	// so the push inside case 1's expression is visible on every path
	// through the switch — including case 0's body and the no-match
	// path — and only case 1's body pops it.
	wantExit(t, `
	switch {
	case quiet():
		work()
	case push() > 0:
		pop()
	}`, CFGOptions{}, interval{0, 1})
}

func TestTypeSwitch(t *testing.T) {
	wantExit(t, `
	switch v := x.(type) {
	case int:
		push()
		use(v)
		pop()
	case string:
		push()
	}`, CFGOptions{}, interval{0, 1})
}

func TestCollapseNilGuards(t *testing.T) {
	guarded := `
	if p := prof(); p != nil {
		push()
	}
	if p := prof(); p != nil {
		pop()
	}`
	// Modeled precisely, the two independent guards yield four paths
	// and an interval of -1..1.
	wantExit(t, guarded, CFGOptions{}, interval{-1, 1})
	// Collapsed, both bodies run unconditionally: exactly balanced.
	wantExit(t, guarded, CFGOptions{CollapseNilGuards: true}, interval{0, 0})

	// A guard body that can transfer control out must NOT collapse:
	// inlining `if err != nil { panic(...) }` would kill every path.
	wantExit(t, `
	push()
	if err != nil {
		panic("boom")
	}
	pop()`, CFGOptions{CollapseNilGuards: true}, interval{0, 0})

	// Same for a guarded early return.
	wantExit(t, `
	push()
	if err != nil {
		return
	}
	pop()`, CFGOptions{CollapseNilGuards: true}, interval{0, 1})
}
