package framework

import (
	"go/ast"
	"go/token"
)

// CFG is the intraprocedural control-flow graph of one function body,
// built purely over go/ast (the module vendors no x/tools, so
// golang.org/x/tools/go/cfg is unavailable). Blocks hold statements and
// the key decision expressions in execution order; edges cover the
// structured constructs plus labeled break/continue, goto, switch
// fallthrough, and explicit panic/os.Exit termination.
//
// Two synthetic blocks bound every graph: Exit collects every normal way
// out of the function (each return statement and falling off the end),
// and Panic collects the abnormal ones (an explicit panic(...) or
// os.Exit(...) call ends its path there). Analyzers that enforce
// "on all paths out of the function" properties check the join over
// Exit's predecessors and leave Panic unconstrained: a panicking
// simulation is already dead, so an unbalanced frame or an unreleased
// lock on that path cannot corrupt a run that continues (see DESIGN.md
// "Statically enforced invariants" for the legality argument).
//
// A runtime panic can of course escape from any statement, not only from
// explicit panic calls; the analyzers built on this graph check
// invariants of the simulator's own protocols, which never recover, so
// modeling only explicit termination is sound for them.
type CFG struct {
	// Entry is the block control enters the function through.
	Entry *Block
	// Exit is the synthetic normal-exit block: every return statement
	// and the fall-off-the-end path lead here. It holds no nodes.
	Exit *Block
	// Panic is the synthetic abnormal-exit block fed by explicit
	// panic(...) and os.Exit(...) calls. It holds no nodes.
	Panic *Block
	// Blocks lists every block in creation order (deterministic for a
	// given body). Entry is Blocks[0], Exit Blocks[1], Panic Blocks[2].
	Blocks []*Block
}

// Block is one straight-line run of statements: control enters at the
// first node and leaves through one of Succs after the last.
type Block struct {
	// Index is the block's position in CFG.Blocks.
	Index int
	// Nodes holds the block's statements and decision expressions in
	// execution order. Condition expressions of if/for/switch appear as
	// bare ast.Expr nodes; everything else is the ast.Stmt itself.
	Nodes []ast.Node
	// Succs are the possible successors in deterministic order
	// (then-branch before else-branch, loop body before loop exit,
	// switch cases in source order).
	Succs []*Block
}

// CFGOptions adjusts graph construction.
type CFGOptions struct {
	// CollapseNilGuards treats a one-armed `if x != nil { ... }`
	// (optionally with an init statement, as in
	// `if p := t.Prof(); p != nil { ... }`) as straight-line code: the
	// guarded body executes unconditionally. The profiler's instruments
	// are emitted behind exactly this idiom, and whether the profiler is
	// attached is fixed for a whole run — so the skip path can never be
	// taken on one site and not another, and modeling it would report
	// every correctly-paired Push/Pop as path-dependent.
	CollapseNilGuards bool
}

// BuildCFG constructs the control-flow graph of body.
func BuildCFG(body *ast.BlockStmt, opts CFGOptions) *CFG {
	b := &cfgBuilder{opts: opts, labels: map[string]*cfgLabel{}}
	b.cfg = &CFG{}
	b.cfg.Entry = b.newBlock()
	b.cfg.Exit = b.newBlock()
	b.cfg.Panic = b.newBlock()
	b.cur = b.cfg.Entry
	b.stmt(body)
	b.jump(b.cfg.Exit) // falling off the end is a normal exit
	return b.cfg
}

// cfgLabel tracks one label: the block its statement starts in (the goto
// and continue target) and, when it labels a breakable construct, where
// a labeled break lands.
type cfgLabel struct {
	target  *Block
	breakTo *Block
	contTo  *Block
}

// loopCtx is one enclosing breakable construct. contTo is nil for
// switch/select (continue skips them and binds to the enclosing loop).
type loopCtx struct {
	label   string
	breakTo *Block
	contTo  *Block
}

type cfgBuilder struct {
	cfg  *CFG
	opts CFGOptions
	// cur is the block under construction; nil after a terminator
	// (return/panic/goto/break), meaning following code is unreachable.
	cur    *Block
	loops  []loopCtx
	labels map[string]*cfgLabel
	// pendingLabel carries a label name from a LabeledStmt to the
	// breakable construct it labels.
	pendingLabel string
	// fallTarget is the next case body, the destination of a
	// fallthrough statement inside the current switch case.
	fallTarget *Block
}

func (b *cfgBuilder) newBlock() *Block {
	bl := &Block{Index: len(b.cfg.Blocks)}
	b.cfg.Blocks = append(b.cfg.Blocks, bl)
	return bl
}

func (b *cfgBuilder) edge(from, to *Block) {
	from.Succs = append(from.Succs, to)
}

// jump connects the current block to then, then marks the path ended.
func (b *cfgBuilder) jump(to *Block) {
	if b.cur != nil {
		b.edge(b.cur, to)
		b.cur = nil
	}
}

// start resumes construction in bl.
func (b *cfgBuilder) start(bl *Block) { b.cur = bl }

// add appends a node to the current block, opening a fresh (unreachable)
// block when the path was terminated — dead code after a return still
// gets blocks, they just have no predecessors.
func (b *cfgBuilder) add(n ast.Node) {
	if b.cur == nil {
		b.cur = b.newBlock()
	}
	b.cur.Nodes = append(b.cur.Nodes, n)
}

// label returns (creating on demand, for forward gotos) the record of
// one label.
func (b *cfgBuilder) label(name string) *cfgLabel {
	l := b.labels[name]
	if l == nil {
		l = &cfgLabel{target: b.newBlock()}
		b.labels[name] = l
	}
	return l
}

// takeLabel consumes the pending label for the construct being built.
func (b *cfgBuilder) takeLabel() string {
	l := b.pendingLabel
	b.pendingLabel = ""
	return l
}

// isNilGuard reports whether cond is the `x != nil` comparison
// CollapseNilGuards applies to.
func isNilGuard(cond ast.Expr) bool {
	bin, ok := ast.Unparen(cond).(*ast.BinaryExpr)
	if !ok || bin.Op != token.NEQ {
		return false
	}
	isNil := func(e ast.Expr) bool {
		id, ok := ast.Unparen(e).(*ast.Ident)
		return ok && id.Name == "nil"
	}
	return isNil(bin.X) != isNil(bin.Y)
}

// collapsible reports whether every statement in body is straight-line:
// no returns, branches, panics, or nested control flow. Only such
// bodies are safe to inline when collapsing nil guards — inlining
// `if err != nil { panic(...) }` would make every path terminate.
func collapsible(body *ast.BlockStmt) bool {
	for _, s := range body.List {
		switch s := s.(type) {
		case *ast.ExprStmt:
			if terminates(s) {
				return false
			}
		case *ast.AssignStmt, *ast.IncDecStmt, *ast.DeclStmt, *ast.EmptyStmt,
			*ast.DeferStmt, *ast.GoStmt:
		default:
			return false
		}
	}
	return true
}

// terminates reports whether s is a call that never returns: an explicit
// panic or os.Exit.
func terminates(s *ast.ExprStmt) bool {
	call, ok := s.X.(*ast.CallExpr)
	if !ok {
		return false
	}
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name == "panic"
	case *ast.SelectorExpr:
		if x, ok := ast.Unparen(fun.X).(*ast.Ident); ok {
			return x.Name == "os" && fun.Sel.Name == "Exit"
		}
	}
	return false
}

func (b *cfgBuilder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		for _, st := range s.List {
			b.stmt(st)
		}

	case *ast.ExprStmt:
		b.add(s)
		if terminates(s) {
			b.jump(b.cfg.Panic)
		}

	case *ast.ReturnStmt:
		b.add(s)
		b.jump(b.cfg.Exit)

	case *ast.IfStmt:
		b.ifStmt(s)

	case *ast.ForStmt:
		b.forStmt(s)

	case *ast.RangeStmt:
		b.rangeStmt(s)

	case *ast.SwitchStmt:
		b.switchStmt(s.Init, s.Tag, nil, s.Body)

	case *ast.TypeSwitchStmt:
		b.switchStmt(s.Init, nil, s.Assign, s.Body)

	case *ast.SelectStmt:
		b.selectStmt(s)

	case *ast.LabeledStmt:
		l := b.label(s.Label.Name)
		b.jump(l.target)
		b.start(l.target)
		b.pendingLabel = s.Label.Name
		b.stmt(s.Stmt)
		b.pendingLabel = ""

	case *ast.BranchStmt:
		b.branchStmt(s)

	default:
		// Assignments, declarations, defer, go, send, inc/dec, empty:
		// straight-line nodes.
		b.add(s)
	}
}

func (b *cfgBuilder) ifStmt(s *ast.IfStmt) {
	if s.Init != nil {
		b.stmt(s.Init)
	}
	b.add(s.Cond)
	if b.opts.CollapseNilGuards && s.Else == nil && isNilGuard(s.Cond) && collapsible(s.Body) {
		b.stmt(s.Body)
		return
	}
	cond := b.cur
	after := b.newBlock()
	then := b.newBlock()
	b.edge(cond, then)
	var els *Block
	if s.Else != nil {
		els = b.newBlock()
		b.edge(cond, els)
	} else {
		b.edge(cond, after)
	}
	b.cur = nil
	b.start(then)
	b.stmt(s.Body)
	b.jump(after)
	if s.Else != nil {
		b.start(els)
		b.stmt(s.Else)
		b.jump(after)
	}
	b.start(after)
}

func (b *cfgBuilder) forStmt(s *ast.ForStmt) {
	label := b.takeLabel()
	if s.Init != nil {
		b.stmt(s.Init)
	}
	head := b.newBlock()
	b.jump(head)
	b.start(head)
	body := b.newBlock()
	after := b.newBlock()
	var post *Block
	contTo := head
	if s.Post != nil {
		post = b.newBlock()
		contTo = post
	}
	if s.Cond != nil {
		b.add(s.Cond)
		b.edge(b.cur, body)
		b.edge(b.cur, after)
	} else {
		b.edge(b.cur, body)
	}
	b.cur = nil

	if label != "" {
		l := b.label(label)
		l.breakTo, l.contTo = after, contTo
	}
	b.loops = append(b.loops, loopCtx{label: label, breakTo: after, contTo: contTo})
	b.start(body)
	b.stmt(s.Body)
	b.jump(contTo)
	b.loops = b.loops[:len(b.loops)-1]

	if post != nil {
		b.start(post)
		b.stmt(s.Post)
		b.jump(head)
	}
	b.start(after)
}

func (b *cfgBuilder) rangeStmt(s *ast.RangeStmt) {
	label := b.takeLabel()
	b.add(s.X)
	head := b.newBlock()
	b.jump(head)
	b.start(head)
	// Only the per-iteration key/value targets belong to the head.
	// Adding the whole RangeStmt here would re-scan the loop body's
	// calls in the head block — double-counting them against the body
	// block and charging them to the zero-iteration exit path.
	if s.Key != nil {
		b.add(s.Key)
	}
	if s.Value != nil {
		b.add(s.Value)
	}
	body := b.newBlock()
	after := b.newBlock()
	b.edge(b.cur, body)
	b.edge(b.cur, after)
	b.cur = nil

	if label != "" {
		l := b.label(label)
		l.breakTo, l.contTo = after, head
	}
	b.loops = append(b.loops, loopCtx{label: label, breakTo: after, contTo: head})
	b.start(body)
	b.stmt(s.Body)
	b.jump(head)
	b.loops = b.loops[:len(b.loops)-1]
	b.start(after)
}

// switchStmt builds expression and type switches: the head evaluates
// init and the tag (or the type-switch assign), then branches to every
// case body (plus straight to the after-block when there is no default
// case). A trailing fallthrough continues into the next case's body.
func (b *cfgBuilder) switchStmt(init ast.Stmt, tag ast.Expr, assign ast.Stmt, body *ast.BlockStmt) {
	label := b.takeLabel()
	if init != nil {
		b.stmt(init)
	}
	if tag != nil {
		b.add(tag)
	}
	if assign != nil {
		b.add(assign)
	}
	if b.cur == nil {
		b.cur = b.newBlock()
	}
	head := b.cur
	after := b.newBlock()

	// Case expressions evaluate in the dispatch head, in source order,
	// until one matches — not inside the body they select. A call in a
	// case expression must therefore be visible on every path through
	// the switch (including later cases and the no-match path), so all
	// of them land in the head block.
	var clauses []*ast.CaseClause
	for _, c := range body.List {
		cl := c.(*ast.CaseClause)
		clauses = append(clauses, cl)
		for _, e := range cl.List {
			b.add(e)
		}
	}
	bodies := make([]*Block, len(clauses))
	hasDefault := false
	for i, c := range clauses {
		bodies[i] = b.newBlock()
		b.edge(head, bodies[i])
		if c.List == nil {
			hasDefault = true
		}
	}
	if !hasDefault {
		b.edge(head, after)
	}
	b.cur = nil

	if label != "" {
		b.label(label).breakTo = after
	}
	b.loops = append(b.loops, loopCtx{label: label, breakTo: after})
	savedFall := b.fallTarget
	for i, c := range clauses {
		b.start(bodies[i])
		if i+1 < len(bodies) {
			b.fallTarget = bodies[i+1]
		} else {
			b.fallTarget = nil
		}
		for _, st := range c.Body {
			b.stmt(st)
		}
		b.jump(after)
	}
	b.fallTarget = savedFall
	b.loops = b.loops[:len(b.loops)-1]
	b.start(after)
}

func (b *cfgBuilder) selectStmt(s *ast.SelectStmt) {
	label := b.takeLabel()
	if b.cur == nil {
		b.cur = b.newBlock()
	}
	head := b.cur
	after := b.newBlock()
	b.cur = nil

	if label != "" {
		b.label(label).breakTo = after
	}
	b.loops = append(b.loops, loopCtx{label: label, breakTo: after})
	for _, c := range s.Body.List {
		cl := c.(*ast.CommClause)
		blk := b.newBlock()
		b.edge(head, blk)
		b.start(blk)
		if cl.Comm != nil {
			b.stmt(cl.Comm)
		}
		for _, st := range cl.Body {
			b.stmt(st)
		}
		b.jump(after)
	}
	b.loops = b.loops[:len(b.loops)-1]
	if len(s.Body.List) == 0 {
		b.edge(head, after) // empty select blocks forever; keep the graph connected
	}
	b.start(after)
}

func (b *cfgBuilder) branchStmt(s *ast.BranchStmt) {
	b.add(s)
	name := ""
	if s.Label != nil {
		name = s.Label.Name
	}
	switch s.Tok {
	case token.BREAK:
		if name != "" {
			if l := b.labels[name]; l != nil && l.breakTo != nil {
				b.jump(l.breakTo)
				return
			}
		}
		for i := len(b.loops) - 1; i >= 0; i-- {
			if name == "" || b.loops[i].label == name {
				b.jump(b.loops[i].breakTo)
				return
			}
		}
		b.cur = nil // malformed program; sever the path

	case token.CONTINUE:
		for i := len(b.loops) - 1; i >= 0; i-- {
			if b.loops[i].contTo == nil {
				continue // switch/select: continue binds past them
			}
			if name == "" || b.loops[i].label == name {
				b.jump(b.loops[i].contTo)
				return
			}
		}
		b.cur = nil

	case token.GOTO:
		b.jump(b.label(name).target)

	case token.FALLTHROUGH:
		if b.fallTarget != nil {
			b.jump(b.fallTarget)
		} else {
			b.cur = nil
		}
	}
}
