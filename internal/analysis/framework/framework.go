// Package framework is a minimal, dependency-free reimplementation of
// the golang.org/x/tools/go/analysis surface the simlint suite needs:
// an Analyzer runs over one type-checked package (a Pass) and reports
// position-anchored Diagnostics. The module vendors no third-party
// code, so the standard x/tools framework is unavailable; this package
// keeps the same shape (Analyzer{Name, Doc, Run}, Pass.Reportf) so the
// analyzers port mechanically if the dependency ever becomes available.
//
// On top of the x/tools shape it adds the one policy simlint needs
// globally: the //simlint:allow suppression directive, applied
// uniformly by RunAnalyzers so individual analyzers never see it.
package framework

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one named static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //simlint:allow directives.
	Name string
	// Doc is a one-paragraph description of the invariant enforced.
	Doc string
	// Run applies the check to one package.
	Run func(*Pass) error
}

// Pass is the input to one Analyzer.Run over one package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// Path is the package's import path with any test-variant suffix
	// (e.g. " [repro/internal/sim.test]") stripped.
	Path string

	diags *[]Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      pos,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// IsTestFile reports whether the file containing pos is a _test.go file.
func (p *Pass) IsTestFile(f *ast.File) bool {
	return strings.HasSuffix(p.Fset.Position(f.Package).Filename, "_test.go")
}

// Diagnostic is one finding.
type Diagnostic struct {
	Pos      token.Pos
	Analyzer string
	Message  string
}

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	// Path is the canonical import path ("repro/internal/sim"); test
	// variants keep their bracket suffix here but analyzers see the
	// stripped Pass.Path.
	Path  string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// DirectiveName is the analyzer name diagnostics about malformed
// //simlint:allow directives are attributed to.
const DirectiveName = "simlint"

// directivePrefix introduces a suppression comment. The full grammar is
//
//	//simlint:allow <analyzer> -- <reason>
//
// placed either at the end of the offending line or on its own line
// immediately above it. The reason is mandatory.
const directivePrefix = "//simlint:allow"

// directive is one parsed //simlint:allow comment.
type directive struct {
	line     int
	analyzer string
	reason   string
	pos      token.Pos
}

// parseDirectives extracts every simlint directive in f.
func parseDirectives(fset *token.FileSet, f *ast.File) []directive {
	var ds []directive
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text := c.Text
			if !strings.HasPrefix(text, directivePrefix) {
				continue
			}
			rest := strings.TrimPrefix(text, directivePrefix)
			if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
				continue // e.g. //simlint:allowed — not ours
			}
			rest = strings.TrimSpace(rest)
			// A second "//" introduces a trailing note that is not part
			// of the directive (fixtures put // want expectations there).
			if i := strings.Index(rest, "//"); i >= 0 {
				rest = strings.TrimSpace(rest[:i])
			}
			name, reason := rest, ""
			if i := strings.Index(rest, "--"); i >= 0 {
				name = strings.TrimSpace(rest[:i])
				reason = strings.TrimSpace(rest[i+2:])
			}
			ds = append(ds, directive{
				line:     fset.Position(c.Pos()).Line,
				analyzer: name,
				reason:   reason,
				pos:      c.Pos(),
			})
		}
	}
	return ds
}

// rawDiagnostics applies every analyzer to pkg with no directive
// processing: every finding is returned, suppressed or not.
func rawDiagnostics(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.Info,
			Path:      CleanPath(pkg.Path),
			diags:     &diags,
		}
		if err := pass.Analyzer.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %s: %w", pkg.Path, a.Name, err)
		}
	}
	return diags, nil
}

// RunAnalyzers applies every analyzer to pkg and returns the surviving
// diagnostics: findings covered by a well-formed //simlint:allow
// directive (same line or the line immediately above, naming the
// analyzer, with a non-empty reason) are dropped, and malformed
// directives — a missing reason, or a name that matches no analyzer —
// are themselves reported under the "simlint" name. Diagnostics are
// returned in file/position order.
func RunAnalyzers(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	diags, err := rawDiagnostics(pkg, analyzers)
	if err != nil {
		return nil, err
	}

	known := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		known[a.Name] = true
	}

	// Index directives by file and line.
	type key struct {
		file string
		line int
	}
	allow := make(map[key]map[string]bool)
	var kept []Diagnostic
	for _, f := range pkg.Files {
		for _, d := range parseDirectives(pkg.Fset, f) {
			file := pkg.Fset.Position(d.pos).Filename
			switch {
			case !known[d.analyzer]:
				kept = append(kept, Diagnostic{Pos: d.pos, Analyzer: DirectiveName,
					Message: fmt.Sprintf("//simlint:allow names unknown analyzer %q", d.analyzer)})
			case d.reason == "":
				kept = append(kept, Diagnostic{Pos: d.pos, Analyzer: DirectiveName,
					Message: fmt.Sprintf("//simlint:allow %s is missing its mandatory reason (\"-- <why>\")", d.analyzer)})
			default:
				k := key{file, d.line}
				if allow[k] == nil {
					allow[k] = make(map[string]bool)
				}
				allow[k][d.analyzer] = true
			}
		}
	}

	for _, d := range diags {
		p := pkg.Fset.Position(d.Pos)
		if allow[key{p.Filename, p.Line}][d.Analyzer] ||
			allow[key{p.Filename, p.Line - 1}][d.Analyzer] {
			continue
		}
		kept = append(kept, d)
	}

	sort.Slice(kept, func(i, j int) bool {
		pi, pj := pkg.Fset.Position(kept[i].Pos), pkg.Fset.Position(kept[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		if pi.Column != pj.Column {
			return pi.Column < pj.Column
		}
		return kept[i].Analyzer < kept[j].Analyzer
	})
	return kept, nil
}

// Allow is one //simlint:allow directive, classified by AuditAllows.
type Allow struct {
	// Pos is the directive comment's position.
	Pos token.Pos
	// Analyzer and Reason are the parsed directive fields.
	Analyzer string
	Reason   string
	// Malformed explains why the directive is invalid ("" when valid):
	// an unknown analyzer name or a missing reason.
	Malformed string
	// Stale reports that the directive suppresses nothing: with
	// directives ignored, the named analyzer reports no diagnostic on
	// the directive's line or the line below it. A stale allow is a
	// suppression that outlived its finding and must be deleted, or it
	// will silently swallow the next real finding at that position.
	Stale bool
}

// AuditAllows lists every //simlint:allow directive in pkg, classifying
// each as malformed, stale, or live. Results are in file/position order.
func AuditAllows(pkg *Package, analyzers []*Analyzer) ([]Allow, error) {
	diags, err := rawDiagnostics(pkg, analyzers)
	if err != nil {
		return nil, err
	}
	known := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		known[a.Name] = true
	}
	// Index raw findings by (file, line, analyzer).
	type key struct {
		file     string
		line     int
		analyzer string
	}
	at := make(map[key]bool, len(diags))
	for _, d := range diags {
		p := pkg.Fset.Position(d.Pos)
		at[key{p.Filename, p.Line, d.Analyzer}] = true
	}

	var allows []Allow
	for _, f := range pkg.Files {
		for _, d := range parseDirectives(pkg.Fset, f) {
			a := Allow{Pos: d.pos, Analyzer: d.analyzer, Reason: d.reason}
			file := pkg.Fset.Position(d.pos).Filename
			switch {
			case !known[d.analyzer]:
				a.Malformed = fmt.Sprintf("unknown analyzer %q", d.analyzer)
			case d.reason == "":
				a.Malformed = "missing mandatory reason (\"-- <why>\")"
			default:
				// A directive covers its own line and the next one.
				a.Stale = !at[key{file, d.line, d.analyzer}] &&
					!at[key{file, d.line + 1, d.analyzer}]
			}
			allows = append(allows, a)
		}
	}
	sort.Slice(allows, func(i, j int) bool {
		pi, pj := pkg.Fset.Position(allows[i].Pos), pkg.Fset.Position(allows[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		return pi.Offset < pj.Offset
	})
	return allows, nil
}

// CleanPath strips a go list test-variant suffix ("pkg [pkg.test]")
// from an import path.
func CleanPath(path string) string {
	if i := strings.Index(path, " ["); i >= 0 {
		return path[:i]
	}
	return path
}

// PathBase returns the last element of an import path.
func PathBase(path string) string {
	if i := strings.LastIndex(path, "/"); i >= 0 {
		return path[i+1:]
	}
	return path
}

// Format renders a diagnostic the way go vet does.
func Format(fset *token.FileSet, d Diagnostic) string {
	return fmt.Sprintf("%s: %s (%s)", fset.Position(d.Pos), d.Message, d.Analyzer)
}
