package analysis

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis/framework"
)

// Shared machinery for the flow-sensitive analyzers (framebalance,
// lockpair, chargepath): function enumeration, call scanning that
// respects function-literal boundaries, and canonical expression keys.

// funcUnit is one function-like body analyzed as its own control-flow
// context: a declared function/method, or a function literal (whose
// enclosing function sees it as a single opaque expression).
type funcUnit struct {
	name string
	decl *ast.FuncDecl // nil for function literals
	body *ast.BlockStmt
	pos  token.Pos
}

// functionsIn enumerates every function body in f: declarations first,
// then each function literal (in source order) as a separate unit.
func functionsIn(f *ast.File) []funcUnit {
	var units []funcUnit
	for _, d := range f.Decls {
		fd, ok := d.(*ast.FuncDecl)
		if !ok || fd.Body == nil {
			continue
		}
		units = append(units, funcUnit{name: fd.Name.Name, decl: fd, body: fd.Body, pos: fd.Name.Pos()})
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			if lit, ok := n.(*ast.FuncLit); ok {
				units = append(units, funcUnit{
					name: fd.Name.Name + " (function literal)",
					body: lit.Body,
					pos:  lit.Pos(),
				})
			}
			return true
		})
	}
	return units
}

// scanCalls visits every call expression in n in source order, without
// descending into nested function literals — those are separate flow
// contexts enumerated by functionsIn. root distinguishes n itself from
// a nested literal.
func scanCalls(n ast.Node, visit func(*ast.CallExpr)) {
	ast.Inspect(n, func(m ast.Node) bool {
		if _, ok := m.(*ast.FuncLit); ok {
			return false
		}
		if call, ok := m.(*ast.CallExpr); ok {
			visit(call)
		}
		return true
	})
}

// callReceiver returns the receiver expression of a method-style call
// (x.M(...)), or nil for plain calls.
func callReceiver(call *ast.CallExpr) ast.Expr {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	return sel.X
}

// aliasTarget is the expression a type-assertion alias stands for.
type aliasTarget struct {
	key string
	typ types.Type // static type of the asserted operand
}

// aliasMap maps local variable objects to the expression they alias. It
// canonicalizes the common `hl, ok := l.(hintedLock)` idiom, where the
// asserted value is the same object under a second name, so an acquire
// through the assertion and a release through the original pair up.
type aliasMap map[types.Object]aliasTarget

// collectAliases records type-assertion aliases declared in body.
func collectAliases(info *types.Info, body *ast.BlockStmt) aliasMap {
	aliases := aliasMap{}
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || as.Tok != token.DEFINE || len(as.Rhs) != 1 {
			return true
		}
		ta, ok := ast.Unparen(as.Rhs[0]).(*ast.TypeAssertExpr)
		if !ok || ta.Type == nil || len(as.Lhs) == 0 {
			return true
		}
		id, ok := as.Lhs[0].(*ast.Ident)
		if !ok {
			return true
		}
		if obj := info.Defs[id]; obj != nil {
			x := ast.Unparen(ta.X)
			aliases[obj] = aliasTarget{key: types.ExprString(x), typ: info.Types[x].Type}
		}
		return true
	})
	return aliases
}

// exprKey renders e as a canonical, deterministic string key, resolving
// a top-level type-assertion alias back to the original expression.
func (a aliasMap) exprKey(info *types.Info, e ast.Expr) string {
	e = ast.Unparen(e)
	if id, ok := e.(*ast.Ident); ok {
		if t, ok := a[info.Uses[id]]; ok && t.key != "" {
			return t.key
		}
	}
	return types.ExprString(e)
}

// qualifiedKey names an expression for package-wide matching: a field
// selector is qualified by the owning named type ("Monitor.mu",
// "base.frameCS") so the same field is one key across every method that
// touches it regardless of receiver variable names; anything else keeps
// its canonical string.
func (a aliasMap) qualifiedKey(info *types.Info, e ast.Expr) string {
	key := a.exprKey(info, e)
	sel, ok := ast.Unparen(e).(*ast.SelectorExpr)
	if !ok {
		return key
	}
	t := info.Types[sel.X].Type
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok && n.Obj() != nil {
		return n.Obj().Name() + "." + sel.Sel.Name
	}
	return key
}

// exprType returns the static type of e, seen through a top-level
// type-assertion alias (the asserted operand's type, not the narrowed
// one — lock-likeness is a property of the original object).
func (a aliasMap) exprType(info *types.Info, e ast.Expr) types.Type {
	e = ast.Unparen(e)
	if id, ok := e.(*ast.Ident); ok {
		if t, ok := a[info.Uses[id]]; ok && t.typ != nil {
			return t.typ
		}
	}
	return info.Types[e].Type
}

// intv is a clamped integer interval tracking the possible net count of
// one key (pushed frames, held locks) along the paths reaching a point.
// Bounds are clamped to ±intvClamp so loops that accumulate reach a
// fixpoint; a clamped bound still differs from its partner, which is
// all the balance checks need.
type intv struct{ lo, hi int }

const intvClamp = 4

func clamp(v int) int {
	if v > intvClamp {
		return intvClamp
	}
	if v < -intvClamp {
		return -intvClamp
	}
	return v
}

func (iv intv) add(d int) intv {
	return intv{clamp(iv.lo + d), clamp(iv.hi + d)}
}

// balanceFact maps keys to their count interval. A missing key is
// {0, 0}.
type balanceFact map[string]intv

func (f balanceFact) clone() balanceFact {
	g := make(balanceFact, len(f))
	for k, v := range f {
		g[k] = v
	}
	return g
}

func (f balanceFact) get(k string) intv {
	if v, ok := f[k]; ok {
		return v
	}
	return intv{}
}

func joinBalance(a, b framework.Fact) framework.Fact {
	fa, fb := a.(balanceFact), b.(balanceFact)
	out := make(balanceFact, len(fa)+len(fb))
	for k, va := range fa {
		vb := fb.get(k)
		out[k] = intv{min(va.lo, vb.lo), max(va.hi, vb.hi)}
	}
	for k, vb := range fb {
		if _, seen := fa[k]; !seen {
			va := intv{}
			out[k] = intv{min(va.lo, vb.lo), max(va.hi, vb.hi)}
		}
	}
	// Keys absent from both stay {0,0} implicitly; keys present in only
	// one side joined against {0,0} above.
	return out
}

// equalBalance compares through get so zero-valued entries are
// semantically absent.
func equalBalance(a, b framework.Fact) bool {
	fa, fb := a.(balanceFact), b.(balanceFact)
	for k, v := range fa {
		if fb.get(k) != v {
			return false
		}
	}
	for k, v := range fb {
		if fa.get(k) != v {
			return false
		}
	}
	return true
}
