// Package a is a maporder fixture. The analyzer is not gated on the
// simulated-package set, so any path works.
package a

import "sort"

// keysSorted is the sanctioned collect-then-sort idiom.
func keysSorted(m map[string]int) []string {
	var ks []string
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}

// valsSlice sorts via sort.Slice; still the sanctioned idiom.
func valsSlice(m map[string]int) []int {
	var vs []int
	for _, v := range m {
		vs = append(vs, v)
	}
	sort.Slice(vs, func(i, j int) bool { return vs[i] < vs[j] })
	return vs
}

// badAppend collects but never sorts: element order leaks out.
func badAppend(m map[string]int) []string {
	var ks []string
	for k := range m { // want `order-dependent body`
		ks = append(ks, k)
	}
	return ks
}

// sum is commutative integer accumulation: order-independent.
func sum(m map[string]int) int {
	n := 0
	for _, v := range m {
		n += v
	}
	return n
}

// count is order-independent too.
func count(m map[string]int) int {
	n := 0
	for range m {
		n++
	}
	return n
}

// keyed writes land on the same key whatever the order.
func keyed(m map[string]int, out map[string]int) {
	for k, v := range m {
		out[k] = v * 2
	}
}

// clearAll deletes the current key: the sanctioned self-clearing idiom.
func clearAll(m map[string]int) {
	for k := range m {
		delete(m, k)
	}
}

// badLast publishes whichever key iterates last.
func badLast(m map[string]int) string {
	last := ""
	for k := range m { // want `order-dependent body`
		last = k
	}
	return last
}

// badConcat accumulates a string: concatenation is order-dependent.
func badConcat(m map[string]int) string {
	s := ""
	for k := range m { // want `order-dependent body`
		s += k
	}
	return s
}

var sink []string

func record(k string) { sink = append(sink, k) }

// badCall emits side effects in iteration order.
func badCall(m map[string]int) {
	for k := range m { // want `order-dependent body`
		record(k)
	}
}

// localOnly mutates iteration-local state plus an integer accumulator:
// order-independent.
func localOnly(m map[string]int) int {
	n := 0
	for _, v := range m {
		w := v * v
		if w > 10 {
			w = 10
		}
		n += w
	}
	return n
}

func allowed(m map[string]int) string {
	last := ""
	//simlint:allow maporder -- fixture: a justified suppression is honored
	for k := range m {
		last = k
	}
	return last
}
