// Package sim is a walltime fixture: its import path ends in /sim, so
// the analyzer treats it as simulated code.
package sim

import (
	"math/rand" // want `import of math/rand in simulated package`
	"time"
)

func bad() time.Duration {
	t0 := time.Now() // want `time.Now in simulated package`
	time.Sleep(5)    // want `time.Sleep in simulated package`
	_ = rand.Intn(4)
	return time.Since(t0) // want `time.Since in simulated package`
}

func badTimers() {
	_ = time.After(1)        // want `time.After in simulated package`
	_ = time.NewTimer(1)     // want `time.NewTimer in simulated package`
	_ = time.AfterFunc(1, f) // want `time.AfterFunc in simulated package`
}

func f() {}

// legal: Duration values and arithmetic never touch the wall clock.
func legal(d time.Duration) time.Duration { return d * 2 }

func allowed() {
	//simlint:allow walltime -- fixture: a justified suppression is honored
	_ = time.Now()
}

func missingReason() {
	_ = time.Now() //simlint:allow walltime // want `missing its mandatory reason` `time.Now in simulated package`
}

func unknownAnalyzer() {
	//simlint:allow nosuchcheck -- some reason // want `unknown analyzer`
	_ = time.Now() // want `time.Now in simulated package`
}
