// Test files are exempt from the walltime rule: harnesses may measure
// real elapsed time. No // want expectations here.
package sim

import "time"

func testOnlyClock() time.Time { return time.Now() }
