// Package notsim is outside the simulated-package set, so wall-clock
// use is legal and no diagnostics are expected.
package notsim

import "time"

func clock() time.Time { return time.Now() }
