// Package sort is a fixture stub: the maporder analyzer recognizes the
// collect-then-sort idiom by calls into package "sort", so the stub
// only needs the function names.
package sort

func Ints(x []int)                          {}
func Strings(x []string)                    {}
func Slice(x any, less func(i, j int) bool) {}
