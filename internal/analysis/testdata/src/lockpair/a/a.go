// Positive, suppressed, and clean cases for lockpair in client code.
package a

import "lockpair/locks"

type S struct {
	mu  *locks.Mutex
	aux *locks.Mutex
}

// leak releases on the fallthrough path but not on the early return.
func (s *S) leak(fail bool) {
	s.mu.Lock(1) // want `lock s\.mu is released on some paths out of leak but not all`
	if fail {
		return
	}
	s.mu.Unlock(1)
}

// never acquires and returns still holding on every path; cleanupAux
// below is the (deliberately disconnected) release site that keeps the
// package-level pairing satisfied, isolating the per-function finding.
func (s *S) never() {
	s.aux.Lock(1) // want `lock s\.aux is acquired in never but never released on any path`
}

func (s *S) cleanupAux() {
	s.aux.Unlock(1)
}

// handoff is the intentional asymmetry: the combiner releases on this
// thread's behalf, and the suppression carries that justification.
func (s *S) handoff(fail bool) {
	s.mu.Lock(1) //simlint:allow lockpair -- hand-off: the elected combiner releases for us
	if fail {
		return
	}
	s.mu.Unlock(1)
}

// viaHelper acquires s.aux through a package-local helper while holding
// s.mu: the interprocedural summary must see through the call and
// record the mu -> aux ordering edge...
func (s *S) viaHelper() {
	s.mu.Lock(1)
	s.helperAux() // want `lock-order cycle S\.aux -> S\.mu -> S\.aux can deadlock`
	s.mu.Unlock(1)
}

func (s *S) helperAux() {
	s.aux.Lock(1)
	s.aux.Unlock(1)
}

// ...and reversed acquires them in the opposite order, closing the
// cycle reported (once, at its earliest witness) above.
func (s *S) reversed() {
	s.aux.Lock(1)
	s.mu.Lock(1)
	s.mu.Unlock(1)
	s.aux.Unlock(1)
}

// hinted is the type-assertion alias idiom: the acquire goes through
// the narrowed interface, the release through the original, and alias
// resolution pairs them on every path.
func hinted(l locks.Locker, cs int) {
	if hl, ok := l.(locks.Hinted); ok {
		hl.LockHint(cs)
	} else {
		l.Lock(cs)
	}
	l.Unlock(cs)
}

// condWait is the condition-variable shape: release inside the loop,
// reacquire before retesting; net zero on every path.
func (s *S) condWait(ready func() bool) {
	s.mu.Lock(1)
	for !ready() {
		s.mu.Unlock(1)
		s.mu.Lock(1)
	}
	s.mu.Unlock(1)
}

// D's methods hold their first lock via the standard defer-unlock
// idiom. The deferred release runs at function exit, so for ordering
// purposes the lock is held across everything the body acquires — a
// defer-at-site model would empty the hold set immediately and miss
// the cycle the two opposite orders form.
type D struct {
	front *locks.Mutex
	back  *locks.Mutex
}

func (d *D) frontFirst() {
	d.front.Lock(1)
	defer d.front.Unlock(1)
	d.back.Lock(1) // want `lock-order cycle D\.back -> D\.front -> D\.back can deadlock`
	d.back.Unlock(1)
}

func (d *D) backFirst() {
	d.back.Lock(1)
	defer d.back.Unlock(1)
	d.front.Lock(1)
	d.front.Unlock(1)
}
