// Package locks is both the fixture stand-in for the real lock kinds
// (lockpair recognizes lock-likeness by the defining package's path
// base) and a test subject in its own right: protocol methods named
// Lock/Unlock are exempt from the per-function held-at-return check,
// so only the package-level acquire/release pairing can police them.
package locks

// Locker is the lock-kind interface; values typed by it are lock-like.
type Locker interface {
	Lock(cs int)
	Unlock(cs int)
}

// Hinted is the optional combined acquire+critical-section entry point.
type Hinted interface {
	LockHint(cs int)
}

// Mutex is the concrete kind; its protocol methods are event-free so
// fixtures control exactly which events exist.
type Mutex struct{}

func (m *Mutex) Lock(cs int)     {}
func (m *Mutex) LockHint(cs int) {}
func (m *Mutex) Unlock(cs int)   {}

// Retarget delegates to its current inner kind on both sides: exempt
// per function (protocol methods), paired at package level.
type Retarget struct {
	cur *Mutex
}

func (r *Retarget) Lock(cs int)   { r.cur.Lock(cs) }
func (r *Retarget) Unlock(cs int) { r.cur.Unlock(cs) }

// Dropper mirrors a retargetable kind whose Unlock lost its delegation:
// the per-function check cannot object (Lock is a protocol method), but
// Dropper.inner is then acquired somewhere and released nowhere.
type Dropper struct {
	inner *Mutex
}

func (d *Dropper) Lock(cs int) { d.inner.Lock(cs) } // want `lock Dropper\.inner is acquired but released nowhere in this package`

func (d *Dropper) Unlock(cs int) {} // the lost delegation: d.inner.Unlock is gone

// Cohort is a lock-protocol type whose Lock acquires an inner lock of
// its own (the NUMA-local shape): a call to Cohort.Lock is both a
// direct lock event and a carrier of the callee's acquire summary, and
// the order analysis must record held -> Cohort.local edges through it.
type Cohort struct {
	local *Mutex
}

func (c *Cohort) Lock(cs int)   { c.local.Lock(cs) }
func (c *Cohort) Unlock(cs int) { c.local.Unlock(cs) }

// Pair closes a cycle only visible through that transitive acquire:
// forward holds guard across the cohort acquire (guard -> Cohort.local,
// via the summary), backward takes the cohort's inner lock directly and
// then guard (Cohort.local -> guard). Treating the protocol call as a
// bare lock event would drop the summary edge and miss the cycle.
type Pair struct {
	guard *Mutex
	c     *Cohort
}

func (p *Pair) forward() {
	p.guard.Lock(1)
	p.c.Lock(1) // want `lock-order cycle Cohort\.local -> Pair\.c -> Pair\.guard -> Cohort\.local can deadlock`
	p.c.Unlock(1)
	p.guard.Unlock(1)
}

func (p *Pair) backward() {
	p.c.local.Lock(1)
	p.guard.Lock(1)
	p.guard.Unlock(1)
	p.c.local.Unlock(1)
}
