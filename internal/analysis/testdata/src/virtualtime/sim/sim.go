// Package sim is a virtualtime fixture: it defines a stand-in Coro
// (path base "sim" makes it match), so receiver and parameter
// positions mark coroutine context exactly as in the real tree.
package sim

import (
	"sync"

	"virtualtime/cthreads"
)

type Coro struct {
	ch chan int
	mu sync.Mutex
}

func work() {}

func (c *Coro) badConcurrency() {
	go work()   // want `go statement`
	c.ch <- 1   // want `channel send`
	<-c.ch      // want `channel receive`
	c.mu.Lock() // want `sync.Mutex operation`
}

func (c *Coro) badMake() {
	ch := make(chan int) // want `make\(chan\)`
	_ = ch
}

func (c *Coro) badSelect() {
	select { // want `select statement`
	default:
	}
}

func (c *Coro) badRange() {
	for range c.ch { // want `range over channel`
	}
}

// param position marks coroutine context too.
func viaParam(c *Coro, wg *sync.WaitGroup) {
	wg.Wait() // want `sync.WaitGroup operation`
}

func viaThread(t *cthreads.Thread, ch chan int) {
	close(ch) // want `close of channel`
}

func viaCond(c *Coro, cond *sync.Cond) {
	cond.Broadcast() // want `sync.Cond operation`
}

// free functions without coroutine context may use native concurrency.
func free(ch chan int) {
	ch <- 1
	close(ch)
}

func (c *Coro) allowed() {
	//simlint:allow virtualtime -- fixture: a justified suppression is honored
	c.ch <- 1
}
