// Package cthreads is a fixture stub: its path base matches the real
// thread package, so *cthreads.Thread parameters mark coroutine
// context in the virtualtime fixture.
package cthreads

type Thread struct{}
