// Package locks is a virtualtime fixture shaped like the predictive
// mutable lock and the NUMA cohort lock: their estimator and cohort
// state are mutated from coroutine context, where the engine's
// single-threaded dispatch is the only legal synchronization — native
// sync or channels would desynchronize virtual time.
package locks

import (
	"sync"

	"virtualtime/cthreads"
)

type mutable struct {
	mu  sync.Mutex
	est int64
}

// estimateUnderMutex guards the hold-time estimate with a native mutex
// from coroutine context.
func (l *mutable) estimateUnderMutex(t *cthreads.Thread) {
	l.mu.Lock() // want `sync.Mutex operation`
	l.est++
	l.mu.Unlock() // want `sync.Mutex operation`
}

// handoffOverChannel passes the cohort lock to a same-node successor
// over a real channel instead of a simulated pass cell.
func handoffOverChannel(t *cthreads.Thread, pass chan int) {
	pass <- 1 // want `channel send`
}

// sampleOnGoroutine probes the monitor on a native goroutine.
func sampleOnGoroutine(t *cthreads.Thread) {
	go probe() // want `go statement`
}

func probe() {}

type mutablePlain struct{ est int64 }

// estimatePlain mutates plain fields: coroutine dispatch is
// single-threaded, so no further synchronization is needed or legal.
func (l *mutablePlain) estimatePlain(t *cthreads.Thread) { l.est++ }

// aggregate runs outside coroutine context (no Thread/Coro in scope),
// where native sync is allowed.
func aggregate(mu *sync.Mutex) {
	mu.Lock()
	mu.Unlock()
}
