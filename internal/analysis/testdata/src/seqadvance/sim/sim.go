// Package sim is a seqadvance fixture with stand-in Engine and Machine
// types carrying the protected field names.
package sim

type Time int64

type Engine struct {
	now              Time
	seq              uint64
	spinFastForwards int64
}

type Machine struct {
	moduleFree []Time
	queueDelay []Time
	accesses   []int64
}

// advanceInline is on the allowlist: writes are legal here.
func (e *Engine) advanceInline(t Time) {
	e.now = t
	e.seq++
}

// fastForwardSpin is on the allowlist too.
func fastForwardSpin(e *Engine, m *Machine, node int) {
	e.spinFastForwards++
	m.queueDelay[node] = 0
}

func hackEngine(e *Engine) {
	e.now = 5 // want `write to Engine.now outside the engine allowlist`
	e.seq++   // want `write to Engine.seq outside the engine allowlist`
}

func hackMachine(m *Machine, i int) {
	m.accesses[i]++     // want `write to Machine.accesses outside the engine allowlist`
	m.moduleFree[i] = 3 // want `write to Machine.moduleFree outside the engine allowlist`
}

func escape(e *Engine) *Time {
	return &e.now // want `Engine.now \(address taken\)`
}

// reads are always legal.
func read(e *Engine) Time { return e.now }

func allowed(e *Engine) {
	//simlint:allow seqadvance -- fixture: a justified suppression is honored
	e.now = 9
}
