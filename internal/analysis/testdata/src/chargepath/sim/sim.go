// Package sim is the chargepath fixture: exported methods on Cell (the
// target type, matched by package base + type name) must charge virtual
// time on every path that mutates the receiver. The Machine stand-in
// supplies the trusted charging primitive.
package sim

type Machine struct{}

func (m *Machine) Advance(n int64) {}

type Cell struct {
	m    *Machine
	v    uint64
	hits int
	tags map[string]bool
}

// Store charges then mutates on its only path: clean.
func (c *Cell) Store(v uint64) {
	c.m.Advance(1)
	c.v = v
}

// Peek is a pure accessor: no mutation, nothing owed.
func (c *Cell) Peek() uint64 { return c.v }

// Bump charges only on the sampled path but mutates on both: the
// (mutated, uncharged) pair survives to the exit join.
func (c *Cell) Bump(sampled bool) { // want `exported method Cell\.Bump mutates simulated state without charging virtual time`
	if sampled {
		c.m.Advance(1)
	}
	c.hits++
}

// Drop mutates through the delete builtin and never charges.
func (c *Cell) Drop(k string) { // want `exported method Cell\.Drop mutates simulated state without charging virtual time`
	delete(c.tags, k)
}

// Add charges through a package-local helper: the charged-on-all-paths
// summary must see through the call.
func (c *Cell) Add(d uint64) {
	c.charge()
	c.v += d
}

func (c *Cell) charge() {
	c.m.Advance(1)
}

// Reset only mutates on the path that also charges; the early return
// mutates nothing and owes nothing.
func (c *Cell) Reset(force bool) {
	if !force {
		return
	}
	c.m.Advance(1)
	c.v = 0
}

// Poke is the documented setup-only escape hatch, suppressed with its
// justification exactly as the real sim.Cell.Poke is.
//
//simlint:allow chargepath -- fixture mirror of the setup-only escape hatch
func (c *Cell) Poke(v uint64) { c.v = v }

// Validate panics on the mutating path instead of returning: panic
// paths are unconstrained (a panicking simulation is dead), so nothing
// is owed.
func (c *Cell) Validate(limit uint64) {
	if c.v > limit {
		c.hits++
		panic("sim: cell over limit")
	}
}
