// Package profile is the fixture stand-in for the real profiler: the
// framebalance analyzer recognizes Push/Pop by the ThreadProf receiver
// type, matched by package-path base and type name.
package profile

type ThreadProf struct{}

func (tp *ThreadProf) Push(now int64, frame string) {}
func (tp *ThreadProf) Pop(now int64, frame string)  {}
