// Positive, suppressed, and clean cases for framebalance.
package a

import "framebalance/profile"

type T struct {
	prof     *profile.ThreadProf
	frameCS  string
	frameOp  string
	frameBad string
}

// leak pops on the fallthrough path but not on the early return: the
// interval at exit is 0..1, which is exactly the class of bug the
// conservation invariant catches only at runtime.
func (t *T) leak(fail bool) {
	if p := t.prof; p != nil {
		p.Push(0, t.frameCS) // want `profile frame t\.frameCS is balanced on some paths out of leak but not all`
	}
	if fail {
		return
	}
	if p := t.prof; p != nil {
		p.Pop(0, t.frameCS)
	}
}

// orphan pushes a frame no code in the package ever pops: consistent on
// every path out of this function, so only the package-level pairing
// check can see it.
func (t *T) orphan() {
	if p := t.prof; p != nil {
		p.Push(0, t.frameBad) // want `profile frame T\.frameBad is pushed but popped nowhere in this package`
	}
}

// handoff is the intentional-asymmetry case: the frame is popped by the
// consumer, and the suppression carries the justification.
func (t *T) handoff(fail bool) {
	p := t.prof
	p.Push(0, t.frameOp) //simlint:allow framebalance -- hand-off: takeover pops this frame on the consumer side
	if fail {
		return
	}
	p.Pop(0, t.frameOp)
}

// takeover is the matching consumer: a consistent net of -1 on every
// path is legal (cross-function protocols balance at a wider scope).
func (t *T) takeover() {
	if p := t.prof; p != nil {
		p.Pop(0, t.frameOp)
	}
}

// clean exercises the CFG shapes that must not confuse the interval
// dataflow: loops, switches with fallthrough, labeled continue, defer,
// and a panic path that exits without popping (panic paths are
// unconstrained: a panicking simulation is dead).
func (t *T) clean(n int, mode int, fail bool) {
	p := t.prof
	defer p.Pop(0, t.frameCS)
	p.Push(0, t.frameCS)

	if fail {
		panic("dead: the frame stays pushed, and that is fine")
	}

outer:
	for i := 0; i < n; i++ {
		p.Push(0, t.frameOp)
		for j := 0; j < i; j++ {
			if j == 3 {
				p.Pop(0, t.frameOp)
				continue outer
			}
		}
		p.Pop(0, t.frameOp)
	}

	switch mode {
	case 0:
		p.Push(0, t.frameOp)
		p.Pop(0, t.frameOp)
		fallthrough
	case 1:
		return
	default:
	}
}
