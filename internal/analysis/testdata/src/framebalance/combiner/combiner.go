// Package combiner mirrors the PR 9 active-monitor bug that motivated
// framebalance: submit pushed its "submit:" frame, but the path that
// failed the combiner election returned without popping, leaking the
// frame and (at runtime) starving the server thread. The analyzer must
// catch the missing pop on the error path statically.
package combiner

import "framebalance/profile"

type Monitor struct {
	prof        *profile.ThreadProf
	frameSubmit string
	pending     []func()
}

// submitBuggy reproduces the bug: the losing-election path returns
// early, skipping the pop.
func (m *Monitor) submitBuggy(body func(), elected bool) {
	if p := m.prof; p != nil {
		p.Push(0, m.frameSubmit) // want `profile frame m\.frameSubmit is balanced on some paths out of submitBuggy but not all`
	}
	m.pending = append(m.pending, body)
	if !elected {
		return // the PR 9 bug: frame never popped on this path
	}
	m.drain()
	if p := m.prof; p != nil {
		p.Pop(0, m.frameSubmit)
	}
}

// submitFixed is the corrected protocol: every path out pops.
func (m *Monitor) submitFixed(body func(), elected bool) {
	if p := m.prof; p != nil {
		p.Push(0, m.frameSubmit)
	}
	m.pending = append(m.pending, body)
	if elected {
		m.drain()
	}
	if p := m.prof; p != nil {
		p.Pop(0, m.frameSubmit)
	}
}

func (m *Monitor) drain() {
	for _, body := range m.pending {
		body()
	}
	m.pending = nil
}
