// Package rand is a fixture stub of math/rand; the walltime analyzer
// flags its import, so only a token surface is needed.
package rand

func Intn(n int) int { return 0 }
