// Package sync is a fixture stub: the virtualtime analyzer identifies
// sync.{Mutex,RWMutex,WaitGroup,Cond} method calls by receiver type, so
// the stub only needs the types and method names.
package sync

type Mutex struct{}

func (m *Mutex) Lock()   {}
func (m *Mutex) Unlock() {}

type RWMutex struct{}

func (m *RWMutex) Lock()    {}
func (m *RWMutex) Unlock()  {}
func (m *RWMutex) RLock()   {}
func (m *RWMutex) RUnlock() {}

type WaitGroup struct{}

func (w *WaitGroup) Add(n int) {}
func (w *WaitGroup) Done()     {}
func (w *WaitGroup) Wait()     {}

type Locker interface {
	Lock()
	Unlock()
}

type Cond struct{ L Locker }

func NewCond(l Locker) *Cond { return &Cond{L: l} }

func (c *Cond) Wait()      {}
func (c *Cond) Signal()    {}
func (c *Cond) Broadcast() {}
