// Package a seeds the -allows audit fixture: one live suppression, one
// stale suppression (nothing is reported at its position when
// directives are ignored), and two malformed directives. TestAllowsAudit
// asserts the classification; the stale seed proves detection works.
package a

import "framebalance/profile"

type T struct {
	prof  *profile.ThreadProf
	frame string
}

// live: framebalance reports the early-return leak here when directives
// are ignored, so the suppression is doing real work.
func (t *T) live(fail bool) {
	t.prof.Push(0, t.frame) //simlint:allow framebalance -- hand-off pops on the consumer side
	if fail {
		return
	}
	t.prof.Pop(0, t.frame)
}

// stale: the body is balanced, the analyzer reports nothing, and the
// suppression silently waits to swallow the next real finding.
func (t *T) stale() {
	t.prof.Push(0, t.frame) //simlint:allow framebalance -- stale: this leak was fixed long ago
	t.prof.Pop(0, t.frame)
}

// malformed: an unknown analyzer name, and a missing reason.
func (t *T) malformed() {
	t.prof.Push(0, t.frame) //simlint:allow nosuchanalyzer -- the analyzer name is wrong
	t.prof.Pop(0, t.frame)  //simlint:allow framebalance
}
