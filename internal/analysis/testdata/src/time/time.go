// Package time is a fixture stub: just enough of the real package's
// surface for the walltime analyzer to resolve time.* references
// without the standard library (analyzer tests run fully offline).
package time

type Duration int64

type Time struct{}

func (t Time) Add(d Duration) Time { return t }

func Now() Time                    { return Time{} }
func Since(t Time) Duration        { return 0 }
func Until(t Time) Duration        { return 0 }
func Sleep(d Duration)             {}
func After(d Duration) <-chan Time { return nil }
func Tick(d Duration) <-chan Time  { return nil }

type Timer struct{ C <-chan Time }

func NewTimer(d Duration) *Timer            { return &Timer{} }
func AfterFunc(d Duration, f func()) *Timer { return &Timer{} }

type Ticker struct{ C <-chan Time }

func NewTicker(d Duration) *Ticker { return &Ticker{} }
