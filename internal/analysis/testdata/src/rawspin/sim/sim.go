// Package sim is a rawspin fixture with stand-ins for the simulated
// cell and spin-context surfaces the analyzer keys on.
package sim

// Cell mimics sim.Cell's polling surface.
type Cell struct{ v int64 }

func (c *Cell) Load() int64 { return c.v }
func (c *Cell) AtomicOr(v int64) int64 {
	old := c.v
	c.v |= v
	return old
}

// Ctx mimics a spin context (Coro / Thread).
type Ctx struct{}

func (x *Ctx) Advance(n int64)              {}
func (x *Ctx) Compute(n int64)              {}
func (x *Ctx) SpinUntil(probe func() bool)  {}
func (x *Ctx) SpinAccrue(iters, cost int64) {}

func condPoll(c *Cell, x *Ctx) {
	for c.Load() == 0 { // want `hand-rolled busy-wait`
		x.Advance(1)
	}
}

func bodyPoll(c *Cell, x *Ctx) {
	for { // want `hand-rolled busy-wait`
		if c.AtomicOr(1) == 0 {
			return
		}
		x.Compute(3)
	}
}

// sanctioned: the loop routes its waiting through a batched-spin entry
// point, so the spin accounting already sees it.
func sanctioned(c *Cell, x *Ctx) {
	for c.Load() == 0 {
		x.SpinUntil(func() bool { return c.Load() != 0 })
		x.Advance(1)
	}
}

// pollOnly never pauses: not the busy-wait shape this analyzer flags.
func pollOnly(c *Cell) int64 {
	var last int64
	for last = c.Load(); last == 0; last = c.Load() {
		last++
	}
	return last
}

// nested: the inner busy-wait is reported on its own; the outer loop
// only sees an opaque call and stays clean.
func nested(c *Cell, x *Ctx) {
	for i := 0; i < 3; i++ {
		fn := func() {
			for c.Load() == 0 { // want `hand-rolled busy-wait`
				x.Advance(1)
			}
		}
		fn()
	}
}

func allowed(c *Cell, x *Ctx) {
	//simlint:allow rawspin -- fixture: a justified suppression is honored
	for c.Load() == 0 {
		x.Advance(1)
	}
}
