// Package locks is a rawspin fixture shaped like the predictive mutable
// lock and the NUMA cohort lock: both wait on lock words in rounds
// (re-predicted deadlines, local-then-global levels), and every round's
// waiting must still route through SpinUntil so spin batching and the
// futile-probe accounting see it.
package locks

// Cell mimics sim.Cell's polling surface.
type Cell struct{ v int64 }

func (c *Cell) Load() int64 { return c.v }
func (c *Cell) AtomicOr(v int64) int64 {
	old := c.v
	c.v |= v
	return old
}

// Ctx mimics a spin context (Coro / Thread).
type Ctx struct{}

func (x *Ctx) Advance(n int64)                  {}
func (x *Ctx) Compute(n int64)                  {}
func (x *Ctx) SpinUntil(probe func() bool) bool { return true }

// mutableRepredict hand-rolls the predictive wait loop: probing the lock
// word with a pause sized by the re-predicted deadline bypasses the
// batched-spin accounting entirely.
func mutableRepredict(flag *Cell, x *Ctx) {
	pred := int64(10)
	for flag.AtomicOr(1) != 0 { // want `hand-rolled busy-wait`
		x.Compute(pred)
		pred *= 2
	}
}

// mutableRounds is the sanctioned shape: each predicted spin round is a
// bounded SpinUntil; only the decision logic lives in the outer loop.
func mutableRounds(flag *Cell, x *Ctx) {
	for round := 0; round < 3; round++ {
		if x.SpinUntil(func() bool { return flag.AtomicOr(1) == 0 }) {
			return
		}
	}
}

// cohortTwoLevel hand-rolls both levels of the cohort acquisition: the
// node-local flag and the global word each get their own raw busy-wait.
func cohortTwoLevel(local, global *Cell, x *Ctx) {
	for local.AtomicOr(1) != 0 { // want `hand-rolled busy-wait`
		x.Advance(2)
	}
	for global.AtomicOr(1) != 0 { // want `hand-rolled busy-wait`
		x.Advance(2)
	}
}

// cohortSanctioned runs both levels through SpinUntil; the pass-flag
// check between them is a plain read, not a wait.
func cohortSanctioned(local, global, pass *Cell, x *Ctx) {
	x.SpinUntil(func() bool { return local.AtomicOr(1) == 0 })
	if pass.Load() != 0 {
		return
	}
	x.SpinUntil(func() bool { return global.AtomicOr(1) == 0 })
}
