// Package notsim is outside the simulated-package set: busy-wait
// shapes here are not simlint's business.
package notsim

type Cell struct{ v int64 }

func (c *Cell) Load() int64 { return c.v }

type Ctx struct{}

func (x *Ctx) Advance(n int64) {}

func freeSpin(c *Cell, x *Ctx) {
	for c.Load() == 0 {
		x.Advance(1)
	}
}
