// Package sim is a crossshard fixture with stand-in Sharded, Machine,
// and Engine types carrying the shard-owned field names.
package sim

type Time int64

type message struct {
	when, at Time
	fn       func()
}

type edgeStat struct {
	Delivered uint64
	Last      Time
}

type Engine struct {
	rank int
}

type Machine struct {
	sharded *Sharded
	rank    int
	eng     *Engine
}

type Sharded struct {
	shards    []*Machine
	bounds    []int
	owner     []int
	outbox    [][][]message
	edges     [][]edgeStat
	lookahead Time
	workers   int
	ran       bool
}

// NewSharded is on the allowlist: partition construction writes freely.
func NewSharded(ms []*Machine) *Sharded {
	sh := &Sharded{}
	sh.shards = ms
	sh.bounds = make([]int, len(ms)+1)
	sh.owner = make([]int, 8)
	for i, m := range ms {
		m.sharded = sh
		m.rank = i
		m.eng.rank = i
	}
	return sh
}

// send is on the allowlist: the shard-local outbox append.
func (s *Sharded) send(src, dst int, m message) {
	s.outbox[src][dst] = append(s.outbox[src][dst], m)
}

// deliver is on the allowlist: the window-barrier mailbox merge.
func (s *Sharded) deliver() {
	for src := range s.outbox {
		for dst := range s.outbox[src] {
			st := &s.edges[src][dst]
			st.Delivered++
			s.outbox[src][dst] = s.outbox[src][dst][:0]
		}
	}
}

// Run is on the allowlist: the run driver owns the latch.
func (s *Sharded) Run() {
	s.ran = true
}

func hackMailbox(s *Sharded, m message) {
	s.outbox[0][1] = append(s.outbox[0][1], m) // want `write to Sharded.outbox outside the shard coordinator allowlist`
	s.edges[0][1].Delivered++                  // want `write to Sharded.edges outside the shard coordinator allowlist`
}

func hackPartition(s *Sharded) {
	s.owner[3] = 0  // want `write to Sharded.owner outside the shard coordinator allowlist`
	s.bounds[1] = 2 // want `write to Sharded.bounds outside the shard coordinator allowlist`
	s.ran = false   // want `write to Sharded.ran outside the shard coordinator allowlist`
}

func hackLinks(m *Machine, e *Engine) {
	m.sharded = nil // want `write to Machine.sharded outside the shard coordinator allowlist`
	m.rank = 2      // want `write to Machine.rank outside the shard coordinator allowlist`
	e.rank = 0      // want `write to Engine.rank outside the shard coordinator allowlist`
}

func escape(s *Sharded) *edgeStat {
	return &s.edges[0][0] // want `Sharded.edges \(address taken\)`
}

// reads are always legal.
func read(s *Sharded) int { return s.owner[0] }

func allowed(s *Sharded) {
	//simlint:allow crossshard -- fixture: a justified suppression is honored
	s.ran = false
}
