// Package cthreads is a crossshard fixture with stand-in Cluster and
// System types carrying the shard-linkage field names.
package cthreads

type System struct {
	cluster *Cluster
}

type Cluster struct {
	systems []*System
}

// NewCluster is on the allowlist: construction wires the shard table
// and back-links.
func NewCluster(n int) *Cluster {
	cl := &Cluster{systems: make([]*System, n)}
	for i := range cl.systems {
		sys := &System{}
		sys.cluster = cl
		cl.systems[i] = sys
	}
	return cl
}

func hackTable(cl *Cluster, sys *System) {
	cl.systems[0] = sys // want `write to Cluster.systems outside the shard coordinator allowlist`
	sys.cluster = nil   // want `write to System.cluster outside the shard coordinator allowlist`
}

// reads are always legal.
func read(cl *Cluster) *System { return cl.systems[0] }
