package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"repro/internal/analysis/framework"
)

// Lockpair enforces the two path properties the adaptive locks depend
// on. First, pairing: a lock-kind Lock/LockHint/Acquire must reach a
// matching Unlock/Release on every path out of the function, or on
// none — the lock protocol methods themselves (Lock, Unlock, ...) are
// exempt from the held-at-return check because carrying the lock across
// the call boundary is their contract. Second, ordering: an
// interprocedural (package-local) lock-order graph records which locks
// are acquired while which others are held; a cycle in that graph is a
// potential deadlock of exactly the shape PR 9's combiner starvation
// took, reported statically.
//
// Defer is modeled per check: the pairing check credits a deferred
// release at the defer site (a deferred call runs on every exit after
// that point, so this is exact for the all-paths argument), while the
// order analysis treats the lock as held until function exit — the
// standard `mu.Lock(); defer mu.Unlock()` idiom must still contribute
// held->acquired edges for everything acquired in the body.
var Lockpair = &framework.Analyzer{
	Name: "lockpair",
	Doc: "report lock acquisitions that are not released on every path, " +
		"and lock-order cycles that can deadlock",
	Run: runLockpair,
}

var acquireDelta = map[string]int{
	"Lock": 1, "LockHint": 1, "Acquire": 1,
	"Unlock": -1, "Release": -1,
}

// protocolMethods are the lock-kind entry points whose own bodies
// legitimately end holding (or having released) a lock they did not
// balance locally: delegation wrappers and hand-off protocols.
var protocolMethods = map[string]bool{
	"Lock": true, "LockHint": true, "TryLock": true, "Acquire": true,
	"Unlock": true, "Release": true,
}

// lockLike reports whether t is (a pointer to) a named type — concrete
// or interface — defined in a package whose import path ends in "locks".
func lockLike(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj != nil && obj.Pkg() != nil &&
		framework.PathBase(obj.Pkg().Path()) == "locks"
}

// lockEvent classifies a call as an acquire (+1) or release (-1) of a
// lock-like receiver, under alias resolution.
func lockEvent(pass *framework.Pass, aliases aliasMap, call *ast.CallExpr) (key string, delta int) {
	delta = acquireDelta[calleeName(call)]
	if delta == 0 {
		return "", 0
	}
	recv := callReceiver(call)
	if recv == nil || !lockLike(aliases.exprType(pass.TypesInfo, recv)) {
		return "", 0
	}
	return aliases.exprKey(pass.TypesInfo, recv), delta
}

// lockNode names a lock for the package-wide order graph and
// acquire/release pairing, via type-qualified keys ("Monitor.mu") so
// the same lock is one node across every method that touches it.
func lockNode(pass *framework.Pass, aliases aliasMap, recv ast.Expr) string {
	return aliases.qualifiedKey(pass.TypesInfo, recv)
}

// lockFn is one function body plus the package-local facts lockpair
// needs about it.
type lockFn struct {
	unit     funcUnit
	aliases  aliasMap
	obj      *types.Func // nil for function literals
	acquires map[string]bool
}

func runLockpair(pass *framework.Pass) error {
	// Package-wide first sightings of each lock key as an acquire and as
	// a release. Protocol methods are exempt from the per-function
	// held-at-return check, so a release deleted from a delegating
	// Unlock leaves every function individually legal; requiring each
	// key to have both sides somewhere in the package catches it.
	acquired, released := map[string]token.Pos{}, map[string]token.Pos{}

	var fns []*lockFn
	for _, f := range pass.Files {
		if pass.IsTestFile(f) {
			continue
		}
		for _, fn := range functionsIn(f) {
			lf := &lockFn{
				unit:     fn,
				aliases:  collectAliases(pass.TypesInfo, fn.body),
				acquires: map[string]bool{},
			}
			if fn.decl != nil {
				lf.obj, _ = pass.TypesInfo.Defs[fn.decl.Name].(*types.Func)
			}
			scanCalls(fn.body, func(call *ast.CallExpr) {
				_, delta := lockEvent(pass, lf.aliases, call)
				if delta == 0 {
					return
				}
				node := lockNode(pass, lf.aliases, callReceiver(call))
				if delta > 0 {
					lf.acquires[node] = true
				}
				side := acquired
				if delta < 0 {
					side = released
				}
				if _, seen := side[node]; !seen {
					side[node] = call.Pos()
				}
			})
			fns = append(fns, lf)
		}
	}

	for _, lf := range fns {
		checkLockBalance(pass, lf)
	}
	for _, k := range sortedKeys(keySet(acquired)) {
		if _, ok := released[k]; !ok {
			pass.Reportf(acquired[k],
				"lock %s is acquired but released nowhere in this package", k)
		}
	}
	for _, k := range sortedKeys(keySet(released)) {
		if _, ok := acquired[k]; !ok {
			pass.Reportf(released[k],
				"lock %s is released but acquired nowhere in this package", k)
		}
	}

	// May-acquire summaries, closed transitively over package-local
	// calls so order edges see through helpers.
	summaries := map[*types.Func]map[string]bool{}
	for _, lf := range fns {
		if lf.obj != nil {
			summaries[lf.obj] = lf.acquires
		}
	}
	for changed := true; changed; {
		changed = false
		for _, lf := range fns {
			if lf.obj == nil {
				continue
			}
			scanCalls(lf.unit.body, func(call *ast.CallExpr) {
				callee := pkgFuncObj(pass.TypesInfo, call)
				if callee == nil || callee == lf.obj {
					return
				}
				for _, k := range sortedKeys(summaries[callee]) {
					if !lf.acquires[k] {
						lf.acquires[k] = true
						changed = true
					}
				}
			})
		}
	}

	edges := lockOrderEdges(pass, fns, summaries)
	reportLockCycles(pass, edges)
	return nil
}

// checkLockBalance runs the interval dataflow for one function and
// reports acquisitions that are path-inconsistent or never released.
func checkLockBalance(pass *framework.Pass, lf *lockFn) {
	firstPos := map[string]token.Pos{}
	scanCalls(lf.unit.body, func(call *ast.CallExpr) {
		if key, delta := lockEvent(pass, lf.aliases, call); delta != 0 {
			if _, seen := firstPos[key]; !seen {
				firstPos[key] = call.Pos()
			}
		}
	})
	if len(firstPos) == 0 {
		return
	}

	cfg := framework.BuildCFG(lf.unit.body, framework.CFGOptions{})
	res := framework.Solve(cfg, &framework.FlowProblem{
		Entry: balanceFact{},
		Transfer: func(b *framework.Block, in framework.Fact) framework.Fact {
			f := in.(balanceFact)
			out, cloned := f, false
			for _, n := range b.Nodes {
				scanCalls(n, func(call *ast.CallExpr) {
					key, delta := lockEvent(pass, lf.aliases, call)
					if delta == 0 {
						return
					}
					if !cloned {
						out, cloned = f.clone(), true
					}
					out[key] = out.get(key).add(delta)
				})
			}
			return out
		},
		Join:  joinBalance,
		Equal: equalBalance,
	})

	exit := res.ExitFact()
	if exit == nil {
		return // no normal exit
	}
	protocol := lf.unit.decl != nil && lf.unit.decl.Recv != nil &&
		protocolMethods[lf.unit.decl.Name.Name] &&
		len(lf.unit.decl.Recv.List) == 1 &&
		lockLike(pass.TypesInfo.Types[lf.unit.decl.Recv.List[0].Type].Type)

	keys := make([]string, 0, len(firstPos))
	for k := range firstPos {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		iv := exit.(balanceFact).get(k)
		switch {
		case iv.lo != iv.hi:
			pass.Reportf(firstPos[k],
				"lock %s is released on some paths out of %s but not all (net %s at return)",
				k, lf.unit.name, rangeString(iv))
		case iv.lo > 0 && !protocol:
			pass.Reportf(firstPos[k],
				"lock %s is acquired in %s but never released on any path",
				k, lf.unit.name)
		}
	}
}

// lockEdge is one observed ordering: to was acquired while from was
// held.
type lockEdge struct{ from, to string }

// lockOrderEdges replays each function's hold sets over the solved
// dataflow and records every held→acquired pair, including acquisitions
// made indirectly through package-local callees (via summaries).
func lockOrderEdges(pass *framework.Pass, fns []*lockFn, summaries map[*types.Func]map[string]bool) map[lockEdge]token.Pos {
	edges := map[lockEdge]token.Pos{}
	record := func(held map[string]bool, to string, pos token.Pos) {
		for _, h := range sortedKeys(held) {
			if h == to {
				continue
			}
			e := lockEdge{h, to}
			if _, ok := edges[e]; !ok {
				edges[e] = pos
			}
		}
	}

	for _, lf := range fns {
		hasLocks := len(lf.acquires) > 0
		scanCalls(lf.unit.body, func(call *ast.CallExpr) {
			if _, delta := lockEvent(pass, lf.aliases, call); delta != 0 {
				hasLocks = true
			}
		})
		if !hasLocks {
			continue
		}

		cfg := framework.BuildCFG(lf.unit.body, framework.CFGOptions{})
		transfer := func(b *framework.Block, in framework.Fact, rec bool) framework.Fact {
			held := in.(holdFact).clone()
			for _, n := range b.Nodes {
				if _, ok := n.(*ast.DeferStmt); ok {
					// A deferred Unlock/Release runs at function exit,
					// not at the defer site: for order-edge purposes the
					// lock stays held through the rest of the body, so
					// an acquisition after `defer mu.Unlock()` still
					// records the mu -> acquired edge. (The balance
					// check keeps defer-at-site, which is exact for its
					// all-paths argument; see DESIGN.md.)
					continue
				}
				scanCalls(n, func(call *ast.CallExpr) {
					if _, delta := lockEvent(pass, lf.aliases, call); delta != 0 {
						node := lockNode(pass, lf.aliases, callReceiver(call))
						if delta > 0 {
							if rec {
								record(held, node, call.Pos())
							}
							held[node] = true
						} else {
							delete(held, node)
						}
						// Fall through: a lock-protocol callee can itself
						// acquire further locks (a cohort Lock taking its
						// NUMA-local lock), and those transitive
						// acquisitions must be ordered against the held
						// set too.
					}
					callee := pkgFuncObj(pass.TypesInfo, call)
					if callee == nil {
						return
					}
					if rec {
						for _, k := range sortedKeys(summaries[callee]) {
							if !held[k] {
								record(held, k, call.Pos())
							}
						}
					}
				})
			}
			return held
		}
		res := framework.Solve(cfg, &framework.FlowProblem{
			Entry: holdFact{},
			Transfer: func(b *framework.Block, in framework.Fact) framework.Fact {
				return transfer(b, in, false)
			},
			Join:  joinHold,
			Equal: equalHold,
		})
		// Deterministic edge replay in block-index order over the
		// fixpoint in-facts.
		for _, b := range cfg.Blocks {
			if in := res.In[b.Index]; in != nil {
				transfer(b, in, true)
			}
		}
	}
	return edges
}

// reportLockCycles finds strongly connected components of the order
// graph and reports each cycle once, anchored at its earliest witness.
func reportLockCycles(pass *framework.Pass, edges map[lockEdge]token.Pos) {
	adj := map[string][]string{}
	nodes := map[string]bool{}
	for e := range edges {
		adj[e.from] = append(adj[e.from], e.to)
		nodes[e.from], nodes[e.to] = true, true
	}
	adjKeys := make([]string, 0, len(adj))
	for k := range adj {
		adjKeys = append(adjKeys, k)
	}
	sort.Strings(adjKeys)
	for _, k := range adjKeys {
		sort.Strings(adj[k])
	}

	for _, scc := range tarjanSCCs(sortedKeys(nodes), adj) {
		if len(scc) < 2 {
			continue // single node, and self-edges are never recorded
		}
		sort.Strings(scc)
		// Earliest witnessing edge inside the component anchors the
		// report.
		var witnesses []int
		for e, p := range edges {
			if inSet(scc, e.from) && inSet(scc, e.to) {
				witnesses = append(witnesses, int(p))
			}
		}
		sort.Ints(witnesses)
		pos := token.Pos(witnesses[0])
		pass.Reportf(pos,
			"lock-order cycle %s can deadlock: acquisition order differs between code paths",
			strings.Join(append(scc, scc[0]), " -> "))
	}
}

func inSet(sorted []string, s string) bool {
	i := sort.SearchStrings(sorted, s)
	return i < len(sorted) && sorted[i] == s
}

// holdFact is the may-hold lock set.
type holdFact map[string]bool

func (h holdFact) clone() holdFact {
	g := make(holdFact, len(h))
	for k := range h {
		g[k] = true
	}
	return g
}

func joinHold(a, b framework.Fact) framework.Fact {
	ha, hb := a.(holdFact), b.(holdFact)
	out := ha.clone()
	for k := range hb {
		out[k] = true
	}
	return out
}

func equalHold(a, b framework.Fact) bool {
	ha, hb := a.(holdFact), b.(holdFact)
	if len(ha) != len(hb) {
		return false
	}
	for k := range ha {
		if !hb[k] {
			return false
		}
	}
	return true
}

func sortedKeys(m map[string]bool) []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}

// tarjanSCCs returns the strongly connected components of the graph in
// a deterministic order (roots visited in sorted order, sorted
// adjacency).
func tarjanSCCs(nodes []string, adj map[string][]string) [][]string {
	index := map[string]int{}
	low := map[string]int{}
	onStack := map[string]bool{}
	var stack []string
	var sccs [][]string
	next := 0

	var strongconnect func(v string)
	strongconnect = func(v string) {
		index[v], low[v] = next, next
		next++
		stack = append(stack, v)
		onStack[v] = true
		for _, w := range adj[v] {
			if _, seen := index[w]; !seen {
				strongconnect(w)
				low[v] = min(low[v], low[w])
			} else if onStack[w] {
				low[v] = min(low[v], index[w])
			}
		}
		if low[v] == index[v] {
			var scc []string
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				scc = append(scc, w)
				if w == v {
					break
				}
			}
			sccs = append(sccs, scc)
		}
	}
	for _, v := range nodes {
		if _, seen := index[v]; !seen {
			strongconnect(v)
		}
	}
	return sccs
}
