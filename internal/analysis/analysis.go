// Package analysis implements simlint: a suite of static analyzers that
// enforce the simulator's determinism and spin-batching invariants at
// the source level, before any differential fuzz run can catch a
// violation dynamically. See DESIGN.md "Statically enforced invariants"
// for the invariant each analyzer guards.
//
// A finding can be suppressed — with a mandatory reason — by a comment
// on the offending line or the line directly above it:
//
//	//simlint:allow <analyzer> -- <reason>
package analysis

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis/framework"
)

// All returns the full simlint suite in reporting order.
func All() []*framework.Analyzer {
	return []*framework.Analyzer{
		Walltime,
		Rawspin,
		Maporder,
		Virtualtime,
		Seqadvance,
		Crossshard,
		Framebalance,
		Lockpair,
		Chargepath,
	}
}

// simulatedPkgs names the packages whose code runs (or models code that
// runs) under the virtual clock. Matching is by final import-path
// element so the rules apply equally to the real tree
// ("repro/internal/sim") and to analyzer test fixtures ("walltime/sim").
var simulatedPkgs = map[string]bool{
	"sim":          true,
	"cthreads":     true,
	"locks":        true,
	"active":       true,
	"core":         true,
	"monitor":      true,
	"tsp":          true,
	"sor":          true,
	"workload":     true,
	"adaptivesync": true,
}

// simulatedPackage reports whether the import path denotes a simulated
// package.
func simulatedPackage(path string) bool {
	return simulatedPkgs[framework.PathBase(path)]
}

// namedFrom reports whether t is (a pointer to) the named type
// pkgBase.name, where pkgBase is compared against the final element of
// the defining package's import path.
func namedFrom(t types.Type, pkgBase, name string) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	if obj == nil || obj.Pkg() == nil {
		return false
	}
	return obj.Name() == name && framework.PathBase(obj.Pkg().Path()) == pkgBase
}

// pkgFuncObj resolves a call expression to the *types.Func it invokes,
// or nil for builtins, conversions, and indirect calls.
func pkgFuncObj(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// calleeName returns the bare name a call expression invokes: the
// selector name for method/package calls, the identifier otherwise.
func calleeName(call *ast.CallExpr) string {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		return fun.Sel.Name
	}
	return ""
}
