package analysis

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis/framework"
)

// Maporder flags `range` statements over maps whose body observably
// depends on iteration order: appending to an outer slice that is never
// sorted afterwards, assigning to outer variables, sends, or
// statement-position calls (which may emit events or mutate engine and
// metric state). Go randomizes map iteration order per run, so any such
// loop breaks byte-identical replays. Order-independent bodies stay
// legal: writes keyed by the loop variables (out[k] = v), commutative
// integer accumulation (n++, sum += v), and the collect-keys-then-sort
// idiom (append to a slice that is passed to sort/slices before use).
// Test files are exempt.
var Maporder = &framework.Analyzer{
	Name: "maporder",
	Doc:  "flag map iteration whose body depends on iteration order",
	Run:  runMaporder,
}

func runMaporder(pass *framework.Pass) error {
	for _, f := range pass.Files {
		if pass.IsTestFile(f) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				rng, ok := n.(*ast.RangeStmt)
				if !ok {
					return true
				}
				if t := pass.TypesInfo.TypeOf(rng.X); t == nil {
					return true
				} else if _, isMap := t.Underlying().(*types.Map); !isMap {
					return true
				}
				checkMapRange(pass, fd.Body, rng)
				return true
			})
		}
	}
	return nil
}

// mapRangeOp is one order-dependent operation found in a map-range body.
type mapRangeOp struct {
	pos     token.Pos
	what    string
	collect types.Object // non-nil: append to this outer slice (sortable)
}

func checkMapRange(pass *framework.Pass, funcBody *ast.BlockStmt, rng *ast.RangeStmt) {
	info := pass.TypesInfo
	loopVars := make(map[types.Object]bool)
	for _, e := range []ast.Expr{rng.Key, rng.Value} {
		if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
			if obj := info.Defs[id]; obj != nil {
				loopVars[obj] = true
			}
			if obj := info.Uses[id]; obj != nil {
				loopVars[obj] = true // `k, v = range m` over pre-declared vars
			}
		}
	}

	insideLoop := func(obj types.Object) bool {
		return obj != nil && rng.Pos() <= obj.Pos() && obj.Pos() < rng.End()
	}
	usesLoopVar := func(e ast.Expr) bool {
		found := false
		ast.Inspect(e, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok && loopVars[info.Uses[id]] {
				found = true
			}
			return !found
		})
		return found
	}
	// baseObj resolves the leftmost identifier of an lvalue/receiver
	// chain (x in x.f[i].g).
	var baseObj func(e ast.Expr) types.Object
	baseObj = func(e ast.Expr) types.Object {
		switch e := ast.Unparen(e).(type) {
		case *ast.Ident:
			if o := info.Uses[e]; o != nil {
				return o
			}
			return info.Defs[e]
		case *ast.SelectorExpr:
			return baseObj(e.X)
		case *ast.IndexExpr:
			return baseObj(e.X)
		case *ast.StarExpr:
			return baseObj(e.X)
		}
		return nil
	}
	isInteger := func(e ast.Expr) bool {
		t := info.TypeOf(e)
		if t == nil {
			return false
		}
		b, ok := t.Underlying().(*types.Basic)
		return ok && b.Info()&types.IsInteger != 0
	}

	var ops []mapRangeOp
	addOp := func(pos token.Pos, what string) { ops = append(ops, mapRangeOp{pos: pos, what: what}) }

	checkAssignTarget := func(lhs ast.Expr, tok token.Token, rhs ast.Expr) {
		lhs = ast.Unparen(lhs)
		if id, ok := lhs.(*ast.Ident); ok && id.Name == "_" {
			return
		}
		if usesLoopVar(lhs) {
			return // keyed write: out[k] = v lands on the same key either way
		}
		obj := baseObj(lhs)
		if obj == nil || insideLoop(obj) {
			return // iteration-local state
		}
		switch tok {
		case token.ASSIGN, token.DEFINE:
			if call, ok := ast.Unparen(rhs).(*ast.CallExpr); ok {
				if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "append" && len(call.Args) > 0 {
					if tgt, ok := ast.Unparen(call.Args[0]).(*ast.Ident); ok && info.Uses[tgt] == obj {
						ops = append(ops, mapRangeOp{pos: lhs.Pos(), what: "append to outer slice", collect: obj})
						return
					}
				}
			}
			addOp(lhs.Pos(), "assignment to outer "+obj.Name())
		case token.ADD_ASSIGN, token.SUB_ASSIGN, token.OR_ASSIGN, token.AND_ASSIGN,
			token.XOR_ASSIGN, token.MUL_ASSIGN:
			if !isInteger(lhs) {
				addOp(lhs.Pos(), "non-integer accumulation into outer "+obj.Name())
			}
		default:
			addOp(lhs.Pos(), "update of outer "+obj.Name())
		}
	}

	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.RangeStmt:
			if n != rng {
				if t := info.TypeOf(n.X); t != nil {
					if _, isMap := t.Underlying().(*types.Map); isMap {
						return false // nested map range is reported on its own
					}
				}
			}
		case *ast.AssignStmt:
			if n.Tok == token.DEFINE {
				return true
			}
			for i, lhs := range n.Lhs {
				var rhs ast.Expr
				if len(n.Rhs) == len(n.Lhs) {
					rhs = n.Rhs[i]
				} else if len(n.Rhs) == 1 {
					rhs = n.Rhs[0]
				}
				checkAssignTarget(lhs, n.Tok, rhs)
			}
		case *ast.IncDecStmt:
			if usesLoopVar(n.X) {
				return true
			}
			obj := baseObj(n.X)
			if obj == nil || insideLoop(obj) {
				return true
			}
			if !isInteger(n.X) {
				addOp(n.Pos(), "non-integer ++/-- on outer "+obj.Name())
			}
		case *ast.ExprStmt:
			call, ok := n.X.(*ast.CallExpr)
			if !ok {
				return true
			}
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "delete" && len(call.Args) == 2 {
				// delete(m, k) of the current key from the ranged map is the
				// sanctioned self-clearing idiom.
				if usesLoopVar(call.Args[1]) {
					return true
				}
			}
			if recv := baseObj(call.Fun); recv != nil && insideLoop(recv) {
				return true // call on iteration-local state
			}
			addOp(n.Pos(), "side-effecting call "+calleeName(call))
		case *ast.SendStmt:
			addOp(n.Pos(), "channel send")
		case *ast.GoStmt:
			addOp(n.Pos(), "goroutine launch")
		case *ast.DeferStmt:
			addOp(n.Pos(), "defer")
		}
		return true
	})

	if len(ops) == 0 {
		return
	}

	// Collect-then-sort exemption: every order-dependent op is an append
	// to an outer slice, and each such slice is passed to sort/slices
	// after the loop.
	allCollect := true
	targets := make(map[types.Object]bool)
	for _, op := range ops {
		if op.collect == nil {
			allCollect = false
			break
		}
		targets[op.collect] = true
	}
	if allCollect {
		sorted := make(map[types.Object]bool)
		ast.Inspect(funcBody, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || call.Pos() < rng.End() {
				return true
			}
			fn := pkgFuncObj(info, call)
			if fn == nil || fn.Pkg() == nil {
				return true
			}
			if p := fn.Pkg().Path(); p != "sort" && p != "slices" {
				return true
			}
			for _, arg := range call.Args {
				if o := baseObj(arg); o != nil && targets[o] {
					sorted[o] = true
				}
			}
			return true
		})
		// sorted only ever gains keys from targets, so equal sizes means
		// every collected slice is sorted after the loop.
		if len(sorted) == len(targets) {
			return
		}
	}

	pass.Reportf(rng.For,
		"map iteration with order-dependent body (%s): collect and sort the keys first so runs replay byte-identically", ops[0].what)
}
