package analysis

import (
	"go/ast"

	"repro/internal/analysis/framework"
)

// rawspinPolls are call names that read (or read-modify-write) shared
// simulated or atomic state: a loop re-evaluating one of these is
// polling. Probe covers sim.SpinSpec-style predicate closures.
var rawspinPolls = map[string]bool{
	"Load":           true,
	"Peek":           true,
	"AtomicOr":       true,
	"AtomicAdd":      true,
	"CompareAndSwap": true,
	"Swap":           true,
	"Probe":          true,
}

// rawspinPauses are call names that burn time between probes — the
// tell-tale busy-wait pause.
var rawspinPauses = map[string]bool{
	"Advance": true,
	"Sleep":   true,
	"Compute": true,
	"Gosched": true,
}

// rawspinSanctioned are the batched-spin entry points: a loop that
// routes its waiting through them is already visible to the spin
// accounting and is not a raw busy-wait.
var rawspinSanctioned = map[string]bool{
	"SpinUntil":    true,
	"SpinAccrue":   true,
	"SpinBoundary": true,
}

// Rawspin flags for-loops in simulated packages that busy-wait by hand:
// polling a sim.Cell / atomic / probe inside the loop with an explicit
// pause, instead of describing the loop as a sim.SpinSpec and running
// it through Coro.SpinUntil / Thread.SpinUntil. Hand-rolled busy-waits
// bypass the batched-spin accounting (SpinIters, futile-probe charges)
// and silently disable the contention-epoch fast-forward, so new ones
// must not appear. Test files are exempt.
var Rawspin = &framework.Analyzer{
	Name: "rawspin",
	Doc:  "flag hand-rolled busy-wait loops that bypass Coro.SpinUntil spin batching",
	Run:  runRawspin,
}

func runRawspin(pass *framework.Pass) error {
	if !simulatedPackage(pass.Path) {
		return nil
	}
	for _, f := range pass.Files {
		if pass.IsTestFile(f) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			loop, ok := n.(*ast.ForStmt)
			if !ok {
				return true
			}
			checkRawspinLoop(pass, loop)
			return true
		})
	}
	return nil
}

// checkRawspinLoop classifies the calls made directly by one for-loop.
// Nested loops and function literals are excluded — they are separate
// contexts and any busy-wait inside them is reported on its own.
func checkRawspinLoop(pass *framework.Pass, loop *ast.ForStmt) {
	var polls, pauses, sanctioned bool
	scan := func(root ast.Node, top ast.Node) {
		ast.Inspect(root, func(n ast.Node) bool {
			if n != top {
				switch n.(type) {
				case *ast.ForStmt, *ast.RangeStmt, *ast.FuncLit:
					return false
				}
			}
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			name := calleeName(call)
			switch {
			case rawspinSanctioned[name]:
				sanctioned = true
			case rawspinPolls[name]:
				polls = true
			case rawspinPauses[name]:
				pauses = true
			}
			return true
		})
	}
	if loop.Cond != nil {
		scan(loop.Cond, loop.Cond)
	}
	scan(loop.Body, loop.Body)
	if polls && pauses && !sanctioned {
		pass.Reportf(loop.For,
			"hand-rolled busy-wait: loop polls shared state with an explicit pause; express it as a sim.SpinSpec and run it through Coro.SpinUntil/Thread.SpinUntil so spin batching accounts for it")
	}
}
