package analysis

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis/framework"
)

// syncTypes are the native synchronization types whose blocking couples
// goroutines to the Go scheduler instead of the event engine.
var syncTypes = map[string]bool{
	"Mutex":     true,
	"RWMutex":   true,
	"WaitGroup": true,
	"Cond":      true,
}

// Virtualtime forbids native concurrency — `go` statements, channel
// operations, and sync.{Mutex,RWMutex,WaitGroup,Cond} — inside
// coroutine-context functions: any function whose receiver or
// parameters carry a *sim.Coro or *cthreads.Thread. Such code runs
// single-threaded under the engine's dispatch; blocking on a real
// channel or mutex there stalls the whole simulation or, worse, lets a
// second goroutine mutate simulated state concurrently, desynchronizing
// virtual time. The engine's own dispatch plumbing is the one place
// channels are legal, and carries //simlint:allow annotations. Test
// files are exempt.
var Virtualtime = &framework.Analyzer{
	Name: "virtualtime",
	Doc:  "forbid native go/chan/sync operations in coroutine-context functions",
	Run:  runVirtualtime,
}

func runVirtualtime(pass *framework.Pass) error {
	for _, f := range pass.Files {
		if pass.IsTestFile(f) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !coroContext(pass, fd) {
				continue
			}
			checkVirtualtimeBody(pass, fd)
		}
	}
	return nil
}

// coroContext reports whether fd's receiver or parameters include a
// *sim.Coro or *cthreads.Thread (by package-path base, so fixtures
// match too).
func coroContext(pass *framework.Pass, fd *ast.FuncDecl) bool {
	fields := []*ast.FieldList{fd.Recv, fd.Type.Params}
	for _, fl := range fields {
		if fl == nil {
			continue
		}
		for _, field := range fl.List {
			t := pass.TypesInfo.TypeOf(field.Type)
			if t == nil {
				continue
			}
			if namedFrom(t, "sim", "Coro") || namedFrom(t, "cthreads", "Thread") {
				return true
			}
		}
	}
	return false
}

func checkVirtualtimeBody(pass *framework.Pass, fd *ast.FuncDecl) {
	info := pass.TypesInfo
	name := fd.Name.Name
	report := func(pos token.Pos, what string) {
		pass.Reportf(pos,
			"%s inside coroutine-context function %s: native concurrency desynchronizes the event engine; use Coro.Sleep/Park/Unpark or cthreads primitives", what, name)
	}
	isChan := func(e ast.Expr) bool {
		t := info.TypeOf(e)
		if t == nil {
			return false
		}
		_, ok := t.Underlying().(*types.Chan)
		return ok
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			report(n.Pos(), "go statement")
		case *ast.SendStmt:
			report(n.Pos(), "channel send")
		case *ast.UnaryExpr:
			if n.Op.String() == "<-" {
				report(n.Pos(), "channel receive")
			}
		case *ast.SelectStmt:
			report(n.Pos(), "select statement")
		case *ast.RangeStmt:
			if isChan(n.X) {
				report(n.Pos(), "range over channel")
			}
		case *ast.CallExpr:
			switch fun := ast.Unparen(n.Fun).(type) {
			case *ast.Ident:
				if fun.Name == "close" && len(n.Args) == 1 && isChan(n.Args[0]) {
					if _, isBuiltin := info.Uses[fun].(*types.Builtin); isBuiltin {
						report(n.Pos(), "close of channel")
					}
				}
				if fun.Name == "make" && len(n.Args) >= 1 {
					if t := info.TypeOf(n.Args[0]); t != nil {
						if _, ok := t.Underlying().(*types.Chan); ok {
							report(n.Pos(), "make(chan)")
						}
					}
				}
			case *ast.SelectorExpr:
				if selRecv := info.Selections[fun]; selRecv != nil {
					rt := selRecv.Recv()
					if p, ok := rt.(*types.Pointer); ok {
						rt = p.Elem()
					}
					if named, ok := rt.(*types.Named); ok {
						obj := named.Obj()
						if obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "sync" && syncTypes[obj.Name()] {
							report(n.Pos(), "sync."+obj.Name()+" operation")
						}
					}
				}
			}
		}
		return true
	})
}
