package analysis

import (
	"go/ast"
	"go/token"

	"repro/internal/analysis/framework"
)

// crossshardShardedFields are the Sharded coordinator fields that carry
// shard-owned state: the partition map, the per-(src,dst) mailboxes and
// their delivery statistics, and the run latch. Concurrent shard
// advances stay race-free only because these fields change exclusively
// on the coordinator's own path — construction, the shard-local send,
// the window-barrier merge, and the run driver.
var crossshardShardedFields = map[string]bool{
	"shards":    true,
	"bounds":    true,
	"owner":     true,
	"outbox":    true,
	"edges":     true,
	"lookahead": true,
	"workers":   true,
	"ran":       true,
}

// crossshardMachineFields / crossshardEngineFields are the links that
// tie a machine (and its engine) to its shard: set once at partition
// time, read-only ever after — routing and deadlock reporting both key
// off them.
var crossshardMachineFields = map[string]bool{
	"sharded": true,
	"rank":    true,
}

var crossshardEngineFields = map[string]bool{
	"rank": true,
}

// crossshardClusterFields / crossshardSystemFields are the
// cthreads-layer equivalents: the shard-to-system table and the
// back-link ForkPost resolves remote processors through.
var crossshardClusterFields = map[string]bool{
	"systems": true,
}

var crossshardSystemFields = map[string]bool{
	"cluster": true,
}

// crossshardAllowed are the functions entitled to write shard-owned
// state: partition construction (NewSharded, NewCluster), the
// shard-local outbox append (send), the window-barrier mailbox merge
// (deliver), and the run driver (Run). Everything else — including the
// per-shard advance bodies and any future helper — must treat the
// coordinator as read-only, or route through these.
var crossshardAllowed = map[string]bool{
	"NewSharded": true,
	"NewCluster": true,
	"send":       true,
	"deliver":    true,
	"Run":        true,
}

// Crossshard restricts writes to the sharded coordinator's state (and
// the machine/engine/system fields linking a shard to it) to the shard
// advance path and the window-barrier merge. Shards run concurrently
// between barriers; a write to coordinator state from anywhere else is
// either a data race or a back door past the deterministic mailbox
// merge — both break the bit-for-bit serial-equivalence contract. Only
// packages sim and cthreads can name these unexported fields, but the
// check runs everywhere so fixtures and future layouts are covered.
// Test files are exempt.
var Crossshard = &framework.Analyzer{
	Name: "crossshard",
	Doc:  "restrict writes to shard-owned coordinator state to the shard advance path and window-barrier merge",
	Run:  runCrossshard,
}

func runCrossshard(pass *framework.Pass) error {
	for _, f := range pass.Files {
		if pass.IsTestFile(f) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if crossshardAllowed[fd.Name.Name] {
				continue
			}
			checkCrossshardBody(pass, fd)
		}
	}
	return nil
}

// crossshardField resolves an assignment target to a protected field
// description ("Sharded.outbox", "Machine.rank"), or "" if the target
// is not protected. Index and selector expressions unwrap all the way
// down, so both s.outbox[src][dst] and s.edges[src][dst].Delivered
// match: mutating an element (or a field of one) mutates the protected
// structure.
func crossshardField(pass *framework.Pass, lhs ast.Expr) string {
	for {
		lhs = ast.Unparen(lhs)
		switch e := lhs.(type) {
		case *ast.IndexExpr:
			lhs = e.X
		case *ast.SelectorExpr:
			t := pass.TypesInfo.TypeOf(e.X)
			if t == nil {
				return ""
			}
			name := e.Sel.Name
			switch {
			case namedFrom(t, "sim", "Sharded") && crossshardShardedFields[name]:
				return "Sharded." + name
			case namedFrom(t, "sim", "Machine") && crossshardMachineFields[name]:
				return "Machine." + name
			case namedFrom(t, "sim", "Engine") && crossshardEngineFields[name]:
				return "Engine." + name
			case namedFrom(t, "cthreads", "Cluster") && crossshardClusterFields[name]:
				return "Cluster." + name
			case namedFrom(t, "cthreads", "System") && crossshardSystemFields[name]:
				return "System." + name
			}
			lhs = e.X
		default:
			return ""
		}
	}
}

func checkCrossshardBody(pass *framework.Pass, fd *ast.FuncDecl) {
	report := func(pos token.Pos, field string) {
		pass.Reportf(pos,
			"write to %s outside the shard coordinator allowlist (%s is not one of NewSharded/NewCluster/send/deliver/Run): shard-owned state may change only on the shard advance path or the window-barrier merge", field, fd.Name.Name)
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if n.Tok == token.DEFINE {
				return true
			}
			for _, lhs := range n.Lhs {
				if field := crossshardField(pass, lhs); field != "" {
					report(lhs.Pos(), field)
				}
			}
		case *ast.IncDecStmt:
			if field := crossshardField(pass, n.X); field != "" {
				report(n.X.Pos(), field)
			}
		case *ast.UnaryExpr:
			// &s.outbox[i][j] escaping would allow unchecked writes.
			if n.Op == token.AND {
				if field := crossshardField(pass, n.X); field != "" {
					report(n.X.Pos(), field+" (address taken)")
				}
			}
		}
		return true
	})
}
