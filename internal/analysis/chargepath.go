package analysis

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis/framework"
)

// Chargepath keeps simulated state honest about virtual time: an
// exported method on a simulated object (sim.Cell, the active monitor
// and future, the adaptive-policy monitor) that mutates its receiver
// must charge virtual time — a machine access, an Advance, a lock
// operation — on every path that mutates. A mutation that costs nothing
// is a free operation the paper's cost model has no row for, and free
// operations are how attribution drift starts. Pure accessors pass
// automatically: the rule is mutated ⇒ charged per path, so a path that
// mutates nothing owes nothing.
var Chargepath = &framework.Analyzer{
	Name: "chargepath",
	Doc: "report exported methods on simulated state that mutate the " +
		"receiver without charging virtual time on every mutating path",
	Run: runChargepath,
}

// chargeTargets maps package-path base to the receiver type names whose
// exported methods operate on simulated state.
var chargeTargets = map[string]map[string]bool{
	"sim":     {"Cell": true},
	"active":  {"Monitor": true, "Future": true},
	"monitor": {"Local": true},
}

// chargingNames are callee names that always advance (or synchronize
// with) the virtual clock, whichever package defines them: machine
// accesses, thread-time primitives, lock protocol entry points, and the
// scheduler blocking calls.
var chargingNames = map[string]bool{
	"Advance": true, "Compute": true, "Charge": true,
	"Load": true, "Store": true, "AtomicOr": true, "AtomicAdd": true,
	"CompareAndSwap": true, "Post": true,
	"Lock": true, "LockHint": true, "Unlock": true,
	"Acquire": true, "Release": true,
	"Block": true, "BlockTimeout": true, "Wake": true, "Join": true,
	"Yield": true, "Probe": true,
}

func runChargepath(pass *framework.Pass) error {
	targets := chargeTargets[framework.PathBase(pass.Path)]
	if len(targets) == 0 {
		return nil
	}

	summaries := chargeSummaries(pass)

	for _, f := range pass.Files {
		if pass.IsTestFile(f) {
			continue
		}
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil || fd.Recv == nil || !fd.Name.IsExported() {
				continue
			}
			recvType, recvObj := receiverOf(pass, fd)
			if recvObj == nil || !targets[recvType] {
				continue
			}
			checkChargePath(pass, fd, recvType, recvObj, summaries)
		}
	}
	return nil
}

// receiverOf resolves a method's receiver type name and variable
// object; the object is nil for unnamed receivers (which cannot mutate).
func receiverOf(pass *framework.Pass, fd *ast.FuncDecl) (string, types.Object) {
	if len(fd.Recv.List) != 1 {
		return "", nil
	}
	field := fd.Recv.List[0]
	t := pass.TypesInfo.Types[field.Type].Type
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok || n.Obj() == nil {
		return "", nil
	}
	if len(field.Names) != 1 || field.Names[0].Name == "_" {
		return n.Obj().Name(), nil
	}
	return n.Obj().Name(), pass.TypesInfo.Defs[field.Names[0]]
}

// chargeState is one (mutated, charged) path condition; chargeFact is
// the set of conditions of the paths reaching a point, as a 4-bit mask.
type chargeFact uint8

const (
	stCharged  = 1 // low condition bit: has this path charged?
	stMutated  = 2 // high condition bit: has this path mutated the receiver?
	chargeInit = chargeFact(1 << 0)
)

func (f chargeFact) apply(bit int) chargeFact {
	var out chargeFact
	for s := 0; s < 4; s++ {
		if f&(1<<s) != 0 {
			out |= 1 << (s | bit)
		}
	}
	return out
}

func joinCharge(a, b framework.Fact) framework.Fact {
	return a.(chargeFact) | b.(chargeFact)
}

func equalCharge(a, b framework.Fact) bool {
	return a.(chargeFact) == b.(chargeFact)
}

// charges reports whether call advances virtual time, either through a
// trusted primitive name or a package-local callee known to charge on
// all paths.
func charges(pass *framework.Pass, summaries map[*types.Func]bool, call *ast.CallExpr) bool {
	if chargingNames[calleeName(call)] {
		return true
	}
	fn := pkgFuncObj(pass.TypesInfo, call)
	return fn != nil && summaries[fn]
}

// rootedInReceiver reports whether e is a selector/index/dereference
// chain anchored at the receiver variable (c.v, m.pending[id], *c.ptr).
// A bare mention of the receiver itself is not a mutation of simulated
// state.
func rootedInReceiver(info *types.Info, recv types.Object, e ast.Expr) bool {
	steps := 0
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.SelectorExpr:
			e, steps = x.X, steps+1
		case *ast.IndexExpr:
			e, steps = x.X, steps+1
		case *ast.StarExpr:
			e, steps = x.X, steps+1
		case *ast.Ident:
			return steps > 0 && info.Uses[x] == recv
		default:
			return false
		}
	}
}

// scanChargeEvents walks n (not descending into function literals) and
// invokes mutate/charge for each receiver mutation and charging call in
// traversal order.
func scanChargeEvents(pass *framework.Pass, recv types.Object, summaries map[*types.Func]bool,
	n ast.Node, event func(bit int)) {
	info := pass.TypesInfo
	ast.Inspect(n, func(m ast.Node) bool {
		switch x := m.(type) {
		case *ast.FuncLit:
			return false
		case *ast.AssignStmt:
			for _, lhs := range x.Lhs {
				if rootedInReceiver(info, recv, lhs) {
					event(stMutated)
					break
				}
			}
		case *ast.IncDecStmt:
			if rootedInReceiver(info, recv, x.X) {
				event(stMutated)
			}
		case *ast.CallExpr:
			if id, ok := ast.Unparen(x.Fun).(*ast.Ident); ok && id.Name == "delete" &&
				len(x.Args) > 0 && rootedInReceiver(info, recv, x.Args[0]) {
				event(stMutated)
				return true
			}
			if charges(pass, summaries, x) {
				event(stCharged)
			}
		}
		return true
	})
}

// checkChargePath runs the pair-set dataflow over one exported method
// and reports if any normal exit path mutated without charging.
func checkChargePath(pass *framework.Pass, fd *ast.FuncDecl, recvType string,
	recv types.Object, summaries map[*types.Func]bool) {
	cfg := framework.BuildCFG(fd.Body, framework.CFGOptions{})
	res := framework.Solve(cfg, &framework.FlowProblem{
		Entry: chargeInit,
		Transfer: func(b *framework.Block, in framework.Fact) framework.Fact {
			f := in.(chargeFact)
			for _, n := range b.Nodes {
				scanChargeEvents(pass, recv, summaries, n, func(bit int) {
					f = f.apply(bit)
				})
			}
			return f
		},
		Join:  joinCharge,
		Equal: equalCharge,
	})
	exit, _ := res.ExitFact().(chargeFact)
	if exit&(1<<stMutated) != 0 { // state (mutated, uncharged) reachable at return
		pass.Reportf(fd.Name.Pos(),
			"exported method %s.%s mutates simulated state without charging virtual time on every mutating path",
			recvType, fd.Name.Name)
	}
}

// chargeSummaries computes, for every function in the package, whether
// it charges virtual time on all paths to a normal return
// (charged-on-all-paths, join = AND). Summaries start false and flip
// monotonically to true over a fixpoint, so mutually recursive helpers
// settle conservatively.
func chargeSummaries(pass *framework.Pass) map[*types.Func]bool {
	type entry struct {
		obj  *types.Func
		body *ast.BlockStmt
		cfg  *framework.CFG
	}
	var fns []entry
	for _, f := range pass.Files {
		if pass.IsTestFile(f) {
			continue
		}
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, _ := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if obj == nil {
				continue
			}
			fns = append(fns, entry{obj, fd.Body, framework.BuildCFG(fd.Body, framework.CFGOptions{})})
		}
	}

	summaries := make(map[*types.Func]bool, len(fns))
	type boolFact bool
	for changed := true; changed; {
		changed = false
		for _, e := range fns {
			if summaries[e.obj] {
				continue
			}
			res := framework.Solve(e.cfg, &framework.FlowProblem{
				Entry: boolFact(false),
				Transfer: func(b *framework.Block, in framework.Fact) framework.Fact {
					charged := bool(in.(boolFact))
					if !charged {
						for _, n := range b.Nodes {
							scanCalls(n, func(call *ast.CallExpr) {
								if charges(pass, summaries, call) {
									charged = true
								}
							})
						}
					}
					return boolFact(charged)
				},
				Join: func(a, b framework.Fact) framework.Fact {
					return boolFact(bool(a.(boolFact)) && bool(b.(boolFact)))
				},
				Equal: func(a, b framework.Fact) bool { return a == b },
			})
			// A function with no normal exit charges vacuously.
			all := true
			if f, ok := res.ExitFact().(boolFact); ok {
				all = bool(f)
			}
			if all {
				summaries[e.obj] = true
				changed = true
			}
		}
	}
	return summaries
}
