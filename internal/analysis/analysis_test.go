package analysis

import (
	"testing"

	"repro/internal/analysis/framework"
	"repro/internal/analysis/framework/analysistest"
)

func TestWalltime(t *testing.T) {
	analysistest.Run(t, "testdata", "walltime/sim", Walltime)
	analysistest.Run(t, "testdata", "walltime/notsim", Walltime)
}

func TestRawspin(t *testing.T) {
	analysistest.Run(t, "testdata", "rawspin/sim", Rawspin)
	analysistest.Run(t, "testdata", "rawspin/notsim", Rawspin)
	analysistest.Run(t, "testdata", "rawspin/locks", Rawspin)
}

func TestMaporder(t *testing.T) {
	analysistest.Run(t, "testdata", "maporder/a", Maporder)
}

func TestVirtualtime(t *testing.T) {
	analysistest.Run(t, "testdata", "virtualtime/sim", Virtualtime)
	analysistest.Run(t, "testdata", "virtualtime/locks", Virtualtime)
}

func TestSeqadvance(t *testing.T) {
	analysistest.Run(t, "testdata", "seqadvance/sim", Seqadvance)
}

func TestCrossshard(t *testing.T) {
	analysistest.Run(t, "testdata", "crossshard/sim", Crossshard)
	analysistest.Run(t, "testdata", "crossshard/cthreads", Crossshard)
}

// TestSimlintClean runs the full suite over the module the way
// `go vet -vettool=bin/simlint ./...` does: the tree must stay clean,
// and every suppression must be well-formed (malformed directives are
// diagnostics themselves).
func TestSimlintClean(t *testing.T) {
	if testing.Short() {
		t.Skip("runs go list -export over the whole module")
	}
	pkgs, err := framework.Load("../..", "./...")
	if err != nil {
		t.Fatal(err)
	}
	for _, pkg := range pkgs {
		diags, err := framework.RunAnalyzers(pkg, All())
		if err != nil {
			t.Fatal(err)
		}
		for _, d := range diags {
			t.Errorf("%s", framework.Format(pkg.Fset, d))
		}
	}
}
