package analysis

import (
	"testing"

	"repro/internal/analysis/framework"
	"repro/internal/analysis/framework/analysistest"
)

func TestWalltime(t *testing.T) {
	analysistest.Run(t, "testdata", "walltime/sim", Walltime)
	analysistest.Run(t, "testdata", "walltime/notsim", Walltime)
}

func TestRawspin(t *testing.T) {
	analysistest.Run(t, "testdata", "rawspin/sim", Rawspin)
	analysistest.Run(t, "testdata", "rawspin/notsim", Rawspin)
	analysistest.Run(t, "testdata", "rawspin/locks", Rawspin)
}

func TestMaporder(t *testing.T) {
	analysistest.Run(t, "testdata", "maporder/a", Maporder)
}

func TestVirtualtime(t *testing.T) {
	analysistest.Run(t, "testdata", "virtualtime/sim", Virtualtime)
	analysistest.Run(t, "testdata", "virtualtime/locks", Virtualtime)
}

func TestSeqadvance(t *testing.T) {
	analysistest.Run(t, "testdata", "seqadvance/sim", Seqadvance)
}

func TestCrossshard(t *testing.T) {
	analysistest.Run(t, "testdata", "crossshard/sim", Crossshard)
	analysistest.Run(t, "testdata", "crossshard/cthreads", Crossshard)
}

func TestFramebalance(t *testing.T) {
	analysistest.Run(t, "testdata", "framebalance/a", Framebalance)
	analysistest.Run(t, "testdata", "framebalance/combiner", Framebalance)
}

func TestLockpair(t *testing.T) {
	analysistest.Run(t, "testdata", "lockpair/a", Lockpair)
	analysistest.Run(t, "testdata", "lockpair/locks", Lockpair)
}

func TestChargepath(t *testing.T) {
	analysistest.Run(t, "testdata", "chargepath/sim", Chargepath)
}

// TestAllowsAudit drives the -allows classification over a fixture
// seeded with one live, one stale, and two malformed directives: stale
// detection is the audit's whole point, so it is proven here rather
// than assumed.
func TestAllowsAudit(t *testing.T) {
	pkg := analysistest.Load(t, "testdata", "allows/a")
	allows, err := framework.AuditAllows(pkg, All())
	if err != nil {
		t.Fatal(err)
	}
	if len(allows) != 4 {
		t.Fatalf("got %d directives, want 4: %+v", len(allows), allows)
	}
	type verdict struct {
		analyzer, malformed string
		stale               bool
	}
	got := make([]verdict, len(allows))
	for i, a := range allows {
		got[i] = verdict{a.Analyzer, a.Malformed, a.Stale}
	}
	want := []verdict{
		{"framebalance", "", false}, // live suppression of the early-return leak
		{"framebalance", "", true},  // stale: balanced body, nothing reported
		{"nosuchanalyzer", `unknown analyzer "nosuchanalyzer"`, false},
		{"framebalance", `missing mandatory reason ("-- <why>")`, false},
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("directive %d: got %+v, want %+v", i, got[i], want[i])
		}
	}
}

// TestSimlintClean runs the full suite over the module the way
// `go vet -vettool=bin/simlint ./...` does: the tree must stay clean,
// and every suppression must be well-formed (malformed directives are
// diagnostics themselves).
func TestSimlintClean(t *testing.T) {
	if testing.Short() {
		t.Skip("runs go list -export over the whole module")
	}
	pkgs, err := framework.Load("../..", "./...")
	if err != nil {
		t.Fatal(err)
	}
	for _, pkg := range pkgs {
		diags, err := framework.RunAnalyzers(pkg, All())
		if err != nil {
			t.Fatal(err)
		}
		for _, d := range diags {
			t.Errorf("%s", framework.Format(pkg.Fset, d))
		}
	}
}
