package analysis

import (
	"go/ast"
	"go/types"
	"strconv"

	"repro/internal/analysis/framework"
)

// walltimeFuncs are the time-package functions that read or wait on the
// wall clock. time.Duration and the arithmetic helpers stay legal: only
// functions that couple simulated code to real time are banned.
var walltimeFuncs = map[string]bool{
	"Now":       true,
	"Since":     true,
	"Until":     true,
	"Sleep":     true,
	"After":     true,
	"Tick":      true,
	"AfterFunc": true,
	"NewTimer":  true,
	"NewTicker": true,
}

// Walltime forbids wall-clock time and math/rand in simulated packages:
// virtual time advances only through the engine (sim.Engine.Now,
// Coro.Sleep, Accessor.Advance) and randomness comes from the seeded
// sim.RNG (Machine.RNG, Thread.Rand), so byte-identical replays from a
// seed stay possible. Test files are exempt.
var Walltime = &framework.Analyzer{
	Name: "walltime",
	Doc:  "forbid wall-clock time and math/rand in simulated packages",
	Run:  runWalltime,
}

func runWalltime(pass *framework.Pass) error {
	if !simulatedPackage(pass.Path) {
		return nil
	}
	for _, f := range pass.Files {
		if pass.IsTestFile(f) {
			continue
		}
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if path == "math/rand" || path == "math/rand/v2" {
				pass.Reportf(imp.Pos(),
					"import of %s in simulated package %s: use the seeded sim.RNG (Machine.RNG / Thread.Rand) so runs replay byte-identically", path, pass.Path)
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "time" {
				return true
			}
			if walltimeFuncs[fn.Name()] {
				pass.Reportf(sel.Pos(),
					"time.%s in simulated package %s: virtual time must advance through the engine (sim.Engine.Now / Coro.Sleep / Accessor.Advance)", fn.Name(), pass.Path)
			}
			return true
		})
	}
	return nil
}
