package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"

	"repro/internal/analysis/framework"
)

// Framebalance proves the profiler's conservation invariant by
// construction: every profile frame pushed in a function body is popped
// on every path out of it, or on none. The check is path-consistency,
// not zero-balance: protocol helpers legitimately carry a frame across
// function boundaries (locks' observe pushes "Lock:" which acquired
// later pops), so a *consistent* nonzero net is legal — what the
// analyzer rejects is a frame whose net count differs between two exit
// paths, which is exactly how the PR 9 combiner bug leaked a "submit:"
// frame on its error path and broke Total() == end - Registered().
var Framebalance = &framework.Analyzer{
	Name: "framebalance",
	Doc: "report profile frames whose push/pop balance differs between " +
		"paths out of a function",
	Run: runFramebalance,
}

func runFramebalance(pass *framework.Pass) error {
	// Package-wide first sightings of each frame key as a push and as a
	// pop. Path-consistency below is per-function and cannot see a
	// protocol whose push and pop live in different helpers (observe
	// pushes "Lock:", acquired pops it); pairing the sites at package
	// level closes that hole: deleting the only pop of a frame leaves
	// every function self-consistent but the key one-sided here.
	pushed, popped := map[string]token.Pos{}, map[string]token.Pos{}
	for _, f := range pass.Files {
		if pass.IsTestFile(f) {
			continue
		}
		for _, fn := range functionsIn(f) {
			checkFrameBalance(pass, fn, pushed, popped)
		}
	}
	for _, k := range sortedKeys(keySet(pushed)) {
		if _, ok := popped[k]; !ok {
			pass.Reportf(pushed[k],
				"profile frame %s is pushed but popped nowhere in this package: the conservation invariant cannot hold",
				k)
		}
	}
	for _, k := range sortedKeys(keySet(popped)) {
		if _, ok := pushed[k]; !ok {
			pass.Reportf(popped[k],
				"profile frame %s is popped but pushed nowhere in this package",
				k)
		}
	}
	return nil
}

func keySet[V any](m map[string]V) map[string]bool {
	s := make(map[string]bool, len(m))
	for k := range m {
		s[k] = true
	}
	return s
}

// frameEvent classifies a call as a frame push (+1) or pop (-1) of a
// canonical frame key, or neither (delta 0).
func frameEvent(pass *framework.Pass, aliases aliasMap, call *ast.CallExpr) (key string, delta int) {
	name := calleeName(call)
	switch name {
	case "Push":
		delta = 1
	case "Pop":
		delta = -1
	default:
		return "", 0
	}
	recv := callReceiver(call)
	if recv == nil || len(call.Args) < 2 {
		return "", 0
	}
	if !namedFrom(pass.TypesInfo.Types[recv].Type, "profile", "ThreadProf") {
		return "", 0
	}
	return aliases.exprKey(pass.TypesInfo, call.Args[1]), delta
}

func checkFrameBalance(pass *framework.Pass, fn funcUnit, pushed, popped map[string]token.Pos) {
	aliases := collectAliases(pass.TypesInfo, fn.body)

	// First sweep: does this body touch frames at all, and where is each
	// key's first event (the diagnostic anchor)?
	firstPos := map[string]token.Pos{}
	scanCalls(fn.body, func(call *ast.CallExpr) {
		if key, delta := frameEvent(pass, aliases, call); delta != 0 {
			if _, seen := firstPos[key]; !seen {
				firstPos[key] = call.Pos()
			}
			side := pushed
			if delta < 0 {
				side = popped
			}
			qkey := aliases.qualifiedKey(pass.TypesInfo, call.Args[1])
			if _, seen := side[qkey]; !seen {
				side[qkey] = call.Pos()
			}
		}
	})
	if len(firstPos) == 0 {
		return
	}

	// The profiler nil-guard idiom (`if p := t.Prof(); p != nil { ... }`)
	// wraps every push and pop independently; whether a profiler is
	// attached is fixed for a whole run, so the guards' outcomes
	// correlate and collapsing them is sound (see DESIGN.md).
	cfg := framework.BuildCFG(fn.body, framework.CFGOptions{CollapseNilGuards: true})
	res := framework.Solve(cfg, &framework.FlowProblem{
		Entry: balanceFact{},
		Transfer: func(b *framework.Block, in framework.Fact) framework.Fact {
			f := in.(balanceFact)
			out, cloned := f, false
			for _, n := range b.Nodes {
				scanCalls(n, func(call *ast.CallExpr) {
					key, delta := frameEvent(pass, aliases, call)
					if delta == 0 {
						return
					}
					if !cloned {
						out, cloned = f.clone(), true
					}
					out[key] = out.get(key).add(delta)
				})
			}
			return out
		},
		Join:  joinBalance,
		Equal: equalBalance,
	})

	exit := res.ExitFact()
	if exit == nil {
		return // no normal exit: a combiner loop or always-panicking body
	}
	keys := make([]string, 0, len(firstPos))
	for k := range firstPos {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		iv := exit.(balanceFact).get(k)
		if iv.lo != iv.hi {
			pass.Reportf(firstPos[k],
				"profile frame %s is balanced on some paths out of %s but not all (net %s at return)",
				k, fn.name, rangeString(iv))
		}
	}
}

func rangeString(iv intv) string {
	return fmt.Sprintf("%d..%d", iv.lo, iv.hi)
}
