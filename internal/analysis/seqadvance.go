package analysis

import (
	"go/ast"
	"go/token"

	"repro/internal/analysis/framework"
)

// seqadvanceEngineFields are the Engine fields that define the
// simulated history: the clock, the tie-breaking sequence counter, and
// the fast-forward diagnostics the differential suites assert on.
var seqadvanceEngineFields = map[string]bool{
	"now":              true,
	"seq":              true,
	"spinFastForwards": true,
	"spinBatchedIters": true,
}

// seqadvanceMachineFields are the Machine module-accounting fields the
// spin fast-forward maintains in closed form.
var seqadvanceMachineFields = map[string]bool{
	"moduleFree": true,
	"queueDelay": true,
	"accesses":   true,
}

// seqadvanceAllowed are the functions entitled to advance time/order
// state: the engine's dispatch loops (including the sharded window
// loop), the inline self-wakeup, event scheduling (including barrier
// message delivery), the module reservation path, and the spin
// fast-forward. A partial re-implementation of the PR 3/4 fast paths
// anywhere else would have to write these fields from a new function —
// and trips this analyzer.
var seqadvanceAllowed = map[string]bool{
	"advanceInline":   true,
	"schedule":        true,
	"scheduleMessage": true,
	"Run":             true,
	"RunFor":          true,
	"runWindow":       true,
	"fastForwardSpin": true,
	"reserveAccess":   true,
}

// Seqadvance restricts writes to Engine.now/Engine.seq (plus the spin
// fast-forward counters) and the Machine module-accounting fields to
// the engine/spin allowlist, so fast-path optimizations cannot be
// partially re-implemented elsewhere and drift from the reference
// path. Only package sim can name these unexported fields, but the
// check runs everywhere so fixtures and future code layouts are
// covered. Test files are exempt.
var Seqadvance = &framework.Analyzer{
	Name: "seqadvance",
	Doc:  "restrict writes to engine clock/seq and module accounting to the engine allowlist",
	Run:  runSeqadvance,
}

func runSeqadvance(pass *framework.Pass) error {
	for _, f := range pass.Files {
		if pass.IsTestFile(f) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if seqadvanceAllowed[fd.Name.Name] {
				continue
			}
			checkSeqadvanceBody(pass, fd)
		}
	}
	return nil
}

// protectedField resolves an assignment target to a protected field
// description ("Engine.now", "Machine.accesses"), or "" if the target
// is not protected. Index expressions unwrap to their base selector so
// m.accesses[i] matches.
func protectedField(pass *framework.Pass, lhs ast.Expr) string {
	lhs = ast.Unparen(lhs)
	if ix, ok := lhs.(*ast.IndexExpr); ok {
		lhs = ast.Unparen(ix.X)
	}
	sel, ok := lhs.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	t := pass.TypesInfo.TypeOf(sel.X)
	if t == nil {
		return ""
	}
	name := sel.Sel.Name
	if namedFrom(t, "sim", "Engine") && seqadvanceEngineFields[name] {
		return "Engine." + name
	}
	if namedFrom(t, "sim", "Machine") && seqadvanceMachineFields[name] {
		return "Machine." + name
	}
	return ""
}

func checkSeqadvanceBody(pass *framework.Pass, fd *ast.FuncDecl) {
	report := func(pos token.Pos, field string) {
		pass.Reportf(pos,
			"write to %s outside the engine allowlist (%s is not one of advanceInline/schedule/scheduleMessage/Run/RunFor/runWindow/fastForwardSpin/reserveAccess): time and ordering state must advance only through the engine", field, fd.Name.Name)
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if n.Tok == token.DEFINE {
				return true
			}
			for _, lhs := range n.Lhs {
				if field := protectedField(pass, lhs); field != "" {
					report(lhs.Pos(), field)
				}
			}
		case *ast.IncDecStmt:
			if field := protectedField(pass, n.X); field != "" {
				report(n.X.Pos(), field)
			}
		case *ast.UnaryExpr:
			// &e.now escaping would allow unchecked writes.
			if n.Op == token.AND {
				if field := protectedField(pass, n.X); field != "" {
					report(n.X.Pos(), field+" (address taken)")
				}
			}
		}
		return true
	})
}
