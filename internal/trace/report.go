package trace

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/metrics"
	"repro/internal/sim"
)

// ProcUtilization is one processor's running-time profile derived from the
// thread-state events of a trace.
type ProcUtilization struct {
	Proc int
	// Busy is total time some thread was in the run state on this
	// processor.
	Busy sim.Time
	// Timeline holds the per-bucket utilization fraction in [0,1].
	Timeline []float64
}

// UtilizationTimeline derives each processor's utilization over virtual
// time from thread run spans (thread-run → next state transition),
// bucketed into the given number of equal time slices. This is the
// trace-derived replacement for end-of-run System.Utilization: it shows
// *when* processors idled, not just how much.
func (tr *Tracer) UtilizationTimeline(buckets int) []ProcUtilization {
	if buckets < 1 {
		buckets = 1
	}
	events := tr.Events()
	var end sim.Time
	for _, ev := range events {
		if ev.At > end {
			end = ev.At
		}
	}
	if end == 0 {
		return nil
	}
	type runOpen struct{ since sim.Time }
	open := map[int32]*runOpen{} // thread → open run span
	busy := map[int32]sim.Time{}
	timeline := map[int32][]float64{}
	span := func(proc int32, from, to sim.Time) {
		if to <= from {
			return
		}
		busy[proc] += to - from
		tl, ok := timeline[proc]
		if !ok {
			tl = make([]float64, buckets)
			timeline[proc] = tl
		}
		// Spread the span across the buckets it overlaps.
		width := float64(end) / float64(buckets)
		for b := int(float64(from) / width); b < buckets; b++ {
			lo, hi := float64(b)*width, float64(b+1)*width
			if float64(from) > lo {
				lo = float64(from)
			}
			if float64(to) < hi {
				hi = float64(to)
			}
			if hi <= lo {
				break
			}
			tl[b] += (hi - lo) / width
		}
	}
	for _, ev := range events {
		if ev.Kind.Category() != CatThread {
			continue
		}
		if ev.Kind == KindThreadRun {
			open[ev.Thread] = &runOpen{since: ev.At}
			continue
		}
		// Any other state transition ends a run span.
		if o, ok := open[ev.Thread]; ok {
			span(ev.Proc, o.since, ev.At)
			delete(open, ev.Thread)
		}
	}
	// A thread still running at end of trace was running until then; its
	// proc is known from any prior event, so re-scan fork events.
	proc := map[int32]int32{}
	for _, ev := range events {
		if ev.Kind == KindThreadFork {
			proc[ev.Thread] = ev.Proc
		}
	}
	var openTids []int
	for tid := range open {
		openTids = append(openTids, int(tid))
	}
	sort.Ints(openTids)
	for _, tid := range openTids {
		span(proc[int32(tid)], open[int32(tid)].since, end)
	}

	var procs []int
	for p := range timeline {
		procs = append(procs, int(p))
	}
	sort.Ints(procs)
	out := make([]ProcUtilization, 0, len(procs))
	for _, p := range procs {
		out = append(out, ProcUtilization{Proc: p, Busy: busy[int32(p)], Timeline: timeline[int32(p)]})
	}
	return out
}

// RenderUtilization renders the utilization timeline as one sparkline row
// per processor.
func RenderUtilization(rows []ProcUtilization, end sim.Time) string {
	blocks := []rune(" ▁▂▃▄▅▆▇█")
	var sb strings.Builder
	sb.WriteString("per-processor utilization timeline (trace-derived)\n")
	for _, r := range rows {
		var bar strings.Builder
		for _, f := range r.Timeline {
			idx := int(f * float64(len(blocks)-1))
			if idx < 0 {
				idx = 0
			}
			if idx >= len(blocks) {
				idx = len(blocks) - 1
			}
			bar.WriteRune(blocks[idx])
		}
		frac := 0.0
		if end > 0 {
			frac = float64(r.Busy) / float64(end)
		}
		fmt.Fprintf(&sb, "  proc%-3d %5.1f%% |%s|\n", r.Proc, 100*frac, bar.String())
	}
	return sb.String()
}

// LockProfile is one lock's contention profile derived from a trace.
type LockProfile struct {
	Name       string
	Requests   uint64
	Contended  uint64
	Sleeps     uint64
	Reconfigs  uint64
	MaxWaiting int64
	TotalWait  sim.Time
	MaxWait    sim.Time
	TotalHold  sim.Time
	Holds      uint64
}

// MeanWait reports the average request-to-grant wait.
func (p LockProfile) MeanWait() sim.Time {
	if p.Requests == 0 {
		return 0
	}
	return p.TotalWait / sim.Time(p.Requests)
}

// MeanHold reports the average hold duration.
func (p LockProfile) MeanHold() sim.Time {
	if p.Holds == 0 {
		return 0
	}
	return p.TotalHold / sim.Time(p.Holds)
}

// ContentionProfile derives per-lock contention statistics from the lock
// events of the trace, in first-seen lock order. It reproduces the
// numbers of locks.Stats purely from the event history — the two are
// cross-checked in tests — and adds hold-time accounting no counter
// collects.
func (tr *Tracer) ContentionProfile() []LockProfile {
	byName := map[string]*LockProfile{}
	var order []string
	get := func(name string) *LockProfile {
		p, ok := byName[name]
		if !ok {
			p = &LockProfile{Name: name}
			byName[name] = p
			order = append(order, name)
		}
		return p
	}
	holdStart := map[string]sim.Time{}
	for _, ev := range tr.Events() {
		switch ev.Kind {
		case KindLockRequest:
			p := get(ev.Name)
			p.Requests++
			if ev.A > p.MaxWaiting {
				p.MaxWaiting = ev.A
			}
		case KindLockBlocked:
			get(ev.Name).Sleeps++
		case KindLockAcquire:
			p := get(ev.Name)
			if ev.B != 0 {
				p.Contended++
			}
			p.TotalWait += sim.Time(ev.A)
			if sim.Time(ev.A) > p.MaxWait {
				p.MaxWait = sim.Time(ev.A)
			}
			holdStart[ev.Name] = ev.At
		case KindLockRelease:
			p := get(ev.Name)
			if at, ok := holdStart[ev.Name]; ok {
				p.TotalHold += ev.At - at
				p.Holds++
				delete(holdStart, ev.Name)
			}
		case KindReconfig:
			if p, ok := byName[ev.Name]; ok {
				p.Reconfigs++
			}
		}
	}
	out := make([]LockProfile, 0, len(order))
	for _, name := range order {
		out = append(out, *byName[name])
	}
	return out
}

// RenderContention renders the contention profile as a fixed-width table.
func RenderContention(rows []LockProfile) string {
	t := metrics.NewTable("per-lock contention profile (trace-derived)",
		"lock", "requests", "contended", "sleeps", "max-waiting",
		"mean-wait", "max-wait", "mean-hold", "reconfigs")
	for _, r := range rows {
		t.AddRow(r.Name,
			fmt.Sprint(r.Requests), fmt.Sprint(r.Contended), fmt.Sprint(r.Sleeps),
			fmt.Sprint(r.MaxWaiting), r.MeanWait().String(), r.MaxWait.String(),
			r.MeanHold().String(), fmt.Sprint(r.Reconfigs))
	}
	return t.String()
}

// LagProfile summarizes one adaptive object's sample-to-reconfiguration
// lag: the time between a monitored value's collection and the
// reconfiguration it triggered being applied. For the closely-coupled
// inline monitor the lag is structurally zero (sample and decision share
// the probing context); for the loosely-coupled monitor-thread pipeline it
// is bounded below by the trace-delivery delay — the §5.1 coupling
// comparison, measured directly from the trace.
type LagProfile struct {
	Object    string
	Samples   uint64
	Reconfigs uint64
	TotalLag  sim.Time
	MaxLag    sim.Time
}

// MeanLag reports the average sample-to-reconfiguration lag.
func (p LagProfile) MeanLag() sim.Time {
	if p.Reconfigs == 0 {
		return 0
	}
	return p.TotalLag / sim.Time(p.Reconfigs)
}

// AdaptationLag derives per-object adaptation-decision lag from the trace:
// each reconfiguration is attributed to the most recent sample event of
// the same object, and its lag is reconfiguration time minus the sample's
// *collection* time (KindSample.A), so pipeline delay is included.
func (tr *Tracer) AdaptationLag() []LagProfile {
	byName := map[string]*LagProfile{}
	var order []string
	lastCollected := map[string]int64{}
	for _, ev := range tr.Events() {
		switch ev.Kind {
		case KindSample:
			p, ok := byName[ev.Name]
			if !ok {
				p = &LagProfile{Object: ev.Name}
				byName[ev.Name] = p
				order = append(order, ev.Name)
			}
			p.Samples++
			lastCollected[ev.Name] = ev.A
		case KindReconfig:
			p, ok := byName[ev.Name]
			if !ok {
				p = &LagProfile{Object: ev.Name}
				byName[ev.Name] = p
				order = append(order, ev.Name)
			}
			p.Reconfigs++
			if collected, ok := lastCollected[ev.Name]; ok {
				lag := ev.At - sim.Time(collected)
				if lag < 0 {
					lag = 0
				}
				p.TotalLag += lag
				if lag > p.MaxLag {
					p.MaxLag = lag
				}
			}
		}
	}
	out := make([]LagProfile, 0, len(order))
	for _, name := range order {
		out = append(out, *byName[name])
	}
	return out
}

// RenderLag renders the adaptation-lag report as a fixed-width table.
func RenderLag(rows []LagProfile) string {
	t := metrics.NewTable("adaptation decision lag (sample collection → reconfiguration applied)",
		"object", "samples", "reconfigs", "mean-lag", "max-lag")
	for _, r := range rows {
		t.AddRow(r.Object, fmt.Sprint(r.Samples), fmt.Sprint(r.Reconfigs),
			r.MeanLag().String(), r.MaxLag.String())
	}
	return t.String()
}

// End reports the time of the last recorded event.
func (tr *Tracer) End() sim.Time {
	var end sim.Time
	for _, ev := range tr.Events() {
		if ev.At > end {
			end = ev.At
		}
	}
	return end
}
