package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"repro/internal/sim"
)

// Synthetic process IDs for the non-processor tracks of the Chrome trace.
// Processor p is process p+1; these sit after every real processor.
const (
	pidLockHold = 1000 + iota
	pidLockWait
	pidAdapt
	pidMonitor
)

// chromeComplete is a Chrome trace-event "X" (complete) event: a span with
// an explicit duration. Timestamps are microseconds.
type chromeComplete struct {
	Name string      `json:"name"`
	Cat  string      `json:"cat"`
	Ph   string      `json:"ph"`
	Ts   float64     `json:"ts"`
	Dur  float64     `json:"dur"`
	Pid  int         `json:"pid"`
	Tid  int         `json:"tid"`
	Args *chromeArgs `json:"args,omitempty"`
}

// chromeInstant is an "i" (instant) event.
type chromeInstant struct {
	Name string      `json:"name"`
	Cat  string      `json:"cat"`
	Ph   string      `json:"ph"`
	Ts   float64     `json:"ts"`
	Pid  int         `json:"pid"`
	Tid  int         `json:"tid"`
	S    string      `json:"s"`
	Args *chromeArgs `json:"args,omitempty"`
}

// chromeMeta is an "M" (metadata) event naming a process or thread.
type chromeMeta struct {
	Name string     `json:"name"`
	Ph   string     `json:"ph"`
	Pid  int        `json:"pid"`
	Tid  int        `json:"tid,omitempty"`
	Args chromeName `json:"args"`
}

type chromeName struct {
	Name string `json:"name"`
}

// chromeArgs carries the event-specific payload shown in the Perfetto
// detail pane.
type chromeArgs struct {
	Thread  string `json:"thread,omitempty"`
	Value   int64  `json:"value,omitempty"`
	Waiting int64  `json:"waiting,omitempty"`
	WaitNs  int64  `json:"wait_ns,omitempty"`
	LagNs   int64  `json:"lag_ns,omitempty"`
}

// usec converts virtual nanoseconds to the trace format's microsecond
// timestamps.
func usec(t sim.Time) float64 { return float64(t) / 1000.0 }

// chromeDoc is the top-level JSON object.
type chromeDoc struct {
	TraceEvents     []interface{} `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// WriteChrome renders the recorded events as Chrome trace-event JSON, the
// format Perfetto (ui.perfetto.dev) and chrome://tracing load directly.
//
// Track layout:
//   - one process per simulated processor, with one row per thread pinned
//     to it, carrying the thread's state spans (run / ready / blocked);
//   - a "locks: hold" process with one row per lock, whose spans are the
//     lock's hold intervals (acquire → release);
//   - a "locks: wait" process with one row per thread, whose spans are
//     request → grant waits, annotated with the waiter count at request;
//   - an "adaptation" process carrying sensor-sample and reconfiguration
//     instant events per adaptive object;
//   - a "monitor" process carrying the loosely-coupled pipeline's record
//     collection and delivery instants.
//
// The output is a deterministic function of the event history: identical
// seeds produce byte-identical JSON.
func (tr *Tracer) WriteChrome(w io.Writer) error {
	return writeChrome(w, tr.Events())
}

// writeChrome implements WriteChrome over an explicit event slice.
func writeChrome(w io.Writer, events []Event) error {
	var out []interface{}
	add := func(ev interface{}) { out = append(out, ev) }

	// End of trace, for closing still-open spans.
	var end sim.Time
	for _, ev := range events {
		if ev.At > end {
			end = ev.At
		}
	}

	// Pass 1: name registries, in first-seen (deterministic) order.
	threadName := map[int32]string{}
	threadProc := map[int32]int32{}
	var lockOrder []string
	lockTid := map[string]int{}
	var objOrder []string
	objTid := map[string]int{}
	procSeen := map[int32]bool{}
	monitorSeen := false
	for _, ev := range events {
		if ev.Proc >= 0 {
			procSeen[ev.Proc] = true
		}
		switch ev.Kind {
		case KindThreadFork:
			threadName[ev.Thread] = ev.Name
			threadProc[ev.Thread] = ev.Proc
		case KindLockRequest, KindLockAcquire, KindLockRelease, KindLockBlocked:
			if _, ok := lockTid[ev.Name]; !ok {
				lockTid[ev.Name] = len(lockOrder) + 1
				lockOrder = append(lockOrder, ev.Name)
			}
		case KindSample, KindReconfig:
			if _, ok := objTid[ev.Name]; !ok {
				objTid[ev.Name] = len(objOrder) + 1
				objOrder = append(objOrder, ev.Name)
			}
		case KindMonitorRecord, KindMonitorDeliver:
			monitorSeen = true
		}
	}

	// Metadata: processor processes, thread rows, synthetic processes.
	var procs []int
	for p := range procSeen {
		procs = append(procs, int(p))
	}
	sort.Ints(procs)
	for _, p := range procs {
		add(chromeMeta{Name: "process_name", Ph: "M", Pid: p + 1,
			Args: chromeName{Name: fmt.Sprintf("proc%d", p)}})
	}
	var tids []int
	for id := range threadName {
		tids = append(tids, int(id))
	}
	sort.Ints(tids)
	for _, id := range tids {
		tid := int32(id)
		add(chromeMeta{Name: "thread_name", Ph: "M",
			Pid: int(threadProc[tid]) + 1, Tid: id + 1,
			Args: chromeName{Name: fmt.Sprintf("%s (t%d)", threadName[tid], id)}})
	}
	if len(lockOrder) > 0 {
		add(chromeMeta{Name: "process_name", Ph: "M", Pid: pidLockHold,
			Args: chromeName{Name: "locks: hold"}})
		add(chromeMeta{Name: "process_name", Ph: "M", Pid: pidLockWait,
			Args: chromeName{Name: "locks: wait"}})
		for i, name := range lockOrder {
			add(chromeMeta{Name: "thread_name", Ph: "M", Pid: pidLockHold, Tid: i + 1,
				Args: chromeName{Name: name}})
		}
		for _, id := range tids {
			tid := int32(id)
			add(chromeMeta{Name: "thread_name", Ph: "M", Pid: pidLockWait, Tid: id + 1,
				Args: chromeName{Name: fmt.Sprintf("%s (t%d)", threadName[tid], id)}})
		}
	}
	if len(objOrder) > 0 {
		add(chromeMeta{Name: "process_name", Ph: "M", Pid: pidAdapt,
			Args: chromeName{Name: "adaptation"}})
		for i, name := range objOrder {
			add(chromeMeta{Name: "thread_name", Ph: "M", Pid: pidAdapt, Tid: i + 1,
				Args: chromeName{Name: name}})
		}
	}
	if monitorSeen {
		add(chromeMeta{Name: "process_name", Ph: "M", Pid: pidMonitor,
			Args: chromeName{Name: "monitor pipeline"}})
	}

	// Pass 2: spans and instants.
	type open struct {
		state string
		since sim.Time
	}
	threadOpen := map[int32]*open{} // current thread-state span
	waitOpen := map[int32]Event{}   // thread → outstanding lock request
	holdOpen := map[string]Event{}  // lock → outstanding acquisition
	closeState := func(tid int32, at sim.Time) {
		o := threadOpen[tid]
		if o == nil || o.state == "" {
			return
		}
		add(chromeComplete{Name: o.state, Cat: "thread", Ph: "X",
			Ts: usec(o.since), Dur: usec(at - o.since),
			Pid: int(threadProc[tid]) + 1, Tid: int(tid) + 1})
	}
	setState := func(tid int32, state string, at sim.Time) {
		closeState(tid, at)
		threadOpen[tid] = &open{state: state, since: at}
	}

	for _, ev := range events {
		switch ev.Kind {
		case KindThreadFork:
			threadOpen[ev.Thread] = &open{}
		case KindThreadReady:
			setState(ev.Thread, "ready", ev.At)
		case KindThreadRun:
			setState(ev.Thread, "run", ev.At)
		case KindThreadBlock:
			setState(ev.Thread, "blocked", ev.At)
		case KindThreadDone:
			closeState(ev.Thread, ev.At)
			delete(threadOpen, ev.Thread)

		case KindLockRequest:
			waitOpen[ev.Thread] = ev
		case KindLockAcquire:
			if req, ok := waitOpen[ev.Thread]; ok && req.Name == ev.Name {
				add(chromeComplete{Name: ev.Name, Cat: "lock-wait", Ph: "X",
					Ts: usec(req.At), Dur: usec(ev.At - req.At),
					Pid: pidLockWait, Tid: int(ev.Thread) + 1,
					Args: &chromeArgs{Waiting: req.A, WaitNs: ev.A}})
				delete(waitOpen, ev.Thread)
			}
			holdOpen[ev.Name] = ev
		case KindLockRelease:
			if acq, ok := holdOpen[ev.Name]; ok {
				args := &chromeArgs{}
				if name, ok := threadName[acq.Thread]; ok {
					args.Thread = name
				}
				add(chromeComplete{Name: ev.Name, Cat: "lock-hold", Ph: "X",
					Ts: usec(acq.At), Dur: usec(ev.At - acq.At),
					Pid: pidLockHold, Tid: lockTid[ev.Name],
					Args: args})
				delete(holdOpen, ev.Name)
			}
		case KindLockBlocked:
			add(chromeInstant{Name: "sleep: " + ev.Name, Cat: "lock", Ph: "i",
				Ts: usec(ev.At), Pid: pidLockWait, Tid: int(ev.Thread) + 1, S: "t"})

		case KindSample:
			add(chromeInstant{Name: fmt.Sprintf("sample %s=%d", ev.Name, ev.B),
				Cat: "adapt", Ph: "i", Ts: usec(ev.At),
				Pid: pidAdapt, Tid: objTid[ev.Name], S: "t",
				Args: &chromeArgs{Value: ev.B, LagNs: int64(ev.At) - ev.A}})
		case KindReconfig:
			add(chromeInstant{Name: "reconfigure " + ev.Extra, Cat: "adapt", Ph: "i",
				Ts: usec(ev.At), Pid: pidAdapt, Tid: objTid[ev.Name], S: "p",
				Args: &chromeArgs{Value: ev.A}})

		case KindMonitorRecord:
			add(chromeInstant{Name: fmt.Sprintf("record s%d=%d", ev.B, ev.A),
				Cat: "monitor", Ph: "i", Ts: usec(ev.At),
				Pid: pidMonitor, Tid: 1, S: "t"})
		case KindMonitorDeliver:
			add(chromeInstant{Name: fmt.Sprintf("deliver=%d", ev.B),
				Cat: "monitor", Ph: "i", Ts: usec(ev.At),
				Pid: pidMonitor, Tid: 2, S: "t",
				Args: &chromeArgs{Value: ev.B, LagNs: int64(ev.At) - ev.A}})
		}
	}
	// Close spans still open at end of trace (threads alive at shutdown).
	var openTids []int
	for tid := range threadOpen {
		openTids = append(openTids, int(tid))
	}
	sort.Ints(openTids)
	for _, tid := range openTids {
		closeState(int32(tid), end)
	}

	enc := json.NewEncoder(w)
	return enc.Encode(chromeDoc{TraceEvents: out, DisplayTimeUnit: "ns"})
}
