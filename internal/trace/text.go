package trace

import (
	"bufio"
	"fmt"
	"io"
)

// WriteText renders the recorded events as a plain-text log, one line per
// event:
//
//	      time  proc thread  kind          subject  details
//	40.79µs     p0   t3      lock-acquire  qlock    wait=613ns contended
//
// Like WriteChrome, the output is byte-identical across same-seed runs.
func (tr *Tracer) WriteText(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, ev := range tr.Events() {
		proc, thread := "p-", "t-"
		if ev.Proc >= 0 {
			proc = fmt.Sprintf("p%d", ev.Proc)
		}
		if ev.Thread >= 0 {
			thread = fmt.Sprintf("t%d", ev.Thread)
		}
		if _, err := fmt.Fprintf(bw, "%12d  %-4s %-5s %-13s %s\n",
			int64(ev.At), proc, thread, ev.Kind, detail(ev)); err != nil {
			return err
		}
	}
	if d := tr.Dropped(); d > 0 {
		if _, err := fmt.Fprintf(bw, "# %d events dropped at capacity bound\n", d); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// detail renders the kind-specific tail of a text log line.
func detail(ev Event) string {
	switch ev.Kind {
	case KindEngine:
		return ev.Extra
	case KindThreadFork:
		return ev.Name
	case KindThreadBlock:
		if ev.A > 0 {
			return fmt.Sprintf("timeout=%dns", ev.A)
		}
		return ""
	case KindLockRequest:
		return fmt.Sprintf("%s waiting=%d", ev.Name, ev.A)
	case KindLockBlocked, KindLockRelease:
		return ev.Name
	case KindLockAcquire:
		s := fmt.Sprintf("%s wait=%dns", ev.Name, ev.A)
		if ev.B != 0 {
			s += " contended"
		}
		return s
	case KindSample:
		return fmt.Sprintf("%s value=%d collected=%d", ev.Name, ev.B, ev.A)
	case KindReconfig:
		return fmt.Sprintf("%s %s", ev.Name, ev.Extra)
	case KindMonitorRecord:
		return fmt.Sprintf("sensor=%d value=%d", ev.B, ev.A)
	case KindMonitorDeliver:
		return fmt.Sprintf("value=%d lag=%dns", ev.B, int64(ev.At)-ev.A)
	case KindSubmit:
		s := fmt.Sprintf("%s depth=%d", ev.Name, ev.A)
		if ev.B != 0 {
			s += " self-combine"
		}
		return s
	case KindCombine:
		s := fmt.Sprintf("%s batch=%d", ev.Name, ev.A)
		if ev.B != 0 {
			s += " server"
		}
		return s
	default:
		return ""
	}
}
