package trace_test

import (
	"fmt"
	"testing"

	"repro/internal/cthreads"
	"repro/internal/locks"
	"repro/internal/sim"
	"repro/internal/trace"
)

// benchWorkload is one contended-lock simulation, the hot path the
// nil-tracer guarantee protects. Compare:
//
//	go test -bench 'Tracer(Nil|Enabled)' -benchmem ./internal/trace/
//
// BenchmarkTracerNil must match the pre-trace baseline: 0 tracer
// allocations and no measurable time over an untraced run.
func benchWorkload(b *testing.B, tr *trace.Tracer) {
	b.Helper()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if tr != nil {
			tr.Reset()
		}
		sys := cthreads.New(sim.Config{Nodes: 4})
		sys.SetTracer(tr)
		l := locks.NewSpinLock(sys, 0, "bench", locks.DefaultCosts())
		for w := 0; w < 4; w++ {
			w := w
			sys.Fork(w, fmt.Sprintf("w%d", w), func(t *cthreads.Thread) {
				for j := 0; j < 50; j++ {
					l.Lock(t)
					t.Advance(5 * sim.Microsecond)
					l.Unlock(t)
					t.Advance(5 * sim.Microsecond)
				}
			})
		}
		if err := sys.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTracerNil(b *testing.B)     { benchWorkload(b, nil) }
func BenchmarkTracerEnabled(b *testing.B) { benchWorkload(b, trace.New(1<<16)) }

func BenchmarkEmit(b *testing.B) {
	tr := trace.New(1 << 20)
	ev := trace.Event{At: 1, Kind: trace.KindLockAcquire, Proc: 1, Thread: 2, Name: "l", A: 3, B: 1}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if tr.Len() == 1<<20 {
			tr.Reset()
		}
		tr.Emit(ev)
	}
}

func BenchmarkEmitNil(b *testing.B) {
	var tr *trace.Tracer
	ev := trace.Event{At: 1, Kind: trace.KindLockAcquire, Proc: 1, Thread: 2, Name: "l", A: 3, B: 1}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Emit(ev)
	}
}
