// Package trace is the virtual-time structured event tracer that spans
// every layer of the reproduction: engine events (schedule/fire), thread
// lifecycle and state transitions, lock activity (request, contention,
// sleep, acquisition, release), the adaptive feedback loop (sensor sample,
// reconfiguration applied), and the loosely-coupled general-purpose monitor
// pipeline (record collection and delivery).
//
// A Tracer owns a bounded ring of typed events, each stamped with
// sim.Time, processor/node, and thread ID. Tracing is injectable and
// zero-overhead when disabled: every emit helper is safe on a nil *Tracer
// and performs no allocation and no work beyond the nil check, so the hot
// paths of the simulator, thread package, and lock family can call them
// unconditionally.
//
// All trace content derives from simulated state, so identical seeds
// produce byte-identical exporter output (see WriteChrome, WriteText) —
// the determinism regression tests rely on this.
//
// Exporters and reports:
//
//   - WriteChrome renders Chrome trace-event JSON loadable in Perfetto
//     (one track per processor, lock hold/wait spans as duration events,
//     reconfigurations as instant events).
//   - WriteText renders a plain-text event log, one line per event.
//   - UtilizationTimeline, ContentionProfile, and AdaptationLag derive
//     reports from the event history (report.go).
package trace

import "repro/internal/sim"

// Kind is the type of one trace event.
type Kind uint8

// Event kinds, grouped by the layer that emits them.
const (
	// KindEngine is an engine occurrence; Extra is "schedule", "event"
	// (fire), or a coro lifecycle note. Disabled by the default mask —
	// engine events are extremely hot and mainly useful when debugging
	// the deterministic engine itself.
	KindEngine Kind = iota

	// KindThreadFork: a thread was forked onto Proc. Name is the thread
	// name (the exporter learns thread names from these).
	KindThreadFork
	// KindThreadReady: the thread joined its processor's ready queue.
	KindThreadReady
	// KindThreadRun: the processor dispatched the thread.
	KindThreadRun
	// KindThreadBlock: the thread suspended itself (Block/BlockTimeout).
	// A is the timeout in ns (0 = none).
	KindThreadBlock
	// KindThreadDone: the thread's function returned.
	KindThreadDone

	// KindLockRequest: a thread asked for the lock. Name is the lock
	// name; A is the number of threads already waiting (the quantity of
	// the paper's Figures 4–9).
	KindLockRequest
	// KindLockBlocked: a requester exhausted its spins and went to sleep.
	KindLockBlocked
	// KindLockAcquire: the requester owns the lock. A is the
	// request-to-grant wait in ns; B is 1 if the acquisition was
	// contended.
	KindLockAcquire
	// KindLockRelease: the owner released the lock.
	KindLockRelease

	// KindSample: the feedback loop consumed one monitor sample. Name is
	// the adaptive object; A is the virtual time the value was collected
	// (equal to At for the closely-coupled inline monitor, earlier for
	// the loosely-coupled pipeline); B is the sensed value.
	KindSample
	// KindReconfig: a reconfiguration decision was applied (Ψ). Name is
	// the object; Extra renders the decision (e.g. "spin-time←40"); A is
	// the attribute value when the decision set one.
	KindReconfig

	// KindMonitorRecord: an application thread delivered a trace record
	// to the general-purpose monitor's ring. A is the sensed value; B is
	// the sensor index.
	KindMonitorRecord
	// KindMonitorDeliver: the monitor thread processed one record. A is
	// the collection time in ns (so At−A is the pipeline lag); B is the
	// sensed value.
	KindMonitorDeliver

	// KindSubmit: a caller submitted a method to an active monitor's
	// pending queue and received a future. Name is the monitor; A is the
	// queue depth after the enqueue; B is 1 when the submitter went on to
	// combine the batch itself.
	KindSubmit
	// KindCombine: a combiner (lock holder or server thread) drained one
	// batch of pending methods. Name is the monitor; A is the number of
	// methods executed in the batch; B is 1 when the combiner was the
	// dedicated server thread.
	KindCombine

	kindCount // number of kinds; keep last
)

// kindNames renders kinds for the text exporter and reports.
var kindNames = [kindCount]string{
	KindEngine:         "engine",
	KindThreadFork:     "thread-fork",
	KindThreadReady:    "thread-ready",
	KindThreadRun:      "thread-run",
	KindThreadBlock:    "thread-block",
	KindThreadDone:     "thread-done",
	KindLockRequest:    "lock-request",
	KindLockBlocked:    "lock-blocked",
	KindLockAcquire:    "lock-acquire",
	KindLockRelease:    "lock-release",
	KindSample:         "adapt-sample",
	KindReconfig:       "reconfig",
	KindMonitorRecord:  "mon-record",
	KindMonitorDeliver: "mon-deliver",
	KindSubmit:         "mon-submit",
	KindCombine:        "mon-combine",
}

// String returns the kind's name.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return "unknown"
}

// Category is a bitmask of event groups, used to select what a Tracer
// records.
type Category uint32

// Event categories.
const (
	CatEngine Category = 1 << iota
	CatThread
	CatLock
	CatAdapt
	CatMonitor

	// CatDefault is what New enables: everything except the per-event
	// engine firehose.
	CatDefault = CatThread | CatLock | CatAdapt | CatMonitor
	// CatAll enables every category.
	CatAll = CatEngine | CatDefault
)

// Category returns the category a kind belongs to.
func (k Kind) Category() Category {
	switch k {
	case KindEngine:
		return CatEngine
	case KindThreadFork, KindThreadReady, KindThreadRun, KindThreadBlock, KindThreadDone:
		return CatThread
	case KindLockRequest, KindLockBlocked, KindLockAcquire, KindLockRelease:
		return CatLock
	case KindSample, KindReconfig:
		return CatAdapt
	default:
		return CatMonitor
	}
}

// Event is one trace record. Proc and Thread are -1 when the emitting
// context is not a simulated thread (e.g. a reconfiguration applied during
// experiment setup).
type Event struct {
	At     sim.Time
	Kind   Kind
	Proc   int32
	Thread int32
	// Name is the event's subject: lock name, adaptive-object name, or
	// (for KindThreadFork) the thread's name.
	Name string
	// Extra is a secondary label: a rendered decision for KindReconfig,
	// the engine occurrence for KindEngine.
	Extra string
	// A and B are kind-specific arguments; see the Kind constants.
	A, B int64
}

// DefaultCapacity bounds the event ring when the caller passes a
// non-positive capacity to New. 1M events ≈ 70 MB, enough for every
// experiment in the harness at full instrumentation.
const DefaultCapacity = 1 << 20

// Tracer records typed events into a bounded buffer. The zero of
// *Tracer — nil — is a valid disabled tracer: every method is nil-safe.
type Tracer struct {
	mask    Category
	limit   int
	events  []Event
	dropped uint64
}

// New returns a tracer recording the default categories (everything except
// engine events) into a buffer bounded at capacity events (<= 0 means
// DefaultCapacity). Events past the bound are counted in Dropped and
// discarded — deterministically, since the event stream itself is
// deterministic.
func New(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Tracer{mask: CatDefault, limit: capacity}
}

// SetMask replaces the category mask.
func (tr *Tracer) SetMask(m Category) {
	if tr != nil {
		tr.mask = m
	}
}

// Mask returns the category mask (0 for a nil tracer).
func (tr *Tracer) Mask() Category {
	if tr == nil {
		return 0
	}
	return tr.mask
}

// Enabled reports whether events of category c would be recorded. It is
// the cheap pre-check hot paths may use before assembling event fields.
func (tr *Tracer) Enabled(c Category) bool {
	return tr != nil && tr.mask&c != 0
}

// Emit records one event. Safe (and free) on a nil tracer.
func (tr *Tracer) Emit(ev Event) {
	if tr == nil || tr.mask&ev.Kind.Category() == 0 {
		return
	}
	if len(tr.events) >= tr.limit {
		tr.dropped++
		return
	}
	tr.events = append(tr.events, ev)
}

// Events returns the recorded events in emission order. The slice is the
// tracer's own backing store; callers must not mutate it.
func (tr *Tracer) Events() []Event {
	if tr == nil {
		return nil
	}
	return tr.events
}

// Len reports the number of recorded events.
func (tr *Tracer) Len() int {
	if tr == nil {
		return 0
	}
	return len(tr.events)
}

// Dropped reports how many events were discarded at the capacity bound.
func (tr *Tracer) Dropped() uint64 {
	if tr == nil {
		return 0
	}
	return tr.dropped
}

// Reset discards all recorded events (the mask and bound stay).
func (tr *Tracer) Reset() {
	if tr != nil {
		tr.events = tr.events[:0]
		tr.dropped = 0
	}
}

// EngineHook adapts the tracer to the sim engine's trace callback; install
// with Engine.SetTracer. Engine events are recorded only when CatEngine is
// in the mask.
func (tr *Tracer) EngineHook() sim.Tracer {
	return func(at sim.Time, what string) {
		tr.Emit(Event{At: at, Kind: KindEngine, Proc: -1, Thread: -1, Extra: what})
	}
}
