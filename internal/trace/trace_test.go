package trace_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
	"testing"

	"repro/internal/cthreads"
	"repro/internal/locks"
	"repro/internal/sim"
	"repro/internal/trace"
)

// contendedRun drives an adaptive lock hard enough to produce thread
// blocking, contended acquisitions, and at least one reconfiguration, with
// the given tracer attached. It is the shared scenario for the shape and
// determinism tests.
func contendedRun(t *testing.T, tr *trace.Tracer) {
	t.Helper()
	sys := cthreads.New(sim.Config{Nodes: 4})
	sys.SetTracer(tr)
	l := locks.NewAdaptiveLock(sys, 0, "testlock", locks.DefaultCosts(), nil)
	for i := 0; i < 8; i++ {
		i := i
		sys.Fork(i%4, fmt.Sprintf("worker%d", i), func(th *cthreads.Thread) {
			for j := 0; j < 10; j++ {
				l.Lock(th)
				th.Advance(150 * sim.Microsecond)
				l.Unlock(th)
				th.Advance(10 * sim.Microsecond)
			}
		})
	}
	if err := sys.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestNilTracerIsSafe(t *testing.T) {
	var tr *trace.Tracer
	tr.Emit(trace.Event{Kind: trace.KindThreadRun})
	tr.SetMask(trace.CatAll)
	tr.Reset()
	if tr.Enabled(trace.CatThread) {
		t.Error("nil tracer reports enabled")
	}
	if tr.Len() != 0 || tr.Dropped() != 0 || tr.Events() != nil {
		t.Error("nil tracer reports state")
	}
	// A full simulation with a nil tracer must work untouched.
	contendedRun(t, nil)
}

func TestMaskGatesCategories(t *testing.T) {
	tr := trace.New(1024)
	tr.SetMask(trace.CatAdapt) // only feedback-loop events
	tr.Emit(trace.Event{Kind: trace.KindThreadRun})
	tr.Emit(trace.Event{Kind: trace.KindLockAcquire})
	tr.Emit(trace.Event{Kind: trace.KindReconfig})
	if tr.Len() != 1 {
		t.Fatalf("Len = %d, want 1 (only the CatAdapt event)", tr.Len())
	}
	if tr.Events()[0].Kind != trace.KindReconfig {
		t.Errorf("kept %v, want KindReconfig", tr.Events()[0].Kind)
	}
}

func TestCapacityDropsAreCounted(t *testing.T) {
	tr := trace.New(4)
	for i := 0; i < 10; i++ {
		tr.Emit(trace.Event{Kind: trace.KindThreadRun, At: sim.Time(i)})
	}
	if tr.Len() != 4 {
		t.Fatalf("Len = %d, want 4", tr.Len())
	}
	if tr.Dropped() != 6 {
		t.Fatalf("Dropped = %d, want 6", tr.Dropped())
	}
}

func TestTraceCapturesAllLayers(t *testing.T) {
	tr := trace.New(1 << 16)
	contendedRun(t, tr)
	var got [64]int
	for _, ev := range tr.Events() {
		got[ev.Kind]++
	}
	for _, k := range []trace.Kind{
		trace.KindThreadFork, trace.KindThreadReady, trace.KindThreadRun,
		trace.KindThreadBlock, trace.KindThreadDone,
		trace.KindLockRequest, trace.KindLockAcquire, trace.KindLockRelease,
		trace.KindSample, trace.KindReconfig,
	} {
		if got[k] == 0 {
			t.Errorf("no %v events recorded", k)
		}
	}
}

// TestChromeShape validates the exported Chrome trace-event JSON: the
// document structure, required per-event fields, non-negative durations,
// and the presence of the span and instant families the acceptance
// criteria name.
func TestChromeShape(t *testing.T) {
	tr := trace.New(1 << 16)
	contendedRun(t, tr)

	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf); err != nil {
		t.Fatalf("WriteChrome: %v", err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
		DisplayUnit string           `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("no trace events")
	}

	var threadSpans, lockSpans, reconfigs int
	for i, ev := range doc.TraceEvents {
		ph, _ := ev["ph"].(string)
		name, _ := ev["name"].(string)
		switch ph {
		case "M":
			if _, ok := ev["args"].(map[string]any); !ok {
				t.Fatalf("event %d: metadata without args", i)
			}
		case "X":
			dur, ok := ev["dur"].(float64)
			if !ok || dur < 0 {
				t.Fatalf("event %d (%s): bad dur %v", i, name, ev["dur"])
			}
			if _, ok := ev["ts"].(float64); !ok {
				t.Fatalf("event %d (%s): missing ts", i, name)
			}
			switch name {
			case "run", "ready", "blocked":
				threadSpans++
			case "testlock":
				lockSpans++
			}
		case "i":
			if strings.HasPrefix(name, "reconfigure") {
				reconfigs++
			}
		default:
			t.Fatalf("event %d: unknown phase %q", i, ph)
		}
		if _, ok := ev["pid"]; !ok && ph != "M" {
			t.Fatalf("event %d: missing pid", i)
		}
	}
	if threadSpans == 0 {
		t.Error("no thread-state spans (run/ready/blocked)")
	}
	if lockSpans == 0 {
		t.Error("no lock wait/hold spans")
	}
	if reconfigs == 0 {
		t.Error("no reconfiguration instants")
	}
}

// TestSameSeedByteIdentical runs the identical scenario twice and demands
// byte-identical Chrome and text exports: the tracer must add no
// wall-clock, map-order, or pointer-derived nondeterminism.
func TestSameSeedByteIdentical(t *testing.T) {
	render := func() (string, string) {
		tr := trace.New(1 << 16)
		contendedRun(t, tr)
		var cj, tx bytes.Buffer
		if err := tr.WriteChrome(&cj); err != nil {
			t.Fatalf("WriteChrome: %v", err)
		}
		if err := tr.WriteText(&tx); err != nil {
			t.Fatalf("WriteText: %v", err)
		}
		return cj.String(), tx.String()
	}
	c1, t1 := render()
	c2, t2 := render()
	if c1 != c2 {
		t.Error("Chrome exports differ between identical runs")
	}
	if t1 != t2 {
		t.Error("text exports differ between identical runs")
	}
	if c1 == "" || t1 == "" {
		t.Error("empty export")
	}
}

func TestTextExport(t *testing.T) {
	tr := trace.New(1 << 16)
	contendedRun(t, tr)
	var buf bytes.Buffer
	if err := tr.WriteText(&buf); err != nil {
		t.Fatalf("WriteText: %v", err)
	}
	for _, want := range []string{"thread-fork", "lock-acquire", "reconfig", "testlock"} {
		if !bytes.Contains(buf.Bytes(), []byte(want)) {
			t.Errorf("text export missing %q", want)
		}
	}
}
