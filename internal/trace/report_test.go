package trace

import (
	"strings"
	"testing"

	"repro/internal/sim"
)

func us(n int64) sim.Time { return sim.Time(n) * sim.Microsecond }

// syntheticTrace builds a hand-computable event history: one processor,
// one thread running 40µs of a 100µs trace; one lock with two requests
// (one contended with a 5µs wait and a sleep), two 10µs holds; one
// adaptive object with a sample collected at 20µs and consumed at 50µs,
// and a reconfiguration applied at 60µs (lag 40µs).
func syntheticTrace() *Tracer {
	tr := New(256)
	emit := func(ev Event) { tr.Emit(ev) }
	emit(Event{At: 0, Kind: KindThreadFork, Proc: 0, Thread: 1, Name: "w"})
	emit(Event{At: us(10), Kind: KindThreadRun, Proc: 0, Thread: 1})
	emit(Event{At: us(30), Kind: KindThreadBlock, Proc: 0, Thread: 1})
	emit(Event{At: us(50), Kind: KindThreadRun, Proc: 0, Thread: 1})
	emit(Event{At: us(70), Kind: KindThreadDone, Proc: 0, Thread: 1})

	emit(Event{At: us(10), Kind: KindLockRequest, Proc: 0, Thread: 1, Name: "l", A: 0})
	emit(Event{At: us(10), Kind: KindLockAcquire, Proc: 0, Thread: 1, Name: "l", A: 0, B: 0})
	emit(Event{At: us(20), Kind: KindLockRelease, Proc: 0, Thread: 1, Name: "l"})
	emit(Event{At: us(50), Kind: KindLockRequest, Proc: 0, Thread: 1, Name: "l", A: 3})
	emit(Event{At: us(52), Kind: KindLockBlocked, Proc: 0, Thread: 1, Name: "l"})
	emit(Event{At: us(55), Kind: KindLockAcquire, Proc: 0, Thread: 1, Name: "l", A: int64(us(5)), B: 1})
	emit(Event{At: us(65), Kind: KindLockRelease, Proc: 0, Thread: 1, Name: "l"})

	emit(Event{At: us(50), Kind: KindSample, Proc: -1, Thread: -1, Name: "obj", A: int64(us(20)), B: 4})
	emit(Event{At: us(60), Kind: KindReconfig, Proc: -1, Thread: -1, Name: "obj", Extra: "spin-time=0", A: 0})
	emit(Event{At: us(100), Kind: KindEngine, Name: "event"}) // masked out by default

	return tr
}

func TestUtilizationTimeline(t *testing.T) {
	tr := syntheticTrace()
	rows := tr.UtilizationTimeline(10)
	if len(rows) != 1 {
		t.Fatalf("got %d processors, want 1", len(rows))
	}
	r := rows[0]
	if r.Proc != 0 {
		t.Errorf("proc = %d, want 0", r.Proc)
	}
	// Run spans: 10–30 and 50–70 = 40µs busy out of a 70µs trace end
	// (the engine event is masked, so the last event is thread-done).
	if r.Busy != us(40) {
		t.Errorf("busy = %v, want 40µs", r.Busy)
	}
	if len(r.Timeline) != 10 {
		t.Fatalf("timeline has %d buckets, want 10", len(r.Timeline))
	}
	var sum float64
	for _, f := range r.Timeline {
		if f < 0 || f > 1.0001 {
			t.Errorf("bucket fraction %v out of range", f)
		}
		sum += f
	}
	// 40µs busy over 10 buckets of 7µs each ≈ 5.71 bucket-fractions.
	want := float64(us(40)) / (float64(us(70)) / 10)
	if sum < want-0.01 || sum > want+0.01 {
		t.Errorf("total bucket fraction = %v, want ≈%v", sum, want)
	}
}

func TestContentionProfile(t *testing.T) {
	tr := syntheticTrace()
	rows := tr.ContentionProfile()
	if len(rows) != 1 {
		t.Fatalf("got %d locks, want 1", len(rows))
	}
	p := rows[0]
	if p.Name != "l" {
		t.Errorf("name = %q, want l", p.Name)
	}
	if p.Requests != 2 || p.Contended != 1 || p.Sleeps != 1 {
		t.Errorf("requests/contended/sleeps = %d/%d/%d, want 2/1/1",
			p.Requests, p.Contended, p.Sleeps)
	}
	if p.MaxWaiting != 3 {
		t.Errorf("max waiting = %d, want 3", p.MaxWaiting)
	}
	if p.TotalWait != us(5) || p.MaxWait != us(5) {
		t.Errorf("wait total/max = %v/%v, want 5µs/5µs", p.TotalWait, p.MaxWait)
	}
	if p.Holds != 2 || p.TotalHold != us(20) {
		t.Errorf("holds/total-hold = %d/%v, want 2/20µs", p.Holds, p.TotalHold)
	}
	if p.MeanHold() != us(10) {
		t.Errorf("mean hold = %v, want 10µs", p.MeanHold())
	}
	if p.Reconfigs != 0 {
		t.Errorf("reconfigs = %d, want 0 (reconfig was for another object)", p.Reconfigs)
	}
}

func TestAdaptationLag(t *testing.T) {
	tr := syntheticTrace()
	rows := tr.AdaptationLag()
	if len(rows) != 1 {
		t.Fatalf("got %d objects, want 1", len(rows))
	}
	p := rows[0]
	if p.Object != "obj" || p.Samples != 1 || p.Reconfigs != 1 {
		t.Fatalf("object/samples/reconfigs = %q/%d/%d, want obj/1/1",
			p.Object, p.Samples, p.Reconfigs)
	}
	// Reconfiguration at 60µs attributed to the sample *collected* at
	// 20µs: the lag includes the pipeline delay, not just policy time.
	if p.MeanLag() != us(40) || p.MaxLag != us(40) {
		t.Errorf("lag mean/max = %v/%v, want 40µs/40µs", p.MeanLag(), p.MaxLag)
	}
}

func TestRenderersAreTotal(t *testing.T) {
	tr := syntheticTrace()
	u := RenderUtilization(tr.UtilizationTimeline(8), tr.End())
	c := RenderContention(tr.ContentionProfile())
	l := RenderLag(tr.AdaptationLag())
	for _, s := range []string{u, c, l} {
		if !strings.HasSuffix(s, "\n") || len(s) == 0 {
			t.Errorf("renderer output malformed: %q", s)
		}
	}
	if !strings.Contains(c, "l") || !strings.Contains(l, "obj") {
		t.Error("renderers dropped subjects")
	}
	// Empty tracer: reports must not panic and render headers only.
	empty := New(8)
	_ = RenderUtilization(empty.UtilizationTimeline(8), empty.End())
	_ = RenderContention(empty.ContentionProfile())
	_ = RenderLag(empty.AdaptationLag())
}
