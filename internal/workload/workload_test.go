package workload

import (
	"testing"

	"repro/internal/locks"
	"repro/internal/sim"
)

func wlMachine(procs int) sim.Config {
	return sim.Config{
		Nodes:         procs,
		LocalAccess:   100,
		RemoteAccess:  400,
		AtomicExtra:   100,
		Instr:         50,
		ContextSwitch: 10 * sim.Microsecond,
		Wakeup:        15 * sim.Microsecond,
		Seed:          1,
	}
}

func TestRunCSBasic(t *testing.T) {
	res, err := RunCS(CSConfig{
		Procs: 4, Threads: 4, Iters: 10,
		CSLength: 20 * sim.Microsecond, LocalWork: 50 * sim.Microsecond,
		Machine: wlMachine(4),
	}, SpinStrategy())
	if err != nil {
		t.Fatal(err)
	}
	if res.Elapsed <= 0 {
		t.Fatal("no time elapsed")
	}
	if res.Stats.Acquisitions != 40 {
		t.Fatalf("acquisitions = %d, want 40", res.Stats.Acquisitions)
	}
}

func TestRunCSValidation(t *testing.T) {
	if _, err := RunCS(CSConfig{}, SpinStrategy()); err == nil {
		t.Fatal("RunCS accepted zero config")
	}
}

// With one thread per processor, spinning beats blocking: the spinner has
// nothing better to do with its processor ([MS93] §2, first bullet).
func TestSpinBeatsBlockOneThreadPerProc(t *testing.T) {
	cfg := CSConfig{
		Procs: 4, Threads: 4, Iters: 30,
		CSLength: 20 * sim.Microsecond, LocalWork: 30 * sim.Microsecond,
		Machine: wlMachine(4),
	}
	spin, err := RunCS(cfg, SpinStrategy())
	if err != nil {
		t.Fatal(err)
	}
	block, err := RunCS(cfg, BlockStrategy())
	if err != nil {
		t.Fatal(err)
	}
	if spin.Elapsed >= block.Elapsed {
		t.Fatalf("spin (%v) not faster than block (%v) with threads == procs", spin.Elapsed, block.Elapsed)
	}
}

// With multiple runnable threads per processor under preemptive
// timeslicing, spinning steals cycles from threads that could make
// progress — and a preempted lock holder makes spinners wait entire
// scheduling rotations; blocking wins ([MS93] §2, second bullet).
func TestBlockBeatsSpinMultiprogrammed(t *testing.T) {
	m := wlMachine(2)
	m.Quantum = 500 * sim.Microsecond
	cfg := CSConfig{
		Procs: 2, Threads: 8, Iters: 15,
		CSLength: 100 * sim.Microsecond, LocalWork: 300 * sim.Microsecond,
		Machine: m,
	}
	spin, err := RunCS(cfg, SpinStrategy())
	if err != nil {
		t.Fatal(err)
	}
	block, err := RunCS(cfg, BlockStrategy())
	if err != nil {
		t.Fatal(err)
	}
	if block.Elapsed >= spin.Elapsed {
		t.Fatalf("block (%v) not faster than spin (%v) with threads ≫ procs", block.Elapsed, spin.Elapsed)
	}
}

func TestCombinedStrategiesRun(t *testing.T) {
	cfg := CSConfig{
		Procs: 2, Threads: 6, Iters: 10,
		CSLength: 50 * sim.Microsecond, LocalWork: 100 * sim.Microsecond,
		Machine: wlMachine(2),
	}
	for _, k := range []int64{1, 10, 50} {
		res, err := RunCS(cfg, CombinedStrategy(k))
		if err != nil {
			t.Fatalf("combined-%d: %v", k, err)
		}
		if res.Stats.Acquisitions != 60 {
			t.Fatalf("combined-%d acquisitions = %d, want 60", k, res.Stats.Acquisitions)
		}
	}
}

func TestClientServerAllSchedulers(t *testing.T) {
	base := ClientServerConfig{
		Clients: 4, Requests: 10,
		ServiceTime: 30 * sim.Microsecond, ThinkTime: 60 * sim.Microsecond,
		Machine: wlMachine(5),
	}
	response := map[string]sim.Time{}
	for _, sched := range []string{locks.SchedFCFS, locks.SchedPriority, locks.SchedHandoff} {
		cfg := base
		cfg.Scheduler = sched
		res, err := RunClientServer(cfg)
		if err != nil {
			t.Fatalf("%s: %v", sched, err)
		}
		if res.Served != 40 {
			t.Fatalf("%s: served %d, want 40", sched, res.Served)
		}
		response[sched] = res.MeanResponse
	}
	// The paper's client-server result: priority locks perform best, FCFS
	// worst ([MS93] via §2).
	if response[locks.SchedPriority] >= response[locks.SchedFCFS] {
		t.Fatalf("priority response (%v) not better than FCFS (%v)",
			response[locks.SchedPriority], response[locks.SchedFCFS])
	}
	if response[locks.SchedHandoff] >= response[locks.SchedFCFS] {
		t.Fatalf("handoff response (%v) not better than FCFS (%v)",
			response[locks.SchedHandoff], response[locks.SchedFCFS])
	}
}

func TestClientServerValidation(t *testing.T) {
	if _, err := RunClientServer(ClientServerConfig{Clients: 1, Requests: 1, Scheduler: "bogus"}); err == nil {
		t.Fatal("accepted bogus scheduler")
	}
	if _, err := RunClientServer(ClientServerConfig{Scheduler: locks.SchedFCFS}); err == nil {
		t.Fatal("accepted zero clients")
	}
}

func TestAdaptiveStrategyTracksLoad(t *testing.T) {
	cfg := CSConfig{
		Procs: 4, Threads: 4, Iters: 40,
		CSLength: 5 * sim.Microsecond, LocalWork: 200 * sim.Microsecond,
		Machine: wlMachine(4),
	}
	res, err := RunCS(cfg, AdaptiveStrategy())
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Acquisitions != 160 {
		t.Fatalf("acquisitions = %d, want 160", res.Stats.Acquisitions)
	}
}
