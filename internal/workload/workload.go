// Package workload provides the synthetic locking workloads behind the
// paper's motivation experiments: the critical-section-length sweep of
// Figure 1 (combined locks with different initial spin counts vs. pure
// spin and pure blocking), the client-server pattern used to compare lock
// schedulers (FCFS vs. priority vs. handoff, §2/[MS93]), and the
// spin-vs-block processor-occupancy experiment.
package workload

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/cthreads"
	"repro/internal/locks"
	"repro/internal/profile"
	"repro/internal/sim"
)

// Strategy names a waiting-policy configuration and builds a lock pinned
// to it.
type Strategy struct {
	Name string
	Make func(sys *cthreads.System, node int, costs locks.Costs) locks.Lock
}

// SpinStrategy waits by pure spinning.
func SpinStrategy() Strategy {
	return Strategy{Name: "pure-spin", Make: func(sys *cthreads.System, node int, costs locks.Costs) locks.Lock {
		return locks.NewPureSpinConfigured(sys, node, "spin", costs)
	}}
}

// BlockStrategy waits by pure sleeping.
func BlockStrategy() Strategy {
	return Strategy{Name: "pure-block", Make: func(sys *cthreads.System, node int, costs locks.Costs) locks.Lock {
		return locks.NewPureBlockingConfigured(sys, node, "block", costs)
	}}
}

// CombinedStrategy spins k times, then sleeps (Figure 1's combined locks).
func CombinedStrategy(k int64) Strategy {
	return Strategy{Name: fmt.Sprintf("combined-%d", k), Make: func(sys *cthreads.System, node int, costs locks.Costs) locks.Lock {
		return locks.NewCombinedLock(sys, node, fmt.Sprintf("combined%d", k), costs, k)
	}}
}

// AdaptiveStrategy uses the adaptive lock with the default policy.
func AdaptiveStrategy() Strategy {
	return Strategy{Name: "adaptive", Make: func(sys *cthreads.System, node int, costs locks.Costs) locks.Lock {
		return locks.NewAdaptiveLock(sys, node, "adaptive", costs, nil)
	}}
}

// AdvisoryStrategy uses the advisory lock; RunCS passes each critical
// section's length as the hold hint, so the owner's advice is exact.
func AdvisoryStrategy() Strategy {
	return Strategy{Name: "advisory", Make: func(sys *cthreads.System, node int, costs locks.Costs) locks.Lock {
		return locks.NewAdvisoryLock(sys, node, "advisory", costs)
	}}
}

// MutableStrategy uses the predictive mutable lock: each waiter chooses
// spin, spin-then-block, or block from the monitored hold-time estimate.
func MutableStrategy() Strategy {
	return Strategy{Name: "mutable", Make: func(sys *cthreads.System, node int, costs locks.Costs) locks.Lock {
		return locks.NewMutableLock(sys, node, "mutable", costs)
	}}
}

// CohortStrategy uses the NUMA cohort lock: releases hand off within the
// releasing node while the fairness budget allows.
func CohortStrategy() Strategy {
	return Strategy{Name: "cohort", Make: func(sys *cthreads.System, node int, costs locks.Costs) locks.Lock {
		return locks.NewCohortLock(sys, node, "cohort", costs)
	}}
}

// hintedLock is a lock whose owner can declare its expected hold time.
type hintedLock interface {
	locks.Lock
	LockHint(t *cthreads.Thread, expectedHold sim.Time)
}

// SchedAdaptive selects the adaptive-scheduler configuration in
// RunClientServer: the lock itself switches between FCFS and priority
// release as its queue grows and shrinks (the paper's §7 future work).
const SchedAdaptive = "adaptive"

// CSConfig is a critical-section workload: Threads threads spread over
// Procs processors, each performing Iters lock/unlock cycles around a
// critical section of CSLength, separated by LocalWork of private
// computation.
type CSConfig struct {
	Procs    int
	Threads  int
	Iters    int
	CSLength sim.Time
	// LocalWork is the uncontended computation between critical sections.
	LocalWork sim.Time
	// Jitter randomizes LocalWork by ±Jitter to desynchronize threads
	// (deterministic, from the machine seed).
	Jitter sim.Time
	// LongCS and LongFrac make critical-section lengths variable: each
	// iteration uses LongCS with probability LongFrac, CSLength otherwise
	// (the variable-length regime in which advisory locks shine).
	LongCS   sim.Time
	LongFrac float64
	Machine  sim.Config
	Costs    *locks.Costs
	// Profiler and Ledger, when non-nil, observe the run: virtual-time
	// attribution and adaptation decisions respectively.
	Profiler *profile.Profiler
	Ledger   *core.Ledger
}

// CSResult is the outcome of one critical-section workload run.
type CSResult struct {
	Elapsed sim.Time
	Stats   locks.Stats
}

// RunCS runs the workload with the given waiting strategy and returns the
// application execution time (the paper's Figure 1 y-axis).
func RunCS(cfg CSConfig, strat Strategy) (CSResult, error) {
	if cfg.Procs < 1 || cfg.Threads < 1 || cfg.Iters < 1 {
		return CSResult{}, fmt.Errorf("workload: Procs, Threads, Iters must be positive")
	}
	if cfg.Machine.Nodes < cfg.Procs {
		cfg.Machine.Nodes = cfg.Procs
	}
	costs := locks.DefaultCosts()
	if cfg.Costs != nil {
		costs = *cfg.Costs
	}
	sys := cthreads.New(cfg.Machine)
	sys.SetProfiler(cfg.Profiler)
	sys.SetLedger(cfg.Ledger)
	l := strat.Make(sys, 0, costs)
	for i := 0; i < cfg.Threads; i++ {
		proc := i % cfg.Procs
		sys.Fork(proc, fmt.Sprintf("%s-w%d", strat.Name, i), func(t *cthreads.Thread) {
			for j := 0; j < cfg.Iters; j++ {
				cs := cfg.CSLength
				if cfg.LongCS > 0 && t.Rand().Float64() < cfg.LongFrac {
					cs = cfg.LongCS
				}
				if hl, ok := l.(hintedLock); ok {
					hl.LockHint(t, cs)
				} else {
					l.Lock(t)
				}
				t.Advance(cs)
				l.Unlock(t)
				work := cfg.LocalWork
				if cfg.Jitter > 0 {
					work += t.Rand().Duration(2*cfg.Jitter) - cfg.Jitter
				}
				t.Advance(work)
			}
		})
	}
	if err := sys.Run(); err != nil {
		return CSResult{}, err
	}
	return CSResult{Elapsed: sys.Now(), Stats: l.Stats()}, nil
}

// ClientServerConfig is the [MS93] scheduler-comparison workload: client
// threads enqueue requests under the lock; one high-priority server thread
// drains them. The lock scheduler decides who gets the lock when both
// clients and the server are waiting — priority scheduling favours the
// server (keeping the queue short), FCFS makes it wait behind every
// client, and handoff lets each client pass the lock straight to the
// server.
type ClientServerConfig struct {
	Clients     int
	Requests    int // per client
	ServiceTime sim.Time
	ThinkTime   sim.Time
	Scheduler   string // locks.SchedFCFS, SchedPriority, SchedHandoff
	Machine     sim.Config
	Costs       *locks.Costs
}

// ClientServerResult reports the workload outcome.
type ClientServerResult struct {
	Elapsed sim.Time
	Served  int
	// QueuePeak is the largest request backlog the server accumulated.
	QueuePeak int
	// MeanResponse is the average enqueue-to-served latency — the
	// client-server "performance" the scheduler comparison is about: a
	// scheduler that starves the server of the lock lets the backlog (and
	// with it every response time) grow without bound.
	MeanResponse sim.Time
	Stats        locks.Stats
}

// RunClientServer runs the client-server workload under the given lock
// scheduler and returns total completion time.
func RunClientServer(cfg ClientServerConfig) (ClientServerResult, error) {
	if cfg.Clients < 1 || cfg.Requests < 1 {
		return ClientServerResult{}, fmt.Errorf("workload: Clients and Requests must be positive")
	}
	switch cfg.Scheduler {
	case locks.SchedFCFS, locks.SchedPriority, locks.SchedHandoff, SchedAdaptive:
	default:
		return ClientServerResult{}, fmt.Errorf("workload: unknown scheduler %q", cfg.Scheduler)
	}
	procs := cfg.Clients + 1
	if cfg.Machine.Nodes < procs {
		cfg.Machine.Nodes = procs
	}
	costs := locks.DefaultCosts()
	if cfg.Costs != nil {
		costs = *cfg.Costs
	}
	sys := cthreads.New(cfg.Machine)
	var l *locks.ReconfigurableLock
	if cfg.Scheduler == SchedAdaptive {
		// The §7 future-work configuration: an adaptive lock whose policy
		// reconfigures the *scheduler* method — FCFS while the lock is
		// calm, priority once a queue builds — while the waiting policy
		// stays pure blocking.
		al := locks.NewAdaptiveLock(sys, 0, "cs-lock", costs, core.SchedulerAdapt{
			Method:         locks.MethodScheduler,
			Calm:           locks.SchedFCFS,
			Busy:           locks.SchedPriority,
			QueueThreshold: 2,
		})
		al.SetupPolicy(0, 0, 1, 0)
		l = &al.ReconfigurableLock
	} else {
		l = locks.NewPureBlockingConfigured(sys, 0, "cs-lock", costs)
		if _, err := l.Object().Methods.Install(locks.MethodScheduler, cfg.Scheduler); err != nil {
			return ClientServerResult{}, err
		}
	}

	// Producer-consumer structure: clients produce requests into a shared
	// buffer under the lock and continue (fire-and-forget); the single
	// server consumes them under the same lock. The run ends when every
	// request has been served, so the measurement is dominated by how
	// well the lock scheduler keeps the bottleneck thread — the server —
	// supplied with the lock. Under FCFS the server gets one acquisition
	// per full rotation of contending clients and the queue grows until a
	// long serial drain phase; under priority (and under handoff with
	// clients designating the server) the server consumes concurrently
	// with production.
	total := cfg.Clients * cfg.Requests
	var queue []sim.Time // enqueue timestamps
	peak := 0
	served := 0
	var totalResponse sim.Time

	var server *cthreads.Thread
	server = sys.Fork(0, "server", func(t *cthreads.Thread) {
		t.SetPriority(100)
		for served < total {
			l.Lock(t)
			var enqueuedAt sim.Time = -1
			if len(queue) > 0 {
				enqueuedAt = queue[0]
				queue = queue[1:]
			}
			l.Unlock(t)
			if enqueuedAt >= 0 {
				t.Advance(cfg.ServiceTime)
				served++
				totalResponse += t.Now() - enqueuedAt
			} else {
				t.Advance(10 * sim.Microsecond)
			}
		}
	})

	for i := 0; i < cfg.Clients; i++ {
		sys.Fork(i+1, fmt.Sprintf("client%d", i), func(t *cthreads.Thread) {
			t.SetPriority(1)
			for j := 0; j < cfg.Requests; j++ {
				t.Advance(cfg.ThinkTime)
				l.Lock(t)
				t.Advance(cfg.ServiceTime / 4) // build the request in place
				queue = append(queue, t.Now())
				if len(queue) > peak {
					peak = len(queue)
				}
				if cfg.Scheduler == locks.SchedHandoff {
					l.SetSuccessor(server)
				}
				l.Unlock(t)
			}
		})
	}
	if err := sys.Run(); err != nil {
		return ClientServerResult{}, err
	}
	return ClientServerResult{
		Elapsed:      sys.Now(),
		Served:       served,
		QueuePeak:    peak,
		MeanResponse: totalResponse / sim.Time(total),
		Stats:        l.Stats(),
	}, nil
}
