// Golden tests of the exporters against a hand-scripted attribution
// timeline, so the exact output bytes — the folded-stack grammar, the
// table layout, the histogram digests — are pinned independently of any
// simulation.
package profile_test

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/profile"
	"repro/internal/sim"
)

// scriptedProfiler replays one thread's fixed timeline:
//
//	  0–100  queued
//	100–150  running
//	150–170  running;Lock:l
//	170–200  running;Lock:l;spin:l
//	200–260  running;cs:l
//	260–300  running
//	300–330  done
func scriptedProfiler() *profile.Profiler {
	p := profile.New()
	tp := p.Register("w", 0)
	tp.SetBase(100, profile.BaseRunning)
	tp.Push(150, "Lock:l")
	tp.Push(170, "spin:l")
	tp.Pop(200, "spin:l")
	tp.Pop(200, "Lock:l")
	tp.Push(200, "cs:l")
	tp.Pop(260, "cs:l")
	tp.SetBase(300, profile.BaseDone)
	tp.Flush(330)
	p.RecordWait("l", 50)
	p.RecordWait("l", 70)
	p.RecordHold("l", 60)
	return p
}

func TestWriteFoldedGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := scriptedProfiler().WriteFolded(&buf); err != nil {
		t.Fatal(err)
	}
	want := strings.Join([]string{
		"w;done 30",
		"w;queued 100",
		"w;running 90",
		"w;running;Lock:l 20",
		"w;running;Lock:l;spin:l 30",
		"w;running;cs:l 60",
	}, "\n") + "\n"
	if got := buf.String(); got != want {
		t.Errorf("folded output:\n%s\nwant:\n%s", got, want)
	}
}

func TestWriteTableGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := scriptedProfiler().WriteTable(&buf); err != nil {
		t.Fatal(err)
	}
	want := "" +
		"virtual-time attribution (total 330 ns across 6 keys)\n" +
		"            ns       %  thread;state;frames\n" +
		"           100  30.30%  w;queued\n" +
		"            90  27.27%  w;running\n" +
		"            60  18.18%  w;running;cs:l\n" +
		"            30   9.09%  w;done\n" +
		"            30   9.09%  w;running;Lock:l;spin:l\n" +
		"            20   6.06%  w;running;Lock:l\n"
	if got := buf.String(); got != want {
		t.Errorf("table output:\n%s\nwant:\n%s", got, want)
	}
}

func TestWriteHistogramsGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := scriptedProfiler().WriteHistograms(&buf); err != nil {
		t.Fatal(err)
	}
	// Quantiles are bucket upper bounds: the 50ns wait is in bucket
	// [32,64) and the 70ns wait in [64,128). With n=2 every quantile's
	// target rank truncates to the first sample, so p50 through p999 all
	// report bucket [32,64)'s top, 64ns; max carries the exact tail.
	want := "" +
		"wait l                    n=2        mean=60ns         p50=64ns         p99=64ns         p999=64ns         max=70ns\n" +
		"hold l                    n=1        mean=60ns         p50=60ns         p99=60ns         p999=60ns         max=60ns\n"
	if got := buf.String(); got != want {
		t.Errorf("histogram output:\n%q\nwant:\n%q", got, want)
	}
}

// TestConservationScripted checks the invariant on the scripted timeline
// and that Flush is idempotent.
func TestConservationScripted(t *testing.T) {
	p := scriptedProfiler()
	tp := p.Threads()[0]
	if got := tp.Total(); got != 330 {
		t.Fatalf("total %d, want 330", got)
	}
	tp.Flush(330) // idempotent: no interval has elapsed
	if got := tp.Total(); got != 330 {
		t.Fatalf("total after re-flush %d, want 330", got)
	}
}

// TestPopAbsentFrame pins the multi-exit safety contract: popping a frame
// that is not on the stack charges the interval but leaves the stack
// untouched.
func TestPopAbsentFrame(t *testing.T) {
	p := profile.New()
	tp := p.Register("w", 0)
	tp.Push(0, "Lock:l")
	tp.Pop(10, "cs:l") // absent: charge 0–10 to w;queued;Lock:l, change nothing
	tp.Pop(20, "Lock:l")
	tp.Flush(30)
	var buf bytes.Buffer
	if err := p.WriteFolded(&buf); err != nil {
		t.Fatal(err)
	}
	want := "w;queued 10\nw;queued;Lock:l 20\n"
	if got := buf.String(); got != want {
		t.Errorf("folded output:\n%q\nwant:\n%q", got, want)
	}
}

// TestMergedThreads pins the cross-system merge rule: same-named threads
// (e.g. one workload rerun across a serial sweep) accumulate into the
// same keys.
func TestMergedThreads(t *testing.T) {
	p := profile.New()
	a := p.Register("w", 0)
	a.Flush(100) // 100ns queued
	b := p.Register("w", 0)
	b.SetBase(40, profile.BaseRunning)
	b.Flush(100) // 40ns queued + 60ns running
	var buf bytes.Buffer
	if err := p.WriteFolded(&buf); err != nil {
		t.Fatal(err)
	}
	want := "w;queued 140\nw;running 60\n"
	if got := buf.String(); got != want {
		t.Errorf("folded output:\n%q\nwant:\n%q", got, want)
	}
	if p.Threads()[0].Total() != 100 || p.Threads()[1].Total() != 100 {
		t.Error("per-record totals lost in merge")
	}
}

var _ = sim.Time(0) // keep the sim import if golden constants change form
