package profile

import (
	"fmt"
	"io"
	"sort"

	"repro/internal/sim"
)

// merged sums every thread's accumulators by attribution key. Same-named
// threads (e.g. the same workload run across a serial sweep) merge, which
// keeps the output deterministic regardless of how many systems fed the
// profiler.
func (p *Profiler) merged() (keys []string, sums map[string]sim.Time) {
	sums = map[string]sim.Time{}
	if p == nil {
		return nil, sums
	}
	for _, tp := range p.threads {
		for k, v := range tp.acc {
			if _, ok := sums[k]; !ok {
				keys = append(keys, k)
			}
			sums[k] += v
		}
	}
	sort.Strings(keys)
	return keys, sums
}

// WriteFolded emits the attribution in folded-stack (flamegraph) form:
// one line per (thread;state;frames) key with its virtual-time total in
// nanoseconds, sorted lexically. Feed it to any flamegraph renderer that
// accepts Brendan Gregg's collapsed format.
func (p *Profiler) WriteFolded(w io.Writer) error {
	keys, sums := p.merged()
	for _, k := range keys {
		if _, err := fmt.Fprintf(w, "%s %d\n", k, int64(sums[k])); err != nil {
			return err
		}
	}
	return nil
}

// WriteTable emits a fixed-width attribution table sorted by descending
// virtual time (key order breaks ties), with each key's share of the
// grand total. All quantities are simulated, so the bytes are
// reproducible for a fixed seed.
func (p *Profiler) WriteTable(w io.Writer) error {
	keys, sums := p.merged()
	sort.SliceStable(keys, func(i, j int) bool {
		if sums[keys[i]] != sums[keys[j]] {
			return sums[keys[i]] > sums[keys[j]]
		}
		return keys[i] < keys[j]
	})
	var total sim.Time
	for _, k := range keys {
		total += sums[k]
	}
	if _, err := fmt.Fprintf(w, "virtual-time attribution (total %d ns across %d keys)\n", int64(total), len(keys)); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%14s %7s  %s\n", "ns", "%", "thread;state;frames"); err != nil {
		return err
	}
	for _, k := range keys {
		pct := 0.0
		if total > 0 {
			pct = 100 * float64(sums[k]) / float64(total)
		}
		if _, err := fmt.Fprintf(w, "%14d %6.2f%%  %s\n", int64(sums[k]), pct, k); err != nil {
			return err
		}
	}
	return nil
}

// WriteHistograms emits the per-lock wait- and hold-time digests
// (count, mean, p50/p99/p999, max), one line per histogram, sorted by
// lock name with waits before holds.
func (p *Profiler) WriteHistograms(w io.Writer) error {
	if p == nil {
		return nil
	}
	names := map[string]bool{}
	for n := range p.waitHists {
		names[n] = true
	}
	for n := range p.holdHists {
		names[n] = true
	}
	sorted := make([]string, 0, len(names))
	for n := range names {
		sorted = append(sorted, n)
	}
	sort.Strings(sorted)
	for _, n := range sorted {
		if h := p.waitHists[n]; h != nil {
			if _, err := fmt.Fprintf(w, "wait %-20s %s\n", n, h.Summary()); err != nil {
				return err
			}
		}
		if h := p.holdHists[n]; h != nil {
			if _, err := fmt.Fprintf(w, "hold %-20s %s\n", n, h.Summary()); err != nil {
				return err
			}
		}
	}
	return nil
}
