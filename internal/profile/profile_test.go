// Tests of the attribution profiler against a live thread package: the
// conservation invariant (every tick of a thread's existence is charged
// exactly once) and byte-identical exports across the engine's reference
// modes. The scripted golden tests of the exporters live in
// export_test.go; this file drives real simulations, so it uses an
// external test package (cthreads and locks import profile's host
// package, cthreads, which would cycle otherwise).
package profile_test

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/cthreads"
	"repro/internal/locks"
	"repro/internal/profile"
	"repro/internal/sim"
)

// runWorkload drives a contended mixed-lock workload — adaptive (with a
// live policy feeding the ledger), blocking, MCS, and an adaptive barrier
// — under multiprogramming, with a profiler and ledger attached.
// configure, when non-nil, flips engine reference modes before the run.
func runWorkload(t *testing.T, configure func(*sim.Engine)) (*profile.Profiler, *core.Ledger, sim.Time) {
	t.Helper()
	const procs, workers, iters = 4, 8, 6
	prof := profile.New()
	led := core.NewLedger(core.DefaultLedgerCapacity)
	sys := cthreads.New(sim.Config{Nodes: procs, Quantum: 500 * sim.Microsecond})
	sys.SetProfiler(prof)
	sys.SetLedger(led)
	if configure != nil {
		configure(sys.Engine())
	}
	costs := locks.DefaultCosts()
	policy := core.SimpleAdapt{SpinAttr: locks.AttrSpinTime, WaitingThreshold: 2, Step: 10, MaxSpin: 100}
	al := locks.NewAdaptiveLock(sys, 0, "alock", costs, policy)
	bl := locks.NewBlockingLock(sys, 1, "block", costs)
	ml := locks.NewLocalSpinLock(sys, 2, "mcs", costs)
	bar := locks.NewAdaptiveBarrier(sys, "bar", workers, nil)
	for i := 0; i < workers; i++ {
		sys.Fork(i%procs, fmt.Sprintf("w%d", i), func(t *cthreads.Thread) {
			for j := 0; j < iters; j++ {
				al.Lock(t)
				t.Advance(20 * sim.Microsecond)
				al.Unlock(t)
				bl.Lock(t)
				t.Advance(5 * sim.Microsecond)
				bl.Unlock(t)
				ml.Lock(t)
				t.Advance(2 * sim.Microsecond)
				ml.Unlock(t)
				t.Advance(30 * sim.Microsecond)
				bar.Arrive(t)
			}
		})
	}
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	return prof, led, sys.Now()
}

// TestConservation pins the profiler's core claim: after the run, every
// thread's charged total equals exactly the virtual time between its
// registration and the end of the run — no tick lost, none double-counted,
// including the time absorbed by batched spin fast-forwards.
func TestConservation(t *testing.T) {
	prof, _, end := runWorkload(t, nil)
	if len(prof.Threads()) == 0 {
		t.Fatal("no threads registered")
	}
	for _, tp := range prof.Threads() {
		if got, want := tp.Total(), end-tp.Registered(); got != want {
			t.Errorf("thread %s: charged %d ns, existed %d ns", tp.Name(), got, want)
		}
	}
}

// exports renders every byte-reproducible output of one observed run.
func exports(t *testing.T, prof *profile.Profiler, led *core.Ledger) string {
	t.Helper()
	var buf bytes.Buffer
	for _, write := range []func() error{
		func() error { return prof.WriteFolded(&buf) },
		func() error { return prof.WriteTable(&buf) },
		func() error { return prof.WriteHistograms(&buf) },
		func() error { return led.WriteJSON(&buf) },
		func() error { return led.WriteReport(&buf) },
	} {
		if err := write(); err != nil {
			t.Fatal(err)
		}
	}
	return buf.String()
}

// TestExportsByteIdenticalAcrossModes is the differential suite for the
// observability layer: the profiler and ledger exports must be
// byte-identical with the engine fast paths on (the default), with inline
// self-wakeups disabled, and with spin batching disabled. The profiler
// deliberately does NOT force the slow paths (unlike the tracer), so this
// proves attribution survives the fast-forward arithmetic exactly.
func TestExportsByteIdenticalAcrossModes(t *testing.T) {
	prof, led, end := runWorkload(t, nil)
	base := exports(t, prof, led)
	if len(base) == 0 {
		t.Fatal("empty exports")
	}
	modes := []struct {
		name      string
		configure func(*sim.Engine)
	}{
		{"repeat", nil}, // plain rerun: determinism of the collectors themselves
		{"no-inline-wakeups", func(e *sim.Engine) { e.SetInlineWakeups(false) }},
		{"no-spin-batch", func(e *sim.Engine) { e.SetBatchedSpins(false) }},
	}
	for _, mode := range modes {
		prof2, led2, end2 := runWorkload(t, mode.configure)
		if end2 != end {
			t.Errorf("%s: run ended at %d ns, reference at %d ns", mode.name, end2, end)
		}
		if got := exports(t, prof2, led2); got != base {
			t.Errorf("%s: exports differ from the fast-path reference", mode.name)
		}
	}
}

// TestModeDependentDiagnostics pins the boundary of the byte-identity
// claim: the engine-level dispatch/fast-forward counters are diagnostics
// that legitimately differ across reference modes, which is exactly why
// the exporters exclude them.
func TestModeDependentDiagnostics(t *testing.T) {
	fast, _, _ := runWorkload(t, nil)
	slow, _, _ := runWorkload(t, func(e *sim.Engine) { e.SetBatchedSpins(false) })
	if fast.FastForwards() == 0 {
		t.Error("fast-path run committed no spin fast-forwards — workload has no batched spins to conserve")
	}
	if slow.FastForwards() != 0 {
		t.Errorf("no-spin-batch run committed %d fast-forwards, want 0", slow.FastForwards())
	}
	if fast.Dispatches() == 0 {
		t.Error("no dispatches counted")
	}
}

// TestHistogramsPopulated sanity-checks the per-lock digests: every lock
// in the workload has wait and hold samples, and hold means sit near the
// scripted critical-section lengths.
func TestHistogramsPopulated(t *testing.T) {
	prof, _, _ := runWorkload(t, nil)
	for _, name := range []string{"alock", "block", "mcs"} {
		w, h := prof.WaitHistogram(name), prof.HoldHistogram(name)
		if w == nil || w.Count() == 0 {
			t.Errorf("%s: no wait samples", name)
			continue
		}
		if h == nil || h.Count() == 0 {
			t.Errorf("%s: no hold samples", name)
			continue
		}
		if h.Mean() <= 0 {
			t.Errorf("%s: non-positive mean hold %v", name, h.Mean())
		}
	}
	// The adaptive lock's scripted critical section is 20µs; the recorded
	// holds include lock-release overhead, so the mean is at least that.
	if m := prof.HoldHistogram("alock").Mean(); m < 20*sim.Microsecond {
		t.Errorf("alock mean hold %v < scripted critical section 20µs", m)
	}
}

// TestLedgerRecordsDecisions checks the decision ledger caught the
// adaptive lock's feedback loop: samples for the policy's sensor, at
// least one applied decision with its trigger attached, and a
// configuration transition on every apply entry.
func TestLedgerRecordsDecisions(t *testing.T) {
	_, led, _ := runWorkload(t, nil)
	samples, applies := 0, 0
	for _, e := range led.Entries() {
		switch e.Kind {
		case core.EntrySample:
			samples++
		case core.EntryApply:
			applies++
			if e.Sensor == "" || e.Seq == 0 {
				t.Errorf("apply entry at %d ns has no trigger sample attached", e.At)
			}
			if e.Prev == "" || e.Next == "" {
				t.Errorf("apply entry at %d ns lacks prev/next configuration", e.At)
			}
		}
	}
	if samples == 0 {
		t.Error("ledger recorded no sensor samples")
	}
	if applies == 0 {
		t.Error("ledger recorded no applied decisions")
	}
}

// TestNilInstrumentsAllocationFree pins the nil-receiver contract at the
// API level: every profiler and thread-record method must be callable on
// nil without allocating (the emit sites rely on this).
func TestNilInstrumentsAllocationFree(t *testing.T) {
	var p *profile.Profiler
	var tp *profile.ThreadProf
	allocs := testing.AllocsPerRun(200, func() {
		if p.Register("x", 0) != nil {
			t.Fatal("nil profiler registered a thread")
		}
		p.RecordWait("l", 10)
		p.RecordHold("l", 10)
		p.CoroDispatched(0)
		p.SpinFastForward(0, 8)
		_ = p.Threads()
		_ = p.Dispatches()
		tp.SetBase(5, profile.BaseRunning)
		tp.Push(6, "Lock:l")
		tp.Pop(7, "Lock:l")
		tp.Flush(8)
		_ = tp.Total()
		_ = tp.Name()
	})
	if allocs != 0 {
		t.Errorf("nil instrument methods allocate %.0f allocs/op, want 0", allocs)
	}
}
