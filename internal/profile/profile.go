// Package profile is the exact virtual-time attribution profiler: every
// tick of simulated time is charged to a (thread, object/lock, state)
// triple. Because the engine is deterministic there is no sampling and no
// error bar — the attribution is precise, conserved (per-thread totals
// equal the virtual time the thread existed), and byte-reproducible for a
// fixed seed, including across the engine's reference modes (inline
// wakeups off, spin batching off) and across sweep parallelism.
//
// Attribution model. Each thread carries a ThreadProf holding a base
// state (queued, running, blocked, done) and a stack of frames pushed by
// the instrumented layers: lock methods ("Lock:l", "Unlock:l"), critical
// sections ("cs:l"), sleeps inside a lock ("wait:l"), spin loops
// ("spin:l", including batched fast-forwarded spins — the fast-forward
// commits the same virtual duration the iterations would have cost, so
// the spin frame absorbs it exactly), barrier polls ("poll:b"), the
// inline adaptation step ("adapt:l"), and the active monitor's
// asynchronous execution path ("submit:m" around enqueue and combiner
// election, "combine:m" around a combiner's batch dispatch, "future:m"
// while a caller is blocked on its future). Time is charged on every
// transition: when the base or the frame stack changes at virtual time t,
// the interval since the previous transition is added to the accumulator
// keyed by the outgoing (thread;base;frames) string. Unlike the tracer,
// the profiler does not force the engine's slow paths: batching and
// inline wakeups stay on, which is what makes the conservation test a
// proof that attribution survives the fast-forward arithmetic.
//
// The zero-overhead contract matches internal/trace: a nil *Profiler and
// a nil *ThreadProf are valid disabled instruments, every method is
// nil-safe, and the hot paths guard each emit site with a nil check and
// no other work (BenchmarkProfileDisabled* pin this at zero allocations).
//
// Exporters (see export.go): WriteFolded emits Brendan-Gregg folded
// stacks for flamegraph tooling, WriteTable a fixed-width attribution
// table, WriteHistograms per-lock wait/hold digests with p50/p99/p999.
// Engine-level dispatch and fast-forward counts are mode-dependent
// diagnostics and are deliberately excluded from all three.
package profile

import (
	"strings"

	"repro/internal/metrics"
	"repro/internal/sim"
)

// Base states partitioning a thread's timeline. Exactly one is current at
// any virtual instant between registration and the final flush.
const (
	BaseQueued  = "queued"  // on a processor's ready queue
	BaseRunning = "running" // dispatched on a processor
	BaseBlocked = "blocked" // suspended in Block/BlockTimeout
	BaseDone    = "done"    // thread function returned
)

// Profiler collects per-thread attributions and per-lock wait/hold
// histograms. The nil *Profiler is a valid disabled profiler. A single
// Profiler may span several Systems run back to back (sweeps force serial
// execution while profiling); same-named threads merge by attribution key
// in the exporters.
type Profiler struct {
	threads []*ThreadProf

	waitHists map[string]*metrics.Histogram
	holdHists map[string]*metrics.Histogram

	// Mode-dependent diagnostics fed by the engine attribution hooks.
	// They count mechanism (dispatches, fast-forward commits), not
	// virtual time, so they differ across reference modes and are never
	// part of the byte-reproducible exports.
	dispatches   int64
	fastForwards int64
	batchedIters int64
}

// New returns an enabled profiler.
func New() *Profiler {
	return &Profiler{
		waitHists: map[string]*metrics.Histogram{},
		holdHists: map[string]*metrics.Histogram{},
	}
}

// Register creates the attribution record for one thread, starting its
// timeline (base queued) at now. Returns nil on a nil profiler.
func (p *Profiler) Register(name string, now sim.Time) *ThreadProf {
	if p == nil {
		return nil
	}
	tp := &ThreadProf{
		name:       name,
		base:       BaseQueued,
		registered: now,
		last:       now,
		keyDirty:   true, // first charge builds "name;queued"
		acc:        map[string]sim.Time{},
	}
	p.threads = append(p.threads, tp)
	return tp
}

// Threads returns the registered thread records in registration order.
func (p *Profiler) Threads() []*ThreadProf {
	if p == nil {
		return nil
	}
	return p.threads
}

// RecordWait adds one request-to-grant wait sample for a lock or object.
func (p *Profiler) RecordWait(name string, d sim.Time) {
	if p == nil {
		return
	}
	h := p.waitHists[name]
	if h == nil {
		h = metrics.NewHistogram(name)
		p.waitHists[name] = h
	}
	h.Record(d)
}

// RecordHold adds one acquire-to-release hold sample for a lock or object.
func (p *Profiler) RecordHold(name string, d sim.Time) {
	if p == nil {
		return
	}
	h := p.holdHists[name]
	if h == nil {
		h = metrics.NewHistogram(name)
		p.holdHists[name] = h
	}
	h.Record(d)
}

// WaitHistogram returns the wait-time histogram for name (nil if none).
func (p *Profiler) WaitHistogram(name string) *metrics.Histogram {
	if p == nil {
		return nil
	}
	return p.waitHists[name]
}

// HoldHistogram returns the hold-time histogram for name (nil if none).
func (p *Profiler) HoldHistogram(name string) *metrics.Histogram {
	if p == nil {
		return nil
	}
	return p.holdHists[name]
}

// CoroDispatched implements sim.Attribution: one engine dispatch (a real
// coroutine handoff — inline self-wakeups don't dispatch, so this count
// is mode-dependent and diagnostic only).
func (p *Profiler) CoroDispatched(at sim.Time) {
	if p != nil {
		p.dispatches++
	}
}

// SpinFastForward implements sim.Attribution: the engine committed iters
// batched spin iterations in closed form at virtual time at. Diagnostic
// only — the spin's virtual duration is attributed through the thread's
// spin frame regardless of whether it was batched.
func (p *Profiler) SpinFastForward(at sim.Time, iters int64) {
	if p != nil {
		p.fastForwards++
		p.batchedIters += iters
	}
}

// Dispatches reports the engine dispatch count (mode-dependent).
func (p *Profiler) Dispatches() int64 {
	if p == nil {
		return 0
	}
	return p.dispatches
}

// FastForwards reports committed spin fast-forwards (mode-dependent).
func (p *Profiler) FastForwards() int64 {
	if p == nil {
		return 0
	}
	return p.fastForwards
}

// BatchedIters reports total fast-forwarded spin iterations
// (mode-dependent).
func (p *Profiler) BatchedIters() int64 {
	if p == nil {
		return 0
	}
	return p.batchedIters
}

// ThreadProf is one thread's attribution record. The nil *ThreadProf is a
// valid disabled record (threads of an unprofiled system hold nil).
type ThreadProf struct {
	name       string
	base       string
	frames     []string
	registered sim.Time
	last       sim.Time
	total      sim.Time

	key      string
	keyDirty bool

	acc map[string]sim.Time
}

// Name returns the thread name the record was registered under.
func (tp *ThreadProf) Name() string {
	if tp == nil {
		return ""
	}
	return tp.name
}

// Registered returns the virtual time the thread's timeline started.
func (tp *ThreadProf) Registered() sim.Time {
	if tp == nil {
		return 0
	}
	return tp.registered
}

// Total returns the virtual time charged so far. After Flush(end) it
// equals end − Registered() exactly — the conservation invariant.
func (tp *ThreadProf) Total() sim.Time {
	if tp == nil {
		return 0
	}
	return tp.total
}

// charge attributes the interval since the last transition to the
// current (base, frames) key and moves the transition point to now.
func (tp *ThreadProf) charge(now sim.Time) {
	if d := now - tp.last; d > 0 {
		if tp.keyDirty {
			tp.rebuildKey()
		}
		tp.acc[tp.key] += d
		tp.total += d
	}
	tp.last = now
}

func (tp *ThreadProf) rebuildKey() {
	var b strings.Builder
	n := len(tp.name) + 1 + len(tp.base)
	for _, f := range tp.frames {
		n += 1 + len(f)
	}
	b.Grow(n)
	b.WriteString(tp.name)
	b.WriteByte(';')
	b.WriteString(tp.base)
	for _, f := range tp.frames {
		b.WriteByte(';')
		b.WriteString(f)
	}
	tp.key = b.String()
	tp.keyDirty = false
}

// SetBase charges the elapsed interval and switches the base state.
func (tp *ThreadProf) SetBase(now sim.Time, base string) {
	if tp == nil {
		return
	}
	tp.charge(now)
	if tp.base != base {
		tp.base = base
		tp.keyDirty = true
	}
}

// Push charges the elapsed interval and pushes frame onto the stack.
func (tp *ThreadProf) Push(now sim.Time, frame string) {
	if tp == nil {
		return
	}
	tp.charge(now)
	tp.frames = append(tp.frames, frame)
	tp.keyDirty = true
}

// Pop charges the elapsed interval and removes the topmost occurrence of
// frame from the stack (a no-op if absent, so instrumented paths that
// exit through several routes stay safe).
func (tp *ThreadProf) Pop(now sim.Time, frame string) {
	if tp == nil {
		return
	}
	tp.charge(now)
	for i := len(tp.frames) - 1; i >= 0; i-- {
		if tp.frames[i] == frame {
			tp.frames = append(tp.frames[:i], tp.frames[i+1:]...)
			tp.keyDirty = true
			return
		}
	}
}

// Flush charges the tail interval up to end (the owning system calls it
// for its own threads when its engine run completes; a later run may
// continue charging from there).
func (tp *ThreadProf) Flush(end sim.Time) {
	if tp == nil {
		return
	}
	tp.charge(end)
}
