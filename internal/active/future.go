package active

import (
	"repro/internal/cthreads"
	"repro/internal/sim"
)

// Future is the rendezvous for one asynchronously submitted method. It is
// resolved by whichever combiner executes the body; the submitter (or any
// single other thread) may Wait for it, Poll it, or ignore it entirely.
//
// A future supports at most one waiter at a time — the submission model
// is one caller per method call, as in the Cthreads fork/join it mirrors.
type Future struct {
	m         *Monitor
	body      func(*cthreads.Thread)
	submitted sim.Time
	// done flips exactly once, set by the combiner in the same
	// cooperatively-atomic step that reads waiter — the pairing that
	// makes the check-then-block below race-free.
	done   bool
	waiter *cthreads.Thread
	// server records the combiner variant installed at submit time:
	// a server-mode waiter always blocks, a flat-mode waiter helps
	// combine first.
	server bool
}

// Done reports whether the method has executed. It is a free diagnostic
// read (no simulated charge); simulated code deciding on it should use
// Poll.
func (f *Future) Done() bool { return f.done }

// Poll checks the future with the simulated cost of one flag read from
// the monitor's home node.
func (f *Future) Poll(t *cthreads.Thread) bool {
	t.Compute(futurePollSteps)
	f.m.chargeAccesses(t, 1)
	return f.done
}

// Wait blocks the calling thread until the method has executed, charging
// the wait bookkeeping and attributing blocked time to the
// "future:<name>" frame.
//
// In flat-combining mode an incomplete future means either another
// combiner is mid-drain or the election is free; Wait helps: it attempts
// the election and, on winning, drains the queue itself (executing its
// own method along the way). Only when another combiner holds the
// election does it block — and the combiner's done-then-wake pairs with
// the check-then-block here, so the wakeup cannot be lost.
func (f *Future) Wait(t *cthreads.Thread) {
	t.Compute(futureWaitSteps)
	f.m.chargeAccesses(t, 1) // read the done flag
	if f.done {
		return
	}
	if f.server {
		f.block(t)
		return
	}
	for !f.done {
		if f.m.election.AtomicOr(t, 1) == 0 {
			f.m.combineElected(t)
			continue
		}
		// Another combiner is draining; it must execute this future
		// before it can observe an empty queue, so blocking is safe.
		f.block(t)
	}
}

// block registers the thread as the future's waiter and suspends it. The
// done re-check and the registration are one cooperatively-atomic step.
func (f *Future) block(t *cthreads.Thread) {
	if f.done {
		return
	}
	if p := t.Prof(); p != nil {
		p.Push(t.Now(), f.m.frameFuture)
	}
	if !f.done {
		f.waiter = t
		t.Block()
		t.Compute(f.m.costs.PostWakeSteps)
	}
	if p := t.Prof(); p != nil {
		p.Pop(t.Now(), f.m.frameFuture)
	}
}
