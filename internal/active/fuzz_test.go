package active

import (
	"fmt"
	"testing"

	"repro/internal/cthreads"
	"repro/internal/sim"
)

// fuzzRun executes one schedule of monitor operations derived from data
// and returns the final application state plus per-op execution counts.
// Each byte drives one worker decision: think time, whether to detach
// (Submit and Wait later, possibly after more submissions) or Invoke
// inline. The monitor methods append to a shared journal; mutual
// exclusion, exactly-once execution, and the journal's multiset content
// must match the synchronous reference for every interleaving.
func fuzzRun(t *testing.T, data []byte, mode int64, combiner string) (counter int, execs []int, journalLen int) {
	t.Helper()
	const workers = 4
	sys := testSys(workers)
	m := New(sys, Config{Node: 0, Name: "fuzz-mon", ExecMode: mode, Combiner: combiner, BatchLimit: 3})
	nOps := len(data)
	execs = make([]int, nOps)
	var journal []int
	inside := false
	threads := make([]*cthreads.Thread, workers)
	for w := 0; w < workers; w++ {
		threads[w] = sys.Fork(w, fmt.Sprintf("w%d", w), func(th *cthreads.Thread) {
			var backlog []*Future
			for i := w; i < nOps; i += workers {
				op := i
				b := data[i]
				body := func(bt *cthreads.Thread) {
					if inside {
						t.Errorf("overlapped execution at op %d", op)
					}
					inside = true
					bt.Advance(sim.Time(20 + int(b%7)*30))
					inside = false
					execs[op]++
					journal = append(journal, op)
					counter++
				}
				th.Advance(sim.Time(int(b>>4) * 50)) // think
				switch {
				case mode == ExecAsync && b&1 == 1:
					// Detach: submit now, wait after up to two more ops.
					backlog = append(backlog, m.Submit(th, body))
					if len(backlog) > 2 {
						backlog[0].Wait(th)
						backlog = backlog[1:]
					}
				default:
					m.Invoke(th, body)
				}
			}
			for _, f := range backlog {
				f.Wait(th)
			}
		})
	}
	if combiner == CombinerServer {
		sys.Fork(0, "closer", func(th *cthreads.Thread) {
			for _, w := range threads {
				th.Join(w)
			}
			m.Shutdown(th)
		})
	}
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	return counter, execs, len(journal)
}

// FuzzMonitorInterleavings drives random submit/wait interleavings
// through the flat and server combiners and compares the outcome with
// the synchronous reference: same total effect, every operation executed
// exactly once, and each configuration deterministic run to run.
func FuzzMonitorInterleavings(f *testing.F) {
	f.Add([]byte{0x00})
	f.Add([]byte{0x13, 0x8f, 0x01, 0xfe, 0x77})
	f.Add([]byte("interleave-me"))
	f.Add([]byte{1, 1, 1, 1, 1, 1, 1, 1, 0, 0, 0, 0, 2, 3, 5, 8, 13, 21})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) == 0 || len(data) > 64 {
			t.Skip()
		}
		refCount, refExecs, refJournal := fuzzRun(t, data, ExecSync, CombinerFlat)
		for _, e := range refExecs {
			if e != 1 {
				t.Fatalf("sync reference executed an op %d times", e)
			}
		}
		for _, cfg := range []struct {
			name     string
			combiner string
		}{{"flat", CombinerFlat}, {"server", CombinerServer}} {
			count, execs, journal := fuzzRun(t, data, ExecAsync, cfg.combiner)
			if count != refCount || journal != refJournal {
				t.Fatalf("%s: state %d/%d ops diverged from sync reference %d/%d",
					cfg.name, count, journal, refCount, refJournal)
			}
			for op, e := range execs {
				if e != 1 {
					t.Fatalf("%s: op %d executed %d times, want exactly once", cfg.name, op, e)
				}
			}
			// Determinism: an identical rerun must agree exactly.
			count2, _, _ := fuzzRun(t, data, ExecAsync, cfg.combiner)
			if count2 != count {
				t.Fatalf("%s: nondeterministic across identical runs", cfg.name)
			}
		}
	})
}
