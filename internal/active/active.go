// Package active provides non-blocking adaptive monitors: adaptive
// objects whose methods can execute asynchronously.
//
// The paper's adaptive objects always run a method synchronously under the
// object's lock: the caller acquires, executes, releases. Following the
// ActiveMonitor line of work (PAPERS.md), this package decouples method
// *submission* from method *execution*. A caller may Submit a method body
// and receive a virtual-time Future; a combiner drains the pending queue
// in batches, executing bodies back-to-back under a single lock
// acquisition. Two combiner variants exist, installable as the monitor's
// reconfigurable "combiner" method:
//
//   - flat: the submitter that wins a test-and-set election becomes the
//     combiner and drains the queue itself (flat combining). No extra
//     thread; the election word is the only added shared state.
//   - server: a dedicated server thread pinned to the monitor's home node
//     drains the queue, sleeping when it is empty; submitters wake it.
//
// Whether methods run synchronously at all is itself a mutable attribute
// ("exec-mode"), so a policy (core.ExecModeAdapt) can switch the monitor
// between direct locking and batched asynchronous execution per
// computation phase, off the built-in concurrent-callers sensor. Every
// decision flows through the usual core.Object feedback loop — visible in
// the trace (adapt-sample / reconfig events) and the core.Ledger.
//
// # Why batching wins (and when it does not)
//
// Under the simulator's cost model a contended synchronous handoff pays
// Wakeup (45µs, charged to the releaser) plus ContextSwitch (35µs) per
// method, serialized on the lock. A combiner executes the whole backlog
// under one acquisition — queued methods complete at body-execution
// speed, so tail (p99) method-completion latency collapses under high
// contention. With few callers or long method bodies the extra
// submit/future bookkeeping is pure overhead and synchronous locking
// stays ahead; see EXPERIMENTS.md for both sides measured.
//
// # Simulator charging
//
// Every operation charges virtual time exactly like the lock family:
// instruction steps via Thread.Compute (constants below, in the spirit of
// locks.Costs), memory references to the monitor's home node via the
// machine's access-cost model, and atomic election probes at atomic cost.
// Queue mutations themselves are plain Go between charge points, which
// the engine's cooperative scheduling makes atomic (see DESIGN.md
// "Asynchronous execution legality"). Profiler attribution uses three new
// frames: "submit:<name>" (enqueue + election attempt), "combine:<name>"
// (batch dispatch), and "future:<name>" (a waiter blocked on its future).
package active

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/cthreads"
	"repro/internal/locks"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Attribute and method names of the active monitor's adaptation surface.
const (
	// AttrExecMode selects the execution mode: ExecSync (methods run
	// synchronously under the lock) or ExecAsync (methods are submitted
	// and a combiner executes them). Mutable, so a policy can switch it.
	AttrExecMode = "exec-mode"
	// AttrBatchLimit bounds how many pending methods one combining pass
	// executes under a single lock acquisition. Mutable.
	AttrBatchLimit = "batch-limit"

	// MethodCombiner is the reconfigurable combiner method; its variants
	// are CombinerFlat and CombinerServer.
	MethodCombiner = "combiner"
	// CombinerFlat elects a submitter as combiner (flat combining).
	CombinerFlat = "flat"
	// CombinerServer uses a dedicated server thread as combiner.
	CombinerServer = "server"

	// SensorConcurrent is the monitor's contention sensor: the number of
	// method invocations in flight (submitted or executing, including the
	// prober's own) when an Invoke enters. It is the signal
	// core.ExecModeAdapt switches execution mode on.
	SensorConcurrent = "no-of-concurrent-methods"
)

// Execution-mode attribute values.
const (
	ExecSync  int64 = 0
	ExecAsync int64 = 1
)

// Instruction-step charges of the asynchronous path, calibrated in the
// same spirit as locks.Costs: a submit is an enqueue plus an election
// probe's call overhead; a combiner pays a small dispatch cost per method;
// future operations are a flag read plus bookkeeping.
const (
	submitSteps          = 46
	combineDispatchSteps = 12
	futureWaitSteps      = 14
	futurePollSteps      = 6
	serverWakeSteps      = 8
)

// Config configures a Monitor.
type Config struct {
	// Node is the home node of the monitor's state (queue, election word,
	// attributes); all memory charges go there.
	Node int
	// Name names the monitor in traces, frames, and the ledger.
	Name string
	// Lock, when non-nil, is the mutual-exclusion lock methods run under
	// (e.g. an existing qlock). When nil, a lock of LockKind is built on
	// Node.
	Lock locks.Lock
	// LockKind picks the lock to build when Lock is nil (default
	// locks.KindSpin).
	LockKind locks.Kind
	// Costs is the lock-family cost table (zero value = DefaultCosts).
	Costs locks.Costs
	// ExecMode is the initial exec-mode attribute (ExecSync or ExecAsync).
	ExecMode int64
	// Combiner is the initially installed combiner variant (default
	// CombinerFlat).
	Combiner string
	// BatchLimit is the initial batch-limit attribute (default 8).
	BatchLimit int64
	// SensorEvery delivers every Nth probe of the concurrency sensor to
	// the feedback loop (default 4; same role as the adaptive lock's
	// sampling interval).
	SensorEvery int
	// ServerNode is the processor the dedicated server thread runs on
	// (server combiner only). The zero value places it on Node. Place it
	// on a processor with no long-polling threads: processors are not
	// preempted, so a thread that polls in a loop without blocking or
	// yielding starves a co-located server indefinitely.
	ServerNode int
}

// Stats aggregates a monitor's activity over a run.
type Stats struct {
	// SyncCalls counts Invokes that ran synchronously under the lock.
	SyncCalls uint64
	// Submits counts methods submitted asynchronously.
	Submits uint64
	// Executed counts submitted methods completed by a combiner.
	Executed uint64
	// Batches counts combining passes (lock acquisitions that drained at
	// least one method).
	Batches uint64
	// MaxBatch is the largest single batch.
	MaxBatch uint64
	// SelfCombines counts flat-combining elections won by submitters or
	// waiters; ServerBatches counts batches drained by the server thread.
	SelfCombines  uint64
	ServerBatches uint64
	// ServerWakeups counts times a submitter woke the sleeping server.
	ServerWakeups uint64
	// ModeReads counts exec-mode attribute reads (one per Invoke).
	ModeReads uint64
}

// Monitor is an adaptive monitor with a configurable execution mode. All
// methods must be called from inside simulated threads, except the Setup*
// helpers and accessors documented otherwise.
type Monitor struct {
	sys   *cthreads.System
	node  int
	name  string
	mu    locks.Lock
	obj   *core.Object
	costs locks.Costs

	// election is the flat-combining combiner election word (test-and-set
	// semantics: nonzero = a combiner is active).
	election *sim.Cell

	// pending is the submitted-but-not-yet-executed queue. It is plain Go
	// state mutated only between charge points (cooperatively atomic);
	// the memory traffic it stands for is charged explicitly around every
	// mutation.
	pending []*Future
	// inflight is the number of method invocations in flight (submitted
	// or executing synchronously), the concurrency sensor's value.
	inflight int64

	server         *cthreads.Thread
	serverNode     int
	serverSleeping bool
	serverStop     bool

	latency *metrics.Histogram
	stats   Stats

	frameSubmit  string
	frameCombine string
	frameFuture  string
}

// New builds an active monitor from cfg, defines its adaptation surface
// (attributes, combiner method, concurrency sensor), and wires its
// feedback loop into the system tracer and ledger.
func New(sys *cthreads.System, cfg Config) *Monitor {
	if cfg.Name == "" {
		cfg.Name = "monitor"
	}
	if cfg.Costs == (locks.Costs{}) {
		cfg.Costs = locks.DefaultCosts()
	}
	if cfg.Combiner == "" {
		cfg.Combiner = CombinerFlat
	}
	if cfg.BatchLimit <= 0 {
		cfg.BatchLimit = 8
	}
	if cfg.SensorEvery <= 0 {
		cfg.SensorEvery = 4
	}
	mu := cfg.Lock
	if mu == nil {
		kind := cfg.LockKind
		if kind == "" {
			kind = locks.KindSpin
		}
		mu = locks.MustNew(sys, kind, cfg.Node, cfg.Name+".mu", cfg.Costs)
	}
	if cfg.ServerNode == 0 {
		cfg.ServerNode = cfg.Node
	}
	m := &Monitor{
		sys:          sys,
		node:         cfg.Node,
		serverNode:   cfg.ServerNode,
		name:         cfg.Name,
		mu:           mu,
		costs:        cfg.Costs,
		election:     sys.Machine().NewCell(cfg.Node, cfg.Name+".election", 0),
		latency:      metrics.NewHistogram(cfg.Name + ".method-latency"),
		frameSubmit:  "submit:" + cfg.Name,
		frameCombine: "combine:" + cfg.Name,
		frameFuture:  "future:" + cfg.Name,
	}
	m.obj = core.NewObject(cfg.Name)
	m.obj.Attrs.Define(AttrExecMode, cfg.ExecMode, true)
	m.obj.Attrs.Define(AttrBatchLimit, cfg.BatchLimit, true)
	m.obj.Methods.Define(MethodCombiner, 1, CombinerFlat, CombinerServer)
	if cfg.Combiner != CombinerFlat {
		if _, err := m.obj.Methods.Install(MethodCombiner, cfg.Combiner); err != nil {
			panic(fmt.Sprintf("active: %v", err))
		}
	}
	m.obj.Monitor.AddSensor(SensorConcurrent, cfg.SensorEvery, func() int64 { return m.inflight + 1 })
	sys.WireObject(m.obj, cfg.Name)
	return m
}

// Object exposes the underlying adaptive object (attributes, combiner
// method, sensor, policy) for configuration and inspection.
func (m *Monitor) Object() *core.Object { return m.obj }

// Lock exposes the monitor's mutual-exclusion lock.
func (m *Monitor) Lock() locks.Lock { return m.mu }

// Name returns the monitor's name.
func (m *Monitor) Name() string { return m.name }

// Stats returns activity counters accumulated so far.
func (m *Monitor) Stats() Stats { return m.stats }

// Latency returns the method-completion latency histogram: Invoke entry
// (or Submit) to body completion, in virtual time, for both modes.
func (m *Monitor) Latency() *metrics.Histogram { return m.latency }

// chargeAccesses charges n memory references to the monitor's home node.
func (m *Monitor) chargeAccesses(t *cthreads.Thread, n int) {
	if n <= 0 {
		return
	}
	t.Advance(sim.Time(n) * m.sys.Machine().AccessCost(t.Node(), m.node))
}

// probe samples the concurrency sensor, charging the closely-coupled
// monitor's inline collection cost when the sample is delivered to the
// feedback loop (same cost shape as the adaptive lock's Unlock probe).
func (m *Monitor) probe(t *cthreads.Thread) {
	if _, ok := m.obj.Monitor.Probe(SensorConcurrent); ok {
		t.Compute(m.costs.MonitorSampleSteps)
		m.chargeAccesses(t, 2) // read the sensed state, write the attribute
	}
}

// Invoke runs body as one monitor method in the current execution mode:
// synchronously under the lock when exec-mode is ExecSync, or via
// Submit+Wait when ExecAsync. The concurrency sensor is probed at entry,
// so a monitor with an ExecModeAdapt policy switches mode under this
// call as contention changes.
func (m *Monitor) Invoke(t *cthreads.Thread, body func(*cthreads.Thread)) {
	m.probe(t)
	m.inflight++
	start := t.Now()
	mode := m.obj.Attrs.MustGet(AttrExecMode)
	m.stats.ModeReads++
	m.chargeAccesses(t, 1)
	if mode == ExecSync {
		m.mu.Lock(t)
		body(t)
		m.latency.Record(t.Now() - start)
		m.inflight--
		m.stats.SyncCalls++
		m.mu.Unlock(t)
		return
	}
	f := m.submit(t, body, start)
	f.Wait(t)
}

// Submit enqueues body for asynchronous execution and returns its future.
// In flat-combining mode the submitter attempts the combiner election and,
// if it wins, drains the queue before returning (so an uncontended Submit
// behaves like a slightly dearer synchronous call); in server mode it
// wakes the server thread if sleeping. The returned future's Wait/Poll
// completes the rendezvous. The inflight count it contributes is released
// when the method completes, regardless of whether anyone waits.
func (m *Monitor) Submit(t *cthreads.Thread, body func(*cthreads.Thread)) *Future {
	m.inflight++
	return m.submit(t, body, t.Now())
}

// submit is the common enqueue path; start is the latency-measurement
// origin (Invoke entry, or Submit time).
func (m *Monitor) submit(t *cthreads.Thread, body func(*cthreads.Thread), start sim.Time) *Future {
	if p := t.Prof(); p != nil {
		p.Push(t.Now(), m.frameSubmit)
	}
	t.Compute(submitSteps)
	m.chargeAccesses(t, m.costs.QueueOpAccesses)
	f := &Future{m: m, body: body, submitted: start}
	m.pending = append(m.pending, f)
	depth := int64(len(m.pending))
	variant, err := m.obj.Methods.Installed(MethodCombiner)
	if err != nil {
		panic(fmt.Sprintf("active: %v", err))
	}
	f.server = variant == CombinerServer
	m.stats.Submits++
	if f.server {
		m.ensureServer()
		wake := m.serverSleeping
		if wake {
			m.serverSleeping = false
		}
		m.traceSubmit(t, depth, false)
		if wake {
			m.stats.ServerWakeups++
			t.Compute(serverWakeSteps)
			t.Wake(m.server)
		}
		if p := t.Prof(); p != nil {
			p.Pop(t.Now(), m.frameSubmit)
		}
		return f
	}
	// Flat combining: try the election. Losing is fine — the current
	// combiner is obligated to re-check the queue after releasing the
	// election word, so this future cannot be stranded.
	elected := m.election.AtomicOr(t, 1) == 0
	m.traceSubmit(t, depth, elected)
	if elected {
		m.combineElected(t)
	}
	if p := t.Prof(); p != nil {
		p.Pop(t.Now(), m.frameSubmit)
	}
	return f
}

// combineElected drains the pending queue while holding the election,
// then releases it and re-checks: a submitter that enqueued during the
// release window and lost its own election would otherwise be stranded.
// Called with the election word owned by t.
func (m *Monitor) combineElected(t *cthreads.Thread) {
	for {
		m.stats.SelfCombines++
		m.drain(t, false)
		m.election.Store(t, 0)
		m.chargeAccesses(t, 1) // re-inspect the queue after release
		if len(m.pending) == 0 {
			return
		}
		if m.election.AtomicOr(t, 1) != 0 {
			// Another combiner took over; the queue is their problem.
			return
		}
	}
}

// drain executes pending methods in batches until the queue is observed
// empty. Each batch acquires the monitor lock once, executes up to
// batch-limit bodies back-to-back, and releases — the combining that buys
// the tail-latency win. Caller must be the active combiner (election
// holder or server thread).
func (m *Monitor) drain(t *cthreads.Thread, isServer bool) {
	for {
		m.chargeAccesses(t, 1) // inspect the queue head
		if len(m.pending) == 0 {
			return
		}
		limit := m.obj.Attrs.MustGet(AttrBatchLimit)
		m.chargeAccesses(t, 1)
		if limit <= 0 {
			limit = 1
		}
		m.mu.Lock(t)
		if p := t.Prof(); p != nil {
			p.Push(t.Now(), m.frameCombine)
		}
		var n int64
		for n < limit && len(m.pending) > 0 {
			f := m.pending[0]
			m.pending = m.pending[1:]
			m.chargeAccesses(t, m.costs.QueueOpAccesses)
			t.Compute(combineDispatchSteps)
			f.body(t)
			// Completion: mark done, record latency, and hand off to a
			// registered waiter — all in one cooperatively-atomic step
			// with the waiter's own check-then-block, so no wakeup is
			// lost (DESIGN.md "Asynchronous execution legality").
			f.done = true
			m.latency.Record(t.Now() - f.submitted)
			m.inflight--
			m.stats.Executed++
			n++
			if w := f.waiter; w != nil {
				f.waiter = nil
				t.Wake(w)
			}
		}
		if p := t.Prof(); p != nil {
			p.Pop(t.Now(), m.frameCombine)
		}
		m.stats.Batches++
		if isServer {
			m.stats.ServerBatches++
		}
		if uint64(n) > m.stats.MaxBatch {
			m.stats.MaxBatch = uint64(n)
		}
		m.traceCombine(t, n, isServer)
		m.mu.Unlock(t)
	}
}

// ensureServer forks the dedicated server thread on its configured
// processor the first time the server combiner is used.
func (m *Monitor) ensureServer() {
	if m.server != nil {
		return
	}
	m.server = m.sys.Fork(m.serverNode, m.name+".server", m.serverLoop)
}

// serverLoop is the dedicated combiner: drain when work is pending, sleep
// when the queue is empty, exit when Shutdown is requested.
func (m *Monitor) serverLoop(t *cthreads.Thread) {
	for {
		if m.serverStop {
			return
		}
		if len(m.pending) == 0 {
			// Sleep until a submitter wakes us. The flag set and the
			// block are one cooperatively-atomic step, paired with the
			// submitter's flag-clear-then-wake.
			m.serverSleeping = true
			t.Block()
			t.Compute(m.costs.PostWakeSteps)
			continue
		}
		m.drain(t, true)
	}
}

// Shutdown stops the server thread (if one was ever forked) and joins it.
// Call from the owning thread once no more submissions will arrive; safe
// to call when the server combiner was never used.
func (m *Monitor) Shutdown(t *cthreads.Thread) {
	if m.server == nil {
		return
	}
	m.serverStop = true
	if m.serverSleeping {
		m.serverSleeping = false
		t.Wake(m.server)
	}
	t.Join(m.server)
}

// SetupExecMode sets the exec-mode attribute without charging simulated
// time. For experiment setup only; simulated code reconfigures through
// the policy/Apply path.
func (m *Monitor) SetupExecMode(mode int64) {
	if err := m.obj.Attrs.Set(AttrExecMode, mode, core.OwnerSelf); err != nil {
		panic(fmt.Sprintf("active: %v", err))
	}
}

// traceSubmit records one mon-submit event.
func (m *Monitor) traceSubmit(t *cthreads.Thread, depth int64, selfCombine bool) {
	tr := m.sys.Tracer()
	if tr == nil {
		return
	}
	var b int64
	if selfCombine {
		b = 1
	}
	tr.Emit(trace.Event{At: t.Now(), Kind: trace.KindSubmit,
		Proc: int32(t.Node()), Thread: int32(t.ID()), Name: m.name, A: depth, B: b})
}

// traceCombine records one mon-combine event.
func (m *Monitor) traceCombine(t *cthreads.Thread, batch int64, isServer bool) {
	tr := m.sys.Tracer()
	if tr == nil {
		return
	}
	var b int64
	if isServer {
		b = 1
	}
	tr.Emit(trace.Event{At: t.Now(), Kind: trace.KindCombine,
		Proc: int32(t.Node()), Thread: int32(t.ID()), Name: m.name, A: batch, B: b})
}
