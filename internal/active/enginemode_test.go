package active

import (
	"fmt"
	"testing"

	"repro/internal/cthreads"
	"repro/internal/sim"
)

// monitorFingerprint renders every simulated metric one monitor workload
// produces: final virtual time, the application counter, monitor and
// scheduler counters, the latency digest, per-thread busy time, and
// per-module memory traffic. Byte-identical fingerprints mean no engine
// mode shifted a single simulated unit.
func monitorFingerprint(t *testing.T, mode string, inline, batched bool) string {
	t.Helper()
	cfg := sim.Config{
		Nodes: 4, LocalAccess: 10, RemoteAccess: 40, AtomicExtra: 5,
		Instr: 1, ContextSwitch: 100, Wakeup: 200, Seed: 1,
	}
	sys := cthreads.New(cfg)
	sys.Engine().SetInlineWakeups(inline)
	sys.Engine().SetBatchedSpins(batched)
	mc := Config{Node: 0, Name: "em-mon"}
	switch mode {
	case "sync":
		mc.ExecMode = ExecSync
	case "flat":
		mc.ExecMode = ExecAsync
	case "server":
		mc.ExecMode = ExecAsync
		mc.Combiner = CombinerServer
	}
	m := New(sys, mc)
	counter := 0
	workers := make([]*cthreads.Thread, 6)
	for i := range workers {
		workers[i] = sys.Fork(i%sys.Procs(), fmt.Sprintf("w%d", i), func(th *cthreads.Thread) {
			for j := 0; j < 8; j++ {
				m.Invoke(th, func(b *cthreads.Thread) {
					b.Advance(sim.Time(50 + b.Rand().Intn(300)))
					counter++
				})
				th.Advance(sim.Time(th.Rand().Intn(500)))
			}
		})
	}
	sys.Fork(0, "closer", func(th *cthreads.Thread) {
		for _, w := range workers {
			th.Join(w)
		}
		m.Shutdown(th)
	})
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	fp := fmt.Sprintf("now=%d counter=%d stats=%+v lat=%s sched=%+v",
		sys.Now(), counter, m.Stats(), m.Latency().Summary(), sys.Stats())
	for _, th := range sys.Threads() {
		fp += fmt.Sprintf(" busy:%s=%d", th.Name(), th.Busy())
	}
	mach := sys.Machine()
	for n := 0; n < cfg.Nodes; n++ {
		fp += fmt.Sprintf(" mod%d=%d/%d", n, mach.ModuleAccesses(n), mach.ModuleQueueDelay(n))
	}
	return fp
}

// TestMonitorEngineModeDifferential proves every monitor execution mode
// produces byte-identical simulated metrics across inline-wakeups ×
// spin-batching. The futures and combiners read only virtual-time state,
// so no engine fast path may shift a single unit of any metric.
func TestMonitorEngineModeDifferential(t *testing.T) {
	for _, mode := range []string{"sync", "flat", "server"} {
		mode := mode
		t.Run(mode, func(t *testing.T) {
			ref := monitorFingerprint(t, mode, false, false)
			for _, em := range []struct{ inline, batched bool }{
				{false, true}, {true, false}, {true, true},
			} {
				got := monitorFingerprint(t, mode, em.inline, em.batched)
				if got != ref {
					t.Errorf("inline=%v batched=%v diverges:\nref: %s\ngot: %s",
						em.inline, em.batched, ref, got)
				}
			}
		})
	}
}
