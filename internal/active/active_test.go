package active

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/cthreads"
	"repro/internal/locks"
	"repro/internal/profile"
	"repro/internal/sim"
	"repro/internal/trace"
)

// testSys builds a small fast machine for monitor tests.
func testSys(procs int) *cthreads.System {
	return cthreads.New(sim.Config{
		Nodes:         procs,
		LocalAccess:   10,
		RemoteAccess:  40,
		AtomicExtra:   5,
		Instr:         1,
		ContextSwitch: 100,
		Wakeup:        200,
		Seed:          1,
	})
}

// exercise runs nThreads × nIters Invokes against m, each body
// incrementing a shared counter with a mutual-exclusion check, and
// returns the final counter.
func exercise(t *testing.T, sys *cthreads.System, m *Monitor, nThreads, nIters int) int {
	t.Helper()
	inside := false
	counter := 0
	for i := 0; i < nThreads; i++ {
		proc := i % sys.Procs()
		sys.Fork(proc, fmt.Sprintf("w%d", i), func(th *cthreads.Thread) {
			for j := 0; j < nIters; j++ {
				m.Invoke(th, func(b *cthreads.Thread) {
					if inside {
						t.Errorf("monitor method overlap in %s", m.Name())
					}
					inside = true
					b.Advance(sim.Time(50 + b.Rand().Intn(200)))
					inside = false
					counter++
				})
				th.Advance(sim.Time(th.Rand().Intn(500)))
			}
		})
	}
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	return counter
}

func TestSyncMode(t *testing.T) {
	sys := testSys(4)
	m := New(sys, Config{Node: 0, Name: "sync-mon", ExecMode: ExecSync})
	got := exercise(t, sys, m, 4, 10)
	if got != 40 {
		t.Fatalf("counter = %d, want 40", got)
	}
	st := m.Stats()
	if st.SyncCalls != 40 || st.Submits != 0 {
		t.Fatalf("stats = %+v, want 40 sync calls and no submits", st)
	}
	if m.Latency().Count() != 40 {
		t.Fatalf("latency count = %d, want 40", m.Latency().Count())
	}
	if m.inflight != 0 {
		t.Fatalf("inflight = %d after run, want 0", m.inflight)
	}
}

func TestFlatCombining(t *testing.T) {
	sys := testSys(4)
	m := New(sys, Config{Node: 0, Name: "flat-mon", ExecMode: ExecAsync})
	got := exercise(t, sys, m, 8, 10)
	if got != 80 {
		t.Fatalf("counter = %d, want 80", got)
	}
	st := m.Stats()
	if st.Submits != 80 || st.Executed != 80 {
		t.Fatalf("stats = %+v, want 80 submits and 80 executed", st)
	}
	if st.SelfCombines == 0 || st.Batches == 0 {
		t.Fatalf("stats = %+v, want flat-combining activity", st)
	}
	if st.ServerBatches != 0 {
		t.Fatalf("stats = %+v, server batches on a flat monitor", st)
	}
	if m.Latency().Count() != 80 {
		t.Fatalf("latency count = %d, want 80", m.Latency().Count())
	}
	if len(m.pending) != 0 || m.inflight != 0 {
		t.Fatalf("pending=%d inflight=%d after run, want empty", len(m.pending), m.inflight)
	}
}

func TestServerCombining(t *testing.T) {
	sys := testSys(4)
	m := New(sys, Config{Node: 0, Name: "srv-mon", ExecMode: ExecAsync, Combiner: CombinerServer})
	inside := false
	counter := 0
	workers := make([]*cthreads.Thread, 8)
	for i := 0; i < 8; i++ {
		workers[i] = sys.Fork(i%sys.Procs(), fmt.Sprintf("w%d", i), func(th *cthreads.Thread) {
			for j := 0; j < 10; j++ {
				m.Invoke(th, func(b *cthreads.Thread) {
					if inside {
						t.Error("monitor method overlap under server combiner")
					}
					inside = true
					b.Advance(sim.Time(50 + b.Rand().Intn(200)))
					inside = false
					counter++
				})
				th.Advance(sim.Time(th.Rand().Intn(500)))
			}
		})
	}
	// The server thread never exits on its own: a closer joins the
	// workers and shuts it down.
	sys.Fork(0, "closer", func(th *cthreads.Thread) {
		for _, w := range workers {
			th.Join(w)
		}
		m.Shutdown(th)
	})
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	if counter != 80 {
		t.Fatalf("counter = %d, want 80", counter)
	}
	st := m.Stats()
	if st.Submits != 80 || st.Executed != 80 {
		t.Fatalf("stats = %+v, want 80 submits and 80 executed", st)
	}
	if st.ServerBatches == 0 || st.ServerWakeups == 0 {
		t.Fatalf("stats = %+v, want server activity", st)
	}
	if st.SelfCombines != 0 {
		t.Fatalf("stats = %+v, flat elections on a server monitor", st)
	}
}

func TestSubmitPollDone(t *testing.T) {
	sys := testSys(2)
	m := New(sys, Config{Node: 0, Name: "poll-mon", ExecMode: ExecAsync})
	sys.Fork(0, "w", func(th *cthreads.Thread) {
		ran := false
		f := m.Submit(th, func(*cthreads.Thread) { ran = true })
		// Flat combining with a free election: the submitter combined
		// its own request before Submit returned.
		if !ran || !f.Done() {
			t.Error("uncontended flat submit did not self-combine")
		}
		if !f.Poll(th) {
			t.Error("Poll reported an executed future as pending")
		}
		f.Wait(th) // completed future: must return without blocking
	})
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestBatchLimit(t *testing.T) {
	sys := testSys(2)
	m := New(sys, Config{Node: 0, Name: "batch-mon", ExecMode: ExecAsync, BatchLimit: 2})
	got := exercise(t, sys, m, 8, 5)
	if got != 40 {
		t.Fatalf("counter = %d, want 40", got)
	}
	st := m.Stats()
	if st.MaxBatch > 2 {
		t.Fatalf("max batch = %d, want <= 2", st.MaxBatch)
	}
	if st.Batches < 20 {
		t.Fatalf("batches = %d, want >= 20 with batch-limit 2 and 40 methods", st.Batches)
	}
}

// TestAdaptationSwitches drives a phase-changing workload (calm → storm →
// calm) against an ExecModeAdapt policy and checks the ledger records a
// sensor-driven sync→async switch and the return to sync.
func TestAdaptationSwitches(t *testing.T) {
	sys := testSys(8)
	ledger := core.NewLedger(0)
	sys.SetLedger(ledger)
	m := New(sys, Config{Node: 0, Name: "adapt-mon", ExecMode: ExecSync, SensorEvery: 1})
	m.Object().SetPolicy(core.ExecModeAdapt{
		Attr: AttrExecMode, Sync: ExecSync, Async: ExecAsync,
		AsyncAt: 4, SyncAt: 1,
	})
	body := func(b *cthreads.Thread) { b.Advance(100) }
	// Phase 1+3 (calm): a single caller, no concurrency. Phase 2
	// (storm): 8 concurrent callers hammering the monitor.
	solo := sys.Fork(0, "solo", func(th *cthreads.Thread) {
		for j := 0; j < 30; j++ {
			m.Invoke(th, body)
			th.Advance(2000)
		}
	})
	storm := make([]*cthreads.Thread, 8)
	for i := range storm {
		storm[i] = sys.Fork(i, fmt.Sprintf("storm%d", i), func(th *cthreads.Thread) {
			th.Join(solo)
			for j := 0; j < 40; j++ {
				m.Invoke(th, body)
			}
		})
	}
	sys.Fork(0, "calm-again", func(th *cthreads.Thread) {
		for _, s := range storm {
			th.Join(s)
		}
		for j := 0; j < 30; j++ {
			m.Invoke(th, body)
			th.Advance(2000)
		}
	})
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	asyncDecision := core.Decision{Attr: AttrExecMode, Value: ExecAsync}.String()
	syncDecision := core.Decision{Attr: AttrExecMode, Value: ExecSync}.String()
	var toAsync, toSync bool
	var order []string
	for _, e := range ledger.Entries() {
		if e.Kind == core.EntryApply && e.Err == "" {
			order = append(order, e.Decision)
			if e.Decision == asyncDecision {
				toAsync = true
			}
			if e.Decision == syncDecision && toAsync {
				toSync = true
			}
		}
	}
	if !toAsync || !toSync {
		t.Fatalf("ledger exec-mode applies = %v, want a sync→async and a later async→sync switch", order)
	}
	st := m.Stats()
	if st.SyncCalls == 0 || st.Submits == 0 {
		t.Fatalf("stats = %+v, want both modes exercised", st)
	}
}

// TestDeterminism runs the same contended workload twice and requires
// bit-identical virtual time, stats, and latency digests.
func TestDeterminism(t *testing.T) {
	run := func() string {
		sys := testSys(4)
		m := New(sys, Config{Node: 0, Name: "det-mon", ExecMode: ExecAsync})
		exercise(t, sys, m, 8, 10)
		return fmt.Sprintf("%d %+v %s", sys.Now(), m.Stats(), m.Latency().Summary())
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("nondeterministic run:\n  %s\n  %s", a, b)
	}
}

// TestProfilerFrames checks the new frames appear in the folded output
// and the conservation invariant holds with them on the stack.
func TestProfilerFrames(t *testing.T) {
	sys := testSys(4)
	prof := profile.New()
	sys.SetProfiler(prof)
	m := New(sys, Config{Node: 0, Name: "prof-mon", ExecMode: ExecAsync})
	exercise(t, sys, m, 8, 10)
	var sb strings.Builder
	if err := prof.WriteFolded(&sb); err != nil {
		t.Fatal(err)
	}
	folded := sb.String()
	for _, frame := range []string{"submit:prof-mon", "combine:prof-mon"} {
		if !strings.Contains(folded, frame) {
			t.Errorf("folded output missing frame %q:\n%s", frame, folded)
		}
	}
	end := sys.Now()
	for _, tp := range prof.Threads() {
		if got, want := tp.Total(), end-tp.Registered(); got != want {
			t.Errorf("conservation violated for %s: total %d, lifetime %d", tp.Name(), got, want)
		}
	}
}

// TestTraceEvents checks mon-submit/mon-combine events are recorded and
// render in the text exporter.
func TestTraceEvents(t *testing.T) {
	sys := testSys(4)
	tr := trace.New(4096)
	sys.SetTracer(tr)
	m := New(sys, Config{Node: 0, Name: "tr-mon", ExecMode: ExecAsync})
	exercise(t, sys, m, 4, 5)
	var submits, combines int
	for _, ev := range tr.Events() {
		switch ev.Kind {
		case trace.KindSubmit:
			submits++
		case trace.KindCombine:
			combines++
		}
	}
	if submits != 20 || combines == 0 {
		t.Fatalf("trace: %d submits (want 20), %d combines (want > 0)", submits, combines)
	}
	var sb strings.Builder
	if err := tr.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "mon-submit") || !strings.Contains(sb.String(), "mon-combine") {
		t.Fatalf("text exporter missing monitor events:\n%s", sb.String())
	}
}

// TestExternalLock hands the monitor an existing lock (the TSP wiring).
func TestExternalLock(t *testing.T) {
	sys := testSys(4)
	l := locks.MustNew(sys, locks.KindBlocking, 0, "shared", locks.DefaultCosts())
	m := New(sys, Config{Node: 0, Name: "ext-mon", Lock: l, ExecMode: ExecAsync})
	if m.Lock() != l {
		t.Fatal("monitor did not adopt the provided lock")
	}
	if got := exercise(t, sys, m, 4, 5); got != 20 {
		t.Fatalf("counter = %d, want 20", got)
	}
}

func TestShutdownWithoutServer(t *testing.T) {
	sys := testSys(2)
	m := New(sys, Config{Node: 0, Name: "noop-mon", ExecMode: ExecSync})
	sys.Fork(0, "w", func(th *cthreads.Thread) {
		m.Invoke(th, func(*cthreads.Thread) {})
		m.Shutdown(th) // no server ever forked: must be a no-op
	})
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
}
