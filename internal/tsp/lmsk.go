package tsp

// This file implements the LMSK branch-and-bound machinery: search-tree
// nodes carrying a reduced cost matrix and a lower bound, matrix
// reduction, penalty-based branching-edge selection, and node expansion
// into include/exclude children (with subtour elimination) or a completed
// tour.

// Edge is a directed edge of the (symmetric, but LMSK-treated-as-directed)
// tour under construction.
type Edge struct {
	From, To int
}

// Node is one subproblem of the search tree: the set of still-active rows
// and columns of the reduced cost matrix, the edges already committed, and
// the lower bound on any tour below this node.
type Node struct {
	inst *Instance
	// rows and cols map matrix indices to city numbers.
	rows, cols []int
	// m is the reduced cost matrix, len(rows)×len(cols), row-major.
	m []int64
	// Bound is the lower bound of the subproblem.
	Bound int64
	// Edges are the committed (included) edges.
	Edges []Edge
	// nxt and prv are successor/predecessor city arrays (-1 = none),
	// tracking committed path fragments for subtour elimination.
	nxt, prv []int
	// Seq is an insertion sequence number used to break bound ties
	// deterministically in priority queues.
	Seq uint64
}

// Size returns the number of active rows (remaining branching depth).
func (n *Node) Size() int { return len(n.rows) }

// at returns m[r][c] by matrix index.
func (n *Node) at(r, c int) int64 { return n.m[r*len(n.cols)+c] }

// set writes m[r][c].
func (n *Node) set(r, c int, v int64) { n.m[r*len(n.cols)+c] = v }

// NewRoot builds the root subproblem: the full cost matrix, reduced.
func NewRoot(in *Instance) *Node {
	n := &Node{
		inst: in,
		rows: make([]int, in.N),
		cols: make([]int, in.N),
		m:    make([]int64, in.N*in.N),
		nxt:  make([]int, in.N),
		prv:  make([]int, in.N),
	}
	for i := 0; i < in.N; i++ {
		n.rows[i] = i
		n.cols[i] = i
		n.nxt[i] = -1
		n.prv[i] = -1
		copy(n.m[i*in.N:(i+1)*in.N], in.Cost[i])
	}
	n.reduce()
	return n
}

// clone deep-copies the node.
func (n *Node) clone() *Node {
	c := &Node{
		inst:  n.inst,
		rows:  append([]int(nil), n.rows...),
		cols:  append([]int(nil), n.cols...),
		m:     append([]int64(nil), n.m...),
		Bound: n.Bound,
		Edges: append([]Edge(nil), n.Edges...),
		nxt:   append([]int(nil), n.nxt...),
		prv:   append([]int(nil), n.prv...),
	}
	return c
}

// reduce subtracts each row's and then each column's minimum, adding the
// total reduction to the bound. A row or column with no finite entry makes
// the subproblem infeasible (Bound ≥ Inf).
func (n *Node) reduce() {
	nr, nc := len(n.rows), len(n.cols)
	for r := 0; r < nr; r++ {
		min := Inf
		for c := 0; c < nc; c++ {
			if v := n.at(r, c); v < min {
				min = v
			}
		}
		if min >= Inf {
			n.Bound = Inf
			return
		}
		if min > 0 {
			for c := 0; c < nc; c++ {
				if v := n.at(r, c); v < Inf {
					n.set(r, c, v-min)
				}
			}
			n.Bound += min
		}
	}
	for c := 0; c < nc; c++ {
		min := Inf
		for r := 0; r < nr; r++ {
			if v := n.at(r, c); v < min {
				min = v
			}
		}
		if min >= Inf {
			n.Bound = Inf
			return
		}
		if min > 0 {
			for r := 0; r < nr; r++ {
				if v := n.at(r, c); v < Inf {
					n.set(r, c, v-min)
				}
			}
			n.Bound += min
		}
	}
}

// pivot selects the branching zero cell: the zero whose exclusion would
// raise the bound the most (maximum penalty = row second-minimum + column
// second-minimum). Returns matrix indices and the penalty; ok=false if the
// matrix has no zero (infeasible).
func (n *Node) pivot() (pr, pc int, penalty int64, ok bool) {
	nr, nc := len(n.rows), len(n.cols)
	best := int64(-1)
	for r := 0; r < nr; r++ {
		for c := 0; c < nc; c++ {
			if n.at(r, c) != 0 {
				continue
			}
			rowMin := Inf
			for c2 := 0; c2 < nc; c2++ {
				if c2 != c && n.at(r, c2) < rowMin {
					rowMin = n.at(r, c2)
				}
			}
			colMin := Inf
			for r2 := 0; r2 < nr; r2++ {
				if r2 != r && n.at(r2, c) < colMin {
					colMin = n.at(r2, c)
				}
			}
			p := rowMin + colMin
			if p > Inf {
				p = Inf
			}
			if p > best {
				best, pr, pc = p, r, c
			}
		}
	}
	if best < 0 {
		return 0, 0, 0, false
	}
	return pr, pc, best, true
}

// exclude builds the child with edge (rows[pr] → cols[pc]) forbidden.
func (n *Node) exclude(pr, pc int) *Node {
	c := n.clone()
	c.set(pr, pc, Inf)
	c.reduce()
	return c
}

// include builds the child that commits edge (rows[pr] → cols[pc]): the
// row and column are deleted, the path fragments are merged, and the edge
// that would close a premature subtour is forbidden.
func (n *Node) include(pr, pc int) *Node {
	from, to := n.rows[pr], n.cols[pc]
	nr, nc := len(n.rows), len(n.cols)

	c := &Node{
		inst:  n.inst,
		rows:  make([]int, 0, nr-1),
		cols:  make([]int, 0, nc-1),
		m:     make([]int64, 0, (nr-1)*(nc-1)),
		Bound: n.Bound,
		Edges: append(append([]Edge(nil), n.Edges...), Edge{From: from, To: to}),
		nxt:   append([]int(nil), n.nxt...),
		prv:   append([]int(nil), n.prv...),
	}
	for r := 0; r < nr; r++ {
		if r != pr {
			c.rows = append(c.rows, n.rows[r])
		}
	}
	for cc := 0; cc < nc; cc++ {
		if cc != pc {
			c.cols = append(c.cols, n.cols[cc])
		}
	}
	for r := 0; r < nr; r++ {
		if r == pr {
			continue
		}
		for cc := 0; cc < nc; cc++ {
			if cc == pc {
				continue
			}
			c.m = append(c.m, n.at(r, cc))
		}
	}

	// Merge fragments and forbid the closing edge end→start while the
	// tour is incomplete.
	c.nxt[from] = to
	c.prv[to] = from
	start := from
	for c.prv[start] != -1 {
		start = c.prv[start]
	}
	end := to
	for c.nxt[end] != -1 {
		end = c.nxt[end]
	}
	if len(c.Edges) < n.inst.N-1 {
		if er, ok := c.rowIndex(end); ok {
			if sc, ok2 := c.colIndex(start); ok2 {
				c.set(er, sc, Inf)
			}
		}
	}
	c.reduce()
	return c
}

// rowIndex finds the matrix row of a city.
func (n *Node) rowIndex(city int) (int, bool) {
	for i, r := range n.rows {
		if r == city {
			return i, true
		}
	}
	return 0, false
}

// colIndex finds the matrix column of a city.
func (n *Node) colIndex(city int) (int, bool) {
	for i, c := range n.cols {
		if c == city {
			return i, true
		}
	}
	return 0, false
}

// complete finishes a size-2 node: the two remaining edges are forced.
// Returns nil if neither assignment is feasible.
func (n *Node) complete() *Tour {
	if len(n.rows) != 2 || len(n.cols) != 2 {
		panic("tsp: complete on node of wrong size")
	}
	// Two possible assignments; pick the feasible (cheaper) one.
	a := n.at(0, 0) + n.at(1, 1)
	b := n.at(0, 1) + n.at(1, 0)
	var pairs [2]Edge
	var add int64
	switch {
	case a < Inf && (b >= Inf || a <= b):
		pairs = [2]Edge{{n.rows[0], n.cols[0]}, {n.rows[1], n.cols[1]}}
		add = a
	case b < Inf:
		pairs = [2]Edge{{n.rows[0], n.cols[1]}, {n.rows[1], n.cols[0]}}
		add = b
	default:
		return nil
	}
	nxt := append([]int(nil), n.nxt...)
	for _, e := range pairs {
		nxt[e.From] = e.To
	}
	order := make([]int, 0, n.inst.N)
	city := 0
	for i := 0; i < n.inst.N; i++ {
		order = append(order, city)
		city = nxt[city]
		if city == -1 {
			return nil // broken chain: infeasible assignment
		}
	}
	if city != 0 {
		return nil // did not close the cycle
	}
	var cost int64
	for i, c := range order {
		cost += n.inst.Cost[c][order[(i+1)%n.inst.N]]
	}
	_ = add
	return &Tour{Order: order, Cost: cost}
}

// ExpandResult is the outcome of expanding one node.
type ExpandResult struct {
	// Children are the feasible subproblems (bound < Inf), best first.
	Children []*Node
	// Tour is non-nil when the node completed a tour.
	Tour *Tour
	// Work approximates the cells touched, for simulation time charging.
	Work int
}

// Expand performs one LMSK branching step.
func (n *Node) Expand() ExpandResult {
	k := len(n.rows)
	res := ExpandResult{Work: 3 * k * k}
	if n.Bound >= Inf {
		return res
	}
	if k == 2 {
		res.Tour = n.complete()
		return res
	}
	pr, pc, penalty, ok := n.pivot()
	if !ok {
		return res
	}
	inc := n.include(pr, pc)
	if inc.Bound < Inf {
		res.Children = append(res.Children, inc)
	}
	exc := n.exclude(pr, pc)
	_ = penalty
	if exc.Bound < Inf {
		res.Children = append(res.Children, exc)
	}
	return res
}
