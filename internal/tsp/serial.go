package tsp

import (
	"container/heap"
	"fmt"
)

// nodeHeap is a best-first priority queue of subproblems ordered by lower
// bound, with insertion order breaking ties so runs are deterministic.
type nodeHeap struct {
	ns  []*Node
	seq uint64
}

func (h *nodeHeap) Len() int { return len(h.ns) }
func (h *nodeHeap) Less(i, j int) bool {
	if h.ns[i].Bound != h.ns[j].Bound {
		return h.ns[i].Bound < h.ns[j].Bound
	}
	return h.ns[i].Seq < h.ns[j].Seq
}
func (h *nodeHeap) Swap(i, j int) { h.ns[i], h.ns[j] = h.ns[j], h.ns[i] }
func (h *nodeHeap) Push(x interface{}) {
	n := x.(*Node)
	h.seq++
	n.Seq = h.seq
	h.ns = append(h.ns, n)
}
func (h *nodeHeap) Pop() interface{} {
	old := h.ns
	n := old[len(old)-1]
	old[len(old)-1] = nil
	h.ns = old[:len(old)-1]
	return n
}

// push adds a node.
func (h *nodeHeap) push(n *Node) { heap.Push(h, n) }

// pop removes the best node, or nil when empty.
func (h *nodeHeap) pop() *Node {
	if len(h.ns) == 0 {
		return nil
	}
	return heap.Pop(h).(*Node)
}

// popOldest removes and returns the oldest inserted node (FIFO
// discipline), or nil when empty. The paper's plain distributed
// implementation keeps only partially ordered work queues; FIFO service
// models that partial ordering, and is what the load-balancing variant
// improves on.
func (h *nodeHeap) popOldest() *Node {
	if len(h.ns) == 0 {
		return nil
	}
	idx := 0
	for i, n := range h.ns {
		if n.Seq < h.ns[idx].Seq {
			idx = i
		}
	}
	return heap.Remove(h, idx).(*Node)
}

// peekBound returns the best bound, or Inf when empty.
func (h *nodeHeap) peekBound() int64 {
	if len(h.ns) == 0 {
		return Inf
	}
	return h.ns[0].Bound
}

// SerialResult is the outcome of a sequential solve.
type SerialResult struct {
	Tour       Tour
	Expansions int
	// WorkUnits is the summed Work of all expansions, the quantity the
	// simulated solvers charge time for.
	WorkUnits int
}

// SolveSerial runs the LMSK algorithm to optimality with best-first
// search, natively (no simulation). It is both the testing oracle above
// brute-force sizes and the work model for the simulated sequential run.
func SolveSerial(in *Instance) SerialResult {
	var h nodeHeap
	h.push(NewRoot(in))
	best := Inf
	var bestTour *Tour
	res := SerialResult{}
	for {
		if h.peekBound() >= best {
			break
		}
		n := h.pop()
		if n == nil {
			break
		}
		out := n.Expand()
		res.Expansions++
		res.WorkUnits += out.Work
		if out.Tour != nil && out.Tour.Cost < best {
			best = out.Tour.Cost
			bestTour = out.Tour
		}
		for _, c := range out.Children {
			if c.Bound < best {
				h.push(c)
			}
		}
	}
	if bestTour == nil {
		panic(fmt.Sprintf("tsp: no tour found for %s", in))
	}
	res.Tour = *bestTour
	return res
}

// SolveBruteForce enumerates all tours (first city fixed) and returns the
// optimum. Usable only for small N; the oracle for LMSK tests.
func SolveBruteForce(in *Instance) Tour {
	if in.N > 10 {
		panic("tsp: brute force beyond 10 cities")
	}
	perm := make([]int, in.N-1)
	for i := range perm {
		perm[i] = i + 1
	}
	best := Tour{Cost: Inf}
	order := make([]int, in.N)
	var rec func(k int)
	rec = func(k int) {
		if k == len(perm) {
			order[0] = 0
			copy(order[1:], perm)
			var cost int64
			for i := range order {
				cost += in.Cost[order[i]][order[(i+1)%in.N]]
			}
			if cost < best.Cost {
				best = Tour{Order: append([]int(nil), order...), Cost: cost}
			}
			return
		}
		for i := k; i < len(perm); i++ {
			perm[k], perm[i] = perm[i], perm[k]
			rec(k + 1)
			perm[k], perm[i] = perm[i], perm[k]
		}
	}
	rec(0)
	return best
}

// GreedyTour builds a nearest-neighbour tour from city 0: a fast upper
// bound for seeding branch-and-bound incumbents or sanity-checking
// optima (it is never below the optimum).
func GreedyTour(in *Instance) Tour {
	order := make([]int, 0, in.N)
	visited := make([]bool, in.N)
	city := 0
	order = append(order, city)
	visited[city] = true
	var cost int64
	for len(order) < in.N {
		best, bestCost := -1, Inf
		for next := 0; next < in.N; next++ {
			if !visited[next] && in.Cost[city][next] < bestCost {
				best, bestCost = next, in.Cost[city][next]
			}
		}
		cost += bestCost
		city = best
		visited[city] = true
		order = append(order, city)
	}
	cost += in.Cost[city][0]
	return Tour{Order: order, Cost: cost}
}
