package tsp

import (
	"bytes"
	"strings"
	"testing"
)

const euc2dFixture = `NAME: square5
TYPE: TSP
COMMENT: unit test fixture
DIMENSION: 5
EDGE_WEIGHT_TYPE: EUC_2D
NODE_COORD_SECTION
1 0 0
2 10 0
3 10 10
4 0 10
5 5 5
EOF
`

func TestParseEUC2D(t *testing.T) {
	in, err := ParseTSPLIB(strings.NewReader(euc2dFixture))
	if err != nil {
		t.Fatal(err)
	}
	if in.N != 5 {
		t.Fatalf("N = %d, want 5", in.N)
	}
	if in.Cost[0][1] != 10 || in.Cost[0][2] != 14 {
		t.Fatalf("distances wrong: 0→1 = %d (want 10), 0→2 = %d (want 14)", in.Cost[0][1], in.Cost[0][2])
	}
	if in.Cost[0][0] != Inf {
		t.Fatal("diagonal not Inf")
	}
	// Cross-check with the solver: perimeter optimum with center visited
	// on the way is well-defined and the oracle agrees.
	got := SolveSerial(in)
	want := SolveBruteForce(in)
	if got.Tour.Cost != want.Cost {
		t.Fatalf("LMSK %d vs brute force %d", got.Tour.Cost, want.Cost)
	}
}

func TestParseFullMatrixRoundTrip(t *testing.T) {
	orig := NewRandomInstance(7, 3)
	var buf bytes.Buffer
	if err := orig.WriteTSPLIB(&buf); err != nil {
		t.Fatal(err)
	}
	parsed, err := ParseTSPLIB(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if parsed.N != orig.N {
		t.Fatalf("N = %d, want %d", parsed.N, orig.N)
	}
	for i := 0; i < orig.N; i++ {
		for j := 0; j < orig.N; j++ {
			if i == j {
				continue
			}
			if parsed.Cost[i][j] != orig.Cost[i][j] {
				t.Fatalf("cost[%d][%d] = %d, want %d", i, j, parsed.Cost[i][j], orig.Cost[i][j])
			}
		}
	}
	if SolveSerial(parsed).Tour.Cost != SolveSerial(orig).Tour.Cost {
		t.Fatal("round-tripped instance has a different optimum")
	}
}

func TestParseErrors(t *testing.T) {
	cases := map[string]string{
		"no section":     "NAME: x\nDIMENSION: 4\nEOF\n",
		"no dimension":   "NAME: x\nEDGE_WEIGHT_TYPE: EUC_2D\nNODE_COORD_SECTION\n1 0 0\n",
		"bad type":       "TYPE: ATSP\nDIMENSION: 4\n",
		"short coords":   "DIMENSION: 4\nEDGE_WEIGHT_TYPE: EUC_2D\nNODE_COORD_SECTION\n1 0 0\n2 1 1\nEOF\n",
		"dup city":       "DIMENSION: 3\nEDGE_WEIGHT_TYPE: EUC_2D\nNODE_COORD_SECTION\n1 0 0\n1 1 1\n3 2 2\nEOF\n",
		"bad coord":      "DIMENSION: 3\nEDGE_WEIGHT_TYPE: EUC_2D\nNODE_COORD_SECTION\n1 0 zz\n2 1 1\n3 2 2\nEOF\n",
		"bad header":     "GIBBERISH WITHOUT COLON\nDIMENSION: 3\n",
		"unsupported":    "DIMENSION: 3\nEDGE_WEIGHT_TYPE: GEO\nNODE_COORD_SECTION\n1 0 0\n2 1 1\n3 2 2\nEOF\n",
		"short matrix":   "DIMENSION: 3\nEDGE_WEIGHT_TYPE: EXPLICIT\nEDGE_WEIGHT_FORMAT: FULL_MATRIX\nEDGE_WEIGHT_SECTION\n0 1 2\nEOF\n",
		"asym matrix":    "DIMENSION: 3\nEDGE_WEIGHT_TYPE: EXPLICIT\nEDGE_WEIGHT_FORMAT: FULL_MATRIX\nEDGE_WEIGHT_SECTION\n0 1 2\n9 0 3\n2 3 0\nEOF\n",
		"bad weight":     "DIMENSION: 3\nEDGE_WEIGHT_TYPE: EXPLICIT\nEDGE_WEIGHT_FORMAT: FULL_MATRIX\nEDGE_WEIGHT_SECTION\n0 1 x\n1 0 3\n2 3 0\nEOF\n",
		"tiny dimension": "DIMENSION: 2\nEDGE_WEIGHT_TYPE: EUC_2D\nNODE_COORD_SECTION\n1 0 0\n2 1 1\nEOF\n",
	}
	for name, input := range cases {
		if _, err := ParseTSPLIB(strings.NewReader(input)); err == nil {
			t.Errorf("%s: parse succeeded, want error", name)
		}
	}
}

func TestParseFullMatrixAnyLineBreaking(t *testing.T) {
	input := "DIMENSION: 3\nEDGE_WEIGHT_TYPE: EXPLICIT\nEDGE_WEIGHT_FORMAT: FULL_MATRIX\nEDGE_WEIGHT_SECTION\n0 5\n7 5 0 9 7\n9 0\nEOF\n"
	in, err := ParseTSPLIB(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	if in.Cost[0][1] != 5 || in.Cost[0][2] != 7 || in.Cost[1][2] != 9 {
		t.Fatalf("costs wrong: %v", in.Cost)
	}
}
