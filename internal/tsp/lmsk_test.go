package tsp

import (
	"testing"
	"testing/quick"
)

func TestRootBoundIsAdmissible(t *testing.T) {
	for seed := uint64(1); seed <= 20; seed++ {
		in := NewRandomInstance(8, seed)
		root := NewRoot(in)
		opt := SolveBruteForce(in)
		if root.Bound > opt.Cost {
			t.Fatalf("seed %d: root bound %d exceeds optimum %d", seed, root.Bound, opt.Cost)
		}
	}
}

func TestSolveSerialMatchesBruteForce(t *testing.T) {
	for n := 4; n <= 9; n++ {
		for seed := uint64(1); seed <= 10; seed++ {
			in := NewRandomInstance(n, seed)
			got := SolveSerial(in)
			want := SolveBruteForce(in)
			if got.Tour.Cost != want.Cost {
				t.Fatalf("n=%d seed=%d: LMSK cost %d, brute force %d", n, seed, got.Tour.Cost, want.Cost)
			}
			if err := got.Tour.Valid(in); err != nil {
				t.Fatalf("n=%d seed=%d: invalid tour: %v", n, seed, err)
			}
		}
	}
}

func TestSolveSerialLargerInstances(t *testing.T) {
	for _, n := range []int{12, 14} {
		in := NewRandomInstance(n, 7)
		res := SolveSerial(in)
		if err := res.Tour.Valid(in); err != nil {
			t.Fatalf("n=%d: invalid tour: %v", n, err)
		}
		if res.Expansions <= n {
			t.Fatalf("n=%d: suspiciously few expansions (%d)", n, res.Expansions)
		}
	}
}

func TestChildBoundsMonotonic(t *testing.T) {
	in := NewRandomInstance(10, 3)
	var h nodeHeap
	h.push(NewRoot(in))
	for i := 0; i < 200; i++ {
		n := h.pop()
		if n == nil {
			break
		}
		out := n.Expand()
		for _, c := range out.Children {
			if c.Bound < n.Bound {
				t.Fatalf("child bound %d below parent bound %d", c.Bound, n.Bound)
			}
			h.push(c)
		}
	}
}

func TestExpandCompletesValidTours(t *testing.T) {
	in := NewRandomInstance(6, 11)
	var h nodeHeap
	h.push(NewRoot(in))
	tours := 0
	for {
		n := h.pop()
		if n == nil {
			break
		}
		out := n.Expand()
		if out.Tour != nil {
			tours++
			if err := out.Tour.Valid(in); err != nil {
				t.Fatalf("completed tour invalid: %v", err)
			}
			if out.Tour.Cost < n.Bound {
				t.Fatalf("tour cost %d below node bound %d", out.Tour.Cost, n.Bound)
			}
		}
		for _, c := range out.Children {
			h.push(c)
		}
	}
	if tours == 0 {
		t.Fatal("exhaustive expansion produced no tour")
	}
}

func TestNodeHeapOrdering(t *testing.T) {
	var h nodeHeap
	in := NewRandomInstance(4, 1)
	for _, b := range []int64{50, 10, 30, 10, 90} {
		n := NewRoot(in)
		n.Bound = b
		h.push(n)
	}
	var got []int64
	for n := h.pop(); n != nil; n = h.pop() {
		got = append(got, n.Bound)
	}
	want := []int64{10, 10, 30, 50, 90}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("heap order = %v, want %v", got, want)
		}
	}
}

func TestTourValidation(t *testing.T) {
	in := NewRandomInstance(5, 2)
	good := SolveBruteForce(in)
	if err := good.Valid(in); err != nil {
		t.Fatalf("optimal tour invalid: %v", err)
	}
	bad := Tour{Order: []int{0, 1, 1, 3, 4}, Cost: good.Cost}
	if bad.Valid(in) == nil {
		t.Fatal("duplicate-city tour validated")
	}
	short := Tour{Order: []int{0, 1, 2}, Cost: 10}
	if short.Valid(in) == nil {
		t.Fatal("short tour validated")
	}
	wrongCost := Tour{Order: good.Order, Cost: good.Cost + 1}
	if wrongCost.Valid(in) == nil {
		t.Fatal("wrong-cost tour validated")
	}
}

func TestInstanceSymmetricAndReproducible(t *testing.T) {
	a := NewRandomInstance(10, 5)
	b := NewRandomInstance(10, 5)
	for i := 0; i < 10; i++ {
		for j := 0; j < 10; j++ {
			if a.Cost[i][j] != b.Cost[i][j] {
				t.Fatal("same-seed instances differ")
			}
			if a.Cost[i][j] != a.Cost[j][i] {
				t.Fatal("instance not symmetric")
			}
			if i == j && a.Cost[i][j] != Inf {
				t.Fatal("diagonal not Inf")
			}
		}
	}
}

// Property: for random small instances the LMSK optimum always matches
// brute force and every bound on the optimal path is admissible.
func TestLMSKOptimalityProperty(t *testing.T) {
	f := func(seed uint16, nRaw uint8) bool {
		n := int(nRaw%5) + 4 // 4..8
		in := NewRandomInstance(n, uint64(seed)+1)
		return SolveSerial(in).Tour.Cost == SolveBruteForce(in).Cost
	}
	cfg := &quick.Config{MaxCount: 60}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// Property: the greedy tour is always valid and never better than the
// LMSK optimum.
func TestGreedyTourUpperBoundProperty(t *testing.T) {
	f := func(seed uint16, nRaw uint8) bool {
		n := int(nRaw%6) + 4
		in := NewRandomInstance(n, uint64(seed)+1)
		g := GreedyTour(in)
		if g.Valid(in) != nil {
			return false
		}
		return g.Cost >= SolveSerial(in).Tour.Cost
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
