package tsp

import (
	"testing"

	"repro/internal/locks"
)

// BenchmarkSolveSerial measures the native LMSK solver (no simulation).
func BenchmarkSolveSerial(b *testing.B) {
	in := NewEuclideanInstance(14, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		SolveSerial(in)
	}
}

// BenchmarkExpand measures one LMSK node expansion.
func BenchmarkExpand(b *testing.B) {
	in := NewEuclideanInstance(16, 1)
	root := NewRoot(in)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		root.Expand()
	}
}

// BenchmarkParallelSolveSimWallClock measures how much wall-clock time the
// simulator spends per full parallel solve (the cost of running the
// reproduction, not a paper quantity).
func BenchmarkParallelSolveSimWallClock(b *testing.B) {
	in := NewEuclideanInstance(13, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := Solve(Config{
			Instance:         in,
			Searchers:        8,
			Org:              OrgCentralized,
			LockKind:         locks.KindAdaptive,
			StepsPerWorkUnit: 30,
		})
		if err != nil {
			b.Fatal(err)
		}
		_ = res
	}
}
