package tsp

import (
	"fmt"

	"repro/internal/active"
	"repro/internal/core"
	"repro/internal/cthreads"
	"repro/internal/locks"
	"repro/internal/metrics"
	"repro/internal/profile"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Organization selects the parallel structure of the solver (§4).
type Organization string

// The paper's three parallel implementations.
const (
	// OrgCentralized: one global work queue and one global best-tour value
	// on node 0. Optimal pruning, maximal lock contention.
	OrgCentralized Organization = "centralized"
	// OrgDistributed: a work queue and a best-tour copy per processor,
	// queues connected in a ring for work stealing. Lower contention, but
	// stale bounds cause useless node expansions.
	OrgDistributed Organization = "distributed"
	// OrgDistributedLB: distributed plus the paper's load-balancing rule —
	// each work request first moves one subproblem from the next
	// processor's queue into the local queue, then takes the local best.
	OrgDistributedLB Organization = "distributed-lb"
)

// Lock names used by every implementation (§4).
const (
	LockQueue  = "qlock"
	LockActive = "glob-act-lock"
	LockLowest = "glob-low-lock"
	LockGlobal = "globlock"
)

// Config parameterizes a parallel solve.
type Config struct {
	Instance  *Instance
	Searchers int
	Org       Organization
	LockKind  locks.Kind

	// Machine configures the simulated multiprocessor; zero fields take
	// sim defaults, and Nodes is raised to Searchers if smaller.
	Machine sim.Config
	// Costs calibrates lock operations; the zero value means defaults.
	Costs *locks.Costs

	// StepsPerWorkUnit charges expansion work (default 1 step per touched
	// matrix cell as estimated by Node.Expand).
	StepsPerWorkUnit int
	// QueueOpSteps is the instruction charge of one queue push/pop.
	QueueOpSteps int
	// QueueOpAccesses is the memory references of one queue push/pop,
	// charged at the queue's home node distance.
	QueueOpAccesses int
	// PollInterval is the idle searcher's re-check period.
	PollInterval sim.Time
	// AsyncQueue routes the centralized shared work queue through an
	// active.Monitor instead of raw lock/unlock around each queue op.
	// "" (the default) leaves the original path untouched — byte-identical
	// to the seed. "sync" runs queue methods synchronously through the
	// monitor (measures pure monitor overhead); "flat" and "server"
	// execute them asynchronously with the respective combiner; "adaptive"
	// starts synchronous and lets core.ExecModeAdapt switch per phase off
	// the concurrency sensor. Centralized organization only.
	AsyncQueue string
	// RecordPatterns enables waiting-thread series per lock (Figures 4–9).
	RecordPatterns bool
	// Tracer, when non-nil, records the solve's thread, lock, and
	// adaptation events in virtual time.
	Tracer *trace.Tracer
	// Profiler, when non-nil, charges every tick of the solve's virtual
	// time to (thread, lock, state) attribution keys.
	Profiler *profile.Profiler
	// Ledger, when non-nil, records the adaptive locks' reconfiguration
	// decisions with their sensor inputs.
	Ledger *core.Ledger
}

// Result is the outcome of a parallel (or simulated-sequential) solve.
type Result struct {
	Tour       Tour
	Elapsed    sim.Time
	Expansions int
	// Useless counts expansions of subproblems whose bound was not below
	// the best tour known anywhere at that moment — work a perfectly
	// consistent bound would have pruned (the distributed implementations'
	// price for local best-tour copies).
	Useless   int
	LockStats map[string]locks.Stats
	// Patterns holds one waiting-thread series per lock name when
	// Config.RecordPatterns is set; distributed per-node qlocks are
	// aggregated under "qlock".
	Patterns map[string]*metrics.Series
	// FinalSpin maps each adaptive lock to its final spin-time attribute
	// (diagnostics for the adaptation narrative).
	FinalSpin map[string]int64
	// Sched reports thread-package counters.
	Sched cthreads.Stats
	// QueueLatency is the shared-queue method-completion latency digest
	// (submission/entry to body completion) when Config.AsyncQueue is
	// set; nil otherwise.
	QueueLatency *metrics.Histogram
	// QueueMonitor reports the active monitor's counters when
	// Config.AsyncQueue is set (submits, batches, mode switches seen as
	// sync-vs-async call splits).
	QueueMonitor active.Stats
}

// withDefaults validates and fills the configuration.
func (c Config) withDefaults() (Config, error) {
	if c.Instance == nil {
		return c, fmt.Errorf("tsp: Config.Instance is required")
	}
	if c.Searchers < 1 {
		c.Searchers = 10
	}
	if c.Org == "" {
		c.Org = OrgCentralized
	}
	if c.LockKind == "" {
		c.LockKind = locks.KindBlocking
	}
	if c.Machine.Nodes < c.Searchers {
		c.Machine.Nodes = c.Searchers
	}
	if c.Costs == nil {
		d := locks.DefaultCosts()
		c.Costs = &d
	}
	if c.StepsPerWorkUnit < 1 {
		c.StepsPerWorkUnit = 1
	}
	if c.QueueOpSteps < 1 {
		c.QueueOpSteps = 20
	}
	if c.QueueOpAccesses < 1 {
		c.QueueOpAccesses = 3
	}
	if c.PollInterval <= 0 {
		c.PollInterval = 50 * sim.Microsecond
	}
	switch c.Org {
	case OrgCentralized, OrgDistributed, OrgDistributedLB:
	default:
		return c, fmt.Errorf("tsp: unknown organization %q", c.Org)
	}
	switch c.AsyncQueue {
	case "", AsyncQueueSync, AsyncQueueFlat, AsyncQueueServer, AsyncQueueAdaptive:
	default:
		return c, fmt.Errorf("tsp: unknown AsyncQueue mode %q (want %q, %q, %q, %q, or empty)",
			c.AsyncQueue, AsyncQueueSync, AsyncQueueFlat, AsyncQueueServer, AsyncQueueAdaptive)
	}
	if c.AsyncQueue != "" && c.Org != OrgCentralized {
		return c, fmt.Errorf("tsp: AsyncQueue requires the centralized organization (its single shared queue is the contended monitor); got %q", c.Org)
	}
	return c, nil
}

// AsyncQueue modes (Config.AsyncQueue).
const (
	AsyncQueueSync     = "sync"
	AsyncQueueFlat     = "flat"
	AsyncQueueServer   = "server"
	AsyncQueueAdaptive = "adaptive"
)

// AsyncQueueModes lists the valid non-empty Config.AsyncQueue values.
func AsyncQueueModes() []string {
	return []string{AsyncQueueSync, AsyncQueueFlat, AsyncQueueServer, AsyncQueueAdaptive}
}

// solver is the shared state of one parallel run.
type solver struct {
	cfg  Config
	sys  *cthreads.System
	dist bool // distributed queues and best copies

	queues []*nodeHeap
	qlocks []locks.Lock
	qNodes []int // home node of each queue

	bestCells []*sim.Cell // per-node best-cost copy (len 1 when centralized)
	bestTour  *Tour       // protected by glob-low-lock
	lowLock   locks.Lock

	activeCell *sim.Cell
	actLock    locks.Lock

	doneCell *sim.Cell
	globLock locks.Lock

	// qmon wraps the centralized queue's lock in an active monitor when
	// Config.AsyncQueue is set; nil on the untouched original path.
	qmon *active.Monitor

	// trueBest mirrors the best tour cost known anywhere, for useless-work
	// accounting only (not visible to simulated code).
	trueBest   int64
	expansions int
	useless    int

	patterns map[string]*metrics.Series
}

// Solve runs the configured parallel TSP implementation to completion and
// returns the optimal tour with run measurements. The solve is exact: all
// three organizations return the same optimal cost, differing only in how
// much time and wasted work they spend.
func Solve(cfg Config) (Result, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return Result{}, err
	}
	s := &solver{
		cfg:      cfg,
		sys:      cthreads.New(cfg.Machine),
		dist:     cfg.Org != OrgCentralized,
		trueBest: Inf,
	}
	s.sys.SetTracer(cfg.Tracer)
	s.sys.SetProfiler(cfg.Profiler)
	s.sys.SetLedger(cfg.Ledger)
	s.build()

	// The root problem is enqueued before the searchers start (the main
	// program does this before forking, §4).
	s.queues[0].push(NewRoot(cfg.Instance))

	searchers := make([]*cthreads.Thread, cfg.Searchers)
	for i := 0; i < cfg.Searchers; i++ {
		i := i
		searchers[i] = s.sys.Fork(i, fmt.Sprintf("searcher%d", i), func(t *cthreads.Thread) {
			s.search(t, i)
		})
	}
	if s.qmon != nil {
		// The monitor's server thread (if its combiner ever runs) never
		// exits on its own; a closer joins the searchers and shuts it
		// down. A no-op when the server was never forked.
		s.sys.Fork(0, "qmon-closer", func(t *cthreads.Thread) {
			for _, w := range searchers {
				t.Join(w)
			}
			s.qmon.Shutdown(t)
		})
	}
	if err := s.sys.Run(); err != nil {
		return Result{}, err
	}
	return s.result()
}

// build allocates queues, locks, shared cells, and pattern observers.
func (s *solver) build() {
	cfg := s.cfg
	mkLock := func(name string, node int) locks.Lock {
		l := locks.MustNew(s.sys, cfg.LockKind, node, name, *cfg.Costs)
		if cfg.RecordPatterns {
			s.observe(l, name)
		}
		return l
	}

	nq := 1
	if s.dist {
		nq = cfg.Searchers
	}
	s.queues = make([]*nodeHeap, nq)
	s.qlocks = make([]locks.Lock, nq)
	s.qNodes = make([]int, nq)
	for i := 0; i < nq; i++ {
		s.queues[i] = &nodeHeap{}
		node := 0
		if s.dist {
			node = i
		}
		s.qNodes[i] = node
		name := LockQueue
		if s.dist {
			name = fmt.Sprintf("%s#%d", LockQueue, i)
		}
		s.qlocks[i] = mkLock(name, node)
	}

	nb := 1
	if s.dist {
		nb = cfg.Searchers
	}
	s.bestCells = make([]*sim.Cell, nb)
	for i := 0; i < nb; i++ {
		node := 0
		if s.dist {
			node = i
		}
		s.bestCells[i] = s.sys.Machine().NewCell(node, fmt.Sprintf("best#%d", i), uint64(Inf))
	}

	s.lowLock = mkLock(LockLowest, 0)
	s.actLock = mkLock(LockActive, 0)
	s.globLock = mkLock(LockGlobal, 0)
	s.activeCell = s.sys.Machine().NewCell(0, "active", uint64(cfg.Searchers))
	s.doneCell = s.sys.Machine().NewCell(0, "done", 0)

	if cfg.AsyncQueue != "" {
		// Wrap the centralized queue's own lock, so mutual exclusion —
		// and lock-level stats — stay on qlock whichever mode runs.
		mc := active.Config{Node: 0, Name: "qmon", Lock: s.qlocks[0], Costs: *cfg.Costs}
		switch cfg.AsyncQueue {
		case AsyncQueueFlat:
			mc.ExecMode = active.ExecAsync
		case AsyncQueueServer:
			mc.ExecMode = active.ExecAsync
			mc.Combiner = active.CombinerServer
			// Dedicate a processor beyond the searchers' when the machine
			// has one: processors are not preempted, so a server sharing
			// node 0 with a searcher only runs while that searcher is off
			// the processor.
			if s.sys.Procs() > cfg.Searchers {
				mc.ServerNode = cfg.Searchers
			}
		case AsyncQueueAdaptive:
			mc.ExecMode = active.ExecSync
			mc.SensorEvery = 2
		}
		s.qmon = active.New(s.sys, mc)
		if cfg.AsyncQueue == AsyncQueueAdaptive {
			s.qmon.Object().SetPolicy(core.ExecModeAdapt{
				Attr: active.AttrExecMode, Sync: active.ExecSync, Async: active.ExecAsync,
				AsyncAt: 4, SyncAt: 1,
			})
		}
	}
}

// observe attaches a waiting-thread series to a lock; per-node qlock
// series share one aggregated series keyed by the base name.
func (s *solver) observe(l locks.Lock, name string) {
	if s.patterns == nil {
		s.patterns = make(map[string]*metrics.Series)
	}
	base := name
	for i := 0; i < len(name); i++ {
		if name[i] == '#' {
			base = name[:i]
			break
		}
	}
	series, ok := s.patterns[base]
	if !ok {
		series = metrics.NewSeries(base)
		s.patterns[base] = series
	}
	type observable interface{ SetObserver(locks.Observer) }
	if o, ok := l.(observable); ok {
		o.SetObserver(func(now sim.Time, waiting int) {
			series.Add(now, int64(waiting))
		})
	}
}

// chargeQueueOp charges one queue operation against the queue's home node.
func (s *solver) chargeQueueOp(t *cthreads.Thread, q int) {
	t.Compute(s.cfg.QueueOpSteps)
	t.Advance(sim.Time(s.cfg.QueueOpAccesses) * s.sys.Machine().AccessCost(t.Node(), s.qNodes[q]))
}

// bestFor returns the best-cost cell a searcher on processor me consults.
func (s *solver) bestFor(me int) *sim.Cell {
	if s.dist {
		return s.bestCells[me]
	}
	return s.bestCells[0]
}

// getWork implements each organization's work-acquisition protocol.
// Returns nil when no work was found anywhere this attempt.
func (s *solver) getWork(t *cthreads.Thread, me int) *Node {
	switch s.cfg.Org {
	case OrgCentralized:
		if s.qmon != nil {
			var n *Node
			s.qmon.Invoke(t, func(bt *cthreads.Thread) {
				s.chargeQueueOp(bt, 0)
				n = s.queues[0].pop()
			})
			return n
		}
		s.qlocks[0].Lock(t)
		s.chargeQueueOp(t, 0)
		n := s.queues[0].pop()
		s.qlocks[0].Unlock(t)
		return n

	case OrgDistributed:
		// Local queue first, then walk the ring to the next non-empty one.
		// Each queue is best-first locally, but with no global ordering
		// across queues a searcher may expand a locally-best node that is
		// globally poor — the partial ordering the load-balancing variant
		// repairs by continually mixing neighbouring queues.
		for k := 0; k < s.cfg.Searchers; k++ {
			q := (me + k) % s.cfg.Searchers
			s.qlocks[q].Lock(t)
			s.chargeQueueOp(t, q)
			n := s.queues[q].pop()
			s.qlocks[q].Unlock(t)
			if n != nil {
				return n
			}
		}
		return nil

	default: // OrgDistributedLB
		// Load balancing: move one subproblem from the next processor's
		// queue into the local queue, then take the local best.
		next := (me + 1) % s.cfg.Searchers
		s.qlocks[next].Lock(t)
		s.chargeQueueOp(t, next)
		stolen := s.queues[next].pop()
		s.qlocks[next].Unlock(t)
		s.qlocks[me].Lock(t)
		if stolen != nil {
			s.chargeQueueOp(t, me)
			s.queues[me].push(stolen)
		}
		s.chargeQueueOp(t, me)
		n := s.queues[me].pop() // best-first: the improved global ordering
		s.qlocks[me].Unlock(t)
		if n != nil {
			return n
		}
		// Fall back to a ring walk so work cannot strand.
		for k := 2; k < s.cfg.Searchers; k++ {
			q := (me + k) % s.cfg.Searchers
			s.qlocks[q].Lock(t)
			s.chargeQueueOp(t, q)
			n := s.queues[q].pop()
			s.qlocks[q].Unlock(t)
			if n != nil {
				return n
			}
		}
		return nil
	}
}

// putWork enqueues a child subproblem (always on the local queue for the
// distributed organizations, the global queue otherwise).
func (s *solver) putWork(t *cthreads.Thread, me int, n *Node) {
	q := 0
	if s.dist {
		q = me
	}
	if s.qmon != nil {
		s.qmon.Invoke(t, func(bt *cthreads.Thread) {
			s.chargeQueueOp(bt, 0)
			s.queues[0].push(n)
		})
		return
	}
	s.qlocks[q].Lock(t)
	s.chargeQueueOp(t, q)
	s.queues[q].push(n)
	s.qlocks[q].Unlock(t)
}

// anyWork reports whether any queue is non-empty, charging one probe per
// inspected queue head.
func (s *solver) anyWork(t *cthreads.Thread) bool {
	for q := range s.queues {
		t.Advance(s.sys.Machine().AccessCost(t.Node(), s.qNodes[q]))
		if s.queues[q].Len() > 0 {
			return true
		}
	}
	return false
}

// updateBest publishes an improved tour.
func (s *solver) updateBest(t *cthreads.Thread, me int, tour *Tour) {
	s.lowLock.Lock(t)
	cur := int64(s.bestCells[0].Load(t))
	if tour.Cost < cur {
		if s.dist {
			// Propagate the new bound to every processor's local copy.
			for _, cell := range s.bestCells {
				cell.Store(t, uint64(tour.Cost))
			}
		} else {
			s.bestCells[0].Store(t, uint64(tour.Cost))
		}
		// The tour structure itself is multi-word; keep it consistent
		// under the multi-purpose global lock (§4: globlock keeps the
		// global data structure consistent).
		s.globLock.Lock(t)
		t.Compute(3 * len(tour.Order))
		cp := *tour
		s.bestTour = &cp
		s.globLock.Unlock(t)
	}
	s.lowLock.Unlock(t)
	if tour.Cost < s.trueBest {
		s.trueBest = tour.Cost
	}
}

// search is one searcher thread's body.
func (s *solver) search(t *cthreads.Thread, me int) {
	cfg := s.cfg
	//simlint:allow rawspin -- worker main loop, not a spin: Compute here charges node-expansion work, and blocking happens in getWork/idle
	for {
		n := s.getWork(t, me)
		if n == nil {
			if s.idle(t) {
				return
			}
			continue
		}

		// Prune against the (possibly stale, if distributed) local bound.
		bound := int64(s.bestFor(me).Load(t))
		if n.Bound >= bound {
			t.Compute(4)
			continue
		}

		if n.Bound >= s.trueBest {
			s.useless++ // a consistent bound would have pruned this
		}
		s.expansions++
		out := n.Expand()
		t.Compute(out.Work * cfg.StepsPerWorkUnit)

		if out.Tour != nil {
			local := int64(s.bestFor(me).Load(t))
			if out.Tour.Cost < local {
				s.updateBest(t, me, out.Tour)
			}
		}
		for _, c := range out.Children {
			if c.Bound < int64(s.bestFor(me).Load(t)) {
				s.putWork(t, me, c)
			}
		}
	}
}

// idle runs the termination protocol after a failed work hunt. It returns
// true when the computation is finished (the searcher should exit) and
// false when new work appeared (the searcher re-activated).
func (s *solver) idle(t *cthreads.Thread) bool {
	s.actLock.Lock(t)
	v := s.activeCell.Load(t)
	s.activeCell.Store(t, v-1)
	s.actLock.Unlock(t)

	//simlint:allow rawspin -- termination protocol polls several cells and re-acquires locks inside the probe; a SpinSpec conversion would reorder charges and drift deterministic metrics
	for {
		if s.doneCell.Load(t) == 1 {
			return true
		}
		if s.anyWork(t) {
			s.actLock.Lock(t)
			v := s.activeCell.Load(t)
			s.activeCell.Store(t, v+1)
			s.actLock.Unlock(t)
			return false
		}
		tourFound := int64(s.bestCells[0].Load(t)) < Inf
		if s.activeCell.Load(t) == 0 && tourFound {
			s.globLock.Lock(t)
			s.doneCell.Store(t, 1)
			s.globLock.Unlock(t)
			return true
		}
		t.Advance(s.cfg.PollInterval)
		if s.qmon != nil {
			// The monitor's combiner threads may share this searcher's
			// processor; without preemption an unyielding poll loop would
			// starve them (and with them the futures the still-active
			// searchers are blocked on). Only the monitor modes fork such
			// threads, so the baseline path stays charge-identical.
			t.Yield()
		}
	}
}

// result assembles the Result after the simulation completes.
func (s *solver) result() (Result, error) {
	if s.bestTour == nil {
		return Result{}, fmt.Errorf("tsp: %s run found no tour", s.cfg.Org)
	}
	if err := s.bestTour.Valid(s.cfg.Instance); err != nil {
		return Result{}, fmt.Errorf("tsp: %s produced invalid tour: %w", s.cfg.Org, err)
	}
	res := Result{
		Tour:       *s.bestTour,
		Elapsed:    s.sys.Now(),
		Expansions: s.expansions,
		Useless:    s.useless,
		LockStats:  make(map[string]locks.Stats),
		Patterns:   s.patterns,
		FinalSpin:  make(map[string]int64),
		Sched:      s.sys.Stats(),
	}
	addStats := func(name string, st locks.Stats) {
		base := name
		for i := 0; i < len(name); i++ {
			if name[i] == '#' {
				base = name[:i]
				break
			}
		}
		agg := res.LockStats[base]
		agg.Acquisitions += st.Acquisitions
		agg.Contended += st.Contended
		agg.Blocks += st.Blocks
		agg.SpinIters += st.SpinIters
		agg.TotalWait += st.TotalWait
		if st.MaxWaiting > agg.MaxWaiting {
			agg.MaxWaiting = st.MaxWaiting
		}
		res.LockStats[base] = agg
	}
	for _, l := range s.qlocks {
		addStats(l.Name(), l.Stats())
		if al, ok := l.(*locks.AdaptiveLock); ok {
			res.FinalSpin[l.Name()] = al.Object().Attrs.MustGet(locks.AttrSpinTime)
		}
	}
	for _, l := range []locks.Lock{s.lowLock, s.actLock, s.globLock} {
		addStats(l.Name(), l.Stats())
		if al, ok := l.(*locks.AdaptiveLock); ok {
			res.FinalSpin[l.Name()] = al.Object().Attrs.MustGet(locks.AttrSpinTime)
		}
	}
	if s.qmon != nil {
		res.QueueLatency = s.qmon.Latency()
		res.QueueMonitor = s.qmon.Stats()
	}
	return res, nil
}

// SolveSequentialSim runs the sequential LMSK program on one simulated
// processor, charging the same expansion and queue costs but using no
// locks — the paper's sequential baseline of Table 1.
func SolveSequentialSim(in *Instance, machine sim.Config, stepsPerWorkUnit, queueOpSteps int) (Result, error) {
	if machine.Nodes < 1 {
		machine.Nodes = 1
	}
	if stepsPerWorkUnit < 1 {
		stepsPerWorkUnit = 1
	}
	if queueOpSteps < 1 {
		queueOpSteps = 20
	}
	sys := cthreads.New(machine)
	var h nodeHeap
	var best *Tour
	bestCost := Inf
	expansions := 0
	sys.Fork(0, "sequential", func(t *cthreads.Thread) {
		h.push(NewRoot(in))
		for {
			t.Compute(queueOpSteps)
			if h.peekBound() >= bestCost {
				break
			}
			n := h.pop()
			if n == nil {
				break
			}
			out := n.Expand()
			expansions++
			t.Compute(out.Work * stepsPerWorkUnit)
			if out.Tour != nil && out.Tour.Cost < bestCost {
				bestCost = out.Tour.Cost
				best = out.Tour
			}
			for _, c := range out.Children {
				if c.Bound < bestCost {
					t.Compute(queueOpSteps)
					h.push(c)
				}
			}
		}
	})
	if err := sys.Run(); err != nil {
		return Result{}, err
	}
	if best == nil {
		return Result{}, fmt.Errorf("tsp: sequential run found no tour")
	}
	return Result{Tour: *best, Elapsed: sys.Now(), Expansions: expansions, Sched: sys.Stats()}, nil
}
