package tsp

import (
	"testing"

	"repro/internal/active"
	"repro/internal/locks"
	"repro/internal/sim"
)

// fastMachine keeps latencies small so parallel tests stay quick.
func fastMachine(nodes int) sim.Config {
	return sim.Config{
		Nodes:         nodes,
		LocalAccess:   10,
		RemoteAccess:  40,
		AtomicExtra:   5,
		Instr:         2,
		ContextSwitch: 200,
		Wakeup:        400,
		Seed:          1,
	}
}

func solveWith(t *testing.T, org Organization, kind locks.Kind, n int, seed uint64, searchers int) Result {
	t.Helper()
	in := NewRandomInstance(n, seed)
	res, err := Solve(Config{
		Instance:  in,
		Searchers: searchers,
		Org:       org,
		LockKind:  kind,
		Machine:   fastMachine(searchers),
	})
	if err != nil {
		t.Fatalf("%s/%s: %v", org, kind, err)
	}
	if err := res.Tour.Valid(in); err != nil {
		t.Fatalf("%s/%s: invalid tour: %v", org, kind, err)
	}
	return res
}

func TestAllOrganizationsFindOptimum(t *testing.T) {
	for _, org := range []Organization{OrgCentralized, OrgDistributed, OrgDistributedLB} {
		org := org
		t.Run(string(org), func(t *testing.T) {
			for seed := uint64(1); seed <= 3; seed++ {
				in := NewRandomInstance(9, seed)
				want := SolveBruteForce(in).Cost
				res, err := Solve(Config{
					Instance:  in,
					Searchers: 4,
					Org:       org,
					LockKind:  locks.KindBlocking,
					Machine:   fastMachine(4),
				})
				if err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
				if res.Tour.Cost != want {
					t.Fatalf("seed %d: parallel cost %d, optimum %d", seed, res.Tour.Cost, want)
				}
			}
		})
	}
}

func TestAllLockKindsSolveCentralized(t *testing.T) {
	in := NewRandomInstance(9, 5)
	want := SolveBruteForce(in).Cost
	for _, kind := range []locks.Kind{locks.KindSpin, locks.KindBlocking, locks.KindAdaptive} {
		res := solveWith(t, OrgCentralized, kind, 9, 5, 4)
		if res.Tour.Cost != want {
			t.Fatalf("%s: cost %d, want %d", kind, res.Tour.Cost, want)
		}
	}
}

func TestSequentialSimMatchesSerial(t *testing.T) {
	in := NewRandomInstance(10, 3)
	serial := SolveSerial(in)
	res, err := SolveSequentialSim(in, fastMachine(1), 1, 20)
	if err != nil {
		t.Fatal(err)
	}
	if res.Tour.Cost != serial.Tour.Cost {
		t.Fatalf("sim sequential cost %d, native %d", res.Tour.Cost, serial.Tour.Cost)
	}
	if res.Expansions != serial.Expansions {
		t.Fatalf("sim expansions %d, native %d (must run the same algorithm)", res.Expansions, serial.Expansions)
	}
	if res.Elapsed <= 0 {
		t.Fatal("no virtual time elapsed")
	}
}

func TestParallelFasterThanSequential(t *testing.T) {
	// A Euclidean instance gives a deep search tree, and a high
	// per-work-unit charge makes expansion dominate lock overhead — the
	// regime where parallel branch-and-bound pays (the paper reports 6.5×
	// on 10 processors).
	in := NewEuclideanInstance(14, 1)
	seq, err := SolveSequentialSim(in, fastMachine(1), 50, 20)
	if err != nil {
		t.Fatal(err)
	}
	par, err := Solve(Config{
		Instance:         in,
		Searchers:        8,
		Org:              OrgCentralized,
		LockKind:         locks.KindBlocking,
		Machine:          fastMachine(8),
		StepsPerWorkUnit: 50,
		PollInterval:     2 * sim.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if par.Tour.Cost != seq.Tour.Cost {
		t.Fatalf("parallel cost %d != sequential %d", par.Tour.Cost, seq.Tour.Cost)
	}
	if par.Elapsed >= seq.Elapsed {
		t.Fatalf("parallel (%v) not faster than sequential (%v)", par.Elapsed, seq.Elapsed)
	}
}

func TestDeterministicParallelRuns(t *testing.T) {
	a := solveWith(t, OrgDistributed, locks.KindAdaptive, 10, 4, 4)
	b := solveWith(t, OrgDistributed, locks.KindAdaptive, 10, 4, 4)
	if a.Elapsed != b.Elapsed || a.Expansions != b.Expansions || a.Tour.Cost != b.Tour.Cost {
		t.Fatalf("runs diverge: %v/%d vs %v/%d", a.Elapsed, a.Expansions, b.Elapsed, b.Expansions)
	}
}

func TestCentralizedHasMoreQlockContentionThanDistributed(t *testing.T) {
	cen := solveWith(t, OrgCentralized, locks.KindBlocking, 11, 2, 6)
	dis := solveWith(t, OrgDistributed, locks.KindBlocking, 11, 2, 6)
	cenQ := cen.LockStats[LockQueue]
	disQ := dis.LockStats[LockQueue]
	if cenQ.Acquisitions == 0 || disQ.Acquisitions == 0 {
		t.Fatal("qlock stats missing")
	}
	cenRate := float64(cenQ.Contended) / float64(cenQ.Acquisitions)
	disRate := float64(disQ.Contended) / float64(disQ.Acquisitions)
	if cenRate <= disRate {
		t.Fatalf("contention: centralized %.3f ≤ distributed %.3f; the paper's Figure 4 vs 6 shape is inverted", cenRate, disRate)
	}
}

func TestDistributedDoesUselessWork(t *testing.T) {
	// With stale local bounds the distributed organizations expand nodes a
	// consistent bound would prune; the centralized one prunes optimally.
	cen := solveWith(t, OrgCentralized, locks.KindBlocking, 11, 2, 6)
	dis := solveWith(t, OrgDistributed, locks.KindBlocking, 11, 2, 6)
	if dis.Expansions < cen.Expansions {
		t.Logf("note: distributed expanded fewer nodes (%d vs %d) on this instance", dis.Expansions, cen.Expansions)
	}
	if cen.Useless > dis.Useless {
		t.Fatalf("useless work: centralized %d > distributed %d", cen.Useless, dis.Useless)
	}
}

func TestPatternsRecorded(t *testing.T) {
	in := NewRandomInstance(10, 2)
	res, err := Solve(Config{
		Instance:       in,
		Searchers:      4,
		Org:            OrgCentralized,
		LockKind:       locks.KindBlocking,
		Machine:        fastMachine(4),
		RecordPatterns: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	q := res.Patterns[LockQueue]
	if q == nil || q.Len() == 0 {
		t.Fatal("no qlock pattern recorded")
	}
	if res.Patterns[LockActive] == nil {
		t.Fatal("no glob-act-lock pattern recorded")
	}
}

func TestAdaptiveConfiguresUncontendedLocksToSpin(t *testing.T) {
	res := solveWith(t, OrgCentralized, locks.KindAdaptive, 11, 2, 6)
	// glob-low-lock and globlock see little contention; the adaptation
	// policy must have driven them toward pure spin (§4).
	for _, name := range []string{LockLowest, LockGlobal} {
		if spin, ok := res.FinalSpin[name]; ok {
			if spin < locks.DefaultInitialSpins {
				t.Errorf("%s final spin-time %d; expected ≥ initial (no contention → spin)", name, spin)
			}
		} else {
			t.Errorf("no FinalSpin entry for %s", name)
		}
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := Solve(Config{}); err == nil {
		t.Fatal("Solve accepted nil instance")
	}
	in := NewRandomInstance(6, 1)
	if _, err := Solve(Config{Instance: in, Org: Organization("bogus")}); err == nil {
		t.Fatal("Solve accepted bogus organization")
	}
}

// TestAsyncQueueModesFindOptimum checks every AsyncQueue mode solves
// exactly and records queue-method latency digests.
func TestAsyncQueueModesFindOptimum(t *testing.T) {
	in := NewRandomInstance(9, 5)
	want := SolveBruteForce(in).Cost
	for _, mode := range []string{AsyncQueueSync, AsyncQueueFlat, AsyncQueueServer, AsyncQueueAdaptive} {
		mode := mode
		t.Run(mode, func(t *testing.T) {
			res, err := Solve(Config{
				Instance:   in,
				Searchers:  8,
				Org:        OrgCentralized,
				LockKind:   locks.KindBlocking,
				Machine:    fastMachine(8),
				AsyncQueue: mode,
			})
			if err != nil {
				t.Fatal(err)
			}
			if res.Tour.Cost != want {
				t.Fatalf("cost %d, want %d", res.Tour.Cost, want)
			}
			if res.QueueLatency == nil || res.QueueLatency.Count() == 0 {
				t.Fatal("no queue-method latency recorded")
			}
			st := res.QueueMonitor
			switch mode {
			case AsyncQueueSync:
				if st.Submits != 0 || st.SyncCalls == 0 {
					t.Fatalf("stats = %+v, want sync-only activity", st)
				}
			case AsyncQueueFlat, AsyncQueueServer:
				if st.Submits == 0 || st.Executed != st.Submits {
					t.Fatalf("stats = %+v, want every submit executed", st)
				}
			}
		})
	}
}

// TestAsyncQueueOffLeavesResultUntouched pins the differential contract:
// AsyncQueue "" must not even construct the monitor, so the solve is
// field-identical with and without the new code path in the binary.
func TestAsyncQueueOffLeavesResultUntouched(t *testing.T) {
	res := solveWith(t, OrgCentralized, locks.KindBlocking, 9, 5, 4)
	if res.QueueLatency != nil {
		t.Fatal("AsyncQueue off but a queue latency digest was recorded")
	}
	if res.QueueMonitor != (active.Stats{}) {
		t.Fatalf("AsyncQueue off but monitor stats nonzero: %+v", res.QueueMonitor)
	}
}

// TestAsyncQueueRequiresCentralized pins the validation.
func TestAsyncQueueRequiresCentralized(t *testing.T) {
	_, err := Solve(Config{
		Instance:   NewRandomInstance(8, 1),
		Org:        OrgDistributed,
		AsyncQueue: AsyncQueueFlat,
	})
	if err == nil {
		t.Fatal("distributed + AsyncQueue accepted, want error")
	}
	_, err = Solve(Config{
		Instance:   NewRandomInstance(8, 1),
		AsyncQueue: "bogus",
	})
	if err == nil {
		t.Fatal("bogus AsyncQueue accepted, want error")
	}
}
