// Package tsp implements the paper's application: the Travelling Sales
// Person problem solved with the LMSK (Little, Murty, Sweeney, Karel)
// branch-and-bound algorithm [SBBG89], both as a plain sequential program
// and as a collection of asynchronous cooperating searcher threads on the
// simulated multiprocessor, in the paper's three organizations —
// centralized, distributed, and distributed with load balancing (§4).
package tsp

import (
	"fmt"
	"math"

	"repro/internal/sim"
)

// Inf is the "no edge" cost. It is small enough that sums of a few Infs
// cannot overflow an int64 bound.
const Inf int64 = 1 << 40

// Instance is a TSP instance: a symmetric cost matrix with an Inf diagonal.
type Instance struct {
	N     int
	Cost  [][]int64
	Seed  uint64
	label string
}

// NewRandomInstance generates a reproducible symmetric instance with edge
// costs uniform in [1, 99].
func NewRandomInstance(n int, seed uint64) *Instance {
	if n < 3 {
		panic(fmt.Sprintf("tsp: instance needs at least 3 cities, got %d", n))
	}
	rng := sim.NewRNG(seed)
	c := make([][]int64, n)
	for i := range c {
		c[i] = make([]int64, n)
		c[i][i] = Inf
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			v := int64(rng.Intn(99) + 1)
			c[i][j] = v
			c[j][i] = v
		}
	}
	return &Instance{N: n, Cost: c, Seed: seed, label: fmt.Sprintf("random(n=%d,seed=%d)", n, seed)}
}

// NewEuclideanInstance generates a reproducible instance of n random
// points on a 1000×1000 plane with (rounded) Euclidean distances.
// Euclidean instances give the LMSK reduction much looser bounds than
// uniform random matrices, producing the deep search trees (and hence the
// sustained lock traffic) the paper's experiments depend on.
func NewEuclideanInstance(n int, seed uint64) *Instance {
	if n < 3 {
		panic(fmt.Sprintf("tsp: instance needs at least 3 cities, got %d", n))
	}
	rng := sim.NewRNG(seed)
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := 0; i < n; i++ {
		xs[i] = rng.Float64() * 1000
		ys[i] = rng.Float64() * 1000
	}
	c := make([][]int64, n)
	for i := range c {
		c[i] = make([]int64, n)
		c[i][i] = Inf
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			dx, dy := xs[i]-xs[j], ys[i]-ys[j]
			d := int64(math.Sqrt(dx*dx+dy*dy)) + 1
			c[i][j] = d
			c[j][i] = d
		}
	}
	return &Instance{N: n, Cost: c, Seed: seed, label: fmt.Sprintf("euclidean(n=%d,seed=%d)", n, seed)}
}

// String identifies the instance.
func (in *Instance) String() string {
	if in.label != "" {
		return in.label
	}
	return fmt.Sprintf("instance(n=%d)", in.N)
}

// Tour is a Hamiltonian cycle and its cost.
type Tour struct {
	Order []int
	Cost  int64
}

// Valid checks that the tour visits every city exactly once and that Cost
// matches the instance.
func (t Tour) Valid(in *Instance) error {
	if len(t.Order) != in.N {
		return fmt.Errorf("tsp: tour visits %d cities, want %d", len(t.Order), in.N)
	}
	seen := make([]bool, in.N)
	var cost int64
	for i, c := range t.Order {
		if c < 0 || c >= in.N {
			return fmt.Errorf("tsp: city %d out of range", c)
		}
		if seen[c] {
			return fmt.Errorf("tsp: city %d visited twice", c)
		}
		seen[c] = true
		next := t.Order[(i+1)%in.N]
		cost += in.Cost[c][next]
	}
	if cost != t.Cost {
		return fmt.Errorf("tsp: tour cost %d does not match edges (%d)", t.Cost, cost)
	}
	return nil
}
