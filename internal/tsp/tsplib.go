package tsp

// TSPLIB-subset instance I/O: the solver accepts the formats the classic
// benchmark library uses for symmetric instances — EUC_2D coordinates and
// explicit FULL_MATRIX weights — so the reproduction can be driven with
// standard instances as well as generated ones.

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// ParseTSPLIB reads a TSPLIB-format symmetric TSP instance supporting
// EDGE_WEIGHT_TYPE EUC_2D (with NODE_COORD_SECTION; distances rounded to
// nearest integer, per the TSPLIB convention) and EXPLICIT with
// EDGE_WEIGHT_FORMAT FULL_MATRIX (with EDGE_WEIGHT_SECTION).
func ParseTSPLIB(r io.Reader) (*Instance, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)

	var (
		name       string
		dimension  int
		weightType string
		weightFmt  string
	)
	readHeader := func(line string) (done bool, err error) {
		switch {
		case line == "NODE_COORD_SECTION", line == "EDGE_WEIGHT_SECTION":
			return true, nil
		case line == "EOF", line == "":
			return false, nil
		}
		key, value, ok := strings.Cut(line, ":")
		if !ok {
			return false, fmt.Errorf("tsp: malformed TSPLIB header line %q", line)
		}
		key = strings.TrimSpace(key)
		value = strings.TrimSpace(value)
		switch key {
		case "NAME":
			name = value
		case "DIMENSION":
			d, err := strconv.Atoi(value)
			if err != nil || d < 3 {
				return false, fmt.Errorf("tsp: bad DIMENSION %q", value)
			}
			dimension = d
		case "EDGE_WEIGHT_TYPE":
			weightType = value
		case "EDGE_WEIGHT_FORMAT":
			weightFmt = value
		case "TYPE":
			if value != "TSP" {
				return false, fmt.Errorf("tsp: unsupported TYPE %q", value)
			}
		case "COMMENT", "DISPLAY_DATA_TYPE":
			// informational
		default:
			// Unknown keys are tolerated, as TSPLIB readers convention.
		}
		return false, nil
	}

	inSection := false
	var sectionLine string
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		done, err := readHeader(line)
		if err != nil {
			return nil, err
		}
		if done {
			inSection = true
			sectionLine = line
			break
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if !inSection {
		return nil, fmt.Errorf("tsp: TSPLIB input has no data section")
	}
	if dimension == 0 {
		return nil, fmt.Errorf("tsp: TSPLIB input has no DIMENSION")
	}

	switch {
	case sectionLine == "NODE_COORD_SECTION" && weightType == "EUC_2D":
		return parseCoords(sc, name, dimension)
	case sectionLine == "EDGE_WEIGHT_SECTION" && weightType == "EXPLICIT" && weightFmt == "FULL_MATRIX":
		return parseFullMatrix(sc, name, dimension)
	default:
		return nil, fmt.Errorf("tsp: unsupported TSPLIB combination (type %q, format %q, section %q)",
			weightType, weightFmt, sectionLine)
	}
}

// parseCoords reads "index x y" lines and builds rounded Euclidean costs.
func parseCoords(sc *bufio.Scanner, name string, n int) (*Instance, error) {
	xs := make([]float64, n)
	ys := make([]float64, n)
	seen := make([]bool, n)
	count := 0
	for count < n && sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if line == "EOF" {
			break
		}
		fields := strings.Fields(line)
		if len(fields) != 3 {
			return nil, fmt.Errorf("tsp: bad coordinate line %q", line)
		}
		idx, err := strconv.Atoi(fields[0])
		if err != nil || idx < 1 || idx > n {
			return nil, fmt.Errorf("tsp: bad city index in %q", line)
		}
		if seen[idx-1] {
			return nil, fmt.Errorf("tsp: duplicate city %d", idx)
		}
		seen[idx-1] = true
		if xs[idx-1], err = strconv.ParseFloat(fields[1], 64); err != nil {
			return nil, fmt.Errorf("tsp: bad x in %q", line)
		}
		if ys[idx-1], err = strconv.ParseFloat(fields[2], 64); err != nil {
			return nil, fmt.Errorf("tsp: bad y in %q", line)
		}
		count++
	}
	if count != n {
		return nil, fmt.Errorf("tsp: got %d coordinates, want %d", count, n)
	}
	c := make([][]int64, n)
	for i := range c {
		c[i] = make([]int64, n)
		c[i][i] = Inf
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			dx, dy := xs[i]-xs[j], ys[i]-ys[j]
			d := int64(math.Round(math.Sqrt(dx*dx + dy*dy)))
			c[i][j] = d
			c[j][i] = d
		}
	}
	label := name
	if label == "" {
		label = fmt.Sprintf("tsplib(n=%d)", n)
	}
	return &Instance{N: n, Cost: c, label: label}, nil
}

// parseFullMatrix reads n×n weights (whitespace-separated, any line
// breaking).
func parseFullMatrix(sc *bufio.Scanner, name string, n int) (*Instance, error) {
	vals := make([]int64, 0, n*n)
	for len(vals) < n*n && sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if line == "EOF" {
			break
		}
		for _, f := range strings.Fields(line) {
			v, err := strconv.ParseInt(f, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("tsp: bad weight %q", f)
			}
			vals = append(vals, v)
		}
	}
	if len(vals) != n*n {
		return nil, fmt.Errorf("tsp: got %d weights, want %d", len(vals), n*n)
	}
	c := make([][]int64, n)
	for i := range c {
		c[i] = make([]int64, n)
		for j := 0; j < n; j++ {
			c[i][j] = vals[i*n+j]
		}
		c[i][i] = Inf
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if c[i][j] != c[j][i] {
				return nil, fmt.Errorf("tsp: asymmetric weights at (%d,%d)", i+1, j+1)
			}
		}
	}
	label := name
	if label == "" {
		label = fmt.Sprintf("tsplib(n=%d)", n)
	}
	return &Instance{N: n, Cost: c, label: label}, nil
}

// WriteTSPLIB emits the instance in EXPLICIT FULL_MATRIX form (diagonal
// written as 0, per convention).
func (in *Instance) WriteTSPLIB(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "NAME: %s\n", in.String())
	fmt.Fprintf(bw, "TYPE: TSP\n")
	fmt.Fprintf(bw, "DIMENSION: %d\n", in.N)
	fmt.Fprintf(bw, "EDGE_WEIGHT_TYPE: EXPLICIT\n")
	fmt.Fprintf(bw, "EDGE_WEIGHT_FORMAT: FULL_MATRIX\n")
	fmt.Fprintf(bw, "EDGE_WEIGHT_SECTION\n")
	for i := 0; i < in.N; i++ {
		for j := 0; j < in.N; j++ {
			v := in.Cost[i][j]
			if i == j {
				v = 0
			}
			if j > 0 {
				fmt.Fprint(bw, " ")
			}
			fmt.Fprintf(bw, "%d", v)
		}
		fmt.Fprintln(bw)
	}
	fmt.Fprintln(bw, "EOF")
	return bw.Flush()
}
