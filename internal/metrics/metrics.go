// Package metrics provides the measurement and reporting plumbing shared
// by the experiment harness: time series of sampled values (the paper's
// locking-pattern figures plot waiting-thread counts over time), summary
// statistics, and fixed-width table rendering for the paper's tables.
package metrics

import (
	"bufio"
	"fmt"
	"io"
	"strings"

	"repro/internal/sim"
)

// Series is an append-only time series of int64 samples at virtual times.
type Series struct {
	Name string
	ts   []sim.Time
	vs   []int64
}

// NewSeries returns an empty named series.
func NewSeries(name string) *Series { return &Series{Name: name} }

// Add appends one sample. Samples must arrive in non-decreasing time order
// (they do, since the simulation clock is monotonic).
func (s *Series) Add(t sim.Time, v int64) {
	s.ts = append(s.ts, t)
	s.vs = append(s.vs, v)
}

// Len reports the number of samples.
func (s *Series) Len() int { return len(s.vs) }

// At returns the i-th sample.
func (s *Series) At(i int) (sim.Time, int64) { return s.ts[i], s.vs[i] }

// Max returns the largest sample value (0 for an empty series).
func (s *Series) Max() int64 {
	var m int64
	for _, v := range s.vs {
		if v > m {
			m = v
		}
	}
	return m
}

// Mean returns the average sample value (0 for an empty series).
func (s *Series) Mean() float64 {
	if len(s.vs) == 0 {
		return 0
	}
	var sum int64
	for _, v := range s.vs {
		sum += v
	}
	return float64(sum) / float64(len(s.vs))
}

// FracAbove returns the fraction of samples strictly greater than v.
func (s *Series) FracAbove(v int64) float64 {
	if len(s.vs) == 0 {
		return 0
	}
	n := 0
	for _, x := range s.vs {
		if x > v {
			n++
		}
	}
	return float64(n) / float64(len(s.vs))
}

// Merge appends all samples of o into a new series and re-sorts by time;
// used to aggregate the per-node qlock series of the distributed TSP
// implementations into one pattern.
func (s *Series) Merge(o *Series) *Series {
	out := &Series{Name: s.Name}
	i, j := 0, 0
	for i < len(s.ts) || j < len(o.ts) {
		switch {
		case j >= len(o.ts) || (i < len(s.ts) && s.ts[i] <= o.ts[j]):
			out.ts = append(out.ts, s.ts[i])
			out.vs = append(out.vs, s.vs[i])
			i++
		default:
			out.ts = append(out.ts, o.ts[j])
			out.vs = append(out.vs, o.vs[j])
			j++
		}
	}
	return out
}

// Buckets downsamples the series into n time buckets, averaging the values
// in each; empty buckets repeat 0. Used for ASCII rendering.
func (s *Series) Buckets(n int) []float64 {
	out := make([]float64, n)
	if len(s.ts) == 0 || n == 0 {
		return out
	}
	t0, t1 := s.ts[0], s.ts[len(s.ts)-1]
	span := t1 - t0
	if span <= 0 {
		span = 1
	}
	counts := make([]int, n)
	for i, t := range s.ts {
		b := int(int64(t-t0) * int64(n) / (int64(span) + 1))
		if b >= n {
			b = n - 1
		}
		out[b] += float64(s.vs[i])
		counts[b]++
	}
	for i := range out {
		if counts[i] > 0 {
			out[i] /= float64(counts[i])
		}
	}
	return out
}

// Sparkline renders the series as an n-character block sparkline scaled to
// its own maximum — a terminal rendition of the paper's pattern figures.
func (s *Series) Sparkline(n int) string {
	blocks := []rune(" ▁▂▃▄▅▆▇█")
	bs := s.Buckets(n)
	var max float64
	for _, b := range bs {
		if b > max {
			max = b
		}
	}
	var sb strings.Builder
	for _, b := range bs {
		idx := 0
		if max > 0 {
			idx = int(b / max * float64(len(blocks)-1))
		}
		if idx >= len(blocks) {
			idx = len(blocks) - 1
		}
		sb.WriteRune(blocks[idx])
	}
	return sb.String()
}

// Table is a fixed-width text table in the style of the paper's tables.
type Table struct {
	Title   string
	Headers []string
	rows    [][]string
}

// NewTable creates a table with a title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; cells beyond the header count are dropped, and
// missing cells render empty.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.Headers))
	for i := range row {
		if i < len(cells) {
			row[i] = cells[i]
		}
	}
	t.rows = append(t.rows, row)
}

// AddRowf appends a row of formatted values.
func (t *Table) AddRowf(format string, cells ...interface{}) {
	parts := make([]string, len(cells))
	for i, c := range cells {
		parts[i] = fmt.Sprint(c)
	}
	_ = format
	t.AddRow(parts...)
}

// Rows returns the row count.
func (t *Table) Rows() int { return len(t.rows) }

// Cell returns row r, column c.
func (t *Table) Cell(r, c int) string { return t.rows[r][c] }

// String renders the table with padded columns and a rule under the
// header.
func (t *Table) String() string {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len([]rune(h))
	}
	for _, row := range t.rows {
		for i, cell := range row {
			if w := len([]rune(cell)); w > widths[i] {
				widths[i] = w
			}
		}
	}
	var sb strings.Builder
	if t.Title != "" {
		sb.WriteString(t.Title)
		sb.WriteString("\n")
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			sb.WriteString(cell)
			sb.WriteString(strings.Repeat(" ", widths[i]-len([]rune(cell))))
		}
		sb.WriteString("\n")
	}
	writeRow(t.Headers)
	total := 0
	for _, w := range widths {
		total += w
	}
	sb.WriteString(strings.Repeat("-", total+2*(len(widths)-1)))
	sb.WriteString("\n")
	for _, row := range t.rows {
		writeRow(row)
	}
	return sb.String()
}

// Pct formats an improvement percentage like the paper's tables ("17.8%").
func Pct(baseline, improved sim.Time) string {
	if baseline <= 0 {
		return "n/a"
	}
	return fmt.Sprintf("%.1f%%", 100*float64(baseline-improved)/float64(baseline))
}

// WriteCSV emits the series as "time_ns,value" rows with a header, for
// external plotting of the locking-pattern figures.
func (s *Series) WriteCSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "time_ns,%s\n", s.Name); err != nil {
		return err
	}
	for i := range s.vs {
		if _, err := fmt.Fprintf(bw, "%d,%d\n", int64(s.ts[i]), s.vs[i]); err != nil {
			return err
		}
	}
	return bw.Flush()
}
