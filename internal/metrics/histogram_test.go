package metrics

import (
	"testing"

	"repro/internal/sim"
)

func TestQuantileEmpty(t *testing.T) {
	h := NewHistogram("empty")
	for _, q := range []float64{-1, 0, 0.5, 1, 2} {
		if got := h.Quantile(q); got != 0 {
			t.Errorf("empty Quantile(%v) = %v, want 0", q, got)
		}
	}
}

func TestQuantileSingleSample(t *testing.T) {
	h := NewHistogram("one")
	h.Record(100)
	// 100 lands in bucket [64,128); every quantile is bounded by the
	// bucket top 128 and the bound must never be below the sample.
	for _, q := range []float64{0.01, 0.5, 0.99, 1} {
		got := h.Quantile(q)
		if got < 100 || got > 128 {
			t.Errorf("Quantile(%v) = %v, want within [100,128]", q, got)
		}
	}
	if got := h.Quantile(0); got != 0 {
		t.Errorf("Quantile(0) = %v, want 0", got)
	}
}

func TestQuantileBucketBoundaries(t *testing.T) {
	h := NewHistogram("bounds")
	// Exact powers of two sit at the bottom of their bucket: 8 is in
	// [8,16), whose top 16 saturates at the recorded max 8.
	h.Record(8)
	if got := h.Quantile(1); got != 8 {
		t.Errorf("Quantile(1) after Record(8) = %v, want 8 (bucket top saturated at max)", got)
	}
	// 7 is in [4,8): adding two shifts the median down one bucket.
	h.Record(7)
	h.Record(7)
	if got := h.Quantile(0.5); got != 8 {
		t.Errorf("median of {7,7,8} = %v, want 8", got)
	}
	if got := h.Quantile(1); got != 8 {
		t.Errorf("Quantile(1) of {7,7,8} = %v, want 8", got)
	}
}

func TestQuantileZeroAndNegative(t *testing.T) {
	h := NewHistogram("zero")
	h.Record(0)
	h.Record(-5) // clamped to 0
	if h.Count() != 2 {
		t.Fatalf("Count = %d, want 2", h.Count())
	}
	// Bucket 0 is [0,2): the bound is its top, saturated at max (0).
	if got := h.Quantile(1); got != 0 {
		t.Errorf("Quantile(1) of zeros = %v, want 0", got)
	}
}

func TestQuantileMaxSaturation(t *testing.T) {
	h := NewHistogram("huge")
	huge := sim.Time(1)<<62 + 12345 // top-most representable bucket
	h.Record(huge)
	h.Record(3)
	got := h.Quantile(1)
	if got != huge {
		t.Errorf("Quantile(1) = %v, want saturation at max %v", got, huge)
	}
	if got < 0 {
		t.Errorf("Quantile(1) overflowed negative: %v", got)
	}
	// The low quantile still resolves to the small sample's bucket top.
	if got := h.Quantile(0.5); got != 4 {
		t.Errorf("Quantile(0.5) = %v, want 4", got)
	}
}

func TestQuantileAboveOneClamps(t *testing.T) {
	h := NewHistogram("clamp")
	h.Record(10)
	if got, want := h.Quantile(5), h.Quantile(1); got != want {
		t.Errorf("Quantile(5) = %v, want Quantile(1) = %v", got, want)
	}
}

func TestPWrappersMatchQuantile(t *testing.T) {
	h := NewHistogram("p")
	for d := sim.Time(1); d < 1<<16; d *= 2 {
		h.Record(d)
	}
	if h.P50() != h.Quantile(0.50) {
		t.Errorf("P50 = %v, Quantile(0.50) = %v", h.P50(), h.Quantile(0.50))
	}
	if h.P99() != h.Quantile(0.99) {
		t.Errorf("P99 = %v, Quantile(0.99) = %v", h.P99(), h.Quantile(0.99))
	}
	if h.P999() != h.Quantile(0.999) {
		t.Errorf("P999 = %v, Quantile(0.999) = %v", h.P999(), h.Quantile(0.999))
	}
	if h.P50() > h.P99() || h.P99() > h.P999() || h.P999() > h.Max() {
		t.Errorf("tail quantiles not ordered: p50=%v p99=%v p999=%v max=%v",
			h.P50(), h.P99(), h.P999(), h.Max())
	}
}

// TestSummaryGolden pins the exact digest layout the profiler's histogram
// exporter depends on for byte-reproducible output.
func TestSummaryGolden(t *testing.T) {
	h := NewHistogram("s")
	if got, want := h.Summary(),
		"n=0        mean=0ns          p50=0ns          p99=0ns          p999=0ns          max=0ns"; got != want {
		t.Errorf("empty Summary:\n%q\nwant:\n%q", got, want)
	}
	h.Record(50)
	h.Record(70)
	// Both quantile target ranks truncate to the first sample (bucket
	// [32,64), top 64); mean and max are exact.
	if got, want := h.Summary(),
		"n=2        mean=60ns         p50=64ns         p99=64ns         p999=64ns         max=70ns"; got != want {
		t.Errorf("Summary of {50,70}:\n%q\nwant:\n%q", got, want)
	}
}

func TestQuantileMonotone(t *testing.T) {
	h := NewHistogram("mono")
	for d := sim.Time(1); d < 1<<20; d *= 3 {
		h.Record(d)
	}
	prev := sim.Time(0)
	for q := 0.05; q <= 1.0; q += 0.05 {
		got := h.Quantile(q)
		if got < prev {
			t.Errorf("Quantile(%v) = %v < Quantile(previous) = %v; must be monotone", q, got, prev)
		}
		prev = got
	}
	if h.Quantile(1) != h.Max() && h.Quantile(1) < h.Max() {
		t.Errorf("Quantile(1) = %v below max %v", h.Quantile(1), h.Max())
	}
}
