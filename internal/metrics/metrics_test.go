package metrics

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/sim"
)

func TestSeriesBasics(t *testing.T) {
	s := NewSeries("qlock")
	for i := 0; i < 10; i++ {
		s.Add(sim.Time(i*100), int64(i%4))
	}
	if s.Len() != 10 {
		t.Fatalf("Len = %d", s.Len())
	}
	if s.Max() != 3 {
		t.Fatalf("Max = %d, want 3", s.Max())
	}
	if m := s.Mean(); m < 1.3 || m > 1.5 {
		t.Fatalf("Mean = %v, want 1.4", m)
	}
	if f := s.FracAbove(2); f != 0.2 {
		t.Fatalf("FracAbove(2) = %v, want 0.2", f)
	}
	tm, v := s.At(3)
	if tm != 300 || v != 3 {
		t.Fatalf("At(3) = %v,%d", tm, v)
	}
}

func TestSeriesEmpty(t *testing.T) {
	s := NewSeries("empty")
	if s.Max() != 0 || s.Mean() != 0 || s.FracAbove(0) != 0 {
		t.Fatal("empty series stats nonzero")
	}
	if sp := s.Sparkline(8); len([]rune(sp)) != 8 {
		t.Fatalf("sparkline length %d, want 8", len([]rune(sp)))
	}
}

func TestSeriesMergeSortsByTime(t *testing.T) {
	a := NewSeries("a")
	b := NewSeries("b")
	a.Add(10, 1)
	a.Add(30, 3)
	b.Add(20, 2)
	b.Add(40, 4)
	m := a.Merge(b)
	if m.Len() != 4 {
		t.Fatalf("merged Len = %d", m.Len())
	}
	var prev sim.Time = -1
	for i := 0; i < m.Len(); i++ {
		tm, v := m.At(i)
		if tm < prev {
			t.Fatalf("merge not time-ordered at %d", i)
		}
		prev = tm
		if int64(tm/10) != v {
			t.Fatalf("sample mismatch: t=%v v=%d", tm, v)
		}
	}
}

func TestSeriesBuckets(t *testing.T) {
	s := NewSeries("x")
	for i := 0; i < 100; i++ {
		s.Add(sim.Time(i), int64(i))
	}
	bs := s.Buckets(10)
	if len(bs) != 10 {
		t.Fatalf("buckets = %d", len(bs))
	}
	for i := 1; i < len(bs); i++ {
		if bs[i] <= bs[i-1] {
			t.Fatalf("bucket means not increasing for a ramp: %v", bs)
		}
	}
}

func TestSparklineShape(t *testing.T) {
	s := NewSeries("ramp")
	for i := 0; i < 64; i++ {
		s.Add(sim.Time(i), int64(i))
	}
	sp := []rune(s.Sparkline(8))
	if sp[0] >= sp[7] {
		t.Fatalf("ramp sparkline not increasing: %q", string(sp))
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("Table 1: results", "Lock type", "local", "remote")
	tb.AddRow("spin-lock", "40.79µs", "41.10µs")
	tb.AddRow("blocking-lock", "88.59µs", "91.73µs")
	out := tb.String()
	if !strings.Contains(out, "Table 1") || !strings.Contains(out, "blocking-lock") {
		t.Fatalf("render missing content:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// Title, header, rule, two rows.
	if len(lines) != 5 {
		t.Fatalf("render has %d lines, want 5:\n%s", len(lines), out)
	}
	if tb.Rows() != 2 || tb.Cell(1, 0) != "blocking-lock" {
		t.Fatal("cell accessors broken")
	}
}

func TestTableShortRowsPad(t *testing.T) {
	tb := NewTable("", "a", "b", "c")
	tb.AddRow("only")
	if got := tb.Cell(0, 2); got != "" {
		t.Fatalf("missing cell = %q, want empty", got)
	}
}

func TestPct(t *testing.T) {
	if got := Pct(3207*sim.Millisecond, 2636*sim.Millisecond); got != "17.8%" {
		t.Fatalf("Pct = %q, want 17.8%% (the paper's Table 1)", got)
	}
	if got := Pct(0, 10); got != "n/a" {
		t.Fatalf("Pct(0,·) = %q", got)
	}
}

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram("waits")
	for _, d := range []sim.Time{0, 1, 2, 3, 4, 100, 1000, 1_000_000} {
		h.Record(d)
	}
	if h.Count() != 8 {
		t.Fatalf("Count = %d", h.Count())
	}
	if h.Max() != 1_000_000 {
		t.Fatalf("Max = %v", h.Max())
	}
	if h.Mean() <= 0 {
		t.Fatalf("Mean = %v", h.Mean())
	}
	if h.Record(-5); h.Count() != 9 {
		t.Fatal("negative sample not clamped and counted")
	}
	out := h.String()
	if !strings.Contains(out, "waits") {
		t.Fatalf("render missing name:\n%s", out)
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := NewHistogram("q")
	for i := 0; i < 90; i++ {
		h.Record(10) // bucket [8,16)
	}
	for i := 0; i < 10; i++ {
		h.Record(100_000)
	}
	if q := h.Quantile(0.5); q > 16 {
		t.Fatalf("p50 = %v, want ≤ 16", q)
	}
	if q := h.Quantile(0.99); q < 100_000 {
		t.Fatalf("p99 = %v, want ≥ 100000", q)
	}
	empty := NewHistogram("e")
	if empty.Quantile(0.5) != 0 {
		t.Fatal("empty quantile nonzero")
	}
}

func TestHistogramBuckets(t *testing.T) {
	cases := map[sim.Time]int{0: 0, 1: 0, 2: 1, 3: 1, 4: 2, 7: 2, 8: 3, 1024: 10}
	for d, want := range cases {
		if got := bucketOf(d); got != want {
			t.Errorf("bucketOf(%d) = %d, want %d", int64(d), got, want)
		}
	}
}

func TestSeriesWriteCSV(t *testing.T) {
	s := NewSeries("qlock")
	s.Add(10, 1)
	s.Add(20, 3)
	var buf bytes.Buffer
	if err := s.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	want := "time_ns,qlock\n10,1\n20,3\n"
	if buf.String() != want {
		t.Fatalf("CSV = %q, want %q", buf.String(), want)
	}
}
