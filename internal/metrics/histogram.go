package metrics

import (
	"fmt"
	"math/bits"
	"strings"

	"repro/internal/sim"
)

// Histogram is a log₂-bucketed histogram of durations: bucket i counts
// samples in [2^i, 2^(i+1)) nanoseconds. It records lock wait times and
// similar long-tailed quantities without per-sample storage.
type Histogram struct {
	Name    string
	buckets [64]uint64
	count   uint64
	sum     sim.Time
	max     sim.Time
}

// NewHistogram returns an empty named histogram.
func NewHistogram(name string) *Histogram { return &Histogram{Name: name} }

// Record adds one sample (negative samples count as zero).
func (h *Histogram) Record(d sim.Time) {
	if d < 0 {
		d = 0
	}
	h.buckets[bucketOf(d)]++
	h.count++
	h.sum += d
	if d > h.max {
		h.max = d
	}
}

// bucketOf maps a duration to its log₂ bucket (0 for 0 and 1ns).
func bucketOf(d sim.Time) int {
	if d <= 1 {
		return 0
	}
	return bits.Len64(uint64(d)) - 1
}

// Count reports the number of samples.
func (h *Histogram) Count() uint64 { return h.count }

// Sum reports the total of all samples.
func (h *Histogram) Sum() sim.Time { return h.sum }

// Max reports the largest sample.
func (h *Histogram) Max() sim.Time { return h.max }

// Mean reports the average sample (0 when empty).
func (h *Histogram) Mean() sim.Time {
	if h.count == 0 {
		return 0
	}
	return h.sum / sim.Time(h.count)
}

// Quantile returns an upper bound of the q-quantile (0 < q ≤ 1): the top
// of the bucket containing it, saturated at Max so the bound is both
// tight and overflow-free for samples in the highest buckets. Returns 0
// when empty.
func (h *Histogram) Quantile(q float64) sim.Time {
	if h.count == 0 || q <= 0 {
		return 0
	}
	if q > 1 {
		q = 1
	}
	target := uint64(q * float64(h.count))
	if target == 0 {
		target = 1
	}
	var seen uint64
	for i, c := range h.buckets {
		seen += c
		if seen >= target {
			if i >= 62 { // 1<<63 overflows sim.Time
				return h.max
			}
			top := sim.Time(1) << uint(i+1)
			if top > h.max {
				return h.max
			}
			return top
		}
	}
	return h.max
}

// P50 returns the median upper bound.
func (h *Histogram) P50() sim.Time { return h.Quantile(0.50) }

// P99 returns the 99th-percentile upper bound.
func (h *Histogram) P99() sim.Time { return h.Quantile(0.99) }

// P999 returns the 99.9th-percentile upper bound.
func (h *Histogram) P999() sim.Time { return h.Quantile(0.999) }

// Summary renders the one-line digest the profiler's histogram exporter
// prints: sample count, mean, tail quantiles, and max. All quantities are
// simulated times, so the string is byte-reproducible for a fixed seed.
func (h *Histogram) Summary() string {
	return fmt.Sprintf("n=%-8d mean=%-12s p50=%-12s p99=%-12s p999=%-12s max=%s",
		h.count, h.Mean(), h.P50(), h.P99(), h.P999(), h.max)
}

// String renders the non-empty buckets with proportional bars.
func (h *Histogram) String() string {
	var sb strings.Builder
	if h.Name != "" {
		fmt.Fprintf(&sb, "%s (n=%d, mean=%s, max=%s)\n", h.Name, h.count, h.Mean(), h.max)
	}
	var peak uint64
	for _, c := range h.buckets {
		if c > peak {
			peak = c
		}
	}
	for i, c := range h.buckets {
		if c == 0 {
			continue
		}
		lo := sim.Time(0)
		if i > 0 {
			lo = sim.Time(1) << uint(i)
		}
		bar := int(c * 40 / peak)
		fmt.Fprintf(&sb, "  ≥%-10s %8d %s\n", lo, c, strings.Repeat("█", bar))
	}
	return sb.String()
}
