package experiments

import (
	"fmt"
	"runtime"
	"strings"

	"repro/internal/cthreads"
	"repro/internal/sim"
)

// ShardedScalingOptions configures the sharded-engine scaling
// experiment: one big NUMA machine running a communication-heavy
// client/server workload, partitioned into 1, 2, 4, … shards.
type ShardedScalingOptions struct {
	// Machine is the simulated multiprocessor (default 64 nodes — the
	// benchmark suite runs the same workload at 1024).
	Machine sim.Config
	// MaxShards bounds the doubling shard-count grid 1, 2, 4, …
	// (default 8, clamped to the node count).
	MaxShards int
	// Workers caps worker threads per sharded run (default GOMAXPROCS).
	// Purely wall-clock: every value produces identical rows.
	Workers int
	// Rounds is the client/server request rounds per node pair
	// (default 4).
	Rounds int
	// Jobs fans the independent shard-count runs out like any other
	// sweep (0 or 1 = serial).
	Jobs int
}

func (o ShardedScalingOptions) withDefaults() ShardedScalingOptions {
	if o.Machine.Nodes == 0 {
		o.Machine.Nodes = 64
	}
	if o.Machine.Seed == 0 {
		o.Machine.Seed = 1
	}
	if o.MaxShards < 1 {
		o.MaxShards = 8
	}
	if o.MaxShards > o.Machine.Nodes {
		o.MaxShards = o.Machine.Nodes
	}
	if o.Workers < 1 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.Rounds < 1 {
		o.Rounds = 4
	}
	return o
}

// ShardedRow is one row of the sharded-scaling experiment. SimTime,
// Busy, and Checksum are properties of the workload, not the partition:
// every row must carry identical values, and the determinism tests (and
// CI) fail loudly if any shard count drifts. CrossMsgs grows with the
// shard count — it counts how much of the same communication crossed
// partition boundaries.
type ShardedRow struct {
	Shards    int
	SimTime   sim.Time
	Busy      sim.Time
	Wakeups   int
	Preempt   int
	CrossMsgs uint64
	Checksum  uint64
}

// ShardedScaling runs the client/server ring on partitions of one big
// machine, doubling the shard count up to MaxShards. The returned rows
// demonstrate the sharded engine's contract: identical simulated
// history at every shard count, with only the cross-shard message
// counter revealing how the work was partitioned.
func ShardedScaling(opts ShardedScalingOptions) ([]ShardedRow, error) {
	opts = opts.withDefaults()
	var counts []int
	for s := 1; s <= opts.MaxShards; s *= 2 {
		counts = append(counts, s)
	}
	return sweep(sweepJobs(opts.Jobs, false), len(counts), func(i int) (ShardedRow, error) {
		return shardedRingRun(opts.Machine, counts[i], opts.Workers, opts.Rounds)
	})
}

// ShardedRun executes the scaling workload once at a fixed shard count
// and returns its row — the entry point the root benchmark suite uses
// to time individual partitionings. Zero cfg/workers/rounds values take
// the experiment defaults.
func ShardedRun(cfg sim.Config, shards, workers, rounds int) (ShardedRow, error) {
	opts := ShardedScalingOptions{Machine: cfg, Workers: workers, Rounds: rounds}.withDefaults()
	if shards < 1 {
		shards = 1
	}
	if shards > opts.Machine.Nodes {
		shards = opts.Machine.Nodes
	}
	return shardedRingRun(opts.Machine, shards, opts.Workers, opts.Rounds)
}

// shardedRingRun executes one configuration of the scaling workload: a
// ring of client/server pairs, one per node, wired entirely through the
// shard-legal primitives — posted cell operations for data, WakePost
// for wakeups, ForkPost for migration, BlockTimeout and bounded
// spin-then-yield for waiting. Driver n posts work into the mailbox of
// the server on node (n+1) mod N and spins (yielding) on a local flag
// the server acknowledges through; after its rounds it forks a child
// onto the node halfway across the machine, which posts into a hub
// counter on node 0. All randomness is seeded per (seed, node), so the
// history is a function of the workload alone — never of the partition.
func shardedRingRun(cfg sim.Config, shards, workers, rounds int) (ShardedRow, error) {
	cl := cthreads.NewCluster(cfg, sim.ShardOptions{Shards: shards, Workers: workers})
	n := cl.Procs()
	seed := cl.Sharded().Config().Seed

	mail := make([]*sim.Cell, n)
	flags := make([]*sim.Cell, n)
	for i := 0; i < n; i++ {
		mach := cl.SystemFor(i).Machine()
		mail[i] = mach.NewCell(i, fmt.Sprintf("mail%d", i), 0)
		flags[i] = mach.NewCell(i, fmt.Sprintf("flag%d", i), 0)
	}
	hub := cl.SystemFor(0).Machine().NewCell(0, "hub", 0)

	servers := make([]*cthreads.Thread, n)
	for i := 0; i < n; i++ {
		i := i
		r := sim.NewRNG(seed*2_000_003 + uint64(i)*104_729 + 5)
		servers[i] = cl.Fork(i, fmt.Sprintf("srv%d", i), func(t *cthreads.Thread) {
			box := mail[i]
			ack := flags[(i-1+n)%n]
			consumed := uint64(0)
			for consumed < uint64(rounds) {
				if box.Load(t) == consumed {
					t.BlockTimeout(sim.Time(400+r.Intn(300)) * sim.Microsecond)
					continue
				}
				for box.Load(t) > consumed {
					t.Compute(50 + r.Intn(400))
					consumed++
					ack.PostAdd(t, 1)
				}
			}
		})
	}
	for i := 0; i < n; i++ {
		i := i
		r := sim.NewRNG(seed*3_000_017 + uint64(i)*15_485_863 + 9)
		cl.Fork(i, fmt.Sprintf("drv%d", i), func(t *cthreads.Thread) {
			srv := servers[(i+1)%n]
			box := mail[(i+1)%n]
			flag := flags[i]
			for round := 0; round < rounds; round++ {
				t.Compute(100 + r.Intn(1500))
				box.PostAdd(t, 1)
				t.WakePost(srv)
				// Bounded spin then yield: the server shares this processor.
				want := uint64(round + 1)
				pause := sim.Time(300 + r.Intn(700))
				for {
					_, ok := t.SpinUntil(&sim.SpinSpec{
						ProbeCell: flag,
						Probe:     func() bool { return flag.Peek() >= want },
						PauseCost: func() sim.Time { return pause },
						MaxIters:  64 + int64(r.Intn(64)),
					})
					if ok {
						break
					}
					t.Yield()
				}
			}
			work := 200 + r.Intn(800)
			t.ForkPost((i+n/2)%n, fmt.Sprintf("mig%d", i), func(t *cthreads.Thread) {
				t.Compute(work)
				hub.PostAdd(t, 1)
			})
		})
	}
	if err := cl.Run(); err != nil {
		return ShardedRow{}, err
	}

	row := ShardedRow{Shards: shards}
	for i := 0; i < cl.Shards(); i++ {
		sys := cl.System(i)
		if now := sys.Now(); now > row.SimTime {
			row.SimTime = now
		}
		for _, t := range sys.Threads() {
			row.Busy += t.Busy()
		}
		for j := 0; j < cl.Shards(); j++ {
			c, _ := cl.Sharded().EdgeStats(i, j)
			row.CrossMsgs += c
		}
	}
	st := cl.Stats()
	row.Wakeups, row.Preempt = st.Wakeups, st.Preemptions
	// Workload-result fingerprint (FNV-1a over the final cell values):
	// any divergence between shard counts lands here even if the timing
	// columns happen to agree.
	sum := uint64(14695981039346656037)
	mix := func(v uint64) {
		for b := 0; b < 8; b++ {
			sum ^= (v >> (8 * b)) & 0xff
			sum *= 1099511628211
		}
	}
	for i := 0; i < n; i++ {
		mix(mail[i].Peek())
		mix(flags[i].Peek())
	}
	mix(hub.Peek())
	row.Checksum = sum
	return row, nil
}

// RenderShardedScaling formats the scaling rows. The virtual-time,
// busy, and checksum columns must read identically down the table —
// that is the determinism contract, printed where it can be seen.
func RenderShardedScaling(rows []ShardedRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Sharded engine scaling: one big machine, identical history at every partition\n")
	fmt.Fprintf(&b, "%-8s %14s %14s %10s %10s %12s %18s\n",
		"shards", "virtual-time", "busy", "wakeups", "preempt", "cross-msgs", "checksum")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-8d %14s %14s %10d %10d %12d %18x\n",
			r.Shards, r.SimTime, r.Busy, r.Wakeups, r.Preempt, r.CrossMsgs, r.Checksum)
	}
	return b.String()
}
