package experiments

import (
	"fmt"

	"repro/internal/locks"
	"repro/internal/sim"
	"repro/internal/sor"
)

// SORRow compares blocking and adaptive residual locks on the SOR solver
// at one worker count.
type SORRow struct {
	Workers        int
	Blocking       sim.Time
	Adaptive       sim.Time
	ImprovementPct float64
	Sweeps         int
}

// SORComparison runs the massively parallel application of the paper's §7
// follow-on study: red-black SOR whose per-sweep residual fold hits one
// lock from every worker at once. Rows sweep the worker count; the
// adaptive lock's gain at the large end is the §4 prediction under a very
// different (bursty, barrier-synchronized) locking pattern than TSP's.
func SORComparison(workerCounts []int, jobs int) ([]SORRow, error) {
	if len(workerCounts) == 0 {
		workerCounts = []int{8, 16, 24}
	}
	return sweep(sweepJobs(jobs, false), len(workerCounts), func(i int) (SORRow, error) {
		w := workerCounts[i]
		run := func(kind locks.Kind) (sor.Result, error) {
			return sor.Solve(sor.Config{
				Problem:  sor.Problem{N: 48, Tol: 1e-3},
				Workers:  w,
				LockKind: kind,
			})
		}
		blocking, err := run(locks.KindBlocking)
		if err != nil {
			return SORRow{}, fmt.Errorf("sor blocking %d workers: %w", w, err)
		}
		adaptive, err := run(locks.KindAdaptive)
		if err != nil {
			return SORRow{}, fmt.Errorf("sor adaptive %d workers: %w", w, err)
		}
		if blocking.Sweeps != adaptive.Sweeps {
			return SORRow{}, fmt.Errorf("sor: sweep counts diverge (%d vs %d)", blocking.Sweeps, adaptive.Sweeps)
		}
		return SORRow{
			Workers:        w,
			Blocking:       blocking.Elapsed,
			Adaptive:       adaptive.Elapsed,
			ImprovementPct: 100 * float64(blocking.Elapsed-adaptive.Elapsed) / float64(blocking.Elapsed),
			Sweeps:         blocking.Sweeps,
		}, nil
	})
}
