package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/locks"
	"repro/internal/profile"
	"repro/internal/sim"
	"repro/internal/workload"
)

// Figure1Options configures the combined-lock critical-section sweep. The
// workload multiprograms each processor (threads > processors) under
// preemptive timeslicing, where the choice between spinning and sleeping
// is a real trade-off.
type Figure1Options struct {
	Procs          int
	ThreadsPerProc int
	Iters          int
	LocalWork      sim.Time
	Quantum        sim.Time
	// CSLengths is the sweep of critical-section lengths (the x-axis).
	CSLengths []sim.Time
	Machine   sim.Config
	Costs     *locks.Costs
	// Profiler and Ledger, when non-nil, observe every cell of the sweep
	// (one shared collector), which forces serial execution.
	Profiler *profile.Profiler
	Ledger   *core.Ledger
	// Jobs fans the (length × strategy) grid out over up to Jobs workers;
	// every cell is an independent simulation. 0 or 1 is serial.
	Jobs int
}

func (o Figure1Options) withDefaults() Figure1Options {
	if o.Procs == 0 {
		o.Procs = 8
	}
	if o.ThreadsPerProc == 0 {
		o.ThreadsPerProc = 3
	}
	if o.Iters == 0 {
		o.Iters = 25
	}
	if o.LocalWork == 0 {
		o.LocalWork = 400 * sim.Microsecond
	}
	if o.Quantum == 0 {
		o.Quantum = 1 * sim.Millisecond
	}
	if len(o.CSLengths) == 0 {
		o.CSLengths = []sim.Time{
			5 * sim.Microsecond, 10 * sim.Microsecond, 25 * sim.Microsecond,
			50 * sim.Microsecond, 100 * sim.Microsecond, 250 * sim.Microsecond,
			500 * sim.Microsecond, 1000 * sim.Microsecond,
		}
	}
	return o
}

// Figure1Strategies are the waiting policies the figure compares: the
// paper's five (pure spin, pure block, combined-k) plus this
// reproduction's predictive mutable lock and NUMA cohort lock.
func Figure1Strategies() []workload.Strategy {
	return []workload.Strategy{
		workload.SpinStrategy(),
		workload.BlockStrategy(),
		workload.CombinedStrategy(1),
		workload.CombinedStrategy(10),
		workload.CombinedStrategy(50),
		workload.MutableStrategy(),
		workload.CohortStrategy(),
	}
}

// Figure1Row is the application execution time at one critical-section
// length for every strategy, keyed by strategy name.
type Figure1Row struct {
	CSLength sim.Time
	Elapsed  map[string]sim.Time
}

// Figure1 reproduces the paper's Figure 1: application execution time as a
// function of critical-section length for pure spin, pure blocking, and
// combined locks with 1, 10, and 50 initial spins.
func Figure1(opts Figure1Options) ([]Figure1Row, error) {
	opts = opts.withDefaults()
	strategies := Figure1Strategies()
	// The grid is flattened to (length, strategy) cells so the fan-out sees
	// every independent simulation, not just the row count.
	cells, err := sweep(sweepJobs(opts.Jobs, opts.Profiler != nil || opts.Ledger != nil),
		len(opts.CSLengths)*len(strategies),
		func(i int) (sim.Time, error) {
			cs := opts.CSLengths[i/len(strategies)]
			strat := strategies[i%len(strategies)]
			m := opts.Machine
			m.Quantum = opts.Quantum
			res, err := workload.RunCS(workload.CSConfig{
				Procs:     opts.Procs,
				Threads:   opts.Procs * opts.ThreadsPerProc,
				Iters:     opts.Iters,
				CSLength:  cs,
				LocalWork: opts.LocalWork,
				Jitter:    opts.LocalWork / 4,
				Machine:   m,
				Costs:     opts.Costs,
				Profiler:  opts.Profiler,
				Ledger:    opts.Ledger,
			}, strat)
			if err != nil {
				return 0, fmt.Errorf("figure1 cs=%v %s: %w", cs, strat.Name, err)
			}
			return res.Elapsed, nil
		})
	if err != nil {
		return nil, err
	}
	rows := make([]Figure1Row, 0, len(opts.CSLengths))
	for r, cs := range opts.CSLengths {
		row := Figure1Row{CSLength: cs, Elapsed: make(map[string]sim.Time, len(strategies))}
		for s, strat := range strategies {
			row.Elapsed[strat.Name] = cells[r*len(strategies)+s]
		}
		rows = append(rows, row)
	}
	return rows, nil
}
