package experiments

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/locks"
	"repro/internal/sim"
	"repro/internal/tsp"
)

// TestMonitorHotspotHeadline pins the tentpole's performance claim on the
// contended hotspot: under high contention (32 callers) flat combining
// must cut both p99 method-completion latency and total elapsed time
// versus synchronous locking — and at low contention (2 callers) sync
// must win elapsed, the honest other side of the trade.
func TestMonitorHotspotHeadline(t *testing.T) {
	rows, err := MonitorHotspot(sim.Config{}, 4)
	if err != nil {
		t.Fatal(err)
	}
	byKey := map[string]MonitorHotspotRow{}
	for _, r := range rows {
		byKey[fmt.Sprintf("%s/%d", r.Mode, r.Callers)] = r
	}
	sync32, flat32 := byKey["sync/32"], byKey["flat/32"]
	if flat32.P99 >= sync32.P99 {
		t.Errorf("32 callers: flat p99 %v not below sync p99 %v", flat32.P99, sync32.P99)
	}
	if flat32.Elapsed >= sync32.Elapsed {
		t.Errorf("32 callers: flat elapsed %v not below sync elapsed %v", flat32.Elapsed, sync32.Elapsed)
	}
	sync8, flat8 := byKey["sync/8"], byKey["flat/8"]
	if flat8.P99 >= sync8.P99 {
		t.Errorf("8 callers: flat p99 %v not below sync p99 %v", flat8.P99, sync8.P99)
	}
	sync2, flat2 := byKey["sync/2"], byKey["flat/2"]
	if sync2.Elapsed >= flat2.Elapsed {
		t.Errorf("2 callers: sync elapsed %v not below flat elapsed %v — the low-contention overhead disappeared?", sync2.Elapsed, flat2.Elapsed)
	}
	if byKey["flat/32"].Batches == 0 || byKey["server/32"].Batches == 0 {
		t.Error("no combining batches recorded")
	}
}

// TestMonitorPhasesSwitchesBothWays checks the phase-changing workload
// drives at least one sensor-driven sync→async switch and the return.
func TestMonitorPhasesSwitchesBothWays(t *testing.T) {
	rep, err := MonitorPhases(sim.Config{})
	if err != nil {
		t.Fatal(err)
	}
	var toAsync, backToSync bool
	for _, s := range rep.Switches {
		if strings.Contains(s.Decision, "exec-mode←1") {
			toAsync = true
		}
		if toAsync && strings.Contains(s.Decision, "exec-mode←0") {
			backToSync = true
		}
	}
	if !toAsync || !backToSync {
		t.Fatalf("switches = %+v, want sync→async and async→sync", rep.Switches)
	}
	if rep.SyncCalls == 0 || rep.Submits == 0 {
		t.Fatalf("report = %+v, want both modes exercised", rep)
	}
}

// TestMonitorSweepParallelDeterminism extends the -j gate to the new
// sweeps: parallel fan-out must be byte-identical to serial.
func TestMonitorSweepParallelDeterminism(t *testing.T) {
	render := func(jobs int) string {
		hot, err := MonitorHotspot(sim.Config{}, jobs)
		if err != nil {
			t.Fatal(err)
		}
		wl, err := WaitLatencySweep(sim.Config{}, jobs, nil)
		if err != nil {
			t.Fatal(err)
		}
		return RenderMonitorHotspot(hot).String() + RenderWaitLatency(wl).String()
	}
	serial, parallel := render(1), render(8)
	if serial != parallel {
		t.Errorf("monitor sweeps differ between -j 1 and -j 8:\n%s\n--- vs ---\n%s", serial, parallel)
	}
}

// tspAsyncOffFingerprint solves one seeded TSP instance with AsyncQueue
// disabled and renders every metric of the result.
func tspAsyncOffFingerprint(t *testing.T, batched bool) string {
	t.Helper()
	sim.SetDefaultBatchedSpins(batched)
	defer sim.SetDefaultBatchedSpins(true)
	in := tsp.NewRandomInstance(8, 3)
	res, err := tsp.Solve(tsp.Config{
		Instance:  in,
		Searchers: 4,
		Org:       tsp.OrgCentralized,
		LockKind:  locks.KindAdaptive,
		Machine:   sim.Config{Nodes: 4, Seed: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	return fmt.Sprintf("%d|%d|%d|%d|%v|%v|%v",
		res.Tour.Cost, res.Elapsed, res.Expansions, res.Useless,
		res.LockStats[tsp.LockQueue], res.FinalSpin, res.Sched)
}

// TestAsyncOffEngineModeDifferential is the satellite differential: with
// the async queue disabled the TSP solve must stay byte-identical across
// spin batching on/off (the monitor code adds no charge to the disabled
// path), and the sharded scaling workload must stay serial-identical
// across -shards {1,4}.
func TestAsyncOffEngineModeDifferential(t *testing.T) {
	ref := tspAsyncOffFingerprint(t, true)
	if got := tspAsyncOffFingerprint(t, false); got != ref {
		t.Errorf("async-off TSP diverges across spin batching:\nref: %s\ngot: %s", ref, got)
	}

	shardCfg := sim.Config{Nodes: 8, Seed: 1}
	r1, err := ShardedRun(shardCfg, 1, 8, 6)
	if err != nil {
		t.Fatal(err)
	}
	r4, err := ShardedRun(shardCfg, 4, 8, 6)
	if err != nil {
		t.Fatal(err)
	}
	if r1.SimTime != r4.SimTime || r1.Busy != r4.Busy || r1.Checksum != r4.Checksum {
		t.Errorf("sharded run diverges: shards=1 %+v, shards=4 %+v", r1, r4)
	}
}
