// Package experiments encodes every table and figure of the paper's
// evaluation as a reproducible function: the lock microbenchmarks of §5.2
// (Tables 4–8), the TSP application comparisons of §4 (Tables 1–3) with
// their locking-pattern figures (Figures 4–9), the combined-lock
// motivation sweep (Figure 1), and the extension experiments (scheduler
// comparison, spin-vs-block crossover, adaptation-policy ablation).
//
// The same functions drive cmd/lockbench, cmd/tspbench, cmd/figures, the
// root bench_test.go benchmarks, and the shape-assertion tests; every run
// is deterministic given the options.
package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/cthreads"
	"repro/internal/locks"
	"repro/internal/profile"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Options configures the microbenchmark experiments.
type Options struct {
	// Machine is the simulated multiprocessor; zero fields take the
	// GP1000-flavoured defaults.
	Machine sim.Config
	// Costs calibrates lock implementations; nil means locks.DefaultCosts.
	Costs *locks.Costs
	// Iters is how many times each operation is repeated and averaged
	// (adaptive locks reach steady state after a few samples).
	Iters int
	// Tracer, when non-nil, is attached to every measured system; the
	// microbenchmarks run many short simulations, so their events share
	// one virtual timeline restarting at zero per measurement. A non-nil
	// tracer forces serial execution regardless of Jobs.
	Tracer *trace.Tracer
	// Profiler, when non-nil, is attached to every measured system: each
	// simulation's threads charge their virtual time into the shared
	// attribution profile. Like Tracer, it forces serial execution.
	Profiler *profile.Profiler
	// Ledger, when non-nil, records every adaptation decision the measured
	// systems' reconfigurable locks make. Like Tracer, it forces serial
	// execution.
	Ledger *core.Ledger
	// Jobs is the fan-out for independent measurements: each simulation
	// runs on its own engine, so up to Jobs (capped at GOMAXPROCS) run
	// concurrently while results keep their input order. 0 or 1 is serial.
	Jobs int
	// Kinds, when non-empty, restricts Tables 4 and 5 to these lock kinds
	// (cmd/lockbench's -lock flag); empty means the paper's full row set.
	Kinds []locks.Kind
}

// observed reports whether any observer is attached; observed sweeps run
// serially so all events land on one coherent shared collector.
func (o Options) observed() bool {
	return o.Tracer != nil || o.Profiler != nil || o.Ledger != nil
}

// attach installs the configured observers on a measured system.
func (o Options) attach(sys *cthreads.System) {
	sys.SetTracer(o.Tracer)
	sys.SetProfiler(o.Profiler)
	sys.SetLedger(o.Ledger)
}

func (o Options) withDefaults() Options {
	if o.Machine.Nodes < 2 {
		o.Machine.Nodes = 2
	}
	if o.Costs == nil {
		d := locks.DefaultCosts()
		o.Costs = &d
	}
	if o.Iters < 1 {
		o.Iters = 16
	}
	return o
}

// LockOpRow is one row of Table 4 or Table 5: the latency of a lock or
// unlock operation with the lock word in local vs. remote memory.
type LockOpRow struct {
	Kind   string
	Local  sim.Time
	Remote sim.Time
}

// lockKindsTable4 lists Table 4's rows in paper order, followed by this
// reproduction's additional kinds.
var lockKindsTable4 = []locks.Kind{
	locks.KindTAS, locks.KindSpin, locks.KindBackoff, locks.KindBlocking, locks.KindAdaptive,
	locks.KindMutable, locks.KindCohort,
}

// lockKindsTable5 lists Table 5's rows in paper order (no raw atomior
// row), followed by this reproduction's additional kinds.
var lockKindsTable5 = []locks.Kind{
	locks.KindSpin, locks.KindBackoff, locks.KindBlocking, locks.KindAdaptive,
	locks.KindMutable, locks.KindCohort,
}

// kindLabel renders a lock kind the way the paper's tables name it.
func kindLabel(k locks.Kind) string {
	switch k {
	case locks.KindTAS:
		return "atomior"
	case locks.KindSpin:
		return "spin-lock"
	case locks.KindBackoff:
		return "spin-with-backoff"
	case locks.KindBlocking:
		return "blocking-lock"
	case locks.KindAdaptive:
		return "adaptive lock"
	case locks.KindMutable:
		return "mutable lock"
	case locks.KindCohort:
		return "cohort lock"
	default:
		return string(k)
	}
}

// tableKinds applies the Options.Kinds restriction to a table's row set,
// preserving table order.
func (o Options) tableKinds(all []locks.Kind) []locks.Kind {
	if len(o.Kinds) == 0 {
		return all
	}
	want := make(map[locks.Kind]bool, len(o.Kinds))
	for _, k := range o.Kinds {
		want[k] = true
	}
	out := make([]locks.Kind, 0, len(all))
	for _, k := range all {
		if want[k] {
			out = append(out, k)
		}
	}
	return out
}

// measureOp runs one thread on the given node against a lock on node 0 and
// returns the mean duration of the measured operation over opts.Iters
// uncontended lock/unlock cycles.
func measureOp(opts Options, kind locks.Kind, threadNode int, op string) (sim.Time, error) {
	sys := cthreads.New(opts.Machine)
	opts.attach(sys)
	l, err := locks.New(sys, kind, 0, string(kind), *opts.Costs)
	if err != nil {
		return 0, err
	}
	var total sim.Time
	sys.Fork(threadNode, "measurer", func(t *cthreads.Thread) {
		for i := 0; i < opts.Iters; i++ {
			switch op {
			case "lock":
				start := t.Now()
				l.Lock(t)
				total += t.Now() - start
				l.Unlock(t)
			case "unlock":
				l.Lock(t)
				start := t.Now()
				l.Unlock(t)
				total += t.Now() - start
			default:
				panic("experiments: unknown op " + op)
			}
			t.Advance(10 * sim.Microsecond)
		}
	})
	if err := sys.Run(); err != nil {
		return 0, err
	}
	return total / sim.Time(opts.Iters), nil
}

// Table4 measures the uncontended Lock operation latency for each lock
// kind, local and remote (§5.2 Table 4).
func Table4(opts Options) ([]LockOpRow, error) {
	return lockOpTable(opts, opts.tableKinds(lockKindsTable4), "lock")
}

// Table5 measures the uncontended Unlock operation latency (§5.2 Table 5).
func Table5(opts Options) ([]LockOpRow, error) {
	return lockOpTable(opts, opts.tableKinds(lockKindsTable5), "unlock")
}

func lockOpTable(opts Options, kinds []locks.Kind, op string) ([]LockOpRow, error) {
	opts = opts.withDefaults()
	return sweep(sweepJobs(opts.Jobs, opts.observed()), len(kinds), func(i int) (LockOpRow, error) {
		k := kinds[i]
		local, err := measureOp(opts, k, 0, op)
		if err != nil {
			return LockOpRow{}, fmt.Errorf("%s local %s: %w", op, k, err)
		}
		remote, err := measureOp(opts, k, 1, op)
		if err != nil {
			return LockOpRow{}, fmt.Errorf("%s remote %s: %w", op, k, err)
		}
		return LockOpRow{Kind: kindLabel(k), Local: local, Remote: remote}, nil
	})
}

// CycleRow is one row of Table 6 or 7: the cost of a locking cycle — an
// unlock followed by the waiting requester's completed lock — on a busy
// lock. This is the duration of the lock's "idle state" during a handover.
type CycleRow struct {
	Kind   string
	Local  sim.Time
	Remote sim.Time
}

// cycleLock builds the lock under test for Table 6/7 rows.
type cycleLock func(sys *cthreads.System, node int, costs locks.Costs) locks.Lock

// measureCycle holds the lock on one thread while another waits, then
// releases and measures release-start → waiter-acquired. The holder runs
// on node 0 and is always remote to the lock, so only the waiter's
// distance varies between the local row (lock on the waiter's node 1) and
// the remote row (lock on node 2).
func measureCycle(opts Options, mk cycleLock, lockNode int) (sim.Time, error) {
	if opts.Machine.Nodes < 3 {
		opts.Machine.Nodes = 3
	}
	sys := cthreads.New(opts.Machine)
	opts.attach(sys)
	l := mk(sys, lockNode, *opts.Costs)
	var releaseAt, acquiredAt sim.Time
	holder := sys.Fork(0, "holder", func(t *cthreads.Thread) {
		l.Lock(t)
		t.Advance(3 * sim.Millisecond) // let the waiter settle into waiting
		releaseAt = t.Now()
		l.Unlock(t)
	})
	_ = holder
	sys.Fork(1, "waiter", func(t *cthreads.Thread) {
		t.Advance(200 * sim.Microsecond) // holder certainly owns the lock
		l.Lock(t)
		acquiredAt = t.Now()
		l.Unlock(t)
	})
	if err := sys.Run(); err != nil {
		return 0, err
	}
	if acquiredAt <= releaseAt {
		return 0, fmt.Errorf("experiments: cycle measurement inverted (%v ≤ %v)", acquiredAt, releaseAt)
	}
	return acquiredAt - releaseAt, nil
}

// Table6 measures locking cycles of the static locks: spin,
// spin-with-backoff, and blocking (§5.2 Table 6).
func Table6(opts Options) ([]CycleRow, error) {
	opts = opts.withDefaults()
	cases := []struct {
		name string
		mk   cycleLock
	}{
		{"Spin", func(sys *cthreads.System, node int, c locks.Costs) locks.Lock {
			return locks.NewSpinLock(sys, node, "spin", c)
		}},
		{"Spin-with-backoff", func(sys *cthreads.System, node int, c locks.Costs) locks.Lock {
			return locks.NewBackoffSpinLock(sys, node, "backoff", c)
		}},
		{"Blocking-lock", func(sys *cthreads.System, node int, c locks.Costs) locks.Lock {
			return locks.NewBlockingLock(sys, node, "blocking", c)
		}},
	}
	return cycleTable(opts, cases)
}

// Table7 measures locking cycles of the adaptive lock pinned to its
// pure-spin and pure-blocking configurations (§5.2 Table 7).
func Table7(opts Options) ([]CycleRow, error) {
	opts = opts.withDefaults()
	cases := []struct {
		name string
		mk   cycleLock
	}{
		{"Spin", func(sys *cthreads.System, node int, c locks.Costs) locks.Lock {
			return locks.NewPureSpinConfigured(sys, node, "adaptive-as-spin", c)
		}},
		{"Blocking", func(sys *cthreads.System, node int, c locks.Costs) locks.Lock {
			return locks.NewPureBlockingConfigured(sys, node, "adaptive-as-blocking", c)
		}},
	}
	return cycleTable(opts, cases)
}

func cycleTable(opts Options, cases []struct {
	name string
	mk   cycleLock
}) ([]CycleRow, error) {
	return sweep(sweepJobs(opts.Jobs, opts.observed()), len(cases), func(i int) (CycleRow, error) {
		cse := cases[i]
		local, err := measureCycle(opts, cse.mk, 1) // lock local to the waiter
		if err != nil {
			return CycleRow{}, fmt.Errorf("cycle local %s: %w", cse.name, err)
		}
		remote, err := measureCycle(opts, cse.mk, 2) // lock remote to the waiter
		if err != nil {
			return CycleRow{}, fmt.Errorf("cycle remote %s: %w", cse.name, err)
		}
		return CycleRow{Kind: cse.name, Local: local, Remote: remote}, nil
	})
}

// ConfigOpRow is one row of Table 8: the cost of a basic adaptation
// mechanism. Remote is -1 when the paper reports none.
type ConfigOpRow struct {
	Op     string
	Local  sim.Time
	Remote sim.Time
}

// Table8 measures the basic reconfiguration mechanisms: explicit attribute
// acquisition, waiting-policy configuration, scheduler configuration, and
// one general-purpose-monitor sample (§5.2 Table 8).
func Table8(opts Options) ([]ConfigOpRow, error) {
	opts = opts.withDefaults()
	measure := func(threadNode int, f func(t *cthreads.Thread, l *locks.ReconfigurableLock)) (sim.Time, error) {
		sys := cthreads.New(opts.Machine)
		opts.attach(sys)
		l := locks.NewReconfigurableLock(sys, 0, "cfg", *opts.Costs, 10)
		var dur sim.Time
		sys.Fork(threadNode, "agent", func(t *cthreads.Thread) {
			start := t.Now()
			f(t, l)
			dur = t.Now() - start
		})
		if err := sys.Run(); err != nil {
			return 0, err
		}
		return dur, nil
	}

	type op struct {
		name   string
		run    func(t *cthreads.Thread, l *locks.ReconfigurableLock)
		remote bool
	}
	ops := []op{
		{"acquisition", func(t *cthreads.Thread, l *locks.ReconfigurableLock) {
			if err := l.AcquireAttrBy(t, locks.AttrSpinTime, 42); err != nil {
				panic(err)
			}
		}, true},
		{"configure(waiting policy)", func(t *cthreads.Thread, l *locks.ReconfigurableLock) {
			if err := l.ConfigureBy(t, waitingDecision(50), -1); err != nil {
				panic(err)
			}
		}, true},
		{"configure(scheduler)", func(t *cthreads.Thread, l *locks.ReconfigurableLock) {
			if err := l.ConfigureBy(t, schedulerDecision(locks.SchedPriority), -1); err != nil {
				panic(err)
			}
		}, true},
		{"monitor (one state variable)", func(t *cthreads.Thread, l *locks.ReconfigurableLock) {
			l.GeneralMonitorSample(t)
		}, false},
	}
	return sweep(sweepJobs(opts.Jobs, opts.observed()), len(ops), func(i int) (ConfigOpRow, error) {
		o := ops[i]
		local, err := measure(0, o.run)
		if err != nil {
			return ConfigOpRow{}, fmt.Errorf("table8 %s local: %w", o.name, err)
		}
		remote := sim.Time(-1)
		if o.remote {
			remote, err = measure(1, o.run)
			if err != nil {
				return ConfigOpRow{}, fmt.Errorf("table8 %s remote: %w", o.name, err)
			}
		}
		return ConfigOpRow{Op: o.name, Local: local, Remote: remote}, nil
	})
}
