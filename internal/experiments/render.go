package experiments

import (
	"fmt"

	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/tsp"
)

// us renders a time the way the paper's microbenchmark tables do
// (microseconds with two decimals).
func us(t sim.Time) string {
	if t < 0 {
		return "-"
	}
	return fmt.Sprintf("%.2f", t.Micros())
}

// ms renders a time the way the paper's application tables do
// (milliseconds, whole).
func ms(t sim.Time) string {
	return fmt.Sprintf("%.0f", t.Millis())
}

// RenderLockOpTable renders Table 4 or 5.
func RenderLockOpTable(title string, rows []LockOpRow) *metrics.Table {
	tb := metrics.NewTable(title, "Lock type", "local lock (µs)", "remote lock (µs)")
	for _, r := range rows {
		tb.AddRow(r.Kind, us(r.Local), us(r.Remote))
	}
	return tb
}

// RenderCycleTable renders Table 6 or 7.
func RenderCycleTable(title string, rows []CycleRow) *metrics.Table {
	tb := metrics.NewTable(title, "Configured as / Lock type", "local lock (µs)", "remote lock (µs)")
	for _, r := range rows {
		tb.AddRow(r.Kind, us(r.Local), us(r.Remote))
	}
	return tb
}

// RenderTable8 renders the configuration-operation cost table.
func RenderTable8(rows []ConfigOpRow) *metrics.Table {
	tb := metrics.NewTable("Table 8: Cost of Lock Configuration Operations",
		"Operation", "local lock (µs)", "remote lock (µs)")
	for _, r := range rows {
		tb.AddRow(r.Op, us(r.Local), us(r.Remote))
	}
	return tb
}

// RenderTSPRow renders one of Tables 1–3.
func RenderTSPRow(row TSPRow) *metrics.Table {
	var title string
	switch row.Org {
	case tsp.OrgCentralized:
		title = "Table 1: Performance of the Centralized Implementation"
	case tsp.OrgDistributed:
		title = "Table 2: Performance of the Distributed Implementation"
	default:
		title = "Table 3: Performance of the Distributed Implementation (with load balancing)"
	}
	if row.Sequential > 0 {
		tb := metrics.NewTable(title,
			"Sequential (ms)", "Blocking Lock (ms)", "Adaptive Lock (ms)", "Percentage Improvement")
		tb.AddRow(ms(row.Sequential), ms(row.Blocking), ms(row.Adaptive),
			fmt.Sprintf("%.1f%%", row.ImprovementPct))
		return tb
	}
	tb := metrics.NewTable(title,
		"Blocking Lock (ms)", "Adaptive Lock (ms)", "Percentage Improvement")
	tb.AddRow(ms(row.Blocking), ms(row.Adaptive), fmt.Sprintf("%.1f%%", row.ImprovementPct))
	return tb
}

// RenderPattern renders one locking-pattern figure as a sparkline plus
// summary statistics.
func RenderPattern(f PatternFigure, width int) string {
	s := f.Series
	return fmt.Sprintf("Figure %d: %q locking pattern, %s implementation\n"+
		"  requests=%d  mean-waiting=%.2f  max-waiting=%d  frac>0=%.0f%%\n"+
		"  |%s|\n",
		f.Figure, f.Lock, f.Org,
		s.Len(), s.Mean(), s.Max(), 100*s.FracAbove(0),
		s.Sparkline(width))
}

// RenderFigure1 renders the combined-lock sweep as a table (one row per
// critical-section length).
func RenderFigure1(rows []Figure1Row) *metrics.Table {
	tb := metrics.NewTable("Figure 1: Length of critical section vs. application execution time (ms)",
		"CS length", "pure-spin", "pure-block", "combined-1", "combined-10", "combined-50",
		"mutable", "cohort")
	for _, r := range rows {
		tb.AddRow(r.CSLength.String(),
			ms(r.Elapsed["pure-spin"]), ms(r.Elapsed["pure-block"]),
			ms(r.Elapsed["combined-1"]), ms(r.Elapsed["combined-10"]), ms(r.Elapsed["combined-50"]),
			ms(r.Elapsed["mutable"]), ms(r.Elapsed["cohort"]))
	}
	return tb
}

// RenderSchedulerComparison renders the FCFS/priority/handoff rows.
func RenderSchedulerComparison(rows []SchedRow) *metrics.Table {
	tb := metrics.NewTable("Lock scheduler comparison (client-server workload)",
		"Scheduler", "completion (ms)", "mean response (µs)", "peak backlog")
	for _, r := range rows {
		tb.AddRow(r.Scheduler, ms(r.Elapsed), us(r.MeanResponse), fmt.Sprint(r.QueuePeak))
	}
	return tb
}

// RenderCrossover renders the spin-vs-block multiprogramming sweep.
func RenderCrossover(rows []CrossoverRow) *metrics.Table {
	tb := metrics.NewTable("Spin vs. block across multiprogramming levels",
		"threads/processor", "pure-spin (ms)", "pure-block (ms)", "winner")
	for _, r := range rows {
		winner := "spin"
		if r.Block < r.Spin {
			winner = "block"
		}
		tb.AddRow(fmt.Sprint(r.ThreadsPerProc), ms(r.Spin), ms(r.Block), winner)
	}
	return tb
}

// RenderAdvisory renders the variable-length critical-section comparison.
func RenderAdvisory(rows []AdvisoryRow) *metrics.Table {
	tb := metrics.NewTable("Advisory lock under variable-length critical sections (90% 10µs, 10% 2ms)",
		"Strategy", "elapsed (ms)", "blocks", "spin iterations")
	for _, r := range rows {
		tb.AddRow(r.Strategy, ms(r.Elapsed), fmt.Sprint(r.Blocks), fmt.Sprint(r.Spins))
	}
	return tb
}

// RenderAblation renders the SimpleAdapt constant sweep.
func RenderAblation(rows []AblationRow) *metrics.Table {
	tb := metrics.NewTable("Adaptation-policy ablation: Waiting-Threshold × n",
		"Waiting-Threshold", "n (step)", "elapsed (ms)")
	for _, r := range rows {
		tb.AddRow(fmt.Sprint(r.WaitingThreshold), fmt.Sprint(r.Step), ms(r.Elapsed))
	}
	return tb
}

// RenderRetargeting renders the lock-representation ablation.
func RenderRetargeting(rows []RetargetRow) *metrics.Table {
	tb := metrics.NewTable("Lock representation re-targeting under memory-module contention",
		"contending threads", "remote-spin TAS (ms)", "local-spin MCS (ms)", "TAS hot-spot delay")
	for _, r := range rows {
		tb.AddRow(fmt.Sprint(r.Threads), ms(r.RemoteSpin), ms(r.LocalSpin), r.HotSpotDelay.String())
	}
	return tb
}

// RenderMutableCalibration renders the predicted-vs-actual wait report
// of the mutable lock (lockbench -calib).
func RenderMutableCalibration(rows []CalibRow) *metrics.Table {
	tb := metrics.NewTable("Mutable lock: predicted vs. actual wait calibration",
		"waiters", "spin", "spin-block", "block", "cold",
		"mean predicted (µs)", "mean actual (µs)", "mean |err| (µs)")
	for _, r := range rows {
		tb.AddRow(fmt.Sprint(r.Waiters),
			fmt.Sprint(r.Spin), fmt.Sprint(r.SpinBlock), fmt.Sprint(r.Block), fmt.Sprint(r.Cold),
			us(r.MeanPredicted), us(r.MeanActual), us(r.MeanAbsErr))
	}
	return tb
}

// RenderCohortNUMA renders the cohort-vs-spin-vs-MCS NUMA comparison.
func RenderCohortNUMA(rows []CohortRow) *metrics.Table {
	tb := metrics.NewTable("Cohort lock: execution time and remote lock transfers by machine size",
		"nodes×threads", "spin (ms)", "mcs (ms)", "cohort (ms)",
		"spin remote", "mcs remote", "cohort remote", "local handoffs")
	for _, r := range rows {
		tb.AddRow(fmt.Sprintf("%d×%d", r.Nodes, r.PerNode),
			ms(r.Spin), ms(r.MCS), ms(r.Cohort),
			fmt.Sprint(r.SpinRemote), fmt.Sprint(r.MCSRemote), fmt.Sprint(r.CohortRemote),
			fmt.Sprint(r.LocalHandoffs))
	}
	return tb
}

// RenderCoupling renders the feedback-loop coupling comparison.
func RenderCoupling(rows []CouplingRow) *metrics.Table {
	tb := metrics.NewTable("Feedback-loop coupling: inline monitor vs. general-purpose thread monitor",
		"Loop structure", "elapsed (ms)", "decision lag", "trace drops")
	for _, r := range rows {
		tb.AddRow(r.Mode, ms(r.Elapsed), r.DecisionLag.String(), fmt.Sprint(r.Drops))
	}
	return tb
}

// RenderPlatforms renders the platform-retargeting sweep.
func RenderPlatforms(rows []PlatformRow) *metrics.Table {
	tb := metrics.NewTable("Re-targeting across platforms: spin vs. block as remote references get dearer",
		"Platform", "spin op remote (µs)", "block op remote (µs)", "spin (ms)", "block (ms)", "spin/block")
	for _, r := range rows {
		tb.AddRow(r.Platform, us(r.SpinOpRemote), us(r.BlockOpRemote),
			ms(r.SpinElapsed), ms(r.BlockElapsed), fmt.Sprintf("%.2f", r.SpinOverBlock))
	}
	return tb
}

// RenderScaling renders the gain-vs-processors sweep.
func RenderScaling(rows []ScalingRow) *metrics.Table {
	tb := metrics.NewTable("Adaptive-lock gain vs. processor count (centralized TSP)",
		"searchers", "blocking (ms)", "adaptive (ms)", "improvement")
	for _, r := range rows {
		tb.AddRow(fmt.Sprint(r.Searchers), ms(r.Blocking), ms(r.Adaptive),
			fmt.Sprintf("%.1f%%", r.ImprovementPct))
	}
	return tb
}

// RenderSOR renders the massively-parallel SOR comparison.
func RenderSOR(rows []SORRow) *metrics.Table {
	tb := metrics.NewTable("SOR (massively parallel): blocking vs. adaptive residual lock",
		"workers", "blocking (ms)", "adaptive (ms)", "improvement", "sweeps")
	for _, r := range rows {
		tb.AddRow(fmt.Sprint(r.Workers), ms(r.Blocking), ms(r.Adaptive),
			fmt.Sprintf("%.1f%%", r.ImprovementPct), fmt.Sprint(r.Sweeps))
	}
	return tb
}

// RenderBarriers renders the adaptive-barrier comparison.
func RenderBarriers(rows []BarrierRow) *metrics.Table {
	tb := metrics.NewTable("Adaptive barrier on SOR: waiting policy vs. scheduling regime",
		"Regime", "spin barrier (ms)", "sleep barrier (ms)", "adaptive barrier (ms)")
	for _, r := range rows {
		tb.AddRow(r.Regime, ms(r.Spin), ms(r.Sleep), ms(r.Adaptive))
	}
	return tb
}
