package experiments

import (
	"repro/internal/core"
	"repro/internal/locks"
)

// waitingDecision builds a waiting-policy reconfiguration decision (set
// spin-time).
func waitingDecision(spins int64) core.Decision {
	return core.Decision{Attr: locks.AttrSpinTime, Value: spins}
}

// schedulerDecision builds a scheduler reconfiguration decision.
func schedulerDecision(variant string) core.Decision {
	return core.Decision{Method: locks.MethodScheduler, Variant: variant}
}
