package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/cthreads"
	"repro/internal/locks"
	"repro/internal/sim"
	"repro/internal/workload"
)

// SchedRow is one scheduler's completion time on the client-server
// workload ([MS93] via §2: priority best, FCFS worst).
type SchedRow struct {
	Scheduler string
	Elapsed   sim.Time
	// MeanResponse is the average request latency — the figure of merit
	// for a client-server program: a scheduler that starves the server of
	// the lock lets the backlog and every response time grow.
	MeanResponse sim.Time
	QueuePeak    int
}

// SchedulerComparison runs the client-server workload under each lock
// scheduler variant, fanning the independent runs out over up to jobs
// workers (results stay in input order).
func SchedulerComparison(machine sim.Config, jobs int) ([]SchedRow, error) {
	// The fourth mode is this reproduction's §7 future-work configuration:
	// the lock adapts its own scheduler (FCFS → priority) as the queue
	// builds.
	scheds := []string{locks.SchedFCFS, locks.SchedPriority, locks.SchedHandoff, workload.SchedAdaptive}
	return sweep(sweepJobs(jobs, false), len(scheds), func(i int) (SchedRow, error) {
		sched := scheds[i]
		res, err := workload.RunClientServer(workload.ClientServerConfig{
			Clients:     8,
			Requests:    25,
			ServiceTime: 10 * sim.Microsecond,
			ThinkTime:   20 * sim.Microsecond,
			Scheduler:   sched,
			Machine:     machine,
		})
		if err != nil {
			return SchedRow{}, fmt.Errorf("scheduler %s: %w", sched, err)
		}
		return SchedRow{Scheduler: sched, Elapsed: res.Elapsed, MeanResponse: res.MeanResponse, QueuePeak: res.QueuePeak}, nil
	})
}

// CrossoverRow compares pure spin and pure blocking at one level of
// multiprogramming ([MS93] §2: spin wins at 1 thread/processor, blocking
// wins beyond).
type CrossoverRow struct {
	ThreadsPerProc int
	Spin           sim.Time
	Block          sim.Time
}

// SpinVsBlockCrossover sweeps threads-per-processor for the two pure
// waiting policies on up to jobs workers.
func SpinVsBlockCrossover(machine sim.Config, jobs int) ([]CrossoverRow, error) {
	const procs = 4
	if machine.Quantum == 0 {
		machine.Quantum = 500 * sim.Microsecond
	}
	return sweep(sweepJobs(jobs, false), 4, func(i int) (CrossoverRow, error) {
		tpp := i + 1
		cfg := workload.CSConfig{
			Procs:     procs,
			Threads:   procs * tpp,
			Iters:     20,
			CSLength:  100 * sim.Microsecond,
			LocalWork: 300 * sim.Microsecond,
			Jitter:    50 * sim.Microsecond,
			Machine:   machine,
		}
		spin, err := workload.RunCS(cfg, workload.SpinStrategy())
		if err != nil {
			return CrossoverRow{}, fmt.Errorf("crossover spin tpp=%d: %w", tpp, err)
		}
		block, err := workload.RunCS(cfg, workload.BlockStrategy())
		if err != nil {
			return CrossoverRow{}, fmt.Errorf("crossover block tpp=%d: %w", tpp, err)
		}
		return CrossoverRow{ThreadsPerProc: tpp, Spin: spin.Elapsed, Block: block.Elapsed}, nil
	})
}

// AblationRow is the adaptive lock's performance on a contended workload
// for one (Waiting-Threshold, n) pair — the constants the paper leaves to
// future work.
type AblationRow struct {
	WaitingThreshold int64
	Step             int64
	Elapsed          sim.Time
}

// PolicyAblation sweeps the SimpleAdapt constants on a mixed-contention
// workload; the (threshold × step) grid fans out over up to jobs workers.
func PolicyAblation(machine sim.Config, jobs int) ([]AblationRow, error) {
	if machine.Quantum == 0 {
		machine.Quantum = 500 * sim.Microsecond
	}
	thresholds := []int64{1, 3, 6}
	steps := []int64{5, 10, 25}
	return sweep(sweepJobs(jobs, false), len(thresholds)*len(steps), func(i int) (AblationRow, error) {
		threshold := thresholds[i/len(steps)]
		step := steps[i%len(steps)]
		res, err := workload.RunCS(workload.CSConfig{
			Procs:     4,
			Threads:   12,
			Iters:     20,
			CSLength:  80 * sim.Microsecond,
			LocalWork: 250 * sim.Microsecond,
			Jitter:    40 * sim.Microsecond,
			Machine:   machine,
		}, adaptiveStrategy(threshold, step))
		if err != nil {
			return AblationRow{}, fmt.Errorf("ablation t=%d n=%d: %w", threshold, step, err)
		}
		return AblationRow{WaitingThreshold: threshold, Step: step, Elapsed: res.Elapsed}, nil
	})
}

// AdvisoryRow is one waiting strategy's execution time on the
// variable-length critical-section workload ([MS93] via §2: "a speculative
// or advisory lock performs well for variable length critical sections").
type AdvisoryRow struct {
	Strategy string
	Elapsed  sim.Time
	Blocks   uint64
	Spins    uint64
}

// AdvisoryComparison runs a workload whose critical sections are short
// (10µs) 90% of the time and long (2ms) 10% of the time, under pure spin,
// pure blocking, a 10-spin combined lock, and the advisory lock whose
// owner publishes its expected hold time.
func AdvisoryComparison(machine sim.Config, jobs int) ([]AdvisoryRow, error) {
	if machine.Quantum == 0 {
		machine.Quantum = 500 * sim.Microsecond
	}
	cfg := workload.CSConfig{
		Procs:     8,
		Threads:   24,
		Iters:     25,
		CSLength:  10 * sim.Microsecond,
		LongCS:    2 * sim.Millisecond,
		LongFrac:  0.1,
		LocalWork: 400 * sim.Microsecond,
		Jitter:    100 * sim.Microsecond,
		Machine:   machine,
	}
	strategies := []workload.Strategy{
		workload.SpinStrategy(),
		workload.BlockStrategy(),
		workload.CombinedStrategy(10),
		workload.AdvisoryStrategy(),
	}
	return sweep(sweepJobs(jobs, false), len(strategies), func(i int) (AdvisoryRow, error) {
		s := strategies[i]
		res, err := workload.RunCS(cfg, s)
		if err != nil {
			return AdvisoryRow{}, fmt.Errorf("advisory %s: %w", s.Name, err)
		}
		return AdvisoryRow{
			Strategy: s.Name,
			Elapsed:  res.Elapsed,
			Blocks:   res.Stats.Blocks,
			Spins:    res.Stats.SpinIters,
		}, nil
	})
}

// RetargetRow compares the centralized test-and-set spin lock with the
// distributed local-spin (MCS-style) queue lock at one contention level.
type RetargetRow struct {
	Threads    int
	RemoteSpin sim.Time // TAS spin lock, everyone spinning on one word
	LocalSpin  sim.Time // MCS-style queue lock, local spinning
	// HotSpotDelay is the total module-queuing delay at the lock's home
	// node under the TAS lock — the switch hot spot itself.
	HotSpotDelay sim.Time
}

// LockRetargeting reproduces the §2 implementation-retargeting result:
// on a machine whose memory modules serialize accesses
// (sim.HotSpotConfig), a centralized spin lock's waiters flood the lock
// word's module and delay the release they wait for, while the
// distributed (local-spin) representation keeps the module quiet. Sweeps
// the number of contending processors.
func LockRetargeting(machine sim.Config, jobs int) ([]RetargetRow, error) {
	if machine.ModuleService == 0 {
		machine = sim.HotSpotConfig()
	}
	counts := []int{2, 4, 8, 16}
	return sweep(sweepJobs(jobs, false), len(counts), func(i int) (RetargetRow, error) {
		threads := counts[i]
		m := machine
		if m.Nodes < threads {
			m.Nodes = threads
		}
		run := func(mk func(sys *cthreads.System) locks.Lock) (sim.Time, sim.Time, error) {
			sys := cthreads.New(m)
			l := mk(sys)
			for i := 0; i < threads; i++ {
				sys.Fork(i, fmt.Sprintf("w%d", i), func(t *cthreads.Thread) {
					for j := 0; j < 20; j++ {
						l.Lock(t)
						t.Advance(20 * sim.Microsecond)
						l.Unlock(t)
						t.Advance(20 * sim.Microsecond)
					}
				})
			}
			if err := sys.Run(); err != nil {
				return 0, 0, err
			}
			return sys.Now(), sys.Machine().ModuleQueueDelay(0), nil
		}
		remote, hot, err := run(func(sys *cthreads.System) locks.Lock {
			return locks.NewSpinLock(sys, 0, "tas-spin", locks.DefaultCosts())
		})
		if err != nil {
			return RetargetRow{}, fmt.Errorf("retarget tas threads=%d: %w", threads, err)
		}
		local, _, err := run(func(sys *cthreads.System) locks.Lock {
			return locks.NewLocalSpinLock(sys, 0, "local-spin", locks.DefaultCosts())
		})
		if err != nil {
			return RetargetRow{}, fmt.Errorf("retarget mcs threads=%d: %w", threads, err)
		}
		return RetargetRow{Threads: threads, RemoteSpin: remote, LocalSpin: local, HotSpotDelay: hot}, nil
	})
}

// adaptiveStrategy builds an adaptive-lock strategy with explicit
// SimpleAdapt constants.
func adaptiveStrategy(threshold, step int64) workload.Strategy {
	return workload.Strategy{
		Name: fmt.Sprintf("adaptive(t=%d,n=%d)", threshold, step),
		Make: func(sys *cthreads.System, node int, costs locks.Costs) locks.Lock {
			return locks.NewAdaptiveLock(sys, node, "adaptive", costs, core.SimpleAdapt{
				SpinAttr:         locks.AttrSpinTime,
				WaitingThreshold: threshold,
				Step:             step,
				MaxSpin:          1000,
			})
		},
	}
}
