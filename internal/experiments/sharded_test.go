package experiments

import (
	"strings"
	"testing"

	"repro/internal/sim"
)

func shardedTestOptions() ShardedScalingOptions {
	return ShardedScalingOptions{
		Machine: sim.Config{Nodes: 16, Seed: 7},
		Rounds:  3,
	}
}

// TestShardedSweepDeterminism renders the sharded-scaling experiment
// across the full jobs × workers grid and demands byte-identical
// output: neither the sweep fan-out (host goroutines running different
// shard counts concurrently) nor the per-run worker pool (host
// goroutines advancing shards of one run concurrently) may leak into
// results. This is the experiments-level face of the engine's
// determinism contract.
func TestShardedSweepDeterminism(t *testing.T) {
	var want string
	for _, jobs := range []int{1, 4, 8} {
		for _, workers := range []int{1, 2, 4} {
			opts := shardedTestOptions()
			opts.Jobs = jobs
			opts.Workers = workers
			rows, err := ShardedScaling(opts)
			if err != nil {
				t.Fatalf("jobs=%d workers=%d: %v", jobs, workers, err)
			}
			got := RenderShardedScaling(rows)
			if want == "" {
				want = got
				continue
			}
			if got != want {
				t.Fatalf("jobs=%d workers=%d rendered differently:\n--- first\n%s--- got\n%s",
					jobs, workers, want, got)
			}
		}
	}
	if want == "" {
		t.Fatal("no output produced")
	}
}

// TestShardedScalingInvariants checks the row-level contract directly:
// the grid covers shards 1,2,4,8; virtual time, busy time, wakeups,
// preemptions, and the result checksum are identical in every row; the
// serial row has zero cross-shard messages while every sharded row has
// real traffic.
func TestShardedScalingInvariants(t *testing.T) {
	rows, err := ShardedScaling(shardedTestOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("want rows for shards 1,2,4,8, got %d rows", len(rows))
	}
	for i, r := range rows {
		if want := 1 << i; r.Shards != want {
			t.Errorf("row %d: shards = %d, want %d", i, r.Shards, want)
		}
		if r.SimTime != rows[0].SimTime || r.Busy != rows[0].Busy ||
			r.Wakeups != rows[0].Wakeups || r.Preempt != rows[0].Preempt ||
			r.Checksum != rows[0].Checksum {
			t.Errorf("row %d (%d shards) diverged from serial: %+v vs %+v",
				i, r.Shards, r, rows[0])
		}
	}
	if rows[0].CrossMsgs != 0 {
		t.Errorf("serial row reports %d cross-shard messages, want 0", rows[0].CrossMsgs)
	}
	for _, r := range rows[1:] {
		if r.CrossMsgs == 0 {
			t.Errorf("%d shards: no cross-shard messages — windows never engaged", r.Shards)
		}
	}
	out := RenderShardedScaling(rows)
	if !strings.Contains(out, "cross-msgs") || !strings.Contains(out, "checksum") {
		t.Errorf("render missing headers:\n%s", out)
	}
}
