package experiments

import (
	"fmt"

	"repro/internal/locks"
	"repro/internal/sim"
	"repro/internal/workload"
)

// PlatformRow reports, for one machine preset, the remote lock-operation
// cost of the spin and blocking locks and the elapsed time of a contended
// multiprogrammed workload under each waiting policy.
type PlatformRow struct {
	Platform      string
	SpinOpRemote  sim.Time
	BlockOpRemote sim.Time
	SpinElapsed   sim.Time
	BlockElapsed  sim.Time
	SpinOverBlock float64
}

// PlatformRetargeting reproduces §2's point about re-targeting lock
// objects across architectural platforms (UMA → NUMA → NORMA): as the
// remote-reference penalty grows, busy-waiting on a remote word gets
// relatively worse, shifting the preferred waiting policy toward
// sleeping. Rows are ordered UMA, GP1000 (NUMA), NORMA. The presets are
// independent machines; they fan out over up to jobs workers.
func PlatformRetargeting(jobs int) ([]PlatformRow, error) {
	presets := []struct {
		name string
		cfg  sim.Config
	}{
		{"UMA", sim.UMAConfig()},
		{"GP1000 (NUMA)", sim.GP1000Config()},
		{"NORMA-like", sim.NORMAConfig()},
	}
	return sweep(sweepJobs(jobs, false), len(presets), func(i int) (PlatformRow, error) {
		p := presets[i]
		opts := Options{Machine: p.cfg}
		spinOp, err := measureOp(opts.withDefaults(), locks.KindSpin, 1, "lock")
		if err != nil {
			return PlatformRow{}, fmt.Errorf("platform %s spin op: %w", p.name, err)
		}
		blockOp, err := measureOp(opts.withDefaults(), locks.KindBlocking, 1, "lock")
		if err != nil {
			return PlatformRow{}, fmt.Errorf("platform %s blocking op: %w", p.name, err)
		}

		m := p.cfg
		m.Quantum = 500 * sim.Microsecond
		cfg := workload.CSConfig{
			Procs: 4, Threads: 8, Iters: 20,
			CSLength: 60 * sim.Microsecond, LocalWork: 200 * sim.Microsecond,
			Jitter:  30 * sim.Microsecond,
			Machine: m,
		}
		spin, err := workload.RunCS(cfg, workload.SpinStrategy())
		if err != nil {
			return PlatformRow{}, fmt.Errorf("platform %s spin workload: %w", p.name, err)
		}
		block, err := workload.RunCS(cfg, workload.BlockStrategy())
		if err != nil {
			return PlatformRow{}, fmt.Errorf("platform %s block workload: %w", p.name, err)
		}
		return PlatformRow{
			Platform:      p.name,
			SpinOpRemote:  spinOp,
			BlockOpRemote: blockOp,
			SpinElapsed:   spin.Elapsed,
			BlockElapsed:  block.Elapsed,
			SpinOverBlock: float64(spin.Elapsed) / float64(block.Elapsed),
		}, nil
	})
}
