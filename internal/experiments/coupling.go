package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/cthreads"
	"repro/internal/locks"
	"repro/internal/monitor"
	"repro/internal/sim"
	"repro/internal/trace"
)

// CouplingRow is one feedback-loop structure's performance on the
// phase-changing workload.
type CouplingRow struct {
	Mode    string
	Elapsed sim.Time
	// DecisionLag is the mean collection-to-policy delay (0 for the
	// closely-coupled inline monitor, whose samples are consumed in the
	// probing context).
	DecisionLag sim.Time
	// Drops counts trace records lost to ring overflow (loose mode only).
	Drops uint64
}

// couplingWorkload runs the phase-alternating critical-section pattern on
// the given lock: even phases are light (short critical sections, long
// think times — spinning is right), odd phases heavy (the reverse —
// sleeping is right). probe, when non-nil, is invoked after every other
// unlock, mirroring the adaptive lock's built-in sampling rate.
func couplingWorkload(sys *cthreads.System, l locks.Lock, procs int,
	probe func(t *cthreads.Thread)) *sim.Time {
	var finished sim.Time
	// Two threads per processor under preemptive timeslicing: in heavy
	// phases sleeping frees the processor for the co-located thread, in
	// light phases spinning avoids wakeup costs — so the policy's timing
	// matters.
	for i := 0; i < 2*procs; i++ {
		sys.Fork(i%procs, fmt.Sprintf("w%d", i), func(t *cthreads.Thread) {
			n := 0
			for phase := 0; phase < 6; phase++ {
				cs, think := 5*sim.Microsecond, 300*sim.Microsecond
				if phase%2 == 1 {
					cs, think = 200*sim.Microsecond, 30*sim.Microsecond
				}
				for j := 0; j < 12; j++ {
					l.Lock(t)
					t.Advance(cs)
					l.Unlock(t)
					n++
					if probe != nil && n%2 == 0 {
						probe(t)
					}
					t.Advance(think)
				}
			}
			if t.Now() > finished {
				finished = t.Now()
			}
		})
	}
	return &finished
}

// CouplingComparison quantifies §3's feedback-loop coupling trade-off: the
// same SimpleAdapt policy drives the same lock on the same workload, once
// through the closely-coupled built-in monitor (the adaptive lock) and
// once through the general-purpose thread monitor of [GS93] — application
// threads deliver trace records to a monitor thread on a dedicated
// processor, which runs the policy on each record as it is processed.
//
// The measured difference is the *decision lag*: the inline loop reacts
// within the unlock that sampled the state, while the monitor-thread loop
// reacts a poll period (or more, under monitor load — see the ring-drop
// counter) after collection. On this workload the two perform comparably
// end to end because its phases are long relative to the lag; the paper's
// point — and what this experiment makes measurable — is that the loose
// loop's reaction time is bounded below by the trace pipeline, so it
// cannot track faster locking-pattern changes, while the inline loop's
// lag is structurally zero.
func CouplingComparison(machine sim.Config) ([]CouplingRow, error) {
	return CouplingComparisonTraced(machine, nil)
}

// CouplingComparisonTraced is CouplingComparison with an optional tracer
// attached to both systems. The two runs are sequential, so their events
// share one virtual timeline restarting at zero; AdaptationLag separates
// them by lock name ("tight" vs "loose"). In the loose run the monitor
// thread emits a KindSample carrying the record's *collection* time just
// before running the policy, so the trace-derived lag is the §5.1
// trace-pipeline delay; the tight lock's inline samples carry the
// consumption time and its lag is structurally near zero.
func CouplingComparisonTraced(machine sim.Config, tr *trace.Tracer) ([]CouplingRow, error) {
	const procs = 8
	if machine.Quantum == 0 {
		machine.Quantum = 500 * sim.Microsecond
	}
	policy := core.SimpleAdapt{SpinAttr: locks.AttrSpinTime, WaitingThreshold: 2, Step: 10, MaxSpin: 1000}

	// Closely coupled: the adaptive lock's built-in monitor.
	tight := machine
	if tight.Nodes < procs {
		tight.Nodes = procs
	}
	tightSys := cthreads.New(tight)
	tightSys.SetTracer(tr)
	tightLock := locks.NewAdaptiveLock(tightSys, 0, "tight", locks.DefaultCosts(), policy)
	tightDone := couplingWorkload(tightSys, tightLock, procs, nil)
	if err := tightSys.Run(); err != nil {
		return nil, fmt.Errorf("coupling tight: %w", err)
	}

	// Loosely coupled: a reconfigurable lock adapted by a monitor thread
	// on a dedicated ninth processor.
	loose := machine
	if loose.Nodes < procs+1 {
		loose.Nodes = procs + 1
	}
	looseSys := cthreads.New(loose)
	looseSys.SetTracer(tr)
	looseLock := locks.NewReconfigurableLock(looseSys, 0, "loose", locks.DefaultCosts(), locks.DefaultInitialSpins)
	// The general-purpose monitor is built for trace collection, not
	// control: it batches records and polls at millisecond granularity
	// (and forwards batches toward the central monitor), so decisions
	// reach the lock a phase late.
	mon := monitor.NewLocal(looseSys, monitor.Config{
		Node:                procs,
		Poll:                2 * sim.Millisecond,
		BufferCap:           64,
		CentralForwardSteps: 400,
	})
	mon.Subscribe(func(mt *cthreads.Thread, r monitor.Record) {
		if str := looseSys.Tracer(); str != nil {
			// The sample enters the policy now, but was collected at r.At:
			// the A field carries collection time so AdaptationLag reports
			// the pipeline's decision lag.
			str.Emit(trace.Event{At: mt.Now(), Kind: trace.KindSample,
				Proc: int32(mt.Node()), Thread: int32(mt.ID()),
				Name: "loose", A: int64(r.At), B: r.Value})
		}
		sample := core.Sample{Sensor: locks.SensorWaiting, Value: r.Value}
		for _, d := range policy.React(sample, looseLock.Object()) {
			// The monitor thread enacts the reconfiguration, paying the
			// configure(waiting policy) cost remotely.
			_ = looseLock.ConfigureBy(mt, d, core.OwnerSelf)
		}
	})
	mon.Start()
	looseDone := couplingWorkload(looseSys, looseLock, procs, func(t *cthreads.Thread) {
		mon.Probe(t, 0, int64(looseLock.Waiting()))
	})
	// Stop the monitor when the last worker finishes: a tiny supervisor
	// joins them all. Workers are threads 1..procs in fork order after
	// the monitor (index 0).
	workers := looseSys.Threads()[1:]
	looseSys.Fork(0, "supervisor", func(t *cthreads.Thread) {
		for _, w := range workers {
			t.Join(w)
		}
		mon.RequestStop()
	})
	if err := looseSys.Run(); err != nil {
		return nil, fmt.Errorf("coupling loose: %w", err)
	}

	st := mon.Stats()
	return []CouplingRow{
		{Mode: "closely-coupled (inline)", Elapsed: *tightDone},
		{Mode: "loosely-coupled (monitor thread)", Elapsed: *looseDone, DecisionLag: st.MeanLag, Drops: st.Drops},
	}, nil
}
