package experiments

import (
	"strings"
	"testing"

	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/tsp"
)

func TestRenderLockOpTable(t *testing.T) {
	out := RenderLockOpTable("Table 4", []LockOpRow{
		{Kind: "atomior", Local: 30700, Remote: 32500},
	}).String()
	for _, want := range []string{"Table 4", "atomior", "30.70", "32.50"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestRenderTable8NegativeRemote(t *testing.T) {
	out := RenderTable8([]ConfigOpRow{
		{Op: "monitor (one state variable)", Local: 65600, Remote: -1},
	}).String()
	if !strings.Contains(out, "-") {
		t.Errorf("missing '-' for absent remote measurement:\n%s", out)
	}
}

func TestRenderTSPRowWithAndWithoutSequential(t *testing.T) {
	with := RenderTSPRow(TSPRow{
		Org:        tsp.OrgCentralized,
		Sequential: 20666 * sim.Millisecond,
		Blocking:   3207 * sim.Millisecond,
		Adaptive:   2636 * sim.Millisecond,

		ImprovementPct: 17.8,
	}).String()
	for _, want := range []string{"Table 1", "20666", "3207", "2636", "17.8%"} {
		if !strings.Contains(with, want) {
			t.Errorf("render missing %q:\n%s", want, with)
		}
	}
	without := RenderTSPRow(TSPRow{Org: tsp.OrgDistributed, Blocking: 2973 * sim.Millisecond, Adaptive: 2596 * sim.Millisecond, ImprovementPct: 12.7}).String()
	if strings.Contains(without, "Sequential") {
		t.Errorf("distributed table should have no sequential column:\n%s", without)
	}
	if !strings.Contains(without, "Table 2") {
		t.Errorf("wrong title:\n%s", without)
	}
	lb := RenderTSPRow(TSPRow{Org: tsp.OrgDistributedLB}).String()
	if !strings.Contains(lb, "Table 3") {
		t.Errorf("wrong LB title:\n%s", lb)
	}
}

func TestRenderPattern(t *testing.T) {
	s := metrics.NewSeries("qlock")
	for i := 0; i < 20; i++ {
		s.Add(sim.Time(i*100), int64(i%5))
	}
	out := RenderPattern(PatternFigure{Figure: 4, Org: tsp.OrgCentralized, Lock: "qlock", Series: s}, 16)
	for _, want := range []string{"Figure 4", "qlock", "centralized", "requests=20"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestRenderFigure1(t *testing.T) {
	out := RenderFigure1([]Figure1Row{{
		CSLength: 10 * sim.Microsecond,
		Elapsed: map[string]sim.Time{
			"pure-spin": 86 * sim.Millisecond, "pure-block": 60 * sim.Millisecond,
			"combined-1": 56 * sim.Millisecond, "combined-10": 51 * sim.Millisecond,
			"combined-50": 54 * sim.Millisecond,
		},
	}}).String()
	for _, want := range []string{"Figure 1", "10.00µs", "86", "51"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestRenderExtensionsTables(t *testing.T) {
	outs := []string{
		RenderSchedulerComparison([]SchedRow{{Scheduler: "fcfs", Elapsed: 55 * sim.Millisecond, MeanResponse: 24051 * sim.Microsecond, QueuePeak: 176}}).String(),
		RenderCrossover([]CrossoverRow{{ThreadsPerProc: 1, Spin: 13 * sim.Millisecond, Block: 22 * sim.Millisecond}, {ThreadsPerProc: 4, Spin: 152 * sim.Millisecond, Block: 76 * sim.Millisecond}}).String(),
		RenderAdvisory([]AdvisoryRow{{Strategy: "advisory", Elapsed: 184 * sim.Millisecond, Blocks: 529, Spins: 12927}}).String(),
		RenderAblation([]AblationRow{{WaitingThreshold: 6, Step: 25, Elapsed: 53 * sim.Millisecond}}).String(),
		RenderRetargeting([]RetargetRow{{Threads: 16, RemoteSpin: 10 * sim.Millisecond, LocalSpin: 9 * sim.Millisecond, HotSpotDelay: 43 * sim.Millisecond}}).String(),
		RenderPlatforms([]PlatformRow{{Platform: "UMA", SpinOpRemote: 37700, BlockOpRemote: 86700, SpinElapsed: 27 * sim.Millisecond, BlockElapsed: 35 * sim.Millisecond, SpinOverBlock: 0.79}}).String(),
		RenderCoupling([]CouplingRow{{Mode: "closely-coupled (inline)", Elapsed: 281 * sim.Millisecond}}).String(),
		RenderScaling([]ScalingRow{{Searchers: 16, Blocking: 548 * sim.Millisecond, Adaptive: 299 * sim.Millisecond, ImprovementPct: 45.4}}).String(),
		RenderSOR([]SORRow{{Workers: 24, Blocking: 2924 * sim.Millisecond, Adaptive: 1875 * sim.Millisecond, ImprovementPct: 35.9, Sweeps: 502}}).String(),
		RenderBarriers([]BarrierRow{{Regime: "2 workers/processor", Spin: 339 * sim.Millisecond, Sleep: 353 * sim.Millisecond, Adaptive: 294 * sim.Millisecond}}).String(),
		RenderMutableCalibration([]CalibRow{{Waiters: 8, Spin: 12, SpinBlock: 3, Block: 191, Cold: 7, MeanPredicted: 450 * sim.Microsecond, MeanActual: 1408 * sim.Microsecond, MeanAbsErr: 983 * sim.Microsecond}}).String(),
		RenderCohortNUMA([]CohortRow{{Nodes: 8, PerNode: 3, Spin: 28 * sim.Millisecond, MCS: 33 * sim.Millisecond, Cohort: 58 * sim.Millisecond, SpinRemote: 358, MCSRemote: 352, CohortRemote: 65, LocalHandoffs: 262}}).String(),
	}
	wants := [][]string{
		{"fcfs", "176"},
		{"winner", "spin", "block"},
		{"advisory", "529"},
		{"Waiting-Threshold", "53"},
		{"hot-spot", "16"},
		{"UMA", "0.79"},
		{"closely-coupled", "281"},
		{"16", "45.4%"},
		{"24", "35.9%", "502"},
		{"2 workers/processor", "294"},
		{"waiters", "191", "1408.00"},
		{"8×3", "358", "65", "262"},
	}
	for i, out := range outs {
		for _, w := range wants[i] {
			if !strings.Contains(out, w) {
				t.Errorf("render %d missing %q:\n%s", i, w, out)
			}
		}
	}
}
