package experiments

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// sweep runs fn(0..n-1) — one fully independent simulation configuration
// per index — on up to jobs OS-level workers and returns the results in
// input order, so output is byte-identical to the serial path regardless
// of worker count. Each configuration must build its own Engine and RNG
// (every experiment in this package does); nothing else is shared, so the
// virtual timelines cannot interleave.
//
// jobs <= 1 runs serially in the caller's goroutine, preserving the exact
// pre-parallel behaviour (including early stop at the first error). With
// jobs > 1, workers are capped at min(jobs, GOMAXPROCS, n); on error the
// remaining indices are cancelled and the error of the lowest index is
// returned, matching what a serial run would have surfaced. A panic in any
// configuration is re-raised in the caller.
func sweep[T any](jobs, n int, fn func(i int) (T, error)) ([]T, error) {
	if n <= 0 {
		return nil, nil
	}
	if jobs <= 1 || n == 1 {
		out := make([]T, 0, n)
		for i := 0; i < n; i++ {
			v, err := fn(i)
			if err != nil {
				return nil, err
			}
			out = append(out, v)
		}
		return out, nil
	}

	workers := jobs
	if max := runtime.GOMAXPROCS(0); workers > max {
		workers = max
	}
	if workers > n {
		workers = n
	}

	results := make([]T, n)
	errs := make([]error, n)
	var (
		next     atomic.Int64
		failed   atomic.Bool
		panicked atomic.Pointer[any]
		wg       sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n || failed.Load() || panicked.Load() != nil {
					return
				}
				func() {
					defer func() {
						if r := recover(); r != nil {
							panicked.CompareAndSwap(nil, &r)
						}
					}()
					results[i], errs[i] = fn(i)
					if errs[i] != nil {
						failed.Store(true)
					}
				}()
			}
		}()
	}
	wg.Wait()
	if p := panicked.Load(); p != nil {
		panic(*p)
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return results, nil
}

// sweepJobs normalizes a Jobs option: 0 (the zero value) and 1 mean
// serial; anything above fans out. When a shared tracer is attached the
// caller must force serial execution — a tracer records one virtual
// timeline, and concurrent simulations would interleave theirs
// nondeterministically — which is what tracedSerial expresses.
func sweepJobs(jobs int, tracedSerial bool) int {
	if tracedSerial {
		return 1
	}
	if jobs < 1 {
		return 1
	}
	return jobs
}
