package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/locks"
	"repro/internal/metrics"
	"repro/internal/profile"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/tsp"
)

// TSPOptions configures the Tables 1–3 / Figures 4–9 experiments.
type TSPOptions struct {
	// Instance, when non-nil, overrides the generated instance (e.g. one
	// parsed from a TSPLIB file).
	Instance *tsp.Instance
	// Cities is the problem size (the paper used 32; the default here is
	// 16 Euclidean cities, which yields a search tree of comparable
	// relative depth at tractable simulation cost).
	Cities int
	Seed   uint64
	// Uniform switches from Euclidean to uniform random instances (much
	// easier for LMSK; mainly for tests).
	Uniform bool
	// Searchers is the number of searcher threads / processors (paper: 10).
	Searchers int
	Machine   sim.Config
	// StepsPerWorkUnit scales node-expansion cost relative to lock costs.
	StepsPerWorkUnit int
	// RecordPatterns collects the waiting-thread series (Figures 4–9).
	RecordPatterns bool
	// Tracer, when non-nil, records the *adaptive* solve of each
	// comparison (the run whose feedback loop produces reconfiguration
	// events; attaching one tracer to both runs would interleave two
	// virtual timelines).
	Tracer *trace.Tracer
	// Profiler and Ledger attach to the adaptive solve like Tracer: the
	// attribution profile and the decision ledger describe the run whose
	// feedback loop actually adapts.
	Profiler *profile.Profiler
	Ledger   *core.Ledger
	// Jobs fans independent solves (the per-lock runs of a comparison, the
	// organizations of LockPatterns, the machine sizes of
	// ScalingComparison) out over up to Jobs workers. 0 or 1 is serial.
	// Sweeps whose every element would share the Tracer run serially.
	Jobs int
}

func (o TSPOptions) withDefaults() TSPOptions {
	if o.Cities == 0 {
		o.Cities = 16
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Searchers == 0 {
		o.Searchers = 10
	}
	if o.StepsPerWorkUnit == 0 {
		// A 16-city expansion is ~770 work units; at 60 steps each this is
		// ~11ms of computation per expansion against lock operations of
		// 40–90µs — the same work:lock ratio regime as the paper's
		// 32-city runs on the GP1000 (expansions of milliseconds against
		// tens-of-microsecond locks), where the centralized qlock is
		// heavily contended but not saturated.
		o.StepsPerWorkUnit = 60
	}
	return o
}

// instance builds the configured TSP instance.
func (o TSPOptions) instance() *tsp.Instance {
	if o.Instance != nil {
		return o.Instance
	}
	if o.Uniform {
		return tsp.NewRandomInstance(o.Cities, o.Seed)
	}
	return tsp.NewEuclideanInstance(o.Cities, o.Seed)
}

// TSPRow is one of Tables 1–3: one parallel organization, solved with
// blocking locks and with adaptive locks (plus the sequential baseline for
// the centralized table, as in the paper's Table 1).
type TSPRow struct {
	Org        tsp.Organization
	Sequential sim.Time // 0 unless measured
	Blocking   sim.Time
	Adaptive   sim.Time
	// ImprovementPct is the adaptive lock's gain over blocking.
	ImprovementPct float64
	// Speedup is sequential / blocking (Table 1's 6.5× claim); 0 when the
	// sequential baseline was not run.
	Speedup float64

	BlockingRes tsp.Result
	AdaptiveRes tsp.Result
}

// TSPComparison reproduces one of Tables 1–3: it solves the instance with
// blocking locks and with adaptive locks under the given organization, and
// (for the centralized organization, like the paper's Table 1) also runs
// the sequential baseline.
func TSPComparison(org tsp.Organization, opts TSPOptions) (TSPRow, error) {
	opts = opts.withDefaults()
	in := opts.instance()
	run := func(kind locks.Kind) (tsp.Result, error) {
		cfg := tsp.Config{
			Instance:         in,
			Searchers:        opts.Searchers,
			Org:              org,
			LockKind:         kind,
			Machine:          opts.Machine,
			StepsPerWorkUnit: opts.StepsPerWorkUnit,
			RecordPatterns:   opts.RecordPatterns,
		}
		if kind == locks.KindAdaptive {
			cfg.Tracer = opts.Tracer
			cfg.Profiler = opts.Profiler
			cfg.Ledger = opts.Ledger
		}
		return tsp.Solve(cfg)
	}
	row := TSPRow{Org: org}
	// The per-lock solves (and, for the centralized organization, the
	// sequential baseline) are fully independent simulations on separate
	// engines; fan them out. The observers (tracer, profiler, ledger)
	// attach only to the adaptive run, so a shared collector never sees
	// interleaved timelines.
	runs := []struct {
		name  string
		solve func() (tsp.Result, error)
	}{
		{"blocking", func() (tsp.Result, error) { return run(locks.KindBlocking) }},
		{"adaptive", func() (tsp.Result, error) { return run(locks.KindAdaptive) }},
	}
	if org == tsp.OrgCentralized {
		runs = append(runs, struct {
			name  string
			solve func() (tsp.Result, error)
		}{"sequential", func() (tsp.Result, error) {
			return tsp.SolveSequentialSim(in, opts.Machine, opts.StepsPerWorkUnit, 0)
		}})
	}
	results, err := sweep(sweepJobs(opts.Jobs, false), len(runs), func(i int) (tsp.Result, error) {
		res, err := runs[i].solve()
		if err != nil {
			return res, fmt.Errorf("tsp %s %s: %w", org, runs[i].name, err)
		}
		return res, nil
	})
	if err != nil {
		return row, err
	}
	row.BlockingRes, row.AdaptiveRes = results[0], results[1]
	if row.BlockingRes.Tour.Cost != row.AdaptiveRes.Tour.Cost {
		return row, fmt.Errorf("tsp %s: blocking found %d, adaptive %d — both must be optimal",
			org, row.BlockingRes.Tour.Cost, row.AdaptiveRes.Tour.Cost)
	}
	row.Blocking = row.BlockingRes.Elapsed
	row.Adaptive = row.AdaptiveRes.Elapsed
	row.ImprovementPct = 100 * float64(row.Blocking-row.Adaptive) / float64(row.Blocking)
	if org == tsp.OrgCentralized {
		seq := results[2]
		if seq.Tour.Cost != row.BlockingRes.Tour.Cost {
			return row, fmt.Errorf("tsp: sequential found %d, parallel %d", seq.Tour.Cost, row.BlockingRes.Tour.Cost)
		}
		row.Sequential = seq.Elapsed
		row.Speedup = float64(row.Sequential) / float64(row.Blocking)
	}
	return row, nil
}

// PatternFigure identifies one of Figures 4–9 by organization and lock.
type PatternFigure struct {
	Figure int
	Org    tsp.Organization
	Lock   string
	Series *metrics.Series
}

// LockPatterns reproduces Figures 4–9: the waiting-thread pattern of qlock
// and glob-act-lock for each of the three organizations, measured on the
// blocking-lock runs (patterns are a property of the program structure,
// observed per lock request).
func LockPatterns(opts TSPOptions) ([]PatternFigure, error) {
	opts = opts.withDefaults()
	opts.RecordPatterns = true
	figs := []PatternFigure{
		{Figure: 4, Org: tsp.OrgCentralized, Lock: tsp.LockQueue},
		{Figure: 5, Org: tsp.OrgCentralized, Lock: tsp.LockActive},
		{Figure: 6, Org: tsp.OrgDistributed, Lock: tsp.LockQueue},
		{Figure: 7, Org: tsp.OrgDistributed, Lock: tsp.LockActive},
		{Figure: 8, Org: tsp.OrgDistributedLB, Lock: tsp.LockQueue},
		{Figure: 9, Org: tsp.OrgDistributedLB, Lock: tsp.LockActive},
	}
	in := opts.instance()
	orgs := []tsp.Organization{tsp.OrgCentralized, tsp.OrgDistributed, tsp.OrgDistributedLB}
	solved, err := sweep(sweepJobs(opts.Jobs, false), len(orgs), func(i int) (tsp.Result, error) {
		res, err := tsp.Solve(tsp.Config{
			Instance:         in,
			Searchers:        opts.Searchers,
			Org:              orgs[i],
			LockKind:         locks.KindBlocking,
			Machine:          opts.Machine,
			StepsPerWorkUnit: opts.StepsPerWorkUnit,
			RecordPatterns:   true,
		})
		if err != nil {
			return res, fmt.Errorf("patterns %s: %w", orgs[i], err)
		}
		return res, nil
	})
	if err != nil {
		return nil, err
	}
	byOrg := map[tsp.Organization]tsp.Result{}
	for i, org := range orgs {
		byOrg[org] = solved[i]
	}
	for i := range figs {
		res := byOrg[figs[i].Org]
		s, ok := res.Patterns[figs[i].Lock]
		if !ok || s == nil {
			return nil, fmt.Errorf("patterns: no series for %s in %s", figs[i].Lock, figs[i].Org)
		}
		figs[i].Series = s
	}
	return figs, nil
}

// ScalingRow is the adaptive-over-blocking improvement at one machine
// size.
type ScalingRow struct {
	Searchers      int
	Blocking       sim.Time
	Adaptive       sim.Time
	ImprovementPct float64
}

// ScalingComparison tests the paper's §4 prediction: "For massively
// parallel applications we expect the gain to be even higher because the
// effect of blocking vs. spinning ... is more pronounced." It runs the
// centralized TSP implementation at growing processor counts and reports
// the adaptive lock's improvement at each.
func ScalingComparison(opts TSPOptions, searcherCounts []int) ([]ScalingRow, error) {
	if len(searcherCounts) == 0 {
		searcherCounts = []int{4, 8, 16, 24}
	}
	// Every machine size would attach the same observers to its adaptive
	// run, so an observed sweep must stay serial to keep one coherent
	// timeline.
	observed := opts.Tracer != nil || opts.Profiler != nil || opts.Ledger != nil
	return sweep(sweepJobs(opts.Jobs, observed), len(searcherCounts), func(i int) (ScalingRow, error) {
		o := opts
		o.Searchers = searcherCounts[i]
		row, err := TSPComparison(tsp.OrgCentralized, o)
		if err != nil {
			return ScalingRow{}, fmt.Errorf("scaling %d searchers: %w", o.Searchers, err)
		}
		return ScalingRow{
			Searchers:      o.Searchers,
			Blocking:       row.Blocking,
			Adaptive:       row.Adaptive,
			ImprovementPct: row.ImprovementPct,
		}, nil
	})
}
