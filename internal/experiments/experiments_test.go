package experiments

import (
	"testing"

	"repro/internal/sim"
	"repro/internal/tsp"
)

// The assertions in this file check the *shapes* the paper reports — who
// wins, in what order, with crossovers in the right place — on scaled-down
// workloads. EXPERIMENTS.md records the full-size numbers.

func TestTable4Shape(t *testing.T) {
	rows, err := Table4(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 7 {
		t.Fatalf("Table 4 has %d rows, want 7", len(rows))
	}
	byKind := map[string]LockOpRow{}
	for _, r := range rows {
		byKind[r.Kind] = r
		if r.Remote < r.Local {
			t.Errorf("Table 4 %s: remote (%v) < local (%v)", r.Kind, r.Remote, r.Local)
		}
	}
	// The mutable lock's uncontended acquire is spin-like: nowhere near the
	// blocking lock's. The cohort lock pays for its two-level acquisition
	// but still stays below blocking.
	if !(byKind["mutable lock"].Local < byKind["blocking-lock"].Local) {
		t.Error("Table 4: mutable lock's lock op should stay below blocking")
	}
	if !(byKind["cohort lock"].Local > byKind["spin-lock"].Local) {
		t.Error("Table 4: cohort lock's two-level lock op should cost more than the flat spin lock's")
	}
	// atomior < spin ≤ adaptive ≪ blocking (paper: 30.7 / 40.8 / 40.8 / 88.6).
	if !(byKind["atomior"].Local < byKind["spin-lock"].Local) {
		t.Error("Table 4: atomior not cheaper than spin-lock")
	}
	if !(byKind["spin-lock"].Local < byKind["blocking-lock"].Local) {
		t.Error("Table 4: spin-lock not cheaper than blocking-lock")
	}
	if !(byKind["adaptive lock"].Local < byKind["blocking-lock"].Local/2) {
		t.Error("Table 4: adaptive lock's lock op should be near the spin lock's, far below blocking")
	}
	// The adaptive lock op within ~25% of the spin lock's (paper: equal).
	if a, s := byKind["adaptive lock"].Local, byKind["spin-lock"].Local; a > s+s/4 {
		t.Errorf("Table 4: adaptive (%v) not close to spin (%v)", a, s)
	}
}

func TestTable5Shape(t *testing.T) {
	rows, err := Table5(Options{})
	if err != nil {
		t.Fatal(err)
	}
	byKind := map[string]LockOpRow{}
	for _, r := range rows {
		byKind[r.Kind] = r
		if r.Remote < r.Local {
			t.Errorf("Table 5 %s: remote (%v) < local (%v)", r.Kind, r.Remote, r.Local)
		}
	}
	// spin ≪ adaptive < blocking (paper: 5.0 / 50.1 / 62.3).
	if !(byKind["spin-lock"].Local < byKind["adaptive lock"].Local/4) {
		t.Error("Table 5: spin unlock should be far below adaptive unlock")
	}
	if !(byKind["adaptive lock"].Local < byKind["blocking-lock"].Local) {
		t.Error("Table 5: adaptive unlock not cheaper than blocking unlock")
	}
}

func TestTable6Shape(t *testing.T) {
	rows, err := Table6(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("Table 6 has %d rows, want 3", len(rows))
	}
	spin, backoff, blocking := rows[0], rows[1], rows[2]
	// spin < backoff < blocking, locally and remotely (paper: 45/320/511).
	for _, pair := range []struct {
		a, b CycleRow
	}{{spin, backoff}, {backoff, blocking}} {
		if !(pair.a.Local < pair.b.Local) {
			t.Errorf("Table 6 local: %s (%v) not cheaper than %s (%v)", pair.a.Kind, pair.a.Local, pair.b.Kind, pair.b.Local)
		}
		if !(pair.a.Remote < pair.b.Remote) {
			t.Errorf("Table 6 remote: %s (%v) not cheaper than %s (%v)", pair.a.Kind, pair.a.Remote, pair.b.Kind, pair.b.Remote)
		}
	}
}

func TestTable7Shape(t *testing.T) {
	opts := Options{}
	rows7, err := Table7(opts)
	if err != nil {
		t.Fatal(err)
	}
	rows6, err := Table6(opts)
	if err != nil {
		t.Fatal(err)
	}
	if rows7[0].Kind != "Spin" || rows7[1].Kind != "Blocking" {
		t.Fatalf("Table 7 rows = %v", rows7)
	}
	// Adaptive-as-spin cycle ≪ adaptive-as-blocking cycle (paper: 90/565).
	if !(rows7[0].Local < rows7[1].Local/2) {
		t.Errorf("Table 7: spin config (%v) not far below blocking config (%v)", rows7[0].Local, rows7[1].Local)
	}
	// Configurability costs: each adaptive configuration's cycle exceeds
	// the corresponding static lock's (paper: 90 > 45, 565 > 511).
	if !(rows7[0].Local > rows6[0].Local) {
		t.Errorf("Table 7 spin config (%v) not above static spin (%v)", rows7[0].Local, rows6[0].Local)
	}
	if !(rows7[1].Local > rows6[2].Local) {
		t.Errorf("Table 7 blocking config (%v) not above static blocking (%v)", rows7[1].Local, rows6[2].Local)
	}
}

func TestTable8Shape(t *testing.T) {
	rows, err := Table8(Options{})
	if err != nil {
		t.Fatal(err)
	}
	byOp := map[string]ConfigOpRow{}
	for _, r := range rows {
		byOp[r.Op] = r
	}
	wait := byOp["configure(waiting policy)"]
	sched := byOp["configure(scheduler)"]
	acq := byOp["acquisition"]
	mon := byOp["monitor (one state variable)"]
	// waiting < scheduler < acquisition < monitor (paper: 9.9/12.5/30.8/66.0).
	if !(wait.Local < sched.Local && sched.Local < acq.Local && acq.Local < mon.Local) {
		t.Errorf("Table 8 local ordering broken: wait=%v sched=%v acq=%v mon=%v",
			wait.Local, sched.Local, acq.Local, mon.Local)
	}
	// Scheduler reconfiguration suffers more from remoteness than waiting-
	// policy reconfiguration (5 writes vs 1R1W; paper: +8.3µs vs +4.6µs).
	if !(sched.Remote-sched.Local > wait.Remote-wait.Local) {
		t.Errorf("Table 8: scheduler remote penalty (%v) not above waiting's (%v)",
			sched.Remote-sched.Local, wait.Remote-wait.Local)
	}
	if mon.Remote != -1 {
		t.Errorf("Table 8: monitor row should have no remote measurement, got %v", mon.Remote)
	}
}

func TestFigure1Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	// Two sweep points suffice for the paper's claims: at a short critical
	// section the 10-spin combined lock beats the 1-spin one while the
	// 50-spin one is worse than the 10-spin one; at a long critical
	// section pure spinning is catastrophic under multiprogramming.
	rows, err := Figure1(Figure1Options{
		CSLengths: []sim.Time{10 * sim.Microsecond, 500 * sim.Microsecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	short, long := rows[0].Elapsed, rows[1].Elapsed
	if !(short["combined-10"] < short["combined-1"]) {
		t.Errorf("Figure 1 @10µs: combined-10 (%v) not better than combined-1 (%v)",
			short["combined-10"], short["combined-1"])
	}
	if !(short["combined-50"] > short["combined-10"]) {
		t.Errorf("Figure 1 @10µs: combined-50 (%v) not worse than combined-10 (%v)",
			short["combined-50"], short["combined-10"])
	}
	if !(long["pure-spin"] > 2*long["pure-block"]) {
		t.Errorf("Figure 1 @500µs: spin (%v) not far worse than block (%v)",
			long["pure-spin"], long["pure-block"])
	}
}

func TestTSPComparisonShape(t *testing.T) {
	opts := TSPOptions{Cities: 14, Seed: 1}
	cen, err := TSPComparison(tsp.OrgCentralized, opts)
	if err != nil {
		t.Fatal(err)
	}
	// Adaptive locks beat blocking locks (paper Table 1: 17.8%).
	if !(cen.Adaptive < cen.Blocking) {
		t.Errorf("centralized: adaptive (%v) not faster than blocking (%v)", cen.Adaptive, cen.Blocking)
	}
	// Parallel beats sequential (paper: 6.5× on 10 processors).
	if !(cen.Speedup > 2) {
		t.Errorf("centralized speedup = %.2f, want > 2", cen.Speedup)
	}
	dis, err := TSPComparison(tsp.OrgDistributed, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !(dis.Adaptive < dis.Blocking) {
		t.Errorf("distributed: adaptive (%v) not faster than blocking (%v)", dis.Adaptive, dis.Blocking)
	}
	// Distributed beats centralized under blocking locks (paper: 2973 vs
	// 3207 ms).
	if !(dis.Blocking < cen.Blocking) {
		t.Errorf("distributed blocking (%v) not faster than centralized (%v)", dis.Blocking, cen.Blocking)
	}
	lb, err := TSPComparison(tsp.OrgDistributedLB, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !(lb.Adaptive < lb.Blocking) {
		t.Errorf("distributed-lb: adaptive (%v) not faster than blocking (%v)", lb.Adaptive, lb.Blocking)
	}
	// The centralized organization gains the most from adaptive locks
	// (paper: 17.8% vs 12.7% and 6.5%).
	if !(cen.ImprovementPct > dis.ImprovementPct && cen.ImprovementPct > lb.ImprovementPct) {
		t.Errorf("improvements: cen=%.1f dis=%.1f lb=%.1f; centralized should gain most",
			cen.ImprovementPct, dis.ImprovementPct, lb.ImprovementPct)
	}
}

func TestLockPatternsShape(t *testing.T) {
	figs, err := LockPatterns(TSPOptions{Cities: 13, Seed: 1, StepsPerWorkUnit: 30})
	if err != nil {
		t.Fatal(err)
	}
	if len(figs) != 6 {
		t.Fatalf("%d figures, want 6", len(figs))
	}
	series := map[int]*PatternFigure{}
	for i := range figs {
		series[figs[i].Figure] = &figs[i]
		if figs[i].Series.Len() == 0 {
			t.Fatalf("figure %d: empty series", figs[i].Figure)
		}
	}
	// Figures 4 vs 6 vs 8: centralized qlock contention dominates the
	// distributed organizations'.
	cenQ := series[4].Series
	disQ := series[6].Series
	lbQ := series[8].Series
	if !(cenQ.Mean() > disQ.Mean() && cenQ.Mean() > lbQ.Mean()) {
		t.Errorf("qlock waiting means: cen=%.2f dis=%.2f lb=%.2f; centralized must dominate",
			cenQ.Mean(), disQ.Mean(), lbQ.Mean())
	}
	if !(cenQ.Max() >= disQ.Max()) {
		t.Errorf("qlock waiting max: cen=%d < dis=%d", cenQ.Max(), disQ.Max())
	}
}

func TestSchedulerComparisonShape(t *testing.T) {
	rows, err := SchedulerComparison(sim.Config{}, 2)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]SchedRow{}
	for _, r := range rows {
		byName[r.Scheduler] = r
	}
	// Priority best, FCFS worst ([MS93] via §2) — by an order of
	// magnitude in response time on this workload.
	if !(byName["priority"].MeanResponse < byName["fcfs"].MeanResponse/3) {
		t.Errorf("priority response (%v) not far below FCFS (%v)",
			byName["priority"].MeanResponse, byName["fcfs"].MeanResponse)
	}
	if !(byName["handoff"].MeanResponse < byName["fcfs"].MeanResponse) {
		t.Errorf("handoff response (%v) not below FCFS (%v)",
			byName["handoff"].MeanResponse, byName["fcfs"].MeanResponse)
	}
}

func TestSpinVsBlockCrossoverShape(t *testing.T) {
	rows, err := SpinVsBlockCrossover(sim.Config{}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if rows[0].ThreadsPerProc != 1 || rows[len(rows)-1].ThreadsPerProc != 4 {
		t.Fatalf("unexpected sweep: %+v", rows)
	}
	// [MS93] §2: spin wins with threads == processors, blocking wins when
	// multiprogrammed.
	if !(rows[0].Spin < rows[0].Block) {
		t.Errorf("1 thread/proc: spin (%v) not faster than block (%v)", rows[0].Spin, rows[0].Block)
	}
	last := rows[len(rows)-1]
	if !(last.Block < last.Spin) {
		t.Errorf("4 threads/proc: block (%v) not faster than spin (%v)", last.Block, last.Spin)
	}
}

func TestPolicyAblationRuns(t *testing.T) {
	rows, err := PolicyAblation(sim.Config{}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 9 {
		t.Fatalf("%d ablation rows, want 9", len(rows))
	}
	first := rows[0].Elapsed
	allSame := true
	for _, r := range rows {
		if r.Elapsed <= 0 {
			t.Fatalf("ablation t=%d n=%d: no time elapsed", r.WaitingThreshold, r.Step)
		}
		if r.Elapsed != first {
			allSame = false
		}
	}
	if allSame {
		t.Error("ablation: all (threshold, step) pairs identical — the constants have no effect")
	}
}

func TestAdvisoryComparisonShape(t *testing.T) {
	rows, err := AdvisoryComparison(sim.Config{}, 2)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]sim.Time{}
	for _, r := range rows {
		byName[r.Strategy] = r.Elapsed
	}
	adv := byName["advisory"]
	// The advisory lock performs well for variable-length critical
	// sections ([MS93] via §2): it beats every fixed waiting policy here.
	for _, other := range []string{"pure-spin", "pure-block", "combined-10"} {
		if adv >= byName[other] {
			t.Errorf("advisory (%v) not better than %s (%v)", adv, other, byName[other])
		}
	}
}

func TestLockRetargetingShape(t *testing.T) {
	rows, err := LockRetargeting(sim.Config{}, 2)
	if err != nil {
		t.Fatal(err)
	}
	first, last := rows[0], rows[len(rows)-1]
	if first.Threads != 2 || last.Threads != 16 {
		t.Fatalf("unexpected sweep: %+v", rows)
	}
	// At low contention the representations are equivalent (within 10%).
	diff := first.RemoteSpin - first.LocalSpin
	if diff < 0 {
		diff = -diff
	}
	if diff*10 > first.RemoteSpin {
		t.Errorf("2 threads: remote-spin %v and local-spin %v differ by >10%%", first.RemoteSpin, first.LocalSpin)
	}
	// At high contention the local-spin representation wins and the TAS
	// lock's module shows a hot spot.
	if !(last.LocalSpin < last.RemoteSpin) {
		t.Errorf("16 threads: local-spin (%v) not faster than remote-spin (%v)", last.LocalSpin, last.RemoteSpin)
	}
	if !(last.HotSpotDelay > 100*first.HotSpotDelay) {
		t.Errorf("hot-spot delay did not explode with contention: %v → %v", first.HotSpotDelay, last.HotSpotDelay)
	}
}

func TestMutableCalibrationShape(t *testing.T) {
	rows, err := MutableCalibration(sim.Config{}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 || rows[0].Waiters != 2 || rows[2].Waiters != 32 {
		t.Fatalf("unexpected sweep: %+v", rows)
	}
	for _, r := range rows {
		if r.Spin+r.SpinBlock+r.Block+r.Cold == 0 {
			t.Errorf("%d waiters: no contended arrivals classified", r.Waiters)
		}
	}
	// At 2 waiters the predicted wait (≈ one 20µs hold) sits well below the
	// GP1000 block cost, so the predictor spins; at 32 waiters the queue
	// term pushes predictions past the spin-then-block threshold.
	if rows[0].Spin == 0 {
		t.Errorf("2 waiters: no spin decisions: %+v", rows[0])
	}
	if rows[2].Block == 0 {
		t.Errorf("32 waiters: no block decisions: %+v", rows[2])
	}
	// The calibration record must carry real predicted-vs-actual pairs.
	last := rows[2]
	if last.MeanPredicted <= 0 || last.MeanActual <= 0 {
		t.Errorf("32 waiters: empty calibration record: %+v", last)
	}
}

func TestCohortNUMAShape(t *testing.T) {
	rows, err := CohortNUMA(sim.Config{}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 || rows[0].Nodes != 2 || rows[2].Nodes != 8 {
		t.Fatalf("unexpected sweep: %+v", rows)
	}
	for _, r := range rows {
		// The headline: cohorting keeps consecutive acquisitions on the
		// releasing node, so the lock crosses nodes far less often than
		// under the node-oblivious representations.
		if !(r.CohortRemote*2 < r.SpinRemote) {
			t.Errorf("%d nodes: cohort remote transfers (%d) not well below spin's (%d)",
				r.Nodes, r.CohortRemote, r.SpinRemote)
		}
		if !(r.CohortRemote*2 < r.MCSRemote) {
			t.Errorf("%d nodes: cohort remote transfers (%d) not well below MCS's (%d)",
				r.Nodes, r.CohortRemote, r.MCSRemote)
		}
		if r.LocalHandoffs == 0 {
			t.Errorf("%d nodes: no intra-node handoffs", r.Nodes)
		}
	}
}

func TestCouplingComparisonShape(t *testing.T) {
	rows, err := CouplingComparison(sim.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("%d rows, want 2", len(rows))
	}
	tight, loose := rows[0], rows[1]
	if tight.DecisionLag != 0 {
		t.Errorf("closely-coupled lag = %v, want 0 (samples consumed in the probing context)", tight.DecisionLag)
	}
	// The loose loop's reaction time is bounded below by the trace
	// pipeline (§3's adaptation-lag discussion; §5.1's "too loosely
	// coupled").
	if loose.DecisionLag < 500*sim.Microsecond {
		t.Errorf("loosely-coupled lag = %v, want ≥ 500µs", loose.DecisionLag)
	}
	// Both loops run the same policy on the same workload, so their
	// end-to-end times stay comparable (within 20%) — the looseness is a
	// responsiveness bound, not a throughput collapse, at this phase
	// length.
	ratio := float64(loose.Elapsed) / float64(tight.Elapsed)
	if ratio < 0.8 || ratio > 1.2 {
		t.Errorf("elapsed ratio loose/tight = %.2f, want within [0.8, 1.2]", ratio)
	}
}

func TestPlatformRetargetingShape(t *testing.T) {
	rows, err := PlatformRetargeting(2)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("%d rows, want 3", len(rows))
	}
	uma, numa, norma := rows[0], rows[1], rows[2]
	// Remote lock operations get dearer as the platform's remote penalty
	// grows.
	if !(uma.SpinOpRemote < numa.SpinOpRemote && numa.SpinOpRemote < norma.SpinOpRemote) {
		t.Errorf("spin op costs not increasing: %v / %v / %v",
			uma.SpinOpRemote, numa.SpinOpRemote, norma.SpinOpRemote)
	}
	// Spinning's relative advantage over blocking shrinks from UMA to
	// NORMA (§2: re-targeting changes the preferred configuration).
	if !(norma.SpinOverBlock > uma.SpinOverBlock+0.05) {
		t.Errorf("spin/block ratio did not shift toward blocking: UMA %.2f vs NORMA %.2f",
			uma.SpinOverBlock, norma.SpinOverBlock)
	}
}

func TestSchedulerAdaptationConverges(t *testing.T) {
	rows, err := SchedulerComparison(sim.Config{}, 2)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]SchedRow{}
	for _, r := range rows {
		byName[r.Scheduler] = r
	}
	adaptive, ok := byName["adaptive"]
	if !ok {
		t.Fatal("no adaptive-scheduler row")
	}
	// Starting from FCFS, the scheduler-adaptation policy must converge to
	// within 2× of the statically priority-scheduled lock's response time
	// — far from FCFS's unbounded backlog.
	if !(adaptive.MeanResponse < 2*byName["priority"].MeanResponse) {
		t.Errorf("adaptive response (%v) not within 2× of priority (%v)",
			adaptive.MeanResponse, byName["priority"].MeanResponse)
	}
	if !(adaptive.MeanResponse < byName["fcfs"].MeanResponse/10) {
		t.Errorf("adaptive response (%v) not far below FCFS (%v)",
			adaptive.MeanResponse, byName["fcfs"].MeanResponse)
	}
}

func TestScalingComparisonShape(t *testing.T) {
	rows, err := ScalingComparison(TSPOptions{Cities: 14, Seed: 1, Jobs: 2}, []int{4, 16})
	if err != nil {
		t.Fatal(err)
	}
	// §4's prediction: the adaptive lock's gain grows with the processor
	// count, because the spinning-vs-blocking effect is more pronounced.
	if !(rows[1].ImprovementPct > rows[0].ImprovementPct) {
		t.Errorf("improvement at 16 searchers (%.1f%%) not above 4 searchers (%.1f%%)",
			rows[1].ImprovementPct, rows[0].ImprovementPct)
	}
}

func TestSORComparisonShape(t *testing.T) {
	rows, err := SORComparison([]int{8, 24}, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if !(r.Adaptive < r.Blocking) {
			t.Errorf("%d workers: adaptive (%v) not faster than blocking (%v)", r.Workers, r.Adaptive, r.Blocking)
		}
	}
	// The gain grows with the degree of parallelism (§4's prediction, on
	// a second application with a bursty locking pattern).
	if !(rows[1].ImprovementPct > rows[0].ImprovementPct) {
		t.Errorf("improvement at 24 workers (%.1f%%) not above 8 workers (%.1f%%)",
			rows[1].ImprovementPct, rows[0].ImprovementPct)
	}
}

func TestBarrierComparisonShape(t *testing.T) {
	rows, err := BarrierComparison(3)
	if err != nil {
		t.Fatal(err)
	}
	private, shared := rows[0], rows[1]
	// Private processors: spinning is right; the adaptive barrier must be
	// within 10% of the spin barrier and far below the sleeping one.
	if !(private.Adaptive < private.Spin+private.Spin/10) {
		t.Errorf("private: adaptive (%v) not within 10%% of spin (%v)", private.Adaptive, private.Spin)
	}
	if !(private.Adaptive < private.Sleep*3/4) {
		t.Errorf("private: adaptive (%v) not well below sleep (%v)", private.Adaptive, private.Sleep)
	}
	// Multiprogrammed: the adaptive grace-then-sleep beats both statics.
	if !(shared.Adaptive < shared.Spin && shared.Adaptive < shared.Sleep) {
		t.Errorf("shared: adaptive (%v) not best (spin %v, sleep %v)", shared.Adaptive, shared.Spin, shared.Sleep)
	}
}
