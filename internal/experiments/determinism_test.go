package experiments

import (
	"bytes"
	"fmt"
	"io"
	"testing"

	"repro/internal/core"
	"repro/internal/profile"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/tsp"
)

// renderTSP runs one traced TSP comparison and returns the trace exports
// plus a rendering of every metric the comparison computes — the full
// observable output of one seeded experiment.
func renderTSP(t *testing.T, seed uint64) (chrome, text, metricsOut string) {
	t.Helper()
	tr := trace.New(1 << 20)
	row, err := TSPComparison(tsp.OrgCentralized, TSPOptions{
		Cities:    8,
		Seed:      seed,
		Searchers: 4,
		Tracer:    tr,
	})
	if err != nil {
		t.Fatal(err)
	}
	var cj, tx bytes.Buffer
	if err := tr.WriteChrome(&cj); err != nil {
		t.Fatal(err)
	}
	if err := tr.WriteText(&tx); err != nil {
		t.Fatal(err)
	}
	m := fmt.Sprintf("%v|%v|%v|%d|%d|%d|%v|%v",
		row.Blocking, row.Adaptive, row.Sequential,
		row.BlockingRes.Expansions, row.AdaptiveRes.Expansions,
		row.BlockingRes.Tour.Cost,
		row.BlockingRes.LockStats[tsp.LockQueue], row.AdaptiveRes.FinalSpin)
	m += "\n" + trace.RenderContention(tr.ContentionProfile())
	m += trace.RenderLag(tr.AdaptationLag())
	return cj.String(), tx.String(), m
}

// TestTSPDeterminism is the regression gate for the repo's reproducibility
// claim: the same seed must produce byte-identical trace output and
// identical metrics, run to run. Any wall-clock, map-iteration, or
// scheduling nondeterminism leaking into the simulation or the tracer
// breaks this test.
func TestTSPDeterminism(t *testing.T) {
	c1, t1, m1 := renderTSP(t, 3)
	c2, t2, m2 := renderTSP(t, 3)
	if c1 != c2 {
		t.Error("Chrome trace differs between identical seeded runs")
	}
	if t1 != t2 {
		t.Error("text trace differs between identical seeded runs")
	}
	if m1 != m2 {
		t.Errorf("metrics differ between identical seeded runs:\n%s\n--- vs ---\n%s", m1, m2)
	}
	if len(c1) == 0 || len(t1) == 0 {
		t.Error("empty trace output")
	}
	// A different seed must actually change the experiment (guards
	// against the outputs being trivially constant).
	_, _, m3 := renderTSP(t, 4)
	if m1 == m3 {
		t.Error("different seeds produced identical metrics — seed not plumbed through")
	}
}

// renderSweeps runs a cross-section of sweep experiments at the given
// fan-out and renders every row — the full observable output. The sweep
// runner collects results in input order, so this must be byte-identical
// for every jobs value.
func renderSweeps(t *testing.T, jobs int) string {
	t.Helper()
	var out bytes.Buffer

	fig1, err := Figure1(Figure1Options{
		CSLengths: []sim.Time{10 * sim.Microsecond, 500 * sim.Microsecond},
		Jobs:      jobs,
	})
	if err != nil {
		t.Fatal(err)
	}
	fmt.Fprintln(&out, RenderFigure1(fig1))

	abl, err := PolicyAblation(sim.Config{}, jobs)
	if err != nil {
		t.Fatal(err)
	}
	fmt.Fprintln(&out, RenderAblation(abl))

	row, err := TSPComparison(tsp.OrgCentralized, TSPOptions{
		Cities: 8, Seed: 5, Searchers: 4, Jobs: jobs,
	})
	if err != nil {
		t.Fatal(err)
	}
	fmt.Fprintln(&out, RenderTSPRow(row))
	fmt.Fprintf(&out, "%v|%v|%v|%d|%d|%v\n",
		row.Blocking, row.Adaptive, row.Sequential,
		row.BlockingRes.Expansions, row.AdaptiveRes.Expansions, row.AdaptiveRes.FinalSpin)

	bar, err := BarrierComparison(jobs)
	if err != nil {
		t.Fatal(err)
	}
	fmt.Fprintln(&out, RenderBarriers(bar))
	return out.String()
}

// TestSweepParallelDeterminism is the regression gate for the parallel
// sweep runner: running the sweeps with -j 8 must produce byte-identical
// output to the serial -j 1 path. Each configuration owns its engine and
// RNG and results are collected in input order, so any divergence means
// shared mutable state leaked between concurrent simulations.
func TestSweepParallelDeterminism(t *testing.T) {
	serial := renderSweeps(t, 1)
	parallel := renderSweeps(t, 8)
	if serial != parallel {
		t.Errorf("sweep output with -j 8 differs from -j 1:\n--- j=1 ---\n%s\n--- j=8 ---\n%s", serial, parallel)
	}
	if len(serial) == 0 {
		t.Error("empty sweep output")
	}
}

// renderObservedSweep runs Table4 and Figure1 with a profiler and ledger
// attached at the given fan-out and renders every observable byte: the
// experiment rows plus the full profiler and ledger exports.
func renderObservedSweep(t *testing.T, jobs int) string {
	t.Helper()
	prof := profile.New()
	led := core.NewLedger(core.DefaultLedgerCapacity)
	var out bytes.Buffer

	rows, err := Table4(Options{Iters: 3, Jobs: jobs, Profiler: prof, Ledger: led})
	if err != nil {
		t.Fatal(err)
	}
	fmt.Fprintln(&out, RenderLockOpTable("Table 4", rows))

	fig1, err := Figure1(Figure1Options{
		CSLengths: []sim.Time{10 * sim.Microsecond, 200 * sim.Microsecond},
		Jobs:      jobs,
		Profiler:  prof,
		Ledger:    led,
	})
	if err != nil {
		t.Fatal(err)
	}
	fmt.Fprintln(&out, RenderFigure1(fig1))

	for _, write := range []func(io.Writer) error{
		prof.WriteFolded, prof.WriteTable, prof.WriteHistograms,
		led.WriteJSON, led.WriteReport,
	} {
		if err := write(&out); err != nil {
			t.Fatal(err)
		}
	}
	return out.String()
}

// TestObservedSweepParallelDeterminism is the byte-identity gate for the
// observability layer under sweep parallelism: a shared profiler and
// ledger force the sweep runner serial, so -j 8 must produce exports
// byte-identical to -j 1. A divergence means either the serial forcing
// regressed (collectors raced) or an export leaked ordering
// nondeterminism.
func TestObservedSweepParallelDeterminism(t *testing.T) {
	serial := renderObservedSweep(t, 1)
	parallel := renderObservedSweep(t, 8)
	if serial != parallel {
		t.Error("observed sweep output with -j 8 differs from -j 1")
	}
	if len(serial) == 0 {
		t.Error("empty observed sweep output")
	}
}

// TestCouplingTraceDeterminism covers the loosely-coupled monitor pipeline
// path (monitor records, deliveries, and pipeline-lagged samples) with the
// same byte-identity requirement.
func TestCouplingTraceDeterminism(t *testing.T) {
	render := func() (string, string) {
		tr := trace.New(1 << 20)
		rows, err := CouplingComparisonTraced(sim.Config{}, tr)
		if err != nil {
			t.Fatal(err)
		}
		var tx bytes.Buffer
		if err := tr.WriteText(&tx); err != nil {
			t.Fatal(err)
		}
		return tx.String(), fmt.Sprintf("%+v", rows)
	}
	tr1, rows1 := render()
	tr2, rows2 := render()
	if tr1 != tr2 {
		t.Error("coupling trace differs between identical runs")
	}
	if rows1 != rows2 {
		t.Error("coupling rows differ between identical runs")
	}
	// The loose pipeline's trace-derived decision lag must be visibly
	// larger than the inline loop's — the §5.1 claim, read off the trace.
	tr := trace.New(1 << 20)
	if _, err := CouplingComparisonTraced(sim.Config{}, tr); err != nil {
		t.Fatal(err)
	}
	lags := map[string]trace.LagProfile{}
	for _, p := range tr.AdaptationLag() {
		lags[p.Object] = p
	}
	tight, loose := lags["tight"], lags["loose"]
	if tight.Reconfigs == 0 || loose.Reconfigs == 0 {
		t.Fatalf("expected reconfigurations on both loops (tight=%d loose=%d)",
			tight.Reconfigs, loose.Reconfigs)
	}
	if loose.MeanLag() <= tight.MeanLag() {
		t.Errorf("loose pipeline lag (%v) not above inline lag (%v)",
			loose.MeanLag(), tight.MeanLag())
	}
}
