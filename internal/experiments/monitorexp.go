package experiments

import (
	"fmt"

	"repro/internal/active"
	"repro/internal/core"
	"repro/internal/cthreads"
	"repro/internal/locks"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/tsp"
)

// Execution modes of the contended-hotspot monitor benchmark. "sync" is
// the paper's synchronous locking baseline through the same monitor
// entry; "flat" and "server" are the two asynchronous combiners;
// "adaptive" starts synchronous and lets core.ExecModeAdapt switch.
var HotspotModes = []string{"sync", "flat", "server", "adaptive"}

// hotspotCallers are the caller counts of the hotspot sweep, matching the
// BenchmarkMonitor* macro benchmarks.
var hotspotCallers = []int{2, 8, 32}

// MonitorHotspotRow is one (mode, callers) cell of the contended-hotspot
// comparison: total completion time and the method-completion latency
// digest from metrics.Histogram.
type MonitorHotspotRow struct {
	Mode    string
	Callers int
	Elapsed sim.Time
	P50     sim.Time
	P99     sim.Time
	P999    sim.Time
	Batches uint64
	// MaxBatch is the largest combining batch (0 for pure sync).
	MaxBatch uint64
}

// monitorConfig builds the active.Config for one hotspot mode. The
// monitor's mutual exclusion is the blocking lock in every mode — a
// monitor's waiters sleep, which is exactly the regime where combining
// saves the per-method Wakeup + ContextSwitch handoff.
func monitorConfig(mode string, node int) active.Config {
	cfg := active.Config{Node: node, Name: "hotspot", LockKind: locks.KindBlocking}
	switch mode {
	case "flat":
		cfg.ExecMode = active.ExecAsync
	case "server":
		cfg.ExecMode = active.ExecAsync
		cfg.Combiner = active.CombinerServer
	case "adaptive":
		cfg.ExecMode = active.ExecSync
		cfg.SensorEvery = 2
	}
	return cfg
}

// runHotspot runs one contended-hotspot configuration: callers threads
// hammer one monitor with short methods and little think time, so almost
// every invocation meets contention.
func runHotspot(machine sim.Config, mode string, callers, iters int) (MonitorHotspotRow, error) {
	if machine.Nodes < callers {
		machine.Nodes = callers
	}
	sys := cthreads.New(machine)
	cfg := monitorConfig(mode, 0)
	m := active.New(sys, cfg)
	if mode == "adaptive" {
		m.Object().SetPolicy(core.ExecModeAdapt{
			Attr: active.AttrExecMode, Sync: active.ExecSync, Async: active.ExecAsync,
			AsyncAt: 4, SyncAt: 1,
		})
	}
	counter := 0
	workers := make([]*cthreads.Thread, callers)
	for i := 0; i < callers; i++ {
		workers[i] = sys.Fork(i%sys.Procs(), fmt.Sprintf("caller%d", i), func(t *cthreads.Thread) {
			for j := 0; j < iters; j++ {
				m.Invoke(t, func(b *cthreads.Thread) {
					b.Compute(200) // the hotspot method: short shared-state update
					counter++
				})
				t.Advance(sim.Time(t.Rand().Intn(2000)))
			}
		})
	}
	sys.Fork(0, "closer", func(t *cthreads.Thread) {
		for _, w := range workers {
			t.Join(w)
		}
		m.Shutdown(t)
	})
	if err := sys.Run(); err != nil {
		return MonitorHotspotRow{}, fmt.Errorf("hotspot %s/%d: %w", mode, callers, err)
	}
	if counter != callers*iters {
		return MonitorHotspotRow{}, fmt.Errorf("hotspot %s/%d: executed %d of %d methods", mode, callers, counter, callers*iters)
	}
	h := m.Latency()
	st := m.Stats()
	return MonitorHotspotRow{
		Mode: mode, Callers: callers, Elapsed: sys.Now(),
		P50: h.P50(), P99: h.P99(), P999: h.P999(),
		Batches: st.Batches, MaxBatch: st.MaxBatch,
	}, nil
}

// MonitorHotspotRun runs one (mode, callers) hotspot cell — the unit the
// BenchmarkMonitor* macro benchmarks report.
func MonitorHotspotRun(machine sim.Config, mode string, callers int) (MonitorHotspotRow, error) {
	return runHotspot(machine, mode, callers, 30)
}

// MonitorHotspot sweeps execution mode × caller count on the contended
// hotspot, fanning independent runs over up to jobs workers. The headline
// is the p99 method-completion cut of the combining modes under high
// contention; at 2 callers the submit/future overhead keeps sync ahead —
// both sides are reported as measured.
func MonitorHotspot(machine sim.Config, jobs int) ([]MonitorHotspotRow, error) {
	n := len(HotspotModes) * len(hotspotCallers)
	return sweep(sweepJobs(jobs, false), n, func(i int) (MonitorHotspotRow, error) {
		mode := HotspotModes[i/len(hotspotCallers)]
		callers := hotspotCallers[i%len(hotspotCallers)]
		return runHotspot(machine, mode, callers, 30)
	})
}

// RenderMonitorHotspot renders the hotspot sweep.
func RenderMonitorHotspot(rows []MonitorHotspotRow) *metrics.Table {
	tb := metrics.NewTable("Contended hotspot: method-completion latency by execution mode",
		"Mode", "Callers", "elapsed (µs)", "p50 (µs)", "p99 (µs)", "p999 (µs)", "batches", "max batch")
	for _, r := range rows {
		tb.AddRow(r.Mode, fmt.Sprintf("%d", r.Callers), us(r.Elapsed),
			us(r.P50), us(r.P99), us(r.P999),
			fmt.Sprintf("%d", r.Batches), fmt.Sprintf("%d", r.MaxBatch))
	}
	return tb
}

// MonitorPhaseSwitch is one exec-mode reconfiguration from the
// phase-change run's ledger.
type MonitorPhaseSwitch struct {
	At       int64
	Decision string
	// Value is the sensed concurrency that triggered the decision.
	Value int64
}

// MonitorPhaseReport is the outcome of the phase-changing workload: the
// sensor-driven execution-mode switches plus the per-mode call split
// proving both modes actually ran.
type MonitorPhaseReport struct {
	Switches  []MonitorPhaseSwitch
	SyncCalls uint64
	Submits   uint64
	Elapsed   sim.Time
}

// MonitorPhases drives a calm → storm → calm workload against an
// adaptive monitor and reports every exec-mode switch its policy made:
// the monitor must go asynchronous when the storm's concurrency builds
// and return to synchronous execution when it passes.
func MonitorPhases(machine sim.Config) (MonitorPhaseReport, error) {
	if machine.Nodes < 8 {
		machine.Nodes = 8
	}
	sys := cthreads.New(machine)
	ledger := core.NewLedger(0)
	sys.SetLedger(ledger)
	m := active.New(sys, active.Config{Node: 0, Name: "phase-mon", ExecMode: active.ExecSync, SensorEvery: 1})
	m.Object().SetPolicy(core.ExecModeAdapt{
		Attr: active.AttrExecMode, Sync: active.ExecSync, Async: active.ExecAsync,
		AsyncAt: 4, SyncAt: 1,
	})
	body := func(b *cthreads.Thread) { b.Compute(200) }
	solo := sys.Fork(0, "solo", func(t *cthreads.Thread) {
		for j := 0; j < 40; j++ {
			m.Invoke(t, body)
			t.Advance(5 * sim.Microsecond)
		}
	})
	storm := make([]*cthreads.Thread, 8)
	for i := range storm {
		storm[i] = sys.Fork(i, fmt.Sprintf("storm%d", i), func(t *cthreads.Thread) {
			t.Join(solo)
			for j := 0; j < 50; j++ {
				m.Invoke(t, body)
			}
		})
	}
	sys.Fork(0, "calm", func(t *cthreads.Thread) {
		for _, s := range storm {
			t.Join(s)
		}
		for j := 0; j < 40; j++ {
			m.Invoke(t, body)
			t.Advance(5 * sim.Microsecond)
		}
		m.Shutdown(t)
	})
	if err := sys.Run(); err != nil {
		return MonitorPhaseReport{}, fmt.Errorf("monitor phases: %w", err)
	}
	rep := MonitorPhaseReport{Elapsed: sys.Now()}
	for _, e := range ledger.Entries() {
		if e.Kind == core.EntryApply && e.Err == "" && e.Object == "phase-mon" {
			rep.Switches = append(rep.Switches, MonitorPhaseSwitch{At: e.At, Decision: e.Decision, Value: e.Value})
		}
	}
	st := m.Stats()
	rep.SyncCalls, rep.Submits = st.SyncCalls, st.Submits
	return rep, nil
}

// RenderMonitorPhases renders the phase-change report.
func RenderMonitorPhases(rep MonitorPhaseReport) *metrics.Table {
	tb := metrics.NewTable(
		fmt.Sprintf("Per-phase execution-mode adaptation (%d sync calls, %d async submits)",
			rep.SyncCalls, rep.Submits),
		"at (µs)", "decision", "sensed concurrency")
	for _, s := range rep.Switches {
		tb.AddRow(us(sim.Time(s.At)), s.Decision, fmt.Sprintf("%d", s.Value))
	}
	return tb
}

// WaitLatencyRow is one lock kind's per-acquisition wait-latency digest
// on a uniformly contended workload.
type WaitLatencyRow struct {
	Kind    locks.Kind
	Summary string
}

// WaitLatencySweep runs a contended critical-section workload per lock
// kind with a wait histogram attached and reports each kind's
// per-acquisition wait latency (metrics.Histogram Summary: n, mean, p50,
// p99, p999, max).
func WaitLatencySweep(machine sim.Config, jobs int, kinds []locks.Kind) ([]WaitLatencyRow, error) {
	if len(kinds) == 0 {
		kinds = locks.Kinds()
	}
	if machine.Nodes < 8 {
		machine.Nodes = 8
	}
	return sweep(sweepJobs(jobs, false), len(kinds), func(i int) (WaitLatencyRow, error) {
		kind := kinds[i]
		sys := cthreads.New(machine)
		l, err := locks.New(sys, kind, 0, string(kind), locks.DefaultCosts())
		if err != nil {
			return WaitLatencyRow{}, err
		}
		h := metrics.NewHistogram(string(kind) + ".wait")
		type histSink interface{ SetWaitHistogram(*metrics.Histogram) }
		l.(histSink).SetWaitHistogram(h)
		for w := 0; w < 8; w++ {
			sys.Fork(w%sys.Procs(), fmt.Sprintf("w%d", w), func(t *cthreads.Thread) {
				for j := 0; j < 20; j++ {
					l.Lock(t)
					t.Advance(5 * sim.Microsecond)
					l.Unlock(t)
					t.Advance(sim.Time(t.Rand().Intn(int(20 * sim.Microsecond))))
				}
			})
		}
		if err := sys.Run(); err != nil {
			return WaitLatencyRow{}, fmt.Errorf("wait latency %s: %w", kind, err)
		}
		return WaitLatencyRow{Kind: kind, Summary: h.Summary()}, nil
	})
}

// RenderWaitLatency renders the per-kind wait-latency digests.
func RenderWaitLatency(rows []WaitLatencyRow) *metrics.Table {
	tb := metrics.NewTable("Per-acquisition wait latency by lock kind (contended, 8 threads)",
		"Lock type", "wait digest")
	for _, r := range rows {
		tb.AddRow(string(r.Kind), r.Summary)
	}
	return tb
}

// TSPAsyncRow is one async-queue mode of the centralized TSP solve: total
// completion time plus the shared queue's method-completion digest and
// monitor counters. Mode "off" is the untouched baseline path.
type TSPAsyncRow struct {
	Mode    string
	Elapsed sim.Time
	P50     sim.Time
	P99     sim.Time
	P999    sim.Time
	Stats   active.Stats
}

// TSPAsyncQueue solves one centralized TSP instance per shared-queue
// execution mode — off (the untouched lock-per-operation path), sync
// (through the monitor, synchronous locking), flat, server, and adaptive —
// and reports each mode's completion time and queue-operation latency. All
// modes must find the same optimal tour; the solves are independent
// simulations and fan out over jobs workers.
func TSPAsyncQueue(opts TSPOptions, jobs int) ([]TSPAsyncRow, error) {
	opts = opts.withDefaults()
	in := opts.instance()
	modes := append([]string{"off"}, tsp.AsyncQueueModes()...)
	rows, err := sweep(sweepJobs(jobs, false), len(modes), func(i int) (TSPAsyncRow, error) {
		mode := modes[i]
		cfg := tsp.Config{
			Instance:         in,
			Searchers:        opts.Searchers,
			Org:              tsp.OrgCentralized,
			LockKind:         locks.KindBlocking,
			Machine:          opts.Machine,
			StepsPerWorkUnit: opts.StepsPerWorkUnit,
		}
		if mode != "off" {
			cfg.AsyncQueue = mode
		}
		res, err := tsp.Solve(cfg)
		if err != nil {
			return TSPAsyncRow{}, fmt.Errorf("tsp async-queue %s: %w", mode, err)
		}
		row := TSPAsyncRow{Mode: mode, Elapsed: res.Elapsed, Stats: res.QueueMonitor}
		if h := res.QueueLatency; h != nil {
			row.P50, row.P99, row.P999 = h.P50(), h.P99(), h.P999()
		}
		return row, nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// RenderTSPAsyncQueue renders the async-queue TSP comparison.
func RenderTSPAsyncQueue(rows []TSPAsyncRow) *metrics.Table {
	tb := metrics.NewTable("Centralized TSP: shared work queue by execution mode",
		"Queue mode", "elapsed (µs)", "queue p50 (µs)", "queue p99 (µs)", "queue p999 (µs)",
		"sync calls", "submits", "batches", "max batch")
	for _, r := range rows {
		p50, p99, p999 := "-", "-", "-"
		if r.Mode != "off" {
			p50, p99, p999 = us(r.P50), us(r.P99), us(r.P999)
		}
		tb.AddRow(r.Mode, us(r.Elapsed), p50, p99, p999,
			fmt.Sprintf("%d", r.Stats.SyncCalls), fmt.Sprintf("%d", r.Stats.Submits),
			fmt.Sprintf("%d", r.Stats.Batches), fmt.Sprintf("%d", r.Stats.MaxBatch))
	}
	return tb
}
