package experiments

import (
	"fmt"

	"repro/internal/locks"
	"repro/internal/sim"
	"repro/internal/sor"
)

// BarrierRow compares the barrier waiting policies in one scheduling
// regime of the SOR application.
type BarrierRow struct {
	Regime   string
	Spin     sim.Time
	Sleep    sim.Time
	Adaptive sim.Time
}

// BarrierComparison applies the adaptive-object model to a second
// operating-system abstraction (§7: "use the concept of closely-coupled
// adaptation in other operating system components"): the SOR sweep
// barrier. Its built-in monitor senses whether arrivals had co-runnable
// threads on their processors — the §2 criterion for when busy-waiting is
// wrong — and the policy moves the poll budget accordingly. With private
// processors the adaptive barrier converges to polling; multiprogrammed,
// it converges to a short grace poll followed by sleeping, beating both
// static barriers.
func BarrierComparison() ([]BarrierRow, error) {
	regimes := []struct {
		name    string
		procs   int
		quantum sim.Time
	}{
		{"1 worker/processor", 8, 0},
		{"2 workers/processor", 4, 500 * sim.Microsecond},
	}
	var rows []BarrierRow
	for _, reg := range regimes {
		row := BarrierRow{Regime: reg.name}
		for _, kind := range []string{"spin", "sleep", "adaptive"} {
			res, err := sor.Solve(sor.Config{
				Problem:     sor.Problem{N: 32, Tol: 1e-2},
				Workers:     8,
				Procs:       reg.procs,
				LockKind:    locks.KindAdaptive,
				BarrierKind: kind,
				Machine:     sim.Config{Quantum: reg.quantum},
			})
			if err != nil {
				return nil, fmt.Errorf("barrier %s/%s: %w", reg.name, kind, err)
			}
			switch kind {
			case "spin":
				row.Spin = res.Elapsed
			case "sleep":
				row.Sleep = res.Elapsed
			case "adaptive":
				row.Adaptive = res.Elapsed
			}
		}
		rows = append(rows, row)
	}
	return rows, nil
}
