package experiments

import (
	"fmt"

	"repro/internal/locks"
	"repro/internal/sim"
	"repro/internal/sor"
)

// BarrierRow compares the barrier waiting policies in one scheduling
// regime of the SOR application.
type BarrierRow struct {
	Regime   string
	Spin     sim.Time
	Sleep    sim.Time
	Adaptive sim.Time
}

// BarrierComparison applies the adaptive-object model to a second
// operating-system abstraction (§7: "use the concept of closely-coupled
// adaptation in other operating system components"): the SOR sweep
// barrier. Its built-in monitor senses whether arrivals had co-runnable
// threads on their processors — the §2 criterion for when busy-waiting is
// wrong — and the policy moves the poll budget accordingly. With private
// processors the adaptive barrier converges to polling; multiprogrammed,
// it converges to a short grace poll followed by sleeping, beating both
// static barriers.
func BarrierComparison(jobs int) ([]BarrierRow, error) {
	regimes := []struct {
		name    string
		procs   int
		quantum sim.Time
	}{
		{"1 worker/processor", 8, 0},
		{"2 workers/processor", 4, 500 * sim.Microsecond},
	}
	kinds := []string{"spin", "sleep", "adaptive"}
	// Flatten the (regime × barrier-kind) grid: all six solves are
	// independent simulations.
	cells, err := sweep(sweepJobs(jobs, false), len(regimes)*len(kinds), func(i int) (sim.Time, error) {
		reg := regimes[i/len(kinds)]
		kind := kinds[i%len(kinds)]
		res, err := sor.Solve(sor.Config{
			Problem:     sor.Problem{N: 32, Tol: 1e-2},
			Workers:     8,
			Procs:       reg.procs,
			LockKind:    locks.KindAdaptive,
			BarrierKind: kind,
			Machine:     sim.Config{Quantum: reg.quantum},
		})
		if err != nil {
			return 0, fmt.Errorf("barrier %s/%s: %w", reg.name, kind, err)
		}
		return res.Elapsed, nil
	})
	if err != nil {
		return nil, err
	}
	rows := make([]BarrierRow, 0, len(regimes))
	for r, reg := range regimes {
		rows = append(rows, BarrierRow{
			Regime:   reg.name,
			Spin:     cells[r*len(kinds)],
			Sleep:    cells[r*len(kinds)+1],
			Adaptive: cells[r*len(kinds)+2],
		})
	}
	return rows, nil
}
