package experiments

import (
	"fmt"

	"repro/internal/cthreads"
	"repro/internal/locks"
	"repro/internal/sim"
)

// CalibRow is the mutable lock's prediction record at one contention
// level: how the waiters were classified and how well the predicted waits
// tracked the waits that actually happened.
type CalibRow struct {
	Waiters int
	Elapsed sim.Time
	// Decision-class counts over every contended arrival.
	Spin, SpinBlock, Block, Cold uint64
	// Mean predicted and actual wait over the calibrated arrivals, and the
	// mean absolute prediction error.
	MeanPredicted sim.Time
	MeanActual    sim.Time
	MeanAbsErr    sim.Time
}

// MutableCalibration contends a predictive mutable lock at several waiter
// counts and reports the predicted-vs-actual wait calibration
// (cmd/lockbench -calib). Each waiter runs on its own processor, holds
// the lock for a fixed critical section, and pauses a seeded-random gap —
// the regime where the hold-time estimate is informative and the
// per-arrival decision is a genuine three-way choice.
func MutableCalibration(machine sim.Config, jobs int) ([]CalibRow, error) {
	counts := []int{2, 8, 32}
	return sweep(sweepJobs(jobs, false), len(counts), func(i int) (CalibRow, error) {
		waiters := counts[i]
		m := machine
		if m.Nodes < waiters {
			m.Nodes = waiters
		}
		if m.Seed == 0 {
			m.Seed = 1
		}
		sys := cthreads.New(m)
		l := locks.NewMutableLock(sys, 0, "calib", locks.DefaultCosts())
		for w := 0; w < waiters; w++ {
			sys.Fork(w, fmt.Sprintf("w%d", w), func(t *cthreads.Thread) {
				r := t.Rand()
				for j := 0; j < 25; j++ {
					l.Lock(t)
					t.Advance(20 * sim.Microsecond)
					l.Unlock(t)
					t.Advance(sim.Time(r.Intn(40_000)))
				}
			})
		}
		if err := sys.Run(); err != nil {
			return CalibRow{}, fmt.Errorf("calibration waiters=%d: %w", waiters, err)
		}
		p := l.Prediction()
		row := CalibRow{
			Waiters: waiters,
			Elapsed: sys.Now(),
			Spin:    p.Spin, SpinBlock: p.SpinBlock, Block: p.Block, Cold: p.Cold,
		}
		if p.Samples > 0 {
			n := sim.Time(p.Samples)
			row.MeanPredicted = p.PredictedSum / n
			row.MeanActual = p.ActualSum / n
			row.MeanAbsErr = p.AbsErrSum / n
		}
		return row, nil
	})
}

// CohortRow compares waiting representations at one machine size on a
// NUMA-contended workload: total execution time and how often the lock
// crossed nodes between consecutive owners.
type CohortRow struct {
	Nodes   int
	PerNode int
	// Elapsed per lock kind.
	Spin, MCS, Cohort sim.Time
	// Remote transfers (owner on a different node than the previous owner)
	// per lock kind.
	SpinRemote, MCSRemote, CohortRemote uint64
	// LocalHandoffs is the cohort lock's count of intra-node handoffs.
	LocalHandoffs uint64
}

// CohortNUMA reproduces the cohort-locking result on the simulated NUMA
// machine: with several threads per node under preemptive timeslicing,
// the cohort lock keeps consecutive acquisitions on the releasing node
// (paying the 1:4 remote latency only on cohort handoff), while the
// node-oblivious spin and MCS locks bounce the lock word across nodes on
// nearly every handover. The quantum matters: with one processor per
// node, same-node waiters only spin concurrently with their owner when
// the owner can be preempted.
func CohortNUMA(machine sim.Config, jobs int) ([]CohortRow, error) {
	if machine.Quantum == 0 {
		machine.Quantum = 200 * sim.Microsecond
	}
	const perNode = 3
	counts := []int{2, 4, 8}
	return sweep(sweepJobs(jobs, false), len(counts), func(i int) (CohortRow, error) {
		nodes := counts[i]
		m := machine
		if m.Nodes < nodes {
			m.Nodes = nodes
		}
		if m.Seed == 0 {
			m.Seed = 1
		}
		run := func(mk func(sys *cthreads.System) locks.Lock) (sim.Time, locks.Lock, error) {
			sys := cthreads.New(m)
			l := mk(sys)
			for node := 0; node < nodes; node++ {
				for k := 0; k < perNode; k++ {
					sys.Fork(node, fmt.Sprintf("n%dw%d", node, k), func(t *cthreads.Thread) {
						r := t.Rand()
						for j := 0; j < 15; j++ {
							l.Lock(t)
							t.Advance(20 * sim.Microsecond)
							l.Unlock(t)
							t.Advance(sim.Time(r.Intn(60_000)))
						}
					})
				}
			}
			if err := sys.Run(); err != nil {
				return 0, nil, err
			}
			return sys.Now(), l, nil
		}
		spinT, spinL, err := run(func(sys *cthreads.System) locks.Lock {
			return locks.NewSpinLock(sys, 0, "spin", locks.DefaultCosts())
		})
		if err != nil {
			return CohortRow{}, fmt.Errorf("cohort-numa spin nodes=%d: %w", nodes, err)
		}
		mcsT, mcsL, err := run(func(sys *cthreads.System) locks.Lock {
			return locks.NewLocalSpinLock(sys, 0, "mcs", locks.DefaultCosts())
		})
		if err != nil {
			return CohortRow{}, fmt.Errorf("cohort-numa mcs nodes=%d: %w", nodes, err)
		}
		var cohort *locks.CohortLock
		cohortT, _, err := run(func(sys *cthreads.System) locks.Lock {
			cohort = locks.NewCohortLock(sys, 0, "cohort", locks.DefaultCosts())
			return cohort
		})
		if err != nil {
			return CohortRow{}, fmt.Errorf("cohort-numa cohort nodes=%d: %w", nodes, err)
		}
		return CohortRow{
			Nodes: nodes, PerNode: perNode,
			Spin: spinT, MCS: mcsT, Cohort: cohortT,
			SpinRemote:    spinL.Stats().RemoteTransfers,
			MCSRemote:     mcsL.Stats().RemoteTransfers,
			CohortRemote:  cohort.Stats().RemoteTransfers,
			LocalHandoffs: cohort.Cohort().LocalHandoffs,
		}, nil
	})
}
