package sim

import "fmt"

// Config describes the simulated machine: its size and the latency
// parameters that drive every cost in the simulation.
//
// The defaults approximate a BBN Butterfly GP1000: each node pairs a
// processor with a memory module; a reference to the local module is fast
// while a reference through the switch to a remote module costs roughly
// four times as much; an atomic read-modify-write ("atomior" on the
// Butterfly) costs one extra module access; and thread-package operations
// (context switch, blocked-thread wakeup) cost tens of microseconds, as
// they did for Cthreads on the 68020-based nodes.
type Config struct {
	// Nodes is the number of processor/memory nodes (default 32).
	Nodes int
	// LocalAccess is the cost of one reference to the local memory module
	// (default 600ns).
	LocalAccess Time
	// RemoteAccess is the cost of one reference through the switch to a
	// remote module (default 4 × LocalAccess).
	RemoteAccess Time
	// AtomicExtra is the additional cost of a read-modify-write over a
	// plain reference (default one local access).
	AtomicExtra Time
	// Instr is the cost of one abstract instruction step of computation;
	// code charges k×Instr for k steps of private work (default 250ns).
	Instr Time
	// ContextSwitch is the thread-package cost of switching the processor
	// to another thread (default 35µs).
	ContextSwitch Time
	// Wakeup is the cost, charged to the waker, of moving a blocked thread
	// back to its processor's ready queue (default 45µs).
	Wakeup Time
	// Quantum enables preemptive round-robin timeslicing of threads on a
	// processor: a thread that has computed for a full quantum is moved to
	// the back of the ready queue if another thread is runnable. 0 (the
	// default) disables preemption — pure coroutine scheduling. The
	// multiprogrammed spin-vs-block experiments need preemption, as the
	// paper's Mach-based Butterfly did: a descheduled lock holder is what
	// makes spinning catastrophic when threads outnumber processors.
	Quantum Time
	// ModuleService enables memory-module contention (Butterfly switch
	// hot spots): each module serializes its accesses at one per
	// ModuleService, so concurrent references to the same module queue
	// behind each other on top of the base latency. 0 (the default)
	// disables queuing — modules have infinite bandwidth. Used by the
	// local-spin (MCS-style) lock-retargeting ablation: spinning remotely
	// on one word floods that word's module.
	ModuleService Time
	// Seed initializes the machine's deterministic random stream.
	Seed uint64
}

// DefaultConfig returns the GP1000-flavoured default parameters.
func DefaultConfig() Config {
	return Config{
		Nodes:         32,
		LocalAccess:   600 * Nanosecond,
		RemoteAccess:  2400 * Nanosecond,
		AtomicExtra:   600 * Nanosecond,
		Instr:         250 * Nanosecond,
		ContextSwitch: 35 * Microsecond,
		Wakeup:        45 * Microsecond,
		Seed:          1,
	}
}

// withDefaults fills zero fields from DefaultConfig.
func (c Config) withDefaults() Config {
	d := DefaultConfig()
	if c.Nodes == 0 {
		c.Nodes = d.Nodes
	}
	if c.LocalAccess == 0 {
		c.LocalAccess = d.LocalAccess
	}
	if c.RemoteAccess == 0 {
		c.RemoteAccess = 4 * c.LocalAccess
	}
	if c.AtomicExtra == 0 {
		c.AtomicExtra = c.LocalAccess
	}
	if c.Instr == 0 {
		c.Instr = d.Instr
	}
	if c.ContextSwitch == 0 {
		c.ContextSwitch = d.ContextSwitch
	}
	if c.Wakeup == 0 {
		c.Wakeup = d.Wakeup
	}
	if c.Seed == 0 {
		c.Seed = d.Seed
	}
	return c
}

// Machine is a simulated NUMA multiprocessor: an engine, a set of
// processor/memory nodes, and the latency model.
type Machine struct {
	eng *Engine
	cfg Config
	rng *RNG

	// sharded/rank link the machine to a Sharded coordinator when it is
	// one shard of a partitioned big machine: rank is the shard index,
	// and sharded routes cross-shard events. Both stay zero/nil on a
	// standalone machine. Set only by NewSharded.
	sharded *Sharded
	rank    int

	// moduleFree is, per node, when that memory module finishes its
	// currently queued accesses (only used when ModuleService > 0).
	moduleFree []Time
	// queueDelay accumulates total module-contention delay per node.
	queueDelay []Time
	// accesses counts memory references per node (contention diagnostics).
	accesses []uint64
}

// NewMachine builds a machine on a fresh engine. Zero Config fields take
// their defaults.
func NewMachine(cfg Config) *Machine {
	cfg = cfg.withDefaults()
	if cfg.Nodes < 1 {
		panic(fmt.Sprintf("sim: machine needs at least one node, got %d", cfg.Nodes))
	}
	return &Machine{
		eng:        NewEngine(),
		cfg:        cfg,
		rng:        NewRNG(cfg.Seed),
		moduleFree: make([]Time, cfg.Nodes),
		queueDelay: make([]Time, cfg.Nodes),
		accesses:   make([]uint64, cfg.Nodes),
	}
}

// chargeAccess advances a by the cost of one reference to memory node to,
// plus atomicExtra for read-modify-writes, plus any module queuing delay
// when contention modelling is enabled.
//
// The module-reservation bookkeeping reads Now() before the Advance, so it
// depends on the engine clock being exact at every instant — which the
// inline self-wakeup fast path preserves: an in-place accrual moves now to
// precisely the time the slow path's dispatch would have.
func (m *Machine) chargeAccess(a Accessor, to int, atomicExtra Time) {
	cost, _ := m.reserveAccess(a.Node(), to, atomicExtra)
	a.Advance(cost)
}

// reserveAccess books one reference from node from to memory node to at
// the current instant — access count, and module-queue reservation when
// contention modelling is on — and returns the reference's total latency
// along with its queueing component. The caller must then advance the
// accessor by cost; chargeAccess does both, the spin emulator advances
// through its own boundary-aware accrual instead.
func (m *Machine) reserveAccess(from, to int, atomicExtra Time) (cost, delay Time) {
	cost = m.AccessCost(from, to) + atomicExtra
	m.accesses[to]++
	if svc := m.cfg.ModuleService; svc > 0 {
		now := m.eng.Now()
		start := m.moduleFree[to]
		if start < now {
			start = now
		}
		m.moduleFree[to] = start + svc
		delay = start - now
		m.queueDelay[to] += delay
		cost += delay
	}
	return cost, delay
}

// ModuleQueueDelay reports the accumulated contention delay at a node's
// memory module.
func (m *Machine) ModuleQueueDelay(node int) Time { return m.queueDelay[node] }

// ModuleAccesses reports how many references a node's module served.
func (m *Machine) ModuleAccesses(node int) uint64 { return m.accesses[node] }

// Engine returns the machine's event engine.
func (m *Machine) Engine() *Engine { return m.eng }

// Config returns the (defaulted) machine configuration.
func (m *Machine) Config() Config { return m.cfg }

// RNG returns the machine's deterministic random stream.
func (m *Machine) RNG() *RNG { return m.rng }

// Nodes reports the number of processor/memory nodes.
func (m *Machine) Nodes() int { return m.cfg.Nodes }

// AccessCost returns the latency of one memory reference from the given
// processor node to the given memory node.
func (m *Machine) AccessCost(from, to int) Time {
	if from == to {
		return m.cfg.LocalAccess
	}
	return m.cfg.RemoteAccess
}

// Accessor is anything that can be charged virtual time from a home node:
// in practice a cthreads.Thread, but tests use lighter implementations.
type Accessor interface {
	// Node is the memory node the accessor executes on.
	Node() int
	// Advance consumes d of virtual time on the accessor's processor.
	Advance(d Time)
}

// InstrCost returns the cost of n abstract instruction steps.
func (m *Machine) InstrCost(n int) Time {
	return Time(n) * m.cfg.Instr
}

// Sharded returns the coordinator this machine is one shard of, or nil
// on a standalone machine.
func (m *Machine) Sharded() *Sharded { return m.sharded }

// ShardRank returns the machine's shard index under a Sharded
// coordinator, 0 on a standalone machine.
func (m *Machine) ShardRank() int { return m.rank }

// Route schedules fn to run after delay in the context that owns memory
// node to, as seen from node from. On a standalone machine (and for a
// destination inside the caller's own shard) this is exactly
// Engine.After. When from and to live on different shards of a Sharded
// machine, the call becomes a cross-shard message: it is buffered in the
// source shard's outbox and delivered to the owner's event queue at the
// next window barrier, carrying the send instant so it fires in exactly
// the (when, at, seq) position the serial engine would have used. The
// delay of a cross-shard route must be at least Sharded.Lookahead — the
// window bound derived from the latency table — or Route panics; every
// physical cross-node interaction (remote reference, wakeup) satisfies
// this by construction.
//
// Route must be called from the machine that from executes on (the
// caller's own shard): the buffered outbox is shard-private state.
func (m *Machine) Route(from, to int, delay Time, fn func()) {
	if delay < 0 {
		delay = 0
	}
	sh := m.sharded
	if sh == nil || sh.RankOf(to) == m.rank {
		m.eng.After(delay, fn)
		return
	}
	sh.send(m, to, delay, fn)
}
