package sim

import (
	"testing"
	"testing/quick"
)

func TestRNGDeterministic(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
	if NewRNG(42).Uint64() == NewRNG(43).Uint64() {
		t.Fatal("different seeds produced the same first value")
	}
}

func TestRNGZeroSeedRemapped(t *testing.T) {
	z, m := NewRNG(0), NewRNG(0x9e3779b97f4a7c15)
	for i := 0; i < 10; i++ {
		if z.Uint64() != m.Uint64() {
			t.Fatalf("zero seed not remapped to the documented constant (step %d)", i)
		}
	}
}

func TestRNGIntnRange(t *testing.T) {
	r := NewRNG(7)
	f := func(nRaw uint16) bool {
		n := int(nRaw%1000) + 1
		v := r.Intn(n)
		return v >= 0 && v < n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		if v := r.Int63n(1e12); v < 0 || v >= 1e12 {
			t.Fatalf("Int63n(1e12) = %d out of range", v)
		}
	}
}

func TestRNGIntnPanicsOnNonPositive(t *testing.T) {
	for _, n := range []int{0, -1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Intn(%d) did not panic", n)
				}
			}()
			NewRNG(1).Intn(n)
		}()
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Int63n(0) did not panic")
			}
		}()
		NewRNG(1).Int63n(0)
	}()
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(11)
	var sum float64
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64() = %g out of [0,1)", v)
		}
		sum += v
	}
	if mean := sum / 10000; mean < 0.45 || mean > 0.55 {
		t.Fatalf("Float64 mean %g implausible for a uniform stream", mean)
	}
}

func TestRNGPerm(t *testing.T) {
	r := NewRNG(5)
	for _, n := range []int{0, -3, 1, 2, 17} {
		p := r.Perm(n)
		wantLen := n
		if n < 0 {
			wantLen = 0
		}
		if len(p) != wantLen {
			t.Fatalf("Perm(%d) has length %d", n, len(p))
		}
		seen := make([]bool, wantLen)
		for _, v := range p {
			if v < 0 || v >= wantLen || seen[v] {
				t.Fatalf("Perm(%d) = %v is not a permutation", n, p)
			}
			seen[v] = true
		}
	}

	// Same seed, same permutation; the stream advances between calls.
	p1 := NewRNG(9).Perm(10)
	p2 := NewRNG(9).Perm(10)
	for i := range p1 {
		if p1[i] != p2[i] {
			t.Fatal("Perm is not deterministic for a fixed seed")
		}
	}

	// Perm(10) should not be the identity for this seed (it isn't; a
	// regression here means the shuffle stopped consuming the stream).
	identity := true
	for i, v := range p1 {
		if v != i {
			identity = false
			break
		}
	}
	if identity {
		t.Fatal("Perm(10) returned the identity permutation; shuffle is inert")
	}
}

func TestRNGFork(t *testing.T) {
	c := NewRNG(42)
	d := c.Fork()
	same := 0
	for i := 0; i < 100; i++ {
		if c.Uint64() == d.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("forked stream tracks parent (%d/100 equal)", same)
	}
}
