// Benchmarks pinning the zero-overhead contract of the virtual-time
// attribution profiler (internal/profile): with profiling disabled — the
// nil *Profiler every unobserved run carries — the thread-package and
// lock hot paths must not allocate. Each benchmark runs b.N operations
// inside ONE simulation (the same pattern as BenchmarkCoroSwitch), so the
// fixed setup cost amortizes away and allocs/op measures the steady
// state. The *Enabled* variants report the cost of exact attribution for
// contrast; they are allowed to allocate (new attribution keys intern
// once per distinct stack).
//
// The test file lives in package sim_test because the hooks under test
// span sim (dispatch, spin fast-forward), cthreads (base transitions),
// and locks (method/critical-section frames).
package sim_test

import (
	"testing"

	"repro/internal/cthreads"
	"repro/internal/locks"
	"repro/internal/profile"
	"repro/internal/sim"
)

// benchProfileLock runs b.N uncontended lock/unlock cycles on a spin lock
// with the given profiler attached (nil = disabled).
func benchProfileLock(b *testing.B, p *profile.Profiler) {
	b.ReportAllocs()
	sys := cthreads.New(sim.Config{Nodes: 2})
	sys.SetProfiler(p)
	l := locks.NewSpinLock(sys, 0, "bench", locks.DefaultCosts())
	sys.Fork(0, "worker", func(t *cthreads.Thread) {
		for i := 0; i < b.N; i++ {
			l.Lock(t)
			t.Advance(100 * sim.Nanosecond)
			l.Unlock(t)
		}
	})
	b.ResetTimer()
	if err := sys.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkProfileDisabledLock proves the lock-layer profiler hooks
// (observe, acquired, unlockStart/unlockEnd) are free when disabled.
func BenchmarkProfileDisabledLock(b *testing.B) { benchProfileLock(b, nil) }

// BenchmarkProfileEnabledLock is the enabled contrast: every cycle pays
// the frame pushes/pops and the wait/hold histogram records.
func BenchmarkProfileEnabledLock(b *testing.B) { benchProfileLock(b, profile.New()) }

// benchProfileSpin runs one bounded busy-wait of b.N futile probes with a
// labelled spec, with the given profiler attached.
func benchProfileSpin(b *testing.B, p *profile.Profiler) {
	b.ReportAllocs()
	sys := cthreads.New(sim.Config{Nodes: 1})
	sys.SetProfiler(p)
	cell := sys.Machine().NewCell(0, "flag", 0)
	sys.Fork(0, "spinner", func(t *cthreads.Thread) {
		spec := sim.SpinSpec{
			ProbeCell: cell,
			Probe:     func() bool { return cell.Peek() != 0 },
			PauseCost: func() sim.Time { return 100 * sim.Nanosecond },
			MaxIters:  int64(b.N),
			Label:     "spin:bench",
		}
		t.SpinUntil(&spec)
	})
	b.ResetTimer()
	if err := sys.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkProfileDisabledSpin proves the labelled-spin frame bracket in
// Thread.SpinUntil is free when disabled, batching included.
func BenchmarkProfileDisabledSpin(b *testing.B) { benchProfileSpin(b, nil) }

// benchProfileBlock runs b.N block/wake handoffs: a consumer crosses the
// blocked→queued→running base transitions the profiler hooks on every
// cycle, driven by a producer waking it at a safe cadence.
// (BlockTimeout is unsuitable here: its timer closure allocates per call
// with or without a profiler.)
func benchProfileBlock(b *testing.B, p *profile.Profiler) {
	b.ReportAllocs()
	sys := cthreads.New(sim.Config{Nodes: 2})
	sys.SetProfiler(p)
	consumer := sys.Fork(0, "consumer", func(t *cthreads.Thread) {
		for i := 0; i < b.N; i++ {
			t.Block()
		}
	})
	sys.Fork(1, "producer", func(t *cthreads.Thread) {
		for i := 0; i < b.N; i++ {
			// The consumer re-blocks instantly after each wake; advancing
			// past the dispatch latency guarantees it is blocked again.
			t.Advance(10 * sim.Microsecond)
			if !t.Wake(consumer) {
				b.Fatal("consumer was not blocked")
			}
		}
	})
	b.ResetTimer()
	if err := sys.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkProfileDisabledBlock proves the base-transition hooks in
// enqueue/dispatch/Block are free when disabled.
func BenchmarkProfileDisabledBlock(b *testing.B) { benchProfileBlock(b, nil) }

// TestProfileDisabledZeroAlloc is the hard gate behind the Disabled
// benchmarks: run them through testing.Benchmark and require exactly zero
// allocations per operation, so a regression fails `go test` rather than
// only nudging a report-only benchmark number.
func TestProfileDisabledZeroAlloc(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmark-backed; skipped in -short")
	}
	cases := []struct {
		name  string
		bench func(*testing.B)
	}{
		{"lock", BenchmarkProfileDisabledLock},
		{"spin", BenchmarkProfileDisabledSpin},
		{"block", BenchmarkProfileDisabledBlock},
	}
	for _, c := range cases {
		r := testing.Benchmark(c.bench)
		if a := r.AllocsPerOp(); a != 0 {
			t.Errorf("%s: nil-profiler hot path allocates %d allocs/op, want 0", c.name, a)
		}
	}
}
