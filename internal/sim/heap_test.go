package sim

import (
	"sort"
	"testing"
)

// popAll drains q and returns the events in pop order.
func popAll(q *eventQueue) []event {
	out := make([]event, 0, q.len())
	for q.len() > 0 {
		out = append(out, q.pop())
	}
	return out
}

// refSort returns evs sorted by the (when, seq) total order — the
// specification the heap must match exactly.
func refSort(evs []event) []event {
	ref := append([]event(nil), evs...)
	sort.Slice(ref, func(i, j int) bool { return ref[i].less(&ref[j]) })
	return ref
}

// TestEventQueueMatchesReferenceSort drives the 4-ary heap with many
// randomized schedules — duplicate times, interleaved pushes and pops — and
// checks every pop sequence against a reference sort.
func TestEventQueueMatchesReferenceSort(t *testing.T) {
	rng := NewRNG(42)
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(300)
		span := 1 + rng.Intn(20) // small span forces heavy seq tie-breaking
		var q eventQueue
		var all []event
		seq := uint64(0)
		push := func() {
			seq++
			ev := event{when: Time(rng.Intn(span)), seq: seq}
			all = append(all, ev)
			q.push(ev)
		}
		var popped []event
		for i := 0; i < n; i++ {
			push()
			// Interleave pops so the heap is exercised at many sizes, not
			// just fill-then-drain.
			if q.len() > 0 && rng.Intn(3) == 0 {
				popped = append(popped, q.pop())
			}
		}
		popped = append(popped, popAll(&q)...)
		if len(popped) != len(all) {
			t.Fatalf("trial %d: popped %d events, pushed %d", trial, len(popped), len(all))
		}
		// Interleaved pops may legally run ahead of later pushes, so check
		// completeness here (nothing lost, nothing duplicated, nothing
		// corrupted); strict ordering is covered by the drain-only test.
		seen := map[uint64]Time{}
		for _, ev := range popped {
			if _, dup := seen[ev.seq]; dup {
				t.Fatalf("trial %d: seq %d popped twice", trial, ev.seq)
			}
			seen[ev.seq] = ev.when
		}
		for _, ev := range all {
			if w, ok := seen[ev.seq]; !ok || w != ev.when {
				t.Fatalf("trial %d: event seq=%d lost or corrupted", trial, ev.seq)
			}
		}
	}
}

// TestEventQueueDrainOrder checks the strict pop order on fill-then-drain
// schedules, where pop order must exactly equal the reference sort.
func TestEventQueueDrainOrder(t *testing.T) {
	rng := NewRNG(7)
	for trial := 0; trial < 100; trial++ {
		n := 1 + rng.Intn(500)
		var q eventQueue
		var all []event
		for i := 0; i < n; i++ {
			ev := event{when: Time(rng.Intn(30)), seq: uint64(i + 1)}
			all = append(all, ev)
			q.push(ev)
		}
		got := popAll(&q)
		ref := refSort(all)
		for i := range ref {
			if got[i].when != ref[i].when || got[i].seq != ref[i].seq {
				t.Fatalf("trial %d: pop %d = (%v,%d), want (%v,%d)",
					trial, i, got[i].when, got[i].seq, ref[i].when, ref[i].seq)
			}
		}
	}
}

// TestEngineOrderMatchesReferenceSort checks the property end to end: a
// random mix of At and After schedules fires in (when, seq) order.
func TestEngineOrderMatchesReferenceSort(t *testing.T) {
	rng := NewRNG(99)
	for trial := 0; trial < 50; trial++ {
		e := NewEngine()
		var fired []int
		n := 1 + rng.Intn(100)
		type stamp struct {
			id   int
			when Time
		}
		var stamps []stamp
		for i := 0; i < n; i++ {
			i := i
			when := Time(rng.Intn(25))
			stamps = append(stamps, stamp{id: i, when: when})
			if rng.Intn(2) == 0 {
				e.At(when, func() { fired = append(fired, i) })
			} else {
				e.After(when, func() { fired = append(fired, i) }) // now==0, same time
			}
		}
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		sort.SliceStable(stamps, func(a, b int) bool { return stamps[a].when < stamps[b].when })
		for i := range stamps {
			if fired[i] != stamps[i].id {
				t.Fatalf("trial %d: firing order diverges at %d: got id %d, want %d",
					trial, i, fired[i], stamps[i].id)
			}
		}
	}
}

// FuzzEventQueue feeds arbitrary byte strings as (op, when) programs to the
// heap: each byte either pushes an event at a derived time or pops, and the
// final drain must come out sorted by (when, seq) with nothing lost.
func FuzzEventQueue(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 0xff, 0x80, 7, 7, 7})
	f.Add([]byte{})
	f.Add([]byte{0xaa, 0x55, 0x00, 0xff, 0x10, 0x20, 0x30})
	f.Fuzz(func(t *testing.T, program []byte) {
		var q eventQueue
		seq := uint64(0)
		live := map[uint64]Time{}
		var lastPopped *event
		for _, b := range program {
			if b&0x80 != 0 && q.len() > 0 {
				ev := q.pop()
				want, ok := live[ev.seq]
				if !ok || want != ev.when {
					t.Fatalf("popped unknown/corrupt event (when=%v seq=%d)", ev.when, ev.seq)
				}
				delete(live, ev.seq)
				// Within a drain-only stretch pops must be non-decreasing in
				// (when, seq); a push can legally go below the last popped
				// value, so reset the watermark on push.
				if lastPopped != nil && ev.less(lastPopped) {
					t.Fatalf("pop went backwards: (%v,%d) after (%v,%d)",
						ev.when, ev.seq, lastPopped.when, lastPopped.seq)
				}
				evCopy := ev
				lastPopped = &evCopy
			} else {
				seq++
				ev := event{when: Time(b & 0x7f), seq: seq}
				live[ev.seq] = ev.when
				q.push(ev)
				lastPopped = nil
			}
		}
		// Drain: strictly ordered and complete.
		var prev *event
		for q.len() > 0 {
			ev := q.pop()
			if prev != nil && ev.less(prev) {
				t.Fatalf("drain out of order: (%v,%d) after (%v,%d)", ev.when, ev.seq, prev.when, prev.seq)
			}
			want, ok := live[ev.seq]
			if !ok || want != ev.when {
				t.Fatalf("drained unknown/corrupt event (when=%v seq=%d)", ev.when, ev.seq)
			}
			delete(live, ev.seq)
			evCopy := ev
			prev = &evCopy
		}
		if len(live) != 0 {
			t.Fatalf("%d events lost in the heap", len(live))
		}
	})
}
