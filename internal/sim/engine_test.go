package sim

import (
	"errors"
	"testing"
)

func TestEngineRunsEventsInTimeOrder(t *testing.T) {
	e := NewEngine()
	var got []int
	e.At(30, func() { got = append(got, 3) })
	e.At(10, func() { got = append(got, 1) })
	e.At(20, func() { got = append(got, 2) })
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if e.Now() != 30 {
		t.Fatalf("Now = %v, want 30", e.Now())
	}
}

func TestEngineSameTimeEventsFireInScheduleOrder(t *testing.T) {
	e := NewEngine()
	var got []int
	for i := 0; i < 50; i++ {
		i := i
		e.At(5, func() { got = append(got, i) })
	}
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	for i := range got {
		if got[i] != i {
			t.Fatalf("tie-break order broken at %d: %v", i, got[:i+1])
		}
	}
}

func TestEngineAfterSchedulesRelative(t *testing.T) {
	e := NewEngine()
	var at Time
	e.At(100, func() {
		e.After(50, func() { at = e.Now() })
	})
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if at != 150 {
		t.Fatalf("nested After fired at %v, want 150", at)
	}
}

func TestEnginePastSchedulingClampsToNow(t *testing.T) {
	e := NewEngine()
	var at Time = -1
	e.At(100, func() {
		e.At(10, func() { at = e.Now() }) // in the past
	})
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if at != 100 {
		t.Fatalf("past event fired at %v, want clamped to 100", at)
	}
}

func TestEngineStop(t *testing.T) {
	e := NewEngine()
	ran := 0
	e.At(1, func() { ran++; e.Stop() })
	e.At(2, func() { ran++ })
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if ran != 1 {
		t.Fatalf("ran %d events after Stop, want 1", ran)
	}
	if e.Pending() != 1 {
		t.Fatalf("Pending = %d, want 1", e.Pending())
	}
}

func TestEngineRunFor(t *testing.T) {
	e := NewEngine()
	var fired []Time
	for _, at := range []Time{10, 20, 30, 40} {
		at := at
		e.At(at, func() { fired = append(fired, at) })
	}
	if err := e.RunFor(25); err != nil {
		t.Fatalf("RunFor: %v", err)
	}
	if len(fired) != 2 {
		t.Fatalf("fired %v, want events at 10 and 20 only", fired)
	}
	if e.Now() != 25 {
		t.Fatalf("Now = %v, want 25", e.Now())
	}
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(fired) != 4 {
		t.Fatalf("after full Run fired %v, want all 4", fired)
	}
}

func TestEngineRunForReentrancyGuard(t *testing.T) {
	e := NewEngine()
	var inner, innerRun error
	e.At(1, func() {
		inner = e.RunFor(10)
		innerRun = e.Run()
	})
	if err := e.RunFor(5); err != nil {
		t.Fatalf("RunFor: %v", err)
	}
	if inner == nil {
		t.Fatal("reentrant RunFor did not error")
	}
	if innerRun == nil {
		t.Fatal("Run inside RunFor did not error")
	}
}

func TestEngineRunForHonoursStop(t *testing.T) {
	e := NewEngine()
	ran := 0
	e.At(1, func() { ran++; e.Stop() })
	e.At(2, func() { ran++ })
	if err := e.RunFor(10); err != nil {
		t.Fatalf("RunFor: %v", err)
	}
	if ran != 1 {
		t.Fatalf("ran %d events after Stop, want 1", ran)
	}
	if e.Pending() != 1 {
		t.Fatalf("Pending = %d, want 1", e.Pending())
	}
	// Stop must also freeze the clock at the stop point, not jump to the
	// deadline the way an exhausted window does.
	if e.Now() != 1 {
		t.Fatalf("Now = %v after Stop, want 1", e.Now())
	}
}

func TestEngineRunForReportsDeadlock(t *testing.T) {
	e := NewEngine()
	c := e.Spawn("stuck", func(c *Coro) { c.Park() })
	c.Start(0)
	err := e.RunFor(100)
	if err == nil {
		t.Fatal("RunFor returned nil with a parked-forever coro and a drained queue")
	}
	if !errors.Is(err, ErrDeadlock) {
		t.Fatalf("RunFor error = %v, want ErrDeadlock", err)
	}
	// RunFor leaves state intact for inspection; a follow-up Run performs
	// the actual wind-down.
	if e.Live() != 1 {
		t.Fatalf("Live = %d after RunFor, want 1 (no wind-down)", e.Live())
	}
	if err := e.Run(); err == nil {
		t.Fatal("follow-up Run should still report the deadlock")
	}
	if e.Live() != 0 {
		t.Fatalf("Live = %d after Run, want 0", e.Live())
	}
}

func TestEngineRunForNoDeadlockWithFutureWakeup(t *testing.T) {
	e := NewEngine()
	c := e.Spawn("sleeper", func(c *Coro) { c.Sleep(1000) })
	c.Start(0)
	// The wakeup at t=1000 lies beyond the window: not a deadlock.
	if err := e.RunFor(10); err != nil {
		t.Fatalf("RunFor: %v", err)
	}
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestEngineRunForSurfacesCoroFailure(t *testing.T) {
	e := NewEngine()
	c := e.Spawn("boom", func(c *Coro) { panic("kaboom") })
	c.Start(5)
	err := e.RunFor(10)
	if err == nil {
		t.Fatal("RunFor returned nil despite coro panic")
	}
	// Unwind for goroutine hygiene.
	_ = e.Run()
}

func TestCoroSleepAdvancesVirtualTime(t *testing.T) {
	e := NewEngine()
	var seen []Time
	c := e.Spawn("sleeper", func(c *Coro) {
		seen = append(seen, c.Now())
		c.Sleep(100)
		seen = append(seen, c.Now())
		c.Sleep(0)
		seen = append(seen, c.Now())
	})
	c.Start(10)
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	want := []Time{10, 110, 110}
	for i := range want {
		if seen[i] != want[i] {
			t.Fatalf("times = %v, want %v", seen, want)
		}
	}
	if !c.Done() {
		t.Fatal("coro not done")
	}
}

func TestCoroParkUnpark(t *testing.T) {
	e := NewEngine()
	var wokeAt Time
	sleeper := e.Spawn("sleeper", func(c *Coro) {
		c.Park()
		wokeAt = c.Now()
	})
	waker := e.Spawn("waker", func(c *Coro) {
		c.Sleep(500)
		sleeper.Unpark(25)
	})
	sleeper.Start(0)
	waker.Start(0)
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if wokeAt != 525 {
		t.Fatalf("woke at %v, want 525", wokeAt)
	}
}

func TestUnparkNonParkedPanics(t *testing.T) {
	e := NewEngine()
	var recovered interface{}
	c := e.Spawn("c", func(c *Coro) { c.Sleep(10) })
	e.At(0, func() {
		defer func() { recovered = recover() }()
		c.Unpark(0)
	})
	c.Start(5)
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if recovered == nil {
		t.Fatal("Unpark of non-parked coro did not panic")
	}
}

func TestDeadlockDetected(t *testing.T) {
	e := NewEngine()
	c := e.Spawn("stuck", func(c *Coro) { c.Park() })
	c.Start(0)
	err := e.Run()
	if err == nil {
		t.Fatal("Run returned nil for a parked-forever coro")
	}
	if e.Live() != 0 {
		t.Fatalf("Live = %d after Run, want 0 (shutdown must unwind)", e.Live())
	}
}

func TestCoroPanicSurfacesAsError(t *testing.T) {
	e := NewEngine()
	c := e.Spawn("boom", func(c *Coro) {
		c.Sleep(5)
		panic("kaboom")
	})
	c.Start(0)
	err := e.Run()
	if err == nil {
		t.Fatal("Run returned nil despite coro panic")
	}
	if e.Live() != 0 {
		t.Fatalf("Live = %d, want 0", e.Live())
	}
}

func TestShutdownUnwindsUnstartedCoro(t *testing.T) {
	e := NewEngine()
	_ = e.Spawn("never-started", func(c *Coro) { c.Sleep(1) })
	// No events at all: Run must still unwind the spawned goroutine.
	err := e.Run()
	if err == nil {
		t.Fatal("expected deadlock error for never-started coro")
	}
	if e.Live() != 0 {
		t.Fatalf("Live = %d, want 0", e.Live())
	}
}

func TestDoubleStartPanics(t *testing.T) {
	e := NewEngine()
	c := e.Spawn("c", func(c *Coro) {})
	c.Start(0)
	defer func() {
		if recover() == nil {
			t.Fatal("second Start did not panic")
		}
		// Unwind the spawned goroutine.
		_ = e.Run()
	}()
	c.Start(0)
}

func TestManyCorosInterleaveDeterministically(t *testing.T) {
	run := func() []string {
		e := NewEngine()
		var log []string
		for i := 0; i < 8; i++ {
			i := i
			c := e.Spawn("w", func(c *Coro) {
				for j := 0; j < 5; j++ {
					c.Sleep(Time(10 + i))
					log = append(log, string(rune('a'+i))+string(rune('0'+j)))
				}
			})
			c.Start(Time(i))
		}
		if err := e.Run(); err != nil {
			t.Fatalf("Run: %v", err)
		}
		return log
	}
	a, b := run(), run()
	if len(a) != len(b) || len(a) != 40 {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("runs diverge at %d: %q vs %q", i, a[i], b[i])
		}
	}
}

func TestTracerSeesEventsAndCoroLifecycle(t *testing.T) {
	e := NewEngine()
	var lines []string
	e.SetTracer(func(at Time, what string) {
		lines = append(lines, what)
	})
	c := e.Spawn("w", func(c *Coro) { c.Sleep(10) })
	c.Start(0)
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	var sawEvent, sawStart, sawDone bool
	for _, l := range lines {
		switch {
		case l == "event":
			sawEvent = true
		case l == "coro-start w":
			sawStart = true
		case l == "coro-done w":
			sawDone = true
		}
	}
	if !sawEvent || !sawStart || !sawDone {
		t.Fatalf("trace missing entries: %v", lines)
	}
	// Removing the tracer stops emission.
	e2 := NewEngine()
	count := 0
	e2.SetTracer(func(Time, string) { count++ })
	e2.SetTracer(nil)
	e2.At(1, func() {})
	if err := e2.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if count != 0 {
		t.Fatalf("tracer fired %d times after removal", count)
	}
}
