package sim

import "sync/atomic"

// This file implements batched busy-wait probes: the contention-epoch
// fast path that simulates a spin loop's repeated futile iterations
// without a goroutine round-trip per charge and — inside a provably
// private window of virtual time — arithmetically, many iterations at
// once. The per-iteration slow path is preserved behind
// Engine.SetBatchedSpins(false) and is byte-identical in every simulated
// observable: (now, seq) stream, accessor accrual, module-contention
// accounting, and iteration counts. See DESIGN.md "Engine invariants"
// for the legality argument.

// SpinUnbounded as a SpinSpec.MaxIters means the loop spins until the
// probe succeeds.
const SpinUnbounded int64 = -1

// SpinSpec describes one busy-wait loop shape to Coro.SpinUntil:
//
//	for {
//		charge ProbeCell reference (if any)
//		if Probe() { return ok }
//		if MaxIters reached { return exhausted }
//		charge PauseCost()
//	}
//
// For the batched fast path to be exact the loop must satisfy the
// busy-wait contract:
//
//   - A futile Probe leaves simulated state unchanged (a test-and-set
//     that finds the word held sets no new bits), so re-running it while
//     no other context executes keeps failing with no side effect.
//   - Probe performs at most the one memory reference described by
//     ProbeCell/ProbeAtomic; it reads (and conditionally writes) state
//     via Peek/Poke — the charge has already been applied.
//   - PauseCost depends only on simulated state, so it is constant while
//     no other context runs.
//
// All of the package's locks satisfy the contract by construction; the
// differential spin suites verify the equivalence end to end.
type SpinSpec struct {
	// ProbeCell is the shared word one probe references, nil when the
	// probe inspects plain (uncharged) simulated state.
	ProbeCell *Cell
	// ProbeAtomic charges the probe as a read-modify-write (atomior)
	// instead of a plain reference.
	ProbeAtomic bool
	// Probe evaluates the exit condition at the instant the probe's
	// charge completes, mutating the cell via Peek/Poke if the loop's
	// real probe is a read-modify-write. It reports success.
	Probe func() bool
	// PauseCost is the busy-wait pause charged after each futile probe.
	PauseCost func() Time
	// MaxIters bounds the futile iterations (pauses) before SpinUntil
	// gives up; SpinUnbounded (negative) spins until Probe succeeds, 0
	// probes once and gives up immediately.
	MaxIters int64
	// Label names the loop for virtual-time attribution (e.g.
	// "spin:lock-a"); cthreads.Thread.SpinUntil brackets the loop with a
	// profiler frame when both a label and a profiler are present. Empty
	// means unattributed; the simulation itself never reads it.
	Label string
}

// SpinContext is the accessor-side contract SpinUntil needs beyond plain
// Accessor: splitting one Advance into scheduling-boundary-aware accrual
// steps, so the engine-side spin emulator charges time through exactly
// the same bookkeeping Advance would. cthreads.Thread implements it with
// quantum preemption; simpler accessors report no boundaries.
type SpinContext interface {
	Accessor
	// SpinAccrue books up to d of computation against the context and
	// returns how much was booked along with whether the context hit a
	// scheduling boundary (e.g. its timeslice expired) at the step's end.
	SpinAccrue(d Time) (step Time, boundary bool)
	// SpinBoundary handles a boundary hit by SpinAccrue: either the
	// context is descheduled (true — the caller must suspend until the
	// context is dispatched again) or the boundary is absorbed in place
	// (false).
	SpinBoundary() (descheduled bool)
	// SpinBudget reports how much computation the context can accrue
	// before its next scheduling boundary; MaxTime means no boundary.
	SpinBudget() Time
}

// noBatchDefault is the process-wide default for new engines (false =
// batching on); cmd binaries set it from -no-spin-batch before any
// simulation starts.
var noBatchDefault atomic.Bool

// SetDefaultBatchedSpins sets whether newly created engines batch spin
// probes. Existing engines are unaffected; SetBatchedSpins overrides
// per engine.
func SetDefaultBatchedSpins(on bool) { noBatchDefault.Store(!on) }

// SetBatchedSpins enables (the default) or disables the batched-spin
// fast path on this engine. Both settings produce byte-identical
// simulated histories — the differential spin suites prove it — so the
// only reason to turn it off is to exercise or measure the slow path.
// Tracer-installed engines take the slow path regardless, keeping the
// schedule/event stream complete.
func (e *Engine) SetBatchedSpins(on bool) { e.noBatch = !on }

// BatchedSpins reports whether the batched-spin fast path is enabled.
func (e *Engine) BatchedSpins() bool { return !e.noBatch }

// spinPC is the resume point of a suspended spin emulation.
type spinPC uint8

const (
	spinProbeStart    spinPC = iota // begin an iteration: reserve the probe's access
	spinAccrue                      // book the next accrual step of the current charge
	spinAfterSleep                  // a step's virtual time has elapsed; check the boundary
	spinAfterBoundary               // boundary handled (or none); continue the charge
	spinProbeEval                   // probe charge complete: evaluate the exit condition
	spinIterEnd                     // pause charge complete: an iteration finished
)

// spinWaitKind distinguishes what a suspended spin emulation is waiting
// for, so SpinUntil can set the coro's parked flag correctly.
type spinWait uint8

const (
	spinWaitNone     spinWait = iota
	spinWaitEvent             // a charge-completion event is queued
	spinWaitDispatch          // preempted; the processor will Unpark the coro
)

// spinState is the resumable state of one SpinUntil call. While the
// owning coro's goroutine is suspended, the engine advances this state
// machine directly from fired events — the goroutine is resumed only
// when the whole loop completes (or the coro is killed).
type spinState struct {
	c    *Coro
	ctx  SpinContext
	spec *SpinSpec

	pc   spinPC
	wait spinWait

	iters int64 // futile iterations (pauses) so far
	ok    bool  // probe succeeded (vs MaxIters exhausted)

	inProbe   bool // current charge is the probe's (vs the pause's)
	remaining Time // unbooked remainder of the current charge
	boundary  bool // last accrual step ended on a scheduling boundary

	probeBase Time // fixed access cost of one probe (0 when no cell)
	probeX    Time // atomic surcharge passed to reserveAccess

	// Steady-state detection for the closed-form fast-forward: an
	// iteration is "clean" when no suspension (i.e. no other context)
	// intervened from its probe reservation through its pause; two
	// consecutive clean iterations with equal (module delay, pause)
	// prove the per-iteration profile is fixed until the next event.
	clean                bool
	haveLast             bool
	lastDelay, lastPause Time
	curDelay, curPause   Time
}

// SpinUntil runs the busy-wait loop described by spec until its probe
// succeeds or MaxIters futile iterations have been charged, returning
// the futile-iteration count and whether the probe succeeded. Each
// iteration charges exactly what the open-coded loop would: one
// ProbeCell reference (with module queueing), then — if futile — one
// PauseCost of computation through ctx's accrual, preemption included.
//
// Fast path: the loop runs as an engine-side state machine, so charges
// that cannot accrue inline cost one event but no goroutine handoff, and
// once two consecutive iterations prove a fixed per-iteration profile,
// whole bursts of futile iterations are fast-forwarded arithmetically
// (see Engine.fastForwardSpin). With batching disabled, or with a tracer
// installed, the loop is open-coded per iteration instead; both paths
// produce byte-identical simulated histories.
func (c *Coro) SpinUntil(ctx SpinContext, spec *SpinSpec) (iters int64, ok bool) {
	e := c.eng
	if e.noBatch || e.tracer != nil {
		return c.spinSlow(ctx, spec)
	}
	s := spinState{c: c, ctx: ctx, spec: spec, pc: spinProbeStart}
	if cell := spec.ProbeCell; cell != nil {
		if spec.ProbeAtomic {
			s.probeX = cell.m.cfg.AtomicExtra
		}
		s.probeBase = cell.m.AccessCost(ctx.Node(), cell.node) + s.probeX
	}
	if e.runSpin(&s) {
		return s.iters, s.ok
	}
	// Suspended: move the state to the heap, hand the coro to the
	// engine, and let fired events drive the emulation to completion.
	hs := new(spinState)
	*hs = s
	c.spin = hs
	c.yieldToEngine()
	c.spin = nil
	return hs.iters, hs.ok
}

// spinSlow is the per-iteration open-coded loop: the reference
// implementation the emulator must match byte for byte.
func (c *Coro) spinSlow(ctx SpinContext, spec *SpinSpec) (iters int64, ok bool) {
	//simlint:allow rawspin -- this IS the reference spin loop that SpinUntil and the fast-forward must match
	for {
		if cell := spec.ProbeCell; cell != nil {
			extra := Time(0)
			if spec.ProbeAtomic {
				extra = cell.m.cfg.AtomicExtra
			}
			cell.m.chargeAccess(ctx, cell.node, extra)
		}
		if spec.Probe() {
			return iters, true
		}
		if spec.MaxIters >= 0 && iters >= spec.MaxIters {
			return iters, false
		}
		iters++
		p := spec.PauseCost()
		ctx.Advance(p)
	}
}

// runSpin advances a spin emulation until it completes (true) or must
// suspend awaiting an event or redispatch (false). It is called first
// synchronously from SpinUntil and then from Engine.fire each time one
// of the coro's events pops while c.spin is set.
//
// Each charge is booked through SpinContext.SpinAccrue in
// boundary-bounded steps, each step advancing virtual time exactly as
// the equivalent Coro.Sleep would: inline when the engine's self-wakeup
// conditions hold (one seq bump, clock forward), otherwise by scheduling
// a continuation event carrying the coro — the same (when, seq) the slow
// path's sleep event would occupy, so downstream tie-breaking is
// unchanged.
func (e *Engine) runSpin(s *spinState) bool {
	for {
		switch s.pc {
		case spinProbeStart:
			s.clean = true
			if cell := s.spec.ProbeCell; cell != nil {
				cost, delay := cell.m.reserveAccess(s.ctx.Node(), cell.node, s.probeX)
				s.curDelay = delay
				s.remaining = cost
				s.inProbe = true
				s.pc = spinAccrue
			} else {
				s.curDelay = 0
				s.pc = spinProbeEval
			}

		case spinAccrue:
			step, boundary := s.ctx.SpinAccrue(s.remaining)
			s.remaining -= step
			s.boundary = boundary
			s.pc = spinAfterSleep
			when := e.now + step
			if e.noInline || !e.canInline(when) {
				e.afterCoro(step, s.c)
				s.clean = false
				s.wait = spinWaitEvent
				return false
			}
			e.advanceInline(when)

		case spinAfterSleep:
			s.wait = spinWaitNone
			s.pc = spinAfterBoundary
			if s.boundary && s.ctx.SpinBoundary() {
				// Preempted mid-charge: the processor's next dispatch of
				// this context resumes the emulation via Unpark.
				s.clean = false
				s.wait = spinWaitDispatch
				s.c.parked = true
				return false
			}

		case spinAfterBoundary:
			s.wait = spinWaitNone
			if s.remaining > 0 {
				s.pc = spinAccrue
				continue
			}
			if s.inProbe {
				s.pc = spinProbeEval
			} else {
				s.pc = spinIterEnd
			}

		case spinProbeEval:
			if s.spec.Probe() {
				s.ok = true
				return true
			}
			if max := s.spec.MaxIters; max >= 0 && s.iters >= max {
				s.ok = false
				return true
			}
			s.iters++
			p := s.spec.PauseCost()
			if p < 0 {
				p = 0
			}
			s.curPause = p
			s.remaining = p
			s.inProbe = false
			s.pc = spinAccrue

		case spinIterEnd:
			if s.clean {
				if s.haveLast && s.lastDelay == s.curDelay && s.lastPause == s.curPause {
					e.fastForwardSpin(s)
				}
				s.haveLast = true
				s.lastDelay, s.lastPause = s.curDelay, s.curPause
			} else {
				// A suspension intervened: other contexts may have run, so
				// the measured profile cannot be paired across it.
				s.haveLast = false
			}
			s.pc = spinProbeStart
		}
	}
}

// maxSpinBatch bounds one fast-forward so the seq arithmetic below can
// never overflow; longer spins simply fast-forward again next iteration.
const maxSpinBatch = int64(1) << 40

// fastForwardSpin is the contention-epoch fast path: having observed two
// consecutive iterations with identical (module delay D, pause P) and no
// intervening suspension, every further iteration up to the next event
// is provably identical — no other context can run inside the window, so
// the probe stays futile, PauseCost stays P, and the module recurrence
// start = max(free, now) stays in the same regime (D = max(0, service −
// base − P) from the second iteration on). It therefore advances k whole
// iterations of length L = probeBase + D + P in one step:
//
//	k    = ⌊window / L⌋ bounded by MaxIters
//	now += k·L, seq += k·(charges per iteration)
//	ctx accrues k·L of computation (busy time, timeslice)
//	module: accesses += k, queueDelay += k·D, free += k·L
//
// window is bounded by the next queued event (strictly: an equal-time
// event would fire first), RunFor's deadline (inclusive), and the
// context's remaining timeslice (strictly: the boundary iteration runs
// per charge), so every skipped charge individually satisfied the inline
// self-wakeup conditions and the (now, seq) stream is byte-identical to
// charging them one by one.
func (e *Engine) fastForwardSpin(s *spinState) {
	if e.noInline || e.tracer != nil || e.stopped {
		return
	}
	L := s.probeBase + s.curDelay + s.curPause
	if L <= 0 {
		// Zero-length iterations make no progress on any path; leave the
		// per-iteration loop to preserve the slow path's semantics.
		return
	}
	end := MaxTime
	bounded := false
	if e.queue.len() > 0 {
		end = e.queue.a[0].when - 1
		bounded = true
	}
	if e.limited && e.limit < end {
		end = e.limit
		bounded = true
	}
	if b := s.ctx.SpinBudget(); b != MaxTime && b-1 < end-e.now {
		end = e.now + b - 1
		bounded = true
	}
	var k int64
	if bounded {
		if end <= e.now {
			return
		}
		k = int64((end - e.now) / L)
	} else if s.spec.MaxIters < 0 {
		// Nothing bounds the loop: the slow path would spin forever, so
		// must we (per iteration, keeping the hang observable).
		return
	} else {
		k = maxSpinBatch
	}
	if s.spec.MaxIters >= 0 {
		if rem := s.spec.MaxIters - s.iters; rem < k {
			k = rem
		}
	}
	if lim := int64((MaxTime - 1 - e.now) / L); k > lim {
		k = lim
	}
	if k > maxSpinBatch {
		k = maxSpinBatch
	}
	if k <= 0 {
		return
	}

	total := Time(k) * L
	chargesPerIter := int64(1)
	if s.spec.ProbeCell != nil {
		chargesPerIter++
	}
	e.seq += uint64(k * chargesPerIter)
	e.now += total
	step, boundary := s.ctx.SpinAccrue(total)
	if step != total || boundary {
		panic("sim: spin fast-forward crossed a scheduling boundary")
	}
	if cell := s.spec.ProbeCell; cell != nil {
		m := cell.m
		m.accesses[cell.node] += uint64(k)
		if m.cfg.ModuleService > 0 {
			m.queueDelay[cell.node] += Time(k) * s.curDelay
			m.moduleFree[cell.node] += total
		}
	}
	s.iters += k
	e.spinFastForwards++
	e.spinBatchedIters += uint64(k)
	if e.attr != nil {
		e.attr.SpinFastForward(e.now, k)
	}
}
