package sim

import (
	"testing"
)

// fakeAccessor records charged time for cell/latency tests.
type fakeAccessor struct {
	node    int
	charged Time
}

func (f *fakeAccessor) Node() int      { return f.node }
func (f *fakeAccessor) Advance(d Time) { f.charged += d }

func TestConfigDefaults(t *testing.T) {
	m := NewMachine(Config{})
	cfg := m.Config()
	if cfg.Nodes != 32 {
		t.Errorf("Nodes = %d, want 32", cfg.Nodes)
	}
	if cfg.RemoteAccess != 4*cfg.LocalAccess {
		t.Errorf("RemoteAccess = %v, want 4×local (%v)", cfg.RemoteAccess, 4*cfg.LocalAccess)
	}
	if cfg.ContextSwitch <= 0 || cfg.Wakeup <= 0 || cfg.Instr <= 0 {
		t.Errorf("cost defaults not filled: %+v", cfg)
	}
}

func TestAccessCostLocalVsRemote(t *testing.T) {
	m := NewMachine(Config{Nodes: 4, LocalAccess: 100, RemoteAccess: 400})
	if got := m.AccessCost(2, 2); got != 100 {
		t.Errorf("local cost = %v, want 100", got)
	}
	if got := m.AccessCost(2, 3); got != 400 {
		t.Errorf("remote cost = %v, want 400", got)
	}
}

func TestCellChargesAndMutates(t *testing.T) {
	m := NewMachine(Config{Nodes: 2, LocalAccess: 10, RemoteAccess: 40, AtomicExtra: 5})
	c := m.NewCell(0, "x", 7)

	local := &fakeAccessor{node: 0}
	if v := c.Load(local); v != 7 {
		t.Errorf("Load = %d, want 7", v)
	}
	if local.charged != 10 {
		t.Errorf("local Load charged %v, want 10", local.charged)
	}

	remote := &fakeAccessor{node: 1}
	c.Store(remote, 9)
	if remote.charged != 40 {
		t.Errorf("remote Store charged %v, want 40", remote.charged)
	}
	if c.Peek() != 9 {
		t.Errorf("Peek = %d, want 9", c.Peek())
	}

	remote.charged = 0
	if old := c.AtomicOr(remote, 0x10); old != 9 {
		t.Errorf("AtomicOr old = %d, want 9", old)
	}
	if remote.charged != 45 {
		t.Errorf("remote AtomicOr charged %v, want 45", remote.charged)
	}
	if c.Peek() != 0x19 {
		t.Errorf("after AtomicOr value = %#x, want 0x19", c.Peek())
	}
}

func TestCellAtomicAddAndCAS(t *testing.T) {
	m := NewMachine(Config{Nodes: 1})
	c := m.NewCell(0, "n", 5)
	a := &fakeAccessor{node: 0}
	if got := c.AtomicAdd(a, -2); got != 3 {
		t.Errorf("AtomicAdd = %d, want 3", got)
	}
	if !c.CompareAndSwap(a, 3, 10) {
		t.Error("CAS(3,10) failed on value 3")
	}
	if c.CompareAndSwap(a, 3, 11) {
		t.Error("CAS(3,11) succeeded on value 10")
	}
	if c.Peek() != 10 {
		t.Errorf("value = %d, want 10", c.Peek())
	}
}

func TestCellTestAndSetSemantics(t *testing.T) {
	m := NewMachine(Config{Nodes: 1})
	c := m.NewCell(0, "lock", 0)
	a := &fakeAccessor{node: 0}
	if old := c.AtomicOr(a, 1); old != 0 {
		t.Fatalf("first TAS got %d, want 0 (acquired)", old)
	}
	if old := c.AtomicOr(a, 1); old != 1 {
		t.Fatalf("second TAS got %d, want 1 (busy)", old)
	}
	c.Store(a, 0)
	if old := c.AtomicOr(a, 1); old != 0 {
		t.Fatalf("TAS after release got %d, want 0", old)
	}
}

func TestNewCellBadNodePanics(t *testing.T) {
	m := NewMachine(Config{Nodes: 2})
	defer func() {
		if recover() == nil {
			t.Fatal("NewCell on node 5 of a 2-node machine did not panic")
		}
	}()
	m.NewCell(5, "bad", 0)
}

func TestTimeString(t *testing.T) {
	cases := []struct {
		in   Time
		want string
	}{
		{500, "500ns"},
		{40790, "40.79µs"},
		{3207 * Millisecond, "3.207s"},
		{2636 * Microsecond, "2.64ms"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("(%d).String() = %q, want %q", int64(c.in), got, c.want)
		}
	}
}

func TestModuleContentionQueues(t *testing.T) {
	m := NewMachine(Config{Nodes: 2, LocalAccess: 10, RemoteAccess: 40, AtomicExtra: 0, ModuleService: 100})
	cell := m.NewCell(0, "hot", 0)
	var costs []Time
	for i := 0; i < 3; i++ {
		c := m.Engine().Spawn("a", func(co *Coro) {
			a := &coroAccessor{c: co}
			start := co.Now()
			cell.Load(a)
			costs = append(costs, co.Now()-start)
		})
		c.Start(0)
	}
	if err := m.Engine().Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	// Three simultaneous accesses serialize at one per 100: delays 0, 100,
	// 200 on top of the base latency of 10 (accessor node is 0 → local).
	want := []Time{10, 110, 210}
	for i := range want {
		if costs[i] != want[i] {
			t.Fatalf("costs = %v, want %v", costs, want)
		}
	}
	if m.ModuleQueueDelay(0) != 300 {
		t.Fatalf("queue delay = %v, want 300", m.ModuleQueueDelay(0))
	}
	if m.ModuleAccesses(0) != 3 {
		t.Fatalf("accesses = %d, want 3", m.ModuleAccesses(0))
	}
}

func TestModuleContentionDisabledByDefault(t *testing.T) {
	m := NewMachine(Config{Nodes: 1, LocalAccess: 10})
	cell := m.NewCell(0, "x", 0)
	c := m.Engine().Spawn("a", func(co *Coro) {
		a := &coroAccessor{c: co}
		start := co.Now()
		cell.Load(a)
		cell.Load(a)
		if d := co.Now() - start; d != 20 {
			t.Errorf("two back-to-back loads cost %v, want 20 (no queuing)", d)
		}
	})
	c.Start(0)
	if err := m.Engine().Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestPresets(t *testing.T) {
	gp := GP1000Config()
	uma := UMAConfig()
	norma := NORMAConfig()
	hot := HotSpotConfig()
	if uma.RemoteAccess != uma.LocalAccess {
		t.Error("UMA remote != local")
	}
	if norma.RemoteAccess <= gp.RemoteAccess {
		t.Error("NORMA remote not above GP1000's")
	}
	if hot.ModuleService == 0 {
		t.Error("HotSpot preset has no module service time")
	}
}
