package sim

import "fmt"

// Coro is a simulated execution context: a goroutine that runs real Go code
// but advances only when the engine dispatches it, and returns control
// whenever it sleeps or parks. Exactly one Coro (or the engine loop) is
// active at any moment, so code inside a Coro may freely read and write
// simulated state without synchronization.
//
// Coros are created with Engine.Spawn and begin execution when first
// dispatched (Coro.Start schedules that).
type Coro struct {
	eng    *Engine
	name   string
	id     uint64
	resume chan struct{}

	started bool
	done    bool
	killed  bool
	parked  bool

	// spin, when non-nil, is the suspended SpinUntil emulation this
	// coro's events drive instead of resuming the goroutine (see
	// Engine.fire and Coro.SpinUntil).
	spin *spinState
}

// Spawn creates a Coro that will run fn. The coro does not execute until
// Start (or a manual Unpark) schedules it. The name appears in error
// messages.
func (e *Engine) Spawn(name string, fn func(c *Coro)) *Coro {
	e.coroSeq++
	c := &Coro{eng: e, name: name, id: e.coroSeq, resume: make(chan struct{})}
	e.live[c] = struct{}{}
	go func() {
		<-c.resume
		defer func() {
			c.done = true
			delete(e.live, c)
			if r := recover(); r != nil && r != errKilled {
				e.fail(fmt.Errorf("sim: coro %q panicked: %v", c.name, r))
			}
			e.trace("coro-done " + c.name)
			e.yield <- struct{}{}
		}()
		if c.killed {
			panic(errKilled)
		}
		e.trace("coro-start " + c.name)
		fn(c)
	}()
	return c
}

// Start schedules the coro to begin execution after delay d.
func (c *Coro) Start(d Time) {
	if c.started {
		panic(fmt.Sprintf("sim: coro %q started twice", c.name))
	}
	c.started = true
	c.eng.afterCoro(d, c)
}

// Name returns the coro's diagnostic name.
func (c *Coro) Name() string { return c.name }

// ID returns the coro's spawn-order number (1 for the first Spawn on its
// engine). Shutdown unwinds live coros in this order.
func (c *Coro) ID() uint64 { return c.id }

// Done reports whether the coro's function has returned.
func (c *Coro) Done() bool { return c.done }

// Engine returns the engine this coro belongs to.
func (c *Coro) Engine() *Engine { return c.eng }

// Now reports the current virtual time.
func (c *Coro) Now() Time { return c.eng.now }

// yieldToEngine returns control to the engine and blocks until redispatched.
// Must only be called from inside the coro's own goroutine.
func (c *Coro) yieldToEngine() {
	//simlint:allow virtualtime -- the coro/engine handoff is the one place real channels implement virtual time
	c.eng.yield <- struct{}{}
	//simlint:allow virtualtime -- the coro/engine handoff is the one place real channels implement virtual time
	<-c.resume
	if c.killed {
		panic(errKilled)
	}
}

// Sleep advances the coro's virtual time by d: other events run in the
// interim, exactly as if the coro had scheduled its own wakeup and yielded.
// Negative durations are treated as zero (same-time events still run
// first, in scheduling order).
//
// Fast path: when the wakeup at now+d is strictly earlier than every
// pending event, the engine invariant (one active context, completion-time
// dispatch order) guarantees this coro would be dispatched next with
// nothing running in between — so the engine advances now and seq in place
// (a "virtual dispatch") and the coro keeps running, skipping the heap
// push/pop and the two goroutine handoffs. Equal wakeup times must take
// the slow path: an already-queued event at the same time holds a smaller
// seq and fires first. Tracer-installed engines also take the slow path so
// the schedule/event stream stays complete, a killed coro must reach
// yieldToEngine to unwind, and RunFor's window bounds inline advancement.
func (c *Coro) Sleep(d Time) {
	e := c.eng
	if d < 0 {
		d = 0
	}
	if !e.noInline && !c.killed {
		if when := e.now + d; e.canInline(when) {
			e.advanceInline(when)
			return
		}
	}
	e.afterCoro(d, c)
	c.yieldToEngine()
}

// Park suspends the coro indefinitely; it resumes only when another
// activity calls Unpark.
func (c *Coro) Park() {
	c.parked = true
	c.yieldToEngine()
}

// Unpark schedules a parked coro to resume after delay d. Calling Unpark on
// a coro that is not parked is a programming error in the layer above and
// panics, because the double dispatch would corrupt the interleaving.
func (c *Coro) Unpark(d Time) {
	if !c.parked {
		panic(fmt.Sprintf("sim: Unpark of non-parked coro %q", c.name))
	}
	c.parked = false
	c.eng.afterCoro(d, c)
}

// Parked reports whether the coro is suspended waiting for Unpark.
func (c *Coro) Parked() bool { return c.parked }
