package sim

import (
	"fmt"
	"reflect"
	"testing"
)

// spinAccessor implements SpinContext for engine-level tests: plain
// accrual with no scheduling boundaries (the preempting implementation is
// exercised by the cthreads and locks differential suites).
type spinAccessor struct {
	c    *Coro
	node int
	busy Time
}

func (a *spinAccessor) Node() int { return a.node }
func (a *spinAccessor) Advance(d Time) {
	if d < 0 {
		d = 0
	}
	a.busy += d
	a.c.Sleep(d)
}
func (a *spinAccessor) SpinAccrue(d Time) (Time, bool) { a.busy += d; return d, false }
func (a *spinAccessor) SpinBoundary() bool             { return false }
func (a *spinAccessor) SpinBudget() Time               { return MaxTime }

// spinWorkloadParams shapes one differential spin workload.
type spinWorkloadParams struct {
	seed    uint64
	svc     Time // ModuleService
	workers int
	rounds  int
	noise   int // unrelated timer events that cut batching windows
}

// spinObs is everything observable a spin workload produced. Two runs
// of the same workload must produce deeply equal spinObs regardless of
// the batched-spin and inline-wakeup settings.
type spinObs struct {
	log      []string
	finalNow Time
	finalSeq uint64
	busy     []Time
	accesses []uint64
	qdelay   []Time
	err      string
}

// runSpinWorkload drives a token-passing ring through SpinUntil: worker i
// busy-waits (charged probes of the shared token cell, fixed per-round
// pauses drawn from a forked RNG) for the token values congruent to i,
// does some work, and passes the token on with a charged store. Workers
// start staggered, so the early phase has solitary spinners (batching
// windows) and the steady state has all workers' charges interleaving
// (per-event emulation). Bounded pre-spins exercise MaxIters exhaustion.
func runSpinWorkload(tb testing.TB, p spinWorkloadParams, batched, inline bool) spinObs {
	tb.Helper()
	m := NewMachine(Config{Nodes: 3, ModuleService: p.svc, Seed: p.seed})
	e := m.Engine()
	e.SetBatchedSpins(batched)
	e.SetInlineWakeups(inline)
	token := m.NewCell(0, "token", 0)
	obs := spinObs{}
	logf := func(format string, args ...any) {
		obs.log = append(obs.log, fmt.Sprintf("%d/%d ", e.now, e.seq)+fmt.Sprintf(format, args...))
	}
	for i := 0; i < p.noise; i++ {
		e.At(Time(i+1)*537*Microsecond, func() {})
	}
	rng := NewRNG(p.seed)
	for i := 0; i < p.workers; i++ {
		i := i
		r := rng.Fork()
		a := &spinAccessor{node: i % m.Nodes()}
		c := e.Spawn(fmt.Sprintf("w%d", i), func(c *Coro) {
			a.c = c
			for round := 0; round < p.rounds; round++ {
				want := uint64(round*p.workers + i)
				pause := Time(100 + r.Intn(500))
				probe := func() bool { return token.Peek() == want }
				// A bounded warm-up spin that usually exhausts, then the
				// real unbounded wait.
				pre := &SpinSpec{
					ProbeCell: token, ProbeAtomic: i%2 == 0,
					Probe: probe, PauseCost: func() Time { return pause },
					MaxIters: int64(r.Intn(4)),
				}
				iters, ok := c.SpinUntil(a, pre)
				logf("w%d r%d pre iters=%d ok=%v", i, round, iters, ok)
				if !ok {
					spec := &SpinSpec{
						ProbeCell: token, ProbeAtomic: i%2 == 0,
						Probe: probe, PauseCost: func() Time { return pause },
						MaxIters: SpinUnbounded,
					}
					iters, ok = c.SpinUntil(a, spec)
					logf("w%d r%d spin iters=%d ok=%v", i, round, iters, ok)
				}
				a.Advance(Time(1+r.Intn(200)) * Microsecond)
				token.AtomicAdd(a, 1)
				logf("w%d r%d passed", i, round)
			}
		})
		c.Start(Time(i) * 3 * Millisecond)
		obs.busy = append(obs.busy, 0)
		defer func(i int) { obs.busy[i] = a.busy }(i)
	}
	if err := e.Run(); err != nil {
		obs.err = err.Error()
	}
	obs.finalNow, obs.finalSeq = e.now, e.seq
	for n := 0; n < m.Nodes(); n++ {
		obs.accesses = append(obs.accesses, m.ModuleAccesses(n))
		obs.qdelay = append(obs.qdelay, m.ModuleQueueDelay(n))
	}
	return obs
}

// diffSpinObs compares a variant run against the reference.
func diffSpinObs(t *testing.T, name string, ref, got spinObs) {
	t.Helper()
	if ref.finalNow != got.finalNow || ref.finalSeq != got.finalSeq {
		t.Errorf("%s: final (now, seq) = (%d, %d), want (%d, %d)",
			name, got.finalNow, got.finalSeq, ref.finalNow, ref.finalSeq)
	}
	if ref.err != got.err {
		t.Errorf("%s: err %q, want %q", name, got.err, ref.err)
	}
	if !reflect.DeepEqual(ref.busy, got.busy) {
		t.Errorf("%s: busy %v, want %v", name, got.busy, ref.busy)
	}
	if !reflect.DeepEqual(ref.accesses, got.accesses) {
		t.Errorf("%s: module accesses %v, want %v", name, got.accesses, ref.accesses)
	}
	if !reflect.DeepEqual(ref.qdelay, got.qdelay) {
		t.Errorf("%s: module queue delay %v, want %v", name, got.qdelay, ref.qdelay)
	}
	if len(ref.log) != len(got.log) {
		t.Fatalf("%s: %d log records, want %d", name, len(got.log), len(ref.log))
	}
	for i := range ref.log {
		if ref.log[i] != got.log[i] {
			t.Fatalf("%s: log[%d] = %q, want %q", name, i, got.log[i], ref.log[i])
		}
	}
}

// diffSpinModes runs one workload in all four (batched, inline) modes and
// requires byte-identical observations, with the per-iteration slow path
// under inline wakeups as the reference.
func diffSpinModes(t *testing.T, p spinWorkloadParams) {
	t.Helper()
	ref := runSpinWorkload(t, p, false, true)
	for _, mode := range []struct {
		name            string
		batched, inline bool
	}{
		{"batched+inline", true, true},
		{"batched+noinline", true, false},
		{"slow+noinline", false, false},
	} {
		diffSpinObs(t, mode.name, ref, runSpinWorkload(t, p, mode.batched, mode.inline))
	}
}

func TestSpinUntilDifferential(t *testing.T) {
	for _, svc := range []Time{0, 400 * Nanosecond} {
		t.Run(fmt.Sprintf("svc=%v", svc), func(t *testing.T) {
			diffSpinModes(t, spinWorkloadParams{seed: 7, svc: svc, workers: 3, rounds: 3, noise: 2})
		})
	}
}

// FuzzSpinDifferential drives randomized ring workloads — varying module
// service, worker count, and noise events — through all four engine
// modes, requiring identical (now, seq)-stamped logs, busy accrual, and
// module-contention accounting.
func FuzzSpinDifferential(f *testing.F) {
	f.Add(uint64(1), uint8(1), uint8(2), uint8(0), uint8(0))
	f.Add(uint64(2), uint8(3), uint8(3), uint8(4), uint8(1))
	f.Add(uint64(99), uint8(4), uint8(1), uint8(2), uint8(3))
	f.Fuzz(func(t *testing.T, seed uint64, workers, rounds, svcUnits, noise uint8) {
		p := spinWorkloadParams{
			seed:    seed%1000 + 1,
			svc:     Time(svcUnits%8) * 200 * Nanosecond,
			workers: int(workers%4) + 1,
			rounds:  int(rounds%3) + 1,
			noise:   int(noise % 4),
		}
		diffSpinModes(t, p)
	})
}

// TestSpinFastForwardEngages proves the closed-form fast path actually
// fires for a solitary spinner — and that it skips to exactly the state
// the per-iteration path reaches.
func TestSpinFastForwardEngages(t *testing.T) {
	run := func(batched bool) (iters int64, now Time, seq uint64, ffwds, skipped uint64) {
		m := NewMachine(Config{Nodes: 1, ModuleService: 400 * Nanosecond})
		e := m.Engine()
		e.SetBatchedSpins(batched)
		cell := m.NewCell(0, "flag", 0)
		e.After(10*Millisecond, func() { cell.Poke(1) })
		a := &spinAccessor{}
		c := e.Spawn("spinner", func(c *Coro) {
			a.c = c
			spec := &SpinSpec{
				ProbeCell: cell, ProbeAtomic: true,
				Probe:     func() bool { return cell.Peek() != 0 },
				PauseCost: func() Time { return 250 * Nanosecond },
				MaxIters:  SpinUnbounded,
			}
			iters, _ = c.SpinUntil(a, spec)
		})
		c.Start(0)
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		return iters, e.now, e.seq, e.spinFastForwards, e.spinBatchedIters
	}
	slowIters, slowNow, slowSeq, _, _ := run(false)
	fastIters, fastNow, fastSeq, ffwds, skipped := run(true)
	if fastIters != slowIters || fastNow != slowNow || fastSeq != slowSeq {
		t.Errorf("batched (iters=%d now=%d seq=%d) != slow (iters=%d now=%d seq=%d)",
			fastIters, fastNow, fastSeq, slowIters, slowNow, slowSeq)
	}
	if ffwds == 0 || skipped == 0 {
		t.Errorf("fast-forward never engaged (ffwds=%d skipped=%d)", ffwds, skipped)
	}
	if slowIters < 100 {
		t.Errorf("workload too small to be meaningful: %d iters", slowIters)
	}
	if skipped < uint64(slowIters)/2 {
		t.Errorf("fast-forward skipped only %d of %d iterations", skipped, slowIters)
	}
}

// TestSpinMaxIters pins the bounded-spin edge cases: MaxIters 0 probes
// once and gives up without pausing; a bounded spin exhausts at the same
// instant on both paths, including when the fast path forwards straight
// to the bound with no event in sight (where the slow path must not hang
// either, because the bound stops it).
func TestSpinMaxIters(t *testing.T) {
	run := func(batched bool, maxIters int64) (iters int64, ok bool, now Time, seq uint64) {
		m := NewMachine(Config{Nodes: 1})
		e := m.Engine()
		e.SetBatchedSpins(batched)
		cell := m.NewCell(0, "flag", 0)
		a := &spinAccessor{}
		c := e.Spawn("spinner", func(c *Coro) {
			a.c = c
			spec := &SpinSpec{
				ProbeCell: cell,
				Probe:     func() bool { return cell.Peek() != 0 },
				PauseCost: func() Time { return 100 * Nanosecond },
				MaxIters:  maxIters,
			}
			iters, ok = c.SpinUntil(a, spec)
		})
		c.Start(0)
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		return iters, ok, e.now, e.seq
	}
	for _, maxIters := range []int64{0, 1, 7, 1000} {
		si, sok, snow, sseq := run(false, maxIters)
		bi, bok, bnow, bseq := run(true, maxIters)
		if si != maxIters || sok {
			t.Fatalf("slow path: iters=%d ok=%v, want %d false", si, sok, maxIters)
		}
		if bi != si || bok != sok || bnow != snow || bseq != sseq {
			t.Errorf("MaxIters=%d: batched (%d %v %d %d) != slow (%d %v %d %d)",
				maxIters, bi, bok, bnow, bseq, si, sok, snow, sseq)
		}
	}
}

// TestSpinRunForWindow drives a spin across a RunFor deadline: the window
// must bound batching exactly as it bounds inline wakeups, and resuming
// with Run must complete identically to the slow path.
func TestSpinRunForWindow(t *testing.T) {
	run := func(batched bool) (midNow, endNow Time, midSeq, endSeq uint64, iters int64) {
		m := NewMachine(Config{Nodes: 1})
		e := m.Engine()
		e.SetBatchedSpins(batched)
		cell := m.NewCell(0, "flag", 0)
		e.After(5*Millisecond, func() { cell.Poke(1) })
		a := &spinAccessor{}
		c := e.Spawn("spinner", func(c *Coro) {
			a.c = c
			spec := &SpinSpec{
				ProbeCell: cell,
				Probe:     func() bool { return cell.Peek() != 0 },
				PauseCost: func() Time { return 300 * Nanosecond },
				MaxIters:  SpinUnbounded,
			}
			iters, _ = c.SpinUntil(a, spec)
		})
		c.Start(0)
		if err := e.RunFor(2 * Millisecond); err != nil {
			t.Fatal(err)
		}
		midNow, midSeq = e.now, e.seq
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		return midNow, e.now, midSeq, e.seq, iters
	}
	sMidNow, sEndNow, sMidSeq, sEndSeq, sIters := run(false)
	bMidNow, bEndNow, bMidSeq, bEndSeq, bIters := run(true)
	if sMidNow != bMidNow || sMidSeq != bMidSeq {
		t.Errorf("at RunFor deadline: batched (now=%d seq=%d) != slow (now=%d seq=%d)",
			bMidNow, bMidSeq, sMidNow, sMidSeq)
	}
	if sEndNow != bEndNow || sEndSeq != bEndSeq || sIters != bIters {
		t.Errorf("final: batched (now=%d seq=%d iters=%d) != slow (now=%d seq=%d iters=%d)",
			bEndNow, bEndSeq, bIters, sEndNow, sEndSeq, sIters)
	}
}

// TestSpinTracerMidSpin attaches a tracer while a batched spin is in
// flight: from that instant every charge must go through the heap and
// appear in the trace, producing the same schedule/event stream the
// un-batched engine emits.
func TestSpinTracerMidSpin(t *testing.T) {
	run := func(batched bool) (stream []string, finalNow Time, finalSeq uint64) {
		m := NewMachine(Config{Nodes: 1})
		e := m.Engine()
		e.SetBatchedSpins(batched)
		cell := m.NewCell(0, "flag", 0)
		e.After(1*Millisecond, func() {
			e.SetTracer(func(at Time, what string) {
				stream = append(stream, fmt.Sprintf("%d %s", at, what))
			})
		})
		e.After(3*Millisecond, func() { cell.Poke(1) })
		a := &spinAccessor{}
		c := e.Spawn("spinner", func(c *Coro) {
			a.c = c
			spec := &SpinSpec{
				ProbeCell: cell,
				Probe:     func() bool { return cell.Peek() != 0 },
				PauseCost: func() Time { return 400 * Nanosecond },
				MaxIters:  SpinUnbounded,
			}
			c.SpinUntil(a, spec)
		})
		c.Start(0)
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		return stream, e.now, e.seq
	}
	sStream, sNow, sSeq := run(false)
	bStream, bNow, bSeq := run(true)
	if bNow != sNow || bSeq != sSeq {
		t.Errorf("batched (now=%d seq=%d) != slow (now=%d seq=%d)", bNow, bSeq, sNow, sSeq)
	}
	if !reflect.DeepEqual(sStream, bStream) {
		t.Errorf("trace streams differ: batched %d records, slow %d", len(bStream), len(sStream))
	}
	if len(sStream) == 0 {
		t.Error("tracer saw no engine occurrences")
	}
}

// TestSpinUnparkAcrossSuspension checks a spin suspended on a charge
// event still unwinds correctly at engine shutdown (Stop mid-spin).
func TestSpinStopMidSpin(t *testing.T) {
	for _, batched := range []bool{false, true} {
		m := NewMachine(Config{Nodes: 1})
		e := m.Engine()
		e.SetBatchedSpins(batched)
		cell := m.NewCell(0, "flag", 0)
		e.After(1*Millisecond, func() { e.Stop() })
		a := &spinAccessor{}
		c := e.Spawn("spinner", func(c *Coro) {
			a.c = c
			spec := &SpinSpec{
				ProbeCell: cell,
				Probe:     func() bool { return cell.Peek() != 0 },
				PauseCost: func() Time { return 100 * Nanosecond },
				MaxIters:  SpinUnbounded,
			}
			c.SpinUntil(a, spec)
		})
		c.Start(0)
		if err := e.Run(); err != nil {
			t.Fatalf("batched=%v: %v", batched, err)
		}
		if e.Live() != 0 {
			t.Errorf("batched=%v: %d coros leaked past shutdown", batched, e.Live())
		}
	}
}
