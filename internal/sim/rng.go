package sim

// RNG is a small, fast, deterministic pseudo-random stream (splitmix64).
// The simulator uses it wherever randomized behaviour is needed (workload
// generation, randomized backoff) so that runs are exactly reproducible
// from the seed without importing math/rand state into simulated code.
type RNG struct{ state uint64 }

// NewRNG returns a generator seeded with seed (0 is remapped so the stream
// is never degenerate).
func NewRNG(seed uint64) *RNG {
	if seed == 0 {
		seed = 0x9e3779b97f4a7c15
	}
	return &RNG{state: seed}
}

// Uint64 returns the next value in the stream.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a value in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: RNG.Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Int63n returns a value in [0, n). It panics if n <= 0.
func (r *RNG) Int63n(n int64) int64 {
	if n <= 0 {
		panic("sim: RNG.Int63n with non-positive n")
	}
	return int64(r.Uint64() % uint64(n))
}

// Float64 returns a value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Perm returns a pseudo-random permutation of [0, n) as a slice, via an
// in-place Fisher–Yates shuffle. It returns an empty slice for n <= 0.
func (r *RNG) Perm(n int) []int {
	if n <= 0 {
		return []int{}
	}
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Duration returns a Time in [0, d). It panics if d <= 0.
func (r *RNG) Duration(d Time) Time {
	return Time(r.Int63n(int64(d)))
}

// Fork derives an independent stream; useful for giving each simulated
// thread its own deterministic randomness regardless of interleaving.
func (r *RNG) Fork() *RNG {
	return NewRNG(r.Uint64() | 1)
}
