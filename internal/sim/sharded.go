package sim

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Sharded is a conservatively parallel partition of one big simulated
// machine: the node space is split into contiguous shards, each owning
// its processors, its memory modules, a private event queue, and a
// private coroutine set. Shards advance concurrently inside windows
// bounded by the minimum cross-shard communication latency (the
// lookahead), and exchange cross-shard events — posted remote
// references, cross-node wakeups, migrations — at window barriers
// through per-(src,dst) mailboxes.
//
// The legality argument is the spin fast-forward's (DESIGN.md) applied
// one level up. Any physical interaction between nodes on different
// shards takes at least Lookahead of virtual time on the wire, so an
// event fired at t can influence another shard no earlier than
// t+Lookahead. A window [T, T+Lookahead) — T the global minimum pending
// event time — is therefore private to each shard: nothing a peer does
// inside the window can land inside it. Messages buffered during the
// window are merged at the barrier in (when, at, src rank, send order)
// and enter the owner's queue through Engine.scheduleMessage, which
// preserves the sender's schedule instant; the engine's (when, at, seq)
// event order then fires them in exactly the position the serial
// engine's global sequence numbering would have. The one history the
// order cannot reconstruct is a tie in both when and at between events
// born on different shards — workloads below the latency floor of the
// machine cannot produce one, and the differential suites assert
// byte-identical metrics for every shard count on everything in-tree.
//
// Determinism does not depend on the worker count: within a window
// shards touch only their own state, and the barrier merge is a fixed
// total order. Sharded runs with any Workers value produce the same
// history, byte for byte.
type Sharded struct {
	cfg       Config
	lookahead Time
	workers   int

	// shards[i] is the machine owning nodes [bounds[i], bounds[i+1]).
	shards []*Machine
	bounds []int
	// owner[n] is the shard rank owning node n.
	owner []int

	// outbox[src][dst] buffers messages sent by shard src to shard dst
	// during the current window. Written only by src's shard while it
	// advances (shard-private), drained only at the barrier.
	outbox [][][]message

	// edges[src][dst] accumulates delivery diagnostics per mailbox edge,
	// written only at the barrier. Deadlock reports use them to show
	// where cross-shard traffic last flowed.
	edges [][]edgeStat

	// stop requests Run return at the next barrier. Atomic because any
	// goroutine may ask while windows are in flight.
	stop atomic.Bool

	ran bool
}

// message is one buffered cross-shard event: fire fn at when on the
// destination shard, ordered as if scheduled at the sender's instant at.
type message struct {
	when Time
	at   Time
	fn   func()
}

// edgeStat records per-(src,dst) mailbox traffic.
type edgeStat struct {
	// Delivered counts messages handed to the destination shard.
	Delivered uint64
	// Last is the virtual arrival time of the most recent delivery.
	Last Time
}

// ShardOptions configures a Sharded machine.
type ShardOptions struct {
	// Shards is the number of partitions (default 1). Nodes are split
	// into contiguous blocks: shard i owns [i·N/S, (i+1)·N/S).
	Shards int
	// Workers caps how many shards advance concurrently inside a window
	// (default GOMAXPROCS). Purely a throughput knob: the history is
	// identical for every value.
	Workers int
	// Lookahead overrides the safe-window bound. The default — the
	// minimum cross-shard interaction latency, min(RemoteAccess, Wakeup)
	// from the Config — is the largest provably safe value; overriding
	// is for tests that want to stress many tiny windows. A cross-shard
	// Route with delay below the lookahead panics.
	Lookahead Time
}

// NewSharded partitions a machine described by cfg into shards. Each
// shard's Machine spans the full node-id space (cells and threads name
// nodes globally) but must only be driven from code running on that
// shard; MachineFor selects the owner for a node. With Shards <= 1 the
// result is a single serial shard and Run degenerates to a plain
// Engine.Run.
func NewSharded(cfg Config, opts ShardOptions) *Sharded {
	cfg = cfg.withDefaults()
	s := opts.Shards
	if s < 1 {
		s = 1
	}
	if s > cfg.Nodes {
		panic(fmt.Sprintf("sim: %d shards over %d nodes (need at least one node per shard)", s, cfg.Nodes))
	}
	w := opts.Workers
	if w < 1 {
		w = runtime.GOMAXPROCS(0)
	}
	la := opts.Lookahead
	if la == 0 {
		la = cfg.RemoteAccess
		if cfg.Wakeup < la {
			la = cfg.Wakeup
		}
	}
	if la <= 0 {
		panic(fmt.Sprintf("sim: sharded lookahead must be positive, got %v", la))
	}
	sh := &Sharded{
		cfg:       cfg,
		lookahead: la,
		workers:   w,
		shards:    make([]*Machine, s),
		bounds:    make([]int, s+1),
		owner:     make([]int, cfg.Nodes),
		outbox:    make([][][]message, s),
		edges:     make([][]edgeStat, s),
	}
	for i := 0; i < s; i++ {
		m := NewMachine(cfg)
		m.sharded = sh
		m.rank = i
		m.eng.rank = i
		sh.shards[i] = m
		sh.bounds[i] = i * cfg.Nodes / s
		sh.outbox[i] = make([][]message, s)
		sh.edges[i] = make([]edgeStat, s)
	}
	sh.bounds[s] = cfg.Nodes
	for i := 0; i < s; i++ {
		for n := sh.bounds[i]; n < sh.bounds[i+1]; n++ {
			sh.owner[n] = i
		}
	}
	return sh
}

// Shards reports the number of partitions.
func (s *Sharded) Shards() int { return len(s.shards) }

// Lookahead reports the safe-window bound.
func (s *Sharded) Lookahead() Time { return s.lookahead }

// Config returns the (defaulted) machine configuration.
func (s *Sharded) Config() Config { return s.cfg }

// Machine returns shard i's machine.
func (s *Sharded) Machine(i int) *Machine { return s.shards[i] }

// MachineFor returns the machine owning node n. Cells living on n and
// threads executing on n must be created on (and driven from) this
// machine.
func (s *Sharded) MachineFor(n int) *Machine { return s.shards[s.owner[n]] }

// NodeRange reports the contiguous [lo, hi) node block shard i owns.
func (s *Sharded) NodeRange(i int) (lo, hi int) { return s.bounds[i], s.bounds[i+1] }

// RankOf returns the shard rank owning node n.
func (s *Sharded) RankOf(n int) int { return s.owner[n] }

// EdgeStats returns delivery diagnostics for the (src,dst) mailbox edge.
func (s *Sharded) EdgeStats(src, dst int) (delivered uint64, last Time) {
	st := s.edges[src][dst]
	return st.Delivered, st.Last
}

// Stop makes Run return after the windows in flight complete. Safe from
// any goroutine; simulated code stopping its own shard should call the
// local Engine.Stop, which the coordinator also honours at the barrier.
func (s *Sharded) Stop() {
	s.stop.Store(true)
	if len(s.shards) == 1 {
		s.shards[0].eng.Stop()
	}
}

// send buffers one cross-shard event from src's shard to the shard
// owning node to. Called only via Machine.Route, from code running on
// src's shard — the outbox row is shard-private during a window.
func (s *Sharded) send(src *Machine, to int, delay Time, fn func()) {
	if delay < s.lookahead {
		panic(fmt.Sprintf("sim: cross-shard route %d→%d with delay %v below lookahead %v: no physical interaction is that fast, and the window bound would be violated",
			src.rank, s.owner[to], delay, s.lookahead))
	}
	now := src.eng.Now()
	dst := s.owner[to]
	s.outbox[src.rank][dst] = append(s.outbox[src.rank][dst], message{when: now + delay, at: now, fn: fn})
}

// Run executes the partitioned simulation to completion: repeatedly
// pick the global minimum pending event time T, advance every shard
// with work before T+Lookahead concurrently, and exchange mailboxes at
// the barrier. It returns the first shard failure (lowest rank wins,
// deterministically), or a deadlock error naming each stalled shard's
// parked coros and the mailbox edges, when every queue drains with
// coros still parked. Like Engine.Run it winds down all remaining coros
// before returning, and may be called once per Sharded.
func (s *Sharded) Run() error {
	if s.ran {
		return fmt.Errorf("sim: Sharded.Run called twice")
	}
	s.ran = true
	if len(s.shards) == 1 {
		// One shard is the serial engine, bit for bit and cycle for
		// cycle: no windows, no barriers, no bounds on inline commits.
		return s.shards[0].eng.Run()
	}
	err := s.loop()
	for _, m := range s.shards {
		m.eng.shutdown()
	}
	if err == nil {
		for _, m := range s.shards {
			if m.eng.failure != nil {
				err = m.eng.failure
				break
			}
		}
	}
	return err
}

// loop is Run's window loop, split out so Run can always wind down.
func (s *Sharded) loop() error {
	for _, m := range s.shards {
		m.eng.stopped = false
	}
	runnable := make([]*Engine, 0, len(s.shards))
	for {
		if s.stop.Load() {
			return nil
		}
		// T = global minimum pending event time.
		var t Time
		any := false
		for _, m := range s.shards {
			if h, ok := m.eng.nextEventTime(); ok && (!any || h < t) {
				t, any = h, true
			}
		}
		if !any {
			live := 0
			for _, m := range s.shards {
				live += len(m.eng.live)
			}
			if live > 0 {
				return s.deadlockError()
			}
			return nil
		}
		end := t + s.lookahead

		// Advance every shard with work inside the window. Shards whose
		// next event is at or past end would fire nothing; skipping them
		// is pure throughput, their queues are untouched either way.
		runnable = runnable[:0]
		for _, m := range s.shards {
			if h, ok := m.eng.nextEventTime(); ok && h < end {
				runnable = append(runnable, m.eng)
			}
		}
		s.runShards(runnable, end)

		for _, m := range s.shards {
			if m.eng.failure != nil {
				return m.eng.failure
			}
		}
		for _, m := range s.shards {
			if m.eng.stopped {
				return nil
			}
		}
		s.deliver()
	}
}

// runShards runs one window on each engine in es, concurrently up to
// the worker cap. Shards share no state inside a window, so scheduling
// order is irrelevant to the history.
func (s *Sharded) runShards(es []*Engine, end Time) {
	if len(es) == 1 || s.workers == 1 {
		for _, e := range es {
			e.runWindow(end) //nolint:errcheck // recorded in e.failure, read at the barrier
		}
		return
	}
	w := s.workers
	if w > len(es) {
		w = len(es)
	}
	var wg sync.WaitGroup
	work := make(chan *Engine)
	wg.Add(w)
	for i := 0; i < w; i++ {
		go func() {
			defer wg.Done()
			for e := range work {
				e.runWindow(end) //nolint:errcheck // recorded in e.failure, read at the barrier
			}
		}()
	}
	for _, e := range es {
		work <- e
	}
	close(work)
	wg.Wait()
}

// deliver drains every mailbox at the window barrier. For each
// destination the inbound messages are merged in (when, at, src rank,
// send order): outboxes are concatenated in src-rank order and stably
// sorted by (when, at), so ties across sources resolve by rank and ties
// within a source keep send order. Engine.scheduleMessage then assigns
// destination sequence numbers in that merged order, completing the
// (when, at, seq) key that slots each message exactly where the serial
// engine would have fired it.
func (s *Sharded) deliver() {
	n := len(s.shards)
	var merged []message
	for dst := 0; dst < n; dst++ {
		merged = merged[:0]
		for src := 0; src < n; src++ {
			box := s.outbox[src][dst]
			if len(box) == 0 {
				continue
			}
			merged = append(merged, box...)
			st := &s.edges[src][dst]
			st.Delivered += uint64(len(box))
			if last := box[len(box)-1].when; last > st.Last {
				st.Last = last
			}
			for i := range box {
				box[i] = message{}
			}
			s.outbox[src][dst] = box[:0]
		}
		if len(merged) == 0 {
			continue
		}
		sort.SliceStable(merged, func(i, j int) bool {
			if merged[i].when != merged[j].when {
				return merged[i].when < merged[j].when
			}
			return merged[i].at < merged[j].at
		})
		e := s.shards[dst].eng
		for _, msg := range merged {
			e.scheduleMessage(msg.when, msg.at, msg.fn)
		}
	}
}

// deadlockError reports a global stall: every shard's queue is dry and
// no mailbox holds a message, yet coros remain parked. It names each
// stalled shard's parked coros (Engine.parkedReport) and summarizes the
// mailbox edges so the stalled communication path is visible — the edge
// whose Last time stopped advancing is the one whose producer went
// quiet.
func (s *Sharded) deadlockError() error {
	var parts []string
	for _, m := range s.shards {
		if len(m.eng.live) > 0 {
			parts = append(parts, m.eng.parkedReport())
		}
	}
	var edges []string
	for src := range s.edges {
		for dst, st := range s.edges[src] {
			if st.Delivered > 0 {
				edges = append(edges, fmt.Sprintf("%d→%d ×%d last %v", src, dst, st.Delivered, st.Last))
			}
		}
	}
	const maxEdges = 12
	if len(edges) > maxEdges {
		edges = append(edges[:maxEdges], fmt.Sprintf("… %d more", len(edges)-maxEdges))
	}
	edgeNote := "no cross-shard messages were ever delivered"
	if len(edges) > 0 {
		edgeNote = "mailbox edges: " + strings.Join(edges, ", ")
	}
	return fmt.Errorf("%w (%s; %s)", ErrDeadlock, strings.Join(parts, "; "), edgeNote)
}
