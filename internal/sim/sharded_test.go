package sim

import (
	"errors"
	"fmt"
	"reflect"
	"strings"
	"testing"
)

// shardedTopo abstracts "one big machine" over its two implementations:
// a plain serial Machine, or a Sharded partition of the same Config.
// Workloads built on it never see which one they run on — that is the
// whole claim under test.
type shardedTopo struct {
	machineFor func(node int) *Machine
	machines   []*Machine
	run        func() error
}

func serialTopo(cfg Config) *shardedTopo {
	m := NewMachine(cfg)
	return &shardedTopo{
		machineFor: func(int) *Machine { return m },
		machines:   []*Machine{m},
		run:        m.Engine().Run,
	}
}

func shardedTopoOf(cfg Config, shards, workers int) *shardedTopo {
	sh := NewSharded(cfg, ShardOptions{Shards: shards, Workers: workers})
	return &shardedTopo{
		machineFor: sh.MachineFor,
		machines:   sh.shards,
		run:        sh.Run,
	}
}

func (tp *shardedTopo) setModes(batched, inline bool) {
	for _, m := range tp.machines {
		m.Engine().SetBatchedSpins(batched)
		m.Engine().SetInlineWakeups(inline)
	}
}

// ringParams shapes one differential ring workload.
type ringParams struct {
	seed   uint64
	nodes  int
	rounds int
	svc    Time // ModuleService
	noise  int  // empty timer events on shard 0 that cut windows short
}

// ringObs is everything observable the ring produced. Identical params
// must yield deeply equal ringObs at every (shards, workers, batched,
// inline) combination.
type ringObs struct {
	workerLog [][]string // per-worker event log, stamped with the worker's own clock
	finish    []Time     // per-worker completion time
	busy      []Time     // per-worker accrued busy time
	flags     []uint64   // final flag cell values
	hub       uint64     // final hub counter (posted adds from every worker)
	accesses  []uint64   // per-node module accesses, read from the owner shard
	qdelay    []Time     // per-node module queue delay, read from the owner shard
	err       string
}

// runShardedRing drives a token ring over posted cells: worker n (one
// per node) spins on its local flag cell for token value r·N+n+1, does
// a random slice of local work, posts the incremented token to the next
// node's flag (a cross-shard message whenever the ring crosses a
// partition boundary), and posts an increment to a shared hub counter
// on node 0. All cross-node traffic is posted — exactly the access
// shape the sharded engine makes legal — so the same code runs
// unchanged on a serial machine and on any partition of it.
//
// Per-worker randomness is seeded from (seed, node) only, never from
// shard layout, and the work draws span milliseconds against sub-µs
// latencies, so distinct workers essentially never tie in (when, at) —
// the one corner the merge order cannot reconstruct (see Sharded).
func runShardedRing(tb testing.TB, p ringParams, tp *shardedTopo, batched, inline bool) ringObs {
	tb.Helper()
	tp.setModes(batched, inline)
	n := p.nodes
	obs := ringObs{
		workerLog: make([][]string, n),
		finish:    make([]Time, n),
		busy:      make([]Time, n),
	}
	flags := make([]*Cell, n)
	for i := 0; i < n; i++ {
		flags[i] = tp.machineFor(i).NewCell(i, fmt.Sprintf("flag%d", i), 0)
	}
	hub := tp.machineFor(0).NewCell(0, "hub", 0)
	for i := 0; i < p.noise; i++ {
		tp.machineFor(0).Engine().At(Time(i+1)*613*Microsecond, func() {})
	}
	for i := 0; i < n; i++ {
		i := i
		m := tp.machineFor(i)
		r := NewRNG(p.seed*1_000_003 + uint64(i)*7919 + 1)
		a := &spinAccessor{node: i}
		logf := func(c *Coro, format string, args ...any) {
			obs.workerLog[i] = append(obs.workerLog[i],
				fmt.Sprintf("%d ", c.Now())+fmt.Sprintf(format, args...))
		}
		c := m.Engine().Spawn(fmt.Sprintf("w%d", i), func(c *Coro) {
			a.c = c
			flag := flags[i]
			next := flags[(i+1)%n]
			for round := 0; round < p.rounds; round++ {
				want := uint64(round*n + i + 1)
				pause := Time(200 + r.Intn(900))
				iters, _ := c.SpinUntil(a, &SpinSpec{
					ProbeCell: flag, ProbeAtomic: i%2 == 0,
					Probe:     func() bool { return flag.Peek() == want },
					PauseCost: func() Time { return pause },
					MaxIters:  SpinUnbounded,
				})
				logf(c, "r%d got token after %d probes", round, iters)
				a.Advance(Time(1+r.Intn(300)) * Microsecond)
				hub.PostAdd(a, 1)
				next.PostStore(a, want+1)
				logf(c, "r%d passed", round)
			}
			obs.finish[i] = c.Now()
		})
		c.Start(Time(i) * 2 * Millisecond)
		defer func(i int) { obs.busy[i] = a.busy }(i)
	}
	flags[0].Poke(1)
	if err := tp.run(); err != nil {
		obs.err = err.Error()
	}
	obs.flags = make([]uint64, n)
	for i := 0; i < n; i++ {
		obs.flags[i] = flags[i].Peek()
		m := tp.machineFor(i)
		obs.accesses = append(obs.accesses, m.ModuleAccesses(i))
		obs.qdelay = append(obs.qdelay, m.ModuleQueueDelay(i))
	}
	obs.hub = hub.Peek()
	return obs
}

// diffRingObs compares a variant run against the serial reference.
func diffRingObs(t *testing.T, name string, ref, got ringObs) {
	t.Helper()
	if ref.err != got.err {
		t.Errorf("%s: err %q, want %q", name, got.err, ref.err)
	}
	if got.hub != ref.hub {
		t.Errorf("%s: hub %d, want %d", name, got.hub, ref.hub)
	}
	if !reflect.DeepEqual(ref.flags, got.flags) {
		t.Errorf("%s: flags %v, want %v", name, got.flags, ref.flags)
	}
	if !reflect.DeepEqual(ref.finish, got.finish) {
		t.Errorf("%s: finish %v, want %v", name, got.finish, ref.finish)
	}
	if !reflect.DeepEqual(ref.busy, got.busy) {
		t.Errorf("%s: busy %v, want %v", name, got.busy, ref.busy)
	}
	if !reflect.DeepEqual(ref.accesses, got.accesses) {
		t.Errorf("%s: module accesses %v, want %v", name, got.accesses, ref.accesses)
	}
	if !reflect.DeepEqual(ref.qdelay, got.qdelay) {
		t.Errorf("%s: module queue delay %v, want %v", name, got.qdelay, ref.qdelay)
	}
	for w := range ref.workerLog {
		if len(ref.workerLog[w]) != len(got.workerLog[w]) {
			t.Fatalf("%s: worker %d: %d log records, want %d",
				name, w, len(got.workerLog[w]), len(ref.workerLog[w]))
		}
		for i := range ref.workerLog[w] {
			if ref.workerLog[w][i] != got.workerLog[w][i] {
				t.Fatalf("%s: worker %d log[%d] = %q, want %q",
					name, w, i, got.workerLog[w][i], ref.workerLog[w][i])
			}
		}
	}
}

// shardCounts trims the standard {1, 2, 4, 8} grid to the node count.
func shardCounts(nodes int) []int {
	out := []int{1}
	for _, s := range []int{2, 4, 8} {
		if s <= nodes {
			out = append(out, s)
		}
	}
	return out
}

// diffShardedModes runs one ring across the full (shards × workers ×
// batched × inline) cross-product and requires byte-identical
// observations against the serial slow-path reference.
func diffShardedModes(t *testing.T, p ringParams) {
	t.Helper()
	cfg := Config{Nodes: p.nodes, ModuleService: p.svc, Seed: p.seed%97 + 1}
	ref := runShardedRing(t, p, serialTopo(cfg), false, false)
	modes := []struct {
		name            string
		batched, inline bool
	}{
		{"slow+inline", false, true},
		{"batched+noinline", true, false},
		{"batched+inline", true, true},
	}
	for _, mode := range modes {
		diffRingObs(t, "serial/"+mode.name, ref,
			runShardedRing(t, p, serialTopo(cfg), mode.batched, mode.inline))
	}
	for _, shards := range shardCounts(p.nodes) {
		for _, workers := range []int{1, 4} {
			tag := fmt.Sprintf("shards=%d/j=%d", shards, workers)
			diffRingObs(t, tag+"/slow+noinline", ref,
				runShardedRing(t, p, shardedTopoOf(cfg, shards, workers), false, false))
			for _, mode := range modes {
				diffRingObs(t, tag+"/"+mode.name, ref,
					runShardedRing(t, p, shardedTopoOf(cfg, shards, workers), mode.batched, mode.inline))
			}
		}
	}
}

func TestShardedRingDifferential(t *testing.T) {
	for _, svc := range []Time{0, 400 * Nanosecond} {
		t.Run(fmt.Sprintf("svc=%v", svc), func(t *testing.T) {
			diffShardedModes(t, ringParams{seed: 11, nodes: 8, rounds: 3, svc: svc, noise: 2})
		})
	}
}

// FuzzShardedDifferential drives randomized ring topologies through the
// whole shards × workers × engine-mode grid, requiring observations
// identical to the serial engine's.
func FuzzShardedDifferential(f *testing.F) {
	f.Add(uint64(1), uint8(2), uint8(1), uint8(0), uint8(0))
	f.Add(uint64(3), uint8(5), uint8(2), uint8(3), uint8(1))
	f.Add(uint64(42), uint8(9), uint8(3), uint8(1), uint8(2))
	f.Fuzz(func(t *testing.T, seed uint64, nodes, rounds, svcUnits, noise uint8) {
		p := ringParams{
			seed:   seed%1000 + 1,
			nodes:  int(nodes%9) + 1,
			rounds: int(rounds%3) + 1,
			svc:    Time(svcUnits%6) * 200 * Nanosecond,
			noise:  int(noise % 3),
		}
		diffShardedModes(t, p)
	})
}

// TestShardedWindowsEngage proves the partitioned run actually exchanged
// cross-shard messages — the differential suite would pass vacuously if
// everything landed on one shard.
func TestShardedWindowsEngage(t *testing.T) {
	p := ringParams{seed: 5, nodes: 8, rounds: 2}
	cfg := Config{Nodes: p.nodes, Seed: 1}
	sh := NewSharded(cfg, ShardOptions{Shards: 4})
	tp := &shardedTopo{machineFor: sh.MachineFor, machines: sh.shards, run: sh.Run}
	runShardedRing(t, p, tp, true, true)
	var delivered uint64
	for src := 0; src < sh.Shards(); src++ {
		for dst := 0; dst < sh.Shards(); dst++ {
			n, _ := sh.EdgeStats(src, dst)
			delivered += n
		}
	}
	// The ring alone crosses partitions nodes×rounds times; the hub adds
	// more. Anything near zero means the partition never engaged.
	if delivered < uint64(p.nodes*p.rounds) {
		t.Fatalf("only %d cross-shard messages delivered; the partition never engaged", delivered)
	}
	// Ring hops from the last node of each shard cross to the next shard.
	n, last := sh.EdgeStats(0, 1)
	if n == 0 || last == 0 {
		t.Errorf("edge 0→1 shows no traffic (n=%d last=%v)", n, last)
	}
}

// TestShardedDeadlockReport checks a cross-shard stall names the blocked
// coro's shard and the mailbox edges — the satellite fix for the old
// one-global-heap report.
func TestShardedDeadlockReport(t *testing.T) {
	cfg := Config{Nodes: 4, Seed: 1}
	sh := NewSharded(cfg, ShardOptions{Shards: 2})
	m0, m1 := sh.Machine(0), sh.Machine(1)
	sink := m1.NewCell(2, "sink", 0)
	c0 := m0.Engine().Spawn("producer", func(c *Coro) {
		a := &spinAccessor{c: c, node: 0}
		sink.PostStore(a, 7)
	})
	c0.Start(0)
	c1 := m1.Engine().Spawn("stuck-consumer", func(c *Coro) {
		c.Park() // never unparked: deadlock once the queues drain
	})
	c1.Start(0)
	err := sh.Run()
	if !errors.Is(err, ErrDeadlock) {
		t.Fatalf("want deadlock, got %v", err)
	}
	msg := err.Error()
	for _, want := range []string{"shard 1:", "stuck-consumer", "mailbox edges", "0→1 ×1"} {
		if !strings.Contains(msg, want) {
			t.Errorf("deadlock report %q does not name %q", msg, want)
		}
	}
	if sink.Peek() != 7 {
		t.Errorf("posted store never landed: sink=%d", sink.Peek())
	}
}

// TestSerialDeadlockReportNamesCoros checks the serial half of the same
// satellite: Run and RunFor both name the parked coros.
func TestSerialDeadlockReportNamesCoros(t *testing.T) {
	for _, mode := range []string{"Run", "RunFor"} {
		e := NewEngine()
		for i := 0; i < 10; i++ {
			c := e.Spawn(fmt.Sprintf("waiter%d", i), func(c *Coro) { c.Park() })
			c.Start(0)
		}
		var err error
		if mode == "Run" {
			err = e.Run()
		} else {
			err = e.RunFor(Second)
			e.shutdown()
		}
		if !errors.Is(err, ErrDeadlock) {
			t.Fatalf("%s: want deadlock, got %v", mode, err)
		}
		msg := err.Error()
		for _, want := range []string{"10 parked", "waiter0", "waiter7", "… 2 more"} {
			if !strings.Contains(msg, want) {
				t.Errorf("%s: report %q does not contain %q", mode, msg, want)
			}
		}
		if strings.Contains(msg, "shard") {
			t.Errorf("%s: standalone report %q mentions a shard", mode, msg)
		}
	}
}

// TestShardedRouteBelowLookahead pins the window-safety guard: a
// cross-shard route faster than the lookahead is a modelling error and
// must panic rather than silently corrupt the window invariant.
func TestShardedRouteBelowLookahead(t *testing.T) {
	sh := NewSharded(Config{Nodes: 4, Seed: 1}, ShardOptions{Shards: 2})
	m0 := sh.Machine(0)
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("cross-shard route below lookahead did not panic")
		}
		if !strings.Contains(fmt.Sprint(r), "below lookahead") {
			t.Fatalf("unexpected panic: %v", r)
		}
	}()
	m0.Route(0, 3, sh.Lookahead()-1, func() {})
}

// TestShardedStop checks both stop paths: a shard's own Engine.Stop ends
// the run at the next barrier, and Sharded.Stop from outside is honoured.
func TestShardedStop(t *testing.T) {
	sh := NewSharded(Config{Nodes: 4, Seed: 1}, ShardOptions{Shards: 2})
	m1 := sh.Machine(1)
	fired := false
	m1.Engine().After(Millisecond, func() { m1.Engine().Stop() })
	m1.Engine().After(Second, func() { fired = true })
	sh.Machine(0).Engine().After(2*Second, func() { fired = true })
	if err := sh.Run(); err != nil {
		t.Fatal(err)
	}
	if fired {
		t.Error("events after Stop still fired")
	}

	sh2 := NewSharded(Config{Nodes: 4, Seed: 1}, ShardOptions{Shards: 2})
	sh2.Stop()
	ran := false
	sh2.Machine(0).Engine().After(0, func() { ran = true })
	if err := sh2.Run(); err != nil {
		t.Fatal(err)
	}
	if ran {
		t.Error("pre-stopped run still fired events")
	}
}

// TestShardedRunTwice pins the single-use contract.
func TestShardedRunTwice(t *testing.T) {
	sh := NewSharded(Config{Nodes: 2, Seed: 1}, ShardOptions{Shards: 2})
	if err := sh.Run(); err != nil {
		t.Fatal(err)
	}
	if err := sh.Run(); err == nil {
		t.Fatal("second Run did not fail")
	}
}

// TestShardedFailurePropagates checks a coro panic on any shard aborts
// the whole run, lowest rank winning deterministically, and all coros
// are wound down.
func TestShardedFailurePropagates(t *testing.T) {
	sh := NewSharded(Config{Nodes: 4, Seed: 1}, ShardOptions{Shards: 2})
	for i := 0; i < 2; i++ {
		i := i
		m := sh.Machine(i)
		c := m.Engine().Spawn(fmt.Sprintf("bomb%d", i), func(c *Coro) {
			c.Sleep(Millisecond)
			panic(fmt.Sprintf("bomb %d went off", i))
		})
		c.Start(0)
	}
	err := sh.Run()
	if err == nil || !strings.Contains(err.Error(), "bomb") {
		t.Fatalf("want bomb panic, got %v", err)
	}
	for i := 0; i < 2; i++ {
		if n := sh.Machine(i).Engine().Live(); n != 0 {
			t.Errorf("shard %d leaked %d coros", i, n)
		}
	}
}

// TestShardedPartition pins the contiguous node→shard mapping.
func TestShardedPartition(t *testing.T) {
	sh := NewSharded(Config{Nodes: 10, Seed: 1}, ShardOptions{Shards: 4})
	var got []int
	for n := 0; n < 10; n++ {
		got = append(got, sh.RankOf(n))
	}
	want := []int{0, 0, 1, 1, 1, 2, 2, 3, 3, 3}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("owner map %v, want %v", got, want)
	}
	for i := 0; i < 4; i++ {
		lo, hi := sh.NodeRange(i)
		for n := lo; n < hi; n++ {
			if sh.MachineFor(n) != sh.Machine(i) {
				t.Fatalf("MachineFor(%d) is not shard %d", n, i)
			}
		}
	}
}
