package sim

import (
	"errors"
	"fmt"
	"sort"
	"strings"
)

// ErrDeadlock is returned by Engine.Run when the event queue drains while
// simulated contexts are still parked: no event can ever wake them again.
var ErrDeadlock = errors.New("sim: deadlock: event queue empty with parked contexts")

// errKilled is the panic value used to unwind a Coro during Engine shutdown.
var errKilled = errors.New("sim: coro killed at engine shutdown")

// event is a scheduled occurrence. Events at equal times fire in
// schedule-time order (at — the virtual instant the event was scheduled),
// then scheduling order (seq breaks the remaining ties), which keeps runs
// deterministic.
//
// On a single engine the (when, at, seq) order is provably identical to
// the old (when, seq) order: the clock never moves backwards, so schedule
// calls see non-decreasing now, and seq increments on every schedule —
// hence at1 < at2 implies seq1 < seq2 and the extra key changes nothing.
// What it buys is sharding: a cross-shard message delivered at a window
// barrier carries the virtual time its send was scheduled at, and the at
// key slots it among the destination's own events exactly where the
// serial engine's global seq would have — see Sharded and DESIGN.md
// "Sharded execution legality".
//
// The common case — waking a sleeping, starting, or unparked Coro — carries
// the coro directly in coro and leaves fn nil, so the schedule-dispatch
// cycle allocates no closure. fn is only used for engine-level callbacks
// (At/After) and barrier-delivered messages.
type event struct {
	when Time
	at   Time
	seq  uint64
	fn   func()
	coro *Coro
}

// less orders events by (when, at, seq); seq is unique, so this is a
// total order and any correct heap pops the exact same sequence.
func (ev *event) less(other *event) bool {
	if ev.when != other.when {
		return ev.when < other.when
	}
	if ev.at != other.at {
		return ev.at < other.at
	}
	return ev.seq < other.seq
}

// eventQueue is an index-based 4-ary min-heap over a value slice, ordered
// by (when, seq). Storing events by value means pushes reuse the slice's
// spare capacity — the popped slots are the free list — so steady-state
// scheduling is allocation-free, unlike the previous container/heap
// implementation which heap-allocated every *event and boxed it in an
// interface{} on each Push/Pop. The 4-ary layout halves the tree depth of
// a binary heap and keeps each node's children in one cache line.
type eventQueue struct {
	a []event
}

func (q *eventQueue) len() int { return len(q.a) }

// push inserts ev, sifting it up to its (when, seq) position.
func (q *eventQueue) push(ev event) {
	a := append(q.a, ev)
	i := len(a) - 1
	for i > 0 {
		p := (i - 1) / 4
		if !a[i].less(&a[p]) {
			break
		}
		a[i], a[p] = a[p], a[i]
		i = p
	}
	q.a = a
}

// pop removes and returns the minimum event. The vacated slot is zeroed so
// the queue holds no stale fn/coro pointers.
func (q *eventQueue) pop() event {
	a := q.a
	top := a[0]
	n := len(a) - 1
	a[0] = a[n]
	a[n] = event{}
	a = a[:n]
	q.a = a
	i := 0
	for {
		first := 4*i + 1
		if first >= n {
			break
		}
		min := first
		end := first + 4
		if end > n {
			end = n
		}
		for c := first + 1; c < end; c++ {
			if a[c].less(&a[min]) {
				min = c
			}
		}
		if !a[min].less(&a[i]) {
			break
		}
		a[i], a[min] = a[min], a[i]
		i = min
	}
	return top
}

// Engine is the discrete-event core: a virtual clock plus a priority queue
// of pending events. Exactly one simulated activity runs at any moment (the
// engine loop or a single Coro), so simulated state needs no locking and
// every run with the same inputs produces the same history.
type Engine struct {
	now   Time
	seq   uint64
	queue eventQueue

	// yield is signalled by a Coro when it returns control to the engine.
	yield chan struct{}
	// live tracks spawned coros that have not finished, for shutdown and
	// deadlock detection.
	live map[*Coro]struct{}
	// coroSeq numbers coros in spawn order so shutdown can unwind them
	// deterministically.
	coroSeq uint64
	// failure records the first panic raised inside a Coro.
	failure error

	// noInline disables the self-wakeup fast path (see Coro.Sleep): when a
	// sleeping coro's wakeup would provably be the next event dispatched,
	// the engine advances the clock in place and lets the coro keep running
	// instead of parking it. The zero value keeps the fast path on; tests
	// force it off to prove both paths produce identical histories.
	noInline bool
	// noBatch disables the batched-spin fast path (see Coro.SpinUntil and
	// Engine.SetBatchedSpins): busy-wait loops then charge per iteration
	// through the open-coded slow path.
	noBatch bool
	// spinFastForwards / spinBatchedIters count closed-form spin
	// fast-forwards and the iterations they skipped (diagnostics; the
	// differential suites use them to prove the fast path engaged).
	spinFastForwards uint64
	spinBatchedIters uint64
	// limited/limit bound inline time advancement to RunFor's window, so a
	// coro cannot run past the deadline the engine loop would stop at.
	// Sharded window runs reuse the same bound, which is what keeps the
	// spin fast-forward shard-local: a commit can never cross the window
	// barrier.
	limited bool
	limit   Time

	// rank is the engine's shard rank when it runs under a Sharded
	// coordinator, -1 on a standalone serial engine. Used only for
	// diagnostics (deadlock reports name the shard).
	rank int

	running bool
	stopped bool
	tracer  Tracer
	attr    Attribution
}

// NewEngine returns an engine with the clock at zero and no pending events.
func NewEngine() *Engine {
	return &Engine{
		yield:   make(chan struct{}),
		live:    make(map[*Coro]struct{}),
		noBatch: noBatchDefault.Load(),
		rank:    -1,
	}
}

// Now reports the current virtual time.
func (e *Engine) Now() Time { return e.now }

// SetInlineWakeups enables (the default) or disables the self-wakeup fast
// path: a coro whose Sleep wakeup is provably the next dispatch advances
// the clock in place and keeps running, skipping the event heap and the
// goroutine round-trip. Both settings produce byte-identical histories —
// the differential test suite runs every workload both ways — so the only
// reason to turn it off is to exercise or measure the slow path.
func (e *Engine) SetInlineWakeups(on bool) { e.noInline = !on }

// InlineWakeups reports whether the self-wakeup fast path is enabled.
func (e *Engine) InlineWakeups() bool { return !e.noInline }

// canInline reports whether a self-wakeup at when may run inline: no
// tracer observing schedule/event occurrences, the engine not stopping,
// the wakeup strictly earlier than every pending event (equal times must
// go through the heap — an already-queued event at the same time has a
// smaller seq and fires first), and within RunFor's window when one is
// active. Callers have already checked noInline and the coro's own state.
func (e *Engine) canInline(when Time) bool {
	if e.tracer != nil || e.stopped {
		return false
	}
	if e.queue.len() > 0 && when >= e.queue.a[0].when {
		return false
	}
	return !e.limited || when <= e.limit
}

// advanceInline performs the virtual dispatch of an inline self-wakeup:
// the clock and sequence counter move exactly as if the wakeup event had
// been scheduled, popped, and fired, so everything observable downstream
// (Now, tie-break order among later events) is identical to the slow path.
func (e *Engine) advanceInline(when Time) {
	e.seq++
	e.now = when
}

// schedule stamps ev with the (clamped) time, the schedule instant, and
// the next sequence number and pushes it. Scheduling in the past is
// rounded up to the present.
func (e *Engine) schedule(when Time, ev event) {
	if when < e.now {
		when = e.now
	}
	e.seq++
	ev.when, ev.at, ev.seq = when, e.now, e.seq
	e.trace("schedule")
	e.queue.push(ev)
}

// scheduleMessage pushes a barrier-delivered cross-shard message: an
// event whose schedule instant at is the virtual time the *sending*
// shard issued it, not the current clock. The (when, at, seq) order then
// places the message exactly where the serial engine — which would have
// scheduled the same event at the sender's instant — would fire it
// relative to this shard's own events. Only the Sharded coordinator's
// barrier may call this; delivery order across messages is fixed by the
// mailbox merge, which assigns seq in (when, at, src rank, send order).
func (e *Engine) scheduleMessage(when, at Time, fn func()) {
	if e.running {
		panic("sim: scheduleMessage while the engine is running (barrier delivery only)")
	}
	if when < e.now {
		panic(fmt.Sprintf("sim: cross-shard message arrives at %s, before shard %d's clock %s (lookahead violated)",
			when, e.rank, e.now))
	}
	e.seq++
	e.queue.push(event{when: when, at: at, seq: e.seq, fn: fn})
}

// At schedules fn to run at the given absolute virtual time. Scheduling in
// the past is rounded up to the present.
func (e *Engine) At(when Time, fn func()) {
	e.schedule(when, event{fn: fn})
}

// After schedules fn to run d from now. Negative delays fire immediately
// (at the current time, after already-queued events for that time).
func (e *Engine) After(d Time, fn func()) {
	if d < 0 {
		d = 0
	}
	e.schedule(e.now+d, event{fn: fn})
}

// afterCoro schedules a dispatch of c after d, carrying the coro in the
// event itself. This is the allocation-free fast path under Coro.Start,
// Sleep, and Unpark.
func (e *Engine) afterCoro(d Time, c *Coro) {
	if d < 0 {
		d = 0
	}
	e.schedule(e.now+d, event{coro: c})
}

// fire executes one popped event: a direct coro dispatch on the fast path,
// otherwise the scheduled callback. A coro suspended inside a spin
// emulation (Coro.SpinUntil) is not resumed — the event advances its
// state machine engine-side instead, and the goroutine wakes only when
// the whole busy-wait loop completes.
func (e *Engine) fire(ev *event) {
	if ev.coro != nil {
		if s := ev.coro.spin; s != nil && !ev.coro.killed {
			if e.runSpin(s) {
				e.dispatch(ev.coro)
			}
			return
		}
		e.dispatch(ev.coro)
		return
	}
	ev.fn()
}

// Stop makes Run return after the currently executing event completes.
func (e *Engine) Stop() { e.stopped = true }

// Pending reports the number of scheduled events.
func (e *Engine) Pending() int { return e.queue.len() }

// Live reports the number of spawned coros that have not yet finished.
func (e *Engine) Live() int { return len(e.live) }

// Run executes events in time order until the queue is empty, Stop is
// called, or a Coro panics. It returns ErrDeadlock if the queue drains
// while coros are still parked, and the recovered error if a Coro fails.
// In every case the engine winds down all remaining coros so no goroutines
// leak.
func (e *Engine) Run() error {
	if e.running {
		return errors.New("sim: Engine.Run called reentrantly")
	}
	e.running = true
	e.stopped = false
	defer func() { e.running = false }()

	for e.queue.len() > 0 && !e.stopped && e.failure == nil {
		ev := e.queue.pop()
		e.now = ev.when
		e.trace("event")
		e.fire(&ev)
	}

	err := e.failure
	if err == nil && !e.stopped && len(e.live) > 0 {
		err = e.deadlockError()
	}
	e.shutdown()
	if e.failure != nil && err == nil {
		err = e.failure
	}
	return err
}

// deadlockError builds the queue-drained-with-parked-coros report. It
// names the parked coros (in spawn order, capped) and — when the engine
// runs as one shard of a Sharded machine — the shard rank, so a stall in
// a sharded run points at the right heap instead of implying one global
// queue. The Sharded coordinator extends this with the mailbox-edge
// summary only it can see.
func (e *Engine) deadlockError() error {
	return fmt.Errorf("%w (%s)", ErrDeadlock, e.parkedReport())
}

// parkedReport lists the live (parked) coros by name in spawn order,
// prefixed with the shard rank when the engine is a shard.
func (e *Engine) parkedReport() string {
	type entry struct {
		id   uint64
		name string
	}
	parked := make([]entry, 0, len(e.live))
	for c := range e.live {
		parked = append(parked, entry{c.id, c.name})
	}
	sort.Slice(parked, func(i, j int) bool { return parked[i].id < parked[j].id })
	const maxNames = 8
	names := make([]string, 0, maxNames+1)
	for i, p := range parked {
		if i == maxNames {
			names = append(names, fmt.Sprintf("… %d more", len(parked)-maxNames))
			break
		}
		names = append(names, p.name)
	}
	where := ""
	if e.rank >= 0 {
		where = fmt.Sprintf("shard %d: ", e.rank)
	}
	return fmt.Sprintf("%s%d parked: %s", where, len(parked), strings.Join(names, ", "))
}

// RunFor runs events until the clock would pass now+d, leaving later events
// queued. It is primarily useful in tests that examine intermediate state.
// Like Run it refuses reentrant calls, honours Stop, and reports deadlock
// (the queue draining inside the window with coros still parked) — but it
// does not wind the coros down, so the caller can inspect state and then
// resume or finish with Run.
func (e *Engine) RunFor(d Time) error {
	if e.running {
		return errors.New("sim: Engine.RunFor called reentrantly")
	}
	e.running = true
	e.stopped = false
	defer func() { e.running = false }()

	deadline := e.now + d
	e.limited, e.limit = true, deadline
	defer func() { e.limited = false }()
	for e.queue.len() > 0 && !e.stopped && e.failure == nil {
		if e.queue.a[0].when > deadline {
			break
		}
		ev := e.queue.pop()
		e.now = ev.when
		e.trace("event")
		e.fire(&ev)
	}

	if e.failure != nil {
		return e.failure
	}
	if e.stopped {
		return nil
	}
	if e.queue.len() == 0 && len(e.live) > 0 {
		return e.deadlockError()
	}
	if e.now < deadline {
		e.now = deadline
	}
	return nil
}

// runWindow executes events strictly before end: the shard-side half of
// one Sharded window. Unlike Run it performs no shutdown and reports no
// deadlock — a drained queue here only means this shard is waiting on
// cross-shard messages, which the coordinator's barrier may yet deliver;
// only the coordinator can see that every queue is dry. Inline
// advancement and spin fast-forwards are bounded to end-1 through the
// same limited/limit mechanism RunFor uses, so no coro can commit time
// at or past the barrier. The clock is left at the last fired event (not
// advanced to end): the next window's start is computed from queue
// heads, and a shard that fired nothing keeps its old clock.
func (e *Engine) runWindow(end Time) error {
	if e.running {
		return errors.New("sim: Engine.runWindow called reentrantly")
	}
	e.running = true
	defer func() { e.running = false }()

	e.limited, e.limit = true, end-1
	defer func() { e.limited = false }()
	for e.queue.len() > 0 && !e.stopped && e.failure == nil {
		if e.queue.a[0].when >= end {
			break
		}
		ev := e.queue.pop()
		e.now = ev.when
		e.trace("event")
		e.fire(&ev)
	}
	return e.failure
}

// nextEventTime reports the earliest pending event's time, or false when
// the queue is empty. The Sharded coordinator uses it between windows
// (never while the engine runs) to pick the next global window start.
func (e *Engine) nextEventTime() (Time, bool) {
	if e.queue.len() == 0 {
		return 0, false
	}
	return e.queue.a[0].when, true
}

// shutdown unwinds any coros that are still parked by resuming them with
// the kill flag set; each panics with errKilled, which its wrapper absorbs.
// Coros unwind in spawn order (lowest id first) so kill-path traces and
// panic diagnostics are reproducible run to run — ranging over the live
// map would pick an arbitrary victim each iteration.
func (e *Engine) shutdown() {
	for len(e.live) > 0 {
		var c *Coro
		//simlint:allow maporder -- min-by-id selection reads every key; the result is iteration-order independent
		for k := range e.live {
			if c == nil || k.id < c.id {
				c = k
			}
		}
		c.killed = true
		e.dispatch(c)
	}
}

// dispatch transfers control to c until it yields, parks, or finishes.
// It must only be called from the engine side (event callbacks or Run).
func (e *Engine) dispatch(c *Coro) {
	if e.attr != nil {
		e.attr.CoroDispatched(e.now)
	}
	//simlint:allow virtualtime -- the engine/coro handoff is the one place real channels implement virtual time
	c.resume <- struct{}{}
	//simlint:allow virtualtime -- the engine/coro handoff is the one place real channels implement virtual time
	<-e.yield
}

// fail records the first error raised by a Coro and stops the run.
func (e *Engine) fail(err error) {
	if e.failure == nil {
		e.failure = err
	}
	e.stopped = true
}

// Attribution receives engine-mechanism notifications for the virtual-time
// profiler (internal/profile). Unlike the Tracer it does NOT force the
// engine's slow paths: inline wakeups and spin batching stay on while an
// Attribution is installed, so what it observes is mechanism (dispatch and
// fast-forward counts), which is mode-dependent and diagnostic only —
// virtual-time attribution itself happens at the thread layer and is
// identical across modes. Callbacks must not mutate simulated state.
type Attribution interface {
	// CoroDispatched fires on every real coroutine handoff.
	CoroDispatched(at Time)
	// SpinFastForward fires after a batched-spin commit of iters
	// iterations ending at virtual time at.
	SpinFastForward(at Time, iters int64)
}

// SetAttribution installs (or, with nil, removes) the attribution hook.
func (e *Engine) SetAttribution(a Attribution) { e.attr = a }

// Tracer receives one line per engine occurrence when tracing is enabled:
// event scheduling ("schedule"), event dispatch ("event"), and coro
// lifecycle. For debugging simulations; the callback must not mutate
// simulated state. internal/trace adapts its structured tracer to this
// hook via Tracer.EngineHook.
type Tracer func(at Time, what string)

// SetTracer installs (or, with nil, removes) the trace hook.
func (e *Engine) SetTracer(tr Tracer) { e.tracer = tr }

// trace emits one trace line if tracing is enabled.
func (e *Engine) trace(what string) {
	if e.tracer != nil {
		e.tracer(e.now, what)
	}
}
