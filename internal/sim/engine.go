package sim

import (
	"container/heap"
	"errors"
	"fmt"
)

// ErrDeadlock is returned by Engine.Run when the event queue drains while
// simulated contexts are still parked: no event can ever wake them again.
var ErrDeadlock = errors.New("sim: deadlock: event queue empty with parked contexts")

// errKilled is the panic value used to unwind a Coro during Engine shutdown.
var errKilled = errors.New("sim: coro killed at engine shutdown")

// event is a scheduled callback. Events at equal times fire in scheduling
// order (seq breaks ties), which keeps runs deterministic.
type event struct {
	when Time
	seq  uint64
	fn   func()
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].when != h[j].when {
		return h[i].when < h[j].when
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}

// Engine is the discrete-event core: a virtual clock plus a priority queue
// of pending events. Exactly one simulated activity runs at any moment (the
// engine loop or a single Coro), so simulated state needs no locking and
// every run with the same inputs produces the same history.
type Engine struct {
	now   Time
	seq   uint64
	queue eventHeap

	// yield is signalled by a Coro when it returns control to the engine.
	yield chan struct{}
	// live tracks spawned coros that have not finished, for shutdown and
	// deadlock detection.
	live map[*Coro]struct{}
	// failure records the first panic raised inside a Coro.
	failure error

	running bool
	stopped bool
	tracer  Tracer
}

// NewEngine returns an engine with the clock at zero and no pending events.
func NewEngine() *Engine {
	return &Engine{
		yield: make(chan struct{}),
		live:  make(map[*Coro]struct{}),
	}
}

// Now reports the current virtual time.
func (e *Engine) Now() Time { return e.now }

// At schedules fn to run at the given absolute virtual time. Scheduling in
// the past is rounded up to the present.
func (e *Engine) At(when Time, fn func()) {
	if when < e.now {
		when = e.now
	}
	e.seq++
	e.trace("schedule")
	heap.Push(&e.queue, &event{when: when, seq: e.seq, fn: fn})
}

// After schedules fn to run d from now. Negative delays fire immediately
// (at the current time, after already-queued events for that time).
func (e *Engine) After(d Time, fn func()) {
	if d < 0 {
		d = 0
	}
	e.At(e.now+d, fn)
}

// Stop makes Run return after the currently executing event completes.
func (e *Engine) Stop() { e.stopped = true }

// Pending reports the number of scheduled events.
func (e *Engine) Pending() int { return len(e.queue) }

// Live reports the number of spawned coros that have not yet finished.
func (e *Engine) Live() int { return len(e.live) }

// Run executes events in time order until the queue is empty, Stop is
// called, or a Coro panics. It returns ErrDeadlock if the queue drains
// while coros are still parked, and the recovered error if a Coro fails.
// In every case the engine winds down all remaining coros so no goroutines
// leak.
func (e *Engine) Run() error {
	if e.running {
		return errors.New("sim: Engine.Run called reentrantly")
	}
	e.running = true
	e.stopped = false
	defer func() { e.running = false }()

	for len(e.queue) > 0 && !e.stopped && e.failure == nil {
		ev := heap.Pop(&e.queue).(*event)
		e.now = ev.when
		e.trace("event")
		ev.fn()
	}

	err := e.failure
	if err == nil && !e.stopped && len(e.live) > 0 {
		err = fmt.Errorf("%w (%d parked)", ErrDeadlock, len(e.live))
	}
	e.shutdown()
	if e.failure != nil && err == nil {
		err = e.failure
	}
	return err
}

// RunFor runs events until the clock would pass now+d, leaving later events
// queued. It is primarily useful in tests that examine intermediate state.
func (e *Engine) RunFor(d Time) error {
	deadline := e.now + d
	e.running = true
	defer func() { e.running = false }()
	for len(e.queue) > 0 && e.failure == nil {
		if e.queue[0].when > deadline {
			break
		}
		ev := heap.Pop(&e.queue).(*event)
		e.now = ev.when
		ev.fn()
	}
	if e.now < deadline {
		e.now = deadline
	}
	return e.failure
}

// shutdown unwinds any coros that are still parked by resuming them with
// the kill flag set; each panics with errKilled, which its wrapper absorbs.
func (e *Engine) shutdown() {
	for len(e.live) > 0 {
		var c *Coro
		// Pick an arbitrary live coro; order does not matter because each
		// unwinds independently without touching simulated state.
		for k := range e.live {
			c = k
			break
		}
		c.killed = true
		e.dispatch(c)
	}
}

// dispatch transfers control to c until it yields, parks, or finishes.
// It must only be called from the engine side (event callbacks or Run).
func (e *Engine) dispatch(c *Coro) {
	c.resume <- struct{}{}
	<-e.yield
}

// fail records the first error raised by a Coro and stops the run.
func (e *Engine) fail(err error) {
	if e.failure == nil {
		e.failure = err
	}
	e.stopped = true
}

// Tracer receives one line per engine occurrence when tracing is enabled:
// event scheduling ("schedule"), event dispatch ("event"), and coro
// lifecycle. For debugging simulations; the callback must not mutate
// simulated state. internal/trace adapts its structured tracer to this
// hook via Tracer.EngineHook.
type Tracer func(at Time, what string)

// SetTracer installs (or, with nil, removes) the trace hook.
func (e *Engine) SetTracer(tr Tracer) { e.tracer = tr }

// trace emits one trace line if tracing is enabled.
func (e *Engine) trace(what string) {
	if e.tracer != nil {
		e.tracer(e.now, what)
	}
}
