package sim

import (
	"fmt"
	"testing"
)

// TestInlineWakeupAdvancesInPlace checks the fast path's visible contract:
// a lone sleeping coro advances the clock without any event traffic, and
// the (now, seq) observables match what the slow path would produce.
func TestInlineWakeupAdvancesInPlace(t *testing.T) {
	run := func(inline bool) (times []Time, seqs []uint64) {
		e := NewEngine()
		e.SetInlineWakeups(inline)
		c := e.Spawn("s", func(c *Coro) {
			for _, d := range []Time{5, 0, 17, 3} {
				c.Sleep(d)
				times = append(times, e.Now())
				seqs = append(seqs, e.seq)
			}
		})
		c.Start(0)
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		return times, seqs
	}
	fastT, fastS := run(true)
	slowT, slowS := run(false)
	for i := range fastT {
		if fastT[i] != slowT[i] || fastS[i] != slowS[i] {
			t.Fatalf("observables diverge at step %d: fast (%v,%d), slow (%v,%d)",
				i, fastT[i], fastS[i], slowT[i], slowS[i])
		}
	}
	if want := []Time{5, 5, 22, 25}; fastT[0] != want[0] || fastT[3] != want[3] {
		t.Fatalf("times = %v, want %v", fastT, want)
	}
}

// TestInlineWakeupYieldsToSameTimeEvents checks the equal-time rule: a
// Sleep whose wakeup coincides with an already-queued event must take the
// slow path so the earlier-scheduled event still fires first.
func TestInlineWakeupYieldsToSameTimeEvents(t *testing.T) {
	e := NewEngine()
	var order []string
	e.At(10, func() { order = append(order, "event") })
	c := e.Spawn("s", func(c *Coro) {
		c.Sleep(10) // wakeup at 10, same time as the queued event
		order = append(order, "coro")
	})
	c.Start(0)
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(order) != 2 || order[0] != "event" || order[1] != "coro" {
		t.Fatalf("order = %v, want [event coro]", order)
	}
}

// TestInlineWakeupRespectsRunForWindow checks that inline advancement
// cannot carry the clock past a RunFor deadline the engine loop would have
// stopped at.
func TestInlineWakeupRespectsRunForWindow(t *testing.T) {
	e := NewEngine()
	var seen []Time
	c := e.Spawn("s", func(c *Coro) {
		for i := 0; i < 4; i++ {
			c.Sleep(4)
			seen = append(seen, e.Now())
		}
	})
	c.Start(0)
	if err := e.RunFor(10); err != nil {
		t.Fatal(err)
	}
	if e.Now() != 10 {
		t.Fatalf("Now = %v after RunFor(10), want 10", e.Now())
	}
	if len(seen) != 2 || seen[0] != 4 || seen[1] != 8 {
		t.Fatalf("wakeups inside window = %v, want [4 8]", seen)
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(seen) != 4 || seen[3] != 16 {
		t.Fatalf("wakeups after Run = %v, want last at 16", seen)
	}
}

// TestInlineWakeupDisabledByTracer checks that an installed engine tracer
// forces the slow path, keeping the schedule/event stream complete.
func TestInlineWakeupDisabledByTracer(t *testing.T) {
	e := NewEngine()
	var schedules, events int
	e.SetTracer(func(at Time, what string) {
		switch what {
		case "schedule":
			schedules++
		case "event":
			events++
		}
	})
	c := e.Spawn("s", func(c *Coro) {
		for i := 0; i < 3; i++ {
			c.Sleep(1)
		}
	})
	c.Start(0)
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	// Start + 3 sleeps = 4 schedules and 4 dispatched events.
	if schedules != 4 || events != 4 {
		t.Fatalf("traced schedules=%d events=%d, want 4 and 4", schedules, events)
	}
}

// TestShutdownUnwindsInSpawnOrder checks the deterministic kill path:
// parked coros are unwound in spawn order, every run.
func TestShutdownUnwindsInSpawnOrder(t *testing.T) {
	for trial := 0; trial < 20; trial++ {
		e := NewEngine()
		var unwound []int
		for i := 0; i < 8; i++ {
			i := i
			c := e.Spawn(fmt.Sprintf("p%d", i), func(c *Coro) {
				defer func() { unwound = append(unwound, i) }()
				c.Park()
			})
			// Start in reverse order to decouple spawn order from start order.
			c.Start(Time(8 - i))
		}
		if err := e.Run(); err == nil {
			t.Fatal("expected deadlock error")
		}
		if len(unwound) != 8 {
			t.Fatalf("trial %d: unwound %d coros, want 8", trial, len(unwound))
		}
		for i, id := range unwound {
			if id != i {
				t.Fatalf("trial %d: unwind order %v, not spawn order", trial, unwound)
			}
		}
	}
}

// workloadObs is everything observable a differential run records: a log
// line per action (stamped with virtual time and engine sequence number)
// plus the final clock and sequence state.
type workloadObs struct {
	log      []string
	finalNow Time
	finalSeq uint64
}

// runDifferentialWorkload builds a pseudo-random workload from seed — coros
// mixing sleeps of many sizes (zero, tiny, overlapping, disjoint), engine
// callbacks, park/unpark pairs, and mid-run spawns — and executes it with
// the inline-wakeup fast path on or off. Every random value is drawn from
// per-coro streams forked in spawn order and precomputed before any
// closure is scheduled, so the two modes consume randomness identically
// and any divergence in the observation log is a real behavioral
// difference.
func runDifferentialWorkload(t *testing.T, seed uint64, inline bool) workloadObs {
	t.Helper()
	e := NewEngine()
	e.SetInlineWakeups(inline)
	root := NewRNG(seed)
	var obs workloadObs
	record := func(who string) {
		obs.log = append(obs.log, fmt.Sprintf("%s@%d#%d", who, e.now, e.seq))
	}

	var body func(name string, r *RNG, steps, depth int) func(*Coro)
	body = func(name string, r *RNG, steps, depth int) func(*Coro) {
		return func(c *Coro) {
			for s := 0; s < steps; s++ {
				switch r.Intn(12) {
				case 0, 1, 2, 3, 4, 5:
					c.Sleep(Time(r.Intn(7))) // often 0 or colliding with others
				case 6:
					c.Sleep(Time(50 + r.Intn(50))) // far ahead: likely inline
				case 7:
					record(name)
				case 8:
					cb := fmt.Sprintf("%s-cb%d", name, s)
					e.After(Time(r.Intn(9)), func() { record(cb) })
				case 9:
					// Park with the unpark event scheduled first; the coro
					// parks before the event can possibly fire.
					d := Time(1 + r.Intn(5))
					wake := Time(r.Intn(3))
					e.After(d, func() { c.Unpark(wake) })
					c.Park()
					record(name + "-unparked")
				case 10:
					if depth < 2 {
						child := fmt.Sprintf("%s.%d", name, s)
						childSteps := 1 + r.Intn(4)
						childStart := Time(r.Intn(6))
						cc := e.Spawn(child, body(child, r.Fork(), childSteps, depth+1))
						cc.Start(childStart)
					} else {
						c.Sleep(Time(r.Intn(4)))
					}
				case 11:
					record(name + "-tick")
					c.Sleep(1)
				}
			}
			record(name + "-done")
		}
	}

	n := 2 + root.Intn(5)
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("w%d", i)
		c := e.Spawn(name, body(name, root.Fork(), 3+root.Intn(10), 0))
		c.Start(Time(root.Intn(4)))
	}
	if err := e.Run(); err != nil {
		t.Fatalf("seed %d inline=%v: %v", seed, inline, err)
	}
	obs.finalNow, obs.finalSeq = e.now, e.seq
	return obs
}

// diffObs fails the test if two observation logs differ anywhere.
func diffObs(t *testing.T, seed uint64, fast, slow workloadObs) {
	t.Helper()
	if fast.finalNow != slow.finalNow || fast.finalSeq != slow.finalSeq {
		t.Fatalf("seed %d: final state diverges: fast (now=%v seq=%d), slow (now=%v seq=%d)",
			seed, fast.finalNow, fast.finalSeq, slow.finalNow, slow.finalSeq)
	}
	if len(fast.log) != len(slow.log) {
		t.Fatalf("seed %d: log lengths diverge: fast %d, slow %d",
			seed, len(fast.log), len(slow.log))
	}
	for i := range fast.log {
		if fast.log[i] != slow.log[i] {
			t.Fatalf("seed %d: logs diverge at %d: fast %q, slow %q",
				seed, i, fast.log[i], slow.log[i])
		}
	}
}

// TestInlineWakeupDifferential runs many random workloads with the fast
// path forced off and on and asserts bit-identical observation logs and
// final engine state — the engine-level half of the "byte-identical
// simulated metrics" guarantee.
func TestInlineWakeupDifferential(t *testing.T) {
	for seed := uint64(1); seed <= 150; seed++ {
		fast := runDifferentialWorkload(t, seed, true)
		slow := runDifferentialWorkload(t, seed, false)
		diffObs(t, seed, fast, slow)
	}
}

// FuzzInlineWakeupEquivalence lets the fuzzer hunt for a seed whose
// workload behaves differently with the fast path on vs off.
func FuzzInlineWakeupEquivalence(f *testing.F) {
	f.Add(uint64(1))
	f.Add(uint64(42))
	f.Add(uint64(1 << 40))
	f.Fuzz(func(t *testing.T, seed uint64) {
		if seed == 0 {
			seed = 1
		}
		fast := runDifferentialWorkload(t, seed, true)
		slow := runDifferentialWorkload(t, seed, false)
		diffObs(t, seed, fast, slow)
	})
}
