package sim

import "fmt"

// Cell is one word of simulated shared memory that lives on a specific
// node. Every operation charges the accessing context the local or remote
// reference cost before taking effect, so two contexts racing on a cell
// serialize in completion-time order — exactly the semantics of the
// hardware word the paper's locks are built on.
//
// Because the simulation is sequential, the mutation itself is trivially
// atomic; what the Cell models is the *cost* and the *ordering*.
type Cell struct {
	m    *Machine
	node int
	name string
	v    uint64
}

// NewCell allocates a cell in the memory module of the given node.
func (m *Machine) NewCell(node int, name string, init uint64) *Cell {
	if node < 0 || node >= m.cfg.Nodes {
		panic(fmt.Sprintf("sim: cell %q on nonexistent node %d (machine has %d)", name, node, m.cfg.Nodes))
	}
	return &Cell{m: m, node: node, name: name, v: init}
}

// Node reports the memory node the cell lives on.
func (c *Cell) Node() int { return c.node }

// Name returns the cell's diagnostic name.
func (c *Cell) Name() string { return c.name }

// charge advances a by the plain-reference cost to this cell, including
// any module-contention delay. The Advance usually accrues in place via
// the engine's inline self-wakeup fast path (see Coro.Sleep): a cell
// access whose completion time precedes every pending event advances the
// clock without a goroutine round-trip, and the mutation below still
// lands at the same virtual instant it would have on the slow path.
func (c *Cell) charge(a Accessor) {
	c.m.chargeAccess(a, c.node, 0)
}

// chargeAtomic advances a by the read-modify-write cost to this cell,
// including any module-contention delay. Like charge, it is an in-place
// accrual candidate on the fast path.
func (c *Cell) chargeAtomic(a Accessor) {
	c.m.chargeAccess(a, c.node, c.m.cfg.AtomicExtra)
}

// Load reads the cell, charging one reference.
func (c *Cell) Load(a Accessor) uint64 {
	c.charge(a)
	return c.v
}

// Store writes the cell, charging one reference.
func (c *Cell) Store(a Accessor, v uint64) {
	c.charge(a)
	c.v = v
}

// AtomicOr performs the Butterfly "atomior" primitive: OR the mask into the
// cell and return the previous value, charging one read-modify-write. With
// mask 1 it acts as test-and-set.
func (c *Cell) AtomicOr(a Accessor, mask uint64) uint64 {
	c.chargeAtomic(a)
	old := c.v
	c.v |= mask
	return old
}

// AtomicAdd adds delta (two's-complement) to the cell and returns the new
// value, charging one read-modify-write.
func (c *Cell) AtomicAdd(a Accessor, delta int64) uint64 {
	c.chargeAtomic(a)
	c.v = uint64(int64(c.v) + delta)
	return c.v
}

// CompareAndSwap installs new if the cell holds old, charging one
// read-modify-write. It reports whether the swap happened.
func (c *Cell) CompareAndSwap(a Accessor, old, new uint64) bool {
	c.chargeAtomic(a)
	if c.v != old {
		return false
	}
	c.v = new
	return true
}

// Posted operations are one-way remote references: the accessor's
// processor is occupied for the wire latency, and the operation lands at
// the cell's memory module when the reference completes — the sender
// never observes the result. They are the remote-access form that
// shards: a synchronous Load/Store reads remote state *now* (zero
// lookahead, legal only within the owning shard), while a posted
// operation is a message with at least one full reference latency of
// lookahead, so Machine.Route can carry it across a window barrier with
// semantics identical to the serial engine. On a standalone machine the
// three Post methods behave exactly the same way (the landing is an
// ordinary engine event), so workloads written with them produce
// byte-identical histories at every shard count.

// post routes one posted reference: wire latency d from the accessor to
// the cell's node, module booking and the mutation at the landing
// instant, the accessor occupied for d. The route is issued from the
// *accessor's* machine — the caller's own shard, whose outbox is the
// only one the caller may touch — while the landing runs on the cell's
// owner and books the module there.
func (c *Cell) post(a Accessor, extra Time, apply func()) {
	from := a.Node()
	src := c.m
	if sh := c.m.sharded; sh != nil {
		src = sh.MachineFor(from)
	}
	d := c.m.AccessCost(from, c.node) + extra
	src.Route(from, c.node, d, func() {
		c.m.reserveAccess(from, c.node, extra)
		apply()
	})
	a.Advance(d)
}

// PostStore writes v to the cell one reference latency from now without
// waiting for completion, charging the accessor the plain reference cost.
func (c *Cell) PostStore(a Accessor, v uint64) {
	c.post(a, 0, func() { c.v = v })
}

// PostOr ORs mask into the cell one read-modify-write latency from now
// without waiting for completion or observing the previous value.
func (c *Cell) PostOr(a Accessor, mask uint64) {
	c.post(a, c.m.cfg.AtomicExtra, func() { c.v |= mask })
}

// PostAdd adds delta (two's-complement) to the cell one read-modify-write
// latency from now without waiting for completion or observing the sum.
func (c *Cell) PostAdd(a Accessor, delta int64) {
	c.post(a, c.m.cfg.AtomicExtra, func() { c.v = uint64(int64(c.v) + delta) })
}

// Peek reads the cell without charging time. For setup and assertions only;
// simulated code paths must use Load.
func (c *Cell) Peek() uint64 { return c.v }

// Poke writes the cell without charging time. For setup only.
//
//simlint:allow chargepath -- documented setup-only escape hatch, never used on simulated paths
func (c *Cell) Poke(v uint64) { c.v = v }
