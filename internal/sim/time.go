// Package sim provides a deterministic discrete-event simulation of a
// NUMA shared-memory multiprocessor in the style of the BBN Butterfly
// GP1000 used by Mukherjee and Schwan (HPDC 1993).
//
// The simulator has three layers:
//
//   - a virtual clock and event engine (Engine),
//   - coroutine-style simulated execution contexts (Coro) that interleave
//     with the engine one at a time, making every run race-free and
//     reproducible, and
//   - a machine model (Machine, Proc, Cell) that charges virtual time for
//     computation and for local or remote memory accesses, including the
//     atomic read-modify-write primitive ("atomior") the Butterfly
//     hardware provides.
//
// Higher layers (the cthreads thread package, the lock family, and the
// TSP application) run real Go code inside Coros and account for all time
// through this package, so simulated results are exact functions of the
// inputs and the machine configuration.
package sim

import "fmt"

// Time is a duration or instant of virtual time, in nanoseconds.
//
// Virtual time is completely decoupled from wall-clock time: it advances
// only when simulated work is charged through Coro.Sleep, Accessor.Advance,
// or memory-cell operations.
type Time int64

// Convenient virtual-time units.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// MaxTime is the largest representable instant; it serves as the "no
// bound" sentinel for SpinContext.SpinBudget.
const MaxTime = Time(1<<63 - 1)

// Micros returns the time expressed in microseconds.
func (t Time) Micros() float64 { return float64(t) / float64(Microsecond) }

// Millis returns the time expressed in milliseconds.
func (t Time) Millis() float64 { return float64(t) / float64(Millisecond) }

// String renders the time with an adaptive unit, e.g. "613ns", "40.79µs",
// "3207ms".
func (t Time) String() string {
	switch {
	case t < 0:
		return fmt.Sprintf("-%s", -t)
	case t < Microsecond:
		return fmt.Sprintf("%dns", int64(t))
	case t < Millisecond:
		return fmt.Sprintf("%.2fµs", t.Micros())
	case t < Second:
		return fmt.Sprintf("%.2fms", t.Millis())
	default:
		return fmt.Sprintf("%.3fs", float64(t)/float64(Second))
	}
}
