package sim

import "testing"

// BenchmarkEngineEventThroughput measures raw event dispatch rate.
func BenchmarkEngineEventThroughput(b *testing.B) {
	b.ReportAllocs()
	e := NewEngine()
	var step func()
	n := 0
	step = func() {
		n++
		if n < b.N {
			e.After(1, step)
		}
	}
	e.After(1, step)
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkCoroSwitch measures one coroutine round trip (sleep + resume),
// the unit cost of everything the simulator does.
func BenchmarkCoroSwitch(b *testing.B) {
	e := NewEngine()
	c := e.Spawn("bench", func(c *Coro) {
		for i := 0; i < b.N; i++ {
			c.Sleep(1)
		}
	})
	c.Start(0)
	b.ResetTimer()
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkCoroSwitchSlowPath measures the same round trip with inline
// self-wakeups disabled: the event allocation-free heap cycle plus two
// goroutine handoffs every Sleep paid before the fast path existed.
func BenchmarkCoroSwitchSlowPath(b *testing.B) {
	e := NewEngine()
	e.SetInlineWakeups(false)
	c := e.Spawn("bench", func(c *Coro) {
		for i := 0; i < b.N; i++ {
			c.Sleep(1)
		}
	})
	c.Start(0)
	b.ResetTimer()
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkCellAtomicOr measures the simulated atomic primitive including
// its latency charge.
func BenchmarkCellAtomicOr(b *testing.B) {
	m := NewMachine(Config{Nodes: 2})
	cell := m.NewCell(0, "x", 0)
	c := m.Engine().Spawn("bench", func(c *Coro) {
		a := &coroAccessor{c: c}
		for i := 0; i < b.N; i++ {
			cell.AtomicOr(a, 1)
			cell.Poke(0)
		}
	})
	c.Start(0)
	b.ResetTimer()
	if err := m.Engine().Run(); err != nil {
		b.Fatal(err)
	}
}

// coroAccessor adapts a bare Coro to the Accessor interface for benches.
type coroAccessor struct{ c *Coro }

func (a *coroAccessor) Node() int      { return 0 }
func (a *coroAccessor) Advance(d Time) { a.c.Sleep(d) }

// benchSpin runs one bounded busy-wait of b.N futile probes against a
// flag nobody sets, with the contention-epoch fast path on or off.
func benchSpin(b *testing.B, batched bool) {
	b.ReportAllocs()
	m := NewMachine(Config{Nodes: 1})
	e := m.Engine()
	e.SetBatchedSpins(batched)
	cell := m.NewCell(0, "flag", 0)
	a := &spinAccessor{}
	c := e.Spawn("bench", func(c *Coro) {
		a.c = c
		spec := &SpinSpec{
			ProbeCell: cell,
			Probe:     func() bool { return cell.Peek() != 0 },
			PauseCost: func() Time { return 100 * Nanosecond },
			MaxIters:  int64(b.N),
		}
		c.SpinUntil(a, spec)
	})
	c.Start(0)
	b.ResetTimer()
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkSpinBatched measures a futile probe with spin batching: after
// the two-iteration steady-state proof, the engine commits the remaining
// iterations in closed form, so per-iteration cost is near zero.
func BenchmarkSpinBatched(b *testing.B) { benchSpin(b, true) }

// BenchmarkSpinSlowPath measures the same loop per-iteration: one probe
// charge and one pause per futile probe, the cost every spin paid before
// batching existed.
func BenchmarkSpinSlowPath(b *testing.B) { benchSpin(b, false) }
