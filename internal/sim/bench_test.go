package sim

import "testing"

// BenchmarkEngineEventThroughput measures raw event dispatch rate.
func BenchmarkEngineEventThroughput(b *testing.B) {
	b.ReportAllocs()
	e := NewEngine()
	var step func()
	n := 0
	step = func() {
		n++
		if n < b.N {
			e.After(1, step)
		}
	}
	e.After(1, step)
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkCoroSwitch measures one coroutine round trip (sleep + resume),
// the unit cost of everything the simulator does.
func BenchmarkCoroSwitch(b *testing.B) {
	e := NewEngine()
	c := e.Spawn("bench", func(c *Coro) {
		for i := 0; i < b.N; i++ {
			c.Sleep(1)
		}
	})
	c.Start(0)
	b.ResetTimer()
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkCoroSwitchSlowPath measures the same round trip with inline
// self-wakeups disabled: the event allocation-free heap cycle plus two
// goroutine handoffs every Sleep paid before the fast path existed.
func BenchmarkCoroSwitchSlowPath(b *testing.B) {
	e := NewEngine()
	e.SetInlineWakeups(false)
	c := e.Spawn("bench", func(c *Coro) {
		for i := 0; i < b.N; i++ {
			c.Sleep(1)
		}
	})
	c.Start(0)
	b.ResetTimer()
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkCellAtomicOr measures the simulated atomic primitive including
// its latency charge.
func BenchmarkCellAtomicOr(b *testing.B) {
	m := NewMachine(Config{Nodes: 2})
	cell := m.NewCell(0, "x", 0)
	c := m.Engine().Spawn("bench", func(c *Coro) {
		a := &coroAccessor{c: c}
		for i := 0; i < b.N; i++ {
			cell.AtomicOr(a, 1)
			cell.Poke(0)
		}
	})
	c.Start(0)
	b.ResetTimer()
	if err := m.Engine().Run(); err != nil {
		b.Fatal(err)
	}
}

// coroAccessor adapts a bare Coro to the Accessor interface for benches.
type coroAccessor struct{ c *Coro }

func (a *coroAccessor) Node() int      { return 0 }
func (a *coroAccessor) Advance(d Time) { a.c.Sleep(d) }
