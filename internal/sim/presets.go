package sim

// Machine presets for the re-targeting experiments (§2 discusses moving
// lock objects between architectural platforms, e.g. from UMA to NORMA).
// All presets share the GP1000's instruction and thread-package costs so
// that differences isolate the memory architecture.

// GP1000Config is the default NUMA machine: remote references cost 4×
// local ones through the switch.
func GP1000Config() Config {
	return DefaultConfig()
}

// UMAConfig is a uniform-memory-access machine: every reference costs the
// same (the GP1000's local latency); remoteness disappears.
func UMAConfig() Config {
	c := DefaultConfig()
	c.RemoteAccess = c.LocalAccess
	return c
}

// NORMAConfig approximates a no-remote-memory-access machine where
// "remote" references are message exchanges: 16× local latency and an
// expensive atomic. On such a platform spinning on a remote word is
// prohibitive and blocking (or local-spin) representations win.
func NORMAConfig() Config {
	c := DefaultConfig()
	c.RemoteAccess = 16 * c.LocalAccess
	c.AtomicExtra = 4 * c.LocalAccess
	return c
}

// HotSpotConfig is the GP1000 with memory-module contention enabled:
// each module serializes accesses at one per 400ns, so a word that many
// processors spin on becomes a switch hot spot.
func HotSpotConfig() Config {
	c := DefaultConfig()
	c.ModuleService = 400 * Nanosecond
	return c
}
