package core

import (
	"testing"
	"testing/quick"
)

// recordingPolicy captures the samples it receives and emits one decision
// per sample.
type recordingPolicy struct {
	values []int64
	emit   bool
}

func (p *recordingPolicy) React(s Sample, o *Object) []Decision {
	p.values = append(p.values, s.Value)
	if !p.emit {
		return nil
	}
	return []Decision{{Attr: "x", Value: s.Value}}
}

func newPolicyObject() *Object {
	o := NewObject("t")
	o.Attrs.Define("x", 0, true)
	return o
}

func TestEWMASmooths(t *testing.T) {
	rec := &recordingPolicy{}
	p := &EWMA{Alpha: 1, Den: 4, Inner: rec}
	o := newPolicyObject()
	for _, v := range []int64{100, 0, 0, 0} {
		p.React(Sample{Value: v}, o)
	}
	// First sample initializes the average; later zeros decay it.
	if rec.values[0] != 100 {
		t.Fatalf("first smoothed value = %d, want 100", rec.values[0])
	}
	for i := 1; i < len(rec.values); i++ {
		if rec.values[i] >= rec.values[i-1] {
			t.Fatalf("smoothed values not decaying: %v", rec.values)
		}
	}
	if rec.values[3] == 0 {
		t.Fatalf("EWMA reached 0 too fast: %v", rec.values)
	}
}

func TestEWMADegenerateConfigPassesThrough(t *testing.T) {
	rec := &recordingPolicy{}
	p := &EWMA{Alpha: 0, Den: 0, Inner: rec}
	o := newPolicyObject()
	p.React(Sample{Value: 42}, o)
	if rec.values[0] != 42 {
		t.Fatalf("degenerate EWMA altered the sample: %v", rec.values)
	}
}

func TestHysteresisSuppressesFlapping(t *testing.T) {
	rec := &recordingPolicy{emit: true}
	p := &Hysteresis{MinSamples: 3, Inner: rec}
	o := newPolicyObject()
	applied := 0
	for i := 0; i < 12; i++ {
		for _, d := range p.React(Sample{Value: int64(i)}, o) {
			if err := o.Apply(d, OwnerSelf); err == nil {
				applied++
			}
		}
	}
	// Changes pass at most every MinSamples+1 samples: 12 samples → ≤ 3.
	if applied == 0 || applied > 3 {
		t.Fatalf("applied = %d, want 1..3", applied)
	}
}

func TestHysteresisDoesNotResetOnQuietInner(t *testing.T) {
	rec := &recordingPolicy{emit: false}
	p := &Hysteresis{MinSamples: 2, Inner: rec}
	o := newPolicyObject()
	for i := 0; i < 5; i++ {
		if ds := p.React(Sample{Value: 1}, o); len(ds) != 0 {
			t.Fatal("decisions from a quiet inner policy")
		}
	}
	// Now the inner emits; enough samples have passed, so it goes through
	// immediately.
	rec.emit = true
	if ds := p.React(Sample{Value: 1}, o); len(ds) != 1 {
		t.Fatalf("decision suppressed despite long quiet period (%d)", len(ds))
	}
}

func TestCompositeConcatenates(t *testing.T) {
	a := &recordingPolicy{emit: true}
	b := &recordingPolicy{emit: true}
	p := Composite{a, b}
	o := newPolicyObject()
	ds := p.React(Sample{Value: 5}, o)
	if len(ds) != 2 {
		t.Fatalf("composite emitted %d decisions, want 2", len(ds))
	}
	if len(a.values) != 1 || len(b.values) != 1 {
		t.Fatal("composite did not feed every inner policy")
	}
}

func TestSchedulerAdaptSwitchesVariants(t *testing.T) {
	o := NewObject("lock")
	o.Methods.Define("scheduler", 3, "fcfs", "priority")
	p := SchedulerAdapt{Method: "scheduler", Calm: "fcfs", Busy: "priority", QueueThreshold: 3}
	o.SetPolicy(p)
	o.Monitor.AddSensor("w", 1, nil)

	apply := func(v int64) {
		for _, d := range p.React(Sample{Value: v}, o) {
			if err := o.Apply(d, OwnerSelf); err != nil {
				t.Fatal(err)
			}
		}
	}
	apply(1)
	if v, _ := o.Methods.Installed("scheduler"); v != "fcfs" {
		t.Fatalf("calm: installed %q, want fcfs", v)
	}
	apply(10)
	if v, _ := o.Methods.Installed("scheduler"); v != "priority" {
		t.Fatalf("busy: installed %q, want priority", v)
	}
	// No redundant decision when already in the right variant.
	if ds := p.React(Sample{Value: 10}, o); len(ds) != 0 {
		t.Fatalf("redundant decision emitted: %v", ds)
	}
	apply(0)
	if v, _ := o.Methods.Installed("scheduler"); v != "fcfs" {
		t.Fatalf("calm again: installed %q, want fcfs", v)
	}
}

func TestSchedulerAdaptUnknownMethodIsNoop(t *testing.T) {
	o := NewObject("lock")
	p := SchedulerAdapt{Method: "ghost", Calm: "a", Busy: "b", QueueThreshold: 1}
	if ds := p.React(Sample{Value: 100}, o); ds != nil {
		t.Fatalf("decisions for unknown method: %v", ds)
	}
}

// Property: EWMA output always stays within the min/max envelope of the
// inputs seen so far.
func TestEWMAEnvelopeProperty(t *testing.T) {
	f := func(vals []uint8) bool {
		if len(vals) == 0 {
			return true
		}
		rec := &recordingPolicy{}
		p := &EWMA{Alpha: 1, Den: 3, Inner: rec}
		o := newPolicyObject()
		min, max := int64(vals[0]), int64(vals[0])
		for _, v := range vals {
			x := int64(v)
			if x < min {
				min = x
			}
			if x > max {
				max = x
			}
			p.React(Sample{Value: x}, o)
		}
		for _, s := range rec.values {
			if s < min || s > max {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
