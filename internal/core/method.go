package core

import "fmt"

// Method is one reconfigurable method of the object's interface Γ: a fixed
// name with a registry of implementation variants, one of which is
// installed. Subcomponents models the paper's lock scheduler, which is
// split into registration, acquisition, and release sub-modules: installing
// a variant writes one word per subcomponent, plus a flag set and a flag
// reset to drain pre-registered threads through the old implementation
// (§5.2: "alteration of the scheduler requires three memory writes for
// three submodules, one memory write to set a flag ... and another memory
// write to reset the flag").
type Method struct {
	name          string
	variants      map[string]bool
	order         []string
	installed     string
	subcomponents int
	installs      int
}

// Name returns the method name.
func (m *Method) Name() string { return m.name }

// Installed returns the currently installed variant.
func (m *Method) Installed() string { return m.installed }

// Installs reports how many times a variant was installed (including the
// initial one).
func (m *Method) Installs() int { return m.installs }

// Variants returns the registered variant names in definition order.
func (m *Method) Variants() []string {
	out := make([]string, len(m.order))
	copy(out, m.order)
	return out
}

// MethodTable is the configurable-method part Γ of an object configuration
// C = Γ × Φ.
type MethodTable struct {
	methods map[string]*Method
	order   []string
}

// NewMethodTable returns an empty method table.
func NewMethodTable() *MethodTable {
	return &MethodTable{methods: make(map[string]*Method)}
}

// Define registers a reconfigurable method with its variants; the first
// variant is installed. subcomponents must be ≥ 1 (a monolithic method has
// one).
func (t *MethodTable) Define(name string, subcomponents int, variants ...string) *Method {
	if _, dup := t.methods[name]; dup {
		panic(fmt.Sprintf("core: method %q defined twice", name))
	}
	if len(variants) == 0 {
		panic(fmt.Sprintf("core: method %q needs at least one variant", name))
	}
	if subcomponents < 1 {
		subcomponents = 1
	}
	m := &Method{
		name:          name,
		variants:      make(map[string]bool, len(variants)),
		subcomponents: subcomponents,
	}
	for _, v := range variants {
		if m.variants[v] {
			panic(fmt.Sprintf("core: method %q variant %q defined twice", name, v))
		}
		m.variants[v] = true
		m.order = append(m.order, v)
	}
	m.installed = variants[0]
	m.installs = 1
	t.methods[name] = m
	t.order = append(t.order, name)
	return m
}

// Method returns the named method, or nil.
func (t *MethodTable) Method(name string) *Method { return t.methods[name] }

// Installed returns the installed variant of the named method.
func (t *MethodTable) Installed(name string) (string, error) {
	m, ok := t.methods[name]
	if !ok {
		return "", fmt.Errorf("%w: %q", ErrUnknownMethod, name)
	}
	return m.installed, nil
}

// InstalledAll returns the installed variant of every method.
func (t *MethodTable) InstalledAll() map[string]string {
	out := make(map[string]string, len(t.methods))
	for n, m := range t.methods {
		out[n] = m.installed
	}
	return out
}

// Install switches the method to the given variant and returns the cost:
// one write per subcomponent plus two flag writes. Installing the variant
// that is already installed still pays the cost (the mechanism cannot know
// without reading, and the paper's mechanism writes unconditionally).
func (t *MethodTable) Install(name, variant string) (CostModel, error) {
	m, ok := t.methods[name]
	if !ok {
		return CostModel{}, fmt.Errorf("%w: %q", ErrUnknownMethod, name)
	}
	if !m.variants[variant] {
		return CostModel{}, fmt.Errorf("%w: %q.%q", ErrUnknownVariant, name, variant)
	}
	m.installed = variant
	m.installs++
	return CostModel{Writes: m.subcomponents + 2}, nil
}

// reset restores every method to its first (initial) variant (the I
// operation's Γ₀).
func (t *MethodTable) reset() {
	for _, m := range t.methods {
		m.installed = m.order[0]
	}
}
