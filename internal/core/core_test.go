package core

import (
	"errors"
	"testing"
	"testing/quick"
)

func TestAttrDefineGetSet(t *testing.T) {
	s := NewAttrSet()
	s.Define("spin-time", 10, true)
	if v := s.MustGet("spin-time"); v != 10 {
		t.Fatalf("initial value = %d, want 10", v)
	}
	if err := s.Set("spin-time", 25, OwnerSelf); err != nil {
		t.Fatalf("Set: %v", err)
	}
	if v := s.MustGet("spin-time"); v != 25 {
		t.Fatalf("value = %d, want 25", v)
	}
}

func TestAttrUnknown(t *testing.T) {
	s := NewAttrSet()
	if _, err := s.Get("nope"); !errors.Is(err, ErrUnknownAttr) {
		t.Fatalf("Get unknown: %v, want ErrUnknownAttr", err)
	}
	if err := s.Set("nope", 1, OwnerSelf); !errors.Is(err, ErrUnknownAttr) {
		t.Fatalf("Set unknown: %v, want ErrUnknownAttr", err)
	}
}

func TestAttrImmutable(t *testing.T) {
	s := NewAttrSet()
	s.Define("owner", 0, false)
	if err := s.Set("owner", 5, OwnerSelf); !errors.Is(err, ErrImmutable) {
		t.Fatalf("Set immutable: %v, want ErrImmutable", err)
	}
	if err := s.SetMutable("owner", true); err != nil {
		t.Fatalf("SetMutable: %v", err)
	}
	if err := s.Set("owner", 5, OwnerSelf); err != nil {
		t.Fatalf("Set after SetMutable: %v", err)
	}
}

func TestAttrOwnership(t *testing.T) {
	s := NewAttrSet()
	s.Define("spin-time", 10, true)
	agent := OwnerID(42)
	if err := s.Acquire("spin-time", agent); err != nil {
		t.Fatalf("Acquire: %v", err)
	}
	// Implicit (self) reconfiguration must now be rejected.
	if err := s.Set("spin-time", 99, OwnerSelf); !errors.Is(err, ErrOwned) {
		t.Fatalf("Set while owned: %v, want ErrOwned", err)
	}
	// The holder can write.
	if err := s.Set("spin-time", 99, agent); err != nil {
		t.Fatalf("holder Set: %v", err)
	}
	// Another agent cannot acquire or release.
	if err := s.Acquire("spin-time", OwnerID(7)); !errors.Is(err, ErrOwned) {
		t.Fatalf("second Acquire: %v, want ErrOwned", err)
	}
	if err := s.Release("spin-time", OwnerID(7)); !errors.Is(err, ErrNotOwner) {
		t.Fatalf("foreign Release: %v, want ErrNotOwner", err)
	}
	if err := s.Release("spin-time", agent); err != nil {
		t.Fatalf("Release: %v", err)
	}
	if err := s.Set("spin-time", 5, OwnerSelf); err != nil {
		t.Fatalf("Set after release: %v", err)
	}
}

func TestAttrDuplicateDefinePanics(t *testing.T) {
	s := NewAttrSet()
	s.Define("x", 0, true)
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate Define did not panic")
		}
	}()
	s.Define("x", 1, true)
}

func TestAttrCostAccounting(t *testing.T) {
	s := NewAttrSet()
	s.Define("a", 0, true)
	s.MustGet("a")                 // 1R
	_ = s.Set("a", 1, OwnerSelf)   // 1R 1W
	_ = s.Acquire("a", OwnerID(1)) // 1R 1W
	_ = s.Release("a", OwnerID(1)) // 1R 1W
	got := s.Cost()
	if got.Reads != 4 || got.Writes != 3 {
		t.Fatalf("cost = %v, want 4R 3W", got)
	}
}

func TestAttrSnapshotAndString(t *testing.T) {
	s := NewAttrSet()
	s.Define("spin-time", 10, true)
	s.Define("sleep-time", 1, true)
	snap := s.Snapshot()
	if snap["spin-time"] != 10 || snap["sleep-time"] != 1 {
		t.Fatalf("snapshot = %v", snap)
	}
	if got, want := s.String(), "sleep-time=1 spin-time=10"; got != want {
		t.Fatalf("String = %q, want %q", got, want)
	}
}

func TestMonitorSamplingRate(t *testing.T) {
	m := NewMonitor()
	val := int64(0)
	m.AddSensor("waiting", 2, func() int64 { val++; return val })
	var seen []int64
	m.sink = func(s Sample) { seen = append(seen, s.Value) }
	for i := 0; i < 10; i++ {
		m.Probe("waiting")
	}
	// Every other probe: 5 samples, and the read fn ran exactly 5 times.
	if len(seen) != 5 {
		t.Fatalf("samples = %d, want 5", len(seen))
	}
	if val != 5 {
		t.Fatalf("sensor read %d times, want 5 (read must be lazy)", val)
	}
	s := m.Sensor("waiting")
	if s.Probes() != 10 || s.Samples() != 5 {
		t.Fatalf("probes/samples = %d/%d, want 10/5", s.Probes(), s.Samples())
	}
}

func TestMonitorUnknownSensorNoop(t *testing.T) {
	m := NewMonitor()
	if _, ok := m.Probe("ghost"); ok {
		t.Fatal("probe of unknown sensor returned a sample")
	}
}

func TestMonitorDiversityAndProbeAll(t *testing.T) {
	m := NewMonitor()
	m.AddSensor("a", 1, func() int64 { return 1 })
	m.AddSensor("b", 3, func() int64 { return 2 })
	if m.Diversity() != 2 {
		t.Fatalf("Diversity = %d, want 2", m.Diversity())
	}
	total := 0
	for i := 0; i < 3; i++ {
		total += len(m.ProbeAll())
	}
	// a samples 3 times, b once (on the 3rd probe).
	if total != 4 {
		t.Fatalf("ProbeAll yielded %d samples, want 4", total)
	}
}

func TestMethodTableInstall(t *testing.T) {
	mt := NewMethodTable()
	mt.Define("scheduler", 3, "fcfs", "priority", "handoff")
	if v, _ := mt.Installed("scheduler"); v != "fcfs" {
		t.Fatalf("initial variant = %q, want fcfs", v)
	}
	cost, err := mt.Install("scheduler", "priority")
	if err != nil {
		t.Fatalf("Install: %v", err)
	}
	// 3 subcomponents + set flag + reset flag = 5 writes (§5.2).
	if cost.Writes != 5 || cost.Reads != 0 {
		t.Fatalf("scheduler reconfig cost = %v, want 0R 5W", cost)
	}
	if v, _ := mt.Installed("scheduler"); v != "priority" {
		t.Fatalf("variant = %q, want priority", v)
	}
	if _, err := mt.Install("scheduler", "bogus"); !errors.Is(err, ErrUnknownVariant) {
		t.Fatalf("bogus variant: %v, want ErrUnknownVariant", err)
	}
	if _, err := mt.Install("nope", "fcfs"); !errors.Is(err, ErrUnknownMethod) {
		t.Fatalf("bogus method: %v, want ErrUnknownMethod", err)
	}
}

func TestCostModelAddDurationString(t *testing.T) {
	c := CostModel{Reads: 1, Writes: 1}.Add(CostModel{Writes: 4})
	if c.Reads != 1 || c.Writes != 5 {
		t.Fatalf("Add = %+v", c)
	}
	if d := c.Duration(10, 20); d != 110 {
		t.Fatalf("Duration = %d, want 110", d)
	}
	if s := c.String(); s != "1R 5W" {
		t.Fatalf("String = %q", s)
	}
}

func TestObjectFeedbackLoop(t *testing.T) {
	o := NewObject("lock")
	o.Attrs.Define("spin-time", 10, true)
	waiting := int64(0)
	o.Monitor.AddSensor("waiting", 2, func() int64 { return waiting })
	o.SetPolicy(SimpleAdapt{SpinAttr: "spin-time", WaitingThreshold: 3, Step: 5, MaxSpin: 100})

	// Two probes → one sample with 2 waiters (≤ threshold) → spins += 5.
	waiting = 2
	o.Monitor.Probe("waiting")
	o.Monitor.Probe("waiting")
	if v := o.Attrs.MustGet("spin-time"); v != 15 {
		t.Fatalf("after light contention spin-time = %d, want 15", v)
	}

	// Heavy contention → spins -= 10 per sample until pure blocking.
	waiting = 50
	for i := 0; i < 10; i++ {
		o.Monitor.Probe("waiting")
	}
	if v := o.Attrs.MustGet("spin-time"); v != 0 {
		t.Fatalf("under overload spin-time = %d, want 0 (pure blocking)", v)
	}

	// No waiters → pure spin.
	waiting = 0
	o.Monitor.Probe("waiting")
	o.Monitor.Probe("waiting")
	if v := o.Attrs.MustGet("spin-time"); v != 100 {
		t.Fatalf("with no waiters spin-time = %d, want MaxSpin", v)
	}

	st := o.Stats()
	if st.Applied == 0 || st.Decisions != st.Applied+st.Rejected {
		t.Fatalf("inconsistent stats: %+v", st)
	}
	if c := o.ReconfigCost(); c.Writes == 0 {
		t.Fatalf("reconfig cost not accounted: %v", c)
	}
}

func TestObjectExternalOwnershipBlocksAdaptation(t *testing.T) {
	o := NewObject("lock")
	o.Attrs.Define("spin-time", 10, true)
	o.Monitor.AddSensor("waiting", 1, func() int64 { return 100 })
	o.SetPolicy(DefaultSimpleAdapt("spin-time"))

	agent := OwnerID(9)
	if err := o.Attrs.Acquire("spin-time", agent); err != nil {
		t.Fatalf("Acquire: %v", err)
	}
	o.Monitor.Probe("waiting")
	if v := o.Attrs.MustGet("spin-time"); v != 10 {
		t.Fatalf("owned attribute changed by internal adaptation: %d", v)
	}
	if o.Stats().Rejected == 0 {
		t.Fatal("rejection not counted")
	}
}

func TestObjectApplyMethodDecision(t *testing.T) {
	o := NewObject("lock")
	o.Methods.Define("scheduler", 3, "fcfs", "priority")
	if err := o.Apply(Decision{Method: "scheduler", Variant: "priority"}, OwnerSelf); err != nil {
		t.Fatalf("Apply: %v", err)
	}
	if v, _ := o.Methods.Installed("scheduler"); v != "priority" {
		t.Fatalf("installed = %q", v)
	}
	if c := o.ReconfigCost(); c.Writes != 5 {
		t.Fatalf("cost = %v, want 0R 5W", c)
	}
}

func TestObjectConfigurationString(t *testing.T) {
	o := NewObject("lock")
	o.Attrs.Define("spin-time", 10, true)
	o.Methods.Define("scheduler", 3, "fcfs")
	got := o.Configuration()
	want := "scheduler=fcfs; spin-time=10"
	if got != want {
		t.Fatalf("Configuration = %q, want %q", got, want)
	}
}

// Property: SimpleAdapt keeps the spin attribute within [0, MaxSpin] for
// any sequence of waiter counts.
func TestSimpleAdaptBoundsProperty(t *testing.T) {
	f := func(waiters []uint8, threshold uint8, step uint8) bool {
		p := SimpleAdapt{
			SpinAttr:         "spin",
			WaitingThreshold: int64(threshold%16) + 1,
			Step:             int64(step%32) + 1,
			MaxSpin:          200,
		}
		o := NewObject("x")
		o.Attrs.Define("spin", 50, true)
		o.Monitor.AddSensor("w", 1, nil)
		for _, w := range waiters {
			s := Sample{Sensor: "w", Value: int64(w % 32)}
			for _, d := range p.React(s, o) {
				if err := o.Apply(d, OwnerSelf); err != nil {
					return false
				}
			}
			v := o.Attrs.MustGet("spin")
			if v < 0 || v > p.MaxSpin {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: with zero waiters SimpleAdapt always lands on MaxSpin, and
// with persistent overload it always reaches 0.
func TestSimpleAdaptConvergenceProperty(t *testing.T) {
	f := func(start uint8) bool {
		p := SimpleAdapt{SpinAttr: "spin", WaitingThreshold: 3, Step: 7, MaxSpin: 150}
		o := NewObject("x")
		o.Attrs.Define("spin", int64(start), true)

		for _, d := range p.React(Sample{Value: 0}, o) {
			_ = o.Apply(d, OwnerSelf)
		}
		if o.Attrs.MustGet("spin") != 150 {
			return false
		}
		for i := 0; i < 100; i++ {
			for _, d := range p.React(Sample{Value: 1000}, o) {
				_ = o.Apply(d, OwnerSelf)
			}
		}
		return o.Attrs.MustGet("spin") == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTransitionAccounting(t *testing.T) {
	o := NewObject("x")
	o.Transition(CostModel{Reads: 2, Writes: 1})
	o.Transition(CostModel{Reads: 1})
	if o.Transitions() != 2 {
		t.Fatalf("Transitions = %d, want 2", o.Transitions())
	}
	if c := o.TransitionCost(); c.Reads != 3 || c.Writes != 1 {
		t.Fatalf("TransitionCost = %v, want 3R 1W", c)
	}
}

func TestInitRestoresInitialConfiguration(t *testing.T) {
	o := NewObject("x")
	o.Attrs.Define("spin-time", 10, true)
	o.Methods.Define("scheduler", 3, "fcfs", "priority")
	if err := o.Attrs.Set("spin-time", 99, OwnerSelf); err != nil {
		t.Fatal(err)
	}
	if err := o.Attrs.Acquire("spin-time", OwnerID(7)); err != nil {
		t.Fatal(err)
	}
	if _, err := o.Methods.Install("scheduler", "priority"); err != nil {
		t.Fatal(err)
	}

	o.Init()
	if v := o.Attrs.MustGet("spin-time"); v != 10 {
		t.Fatalf("after Init spin-time = %d, want initial 10", v)
	}
	// Ownership cleared: OwnerSelf can write again.
	if err := o.Attrs.Set("spin-time", 5, OwnerSelf); err != nil {
		t.Fatalf("Set after Init: %v", err)
	}
	if v, _ := o.Methods.Installed("scheduler"); v != "fcfs" {
		t.Fatalf("after Init scheduler = %q, want fcfs", v)
	}
}
