package core

import (
	"fmt"
	"sort"
	"strings"
)

// Attr is one mutable attribute Uᵢ ∈ CV: a named integer value with a
// mutability flag and time-dependent ownership (§3). Values are int64
// because every attribute in the paper's lock objects (spin-time,
// delay-time, sleep-time, timeout, thresholds) is a count or a duration.
type Attr struct {
	name    string
	value   int64
	init    int64
	mutable bool
	owner   OwnerID
}

// Name returns the attribute name.
func (a *Attr) Name() string { return a.name }

// Value returns the current value without cost accounting (diagnostics).
func (a *Attr) Value() int64 { return a.value }

// Mutable reports whether the attribute may currently be changed.
func (a *Attr) Mutable() bool { return a.mutable }

// Owner returns the agent holding explicit ownership, or OwnerNone.
func (a *Attr) Owner() OwnerID { return a.owner }

// AttrSet is the mutable-attribute sub-state CV of an adaptive object,
// with read/write cost accounting. It is not internally synchronized: the
// simulated substrate is sequential by construction, and the native
// substrate wraps it under its own lock.
type AttrSet struct {
	attrs map[string]*Attr
	order []string
	cost  CostModel
}

// NewAttrSet returns an empty attribute set.
func NewAttrSet() *AttrSet {
	return &AttrSet{attrs: make(map[string]*Attr)}
}

// Define adds an attribute with an initial value. Defining an existing
// name panics: attribute layouts are fixed at object construction.
func (s *AttrSet) Define(name string, init int64, mutable bool) *Attr {
	if _, dup := s.attrs[name]; dup {
		panic(fmt.Sprintf("core: attribute %q defined twice", name))
	}
	a := &Attr{name: name, value: init, init: init, mutable: mutable}
	s.attrs[name] = a
	s.order = append(s.order, name)
	return a
}

// Get reads an attribute value, counting one read.
func (s *AttrSet) Get(name string) (int64, error) {
	a, ok := s.attrs[name]
	if !ok {
		return 0, fmt.Errorf("%w: %q", ErrUnknownAttr, name)
	}
	s.cost.Reads++
	return a.value, nil
}

// MustGet reads an attribute that is known to exist; it panics otherwise.
func (s *AttrSet) MustGet(name string) int64 {
	v, err := s.Get(name)
	if err != nil {
		panic(err)
	}
	return v
}

// Set writes an attribute on behalf of agent by, counting one read (the
// mutability/ownership check) and one write. It fails if the attribute is
// immutable, or if another agent holds explicit ownership.
func (s *AttrSet) Set(name string, v int64, by OwnerID) error {
	a, ok := s.attrs[name]
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownAttr, name)
	}
	s.cost.Reads++
	if !a.mutable {
		return fmt.Errorf("%w: %q", ErrImmutable, name)
	}
	if a.owner != OwnerNone && a.owner != by {
		return fmt.Errorf("%w: %q held by %d", ErrOwned, name, a.owner)
	}
	a.value = v
	s.cost.Writes++
	return nil
}

// Acquire takes explicit ownership of an attribute for an external agent
// (the paper's "acquisition" method, §5.1). It costs one read-modify-write
// (counted as a read plus a write) and fails if another agent holds it.
func (s *AttrSet) Acquire(name string, by OwnerID) error {
	a, ok := s.attrs[name]
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownAttr, name)
	}
	s.cost.Reads++
	if a.owner != OwnerNone && a.owner != by {
		return fmt.Errorf("%w: %q held by %d", ErrOwned, name, a.owner)
	}
	a.owner = by
	s.cost.Writes++
	return nil
}

// Release drops explicit ownership. Only the holder may release.
func (s *AttrSet) Release(name string, by OwnerID) error {
	a, ok := s.attrs[name]
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownAttr, name)
	}
	s.cost.Reads++
	if a.owner != by {
		return fmt.Errorf("%w: %q", ErrNotOwner, name)
	}
	a.owner = OwnerNone
	s.cost.Writes++
	return nil
}

// SetMutable changes whether an attribute may be modified (attribute
// mutability is itself time-dependent in the model).
func (s *AttrSet) SetMutable(name string, mutable bool) error {
	a, ok := s.attrs[name]
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownAttr, name)
	}
	a.mutable = mutable
	return nil
}

// Names returns the attribute names in definition order.
func (s *AttrSet) Names() []string {
	out := make([]string, len(s.order))
	copy(out, s.order)
	return out
}

// Snapshot returns the current instance CVᵢ of the attribute values,
// without cost accounting.
func (s *AttrSet) Snapshot() map[string]int64 {
	out := make(map[string]int64, len(s.attrs))
	for n, a := range s.attrs {
		out[n] = a.value
	}
	return out
}

// Cost returns reads and writes accumulated by all attribute operations.
func (s *AttrSet) Cost() CostModel { return s.cost }

// String renders the attributes sorted by name, e.g.
// "sleep-time=1 spin-time=10".
func (s *AttrSet) String() string {
	names := make([]string, 0, len(s.attrs))
	for n := range s.attrs {
		names = append(names, n)
	}
	sort.Strings(names)
	parts := make([]string, len(names))
	for i, n := range names {
		parts[i] = fmt.Sprintf("%s=%d", n, s.attrs[n].value)
	}
	return strings.Join(parts, " ")
}

// reset restores every attribute to its initial value and clears explicit
// ownership (the I operation's CV₀).
func (s *AttrSet) reset() {
	for _, a := range s.attrs {
		a.value = a.init
		a.owner = OwnerNone
	}
}
