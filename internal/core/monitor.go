package core

// Sample is one monitored value vᵢ delivered from the monitor module to the
// adaptation policy.
type Sample struct {
	// Sensor is the name of the sensor that produced the sample.
	Sensor string
	// Value is the sensed value.
	Value int64
	// Seq is the sample's 1-based sequence number within its sensor.
	Seq uint64
}

// Sensor is one data-collecting probe inserted at an instrumentation point
// (§5.1: the customized lock monitor senses the number of waiting threads
// during every other unlock). Probing is cheap when no sample is due: one
// counter increment.
type Sensor struct {
	name string
	// every is the sampling rate: a sample is taken on every every-th
	// probe (1 = every probe, 2 = every other probe, ...).
	every int
	read  func() int64

	probes  uint64
	samples uint64
}

// Name returns the sensor name.
func (s *Sensor) Name() string { return s.name }

// Every returns the sampling rate (probes per sample).
func (s *Sensor) Every() int { return s.every }

// Probes reports how many times the instrumentation point was hit.
func (s *Sensor) Probes() uint64 { return s.probes }

// Samples reports how many samples were actually taken.
func (s *Sensor) Samples() uint64 { return s.samples }

// Monitor is the monitor module M: a set of sensors whose samples are
// delivered synchronously to a sink (the object's feedback loop). The
// number of sensors is the paper's "diversity factor"; each sensor's Every
// is its sampling rate.
type Monitor struct {
	sensors []*Sensor
	byName  map[string]*Sensor
	sink    func(Sample)
}

// NewMonitor returns an empty monitor.
func NewMonitor() *Monitor {
	return &Monitor{byName: make(map[string]*Sensor)}
}

// AddSensor registers a sensor. every < 1 is treated as 1 (sample every
// probe). read is called only when a sample is due.
func (m *Monitor) AddSensor(name string, every int, read func() int64) *Sensor {
	if _, dup := m.byName[name]; dup {
		panic("core: sensor " + name + " defined twice")
	}
	if every < 1 {
		every = 1
	}
	s := &Sensor{name: name, every: every, read: read}
	m.sensors = append(m.sensors, s)
	m.byName[name] = s
	return s
}

// Sensor returns the named sensor, or nil.
func (m *Monitor) Sensor(name string) *Sensor { return m.byName[name] }

// Diversity returns the number of registered sensors (the diversity factor
// of the monitored information).
func (m *Monitor) Diversity() int { return len(m.sensors) }

// Probe hits the named sensor's instrumentation point. If a sample is due
// per the sampling rate, the sensor is read and the sample is delivered to
// the sink; the sample is returned with ok=true. Probing an unknown sensor
// is a no-op (instrumentation may outlive sensor configurations).
func (m *Monitor) Probe(name string) (Sample, bool) {
	s := m.byName[name]
	if s == nil {
		return Sample{}, false
	}
	s.probes++
	if s.probes%uint64(s.every) != 0 {
		return Sample{}, false
	}
	s.samples++
	smp := Sample{Sensor: s.name, Value: s.read(), Seq: s.samples}
	if m.sink != nil {
		m.sink(smp)
	}
	return smp, true
}

// ProbeAll probes every sensor, returning the samples that were due.
func (m *Monitor) ProbeAll() []Sample {
	var out []Sample
	for _, s := range m.sensors {
		if smp, ok := m.Probe(s.name); ok {
			out = append(out, smp)
		}
	}
	return out
}
