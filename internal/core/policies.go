package core

// This file provides a small library of adaptation policies beyond the
// paper's SimpleAdapt. The paper treats policies as user-provided (§3);
// these address the tuning issues it raises — information overload,
// oscillation, and its §7 future-work item of adapting lock *schedulers*
// in different computation phases.

// EWMA wraps another policy, feeding it an exponentially-weighted moving
// average of the sensed values instead of raw samples. It trades reaction
// speed for stability — the §3 "quality of adaptation" knob.
type EWMA struct {
	// Alpha is the new-sample weight numerator: avg ← (Alpha·v +
	// (Den-Alpha)·avg) / Den. Integer arithmetic keeps the policy cheap
	// enough to run inline.
	Alpha, Den int64
	// Inner receives the smoothed samples.
	Inner Policy

	initialized bool
	avg         int64
}

// React implements Policy.
func (p *EWMA) React(s Sample, o *Object) []Decision {
	if p.Den <= 0 || p.Alpha <= 0 || p.Alpha > p.Den {
		// Degenerate configuration: pass through.
		return p.Inner.React(s, o)
	}
	if !p.initialized {
		p.initialized = true
		p.avg = s.Value
	} else {
		p.avg = (p.Alpha*s.Value + (p.Den-p.Alpha)*p.avg) / p.Den
	}
	smoothed := s
	smoothed.Value = p.avg
	return p.Inner.React(smoothed, o)
}

// Hysteresis wraps another policy and suppresses its decisions unless at
// least MinSamples samples have passed since the last applied change —
// damping the oscillation a closely-coupled loop can exhibit when the
// monitored signal flaps.
type Hysteresis struct {
	MinSamples uint64
	Inner      Policy

	sinceChange uint64
}

// React implements Policy.
func (p *Hysteresis) React(s Sample, o *Object) []Decision {
	ds := p.Inner.React(s, o)
	p.sinceChange++
	if len(ds) == 0 {
		return nil
	}
	if p.sinceChange <= p.MinSamples {
		return nil
	}
	p.sinceChange = 0
	return ds
}

// Composite runs several policies on every sample and concatenates their
// decisions (e.g. a waiting-policy adapter plus a scheduler adapter).
type Composite []Policy

// React implements Policy.
func (p Composite) React(s Sample, o *Object) []Decision {
	var out []Decision
	for _, inner := range p {
		out = append(out, inner.React(s, o)...)
	}
	return out
}

// SchedulerAdapt is the §7 future-work policy: it reconfigures a lock's
// scheduler method between computation phases. With few waiters the queue
// order is irrelevant and the cheap FCFS release component suffices; when
// the queue grows past QueueThreshold, ordering matters and the priority
// variant is installed so urgent threads are served first.
type SchedulerAdapt struct {
	// Method is the reconfigurable method name (locks.MethodScheduler).
	Method string
	// Calm and Busy are the variants for the two regimes (typically
	// "fcfs" and "priority").
	Calm, Busy string
	// QueueThreshold is the waiting count at which Busy is installed.
	QueueThreshold int64
}

// React implements Policy.
func (p SchedulerAdapt) React(s Sample, o *Object) []Decision {
	cur, err := o.Methods.Installed(p.Method)
	if err != nil {
		return nil
	}
	want := p.Calm
	if s.Value > p.QueueThreshold {
		want = p.Busy
	}
	if want == cur {
		return nil
	}
	return []Decision{{Method: p.Method, Variant: want}}
}

// ExecModeAdapt switches a monitor between synchronous and asynchronous
// execution off a contention sensor: when the sensed value (e.g. queued or
// waiting method calls) climbs to AsyncAt, batched asynchronous execution
// is installed; when it falls back to SyncAt, direct synchronous execution
// returns. The two thresholds form a hysteresis band (set AsyncAt >
// SyncAt) so a value hovering at one boundary does not flap the mode.
// Execution mode is just another adjustable implementation choice, per
// the "Adjusted Objects" framing.
type ExecModeAdapt struct {
	// Attr is the mutable execution-mode attribute (active.AttrExecMode).
	Attr string
	// Sync and Async are the attribute values for the two modes
	// (typically 0 and 1).
	Sync, Async int64
	// AsyncAt is the sensed value at (or above) which Async is installed;
	// SyncAt the value at (or below) which Sync is restored.
	AsyncAt, SyncAt int64
}

// React implements Policy.
func (p ExecModeAdapt) React(s Sample, o *Object) []Decision {
	cur, err := o.Attrs.Get(p.Attr)
	if err != nil {
		return nil
	}
	want := cur
	switch {
	case s.Value >= p.AsyncAt:
		want = p.Async
	case s.Value <= p.SyncAt:
		want = p.Sync
	}
	if want == cur {
		return nil
	}
	return []Decision{{Attr: p.Attr, Value: want}}
}
