package core

// SimpleAdapt is the paper's adaptation policy from §4, verbatim but
// parameterized:
//
//	IF no-of-waiting-threads = 0
//	    Configure the lock to be pure spin;
//	ELSE IF no-of-waiting-threads ≤ Waiting-Threshold
//	    Increase no-of-spins by n;
//	ELSE IF no-of-waiting-threads > Waiting-Threshold
//	    Decrease no-of-spins by 2*n;
//	IF no-of-spins ≤ 0
//	    Configure the lock to be pure blocking;
//
// "Pure spin" is represented by raising the spin attribute to MaxSpin (a
// waiter never exhausts its spins before the sample horizon) and "pure
// blocking" by a spin attribute of zero. The policy reads the current spin
// attribute through the object's AttrSet, so its cost is visible in the
// object's cost accounting.
type SimpleAdapt struct {
	// SpinAttr is the attribute holding the number of initial spins
	// (typically locks.AttrSpinTime).
	SpinAttr string
	// WaitingThreshold is the waiting-thread count above which spins are
	// decreased (the paper's Waiting-Threshold).
	WaitingThreshold int64
	// Step is the lock-specific constant n.
	Step int64
	// MaxSpin caps the spin count and encodes the pure-spin configuration.
	MaxSpin int64
}

// DefaultSimpleAdapt returns the constants used by the TSP experiments:
// threshold 3, step 10, cap 1000. The paper leaves tuning Waiting-Threshold
// and n to future work; cmd/figures -fig ablation sweeps them.
func DefaultSimpleAdapt(spinAttr string) SimpleAdapt {
	return SimpleAdapt{SpinAttr: spinAttr, WaitingThreshold: 3, Step: 10, MaxSpin: 1000}
}

// React implements Policy.
func (p SimpleAdapt) React(s Sample, o *Object) []Decision {
	cur, err := o.Attrs.Get(p.SpinAttr)
	if err != nil {
		return nil
	}
	waiting := s.Value
	var next int64
	switch {
	case waiting == 0:
		next = p.MaxSpin
	case waiting <= p.WaitingThreshold:
		next = cur + p.Step
	default:
		next = cur - 2*p.Step
	}
	if next > p.MaxSpin {
		next = p.MaxSpin
	}
	if next < 0 {
		next = 0
	}
	if next == cur {
		return nil
	}
	return []Decision{{Attr: p.SpinAttr, Value: next}}
}
