package core

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// Ledger entry kinds.
const (
	// EntrySample: one monitor sample entered an object's feedback loop.
	EntrySample = "sample"
	// EntryApply: one reconfiguration decision Ψ was attempted.
	EntryApply = "apply"
	// EntryDeliver: the loosely-coupled monitor pipeline delivered one
	// record to its subscribers (internal/monitor appends these).
	EntryDeliver = "deliver"
)

// Entry is one record in the adaptation decision ledger. Every field is a
// simulated quantity, so a fixed seed produces byte-identical ledgers.
type Entry struct {
	// At is the virtual time of the entry in nanoseconds.
	At int64 `json:"at"`
	// Object is the adaptive object (or pipeline) the entry concerns.
	Object string `json:"object"`
	// Kind is EntrySample, EntryApply, or EntryDeliver.
	Kind string `json:"kind"`

	// Sensor/Value/Seq describe the monitor sample: the one recorded (for
	// sample and deliver entries) or the one that triggered the decision
	// (for apply entries reached through the feedback loop).
	Sensor string `json:"sensor,omitempty"`
	Value  int64  `json:"value,omitempty"`
	Seq    uint64 `json:"seq,omitempty"`

	// Decision is the rendered reconfiguration decision (apply entries).
	Decision string `json:"decision,omitempty"`
	// Agent is the acting OwnerID (apply entries).
	Agent int64 `json:"agent,omitempty"`
	// Prev and Next are the object's rendered configuration before and
	// after the decision was applied (apply entries).
	Prev string `json:"prev,omitempty"`
	Next string `json:"next,omitempty"`
	// Err is the rejection reason when the decision failed.
	Err string `json:"error,omitempty"`

	// Lag is the collection-to-delivery delay in nanoseconds (deliver
	// entries — the coupling looseness the paper's §3 discusses).
	Lag int64 `json:"lag,omitempty"`
}

// Ledger is a bounded, append-only record of adaptation activity: every
// sample entering a feedback loop, every reconfiguration decision with its
// before/after configuration, and every loosely-coupled delivery. The nil
// *Ledger is a valid disabled ledger: every method is nil-safe and free.
type Ledger struct {
	limit   int
	entries []Entry
	dropped uint64
}

// DefaultLedgerCapacity bounds the entry slice when NewLedger is passed a
// non-positive capacity.
const DefaultLedgerCapacity = 1 << 16

// NewLedger returns a ledger bounded at capacity entries (<= 0 means
// DefaultLedgerCapacity). Entries past the bound are counted in Dropped
// and discarded — deterministically, since the entry stream itself is
// deterministic.
func NewLedger(capacity int) *Ledger {
	if capacity <= 0 {
		capacity = DefaultLedgerCapacity
	}
	return &Ledger{limit: capacity}
}

// Append records one entry. Safe (and free) on a nil ledger.
func (l *Ledger) Append(e Entry) {
	if l == nil {
		return
	}
	if len(l.entries) >= l.limit {
		l.dropped++
		return
	}
	l.entries = append(l.entries, e)
}

// Entries returns the recorded entries in append order. The slice is the
// ledger's own backing store; callers must not mutate it.
func (l *Ledger) Entries() []Entry {
	if l == nil {
		return nil
	}
	return l.entries
}

// Len reports the number of recorded entries.
func (l *Ledger) Len() int {
	if l == nil {
		return 0
	}
	return len(l.entries)
}

// Dropped reports how many entries were discarded at the capacity bound.
func (l *Ledger) Dropped() uint64 {
	if l == nil {
		return 0
	}
	return l.dropped
}

// ledgerJSON is the WriteJSON envelope.
type ledgerJSON struct {
	Entries []Entry `json:"entries"`
	Dropped uint64  `json:"dropped,omitempty"`
}

// WriteJSON emits the ledger as indented JSON: an object with the entry
// array (append order) and the dropped count. Byte-reproducible for a
// fixed seed.
func (l *Ledger) WriteJSON(w io.Writer) error {
	doc := ledgerJSON{Entries: l.Entries(), Dropped: l.Dropped()}
	if doc.Entries == nil {
		doc.Entries = []Entry{}
	}
	enc, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	enc = append(enc, '\n')
	_, err = w.Write(enc)
	return err
}

// renderAgent names an OwnerID for the report.
func renderAgent(id int64) string {
	switch OwnerID(id) {
	case OwnerSelf:
		return "self"
	case OwnerNone:
		return "none"
	default:
		return fmt.Sprintf("agent %d", id)
	}
}

// WriteReport renders the "why did it switch?" report: per object, every
// reconfiguration decision with the sample that triggered it and the
// configuration it moved the object between, plus sample/delivery volume.
func (l *Ledger) WriteReport(w io.Writer) error {
	var applies int
	perObject := map[string][]Entry{}
	for _, e := range l.Entries() {
		perObject[e.Object] = append(perObject[e.Object], e)
		if e.Kind == EntryApply {
			applies++
		}
	}
	names := make([]string, 0, len(perObject))
	for n := range perObject {
		names = append(names, n)
	}
	sort.Strings(names)

	if _, err := fmt.Fprintf(w, "why did it switch? — adaptation decision ledger (%d entries, %d decisions, %d dropped)\n",
		l.Len(), applies, l.Dropped()); err != nil {
		return err
	}
	for _, n := range names {
		entries := perObject[n]
		var samples, deliveries, decisions int
		var lagSum int64
		for _, e := range entries {
			switch e.Kind {
			case EntrySample:
				samples++
			case EntryDeliver:
				deliveries++
				lagSum += e.Lag
			case EntryApply:
				decisions++
			}
		}
		if _, err := fmt.Fprintf(w, "\nobject %s: %d samples, %d decisions", n, samples, decisions); err != nil {
			return err
		}
		if deliveries > 0 {
			if _, err := fmt.Fprintf(w, ", %d deliveries (mean lag %d ns)", deliveries, lagSum/int64(deliveries)); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
		for _, e := range entries {
			if e.Kind != EntryApply {
				continue
			}
			outcome := "applied"
			if e.Err != "" {
				outcome = "rejected: " + e.Err
			}
			if _, err := fmt.Fprintf(w, "  at %12d ns  %-24s [%s, %s]\n", e.At, e.Decision, renderAgent(e.Agent), outcome); err != nil {
				return err
			}
			if e.Sensor != "" {
				if _, err := fmt.Fprintf(w, "    trigger: %s=%d (sample #%d)\n", e.Sensor, e.Value, e.Seq); err != nil {
					return err
				}
			}
			if e.Prev != "" || e.Next != "" {
				if _, err := fmt.Fprintf(w, "    config:  %s -> %s\n", e.Prev, e.Next); err != nil {
					return err
				}
			}
		}
	}
	return nil
}
