package core

import (
	"bytes"
	"strings"
	"testing"
)

// scriptedLedger builds a small fixed ledger exercising every entry kind:
// two samples and one applied decision on an adaptive lock, one rejected
// decision, and one loosely-coupled delivery on a pipeline.
func scriptedLedger() *Ledger {
	l := NewLedger(0)
	l.Append(Entry{At: 100, Object: "alock", Kind: EntrySample, Sensor: "waiting-threads", Value: 3, Seq: 1})
	l.Append(Entry{At: 250, Object: "alock", Kind: EntrySample, Sensor: "waiting-threads", Value: 5, Seq: 2})
	l.Append(Entry{
		At: 250, Object: "alock", Kind: EntryApply,
		Sensor: "waiting-threads", Value: 5, Seq: 2,
		Decision: "set spin-limit=40", Agent: int64(OwnerSelf),
		Prev: "spin-limit=30", Next: "spin-limit=40",
	})
	l.Append(Entry{
		At: 400, Object: "alock", Kind: EntryApply,
		Decision: "set spin-limit=10", Agent: 7,
		Prev: "spin-limit=40", Next: "spin-limit=40",
		Err: "owned by another agent",
	})
	l.Append(Entry{At: 500, Object: "pipe", Kind: EntryDeliver, Sensor: "spin-time", Value: 900, Seq: 3, Lag: 120})
	return l
}

// TestWriteJSONEmptyGolden pins the empty envelope: the entry array must
// render as [] (never null) so downstream tooling can always iterate.
func TestWriteJSONEmptyGolden(t *testing.T) {
	var buf bytes.Buffer
	var nilLedger *Ledger
	if err := nilLedger.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	want := "{\n  \"entries\": []\n}\n"
	if got := buf.String(); got != want {
		t.Errorf("nil ledger JSON:\n%q\nwant:\n%q", got, want)
	}
	buf.Reset()
	if err := NewLedger(4).WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if got := buf.String(); got != want {
		t.Errorf("empty ledger JSON:\n%q\nwant:\n%q", got, want)
	}
}

// TestWriteJSONGolden pins the populated envelope byte-for-byte, including
// omitempty behavior on the optional fields.
func TestWriteJSONGolden(t *testing.T) {
	l := NewLedger(1)
	l.Append(Entry{At: 100, Object: "alock", Kind: EntrySample, Sensor: "waiting-threads", Value: 3, Seq: 1})
	l.Append(Entry{At: 200, Object: "alock", Kind: EntrySample, Sensor: "waiting-threads", Value: 4, Seq: 2})
	var buf bytes.Buffer
	if err := l.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	want := `{
  "entries": [
    {
      "at": 100,
      "object": "alock",
      "kind": "sample",
      "sensor": "waiting-threads",
      "value": 3,
      "seq": 1
    }
  ],
  "dropped": 1
}
`
	if got := buf.String(); got != want {
		t.Errorf("ledger JSON:\n%s\nwant:\n%s", got, want)
	}
}

// TestWriteReportGolden pins the "why did it switch?" rendering across all
// three entry kinds, agent naming, rejection, and delivery lag.
func TestWriteReportGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := scriptedLedger().WriteReport(&buf); err != nil {
		t.Fatal(err)
	}
	want := "" +
		"why did it switch? — adaptation decision ledger (5 entries, 2 decisions, 0 dropped)\n" +
		"\n" +
		"object alock: 2 samples, 2 decisions\n" +
		"  at          250 ns  set spin-limit=40        [self, applied]\n" +
		"    trigger: waiting-threads=5 (sample #2)\n" +
		"    config:  spin-limit=30 -> spin-limit=40\n" +
		"  at          400 ns  set spin-limit=10        [agent 7, rejected: owned by another agent]\n" +
		"    config:  spin-limit=40 -> spin-limit=40\n" +
		"\n" +
		"object pipe: 0 samples, 0 decisions, 1 deliveries (mean lag 120 ns)\n"
	if got := buf.String(); got != want {
		t.Errorf("report:\n%s\nwant:\n%s", got, want)
	}
}

// TestLedgerCapacity pins the bounded-append contract: entries past the
// limit are dropped (counted, not wrapped), and the recorded prefix keeps
// append order.
func TestLedgerCapacity(t *testing.T) {
	l := NewLedger(2)
	for i := int64(1); i <= 5; i++ {
		l.Append(Entry{At: i, Object: "x", Kind: EntrySample})
	}
	if l.Len() != 2 {
		t.Errorf("Len = %d, want 2", l.Len())
	}
	if l.Dropped() != 3 {
		t.Errorf("Dropped = %d, want 3", l.Dropped())
	}
	if es := l.Entries(); es[0].At != 1 || es[1].At != 2 {
		t.Errorf("kept entries at %d,%d; want the first two", es[0].At, es[1].At)
	}
}

// TestLedgerNilSafety checks the disabled-instrument contract: every
// method on a nil ledger is a free no-op.
func TestLedgerNilSafety(t *testing.T) {
	var l *Ledger
	allocs := testing.AllocsPerRun(100, func() {
		l.Append(Entry{At: 1})
		_ = l.Entries()
		_ = l.Len()
		_ = l.Dropped()
	})
	if allocs != 0 {
		t.Errorf("nil ledger methods allocate %.0f allocs/op, want 0", allocs)
	}
	var buf bytes.Buffer
	if err := l.WriteReport(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "(0 entries, 0 decisions, 0 dropped)") {
		t.Errorf("nil ledger report header wrong:\n%s", buf.String())
	}
}

// TestFeedbackWithoutLedgerAllocationFree guards the zero-overhead
// contract at the object level: an un-ledgered feedback pass must not
// allocate. (Regression: taking &s of the sample parameter outside the
// ledger branch forced it to the heap on every call.)
func TestFeedbackWithoutLedgerAllocationFree(t *testing.T) {
	o := NewObject("x")
	allocs := testing.AllocsPerRun(200, func() {
		o.feedback(Sample{Sensor: "s", Value: 1, Seq: 1})
	})
	if allocs != 0 {
		t.Errorf("un-ledgered feedback allocates %.0f allocs/op, want 0", allocs)
	}
}

// TestNewLedgerDefaultCapacity checks the non-positive-capacity fallback.
func TestNewLedgerDefaultCapacity(t *testing.T) {
	for _, c := range []int{0, -5} {
		l := NewLedger(c)
		if l.limit != DefaultLedgerCapacity {
			t.Errorf("NewLedger(%d).limit = %d, want %d", c, l.limit, DefaultLedgerCapacity)
		}
	}
}
