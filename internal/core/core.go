// Package core implements the paper's model of adaptive objects
// (Mukherjee & Schwan, HPDC 1993, §3): objects whose behaviour can be
// reconfigured at run time and which embed the machinery to reconfigure
// themselves.
//
// Following the paper's formal characterization, an adaptive object couples:
//
//   - internal state IV (owned by the object's ordinary methods; not
//     modelled here beyond cost accounting),
//   - mutable attributes CV (AttrSet) whose values select among
//     implementations — each instance CVᵢ of the attribute values is one
//     policy Φᵢ,
//   - a method table Γ (MethodTable) whose installed variants complete the
//     configuration C = Γ × Φ,
//   - a monitor module M (Monitor): named sensors probed at instrumentation
//     points, each taking a sample every N-th probe (the sampling rate),
//   - a user-provided adaptation policy P (Policy) that turns samples into
//     reconfiguration decisions, and
//   - the reconfiguration mechanism Ψ (Object.Apply), whose cost is
//     accounted in memory reads and writes, t = n₁R n₂W.
//
// The feedback loop M →(vᵢ) P →(d_c) Ψ is closely coupled: a probe that
// yields a sample invokes the policy and applies its decisions
// synchronously, in the probing context. That is the design the paper
// arrives at after finding a monitor-thread-based loop too loosely coupled
// (§5.1).
//
// The package is substrate-agnostic: internal/locks instantiates it for
// simulated multiprocessor locks, and internal/adaptivesync for a native Go
// mutex.
package core

import (
	"errors"
	"fmt"
	"sort"
	"strings"
)

// Package-level errors for attribute and method reconfiguration.
var (
	ErrUnknownAttr    = errors.New("core: unknown attribute")
	ErrImmutable      = errors.New("core: attribute is not mutable")
	ErrOwned          = errors.New("core: attribute owned by another agent")
	ErrNotOwner       = errors.New("core: caller does not own attribute")
	ErrUnknownMethod  = errors.New("core: unknown method")
	ErrUnknownVariant = errors.New("core: unknown method variant")
)

// OwnerID identifies an agent for attribute ownership. The paper
// distinguishes implicit ownership (acquired by invoking object methods —
// represented by OwnerSelf) from explicit ownership (an external agent,
// typically a monitoring thread, invoking the acquisition method).
type OwnerID int64

// OwnerNone means the attribute is unowned; OwnerSelf is the object acting
// through its own methods (the common case: the lock owner reconfigures).
const (
	OwnerNone OwnerID = 0
	OwnerSelf OwnerID = -1
)

// CostModel expresses the cost t of a state-transition or reconfiguration
// operation as memory reads and writes, t = n₁R n₂W (§3.1).
type CostModel struct {
	Reads  int
	Writes int
}

// Add returns the sum of two costs (the paper composes complex
// reconfigurations by adding primitive-operation costs).
func (c CostModel) Add(o CostModel) CostModel {
	return CostModel{Reads: c.Reads + o.Reads, Writes: c.Writes + o.Writes}
}

// Duration converts the cost to time given per-read and per-write
// latencies (in any unit the caller chooses).
func (c CostModel) Duration(read, write int64) int64 {
	return int64(c.Reads)*read + int64(c.Writes)*write
}

// String renders the cost in the paper's notation, e.g. "1R 1W".
func (c CostModel) String() string {
	return fmt.Sprintf("%dR %dW", c.Reads, c.Writes)
}

// Decision is one reconfiguration decision d_c emitted by a policy: either
// an attribute assignment (Attr != "") or a method-variant installation
// (Method != ""), or both.
type Decision struct {
	Attr  string
	Value int64

	Method  string
	Variant string
}

// String renders the decision for logs and tests.
func (d Decision) String() string {
	var parts []string
	if d.Attr != "" {
		parts = append(parts, fmt.Sprintf("%s←%d", d.Attr, d.Value))
	}
	if d.Method != "" {
		parts = append(parts, fmt.Sprintf("%s⇐%s", d.Method, d.Variant))
	}
	if len(parts) == 0 {
		return "noop"
	}
	return strings.Join(parts, " ")
}

// Policy is a user-provided adaptation policy: it receives a monitor sample
// and the object, and returns reconfiguration decisions. React runs
// synchronously inside the probing context (closely coupled), so it must be
// cheap.
type Policy interface {
	React(s Sample, o *Object) []Decision
}

// PolicyFunc adapts a function to the Policy interface.
type PolicyFunc func(s Sample, o *Object) []Decision

// React calls f.
func (f PolicyFunc) React(s Sample, o *Object) []Decision { return f(s, o) }

// Object is an adaptive object: attributes, methods, monitor, and policy
// wired into a feedback loop. Zero or more of the parts may be unused; a
// reconfigurable (but not adaptive) object simply has no policy.
type Object struct {
	name    string
	Attrs   *AttrSet
	Methods *MethodTable
	Monitor *Monitor
	policy  Policy

	onSample func(Sample)
	onApply  func(Decision, OwnerID, error)

	// ledgerSrc/ledgerNow feed the adaptation decision ledger. Both are
	// lazy accessors (the ledger may be attached to the substrate after
	// the object is built) and may be nil or return nil — the nil ledger
	// is free to append to. core stays substrate-agnostic: the substrate
	// supplies virtual (or wall) timestamps through ledgerNow.
	ledgerSrc func() *Ledger
	ledgerNow func() int64
	// feedbackSample is the sample currently flowing through the feedback
	// loop, so Apply can record what triggered the decision.
	feedbackSample *Sample

	decisions   uint64
	applied     uint64
	rejected    uint64
	transitions uint64
	reconfig    CostModel
	ivCost      CostModel
}

// NewObject creates an empty adaptive object with the given diagnostic
// name. The monitor is wired so that samples flow to the policy and
// decisions are applied immediately.
func NewObject(name string) *Object {
	o := &Object{
		name:    name,
		Attrs:   NewAttrSet(),
		Methods: NewMethodTable(),
		Monitor: NewMonitor(),
	}
	o.Monitor.sink = o.feedback
	return o
}

// Name returns the object's diagnostic name.
func (o *Object) Name() string { return o.name }

// SetPolicy installs the adaptation policy P. A nil policy turns the
// object back into a merely reconfigurable one.
func (o *Object) SetPolicy(p Policy) { o.policy = p }

// Policy returns the installed adaptation policy.
func (o *Object) Policy() Policy { return o.policy }

// OnSample installs an observation hook invoked with every monitor sample
// entering the feedback loop, before the policy reacts. It exists for
// observability (the trace layer); it must not reconfigure the object.
func (o *Object) OnSample(fn func(Sample)) { o.onSample = fn }

// OnApply installs an observation hook invoked after every reconfiguration
// attempt (Ψ), with the decision, the acting agent, and the outcome (nil
// on success). It exists for observability; it must not reconfigure the
// object.
func (o *Object) OnApply(fn func(Decision, OwnerID, error)) { o.onApply = fn }

// SetLedgerSource wires the object to an adaptation decision ledger: src
// resolves the ledger at entry time (so attaching the ledger to the
// substrate after the object is built still works) and now supplies the
// entry timestamps. Unlike OnSample/OnApply this is first-class — it does
// not consume the observation hook slots.
func (o *Object) SetLedgerSource(src func() *Ledger, now func() int64) {
	o.ledgerSrc = src
	o.ledgerNow = now
}

// ledgerRef resolves the attached ledger (nil when disabled).
func (o *Object) ledgerRef() *Ledger {
	if o.ledgerSrc == nil {
		return nil
	}
	return o.ledgerSrc()
}

// ledgerTime resolves the current timestamp for ledger entries.
func (o *Object) ledgerTime() int64 {
	if o.ledgerNow == nil {
		return 0
	}
	return o.ledgerNow()
}

// feedback is the closely-coupled loop body: sample → policy → apply.
func (o *Object) feedback(s Sample) {
	if led := o.ledgerRef(); led != nil {
		led.Append(Entry{At: o.ledgerTime(), Object: o.name, Kind: EntrySample,
			Sensor: s.Sensor, Value: s.Value, Seq: s.Seq})
		// Copy before taking the address: &s directly would force the
		// parameter to the heap on every call, ledger or not.
		snap := s
		o.feedbackSample = &snap
		defer func() { o.feedbackSample = nil }()
	}
	if o.onSample != nil {
		o.onSample(s)
	}
	if o.policy == nil {
		return
	}
	for _, d := range o.policy.React(s, o) {
		o.decisions++
		if err := o.Apply(d, OwnerSelf); err != nil {
			o.rejected++
		}
	}
}

// Apply executes one reconfiguration decision Ψ on behalf of the given
// agent, accumulating its read/write cost. Attribute decisions respect
// mutability and ownership; method decisions respect the variant registry.
func (o *Object) Apply(d Decision, by OwnerID) (err error) {
	if led := o.ledgerRef(); led != nil {
		prev := o.Configuration()
		defer func() {
			e := Entry{At: o.ledgerTime(), Object: o.name, Kind: EntryApply,
				Decision: d.String(), Agent: int64(by), Prev: prev, Next: o.Configuration()}
			if s := o.feedbackSample; s != nil {
				e.Sensor, e.Value, e.Seq = s.Sensor, s.Value, s.Seq
			}
			if err != nil {
				e.Err = err.Error()
			}
			led.Append(e)
		}()
	}
	if o.onApply != nil {
		defer func() { o.onApply(d, by, err) }()
	}
	if d.Attr != "" {
		if err := o.Attrs.Set(d.Attr, d.Value, by); err != nil {
			return err
		}
		// Simple dynamic configuration of one attribute: 1 read (check
		// mutability/ownership) + 1 write (§5.2, Table 8).
		o.reconfig = o.reconfig.Add(CostModel{Reads: 1, Writes: 1})
		o.applied++
	}
	if d.Method != "" {
		cost, err := o.Methods.Install(d.Method, d.Variant)
		if err != nil {
			return err
		}
		o.reconfig = o.reconfig.Add(cost)
		o.applied++
	}
	return nil
}

// LoopStats reports feedback-loop activity: decisions emitted by the
// policy, decisions applied, and decisions rejected (e.g. the attribute was
// explicitly owned by an external agent at the time).
type LoopStats struct {
	Decisions uint64
	Applied   uint64
	Rejected  uint64
}

// Stats returns feedback-loop counters.
func (o *Object) Stats() LoopStats {
	return LoopStats{Decisions: o.decisions, Applied: o.applied, Rejected: o.rejected}
}

// ReconfigCost returns the accumulated cost of all reconfiguration
// operations applied so far, in the t = n₁R n₂W model.
func (o *Object) ReconfigCost() CostModel { return o.reconfig }

// Configuration renders the current configuration C = ⟨Γ, Φ⟩ as a stable
// string, e.g. "sched=fcfs; delay-time=0 spin-time=10".
func (o *Object) Configuration() string {
	var b strings.Builder
	methods := o.Methods.InstalledAll()
	keys := make([]string, 0, len(methods))
	for k := range methods {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for i, k := range keys {
		if i > 0 {
			b.WriteString(" ")
		}
		fmt.Fprintf(&b, "%s=%s", k, methods[k])
	}
	if b.Len() > 0 {
		b.WriteString("; ")
	}
	b.WriteString(o.Attrs.String())
	return b.String()
}

// Transition accounts one state-transition operation Υ on the object's
// internal state IV (§3.1: SVpre : Υ : SVpost [t], with t = n₁R n₂W).
// The object model does not interpret internal state — each abstraction
// owns its own — but transitions report their costs here so a
// configuration's total cost is inspectable.
func (o *Object) Transition(cost CostModel) {
	o.transitions++
	o.ivCost = o.ivCost.Add(cost)
}

// Transitions reports how many Υ operations were accounted.
func (o *Object) Transitions() uint64 { return o.transitions }

// TransitionCost reports the accumulated cost of Υ operations.
func (o *Object) TransitionCost() CostModel { return o.ivCost }

// Init is the initialization operation I (§3.1): it restores the initial
// configuration ⟨IV₀ ∪ CV₀ ∪ Γ₀⟩ — every attribute back to its defined
// initial value with ownership cleared, every method back to its first
// variant. Counters and accumulated costs are unaffected (they describe
// history, not state).
func (o *Object) Init() {
	o.Attrs.reset()
	o.Methods.reset()
}
