// Command figures regenerates the paper's Figure 1 (combined-lock
// critical-section sweep) and the extension experiments: the lock
// scheduler comparison, the spin-vs-block multiprogramming crossover, and
// the adaptation-policy constant ablation.
//
// Usage:
//
//	figures [-fig 1|sched|crossover|cohort|ablation|sharded|all] [-j N]
//	        [-profile-vt FILE] [-ledger FILE]   (observers require -fig 1)
//	        [-shards N]                         (largest shard count for -fig sharded)
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/cli"
	"repro/internal/experiments"
	"repro/internal/sim"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("figures: ")
	fig := flag.String("fig", "all", "figure: 1, sched, crossover, advisory, retarget, cohort, coupling, platform, sor, barrier, ablation, sharded, or all")
	jobs := cli.JobsFlag(flag.CommandLine)
	shards := cli.ShardsFlag(flag.CommandLine)
	obs := cli.ObserveFlags(flag.CommandLine)
	prof := cli.ProfileFlags(flag.CommandLine)
	noSpinBatch := cli.NoSpinBatchFlag(flag.CommandLine)
	flag.Parse()
	cli.ApplySpinBatch(*noSpinBatch)
	// The extension experiments build their systems behind bare
	// (config, jobs) signatures with no observer plumbing, so the
	// observability flags only cover the Figure 1 sweep.
	if obs.Enabled() && *fig != "1" {
		log.Fatalf("-profile-vt/-ledger require -fig 1 (the other figures carry no observer plumbing)")
	}
	if err := cli.ValidateShards(*shards, nil, obs); err != nil {
		log.Fatal(err)
	}
	if *shards > 1 && *fig != "sharded" {
		log.Fatalf("-shards applies to -fig sharded only (the other figures run on the serial engine)")
	}

	if err := prof.Start(); err != nil {
		log.Fatal(err)
	}
	defer prof.Stop()

	want := func(f string) bool { return *fig == "all" || *fig == f }
	printed := false

	if want("1") {
		rows, err := experiments.Figure1(experiments.Figure1Options{
			Jobs: *jobs, Profiler: obs.Profiler(), Ledger: obs.Ledger()})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(experiments.RenderFigure1(rows))
		printed = true
	}
	if want("sched") {
		rows, err := experiments.SchedulerComparison(sim.Config{}, *jobs)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(experiments.RenderSchedulerComparison(rows))
		printed = true
	}
	if want("crossover") {
		rows, err := experiments.SpinVsBlockCrossover(sim.Config{}, *jobs)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(experiments.RenderCrossover(rows))
		printed = true
	}
	if want("advisory") {
		rows, err := experiments.AdvisoryComparison(sim.Config{}, *jobs)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(experiments.RenderAdvisory(rows))
		printed = true
	}
	if want("retarget") {
		rows, err := experiments.LockRetargeting(sim.Config{}, *jobs)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(experiments.RenderRetargeting(rows))
		printed = true
	}
	if want("cohort") {
		rows, err := experiments.CohortNUMA(sim.Config{}, *jobs)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(experiments.RenderCohortNUMA(rows))
		printed = true
	}
	if want("coupling") {
		rows, err := experiments.CouplingComparison(sim.Config{})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(experiments.RenderCoupling(rows))
		printed = true
	}
	if want("platform") {
		rows, err := experiments.PlatformRetargeting(*jobs)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(experiments.RenderPlatforms(rows))
		printed = true
	}
	if want("sor") {
		rows, err := experiments.SORComparison(nil, *jobs)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(experiments.RenderSOR(rows))
		printed = true
	}
	if want("barrier") {
		rows, err := experiments.BarrierComparison(*jobs)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(experiments.RenderBarriers(rows))
		printed = true
	}
	if want("ablation") {
		rows, err := experiments.PolicyAblation(sim.Config{}, *jobs)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(experiments.RenderAblation(rows))
		printed = true
	}
	if want("sharded") {
		opts := experiments.ShardedScalingOptions{Jobs: *jobs}
		if *shards > 1 {
			opts.MaxShards = *shards
		}
		rows, err := experiments.ShardedScaling(opts)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(experiments.RenderShardedScaling(rows))
		printed = true
	}
	if !printed {
		fmt.Fprintf(os.Stderr, "figures: unknown -fig %q (want 1, sched, crossover, advisory, retarget, cohort, coupling, platform, sor, barrier, ablation, sharded, or all)\n", *fig)
		os.Exit(2)
	}
	if err := obs.Flush(); err != nil {
		log.Fatal(err)
	}
	if err := prof.Stop(); err != nil {
		log.Fatal(err)
	}
}
