// Command benchjson converts `go test -bench` output into a stable JSON
// baseline so benchmark results can be committed and diffed across PRs.
// It records the host context (goos/goarch/cpu), the wall-clock cost and
// allocation profile of each benchmark, and every custom metric — for this
// repo, the simulated quantities (sim-ms-*, improvement-%, speedup), which
// are deterministic and therefore exact regression anchors even when
// wall-clock numbers move with the hardware.
//
// Usage:
//
//	go test -run '^$' -bench . -benchmem ./internal/sim > micro.out
//	benchjson -out BENCH_sim.json micro.out [more.out ...]
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"runtime"
	"strconv"
	"strings"
)

// Benchmark is one parsed benchmark result line.
type Benchmark struct {
	Name        string  `json:"name"`
	Package     string  `json:"package,omitempty"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op,omitempty"`
	BytesPerOp  float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
	// Metrics holds the custom b.ReportMetric values — here, simulated
	// times and ratios that must not drift between runs of the same seed.
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// Baseline is the file layout of BENCH_sim.json.
type Baseline struct {
	Note       string      `json:"note"`
	Go         string      `json:"go"`
	GOOS       string      `json:"goos,omitempty"`
	GOARCH     string      `json:"goarch,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchjson: ")
	out := flag.String("out", "BENCH_sim.json", "output JSON path (- for stdout)")
	flag.Parse()

	base := Baseline{
		Note: "benchmark baseline written by `make bench`; sim-* metrics are deterministic, ns/op is hardware-dependent",
		Go:   runtime.Version(),
	}
	inputs := flag.Args()
	if len(inputs) == 0 {
		parse(&base, os.Stdin)
	}
	for _, path := range inputs {
		f, err := os.Open(path)
		if err != nil {
			log.Fatal(err)
		}
		parse(&base, f)
		f.Close()
	}
	if len(base.Benchmarks) == 0 {
		log.Fatal("no benchmark lines found in input")
	}

	enc, err := json.MarshalIndent(base, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	enc = append(enc, '\n')
	if *out == "-" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("benchjson: wrote %d benchmarks to %s\n", len(base.Benchmarks), *out)
}

// parse consumes one `go test -bench` output stream, picking up the
// context header lines (goos/goarch/cpu/pkg) and every Benchmark line.
func parse(base *Baseline, r io.Reader) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	pkg := ""
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos: "):
			base.GOOS = strings.TrimPrefix(line, "goos: ")
			continue
		case strings.HasPrefix(line, "goarch: "):
			base.GOARCH = strings.TrimPrefix(line, "goarch: ")
			continue
		case strings.HasPrefix(line, "cpu: "):
			base.CPU = strings.TrimPrefix(line, "cpu: ")
			continue
		case strings.HasPrefix(line, "pkg: "):
			pkg = strings.TrimPrefix(line, "pkg: ")
			continue
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		if b, ok := parseLine(line); ok {
			b.Package = pkg
			base.Benchmarks = append(base.Benchmarks, b)
		}
	}
	if err := sc.Err(); err != nil {
		log.Fatal(err)
	}
}

// parseLine parses one benchmark result line: a name, an iteration count,
// then (value, unit) pairs.
func parseLine(line string) (Benchmark, bool) {
	fields := strings.Fields(line)
	if len(fields) < 2 {
		return Benchmark{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b := Benchmark{Name: fields[0], Iterations: iters, Metrics: map[string]float64{}}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Benchmark{}, false
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			b.NsPerOp = v
		case "B/op":
			b.BytesPerOp = v
		case "allocs/op":
			b.AllocsPerOp = v
		case "MB/s":
			b.Metrics["MB/s"] = v
		default:
			b.Metrics[unit] = v
		}
	}
	if len(b.Metrics) == 0 {
		b.Metrics = nil
	}
	return b, true
}
