// Command benchjson converts `go test -bench` output into a stable JSON
// baseline so benchmark results can be committed and diffed across PRs.
// It records the host context (goos/goarch/cpu), the wall-clock cost and
// allocation profile of each benchmark, and every custom metric — for this
// repo, the simulated quantities (sim-ms-*, improvement-%, speedup), which
// are deterministic and therefore exact regression anchors even when
// wall-clock numbers move with the hardware.
//
// Usage:
//
//	go test -run '^$' -bench . -benchmem ./internal/sim > micro.out
//	benchjson -out BENCH_sim.json micro.out [more.out ...]
//
// With -compare it acts as a regression gate instead: the fresh run is
// diffed against the committed baseline, and any drift in a deterministic
// custom metric (the sim-* quantities, ratios, and thresholds the
// benchmarks report) is a hard failure. Wall-clock numbers (ns/op, B/op,
// allocs/op) move with the hardware and the implementation, so they are
// reported but never gate:
//
//	go test -run '^$' -bench . -benchmem -benchtime=1x . > macro.out
//	benchjson -compare BENCH_sim.json macro.out
//
// With -update it runs the two benchmark suites itself (the same commands
// `make bench` issues) and regenerates the baseline in place:
//
//	benchjson -update
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"os/exec"
	"runtime"
	"sort"
	"strconv"
	"strings"

	"repro/internal/cli"
)

// Benchmark is one parsed benchmark result line.
type Benchmark struct {
	Name        string  `json:"name"`
	Package     string  `json:"package,omitempty"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op,omitempty"`
	BytesPerOp  float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
	// Metrics holds the custom b.ReportMetric values — here, simulated
	// times and ratios that must not drift between runs of the same seed.
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// Baseline is the file layout of BENCH_sim.json.
type Baseline struct {
	Note       string      `json:"note"`
	Go         string      `json:"go"`
	GOOS       string      `json:"goos,omitempty"`
	GOARCH     string      `json:"goarch,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchjson: ")
	out := flag.String("out", "BENCH_sim.json", "output JSON path (- for stdout)")
	compare := flag.String("compare", "",
		"baseline JSON to diff the fresh run against; exits 1 on any deterministic-metric drift (no output file is written)")
	update := flag.Bool("update", false,
		"run the micro and macro benchmark suites (the same commands as `make bench`) and regenerate -out in place; takes no input files")
	shards := cli.ShardsFlag(flag.CommandLine)
	obs := cli.ObserveFlags(flag.CommandLine)
	prof := cli.ProfileFlags(flag.CommandLine)
	flag.Parse()
	if obs.Enabled() {
		log.Fatal("-profile-vt/-ledger are not supported: benchjson runs no simulation of its own (attach them via lockbench, tspbench, figures, or adaptdemo)")
	}
	if err := cli.ValidateShards(*shards, nil, obs); err != nil {
		log.Fatal(err)
	}
	if *shards > 1 {
		log.Fatalf("-shards %d: the benchmark suites pin their own engines (BenchmarkShardedEngine covers the sharded grid); run with -shards 1", *shards)
	}

	if err := prof.Start(); err != nil {
		log.Fatal(err)
	}
	defer prof.Stop()

	base := Baseline{
		Note: "benchmark baseline written by `make bench`; sim-* metrics are deterministic, ns/op is hardware-dependent",
		Go:   runtime.Version(),
	}
	inputs := flag.Args()
	switch {
	case *update:
		if *compare != "" {
			log.Fatal("-update and -compare are mutually exclusive")
		}
		if len(inputs) > 0 {
			log.Fatal("-update takes no input files (it runs the benchmark suites itself)")
		}
		// Mirror `make bench`: engine micro-benchmarks at full benchtime,
		// paper-table macro benchmarks at one deterministic iteration.
		for _, args := range [][]string{
			{"test", "-run", "^$", "-bench", ".", "-benchmem", "./internal/sim"},
			{"test", "-run", "^$", "-bench", ".", "-benchmem", "-benchtime=1x", "."},
		} {
			fmt.Fprintf(os.Stderr, "benchjson: go %s\n", strings.Join(args, " "))
			cmd := exec.Command("go", args...)
			cmd.Stderr = os.Stderr
			raw, err := cmd.Output()
			if err != nil {
				log.Fatalf("go %s: %v", strings.Join(args, " "), err)
			}
			os.Stdout.Write(raw)
			parse(&base, bytes.NewReader(raw))
		}
	case len(inputs) == 0:
		parse(&base, os.Stdin)
	}
	for _, path := range inputs {
		f, err := os.Open(path)
		if err != nil {
			log.Fatal(err)
		}
		parse(&base, f)
		f.Close()
	}
	if len(base.Benchmarks) == 0 {
		log.Fatal("no benchmark lines found in input")
	}

	if *compare != "" {
		raw, err := os.ReadFile(*compare)
		if err != nil {
			log.Fatal(err)
		}
		var committed Baseline
		if err := json.Unmarshal(raw, &committed); err != nil {
			log.Fatalf("parsing %s: %v", *compare, err)
		}
		if drift := compareBaselines(&committed, &base, os.Stdout); drift > 0 {
			log.Fatalf("%d deterministic metric(s) drifted from %s", drift, *compare)
		}
		fmt.Printf("benchjson: no deterministic drift against %s\n", *compare)
		return
	}

	enc, err := json.MarshalIndent(base, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	enc = append(enc, '\n')
	if *out == "-" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("benchjson: wrote %d benchmarks to %s\n", len(base.Benchmarks), *out)
}

// deterministicMetric reports whether a custom metric unit is an exact
// regression anchor. Everything the benchmarks emit via b.ReportMetric is
// a simulated quantity and therefore deterministic, except throughput,
// which go test derives from wall-clock time.
func deterministicMetric(unit string) bool { return unit != "MB/s" }

// compareBaselines diffs a fresh run against the committed baseline. It
// returns the number of drifted deterministic metrics — missing, added,
// or changed on any benchmark present in both runs — and writes both the
// failures and the report-only wall-clock deltas to w. Benchmarks only in
// one of the two runs are noted but never gate, so a quick partial run
// (e.g. CI's Table1 smoke) can still compare what it has.
func compareBaselines(committed, fresh *Baseline, w io.Writer) (drift int) {
	freshByName := map[string]*Benchmark{}
	for i := range fresh.Benchmarks {
		b := &fresh.Benchmarks[i]
		freshByName[b.Name] = b
	}
	compared := 0
	for i := range committed.Benchmarks {
		old := &committed.Benchmarks[i]
		new, ok := freshByName[old.Name]
		if !ok {
			fmt.Fprintf(w, "  skip   %-32s not in this run\n", old.Name)
			continue
		}
		delete(freshByName, old.Name)
		compared++
		if old.NsPerOp > 0 && new.NsPerOp > 0 {
			fmt.Fprintf(w, "  ns/op  %-32s %14.4g -> %-14.4g (%+.1f%%, report-only)\n",
				old.Name, old.NsPerOp, new.NsPerOp, 100*(new.NsPerOp-old.NsPerOp)/old.NsPerOp)
		}
		units := map[string]bool{}
		for u := range old.Metrics {
			units[u] = true
		}
		for u := range new.Metrics {
			units[u] = true
		}
		keys := make([]string, 0, len(units))
		for u := range units {
			keys = append(keys, u)
		}
		sort.Strings(keys)
		for _, u := range keys {
			if !deterministicMetric(u) {
				continue
			}
			ov, inOld := old.Metrics[u]
			nv, inNew := new.Metrics[u]
			switch {
			case !inOld:
				drift++
				fmt.Fprintf(w, "  DRIFT  %s: metric %q = %g not in baseline\n", old.Name, u, nv)
			case !inNew:
				drift++
				fmt.Fprintf(w, "  DRIFT  %s: metric %q = %g missing from this run\n", old.Name, u, ov)
			case ov != nv:
				drift++
				fmt.Fprintf(w, "  DRIFT  %s: metric %q = %g, baseline %g\n", old.Name, u, nv, ov)
			}
		}
	}
	extra := make([]string, 0, len(freshByName))
	for name := range freshByName {
		extra = append(extra, name)
	}
	sort.Strings(extra)
	for _, name := range extra {
		fmt.Fprintf(w, "  new    %-32s not in baseline (add via `make bench`)\n", name)
	}
	fmt.Fprintf(w, "benchjson: compared %d benchmark(s), %d drifted\n", compared, drift)
	return drift
}

// parse consumes one `go test -bench` output stream, picking up the
// context header lines (goos/goarch/cpu/pkg) and every Benchmark line.
func parse(base *Baseline, r io.Reader) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	pkg := ""
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos: "):
			base.GOOS = strings.TrimPrefix(line, "goos: ")
			continue
		case strings.HasPrefix(line, "goarch: "):
			base.GOARCH = strings.TrimPrefix(line, "goarch: ")
			continue
		case strings.HasPrefix(line, "cpu: "):
			base.CPU = strings.TrimPrefix(line, "cpu: ")
			continue
		case strings.HasPrefix(line, "pkg: "):
			pkg = strings.TrimPrefix(line, "pkg: ")
			continue
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		if b, ok := parseLine(line); ok {
			b.Package = pkg
			base.Benchmarks = append(base.Benchmarks, b)
		}
	}
	if err := sc.Err(); err != nil {
		log.Fatal(err)
	}
}

// parseLine parses one benchmark result line: a name, an iteration count,
// then (value, unit) pairs.
func parseLine(line string) (Benchmark, bool) {
	fields := strings.Fields(line)
	if len(fields) < 2 {
		return Benchmark{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b := Benchmark{Name: fields[0], Iterations: iters, Metrics: map[string]float64{}}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Benchmark{}, false
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			b.NsPerOp = v
		case "B/op":
			b.BytesPerOp = v
		case "allocs/op":
			b.AllocsPerOp = v
		case "MB/s":
			b.Metrics["MB/s"] = v
		default:
			b.Metrics[unit] = v
		}
	}
	if len(b.Metrics) == 0 {
		b.Metrics = nil
	}
	return b, true
}
