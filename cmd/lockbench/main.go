// Command lockbench regenerates the paper's lock microbenchmark tables
// (§5.2, Tables 4–8) on the simulated BBN Butterfly GP1000.
//
// Usage:
//
//	lockbench [-table 4|5|6|7|8|all] [-lock KIND] [-calib] [-wait-latency] [-iters N] [-procs N] [-j N]
//	          [-trace FILE] [-trace-reports] [-profile-vt FILE] [-ledger FILE]
//	          [-shards 1]   (the tables time synchronous lock handoffs; only 1 is legal)
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"repro/internal/cli"
	"repro/internal/experiments"
	"repro/internal/locks"
	"repro/internal/sim"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("lockbench: ")
	table := flag.String("table", "all", "table to regenerate: 4, 5, 6, 7, 8, or all")
	lockKind := flag.String("lock", "",
		"restrict Tables 4/5 to one lock kind (valid kinds: "+strings.Join(locks.KindNames(), ", ")+")")
	calib := flag.Bool("calib", false,
		"also print the mutable lock's predicted-vs-actual wait calibration report")
	waitLatency := flag.Bool("wait-latency", false,
		"also print per-acquisition wait-latency digests (p50/p99/p999) per lock kind under contention")
	iters := flag.Int("iters", 16, "repetitions per measured operation")
	procs := cli.ProcsFlag(flag.CommandLine, 0)
	jobs := cli.JobsFlag(flag.CommandLine)
	shards := cli.ShardsFlag(flag.CommandLine)
	tf := cli.TraceFlags(flag.CommandLine)
	obs := cli.ObserveFlags(flag.CommandLine)
	prof := cli.ProfileFlags(flag.CommandLine)
	noSpinBatch := cli.NoSpinBatchFlag(flag.CommandLine)
	flag.Parse()
	cli.ApplySpinBatch(*noSpinBatch)
	if err := cli.ValidateShards(*shards, tf, obs); err != nil {
		log.Fatal(err)
	}
	if *shards > 1 {
		log.Fatalf("-shards %d: the lock tables time synchronous lock handoffs, which need the serial engine; sharded scaling lives in `figures -fig sharded`", *shards)
	}

	if err := prof.Start(); err != nil {
		log.Fatal(err)
	}
	defer prof.Stop()

	tracer := tf.Tracer()
	opts := experiments.Options{Iters: *iters, Tracer: tracer,
		Profiler: obs.Profiler(), Ledger: obs.Ledger(), Jobs: *jobs}
	if *procs > 0 {
		opts.Machine = sim.Config{Nodes: *procs}
	}
	if *lockKind != "" {
		k := locks.Kind(*lockKind)
		valid := false
		for _, name := range locks.KindNames() {
			if name == *lockKind {
				valid = true
			}
		}
		if !valid {
			log.Fatalf("-lock %q: unknown lock kind (valid kinds: %s)", *lockKind, strings.Join(locks.KindNames(), ", "))
		}
		opts.Kinds = []locks.Kind{k}
	}
	want := func(t string) bool { return *table == "all" || *table == t }
	printed := false

	if want("4") {
		rows, err := experiments.Table4(opts)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(experiments.RenderLockOpTable("Table 4: Cost of the Lock operation for different locks", rows))
		printed = true
	}
	if want("5") {
		rows, err := experiments.Table5(opts)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(experiments.RenderLockOpTable("Table 5: Cost of the Unlock operation for different locks", rows))
		printed = true
	}
	if want("6") {
		rows, err := experiments.Table6(opts)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(experiments.RenderCycleTable("Table 6: Cost of successive Unlock and Lock operation on an already locked lock", rows))
		printed = true
	}
	if want("7") {
		rows, err := experiments.Table7(opts)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(experiments.RenderCycleTable("Table 7: Cost of successive Unlock and Lock operation on an already locked adaptive lock", rows))
		printed = true
	}
	if want("8") {
		rows, err := experiments.Table8(opts)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(experiments.RenderTable8(rows))
		printed = true
	}
	if *calib {
		rows, err := experiments.MutableCalibration(opts.Machine, *jobs)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(experiments.RenderMutableCalibration(rows))
		printed = true
	}
	if *waitLatency {
		rows, err := experiments.WaitLatencySweep(opts.Machine, *jobs, opts.Kinds)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(experiments.RenderWaitLatency(rows))
		printed = true
	}
	if !printed {
		fmt.Fprintf(os.Stderr, "lockbench: unknown -table %q (want 4, 5, 6, 7, 8, or all)\n", *table)
		os.Exit(2)
	}
	if err := tf.Flush(tracer, os.Stdout); err != nil {
		log.Fatal(err)
	}
	if err := obs.Flush(); err != nil {
		log.Fatal(err)
	}
	if err := prof.Stop(); err != nil {
		log.Fatal(err)
	}
}
