// Command tspbench regenerates the paper's TSP application experiments:
// Tables 1–3 (blocking vs. adaptive locks under the centralized,
// distributed, and distributed-with-load-balancing organizations) and
// Figures 4–9 (per-lock waiting-thread patterns).
//
// Usage:
//
//	tspbench [-impl central|dist|distlb|all] [-cities N] [-seed S]
//	         [-searchers N] [-uniform] [-steps N] [-patterns] [-j N]
//	         [-async-queue]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"repro/internal/cli"
	"repro/internal/experiments"
	"repro/internal/tsp"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("tspbench: ")
	impl := flag.String("impl", "all", "implementation: central, dist, distlb, or all")
	cities := flag.Int("cities", 16, "number of cities (the paper used 32)")
	seed := cli.SeedFlag(flag.CommandLine, 1)
	searchers := flag.Int("searchers", 10, "searcher threads, one per processor (paper: 10)")
	uniform := flag.Bool("uniform", false, "uniform random instance instead of Euclidean")
	steps := flag.Int("steps", 0, "instruction steps per expansion work unit (0 = calibrated default)")
	patterns := flag.Bool("patterns", false, "also print Figures 4-9 locking patterns")
	scaling := flag.Bool("scaling", false, "also sweep searcher counts (gain vs. processors)")
	asyncQueue := flag.Bool("async-queue", false,
		"also compare shared-queue execution modes (off, sync, flat, server, adaptive) on the centralized organization")
	file := flag.String("file", "", "TSPLIB file (EUC_2D or FULL_MATRIX) to solve instead of a generated instance")
	csvdir := flag.String("csvdir", "", "with -patterns, also write each figure's series as CSV into this directory")
	jobs := cli.JobsFlag(flag.CommandLine)
	shards := cli.ShardsFlag(flag.CommandLine)
	tf := cli.TraceFlags(flag.CommandLine)
	obs := cli.ObserveFlags(flag.CommandLine)
	prof := cli.ProfileFlags(flag.CommandLine)
	noSpinBatch := cli.NoSpinBatchFlag(flag.CommandLine)
	flag.Parse()
	cli.ApplySpinBatch(*noSpinBatch)
	if err := cli.ValidateShards(*shards, tf, obs); err != nil {
		log.Fatal(err)
	}
	if *shards > 1 {
		log.Fatalf("-shards %d: the TSP searchers share blocking locks — synchronous cross-node interactions the sharded engine cannot split; sharded scaling lives in `figures -fig sharded`", *shards)
	}

	if err := prof.Start(); err != nil {
		log.Fatal(err)
	}
	defer prof.Stop()

	tracer := tf.Tracer()
	opts := experiments.TSPOptions{
		Cities:           *cities,
		Seed:             *seed,
		Searchers:        *searchers,
		Uniform:          *uniform,
		StepsPerWorkUnit: *steps,
		Tracer:           tracer,
		Profiler:         obs.Profiler(),
		Ledger:           obs.Ledger(),
		Jobs:             *jobs,
	}
	if *file != "" {
		f, err := os.Open(*file)
		if err != nil {
			log.Fatal(err)
		}
		in, err := tsp.ParseTSPLIB(f)
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
		opts.Instance = in
	}
	fmt.Printf("instance: %s, %d searchers\n\n", instanceLabel(opts), *searchers)

	orgs := map[string]tsp.Organization{
		"central": tsp.OrgCentralized,
		"dist":    tsp.OrgDistributed,
		"distlb":  tsp.OrgDistributedLB,
	}
	var run []tsp.Organization
	if *impl == "all" {
		run = []tsp.Organization{tsp.OrgCentralized, tsp.OrgDistributed, tsp.OrgDistributedLB}
	} else if org, ok := orgs[*impl]; ok {
		run = []tsp.Organization{org}
	} else {
		fmt.Fprintf(os.Stderr, "tspbench: unknown -impl %q (want central, dist, distlb, or all)\n", *impl)
		os.Exit(2)
	}

	for _, org := range run {
		row, err := experiments.TSPComparison(org, opts)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(experiments.RenderTSPRow(row))
		if row.Speedup > 0 {
			fmt.Printf("  speedup over sequential: %.1f× on %d processors\n", row.Speedup, *searchers)
		}
		fmt.Printf("  optimal tour cost: %d; expansions: blocking=%d adaptive=%d\n",
			row.BlockingRes.Tour.Cost, row.BlockingRes.Expansions, row.AdaptiveRes.Expansions)
		q := row.BlockingRes.LockStats[tsp.LockQueue]
		fmt.Printf("  qlock (blocking run): %d acquisitions, %d contended, max %d waiting\n",
			q.Acquisitions, q.Contended, q.MaxWaiting)
		if len(row.AdaptiveRes.FinalSpin) > 0 {
			fmt.Printf("  adaptive final spin-time:")
			for _, name := range []string{tsp.LockQueue, tsp.LockActive, tsp.LockLowest, tsp.LockGlobal} {
				if v, ok := row.AdaptiveRes.FinalSpin[name]; ok {
					fmt.Printf(" %s=%d", name, v)
				}
			}
			fmt.Println()
		}
		fmt.Println()
	}

	if *scaling {
		rows, err := experiments.ScalingComparison(opts, nil)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(experiments.RenderScaling(rows))
	}

	if *asyncQueue {
		rows, err := experiments.TSPAsyncQueue(opts, *jobs)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(experiments.RenderTSPAsyncQueue(rows))
	}

	if *patterns {
		figs, err := experiments.LockPatterns(opts)
		if err != nil {
			log.Fatal(err)
		}
		for _, f := range figs {
			fmt.Print(experiments.RenderPattern(f, 72))
			if *csvdir != "" {
				path := filepath.Join(*csvdir, fmt.Sprintf("figure%d_%s_%s.csv", f.Figure, f.Org, f.Lock))
				out, err := os.Create(path)
				if err != nil {
					log.Fatal(err)
				}
				if err := f.Series.WriteCSV(out); err != nil {
					log.Fatal(err)
				}
				if err := out.Close(); err != nil {
					log.Fatal(err)
				}
				fmt.Printf("  wrote %s\n", path)
			}
		}
	}

	if err := tf.Flush(tracer, os.Stdout); err != nil {
		log.Fatal(err)
	}
	if err := obs.Flush(); err != nil {
		log.Fatal(err)
	}
	if err := prof.Stop(); err != nil {
		log.Fatal(err)
	}
}

func instanceLabel(o experiments.TSPOptions) string {
	if o.Instance != nil {
		return o.Instance.String()
	}
	kind := "euclidean"
	if o.Uniform {
		kind = "uniform"
	}
	return fmt.Sprintf("%s(n=%d, seed=%d)", kind, o.Cities, o.Seed)
}
