// Command adaptdemo visualizes one adaptive lock's feedback loop through
// a workload with three contention phases: a solo phase (the policy
// configures pure spin), an overload phase with long critical sections
// and many waiters (the policy backs off to pure blocking), and a light
// phase (the policy climbs back). It prints the spin-time attribute over
// virtual time, one row per monitor sample.
//
// With -monitor it instead demonstrates the adaptive execution-mode
// monitor: the contended-hotspot sweep (sync vs. flat-combining vs.
// server execution) and the calm → storm → calm phase run whose sensor
// switches one monitor sync→async and back.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"repro/internal/cli"
	"repro/internal/core"
	"repro/internal/cthreads"
	"repro/internal/experiments"
	"repro/internal/locks"
	"repro/internal/sim"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("adaptdemo: ")
	procs := cli.ProcsFlag(flag.CommandLine, 8)
	monitor := flag.Bool("monitor", false,
		"demo the adaptive execution-mode monitor (hotspot sweep + phase-switch run) instead of the lock feedback loop")
	jobs := cli.JobsFlag(flag.CommandLine)
	shards := cli.ShardsFlag(flag.CommandLine)
	tf := cli.TraceFlags(flag.CommandLine)
	obs := cli.ObserveFlags(flag.CommandLine)
	prof := cli.ProfileFlags(flag.CommandLine)
	noSpinBatch := cli.NoSpinBatchFlag(flag.CommandLine)
	flag.Parse()
	cli.ApplySpinBatch(*noSpinBatch)
	if err := cli.ValidateShards(*shards, tf, obs); err != nil {
		log.Fatal(err)
	}
	if *shards > 1 {
		log.Fatalf("-shards %d: the demo's adaptive lock is a synchronous shared object; it needs the serial engine (sharded scaling lives in `figures -fig sharded`)", *shards)
	}

	if err := prof.Start(); err != nil {
		log.Fatal(err)
	}
	defer prof.Stop()

	if *monitor {
		// The monitor sweeps build their own systems per measurement and
		// carry no observer plumbing (like figures outside -fig 1 and
		// lockbench -calib); reject rather than silently drop the flags.
		if tf.Path != "" || obs.Enabled() {
			log.Fatalf("-trace/-profile-vt/-ledger are not supported with -monitor (the exec-mode switches are printed in the phase report; the ledger path is exercised by tspbench -impl central -ledger)")
		}
		machine := sim.Config{}
		if *procs > 0 {
			machine.Nodes = *procs
		}
		hot, err := experiments.MonitorHotspot(machine, *jobs)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(experiments.RenderMonitorHotspot(hot))
		rep, err := experiments.MonitorPhases(machine)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(experiments.RenderMonitorPhases(rep))
		if err := prof.Stop(); err != nil {
			log.Fatal(err)
		}
		return
	}

	sys := cthreads.New(sim.Config{Nodes: *procs})
	tracer := tf.Tracer()
	sys.SetTracer(tracer)
	obs.Attach(sys)
	policy := core.SimpleAdapt{SpinAttr: locks.AttrSpinTime, WaitingThreshold: 2, Step: 10, MaxSpin: 100}
	l := locks.NewAdaptiveLock(sys, 0, "demo-lock", locks.DefaultCosts(), policy)

	type sample struct {
		at      sim.Time
		waiting int64
		spin    int64
	}
	var trace []sample
	// Tap the feedback loop: wrap the policy so each sample is recorded
	// along with the decision it produced.
	l.Object().SetPolicy(core.PolicyFunc(func(s core.Sample, o *core.Object) []core.Decision {
		ds := policy.React(s, o)
		spin := o.Attrs.MustGet(locks.AttrSpinTime)
		for _, d := range ds {
			if d.Attr == locks.AttrSpinTime {
				spin = d.Value
			}
		}
		trace = append(trace, sample{at: sys.Now(), waiting: s.Value, spin: spin})
		return ds
	}))

	phase := func(t *cthreads.Thread, iters int, cs, think sim.Time) {
		for i := 0; i < iters; i++ {
			l.Lock(t)
			t.Advance(cs)
			l.Unlock(t)
			t.Advance(think)
		}
	}
	// Phase 1: one thread, no contention.
	solo := sys.Fork(0, "solo", func(t *cthreads.Thread) {
		phase(t, 30, 5*sim.Microsecond, 50*sim.Microsecond)
	})
	// Phase 2: everyone hammers the lock with long critical sections.
	var stormers []*cthreads.Thread
	for i := 0; i < *procs; i++ {
		i := i
		stormers = append(stormers, sys.Fork(i, fmt.Sprintf("storm%d", i), func(t *cthreads.Thread) {
			t.Join(solo)
			phase(t, 20, 200*sim.Microsecond, 20*sim.Microsecond)
		}))
	}
	// Phase 3: light again.
	sys.Fork(0, "light", func(t *cthreads.Thread) {
		for _, s := range stormers {
			t.Join(s)
		}
		phase(t, 30, 5*sim.Microsecond, 50*sim.Microsecond)
	})

	if err := sys.Run(); err != nil {
		log.Fatal(err)
	}

	fmt.Println("adaptive lock feedback loop: no-of-waiting-threads sample → spin-time decision")
	fmt.Println()
	fmt.Printf("%-12s %-9s %-9s %s\n", "virtual time", "waiting", "spin-time", "")
	for _, s := range trace {
		bar := strings.Repeat("█", int(s.spin/2))
		fmt.Printf("%-12s %-9d %-9d %s\n", s.at, s.waiting, s.spin, bar)
	}
	st := l.Object().Stats()
	fmt.Printf("\npolicy decisions=%d applied=%d rejected=%d; reconfiguration cost=%s\n",
		st.Decisions, st.Applied, st.Rejected, l.Object().ReconfigCost())
	fmt.Printf("final configuration: %s\n", l.Object().Configuration())
	if err := tf.Flush(tracer, os.Stdout); err != nil {
		log.Fatal(err)
	}
	if err := obs.Flush(); err != nil {
		log.Fatal(err)
	}
	if err := prof.Stop(); err != nil {
		log.Fatal(err)
	}
}
