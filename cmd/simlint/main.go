// Command simlint runs the simulator's static-analysis suite
// (internal/analysis): walltime, rawspin, maporder, virtualtime,
// seqadvance, and crossshard. It speaks the `go vet -vettool` protocol, so the full
// toolchain integration is
//
//	go build -o bin/simlint ./cmd/simlint
//	go vet -vettool=bin/simlint ./...
//
// (what `make lint` runs), and it also works standalone:
//
//	simlint ./...                # analyze packages in the current module
//
// Findings are suppressed — with a mandatory reason — by a comment on
// the offending line or the line directly above it:
//
//	//simlint:allow <analyzer> -- <reason>
package main

import (
	"fmt"
	"os"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/framework"
)

func main() {
	args := os.Args[1:]

	// `go vet` interrogates the tool's flag set before use; simlint
	// takes no analyzer flags.
	for _, a := range args {
		if a == "-flags" || a == "--flags" {
			fmt.Println("[]")
			return
		}
		if a == "-V=full" || a == "--V=full" {
			// Tool-identity protocol: name and a build stamp.
			fmt.Println("simlint version simlint-1")
			return
		}
	}

	// `go vet -vettool` invokes the tool with a single *.cfg argument.
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		os.Exit(runVet(args[0]))
	}

	patterns := args
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	os.Exit(runStandalone(patterns))
}

func runStandalone(patterns []string) int {
	pkgs, err := framework.Load(".", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "simlint:", err)
		return 1
	}
	found := 0
	for _, pkg := range pkgs {
		diags, err := framework.RunAnalyzers(pkg, analysis.All())
		if err != nil {
			fmt.Fprintln(os.Stderr, "simlint:", err)
			return 1
		}
		for _, d := range diags {
			fmt.Fprintln(os.Stderr, framework.Format(pkg.Fset, d))
			found++
		}
	}
	if found > 0 {
		fmt.Fprintf(os.Stderr, "simlint: %d finding(s)\n", found)
		return 2
	}
	return 0
}
